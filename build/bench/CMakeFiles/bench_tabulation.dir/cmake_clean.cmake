file(REMOVE_RECURSE
  "CMakeFiles/bench_tabulation.dir/bench_tabulation.cpp.o"
  "CMakeFiles/bench_tabulation.dir/bench_tabulation.cpp.o.d"
  "bench_tabulation"
  "bench_tabulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tabulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
