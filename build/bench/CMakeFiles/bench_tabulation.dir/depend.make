# Empty dependencies file for bench_tabulation.
# This may be replaced when dependencies are built.
