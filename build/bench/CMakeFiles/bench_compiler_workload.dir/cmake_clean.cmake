file(REMOVE_RECURSE
  "CMakeFiles/bench_compiler_workload.dir/bench_compiler_workload.cpp.o"
  "CMakeFiles/bench_compiler_workload.dir/bench_compiler_workload.cpp.o.d"
  "bench_compiler_workload"
  "bench_compiler_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiler_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
