# Empty dependencies file for bench_compiler_workload.
# This may be replaced when dependencies are built.
