file(REMOVE_RECURSE
  "CMakeFiles/bench_subobject_explosion.dir/bench_subobject_explosion.cpp.o"
  "CMakeFiles/bench_subobject_explosion.dir/bench_subobject_explosion.cpp.o.d"
  "bench_subobject_explosion"
  "bench_subobject_explosion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subobject_explosion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
