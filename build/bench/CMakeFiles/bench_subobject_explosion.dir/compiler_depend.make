# Empty compiler generated dependencies file for bench_subobject_explosion.
# This may be replaced when dependencies are built.
