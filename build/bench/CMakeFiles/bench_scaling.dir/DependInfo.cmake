
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scaling.cpp" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o" "gcc" "bench/CMakeFiles/bench_scaling.dir/bench_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/memlook_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/memlook_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/memlook_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memlook_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/subobject/CMakeFiles/memlook_subobject.dir/DependInfo.cmake"
  "/root/repo/build/src/chg/CMakeFiles/memlook_chg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
