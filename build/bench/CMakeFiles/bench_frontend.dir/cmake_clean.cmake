file(REMOVE_RECURSE
  "CMakeFiles/bench_frontend.dir/bench_frontend.cpp.o"
  "CMakeFiles/bench_frontend.dir/bench_frontend.cpp.o.d"
  "bench_frontend"
  "bench_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
