#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "memlook::memlook_support" for configuration "RelWithDebInfo"
set_property(TARGET memlook::memlook_support APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(memlook::memlook_support PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmemlook_support.a"
  )

list(APPEND _cmake_import_check_targets memlook::memlook_support )
list(APPEND _cmake_import_check_files_for_memlook::memlook_support "${_IMPORT_PREFIX}/lib/libmemlook_support.a" )

# Import target "memlook::memlook_chg" for configuration "RelWithDebInfo"
set_property(TARGET memlook::memlook_chg APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(memlook::memlook_chg PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmemlook_chg.a"
  )

list(APPEND _cmake_import_check_targets memlook::memlook_chg )
list(APPEND _cmake_import_check_files_for_memlook::memlook_chg "${_IMPORT_PREFIX}/lib/libmemlook_chg.a" )

# Import target "memlook::memlook_subobject" for configuration "RelWithDebInfo"
set_property(TARGET memlook::memlook_subobject APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(memlook::memlook_subobject PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmemlook_subobject.a"
  )

list(APPEND _cmake_import_check_targets memlook::memlook_subobject )
list(APPEND _cmake_import_check_files_for_memlook::memlook_subobject "${_IMPORT_PREFIX}/lib/libmemlook_subobject.a" )

# Import target "memlook::memlook_core" for configuration "RelWithDebInfo"
set_property(TARGET memlook::memlook_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(memlook::memlook_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmemlook_core.a"
  )

list(APPEND _cmake_import_check_targets memlook::memlook_core )
list(APPEND _cmake_import_check_files_for_memlook::memlook_core "${_IMPORT_PREFIX}/lib/libmemlook_core.a" )

# Import target "memlook::memlook_frontend" for configuration "RelWithDebInfo"
set_property(TARGET memlook::memlook_frontend APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(memlook::memlook_frontend PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmemlook_frontend.a"
  )

list(APPEND _cmake_import_check_targets memlook::memlook_frontend )
list(APPEND _cmake_import_check_files_for_memlook::memlook_frontend "${_IMPORT_PREFIX}/lib/libmemlook_frontend.a" )

# Import target "memlook::memlook_apps" for configuration "RelWithDebInfo"
set_property(TARGET memlook::memlook_apps APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(memlook::memlook_apps PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmemlook_apps.a"
  )

list(APPEND _cmake_import_check_targets memlook::memlook_apps )
list(APPEND _cmake_import_check_files_for_memlook::memlook_apps "${_IMPORT_PREFIX}/lib/libmemlook_apps.a" )

# Import target "memlook::memlook_workload" for configuration "RelWithDebInfo"
set_property(TARGET memlook::memlook_workload APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(memlook::memlook_workload PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libmemlook_workload.a"
  )

list(APPEND _cmake_import_check_targets memlook::memlook_workload )
list(APPEND _cmake_import_check_files_for_memlook::memlook_workload "${_IMPORT_PREFIX}/lib/libmemlook_workload.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
