# Empty dependencies file for iostream_hierarchy.
# This may be replaced when dependencies are built.
