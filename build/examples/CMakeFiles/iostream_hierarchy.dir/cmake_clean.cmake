file(REMOVE_RECURSE
  "CMakeFiles/iostream_hierarchy.dir/iostream_hierarchy.cpp.o"
  "CMakeFiles/iostream_hierarchy.dir/iostream_hierarchy.cpp.o.d"
  "iostream_hierarchy"
  "iostream_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iostream_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
