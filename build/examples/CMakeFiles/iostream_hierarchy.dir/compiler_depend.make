# Empty compiler generated dependencies file for iostream_hierarchy.
# This may be replaced when dependencies are built.
