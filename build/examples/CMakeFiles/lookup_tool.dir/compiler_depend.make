# Empty compiler generated dependencies file for lookup_tool.
# This may be replaced when dependencies are built.
