file(REMOVE_RECURSE
  "CMakeFiles/lookup_tool.dir/lookup_tool.cpp.o"
  "CMakeFiles/lookup_tool.dir/lookup_tool.cpp.o.d"
  "lookup_tool"
  "lookup_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookup_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
