# Empty compiler generated dependencies file for random_audit.
# This may be replaced when dependencies are built.
