file(REMOVE_RECURSE
  "CMakeFiles/random_audit.dir/random_audit.cpp.o"
  "CMakeFiles/random_audit.dir/random_audit.cpp.o.d"
  "random_audit"
  "random_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
