# Empty dependencies file for gxx_counterexample.
# This may be replaced when dependencies are built.
