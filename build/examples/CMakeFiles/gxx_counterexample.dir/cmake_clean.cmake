file(REMOVE_RECURSE
  "CMakeFiles/gxx_counterexample.dir/gxx_counterexample.cpp.o"
  "CMakeFiles/gxx_counterexample.dir/gxx_counterexample.cpp.o.d"
  "gxx_counterexample"
  "gxx_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gxx_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
