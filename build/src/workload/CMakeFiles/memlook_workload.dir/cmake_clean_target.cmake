file(REMOVE_RECURSE
  "libmemlook_workload.a"
)
