# Empty dependencies file for memlook_workload.
# This may be replaced when dependencies are built.
