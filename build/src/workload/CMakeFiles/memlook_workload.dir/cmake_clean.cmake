file(REMOVE_RECURSE
  "CMakeFiles/memlook_workload.dir/Generators.cpp.o"
  "CMakeFiles/memlook_workload.dir/Generators.cpp.o.d"
  "libmemlook_workload.a"
  "libmemlook_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
