file(REMOVE_RECURSE
  "CMakeFiles/memlook_frontend.dir/CodeResolution.cpp.o"
  "CMakeFiles/memlook_frontend.dir/CodeResolution.cpp.o.d"
  "CMakeFiles/memlook_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/memlook_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/memlook_frontend.dir/Parser.cpp.o"
  "CMakeFiles/memlook_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/memlook_frontend.dir/SourcePrinter.cpp.o"
  "CMakeFiles/memlook_frontend.dir/SourcePrinter.cpp.o.d"
  "libmemlook_frontend.a"
  "libmemlook_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
