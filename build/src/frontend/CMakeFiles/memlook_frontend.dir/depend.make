# Empty dependencies file for memlook_frontend.
# This may be replaced when dependencies are built.
