file(REMOVE_RECURSE
  "libmemlook_frontend.a"
)
