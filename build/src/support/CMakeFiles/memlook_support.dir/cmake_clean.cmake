file(REMOVE_RECURSE
  "CMakeFiles/memlook_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/memlook_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/memlook_support.dir/DotWriter.cpp.o"
  "CMakeFiles/memlook_support.dir/DotWriter.cpp.o.d"
  "CMakeFiles/memlook_support.dir/StringInterner.cpp.o"
  "CMakeFiles/memlook_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/memlook_support.dir/TopologicalSort.cpp.o"
  "CMakeFiles/memlook_support.dir/TopologicalSort.cpp.o.d"
  "libmemlook_support.a"
  "libmemlook_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
