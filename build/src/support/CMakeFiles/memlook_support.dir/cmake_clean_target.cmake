file(REMOVE_RECURSE
  "libmemlook_support.a"
)
