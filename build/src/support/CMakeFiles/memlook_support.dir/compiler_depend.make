# Empty compiler generated dependencies file for memlook_support.
# This may be replaced when dependencies are built.
