file(REMOVE_RECURSE
  "CMakeFiles/memlook_core.dir/AccessControl.cpp.o"
  "CMakeFiles/memlook_core.dir/AccessControl.cpp.o.d"
  "CMakeFiles/memlook_core.dir/DifferentialCheck.cpp.o"
  "CMakeFiles/memlook_core.dir/DifferentialCheck.cpp.o.d"
  "CMakeFiles/memlook_core.dir/DominanceLookupEngine.cpp.o"
  "CMakeFiles/memlook_core.dir/DominanceLookupEngine.cpp.o.d"
  "CMakeFiles/memlook_core.dir/ExplainAmbiguity.cpp.o"
  "CMakeFiles/memlook_core.dir/ExplainAmbiguity.cpp.o.d"
  "CMakeFiles/memlook_core.dir/GxxBfsEngine.cpp.o"
  "CMakeFiles/memlook_core.dir/GxxBfsEngine.cpp.o.d"
  "CMakeFiles/memlook_core.dir/LookupEngine.cpp.o"
  "CMakeFiles/memlook_core.dir/LookupEngine.cpp.o.d"
  "CMakeFiles/memlook_core.dir/LookupResult.cpp.o"
  "CMakeFiles/memlook_core.dir/LookupResult.cpp.o.d"
  "CMakeFiles/memlook_core.dir/MostDominant.cpp.o"
  "CMakeFiles/memlook_core.dir/MostDominant.cpp.o.d"
  "CMakeFiles/memlook_core.dir/NaivePropagationEngine.cpp.o"
  "CMakeFiles/memlook_core.dir/NaivePropagationEngine.cpp.o.d"
  "CMakeFiles/memlook_core.dir/QualifiedLookup.cpp.o"
  "CMakeFiles/memlook_core.dir/QualifiedLookup.cpp.o.d"
  "CMakeFiles/memlook_core.dir/SubobjectLookupEngine.cpp.o"
  "CMakeFiles/memlook_core.dir/SubobjectLookupEngine.cpp.o.d"
  "CMakeFiles/memlook_core.dir/TableStatistics.cpp.o"
  "CMakeFiles/memlook_core.dir/TableStatistics.cpp.o.d"
  "CMakeFiles/memlook_core.dir/TopsortShortcutEngine.cpp.o"
  "CMakeFiles/memlook_core.dir/TopsortShortcutEngine.cpp.o.d"
  "CMakeFiles/memlook_core.dir/UnqualifiedLookup.cpp.o"
  "CMakeFiles/memlook_core.dir/UnqualifiedLookup.cpp.o.d"
  "CMakeFiles/memlook_core.dir/UsingDeclarations.cpp.o"
  "CMakeFiles/memlook_core.dir/UsingDeclarations.cpp.o.d"
  "libmemlook_core.a"
  "libmemlook_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
