file(REMOVE_RECURSE
  "libmemlook_core.a"
)
