
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AccessControl.cpp" "src/core/CMakeFiles/memlook_core.dir/AccessControl.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/AccessControl.cpp.o.d"
  "/root/repo/src/core/DifferentialCheck.cpp" "src/core/CMakeFiles/memlook_core.dir/DifferentialCheck.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/DifferentialCheck.cpp.o.d"
  "/root/repo/src/core/DominanceLookupEngine.cpp" "src/core/CMakeFiles/memlook_core.dir/DominanceLookupEngine.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/DominanceLookupEngine.cpp.o.d"
  "/root/repo/src/core/ExplainAmbiguity.cpp" "src/core/CMakeFiles/memlook_core.dir/ExplainAmbiguity.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/ExplainAmbiguity.cpp.o.d"
  "/root/repo/src/core/GxxBfsEngine.cpp" "src/core/CMakeFiles/memlook_core.dir/GxxBfsEngine.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/GxxBfsEngine.cpp.o.d"
  "/root/repo/src/core/LookupEngine.cpp" "src/core/CMakeFiles/memlook_core.dir/LookupEngine.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/LookupEngine.cpp.o.d"
  "/root/repo/src/core/LookupResult.cpp" "src/core/CMakeFiles/memlook_core.dir/LookupResult.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/LookupResult.cpp.o.d"
  "/root/repo/src/core/MostDominant.cpp" "src/core/CMakeFiles/memlook_core.dir/MostDominant.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/MostDominant.cpp.o.d"
  "/root/repo/src/core/NaivePropagationEngine.cpp" "src/core/CMakeFiles/memlook_core.dir/NaivePropagationEngine.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/NaivePropagationEngine.cpp.o.d"
  "/root/repo/src/core/QualifiedLookup.cpp" "src/core/CMakeFiles/memlook_core.dir/QualifiedLookup.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/QualifiedLookup.cpp.o.d"
  "/root/repo/src/core/SubobjectLookupEngine.cpp" "src/core/CMakeFiles/memlook_core.dir/SubobjectLookupEngine.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/SubobjectLookupEngine.cpp.o.d"
  "/root/repo/src/core/TableStatistics.cpp" "src/core/CMakeFiles/memlook_core.dir/TableStatistics.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/TableStatistics.cpp.o.d"
  "/root/repo/src/core/TopsortShortcutEngine.cpp" "src/core/CMakeFiles/memlook_core.dir/TopsortShortcutEngine.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/TopsortShortcutEngine.cpp.o.d"
  "/root/repo/src/core/UnqualifiedLookup.cpp" "src/core/CMakeFiles/memlook_core.dir/UnqualifiedLookup.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/UnqualifiedLookup.cpp.o.d"
  "/root/repo/src/core/UsingDeclarations.cpp" "src/core/CMakeFiles/memlook_core.dir/UsingDeclarations.cpp.o" "gcc" "src/core/CMakeFiles/memlook_core.dir/UsingDeclarations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chg/CMakeFiles/memlook_chg.dir/DependInfo.cmake"
  "/root/repo/build/src/subobject/CMakeFiles/memlook_subobject.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
