# Empty dependencies file for memlook_core.
# This may be replaced when dependencies are built.
