# Empty dependencies file for memlook_chg.
# This may be replaced when dependencies are built.
