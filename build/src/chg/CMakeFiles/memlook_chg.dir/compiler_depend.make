# Empty compiler generated dependencies file for memlook_chg.
# This may be replaced when dependencies are built.
