
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chg/DotExport.cpp" "src/chg/CMakeFiles/memlook_chg.dir/DotExport.cpp.o" "gcc" "src/chg/CMakeFiles/memlook_chg.dir/DotExport.cpp.o.d"
  "/root/repo/src/chg/Hierarchy.cpp" "src/chg/CMakeFiles/memlook_chg.dir/Hierarchy.cpp.o" "gcc" "src/chg/CMakeFiles/memlook_chg.dir/Hierarchy.cpp.o.d"
  "/root/repo/src/chg/HierarchyBuilder.cpp" "src/chg/CMakeFiles/memlook_chg.dir/HierarchyBuilder.cpp.o" "gcc" "src/chg/CMakeFiles/memlook_chg.dir/HierarchyBuilder.cpp.o.d"
  "/root/repo/src/chg/Path.cpp" "src/chg/CMakeFiles/memlook_chg.dir/Path.cpp.o" "gcc" "src/chg/CMakeFiles/memlook_chg.dir/Path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
