file(REMOVE_RECURSE
  "libmemlook_chg.a"
)
