file(REMOVE_RECURSE
  "CMakeFiles/memlook_chg.dir/DotExport.cpp.o"
  "CMakeFiles/memlook_chg.dir/DotExport.cpp.o.d"
  "CMakeFiles/memlook_chg.dir/Hierarchy.cpp.o"
  "CMakeFiles/memlook_chg.dir/Hierarchy.cpp.o.d"
  "CMakeFiles/memlook_chg.dir/HierarchyBuilder.cpp.o"
  "CMakeFiles/memlook_chg.dir/HierarchyBuilder.cpp.o.d"
  "CMakeFiles/memlook_chg.dir/Path.cpp.o"
  "CMakeFiles/memlook_chg.dir/Path.cpp.o.d"
  "libmemlook_chg.a"
  "libmemlook_chg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_chg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
