# Empty compiler generated dependencies file for memlook_subobject.
# This may be replaced when dependencies are built.
