file(REMOVE_RECURSE
  "libmemlook_subobject.a"
)
