file(REMOVE_RECURSE
  "CMakeFiles/memlook_subobject.dir/SubobjectCount.cpp.o"
  "CMakeFiles/memlook_subobject.dir/SubobjectCount.cpp.o.d"
  "CMakeFiles/memlook_subobject.dir/SubobjectGraph.cpp.o"
  "CMakeFiles/memlook_subobject.dir/SubobjectGraph.cpp.o.d"
  "libmemlook_subobject.a"
  "libmemlook_subobject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_subobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
