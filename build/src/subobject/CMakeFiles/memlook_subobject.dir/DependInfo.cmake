
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subobject/SubobjectCount.cpp" "src/subobject/CMakeFiles/memlook_subobject.dir/SubobjectCount.cpp.o" "gcc" "src/subobject/CMakeFiles/memlook_subobject.dir/SubobjectCount.cpp.o.d"
  "/root/repo/src/subobject/SubobjectGraph.cpp" "src/subobject/CMakeFiles/memlook_subobject.dir/SubobjectGraph.cpp.o" "gcc" "src/subobject/CMakeFiles/memlook_subobject.dir/SubobjectGraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chg/CMakeFiles/memlook_chg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
