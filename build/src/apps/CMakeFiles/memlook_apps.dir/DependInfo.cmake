
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/CompleteObjectVTables.cpp" "src/apps/CMakeFiles/memlook_apps.dir/CompleteObjectVTables.cpp.o" "gcc" "src/apps/CMakeFiles/memlook_apps.dir/CompleteObjectVTables.cpp.o.d"
  "/root/repo/src/apps/HierarchySlicer.cpp" "src/apps/CMakeFiles/memlook_apps.dir/HierarchySlicer.cpp.o" "gcc" "src/apps/CMakeFiles/memlook_apps.dir/HierarchySlicer.cpp.o.d"
  "/root/repo/src/apps/ObjectLayout.cpp" "src/apps/CMakeFiles/memlook_apps.dir/ObjectLayout.cpp.o" "gcc" "src/apps/CMakeFiles/memlook_apps.dir/ObjectLayout.cpp.o.d"
  "/root/repo/src/apps/VTableBuilder.cpp" "src/apps/CMakeFiles/memlook_apps.dir/VTableBuilder.cpp.o" "gcc" "src/apps/CMakeFiles/memlook_apps.dir/VTableBuilder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/memlook_core.dir/DependInfo.cmake"
  "/root/repo/build/src/subobject/CMakeFiles/memlook_subobject.dir/DependInfo.cmake"
  "/root/repo/build/src/chg/CMakeFiles/memlook_chg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
