file(REMOVE_RECURSE
  "CMakeFiles/memlook_apps.dir/CompleteObjectVTables.cpp.o"
  "CMakeFiles/memlook_apps.dir/CompleteObjectVTables.cpp.o.d"
  "CMakeFiles/memlook_apps.dir/HierarchySlicer.cpp.o"
  "CMakeFiles/memlook_apps.dir/HierarchySlicer.cpp.o.d"
  "CMakeFiles/memlook_apps.dir/ObjectLayout.cpp.o"
  "CMakeFiles/memlook_apps.dir/ObjectLayout.cpp.o.d"
  "CMakeFiles/memlook_apps.dir/VTableBuilder.cpp.o"
  "CMakeFiles/memlook_apps.dir/VTableBuilder.cpp.o.d"
  "libmemlook_apps.a"
  "libmemlook_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
