# Empty compiler generated dependencies file for memlook_apps.
# This may be replaced when dependencies are built.
