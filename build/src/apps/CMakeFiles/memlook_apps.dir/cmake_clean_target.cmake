file(REMOVE_RECURSE
  "libmemlook_apps.a"
)
