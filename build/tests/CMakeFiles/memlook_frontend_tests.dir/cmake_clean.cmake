file(REMOVE_RECURSE
  "CMakeFiles/memlook_frontend_tests.dir/frontend/CodeResolutionTest.cpp.o"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/CodeResolutionTest.cpp.o.d"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/CorpusTest.cpp.o"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/CorpusTest.cpp.o.d"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/LexerTest.cpp.o"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/LexerTest.cpp.o.d"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/ParserTest.cpp.o"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/ParserTest.cpp.o.d"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/SourcePrinterTest.cpp.o"
  "CMakeFiles/memlook_frontend_tests.dir/frontend/SourcePrinterTest.cpp.o.d"
  "memlook_frontend_tests"
  "memlook_frontend_tests.pdb"
  "memlook_frontend_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_frontend_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
