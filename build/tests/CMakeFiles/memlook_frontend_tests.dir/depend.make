# Empty dependencies file for memlook_frontend_tests.
# This may be replaced when dependencies are built.
