# Empty dependencies file for memlook_workload_tests.
# This may be replaced when dependencies are built.
