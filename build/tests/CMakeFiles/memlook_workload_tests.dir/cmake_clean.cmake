file(REMOVE_RECURSE
  "CMakeFiles/memlook_workload_tests.dir/workload/GeneratorsTest.cpp.o"
  "CMakeFiles/memlook_workload_tests.dir/workload/GeneratorsTest.cpp.o.d"
  "memlook_workload_tests"
  "memlook_workload_tests.pdb"
  "memlook_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
