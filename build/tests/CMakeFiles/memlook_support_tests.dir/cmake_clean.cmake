file(REMOVE_RECURSE
  "CMakeFiles/memlook_support_tests.dir/support/BitVectorTest.cpp.o"
  "CMakeFiles/memlook_support_tests.dir/support/BitVectorTest.cpp.o.d"
  "CMakeFiles/memlook_support_tests.dir/support/ContractsTest.cpp.o"
  "CMakeFiles/memlook_support_tests.dir/support/ContractsTest.cpp.o.d"
  "CMakeFiles/memlook_support_tests.dir/support/DiagnosticsTest.cpp.o"
  "CMakeFiles/memlook_support_tests.dir/support/DiagnosticsTest.cpp.o.d"
  "CMakeFiles/memlook_support_tests.dir/support/DotWriterTest.cpp.o"
  "CMakeFiles/memlook_support_tests.dir/support/DotWriterTest.cpp.o.d"
  "CMakeFiles/memlook_support_tests.dir/support/RngTest.cpp.o"
  "CMakeFiles/memlook_support_tests.dir/support/RngTest.cpp.o.d"
  "CMakeFiles/memlook_support_tests.dir/support/StringInternerTest.cpp.o"
  "CMakeFiles/memlook_support_tests.dir/support/StringInternerTest.cpp.o.d"
  "CMakeFiles/memlook_support_tests.dir/support/TopologicalSortTest.cpp.o"
  "CMakeFiles/memlook_support_tests.dir/support/TopologicalSortTest.cpp.o.d"
  "memlook_support_tests"
  "memlook_support_tests.pdb"
  "memlook_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
