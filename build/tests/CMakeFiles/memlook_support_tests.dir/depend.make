# Empty dependencies file for memlook_support_tests.
# This may be replaced when dependencies are built.
