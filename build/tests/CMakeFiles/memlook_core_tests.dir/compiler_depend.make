# Empty compiler generated dependencies file for memlook_core_tests.
# This may be replaced when dependencies are built.
