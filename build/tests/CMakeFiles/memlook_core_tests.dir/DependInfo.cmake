
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/AccessTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/AccessTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/AccessTest.cpp.o.d"
  "/root/repo/tests/core/DifferentialCheckTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/DifferentialCheckTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/DifferentialCheckTest.cpp.o.d"
  "/root/repo/tests/core/DifferentialTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/DifferentialTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/DifferentialTest.cpp.o.d"
  "/root/repo/tests/core/DynStatTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/DynStatTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/DynStatTest.cpp.o.d"
  "/root/repo/tests/core/ExplainAmbiguityTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/ExplainAmbiguityTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/ExplainAmbiguityTest.cpp.o.d"
  "/root/repo/tests/core/Figure8Test.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/Figure8Test.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/Figure8Test.cpp.o.d"
  "/root/repo/tests/core/GxxCounterexampleTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/GxxCounterexampleTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/GxxCounterexampleTest.cpp.o.d"
  "/root/repo/tests/core/KillingTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/KillingTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/KillingTest.cpp.o.d"
  "/root/repo/tests/core/LookupResultTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/LookupResultTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/LookupResultTest.cpp.o.d"
  "/root/repo/tests/core/OverflowBehaviorTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/OverflowBehaviorTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/OverflowBehaviorTest.cpp.o.d"
  "/root/repo/tests/core/PaperFiguresTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/PaperFiguresTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/PaperFiguresTest.cpp.o.d"
  "/root/repo/tests/core/PropagationTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/PropagationTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/PropagationTest.cpp.o.d"
  "/root/repo/tests/core/QualifiedLookupTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/QualifiedLookupTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/QualifiedLookupTest.cpp.o.d"
  "/root/repo/tests/core/StaticMembersTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/StaticMembersTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/StaticMembersTest.cpp.o.d"
  "/root/repo/tests/core/StressTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/StressTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/StressTest.cpp.o.d"
  "/root/repo/tests/core/TableStatisticsTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/TableStatisticsTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/TableStatisticsTest.cpp.o.d"
  "/root/repo/tests/core/TabulationModesTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/TabulationModesTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/TabulationModesTest.cpp.o.d"
  "/root/repo/tests/core/TopsortShortcutTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/TopsortShortcutTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/TopsortShortcutTest.cpp.o.d"
  "/root/repo/tests/core/UnqualifiedTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/UnqualifiedTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/UnqualifiedTest.cpp.o.d"
  "/root/repo/tests/core/UsingDeclarationsTest.cpp" "tests/CMakeFiles/memlook_core_tests.dir/core/UsingDeclarationsTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_core_tests.dir/core/UsingDeclarationsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  "/root/repo/build/src/chg/CMakeFiles/memlook_chg.dir/DependInfo.cmake"
  "/root/repo/build/src/subobject/CMakeFiles/memlook_subobject.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/memlook_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/memlook_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/memlook_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memlook_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
