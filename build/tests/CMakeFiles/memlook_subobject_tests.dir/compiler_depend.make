# Empty compiler generated dependencies file for memlook_subobject_tests.
# This may be replaced when dependencies are built.
