file(REMOVE_RECURSE
  "CMakeFiles/memlook_subobject_tests.dir/subobject/ComposeKeysTest.cpp.o"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/ComposeKeysTest.cpp.o.d"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/DefnsTest.cpp.o"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/DefnsTest.cpp.o.d"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/SubobjectCountTest.cpp.o"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/SubobjectCountTest.cpp.o.d"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/SubobjectGraphTest.cpp.o"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/SubobjectGraphTest.cpp.o.d"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/Theorem1Test.cpp.o"
  "CMakeFiles/memlook_subobject_tests.dir/subobject/Theorem1Test.cpp.o.d"
  "memlook_subobject_tests"
  "memlook_subobject_tests.pdb"
  "memlook_subobject_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_subobject_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
