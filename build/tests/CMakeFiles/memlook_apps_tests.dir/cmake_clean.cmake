file(REMOVE_RECURSE
  "CMakeFiles/memlook_apps_tests.dir/apps/CompleteObjectVTablesTest.cpp.o"
  "CMakeFiles/memlook_apps_tests.dir/apps/CompleteObjectVTablesTest.cpp.o.d"
  "CMakeFiles/memlook_apps_tests.dir/apps/HierarchySlicerTest.cpp.o"
  "CMakeFiles/memlook_apps_tests.dir/apps/HierarchySlicerTest.cpp.o.d"
  "CMakeFiles/memlook_apps_tests.dir/apps/ObjectLayoutTest.cpp.o"
  "CMakeFiles/memlook_apps_tests.dir/apps/ObjectLayoutTest.cpp.o.d"
  "CMakeFiles/memlook_apps_tests.dir/apps/VTableBuilderTest.cpp.o"
  "CMakeFiles/memlook_apps_tests.dir/apps/VTableBuilderTest.cpp.o.d"
  "memlook_apps_tests"
  "memlook_apps_tests.pdb"
  "memlook_apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
