
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/CompleteObjectVTablesTest.cpp" "tests/CMakeFiles/memlook_apps_tests.dir/apps/CompleteObjectVTablesTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_apps_tests.dir/apps/CompleteObjectVTablesTest.cpp.o.d"
  "/root/repo/tests/apps/HierarchySlicerTest.cpp" "tests/CMakeFiles/memlook_apps_tests.dir/apps/HierarchySlicerTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_apps_tests.dir/apps/HierarchySlicerTest.cpp.o.d"
  "/root/repo/tests/apps/ObjectLayoutTest.cpp" "tests/CMakeFiles/memlook_apps_tests.dir/apps/ObjectLayoutTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_apps_tests.dir/apps/ObjectLayoutTest.cpp.o.d"
  "/root/repo/tests/apps/VTableBuilderTest.cpp" "tests/CMakeFiles/memlook_apps_tests.dir/apps/VTableBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_apps_tests.dir/apps/VTableBuilderTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  "/root/repo/build/src/chg/CMakeFiles/memlook_chg.dir/DependInfo.cmake"
  "/root/repo/build/src/subobject/CMakeFiles/memlook_subobject.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/memlook_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/memlook_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/memlook_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memlook_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
