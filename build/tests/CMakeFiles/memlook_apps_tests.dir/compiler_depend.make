# Empty compiler generated dependencies file for memlook_apps_tests.
# This may be replaced when dependencies are built.
