# Empty dependencies file for memlook_chg_tests.
# This may be replaced when dependencies are built.
