
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chg/ClosureBruteForceTest.cpp" "tests/CMakeFiles/memlook_chg_tests.dir/chg/ClosureBruteForceTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_chg_tests.dir/chg/ClosureBruteForceTest.cpp.o.d"
  "/root/repo/tests/chg/DominanceLawsTest.cpp" "tests/CMakeFiles/memlook_chg_tests.dir/chg/DominanceLawsTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_chg_tests.dir/chg/DominanceLawsTest.cpp.o.d"
  "/root/repo/tests/chg/DotExportTest.cpp" "tests/CMakeFiles/memlook_chg_tests.dir/chg/DotExportTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_chg_tests.dir/chg/DotExportTest.cpp.o.d"
  "/root/repo/tests/chg/HierarchyBuilderTest.cpp" "tests/CMakeFiles/memlook_chg_tests.dir/chg/HierarchyBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_chg_tests.dir/chg/HierarchyBuilderTest.cpp.o.d"
  "/root/repo/tests/chg/HierarchyTest.cpp" "tests/CMakeFiles/memlook_chg_tests.dir/chg/HierarchyTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_chg_tests.dir/chg/HierarchyTest.cpp.o.d"
  "/root/repo/tests/chg/PathCalculusTest.cpp" "tests/CMakeFiles/memlook_chg_tests.dir/chg/PathCalculusTest.cpp.o" "gcc" "tests/CMakeFiles/memlook_chg_tests.dir/chg/PathCalculusTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/memlook_support.dir/DependInfo.cmake"
  "/root/repo/build/src/chg/CMakeFiles/memlook_chg.dir/DependInfo.cmake"
  "/root/repo/build/src/subobject/CMakeFiles/memlook_subobject.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/memlook_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/memlook_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/memlook_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/memlook_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
