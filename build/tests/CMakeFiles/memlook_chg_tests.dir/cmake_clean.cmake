file(REMOVE_RECURSE
  "CMakeFiles/memlook_chg_tests.dir/chg/ClosureBruteForceTest.cpp.o"
  "CMakeFiles/memlook_chg_tests.dir/chg/ClosureBruteForceTest.cpp.o.d"
  "CMakeFiles/memlook_chg_tests.dir/chg/DominanceLawsTest.cpp.o"
  "CMakeFiles/memlook_chg_tests.dir/chg/DominanceLawsTest.cpp.o.d"
  "CMakeFiles/memlook_chg_tests.dir/chg/DotExportTest.cpp.o"
  "CMakeFiles/memlook_chg_tests.dir/chg/DotExportTest.cpp.o.d"
  "CMakeFiles/memlook_chg_tests.dir/chg/HierarchyBuilderTest.cpp.o"
  "CMakeFiles/memlook_chg_tests.dir/chg/HierarchyBuilderTest.cpp.o.d"
  "CMakeFiles/memlook_chg_tests.dir/chg/HierarchyTest.cpp.o"
  "CMakeFiles/memlook_chg_tests.dir/chg/HierarchyTest.cpp.o.d"
  "CMakeFiles/memlook_chg_tests.dir/chg/PathCalculusTest.cpp.o"
  "CMakeFiles/memlook_chg_tests.dir/chg/PathCalculusTest.cpp.o.d"
  "memlook_chg_tests"
  "memlook_chg_tests.pdb"
  "memlook_chg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memlook_chg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
