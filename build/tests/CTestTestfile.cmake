# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/memlook_support_tests[1]_include.cmake")
include("/root/repo/build/tests/memlook_chg_tests[1]_include.cmake")
include("/root/repo/build/tests/memlook_subobject_tests[1]_include.cmake")
include("/root/repo/build/tests/memlook_frontend_tests[1]_include.cmake")
include("/root/repo/build/tests/memlook_apps_tests[1]_include.cmake")
include("/root/repo/build/tests/memlook_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/memlook_core_tests[1]_include.cmake")
