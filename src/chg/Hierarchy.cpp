//===- Hierarchy.cpp - C++ class hierarchy graph ---------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/Hierarchy.h"

#include "memlook/support/TopologicalSort.h"

#include <string>

using namespace memlook;

const char *memlook::accessSpelling(AccessSpec Access) {
  switch (Access) {
  case AccessSpec::Public:
    return "public";
  case AccessSpec::Protected:
    return "protected";
  case AccessSpec::Private:
    return "private";
  }
  return "unknown";
}

ClassId Hierarchy::createClass(std::string_view Name, SourceLoc Loc,
                               DiagnosticEngine *Diags) {
  assert(!Finalized && "cannot add classes after finalize()");
  Symbol Sym = Names.intern(Name);
  auto It = ClassByName.find(Sym);
  if (It != ClassByName.end()) {
    if (Diags)
      Diags->error(Loc, "redefinition of class '" + std::string(Name) + "'",
                   DiagCode::DuplicateClass);
    return ClassId();
  }

  ClassId Id(static_cast<uint32_t>(Classes.size()));
  Classes.push_back(ClassInfo{Sym, Loc, {}, {}, {}});
  ClassByName.emplace(Sym, Id);
  return Id;
}

bool Hierarchy::addBase(ClassId Derived, ClassId Base, InheritanceKind Kind,
                        AccessSpec Access, SourceLoc Loc,
                        DiagnosticEngine *Diags) {
  assert(!Finalized && "cannot add edges after finalize()");
  assert(Derived.isValid() && Derived.index() < Classes.size() &&
         "bad derived class id");
  assert(Base.isValid() && Base.index() < Classes.size() && "bad base id");

  if (Base == Derived) {
    if (Diags)
      Diags->error(Loc,
                   "class '" + std::string(className(Derived)) +
                       "' cannot inherit from itself",
                   DiagCode::SelfInheritance);
    return false;
  }

  // C++ forbids naming the same class twice in one base-specifier list
  // ([class.mi]); this also keeps the CHG a plain graph rather than a
  // multigraph, which Definition 15's abstraction operator relies on.
  // A repeat with the *other* inheritance kind gets its own code: it is
  // the classic adversarial probe for engines that key edges by
  // (base, derived) and would silently merge the two kinds.
  ClassInfo &DerivedInfo = Classes[Derived.index()];
  for (const BaseSpecifier &Spec : DerivedInfo.DirectBases)
    if (Spec.Base == Base) {
      bool Conflicting = Spec.Kind != Kind;
      if (Diags)
        Diags->error(Loc,
                     std::string(Conflicting ? "conflicting" : "duplicate") +
                         " direct base class '" +
                         std::string(className(Base)) + "' of '" +
                         std::string(className(Derived)) +
                         (Conflicting ? "' (virtual and non-virtual)" : "'"),
                     Conflicting ? DiagCode::ConflictingBase
                                 : DiagCode::DuplicateBase);
      return false;
    }

  DerivedInfo.DirectBases.push_back(BaseSpecifier{Base, Kind, Access, Loc});
  Classes[Base.index()].DirectDerived.push_back(Derived);
  ++NumEdges;
  return true;
}

void Hierarchy::addMember(ClassId Class, std::string_view Name, bool IsStatic,
                          bool IsVirtual, AccessSpec Access, SourceLoc Loc,
                          DiagnosticEngine *Diags) {
  assert(!Finalized && "cannot add members after finalize()");
  assert(Class.isValid() && Class.index() < Classes.size() && "bad class id");

  Symbol Sym = Names.intern(Name);
  ClassInfo &Info = Classes[Class.index()];
  for (const MemberDecl &Existing : Info.Members)
    if (Existing.Name == Sym) {
      // We model member *names*, not overload sets; fold redeclarations.
      if (Diags)
        Diags->warning(Loc,
                       "member '" + std::string(Name) +
                           "' already declared in class '" +
                           std::string(className(Class)) +
                           "'; ignoring redeclaration",
                       DiagCode::RedeclaredMember);
      return;
    }

  Info.Members.push_back(
      MemberDecl{Sym, IsStatic, IsVirtual, Access, Loc, ClassId()});
  ++NumMemberDecls;
}

void Hierarchy::addUsingDeclaration(ClassId Class, ClassId From,
                                    std::string_view Name, AccessSpec Access,
                                    SourceLoc Loc, DiagnosticEngine *Diags) {
  assert(!Finalized && "cannot add members after finalize()");
  assert(Class.isValid() && Class.index() < Classes.size() && "bad class id");
  assert(From.isValid() && From.index() < Classes.size() && "bad base id");

  Symbol Sym = Names.intern(Name);
  ClassInfo &Info = Classes[Class.index()];
  for (const MemberDecl &Existing : Info.Members)
    if (Existing.Name == Sym) {
      if (Diags)
        Diags->warning(Loc,
                       "member '" + std::string(Name) +
                           "' already declared in class '" +
                           std::string(className(Class)) +
                           "'; ignoring using-declaration",
                       DiagCode::RedeclaredMember);
      return;
    }

  Info.Members.push_back(MemberDecl{Sym, /*IsStatic=*/false,
                                    /*IsVirtual=*/false, Access, Loc, From});
  ++NumMemberDecls;
}

bool Hierarchy::validate(DiagnosticEngine &Diags) const {
  uint32_t N = numClasses();
  std::vector<std::vector<uint32_t>> Successors(N);
  for (uint32_t D = 0; D != N; ++D)
    for (const BaseSpecifier &Spec : Classes[D].DirectBases)
      Successors[Spec.Base.index()].push_back(D);

  bool Ok = true;
  TopologicalSortResult Topo = topologicalSort(N, Successors);
  if (!Topo.IsAcyclic) {
    std::string Witness =
        Topo.CycleWitness
            ? std::string(className(ClassId(*Topo.CycleWitness)))
            : std::string("<unknown>");
    Diags.error("inheritance graph is cyclic (class '" + Witness +
                    "' participates in a cycle)",
                DiagCode::InheritanceCycle);
    Ok = false;
  }

  // Using-declaration targets must be (transitive) bases. The closures
  // may not exist yet (and never will on a cyclic graph), so walk the
  // base DAG directly per declaring class; the visited set keeps this
  // linear and cycle-safe.
  std::vector<uint8_t> Reach;
  for (uint32_t D = 0; D != N; ++D) {
    bool AnyUsing = false;
    for (const MemberDecl &Member : Classes[D].Members)
      AnyUsing |= Member.isUsingDeclaration();
    if (!AnyUsing)
      continue;

    Reach.assign(N, 0);
    std::vector<uint32_t> Stack{D};
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (const BaseSpecifier &Spec : Classes[Cur].DirectBases)
        if (!Reach[Spec.Base.index()]) {
          Reach[Spec.Base.index()] = 1;
          Stack.push_back(Spec.Base.index());
        }
    }

    for (const MemberDecl &Member : Classes[D].Members)
      if (Member.isUsingDeclaration() && !Reach[Member.UsingFrom.index()]) {
        Diags.error(Member.Loc,
                    "'" + std::string(className(Member.UsingFrom)) +
                        "' in using-declaration is not a base class of '" +
                        std::string(className(ClassId(D))) + "'",
                    DiagCode::InvalidUsingTarget);
        Ok = false;
      }
  }
  return Ok;
}

bool Hierarchy::finalize(DiagnosticEngine &Diags) {
  assert(!Finalized && "finalize() called twice");

  uint32_t N = numClasses();
  std::vector<std::vector<uint32_t>> Successors(N);
  for (uint32_t D = 0; D != N; ++D)
    for (const BaseSpecifier &Spec : Classes[D].DirectBases)
      Successors[Spec.Base.index()].push_back(D);

  TopologicalSortResult Topo = topologicalSort(N, Successors);
  if (!Topo.IsAcyclic) {
    std::string Witness =
        Topo.CycleWitness
            ? std::string(className(ClassId(*Topo.CycleWitness)))
            : std::string("<unknown>");
    Diags.error("inheritance graph is cyclic (class '" + Witness +
                    "' participates in a cycle)",
                DiagCode::InheritanceCycle);
    return false;
  }

  TopoOrder.reserve(N);
  for (uint32_t Idx : Topo.Order)
    TopoOrder.push_back(ClassId(Idx));

  // Transitive closures, bases before derived:
  //   Bases[D]   = union over direct bases B of D of Bases[B] + {B}
  //   Virtual[D] = union over direct bases B of
  //                  Virtual[B] + ({B} if the edge B->D is virtual)
  // The second line is the paper's Section 2 definition: X is a virtual
  // base of Y iff some path X -> ... -> Y *starts* with a virtual edge.
  BasesClosure = BitMatrix(N, N);
  VirtualClosure = BitMatrix(N, N);
  for (ClassId C : TopoOrder) {
    for (const BaseSpecifier &Spec : Classes[C.index()].DirectBases) {
      BasesClosure.unionRows(C.index(), Spec.Base.index());
      BasesClosure.set(C.index(), Spec.Base.index());
      VirtualClosure.unionRows(C.index(), Spec.Base.index());
      if (Spec.Kind == InheritanceKind::Virtual)
        VirtualClosure.set(C.index(), Spec.Base.index());
    }
  }

  // A using-declaration must name a (transitive) base of its class
  // ([namespace.udecl]); this needs the closure just computed.
  bool UsingOk = true;
  for (uint32_t D = 0; D != N; ++D)
    for (const MemberDecl &Member : Classes[D].Members)
      if (Member.isUsingDeclaration() &&
          !BasesClosure.test(D, Member.UsingFrom.index())) {
        Diags.error(Member.Loc,
                    "'" + std::string(className(Member.UsingFrom)) +
                        "' in using-declaration is not a base class of '" +
                        std::string(className(ClassId(D))) + "'",
                    DiagCode::InvalidUsingTarget);
        UsingOk = false;
      }
  if (!UsingOk)
    return false;

  // Direct-edge attribute index for O(1) edgeKind / edgeAccess.
  for (uint32_t D = 0; D != N; ++D)
    for (const BaseSpecifier &Spec : Classes[D].DirectBases)
      EdgeIndex.emplace(edgeKey(Spec.Base, ClassId(D)),
                        std::make_pair(Spec.Kind, Spec.Access));

  // Collect the program's distinct member names |M| in first-declaration
  // order (deterministic: class creation order, then declaration order).
  std::vector<bool> Seen(Names.size(), false);
  for (const ClassInfo &Info : Classes)
    for (const MemberDecl &Member : Info.Members) {
      if (Member.Name.index() < Seen.size() && Seen[Member.Name.index()])
        continue;
      if (Member.Name.index() >= Seen.size())
        Seen.resize(Member.Name.index() + 1, false);
      Seen[Member.Name.index()] = true;
      MemberNames.push_back(Member.Name);
    }

  Finalized = true;
  return true;
}

ClassId Hierarchy::findClass(std::string_view Name) const {
  Symbol Sym = Names.find(Name);
  if (!Sym.isValid())
    return ClassId();
  auto It = ClassByName.find(Sym);
  return It == ClassByName.end() ? ClassId() : It->second;
}

const MemberDecl *Hierarchy::declaredMember(ClassId Class, Symbol Name) const {
  for (const MemberDecl &Member : info(Class).Members)
    if (Member.Name == Name)
      return &Member;
  return nullptr;
}

std::optional<InheritanceKind> Hierarchy::edgeKind(ClassId Base,
                                                   ClassId Derived) const {
  if (Finalized) {
    auto It = EdgeIndex.find(edgeKey(Base, Derived));
    if (It == EdgeIndex.end())
      return std::nullopt;
    return It->second.first;
  }
  for (const BaseSpecifier &Spec : info(Derived).DirectBases)
    if (Spec.Base == Base)
      return Spec.Kind;
  return std::nullopt;
}

std::optional<AccessSpec> Hierarchy::edgeAccess(ClassId Base,
                                                ClassId Derived) const {
  if (Finalized) {
    auto It = EdgeIndex.find(edgeKey(Base, Derived));
    if (It == EdgeIndex.end())
      return std::nullopt;
    return It->second.second;
  }
  for (const BaseSpecifier &Spec : info(Derived).DirectBases)
    if (Spec.Base == Base)
      return Spec.Access;
  return std::nullopt;
}
