//===- DotExport.cpp - CHG Graphviz export ---------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/DotExport.h"

#include "memlook/support/DotWriter.h"

#include <string>

using namespace memlook;

void memlook::writeHierarchyDot(const Hierarchy &H, std::ostream &OS,
                                std::string_view GraphName) {
  DotWriter Writer(OS, GraphName);

  for (uint32_t Idx = 0, N = H.numClasses(); Idx != N; ++Idx) {
    ClassId Id(Idx);
    const Hierarchy::ClassInfo &Info = H.info(Id);

    std::string Label(H.className(Id));
    for (const MemberDecl &Member : Info.Members) {
      Label += '\n';
      if (Member.IsStatic)
        Label += "static ";
      Label += H.spelling(Member.Name);
      if (!Member.IsStatic)
        Label += "()";
    }
    Writer.node(H.className(Id), Label, "shape=box");
  }

  for (uint32_t Idx = 0, N = H.numClasses(); Idx != N; ++Idx) {
    ClassId Derived(Idx);
    for (const BaseSpecifier &Spec : H.info(Derived).DirectBases)
      Writer.edge(H.className(Spec.Base), H.className(Derived),
                  Spec.Kind == InheritanceKind::Virtual);
  }
}
