//===- Path.cpp - CHG path calculus ----------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/Path.h"

#include <algorithm>

using namespace memlook;

bool memlook::isValidPath(const Hierarchy &H, const Path &P) {
  if (P.empty())
    return false;
  for (ClassId Id : P.Nodes)
    if (!Id.isValid() || Id.index() >= H.numClasses())
      return false;
  for (size_t I = 0, E = P.length() - 1; I != E; ++I)
    if (!H.edgeKind(P.Nodes[I], P.Nodes[I + 1]))
      return false;
  return true;
}

size_t memlook::fixedLength(const Hierarchy &H, const Path &P) {
  assert(!P.empty() && "fixed() of empty path");
  size_t Len = 1;
  for (size_t I = 0, E = P.length() - 1; I != E; ++I) {
    auto Kind = H.edgeKind(P.Nodes[I], P.Nodes[I + 1]);
    assert(Kind && "not a CHG path");
    if (*Kind == InheritanceKind::Virtual)
      break;
    ++Len;
  }
  return Len;
}

Path memlook::fixedPrefix(const Hierarchy &H, const Path &P) {
  size_t Len = fixedLength(H, P);
  return Path(std::vector<ClassId>(P.Nodes.begin(), P.Nodes.begin() + Len));
}

bool memlook::isVPath(const Hierarchy &H, const Path &P) {
  return fixedLength(H, P) != P.length();
}

ClassId memlook::leastVirtual(const Hierarchy &H, const Path &P) {
  size_t Len = fixedLength(H, P);
  if (Len == P.length())
    return ClassId(); // not a v-path: Omega
  return P.Nodes[Len - 1];
}

SubobjectKey memlook::subobjectKey(const Hierarchy &H, const Path &P) {
  size_t Len = fixedLength(H, P);
  return SubobjectKey{
      std::vector<ClassId>(P.Nodes.begin(), P.Nodes.begin() + Len), P.mdc()};
}

bool memlook::equivalent(const Hierarchy &H, const Path &A, const Path &B) {
  if (A.mdc() != B.mdc())
    return false;
  size_t LenA = fixedLength(H, A);
  size_t LenB = fixedLength(H, B);
  return LenA == LenB &&
         std::equal(A.Nodes.begin(), A.Nodes.begin() + LenA, B.Nodes.begin());
}

bool memlook::hides(const Path &A, const Path &B) {
  if (A.length() > B.length())
    return false;
  return std::equal(A.Nodes.begin(), A.Nodes.end(),
                    B.Nodes.end() - static_cast<ptrdiff_t>(A.length()));
}

/// Shared implementation of the general dominance test on the canonical
/// data (fixed part of each side, plus mdc equality checked by callers).
static bool dominatesImpl(const Hierarchy &H, const std::vector<ClassId> &FixedA,
                          const std::vector<ClassId> &FixedB, bool BIsVPath) {
  // Case (i): fixed(a) is a suffix of fixed(b); the missing prefix is a
  // chain of non-virtual edges we can prepend to a to reach a ~-witness
  // of b.
  if (FixedA.size() <= FixedB.size() &&
      std::equal(FixedA.begin(), FixedA.end(),
                 FixedB.end() - static_cast<ptrdiff_t>(FixedA.size())))
    return true;

  // Case (ii): b crosses a virtual edge right after fixed(b); if
  // mdc(fixed(b)) is a virtual base of ldc(a) we can route fixed(b),
  // a virtual edge, and any continuation down to ldc(a), then a itself.
  return BIsVPath && H.isVirtualBaseOf(FixedB.back(), FixedA.front());
}

bool memlook::dominates(const Hierarchy &H, const Path &A, const Path &B) {
  if (A.mdc() != B.mdc())
    return false;
  size_t LenA = fixedLength(H, A);
  size_t LenB = fixedLength(H, B);
  std::vector<ClassId> FixedA(A.Nodes.begin(), A.Nodes.begin() + LenA);
  std::vector<ClassId> FixedB(B.Nodes.begin(), B.Nodes.begin() + LenB);
  return dominatesImpl(H, FixedA, FixedB, LenB != B.length());
}

bool memlook::dominates(const Hierarchy &H, const SubobjectKey &A,
                        const SubobjectKey &B) {
  if (A.Mdc != B.Mdc)
    return false;
  return dominatesImpl(H, A.Fixed, B.Fixed, B.isVirtualPathClass());
}

Path memlook::concat(const Path &A, const Path &B) {
  assert(!A.empty() && !B.empty() && "concat of empty path");
  assert(A.mdc() == B.ldc() && "paths do not meet");
  Path Result;
  Result.Nodes.reserve(A.length() + B.length() - 1);
  Result.Nodes = A.Nodes;
  Result.Nodes.insert(Result.Nodes.end(), B.Nodes.begin() + 1, B.Nodes.end());
  return Result;
}

Path memlook::extend(const Path &P, ClassId Next) {
  Path Result = P;
  Result.Nodes.push_back(Next);
  return Result;
}

std::string memlook::formatPath(const Hierarchy &H, const Path &P) {
  // The paper runs single-letter class names together ("ABDFH"); fall
  // back to dot separators once any name is longer.
  bool AllSingle = true;
  for (ClassId Id : P.Nodes)
    if (H.className(Id).size() != 1) {
      AllSingle = false;
      break;
    }

  std::string Out;
  for (size_t I = 0, E = P.length(); I != E; ++I) {
    if (I != 0 && !AllSingle)
      Out += '.';
    Out += H.className(P.Nodes[I]);
  }
  return Out;
}

std::string memlook::formatSubobjectKey(const Hierarchy &H,
                                        const SubobjectKey &Key) {
  std::string Out = formatPath(H, Path(Key.Fixed));
  if (Key.isVirtualPathClass()) {
    Out += '*';
    Out += H.className(Key.Mdc);
  }
  return Out;
}

namespace {

/// Forward DFS emitting every From->...->To path in lexicographic node
/// order. Bounded by MaxPaths.
class ForwardEnumerator {
public:
  ForwardEnumerator(const Hierarchy &H, ClassId To,
                    const std::function<void(const Path &)> &Visit,
                    size_t MaxPaths)
      : H(H), To(To), Visit(Visit), Remaining(MaxPaths) {}

  bool run(ClassId From) {
    Current.Nodes.push_back(From);
    bool Complete = walk(From);
    Current.Nodes.pop_back();
    return Complete;
  }

private:
  bool walk(ClassId At) {
    if (At == To) {
      if (Remaining == 0)
        return false;
      --Remaining;
      Visit(Current);
      // A DAG path cannot revisit To, so stop here.
      return true;
    }

    std::vector<ClassId> Next = H.info(At).DirectDerived;
    std::sort(Next.begin(), Next.end());
    for (ClassId Derived : Next) {
      // Prune branches that cannot reach To.
      if (Derived != To && !H.isBaseOf(Derived, To))
        continue;
      Current.Nodes.push_back(Derived);
      bool Complete = walk(Derived);
      Current.Nodes.pop_back();
      if (!Complete)
        return false;
    }
    return true;
  }

  const Hierarchy &H;
  ClassId To;
  const std::function<void(const Path &)> &Visit;
  size_t Remaining;
  Path Current;
};

} // namespace

bool memlook::enumeratePaths(const Hierarchy &H, ClassId From, ClassId To,
                             const std::function<void(const Path &)> &Visit,
                             size_t MaxPaths) {
  assert(H.isFinalized() && "path enumeration requires finalize()");
  if (From != To && !H.isBaseOf(From, To))
    return true; // no paths at all
  ForwardEnumerator Enumerator(H, To, Visit, MaxPaths);
  return Enumerator.run(From);
}

bool memlook::enumeratePathsTo(const Hierarchy &H, ClassId To,
                               const std::function<void(const Path &)> &Visit,
                               size_t MaxPaths) {
  assert(H.isFinalized() && "path enumeration requires finalize()");

  // Enumerate sources in ascending id, then paths per source.
  size_t Budget = MaxPaths;
  for (uint32_t Idx = 0, N = H.numClasses(); Idx != N; ++Idx) {
    ClassId From(Idx);
    if (From != To && !H.isBaseOf(From, To))
      continue;
    size_t Used = 0;
    auto Counting = [&](const Path &P) {
      ++Used;
      Visit(P);
    };
    if (!enumeratePaths(H, From, To, Counting, Budget))
      return false;
    Budget -= Used;
  }
  return true;
}
