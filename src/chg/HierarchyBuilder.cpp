//===- HierarchyBuilder.cpp - Fluent CHG builder ---------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/HierarchyBuilder.h"

using namespace memlook;

Status memlook::statusFromDiagnostics(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics()) {
    if (D.Level != Severity::Error)
      continue;
    ErrorCode Code = ErrorCode::InvalidArgument;
    switch (D.Code) {
    case DiagCode::UnknownBase:
      Code = ErrorCode::UnknownClass;
      break;
    case DiagCode::DuplicateClass:
      Code = ErrorCode::DuplicateClass;
      break;
    case DiagCode::DuplicateBase:
    case DiagCode::ConflictingBase:
      Code = ErrorCode::DuplicateBase;
      break;
    case DiagCode::SelfInheritance:
    case DiagCode::InheritanceCycle:
      Code = ErrorCode::InheritanceCycle;
      break;
    case DiagCode::InvalidUsingTarget:
      Code = ErrorCode::InvalidUsingTarget;
      break;
    case DiagCode::TooManyClasses:
    case DiagCode::TooManyEdges:
    case DiagCode::TooManyMembers:
    case DiagCode::TooManyErrors:
      Code = ErrorCode::BudgetExceeded;
      break;
    default:
      break;
    }
    return Status::error(Code, D.Message);
  }
  return Status::ok();
}

HierarchyBuilder HierarchyBuilder::fromHierarchy(const Hierarchy &Source) {
  assert(Source.isFinalized() && "copy the finished article, not a draft");
  HierarchyBuilder Builder;
  Hierarchy &H = Builder.H;

  // Topological order guarantees bases exist before their derivers.
  for (ClassId Old : Source.topologicalOrder()) {
    const Hierarchy::ClassInfo &Info = Source.info(Old);
    ClassId New = H.createClass(Source.className(Old), Info.Loc);
    assert(New.isValid() && "source hierarchy had duplicate names?");

    for (const BaseSpecifier &Spec : Info.DirectBases) {
      ClassId NewBase = H.findClass(Source.className(Spec.Base));
      assert(NewBase.isValid() && "base precedes deriver in topo order");
      H.addBase(New, NewBase, Spec.Kind, Spec.Access, Spec.Loc);
    }

    for (const MemberDecl &Member : Info.Members) {
      if (Member.isUsingDeclaration()) {
        ClassId NewFrom = H.findClass(Source.className(Member.UsingFrom));
        assert(NewFrom.isValid());
        H.addUsingDeclaration(New, NewFrom, Source.spelling(Member.Name),
                              Member.Access, Member.Loc);
      } else {
        H.addMember(New, Source.spelling(Member.Name), Member.IsStatic,
                    Member.IsVirtual, Member.Access, Member.Loc);
      }
    }
  }
  return Builder;
}

HierarchyBuilder::ClassHandle
HierarchyBuilder::addClass(std::string_view Name) {
  // createClass records the DuplicateClass diagnostic and returns an
  // invalid id; the handle is then inert.
  ClassId Id = H.createClass(Name, SourceLoc(), &BuildDiags);
  return ClassHandle(*this, Id);
}

HierarchyBuilder::ClassHandle
HierarchyBuilder::getClass(std::string_view Name) {
  ClassId Id = H.findClass(Name);
  if (!Id.isValid())
    BuildDiags.error("unknown class '" + std::string(Name) + "'",
                     DiagCode::UnknownBase);
  return ClassHandle(*this, Id);
}

Hierarchy HierarchyBuilder::build() && {
  assert(!BuildDiags.hasErrors() &&
         "builder recorded construction errors; use tryBuild()");
  DiagnosticEngine Diags;
  bool Ok = H.finalize(Diags);
  (void)Ok;
  assert(Ok && "builder-described hierarchy failed validation");
  return std::move(H);
}

Expected<Hierarchy> HierarchyBuilder::tryBuild(DiagnosticEngine *Diags) && {
  auto FirstError = [](const DiagnosticEngine &Engine) {
    Status S = statusFromDiagnostics(Engine);
    if (!S.isOk())
      return S;
    return Status::error(ErrorCode::InvalidArgument, "unknown builder error");
  };

  auto Forward = [&](const DiagnosticEngine &Engine) {
    if (Diags)
      for (const Diagnostic &D : Engine.diagnostics())
        Diags->report(D.Level, D.Loc, D.Message, D.Code);
  };

  Forward(BuildDiags);
  if (BuildDiags.hasErrors())
    return FirstError(BuildDiags);

  DiagnosticEngine FinalizeDiags;
  if (!H.finalize(FinalizeDiags)) {
    Forward(FinalizeDiags);
    return FirstError(FinalizeDiags);
  }
  Forward(FinalizeDiags); // warnings only
  return std::move(H);
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withBase(std::string_view Name,
                                        AccessSpec Access) {
  if (!valid())
    return *this;
  ClassId Base = Builder.H.findClass(Name);
  if (!Base.isValid()) {
    Builder.BuildDiags.error(
        "base class '" + std::string(Name) + "' of '" +
            std::string(Builder.H.className(Id)) + "' is not defined",
        DiagCode::UnknownBase);
    return *this;
  }
  Builder.H.addBase(Id, Base, InheritanceKind::NonVirtual, Access,
                    SourceLoc(), &Builder.BuildDiags);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withVirtualBase(std::string_view Name,
                                               AccessSpec Access) {
  if (!valid())
    return *this;
  ClassId Base = Builder.H.findClass(Name);
  if (!Base.isValid()) {
    Builder.BuildDiags.error(
        "base class '" + std::string(Name) + "' of '" +
            std::string(Builder.H.className(Id)) + "' is not defined",
        DiagCode::UnknownBase);
    return *this;
  }
  Builder.H.addBase(Id, Base, InheritanceKind::Virtual, Access, SourceLoc(),
                    &Builder.BuildDiags);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withMember(std::string_view Name,
                                          AccessSpec Access) {
  if (!valid())
    return *this;
  Builder.H.addMember(Id, Name, /*IsStatic=*/false, /*IsVirtual=*/false,
                      Access, SourceLoc(), &Builder.BuildDiags);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withStaticMember(std::string_view Name,
                                                AccessSpec Access) {
  if (!valid())
    return *this;
  Builder.H.addMember(Id, Name, /*IsStatic=*/true, /*IsVirtual=*/false,
                      Access, SourceLoc(), &Builder.BuildDiags);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withVirtualMember(std::string_view Name,
                                                 AccessSpec Access) {
  if (!valid())
    return *this;
  Builder.H.addMember(Id, Name, /*IsStatic=*/false, /*IsVirtual=*/true,
                      Access, SourceLoc(), &Builder.BuildDiags);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withUsing(std::string_view From,
                                         std::string_view Name,
                                         AccessSpec Access) {
  if (!valid())
    return *this;
  ClassId FromId = Builder.H.findClass(From);
  if (!FromId.isValid()) {
    Builder.BuildDiags.error("class '" + std::string(From) +
                                 "' in using-declaration is not defined",
                             DiagCode::UnknownBase);
    return *this;
  }
  Builder.H.addUsingDeclaration(Id, FromId, Name, Access, SourceLoc(),
                                &Builder.BuildDiags);
  return *this;
}
