//===- HierarchyBuilder.cpp - Fluent CHG builder ---------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/HierarchyBuilder.h"

using namespace memlook;

HierarchyBuilder HierarchyBuilder::fromHierarchy(const Hierarchy &Source) {
  assert(Source.isFinalized() && "copy the finished article, not a draft");
  HierarchyBuilder Builder;
  Hierarchy &H = Builder.H;

  // Topological order guarantees bases exist before their derivers.
  for (ClassId Old : Source.topologicalOrder()) {
    const Hierarchy::ClassInfo &Info = Source.info(Old);
    ClassId New = H.createClass(Source.className(Old), Info.Loc);
    assert(New.isValid() && "source hierarchy had duplicate names?");

    for (const BaseSpecifier &Spec : Info.DirectBases) {
      ClassId NewBase = H.findClass(Source.className(Spec.Base));
      assert(NewBase.isValid() && "base precedes deriver in topo order");
      H.addBase(New, NewBase, Spec.Kind, Spec.Access, Spec.Loc);
    }

    for (const MemberDecl &Member : Info.Members) {
      if (Member.isUsingDeclaration()) {
        ClassId NewFrom = H.findClass(Source.className(Member.UsingFrom));
        assert(NewFrom.isValid());
        H.addUsingDeclaration(New, NewFrom, Source.spelling(Member.Name),
                              Member.Access, Member.Loc);
      } else {
        H.addMember(New, Source.spelling(Member.Name), Member.IsStatic,
                    Member.IsVirtual, Member.Access, Member.Loc);
      }
    }
  }
  return Builder;
}

HierarchyBuilder::ClassHandle
HierarchyBuilder::addClass(std::string_view Name) {
  ClassId Id = H.createClass(Name);
  assert(Id.isValid() && "duplicate class in builder");
  return ClassHandle(*this, Id);
}

HierarchyBuilder::ClassHandle
HierarchyBuilder::getClass(std::string_view Name) {
  ClassId Id = H.findClass(Name);
  assert(Id.isValid() && "getClass() of unknown class");
  return ClassHandle(*this, Id);
}

Hierarchy HierarchyBuilder::build() && {
  DiagnosticEngine Diags;
  bool Ok = H.finalize(Diags);
  (void)Ok;
  assert(Ok && "builder-described hierarchy failed validation");
  return std::move(H);
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withBase(std::string_view Name,
                                        AccessSpec Access) {
  ClassId Base = Builder.H.findClass(Name);
  assert(Base.isValid() && "base class must be defined before use");
  bool Ok =
      Builder.H.addBase(Id, Base, InheritanceKind::NonVirtual, Access);
  (void)Ok;
  assert(Ok && "invalid base specifier");
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withVirtualBase(std::string_view Name,
                                               AccessSpec Access) {
  ClassId Base = Builder.H.findClass(Name);
  assert(Base.isValid() && "base class must be defined before use");
  bool Ok = Builder.H.addBase(Id, Base, InheritanceKind::Virtual, Access);
  (void)Ok;
  assert(Ok && "invalid base specifier");
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withMember(std::string_view Name,
                                          AccessSpec Access) {
  Builder.H.addMember(Id, Name, /*IsStatic=*/false, /*IsVirtual=*/false,
                      Access);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withStaticMember(std::string_view Name,
                                                AccessSpec Access) {
  Builder.H.addMember(Id, Name, /*IsStatic=*/true, /*IsVirtual=*/false,
                      Access);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withVirtualMember(std::string_view Name,
                                                 AccessSpec Access) {
  Builder.H.addMember(Id, Name, /*IsStatic=*/false, /*IsVirtual=*/true,
                      Access);
  return *this;
}

HierarchyBuilder::ClassHandle &
HierarchyBuilder::ClassHandle::withUsing(std::string_view From,
                                         std::string_view Name,
                                         AccessSpec Access) {
  ClassId FromId = Builder.H.findClass(From);
  assert(FromId.isValid() && "using-declaration names an unknown class");
  Builder.H.addUsingDeclaration(Id, FromId, Name, Access);
  return *this;
}
