//===- TopologicalSort.cpp - DAG ordering ----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/TopologicalSort.h"

#include <cassert>
#include <functional>
#include <queue>

using namespace memlook;

TopologicalSortResult memlook::topologicalSort(
    uint32_t NumNodes, const std::vector<std::vector<uint32_t>> &Successors) {
  assert(Successors.size() == NumNodes && "adjacency list size mismatch");

  TopologicalSortResult Result;
  std::vector<uint32_t> InDegree(NumNodes, 0);
  for (const auto &Succs : Successors)
    for (uint32_t Succ : Succs) {
      assert(Succ < NumNodes && "edge target out of range");
      ++InDegree[Succ];
    }

  // A min-heap of ready nodes makes the order deterministic (smallest
  // index first among nodes whose predecessors are all emitted).
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> Ready;
  for (uint32_t N = 0; N != NumNodes; ++N)
    if (InDegree[N] == 0)
      Ready.push(N);

  Result.Order.reserve(NumNodes);
  while (!Ready.empty()) {
    uint32_t N = Ready.top();
    Ready.pop();
    Result.Order.push_back(N);
    for (uint32_t Succ : Successors[N])
      if (--InDegree[Succ] == 0)
        Ready.push(Succ);
  }

  if (Result.Order.size() == NumNodes) {
    Result.IsAcyclic = true;
    return Result;
  }

  // Some node was never emitted: it sits on (or downstream of) a cycle.
  // Report the smallest node with a remaining in-degree as the witness.
  Result.Order.clear();
  for (uint32_t N = 0; N != NumNodes; ++N)
    if (InDegree[N] != 0) {
      Result.CycleWitness = N;
      break;
    }
  return Result;
}
