//===- CrashPoint.cpp - Fault injection --------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/CrashPoint.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include <signal.h>
#include <unistd.h>

using namespace memlook;

namespace {

struct Arming {
  std::string Name;
  uint64_t HitNumber = 0; // 1-based; 0 = disarmed
  CrashMode Mode = CrashMode::Kill;
  uint64_t PartialBytes = 0;
  uint64_t HitsSeen = 0;
};

// Armed is the fast-path gate: call sites pay one relaxed load until a
// test (or the environment) arms a point, after which the slow path
// takes the mutex. Crash points sit on I/O paths, so the locked slow
// path is noise next to the write() beside it.
std::atomic<bool> Armed{false};
std::atomic<bool> EnvChecked{false};
std::mutex Mu;
Arming Current;
bool EnvParsed = false;

/// Parses MEMLOOK_CRASH_POINT ("<name>@<hit>", "<name>@<hit>=fail",
/// "<name>@<hit>=partial:<bytes>") into Current. Bad specs disarm.
void parseEnvLocked() {
  EnvParsed = true;
  const char *Spec = std::getenv("MEMLOOK_CRASH_POINT");
  if (!Spec || !*Spec)
    return;
  std::string S(Spec);
  size_t At = S.find('@');
  if (At == std::string::npos || At == 0)
    return;
  Current.Name = S.substr(0, At);
  std::string Rest = S.substr(At + 1);
  size_t Eq = Rest.find('=');
  std::string HitStr = Eq == std::string::npos ? Rest : Rest.substr(0, Eq);
  char *End = nullptr;
  unsigned long long Hit = std::strtoull(HitStr.c_str(), &End, 10);
  if (!End || *End != '\0' || Hit == 0) {
    Current = Arming();
    return;
  }
  Current.HitNumber = Hit;
  Current.Mode = CrashMode::Kill;
  if (Eq != std::string::npos) {
    std::string Mode = Rest.substr(Eq + 1);
    if (Mode == "fail") {
      Current.Mode = CrashMode::FailOp;
    } else if (Mode.rfind("partial:", 0) == 0) {
      unsigned long long Bytes =
          std::strtoull(Mode.c_str() + std::strlen("partial:"), &End, 10);
      if (!End || *End != '\0') {
        Current = Arming();
        return;
      }
      Current.Mode = CrashMode::PartialThenKill;
      Current.PartialBytes = Bytes;
    } else {
      Current = Arming();
      return;
    }
  }
  Armed.store(true, std::memory_order_relaxed);
}

} // namespace

void memlook::crashPointKill() {
  // SIGKILL, not _exit(): no atexit handlers, no stdio flushes, nothing
  // the real process would not get to do when the power goes.
  ::kill(::getpid(), SIGKILL);
  // Unreachable unless signal delivery is deferred; make sure.
  for (;;)
    ::pause();
}

CrashDirective memlook::crashPointHit(const char *Name) {
  // The environment channel must be consulted once even when nothing
  // was armed programmatically; after that first consult the disarmed
  // fast path is two relaxed loads.
  if (!EnvChecked.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!EnvParsed)
      parseEnvLocked();
    EnvChecked.store(true, std::memory_order_release);
  }
  if (!Armed.load(std::memory_order_relaxed))
    return CrashDirective();
  std::lock_guard<std::mutex> Lock(Mu);
  if (Current.HitNumber == 0 || Current.Name != Name)
    return CrashDirective();
  if (++Current.HitsSeen != Current.HitNumber)
    return CrashDirective();
  switch (Current.Mode) {
  case CrashMode::Kill:
    crashPointKill();
  case CrashMode::FailOp: {
    CrashDirective D;
    D.Fail = true;
    return D;
  }
  case CrashMode::PartialThenKill: {
    CrashDirective D;
    D.Partial = true;
    D.PartialBytes = Current.PartialBytes;
    return D;
  }
  }
  return CrashDirective();
}

void memlook::armCrashPoint(const char *Name, uint64_t HitNumber,
                            CrashMode Mode, uint64_t PartialBytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  EnvParsed = true; // programmatic arming overrides the environment
  Current = Arming();
  Current.Name = Name;
  Current.HitNumber = HitNumber;
  Current.Mode = Mode;
  Current.PartialBytes = PartialBytes;
  Armed.store(HitNumber != 0, std::memory_order_relaxed);
}

void memlook::disarmCrashPoints() {
  std::lock_guard<std::mutex> Lock(Mu);
  Current = Arming();
  EnvParsed = true;
  Armed.store(false, std::memory_order_relaxed);
}
