//===- StringInterner.cpp - String interning ------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/StringInterner.h"

#include <cassert>

using namespace memlook;

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;

  Spellings.emplace_back(Text);
  Symbol Sym(static_cast<uint32_t>(Spellings.size() - 1));
  Index.emplace(std::string_view(Spellings.back()), Sym);
  return Sym;
}

Symbol StringInterner::find(std::string_view Text) const {
  auto It = Index.find(Text);
  return It == Index.end() ? Symbol() : It->second;
}

std::string_view StringInterner::spelling(Symbol Sym) const {
  assert(Sym.isValid() && Sym.index() < Spellings.size() &&
         "symbol does not belong to this interner");
  return Spellings[Sym.index()];
}
