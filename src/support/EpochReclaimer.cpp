//===- EpochReclaimer.cpp - epoch-based reclamation for read paths --------===//

#include "memlook/support/EpochReclaimer.h"

#include <vector>

#if defined(__linux__) && !MEMLOOK_TSAN
#include <sys/syscall.h>
#include <unistd.h>
// Values from <linux/membarrier.h>; spelled out so pre-4.14 userspace
// headers still compile (the runtime probe below handles old kernels).
#ifndef MEMBARRIER_CMD_PRIVATE_EXPEDITED
#define MEMBARRIER_CMD_PRIVATE_EXPEDITED (1 << 3)
#endif
#ifndef MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED
#define MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED (1 << 4)
#endif
#define MEMLOOK_HAVE_MEMBARRIER 1
#else
#define MEMLOOK_HAVE_MEMBARRIER 0
#endif

namespace memlook {
namespace detail {

static bool initMembarrier() {
#if MEMLOOK_HAVE_MEMBARRIER
  // Registration is per-process and must precede the first expedited
  // barrier.  Runs pre-main (dynamic initializer of MembarrierActive), so
  // every EpochReclaimer user sees a settled flag.
  return syscall(__NR_membarrier, MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED,
                 0, 0) == 0;
#else
  return false;
#endif
}

const bool MembarrierActive = initMembarrier();

void issueMembarrier() {
#if MEMLOOK_HAVE_MEMBARRIER
  syscall(__NR_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0, 0);
#endif
}

} // namespace detail

namespace {

/// One thread's registration with one reclaimer.  The shared_ptr keeps the
/// slot array alive until every registered thread has exited or purged,
/// even if the reclaimer itself is long gone.
struct TlsSlotRef {
  std::shared_ptr<EpochReclaimer::SlotArray> Arr;
  EpochReclaimer::ReaderSlot *Slot = nullptr;
};

/// Per-thread registry.  The destructor (thread exit) releases every
/// claimed slot so slots recycle across short-lived threads.
struct TlsRegistry {
  std::vector<TlsSlotRef> Refs;

  ~TlsRegistry() {
    for (TlsSlotRef &R : Refs)
      if (R.Slot)
        R.Slot->Owned.store(0, std::memory_order_release);
  }
};

TlsRegistry &tlsRegistry() {
  static thread_local TlsRegistry Reg;
  return Reg;
}

} // namespace

EpochReclaimer::ReadGuard::TlsCache &EpochReclaimer::ReadGuard::tlsCache() {
  static thread_local TlsCache Cache;
  return Cache;
}

EpochReclaimer::ReaderSlot *
EpochReclaimer::ReadGuard::acquireSlotSlow(const EpochReclaimer &R,
                                           TlsCache &C) {
  TlsRegistry &Reg = tlsRegistry();
  SlotArray *A = R.Arr.get();

  // Purge registrations for closed reclaimers (releases their slots and
  // drops the shared_ptr keeping the dead array alive) while looking for
  // an existing registration with this one.
  ReaderSlot *Found = nullptr;
  size_t Keep = 0;
  for (size_t I = 0; I < Reg.Refs.size(); ++I) {
    TlsSlotRef &Ref = Reg.Refs[I];
    if (Ref.Arr->Closed.load(std::memory_order_acquire) &&
        Ref.Slot->Depth == 0) { // never drop under a live guard of ours
      Ref.Slot->Owned.store(0, std::memory_order_release);
      continue; // drop
    }
    if (Ref.Arr.get() == A)
      Found = Ref.Slot;
    if (Keep != I)
      Reg.Refs[Keep] = std::move(Ref);
    ++Keep;
  }
  Reg.Refs.resize(Keep);

  if (!Found) {
    for (size_t I = 0; I < NumSlots; ++I) {
      uint32_t Expected = 0;
      if (A->Slots[I].Owned.compare_exchange_strong(
              Expected, 1, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        Found = &A->Slots[I];
        Found->Depth = 0;
        Reg.Refs.push_back(TlsSlotRef{R.Arr, Found});
        break;
      }
    }
  }

  // Cache the result for the fast path.  An overflow (Found == nullptr)
  // is not cached: a later guard retries the claim in case a slot freed.
  if (Found) {
    C.ArrKey = A;
    C.IdKey = A->Id;
    C.Slot = Found;
  }
  return Found;
}

EpochReclaimer::SlotArray::SlotArray() {
  static std::atomic<uint64_t> NextId{1};
  Id = NextId.fetch_add(1, std::memory_order_relaxed);
}

EpochReclaimer::EpochReclaimer() : Arr(std::make_shared<SlotArray>()) {}

EpochReclaimer::~EpochReclaimer() {
  // Drain unconditionally: the caller guarantees raw-pointer readers are
  // done with retired objects (external shared_ptr holders are safe
  // regardless -- dropping the limbo reference only decrements).
  ReclaimedTotal.fetch_add(Limbo.size(), std::memory_order_relaxed);
  Limbo.clear();
  LimboSize.store(0, std::memory_order_relaxed);
  // Registered threads purge lazily on their next acquireSlotSlow (or at
  // thread exit); the array dies with its last shared_ptr reference.
  // Stale ReadGuard fast-path caches can never resurrect it: the cache is
  // keyed on (address, Id) and Ids are process-unique.
  Arr->Closed.store(true, std::memory_order_release);
}

void EpochReclaimer::retire(std::shared_ptr<const void> Obj) {
  if (!Obj)
    return;
  uint64_t Tag = Arr->Epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  Limbo.push_back(LimboEntry{Tag, std::move(Obj)});
  RetiredTotal.fetch_add(1, std::memory_order_relaxed);
  LimboSize.store(Limbo.size(), std::memory_order_relaxed);
  reclaim();
}

size_t EpochReclaimer::reclaim() {
  if (Limbo.empty())
    return 0;

  detail::writerFence();

  uint64_t MinPinned = QuiescentState; // "nothing pinned" == free everything
  if (Arr->OverflowPins.load(std::memory_order_seq_cst) != 0) {
    MinPinned = 0; // conservative: overflow pins have no epoch; free nothing
  } else {
    for (ReaderSlot &S : Arr->Slots) {
      uint64_t V = S.State.load(std::memory_order_seq_cst);
      if (V != QuiescentState && V < MinPinned)
        MinPinned = V;
    }
  }

  size_t Freed = 0;
  while (!Limbo.empty() && Limbo.front().Tag <= MinPinned) {
    Limbo.pop_front();
    ++Freed;
  }
  if (Freed) {
    ReclaimedTotal.fetch_add(Freed, std::memory_order_relaxed);
    LimboSize.store(Limbo.size(), std::memory_order_relaxed);
  }
  return Freed;
}

size_t EpochReclaimer::activeReaders() const {
  size_t N = Arr->OverflowPins.load(std::memory_order_acquire);
  for (const ReaderSlot &S : Arr->Slots)
    if (S.State.load(std::memory_order_acquire) != QuiescentState)
      ++N;
  return N;
}

size_t EpochReclaimer::ownedSlots() const {
  size_t N = 0;
  for (const ReaderSlot &S : Arr->Slots)
    if (S.Owned.load(std::memory_order_acquire) != 0)
      ++N;
  return N;
}

} // namespace memlook
