//===- Diagnostics.cpp - Diagnostics ---------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/Diagnostics.h"

using namespace memlook;

const char *memlook::severityLabel(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

const char *memlook::diagCodeLabel(DiagCode Code) {
  switch (Code) {
  case DiagCode::None:
    return "none";
  case DiagCode::SyntaxError:
    return "syntax-error";
  case DiagCode::UnknownBase:
    return "unknown-base";
  case DiagCode::DuplicateClass:
    return "duplicate-class";
  case DiagCode::DuplicateBase:
    return "duplicate-base";
  case DiagCode::ConflictingBase:
    return "conflicting-base";
  case DiagCode::SelfInheritance:
    return "self-inheritance";
  case DiagCode::InheritanceCycle:
    return "inheritance-cycle";
  case DiagCode::InvalidUsingTarget:
    return "invalid-using-target";
  case DiagCode::RedeclaredMember:
    return "redeclared-member";
  case DiagCode::TooManyClasses:
    return "too-many-classes";
  case DiagCode::TooManyEdges:
    return "too-many-edges";
  case DiagCode::TooManyMembers:
    return "too-many-members";
  case DiagCode::TooManyErrors:
    return "too-many-errors";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity Level, SourceLoc Loc,
                              std::string Message, DiagCode Code) {
  if (Truncated)
    return;
  if (Level == Severity::Error) {
    if (ErrorLimit != 0 && NumErrors >= ErrorLimit) {
      Truncated = true;
      ++NumErrors;
      Diags.push_back(Diagnostic{Severity::Error, DiagCode::TooManyErrors,
                                 SourceLoc(),
                                 "too many errors; giving up on this input"});
      return;
    }
    ++NumErrors;
  }
  Diags.push_back(Diagnostic{Level, Code, Loc, std::move(Message)});
}

bool DiagnosticEngine::hasCode(DiagCode Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

void DiagnosticEngine::print(std::ostream &OS,
                             const std::string &InputName) const {
  for (const Diagnostic &D : Diags) {
    OS << InputName;
    if (D.Loc.isValid())
      OS << ':' << D.Loc.Line << ':' << D.Loc.Col;
    OS << ": " << severityLabel(D.Level) << ": " << D.Message << '\n';
  }
}
