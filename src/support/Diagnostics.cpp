//===- Diagnostics.cpp - Diagnostics ---------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/Diagnostics.h"

using namespace memlook;

const char *memlook::severityLabel(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity Level, SourceLoc Loc,
                              std::string Message) {
  if (Level == Severity::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Level, Loc, std::move(Message)});
}

void DiagnosticEngine::print(std::ostream &OS,
                             const std::string &InputName) const {
  for (const Diagnostic &D : Diags) {
    OS << InputName;
    if (D.Loc.isValid())
      OS << ':' << D.Loc.Line << ':' << D.Loc.Col;
    OS << ": " << severityLabel(D.Level) << ": " << D.Message << '\n';
  }
}
