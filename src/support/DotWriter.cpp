//===- DotWriter.cpp - Graphviz emission -----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/DotWriter.h"

using namespace memlook;

DotWriter::DotWriter(std::ostream &OS, std::string_view GraphName) : OS(OS) {
  OS << "digraph \"" << escape(GraphName) << "\" {\n";
  OS << "  rankdir=BT;\n"; // bases at the bottom, like the paper's figures
}

DotWriter::~DotWriter() { OS << "}\n"; }

void DotWriter::node(std::string_view Id, std::string_view Label,
                     std::string_view ExtraAttrs) {
  OS << "  \"" << escape(Id) << "\" [label=\"" << escape(Label) << '"';
  if (!ExtraAttrs.empty())
    OS << ", " << ExtraAttrs;
  OS << "];\n";
}

void DotWriter::edge(std::string_view From, std::string_view To, bool Dashed,
                     std::string_view Label) {
  OS << "  \"" << escape(From) << "\" -> \"" << escape(To) << '"';
  bool NeedAttrs = Dashed || !Label.empty();
  if (NeedAttrs) {
    OS << " [";
    bool First = true;
    if (Dashed) {
      OS << "style=dashed";
      First = false;
    }
    if (!Label.empty()) {
      if (!First)
        OS << ", ";
      OS << "label=\"" << escape(Label) << '"';
    }
    OS << ']';
  }
  OS << ";\n";
}

std::string DotWriter::escape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    if (C == '\n') {
      // Render embedded newlines as DOT line breaks.
      Out += "\\n";
      continue;
    }
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}
