//===- Status.cpp - Recoverable errors -------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/Status.h"

using namespace memlook;

const char *memlook::errorCodeLabel(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::UnknownClass:
    return "unknown-class";
  case ErrorCode::DuplicateClass:
    return "duplicate-class";
  case ErrorCode::DuplicateBase:
    return "duplicate-base";
  case ErrorCode::InheritanceCycle:
    return "inheritance-cycle";
  case ErrorCode::InvalidUsingTarget:
    return "invalid-using-target";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::BudgetExceeded:
    return "budget-exceeded";
  case ErrorCode::NotFinalized:
    return "not-finalized";
  case ErrorCode::TransactionConflict:
    return "transaction-conflict";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::TableQuarantined:
    return "table-quarantined";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::SnapshotIoError:
    return "snapshot-io-error";
  case ErrorCode::SnapshotVersionMismatch:
    return "snapshot-version-mismatch";
  case ErrorCode::SnapshotChecksumMismatch:
    return "snapshot-checksum-mismatch";
  case ErrorCode::SnapshotMalformed:
    return "snapshot-malformed";
  case ErrorCode::WalIoError:
    return "wal-io-error";
  case ErrorCode::WalCorrupt:
    return "wal-corrupt";
  case ErrorCode::WalEpochSkew:
    return "wal-epoch-skew";
  }
  return "unknown";
}

std::string Status::toString() const {
  if (isOk())
    return "ok";
  std::string Out = errorCodeLabel(Code);
  if (!Msg.empty()) {
    Out += ": ";
    Out += Msg;
  }
  return Out;
}
