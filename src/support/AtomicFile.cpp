//===- AtomicFile.cpp - Atomic file I/O --------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/AtomicFile.h"

#include "memlook/support/CrashPoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace memlook;

namespace {

Status ioError(const char *Step, const std::string &Path, int Err) {
  return Status::error(ErrorCode::SnapshotIoError,
                       std::string(Step) + " '" + Path +
                           "': " + std::strerror(Err));
}

/// Directory part of \p Path, or "." when it has none.
std::string dirOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

} // namespace

Status memlook::writeFileAtomic(const std::string &Path,
                                std::string_view Contents) {
  std::string TmpPath = Path + ".tmp";
  int Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return ioError("create", TmpPath, errno);

  // Crash points bracket each durability-relevant step so a campaign
  // can interrupt the write-fsync-rename-dirsync sequence in every
  // window. A torn temp file is inert either way: it never carries the
  // destination name.
  CrashDirective WriteDir = crashPointHit("atomic-file-write");
  if (WriteDir.Fail) {
    ::close(Fd);
    ::unlink(TmpPath.c_str());
    return ioError("write", TmpPath, EIO);
  }
  if (WriteDir.Partial) {
    size_t N = std::min<size_t>(WriteDir.PartialBytes, Contents.size());
    // Best-effort torn write; the kill is the point, not the count.
    (void)!::write(Fd, Contents.data(), N);
    crashPointKill();
  }

  const char *P = Contents.data();
  size_t Left = Contents.size();
  while (Left != 0) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int Err = errno;
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      return ioError("write", TmpPath, Err);
    }
    P += N;
    Left -= static_cast<size_t>(N);
  }

  if (crashPointHit("atomic-file-fsync").Fail) {
    ::close(Fd);
    ::unlink(TmpPath.c_str());
    return ioError("fsync", TmpPath, EIO);
  }
  if (::fsync(Fd) != 0) {
    int Err = errno;
    ::close(Fd);
    ::unlink(TmpPath.c_str());
    return ioError("fsync", TmpPath, Err);
  }
  if (::close(Fd) != 0) {
    int Err = errno;
    ::unlink(TmpPath.c_str());
    return ioError("close", TmpPath, Err);
  }

  if (crashPointHit("atomic-file-rename").Fail) {
    ::unlink(TmpPath.c_str());
    return ioError("rename", Path, EIO);
  }
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    int Err = errno;
    ::unlink(TmpPath.c_str());
    return ioError("rename", Path, Err);
  }

  // Make the rename durable. Failure here is reported but not rolled
  // back: the replacement already happened atomically in the namespace.
  std::string Dir = dirOf(Path);
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd < 0)
    return ioError("open directory", Dir, errno);
  if (::fsync(DirFd) != 0) {
    int Err = errno;
    ::close(DirFd);
    return ioError("fsync directory", Dir, Err);
  }
  ::close(DirFd);
  return Status::ok();
}

Expected<std::string> memlook::readFileCapped(const std::string &Path,
                                              uint64_t MaxBytes) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return ioError("open", Path, errno);

  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    int Err = errno;
    ::close(Fd);
    return ioError("stat", Path, Err);
  }
  if (!S_ISREG(St.st_mode)) {
    ::close(Fd);
    return Status::error(ErrorCode::SnapshotIoError,
                         "'" + Path + "' is not a regular file");
  }
  if (static_cast<uint64_t>(St.st_size) > MaxBytes) {
    ::close(Fd);
    return Status::error(ErrorCode::SnapshotIoError,
                         "'" + Path + "' is " + std::to_string(St.st_size) +
                             " bytes, over the " + std::to_string(MaxBytes) +
                             "-byte read cap");
  }

  std::string Out;
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Got = 0;
  while (Got != Out.size()) {
    ssize_t N = ::read(Fd, Out.data() + Got, Out.size() - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int Err = errno;
      ::close(Fd);
      return ioError("read", Path, Err);
    }
    if (N == 0)
      break; // shrank mid-read; return what exists (CRCs catch the rest)
    Got += static_cast<size_t>(N);
  }
  Out.resize(Got);
  ::close(Fd);
  return Out;
}
