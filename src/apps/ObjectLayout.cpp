//===- ObjectLayout.cpp - Object layout ------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/apps/ObjectLayout.h"

using namespace memlook;

namespace {

constexpr uint64_t MemberSize = 8;
constexpr uint64_t VptrSize = 8;

/// Recursive placement of non-virtual parts.
class LayoutBuilder {
public:
  LayoutBuilder(const Hierarchy &H, ObjectLayout &Out) : H(H), Out(Out) {}

  /// Places the non-virtual part of the class at the front of
  /// \p FixedSoFar (the fixed path identifying this subobject, ldc
  /// first) at \p Offset; returns the size consumed.
  uint64_t placeNonVirtualPart(std::vector<ClassId> FixedPath,
                               uint64_t Offset) {
    ClassId Class = FixedPath.front();
    Out.SubobjectOffsets.push_back(
        {SubobjectKey{FixedPath, Out.Complete}, Offset});

    uint64_t Cursor = Offset;
    if (classNeedsVptr(Class))
      Cursor += VptrSize;

    for (const BaseSpecifier &Spec : H.info(Class).DirectBases) {
      if (Spec.Kind == InheritanceKind::Virtual)
        continue; // virtual bases are placed once, at the tail
      std::vector<ClassId> BasePath;
      BasePath.reserve(FixedPath.size() + 1);
      BasePath.push_back(Spec.Base);
      BasePath.insert(BasePath.end(), FixedPath.begin(), FixedPath.end());
      Cursor += placeNonVirtualPart(std::move(BasePath), Cursor);
    }

    uint64_t MembersStart = Cursor - Offset;
    uint64_t Index = 0;
    for (const MemberDecl &Member : H.info(Class).Members) {
      if (Member.IsStatic)
        continue; // statics live outside the object
      Out.MemberOffsetInClass.emplace(
          ObjectLayout::memberKey(Class, Member.Name),
          MembersStart + Index * MemberSize);
      ++Index;
    }
    Cursor += Index * MemberSize;

    // Empty parts still take a byte in C++; round up to the member
    // granularity to keep offsets simple.
    if (Cursor == Offset)
      Cursor += MemberSize;
    return Cursor - Offset;
  }

private:
  bool classNeedsVptr(ClassId Class) const {
    for (const MemberDecl &Member : H.info(Class).Members)
      if (Member.IsVirtual)
        return true;
    return false;
  }

  const Hierarchy &H;
  ObjectLayout &Out;
};

} // namespace

ObjectLayout memlook::computeObjectLayout(const Hierarchy &H,
                                          ClassId Complete) {
  assert(H.isFinalized() && "layout requires finalize()");
  ObjectLayout Out;
  Out.Complete = Complete;

  LayoutBuilder Builder(H, Out);
  uint64_t Cursor = Builder.placeNonVirtualPart({Complete}, 0);

  // Virtual bases: exactly once each, topological order (bases of bases
  // first, the order construction would run).
  for (ClassId VBase : H.topologicalOrder()) {
    if (!H.isVirtualBaseOf(VBase, Complete))
      continue;
    Cursor += Builder.placeNonVirtualPart({VBase}, Cursor);
  }

  Out.Size = Cursor;
  return Out;
}

std::optional<uint64_t>
ObjectLayout::subobjectOffset(const SubobjectKey &Key) const {
  for (const auto &[K, Offset] : SubobjectOffsets)
    if (K == Key)
      return Offset;
  return std::nullopt;
}

std::optional<uint64_t> ObjectLayout::memberOffset(const Hierarchy &H,
                                                   const LookupResult &R,
                                                   Symbol Member) const {
  if (R.Status != LookupStatus::Unambiguous || !R.Subobject)
    return std::nullopt;

  const MemberDecl *Decl = H.declaredMember(R.DefiningClass, Member);
  if (!Decl || Decl->IsStatic)
    return std::nullopt; // statics have no in-object offset

  std::optional<uint64_t> Base = subobjectOffset(*R.Subobject);
  if (!Base)
    return std::nullopt;
  auto It = MemberOffsetInClass.find(memberKey(R.DefiningClass, Member));
  if (It == MemberOffsetInClass.end())
    return std::nullopt;
  return *Base + It->second;
}
