//===- VTableBuilder.cpp - Vtable construction ------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/apps/VTableBuilder.h"

#include <algorithm>

using namespace memlook;

VTable VTableBuilder::build(ClassId Class) {
  VTable Table;
  Table.Class = Class;

  // Collect the virtual member names visible in Class: names declared
  // virtual by Class itself or any of its bases. Virtuality is sticky in
  // C++ - an overrider is virtual because some base declaration is - so
  // scanning declarations for the IsVirtual flag is the right test.
  std::vector<Symbol> VirtualNames;
  auto CollectFrom = [&](ClassId Source) {
    for (const MemberDecl &Member : H.info(Source).Members)
      if (Member.IsVirtual &&
          std::find(VirtualNames.begin(), VirtualNames.end(), Member.Name) ==
              VirtualNames.end())
        VirtualNames.push_back(Member.Name);
  };

  // Deterministic order: topological (bases first), then declaration
  // order within a class - the "first virtual declaration" order real
  // vtable layouts use.
  for (ClassId Base : H.topologicalOrder())
    if (Base == Class || H.isBaseOf(Base, Class))
      CollectFrom(Base);

  for (Symbol Member : VirtualNames)
    Table.Slots.push_back(VTable::Slot{Member, Engine.lookup(Class, Member)});
  return Table;
}

std::vector<VTable> VTableBuilder::buildAll() {
  std::vector<VTable> Tables;
  Tables.reserve(H.numClasses());
  for (ClassId Class : H.topologicalOrder())
    Tables.push_back(build(Class));
  return Tables;
}
