//===- CompleteObjectVTables.cpp - ABI tables --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/apps/CompleteObjectVTables.h"

#include <algorithm>

using namespace memlook;

std::vector<Symbol> memlook::collectVirtualMemberNames(const Hierarchy &H,
                                                       ClassId Class) {
  std::vector<Symbol> Names;
  for (ClassId Source : H.topologicalOrder()) {
    if (Source != Class && !H.isBaseOf(Source, Class))
      continue;
    for (const MemberDecl &Member : H.info(Source).Members)
      if (Member.IsVirtual &&
          std::find(Names.begin(), Names.end(), Member.Name) == Names.end())
        Names.push_back(Member.Name);
  }
  return Names;
}

CompleteObjectVTables
memlook::buildCompleteObjectVTables(const Hierarchy &H, LookupEngine &Engine,
                                    ClassId Complete) {
  CompleteObjectVTables Result;
  Result.Complete = Complete;
  Result.Layout = computeObjectLayout(H, Complete);

  for (const auto &[Key, Offset] : Result.Layout.SubobjectOffsets) {
    std::vector<Symbol> VirtualNames =
        collectVirtualMemberNames(H, Key.ldc());
    if (VirtualNames.empty())
      continue;

    CompleteObjectVTables::SubobjectVTable Table;
    Table.Key = Key;
    Table.Offset = Offset;
    for (Symbol Member : VirtualNames) {
      CompleteObjectVTables::Slot Slot;
      Slot.Member = Member;
      // Virtual dispatch resolves against the complete object's class
      // (the dyn operation of Section 7.1).
      Slot.Overrider = Engine.lookup(Complete, Member);
      if (Slot.Overrider.Status == LookupStatus::Unambiguous &&
          Slot.Overrider.Subobject) {
        std::optional<uint64_t> Target =
            Result.Layout.subobjectOffset(*Slot.Overrider.Subobject);
        assert(Target && "overrider subobject missing from layout");
        Slot.ThisAdjustment = static_cast<int64_t>(*Target) -
                              static_cast<int64_t>(Offset);
        Slot.NeedsThunk = Slot.ThisAdjustment != 0;
      }
      Table.Slots.push_back(std::move(Slot));
    }
    Result.Tables.push_back(std::move(Table));
  }
  return Result;
}
