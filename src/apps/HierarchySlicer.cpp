//===- HierarchySlicer.cpp - Class hierarchy slicing ------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/apps/HierarchySlicer.h"

#include "memlook/support/BitVector.h"

#include <unordered_set>

using namespace memlook;

SliceResult memlook::sliceHierarchy(const Hierarchy &H,
                                    const std::vector<LookupQuery> &Queries) {
  assert(H.isFinalized() && "slicing requires finalize()");

  // Keep every queried context and all of its bases.
  BitVector Keep(H.numClasses());
  std::unordered_set<Symbol> KeepMembers;
  for (const LookupQuery &Q : Queries) {
    Keep.set(Q.Class.index());
    Keep |= H.basesOf(Q.Class);
    KeepMembers.insert(Q.Member);
  }

  SliceResult Result;
  Result.OriginalClassCount = H.numClasses();
  Result.OriginalMemberDecls = H.numMemberDecls();

  // Rebuild in topological order so every base exists before use.
  Hierarchy Sliced;
  for (ClassId Old : H.topologicalOrder()) {
    if (!Keep.test(Old.index()))
      continue;
    ClassId New = Sliced.createClass(H.className(Old), H.info(Old).Loc);
    assert(New.isValid() && "duplicate class while slicing");

    for (const BaseSpecifier &Spec : H.info(Old).DirectBases) {
      // Every base of a kept class is kept (down-closure), so it is
      // already recreated.
      ClassId NewBase = Sliced.findClass(H.className(Spec.Base));
      assert(NewBase.isValid() && "slice dropped a base of a kept class");
      Sliced.addBase(New, NewBase, Spec.Kind, Spec.Access, Spec.Loc);
    }

    uint32_t KeptDecls = 0;
    for (const MemberDecl &Member : H.info(Old).Members) {
      if (!KeepMembers.count(Member.Name))
        continue;
      if (Member.isUsingDeclaration()) {
        // The named base is a base of a kept class, hence kept itself.
        ClassId NewFrom = Sliced.findClass(H.className(Member.UsingFrom));
        assert(NewFrom.isValid() && "slice dropped a using-decl base");
        Sliced.addUsingDeclaration(New, NewFrom, H.spelling(Member.Name),
                                   Member.Access, Member.Loc);
      } else {
        Sliced.addMember(New, H.spelling(Member.Name), Member.IsStatic,
                         Member.IsVirtual, Member.Access, Member.Loc);
      }
      ++KeptDecls;
    }
    Result.SlicedMemberDecls += KeptDecls;
  }

  DiagnosticEngine Diags;
  bool Ok = Sliced.finalize(Diags);
  (void)Ok;
  assert(Ok && "slice of an acyclic hierarchy cannot be cyclic");

  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    if (Keep.test(Idx))
      Result.KeptClasses.push_back(std::string(H.className(ClassId(Idx))));
  Result.Sliced = std::move(Sliced);
  return Result;
}
