//===- Generators.cpp - Hierarchy generators --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/workload/Generators.h"

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/support/Rng.h"

#include <algorithm>
#include <string>

using namespace memlook;

static Workload finish(HierarchyBuilder &&Builder,
                       std::vector<std::string> QueryClassNames) {
  Workload W{std::move(Builder).build(), {}, {}};
  for (const std::string &Name : QueryClassNames) {
    ClassId Id = W.H.findClass(Name);
    assert(Id.isValid() && "generator queried unknown class");
    W.QueryClasses.push_back(Id);
  }
  W.QueryMembers = W.H.allMemberNames();
  return W;
}

Workload memlook::makeChain(uint32_t Length, uint32_t DeclareEvery) {
  assert(Length > 0 && DeclareEvery > 0 && "degenerate chain");
  HierarchyBuilder B;
  for (uint32_t I = 0; I != Length; ++I) {
    auto C = B.addClass("C" + std::to_string(I));
    if (I != 0)
      C.withBase("C" + std::to_string(I - 1));
    if (I % DeclareEvery == 0)
      C.withMember("m");
  }
  return finish(std::move(B), {"C" + std::to_string(Length - 1)});
}

static Workload makeDiamondStack(uint32_t Diamonds, bool Virtual,
                                 bool RedeclareAtJoins) {
  assert(Diamonds > 0 && "empty diamond stack");
  HierarchyBuilder B;
  B.addClass("J0").withMember("m");
  for (uint32_t I = 1; I <= Diamonds; ++I) {
    std::string Below = "J" + std::to_string(I - 1);
    std::string Left = "L" + std::to_string(I);
    std::string Right = "R" + std::to_string(I);
    std::string Join = "J" + std::to_string(I);
    if (Virtual) {
      B.addClass(Left).withVirtualBase(Below);
      B.addClass(Right).withVirtualBase(Below);
    } else {
      B.addClass(Left).withBase(Below);
      B.addClass(Right).withBase(Below);
    }
    auto J = B.addClass(Join).withBase(Left).withBase(Right);
    if (RedeclareAtJoins)
      J.withMember("m");
  }
  return finish(std::move(B), {"J" + std::to_string(Diamonds),
                               "L" + std::to_string(Diamonds)});
}

Workload memlook::makeNonVirtualDiamondStack(uint32_t Diamonds,
                                             bool RedeclareAtJoins) {
  return makeDiamondStack(Diamonds, /*Virtual=*/false, RedeclareAtJoins);
}

Workload memlook::makeVirtualDiamondStack(uint32_t Diamonds,
                                          bool RedeclareAtJoins) {
  return makeDiamondStack(Diamonds, /*Virtual=*/true, RedeclareAtJoins);
}

Workload memlook::makeGrid(uint32_t Rows, uint32_t Cols, bool Virtual) {
  assert(Rows > 0 && Cols > 0 && "degenerate grid");
  HierarchyBuilder B;
  auto Name = [](uint32_t R, uint32_t C) {
    return "G" + std::to_string(R) + "_" + std::to_string(C);
  };
  for (uint32_t R = 0; R != Rows; ++R)
    for (uint32_t C = 0; C != Cols; ++C) {
      auto Cls = B.addClass(Name(R, C));
      if (R == 0 && C == 0)
        Cls.withMember("m");
      if (R != 0) {
        if (Virtual)
          Cls.withVirtualBase(Name(R - 1, C));
        else
          Cls.withBase(Name(R - 1, C));
      }
      if (C != 0)
        Cls.withBase(Name(R, C - 1));
    }
  return finish(std::move(B), {Name(Rows - 1, Cols - 1)});
}

Workload memlook::makeAmbiguityFan(uint32_t Arms) {
  assert(Arms >= 2 && "a fan needs at least two arms");
  HierarchyBuilder B;
  for (uint32_t I = 1; I <= Arms; ++I) {
    std::string Root = "R" + std::to_string(I);
    B.addClass(Root).withMember("m");
    B.addClass("M" + std::to_string(I)).withVirtualBase(Root);
  }
  B.addClass("C1").withBase("M1").withBase("M2");
  for (uint32_t I = 2; I < Arms; ++I)
    B.addClass("C" + std::to_string(I))
        .withBase("C" + std::to_string(I - 1))
        .withBase("M" + std::to_string(I + 1));
  return finish(std::move(B), {"C" + std::to_string(Arms - 1)});
}

Workload memlook::makeWideForest(uint32_t Trees, uint32_t Fanout,
                                 uint32_t Depth, uint32_t MembersPerRoot) {
  assert(Trees > 0 && Fanout > 0 && "degenerate forest");
  HierarchyBuilder B;
  std::vector<std::string> Leaves;
  for (uint32_t T = 0; T != Trees; ++T) {
    std::string Root = "T" + std::to_string(T);
    auto R = B.addClass(Root);
    for (uint32_t M = 0; M != MembersPerRoot; ++M) {
      // Alternate plain and virtual members to keep the vtable
      // application interesting.
      if (M % 2 == 0)
        R.withMember("m" + std::to_string(M));
      else
        R.withVirtualMember("m" + std::to_string(M));
    }

    std::vector<std::string> Frontier{Root};
    for (uint32_t D = 0; D != Depth; ++D) {
      std::vector<std::string> Next;
      for (const std::string &Parent : Frontier)
        for (uint32_t F = 0; F != Fanout; ++F) {
          std::string Child = Parent + "_" + std::to_string(F);
          auto C = B.addClass(Child).withBase(Parent);
          // Leaf-level overriders, one member redefined per child.
          if (D + 1 == Depth)
            C.withMember("m0");
          Next.push_back(Child);
        }
      Frontier = std::move(Next);
    }
    if (Depth == 0)
      Leaves.push_back(Root);
    else
      Leaves.push_back(Frontier.front());
  }
  return finish(std::move(B), std::move(Leaves));
}

Workload memlook::makeModularForest(uint32_t Trees, uint32_t Fanout,
                                    uint32_t Depth, uint32_t MembersPerRoot,
                                    uint32_t SharedMembers) {
  assert(Trees > 0 && Fanout > 0 && "degenerate forest");
  HierarchyBuilder B;
  std::vector<std::string> Leaves;
  for (uint32_t T = 0; T != Trees; ++T) {
    std::string Prefix = "t" + std::to_string(T);
    std::string Root = "T" + std::to_string(T);
    auto R = B.addClass(Root);
    for (uint32_t M = 0; M != MembersPerRoot; ++M) {
      std::string Name = Prefix + "_m" + std::to_string(M);
      if (M % 2 == 0)
        R.withMember(Name);
      else
        R.withVirtualMember(Name);
    }
    for (uint32_t G = 0; G != SharedMembers; ++G)
      R.withMember("g" + std::to_string(G));

    std::vector<std::string> Frontier{Root};
    for (uint32_t D = 0; D != Depth; ++D) {
      std::vector<std::string> Next;
      for (const std::string &Parent : Frontier)
        for (uint32_t F = 0; F != Fanout; ++F) {
          std::string Child = Parent + "_" + std::to_string(F);
          auto C = B.addClass(Child).withBase(Parent);
          if (D + 1 == Depth && MembersPerRoot != 0)
            C.withMember(Prefix + "_m0"); // leaf-level overrider
          Next.push_back(Child);
        }
      Frontier = std::move(Next);
    }
    Leaves.push_back(Depth == 0 ? Root : Frontier.front());
  }
  return finish(std::move(B), std::move(Leaves));
}

Workload memlook::makeRandomHierarchy(const RandomHierarchyParams &Params,
                                      uint64_t Seed) {
  assert(Params.NumClasses > 0 && "empty hierarchy");
  Rng Rng(Seed);
  HierarchyBuilder B;

  for (uint32_t I = 0; I != Params.NumClasses; ++I) {
    auto Cls = B.addClass("K" + std::to_string(I));

    // Bases: drawn from the already-created classes, so acyclicity is
    // structural. Expected count ~= AvgBases, capped by availability.
    if (I != 0) {
      uint32_t Whole = static_cast<uint32_t>(Params.AvgBases);
      double Frac = Params.AvgBases - Whole;
      uint32_t Want = Whole + (Rng.nextUnit() < Frac ? 1 : 0);
      Want = std::min(Want, std::min(I, 6u));

      std::vector<uint32_t> Chosen;
      for (uint32_t Attempt = 0; Chosen.size() < Want && Attempt != 32;
           ++Attempt) {
        uint32_t Pick = static_cast<uint32_t>(Rng.nextBelow(I));
        if (std::find(Chosen.begin(), Chosen.end(), Pick) == Chosen.end())
          Chosen.push_back(Pick);
      }
      for (uint32_t Pick : Chosen) {
        AccessSpec Access = AccessSpec::Public;
        if (Rng.nextUnit() < Params.RestrictedEdgeChance)
          Access = Rng.nextUnit() < 0.5 ? AccessSpec::Protected
                                        : AccessSpec::Private;
        std::string BaseName = "K" + std::to_string(Pick);
        if (Rng.nextUnit() < Params.VirtualEdgeChance)
          Cls.withVirtualBase(BaseName, Access);
        else
          Cls.withBase(BaseName, Access);
      }
    }

    // Optional using-declaration from a random direct base.
    if (I != 0 && Rng.nextUnit() < Params.UsingChance) {
      const auto &Bases = B.hierarchy().info(Cls.id()).DirectBases;
      if (!Bases.empty()) {
        ClassId From = Bases[Rng.nextBelow(Bases.size())].Base;
        std::string Member =
            "m" + std::to_string(Rng.nextBelow(Params.MemberPool));
        B.hierarchy().addUsingDeclaration(Cls.id(), From, Member);
      }
    }

    for (uint32_t M = 0; M != Params.MemberPool; ++M) {
      if (Rng.nextUnit() >= Params.DeclareChance)
        continue;
      std::string Member = "m" + std::to_string(M);
      AccessSpec Access = AccessSpec::Public;
      double AccessDraw = Rng.nextUnit();
      if (AccessDraw < 0.15)
        Access = AccessSpec::Private;
      else if (AccessDraw < 0.30)
        Access = AccessSpec::Protected;
      if (Rng.nextUnit() < Params.StaticChance)
        Cls.withStaticMember(Member, Access);
      else if (Rng.nextUnit() < Params.VirtualMemberChance)
        Cls.withVirtualMember(Member, Access);
      else
        Cls.withMember(Member, Access);
    }
  }

  Workload W{std::move(B).build(), {}, {}};
  W.QueryClasses.reserve(W.H.numClasses());
  for (uint32_t I = 0; I != W.H.numClasses(); ++I)
    W.QueryClasses.push_back(ClassId(I));
  W.QueryMembers = W.H.allMemberNames();
  return W;
}

Workload memlook::makeIostreamLike() {
  HierarchyBuilder B;
  B.addClass("ios_base")
      .withMember("flags")
      .withMember("precision")
      .withMember("width")
      .withStaticMember("sync_with_stdio");
  B.addClass("basic_ios")
      .withBase("ios_base")
      .withMember("rdstate")
      .withMember("clear")
      .withMember("fail")
      .withMember("rdbuf");
  B.addClass("basic_istream")
      .withVirtualBase("basic_ios")
      .withMember("read")
      .withMember("get")
      .withMember("gcount")
      .withVirtualMember("underflow_hook");
  B.addClass("basic_ostream")
      .withVirtualBase("basic_ios")
      .withMember("write")
      .withMember("put")
      .withMember("flush")
      .withVirtualMember("overflow_hook");
  B.addClass("basic_iostream")
      .withBase("basic_istream")
      .withBase("basic_ostream");
  B.addClass("basic_fstream")
      .withBase("basic_iostream")
      .withMember("open")
      .withMember("close")
      .withMember("is_open");
  B.addClass("basic_stringstream")
      .withBase("basic_iostream")
      .withMember("str");
  B.addClass("basic_ifstream")
      .withBase("basic_istream")
      .withMember("open")
      .withMember("close");
  B.addClass("basic_ofstream")
      .withBase("basic_ostream")
      .withMember("open")
      .withMember("close");
  return finish(std::move(B), {"basic_fstream", "basic_stringstream",
                               "basic_iostream"});
}
