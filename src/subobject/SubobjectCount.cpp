//===- SubobjectCount.cpp - Counting ----------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/subobject/SubobjectCount.h"

#include <vector>

using namespace memlook;

uint64_t memlook::countPaths(const Hierarchy &H, ClassId From, ClassId To) {
  assert(H.isFinalized() && "counting requires finalize()");
  // Paths[X] = number of paths From -> ... -> X; a single pass in
  // topological order suffices on a DAG.
  std::vector<uint64_t> Paths(H.numClasses(), 0);
  Paths[From.index()] = 1;
  for (ClassId C : H.topologicalOrder()) {
    if (Paths[C.index()] == 0)
      continue;
    if (C == To)
      break; // everything after C in the order cannot reach back into To
    for (ClassId Derived : H.info(C).DirectDerived)
      Paths[Derived.index()] =
          saturatingAdd(Paths[Derived.index()], Paths[C.index()]);
  }
  return Paths[To.index()];
}

uint64_t memlook::countSubobjects(const Hierarchy &H, ClassId C) {
  assert(H.isFinalized() && "counting requires finalize()");

  // NvPaths[X] = number of virtual-free paths ending at X (from any
  // class, including the trivial path <X>):
  //   NvPaths[X] = 1 + sum over non-virtual in-edges (U -> X) NvPaths[U]
  std::vector<uint64_t> NvPaths(H.numClasses(), 0);
  for (ClassId X : H.topologicalOrder()) {
    uint64_t Total = 1;
    for (const BaseSpecifier &Spec : H.info(X).DirectBases)
      if (Spec.Kind == InheritanceKind::NonVirtual)
        Total = saturatingAdd(Total, NvPaths[Spec.Base.index()]);
    NvPaths[X.index()] = Total;
  }

  // A subobject key (Fixed, C) exists iff Fixed is a virtual-free path
  // ending at C itself, or at a node w from which some path to C starts
  // with a virtual edge - exactly "w is a virtual base of C".
  uint64_t Count = NvPaths[C.index()];
  H.virtualBasesOf(C).forEachSetBit([&](size_t Idx) {
    Count = saturatingAdd(Count, NvPaths[Idx]);
  });
  return Count;
}

uint64_t memlook::countSubobjectsWithLdc(const Hierarchy &H, ClassId C,
                                         ClassId Ldc) {
  assert(H.isFinalized() && "counting requires finalize()");

  // Same argument as countSubobjects, restricted to fixed parts that
  // start at Ldc: NvFrom[X] = number of virtual-free paths Ldc -> X.
  std::vector<uint64_t> NvFrom(H.numClasses(), 0);
  NvFrom[Ldc.index()] = 1;
  for (ClassId X : H.topologicalOrder()) {
    if (NvFrom[X.index()] == 0)
      continue;
    for (ClassId Derived : H.info(X).DirectDerived) {
      auto Kind = H.edgeKind(X, Derived);
      if (Kind && *Kind == InheritanceKind::NonVirtual)
        NvFrom[Derived.index()] =
            saturatingAdd(NvFrom[Derived.index()], NvFrom[X.index()]);
    }
  }

  uint64_t Count = NvFrom[C.index()];
  H.virtualBasesOf(C).forEachSetBit([&](size_t Idx) {
    Count = saturatingAdd(Count, NvFrom[Idx]);
  });
  return Count;
}
