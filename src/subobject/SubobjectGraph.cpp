//===- SubobjectGraph.cpp - R-F subobjects ---------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/subobject/SubobjectGraph.h"

#include "memlook/support/DotWriter.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

using namespace memlook;

std::optional<SubobjectGraph> SubobjectGraph::build(const Hierarchy &H,
                                                    ClassId Complete,
                                                    size_t MaxSubobjects) {
  assert(H.isFinalized() && "subobject graph requires finalize()");
  SubobjectGraph Graph(H, Complete);

  // BFS from the complete object [<C>], prepending direct-base edges.
  // Prepending edge X -> A onto a class with fixed part F(A first):
  //   virtual edge:      new fixed part is just <X>;
  //   non-virtual edge:  new fixed part is <X> ++ F.
  SubobjectKey RootKey{{Complete}, Complete};
  Graph.Subobjects.push_back(
      Subobject{RootKey, Path(Complete), {}});
  Graph.Index.emplace(std::move(RootKey), SubobjectId(0));

  std::deque<SubobjectId> Worklist{SubobjectId(0)};
  while (!Worklist.empty()) {
    SubobjectId CurId = Worklist.front();
    Worklist.pop_front();

    // Copy what we need: Subobjects may reallocate as we append.
    ClassId Ldc = Graph.Subobjects[CurId.index()].Key.ldc();
    std::vector<BaseSpecifier> Bases = H.info(Ldc).DirectBases;

    for (const BaseSpecifier &Spec : Bases) {
      SubobjectKey NewKey;
      NewKey.Mdc = Complete;
      if (Spec.Kind == InheritanceKind::Virtual) {
        NewKey.Fixed = {Spec.Base};
      } else {
        const SubobjectKey &CurKey = Graph.Subobjects[CurId.index()].Key;
        NewKey.Fixed.reserve(CurKey.Fixed.size() + 1);
        NewKey.Fixed.push_back(Spec.Base);
        NewKey.Fixed.insert(NewKey.Fixed.end(), CurKey.Fixed.begin(),
                            CurKey.Fixed.end());
      }

      auto It = Graph.Index.find(NewKey);
      SubobjectId BaseId;
      if (It != Graph.Index.end()) {
        BaseId = It->second;
      } else {
        if (Graph.Subobjects.size() >= MaxSubobjects)
          return std::nullopt;
        BaseId = SubobjectId(static_cast<uint32_t>(Graph.Subobjects.size()));
        Path Repr = Graph.Subobjects[CurId.index()].Repr;
        Repr.Nodes.insert(Repr.Nodes.begin(), Spec.Base);
        Graph.Subobjects.push_back(Subobject{NewKey, std::move(Repr), {}});
        Graph.Index.emplace(std::move(NewKey), BaseId);
        Worklist.push_back(BaseId);
      }

      std::vector<SubobjectId> &Out =
          Graph.Subobjects[CurId.index()].DirectBases;
      if (std::find(Out.begin(), Out.end(), BaseId) == Out.end())
        Out.push_back(BaseId);
    }
  }

  return Graph;
}

SubobjectId SubobjectGraph::find(const SubobjectKey &Key) const {
  auto It = Index.find(Key);
  return It == Index.end() ? SubobjectId() : It->second;
}

BitVector SubobjectGraph::reachableFrom(SubobjectId Outer) const {
  BitVector Reached(Subobjects.size());
  std::vector<SubobjectId> Stack{Outer};
  Reached.set(Outer.index());
  while (!Stack.empty()) {
    SubobjectId Cur = Stack.back();
    Stack.pop_back();
    for (SubobjectId Base : Subobjects[Cur.index()].DirectBases)
      if (!Reached.test(Base.index())) {
        Reached.set(Base.index());
        Stack.push_back(Base);
      }
  }
  return Reached;
}

bool SubobjectGraph::contains(SubobjectId Outer, SubobjectId Inner) const {
  if (Outer == Inner)
    return true;
  // Plain DFS; reference-engine usage only ever asks about the small set
  // of defining subobjects, so no closure matrix is kept.
  std::vector<SubobjectId> Stack{Outer};
  BitVector Reached(Subobjects.size());
  Reached.set(Outer.index());
  while (!Stack.empty()) {
    SubobjectId Cur = Stack.back();
    Stack.pop_back();
    for (SubobjectId Base : Subobjects[Cur.index()].DirectBases) {
      if (Base == Inner)
        return true;
      if (!Reached.test(Base.index())) {
        Reached.set(Base.index());
        Stack.push_back(Base);
      }
    }
  }
  return false;
}

std::vector<SubobjectId>
SubobjectGraph::definingSubobjects(Symbol Member) const {
  std::vector<SubobjectId> Result;
  for (uint32_t Idx = 0, N = numSubobjects(); Idx != N; ++Idx)
    if (H.declaresMember(Subobjects[Idx].Key.ldc(), Member))
      Result.push_back(SubobjectId(Idx));
  return Result;
}

uint32_t SubobjectGraph::countWithLdc(ClassId Class) const {
  uint32_t Count = 0;
  for (const Subobject &S : Subobjects)
    if (S.Key.ldc() == Class)
      ++Count;
  return Count;
}

void SubobjectGraph::writeDot(std::ostream &OS,
                              std::string_view GraphName) const {
  DotWriter Writer(OS, GraphName);
  for (uint32_t Idx = 0, N = numSubobjects(); Idx != N; ++Idx) {
    const Subobject &S = Subobjects[Idx];
    Writer.node(formatSubobjectKey(H, S.Key),
                std::string(H.className(S.Key.ldc())) + " [" +
                    formatSubobjectKey(H, S.Key) + "]");
  }
  // Containment edges point from base subobject to containing subobject,
  // matching the figures (derived classes on top, rankdir=BT).
  for (uint32_t Idx = 0, N = numSubobjects(); Idx != N; ++Idx) {
    const Subobject &Outer = Subobjects[Idx];
    for (SubobjectId BaseId : Outer.DirectBases) {
      const Subobject &Inner = Subobjects[BaseId.index()];
      auto Kind = H.edgeKind(Inner.Key.ldc(), Outer.Key.ldc());
      Writer.edge(formatSubobjectKey(H, Inner.Key),
                  formatSubobjectKey(H, Outer.Key),
                  Kind && *Kind == InheritanceKind::Virtual);
    }
  }
}

SubobjectKey memlook::composeSubobjectKeys(const SubobjectKey &A,
                                           const SubobjectKey &S) {
  assert(A.Mdc == S.ldc() && "keys do not meet");
  SubobjectKey Result;
  Result.Mdc = S.Mdc;
  if (A.isVirtualPathClass()) {
    // a crosses a virtual edge, so fixed(a . s) = fixed(a).
    Result.Fixed = A.Fixed;
  } else {
    // a is virtual-free, hence fixed(a) = a in full; fixed(a . s) extends
    // through a into fixed(s).
    Result.Fixed = A.Fixed;
    Result.Fixed.insert(Result.Fixed.end(), S.Fixed.begin() + 1,
                        S.Fixed.end());
  }
  return Result;
}

std::optional<std::string> memlook::checkTheorem1(const Hierarchy &H,
                                                  ClassId C,
                                                  size_t MaxPaths) {
  // Side A: ~-equivalence classes of all paths with mdc = C, with the
  // dominance order computed by the Path.h calculus.
  std::map<SubobjectKey, Path> Classes;
  bool Complete = enumeratePathsTo(
      H, C,
      [&](const Path &P) {
        SubobjectKey Key = subobjectKey(H, P);
        Classes.emplace(std::move(Key), P);
      },
      MaxPaths);
  if (!Complete)
    return std::nullopt; // too large; skip rather than half-check

  // Side B: the explicitly-built subobject graph.
  std::optional<SubobjectGraph> Graph =
      SubobjectGraph::build(H, C, MaxPaths);
  if (!Graph)
    return "subobject graph exceeded budget although path enumeration "
           "did not";

  if (Classes.size() != Graph->numSubobjects())
    return "cardinality mismatch: " + std::to_string(Classes.size()) +
           " path classes vs " + std::to_string(Graph->numSubobjects()) +
           " subobjects";

  // The carrier map must be a bijection on canonical keys.
  for (const auto &[Key, Repr] : Classes)
    if (!Graph->find(Key).isValid())
      return "path class " + formatSubobjectKey(H, Key) +
             " has no subobject";

  // Order isomorphism: dominates(a, b) iff contains(a, b).
  for (const auto &[KeyA, ReprA] : Classes) {
    SubobjectId IdA = Graph->find(KeyA);
    BitVector Reach = Graph->reachableFrom(IdA);
    for (const auto &[KeyB, ReprB] : Classes) {
      SubobjectId IdB = Graph->find(KeyB);
      bool Dom = dominates(H, KeyA, KeyB);
      bool Contains = Reach.test(IdB.index());
      if (Dom != Contains)
        return "order mismatch between " + formatSubobjectKey(H, KeyA) +
               " and " + formatSubobjectKey(H, KeyB) + ": dominates=" +
               (Dom ? "true" : "false") + " contains=" +
               (Contains ? "true" : "false");
    }
  }

  return std::nullopt;
}
