//===- Parser.cpp - Mini-C++ parser ----------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/frontend/Parser.h"

#include <string>

using namespace memlook;

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
public:
  Parser(const std::vector<Token> &Tokens, DiagnosticEngine &Diags,
         const ParseOptions &Options)
      : Tokens(Tokens), Diags(Diags), Options(Options) {}

  std::optional<ParsedProgram> run();

private:
  const Token &peek(size_t Ahead = 0) const {
    size_t Idx = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[Idx];
  }

  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  bool consumeIf(TokenKind Kind) {
    if (!peek().is(Kind))
      return false;
    advance();
    return true;
  }

  /// Consumes a token of \p Kind or reports "expected X" and returns
  /// false.
  bool expect(TokenKind Kind) {
    if (consumeIf(Kind))
      return true;
    Diags.error(peek().Loc,
                std::string("expected ") + tokenKindName(Kind) + " before " +
                    tokenKindName(peek().Kind),
                DiagCode::SyntaxError);
    return false;
  }

  /// Skips tokens until after the next semicolon (or closing brace /
  /// EOF) - the error-recovery resynchronization point.
  void skipToSemicolon() {
    while (!peek().is(TokenKind::EndOfFile)) {
      if (advance().is(TokenKind::Semicolon))
        return;
      if (peek().is(TokenKind::RBrace))
        return;
    }
  }

  /// Abandons the rest of the input: reports \p Code at \p Loc and jumps
  /// to EOF so every loop unwinds. Used when a construction-side budget
  /// trips - past that point the input is hostile or broken, and
  /// continuing would only buy an attacker more of our memory.
  void giveUp(SourceLoc Loc, DiagCode Code, const std::string &Message) {
    Diags.error(Loc, Message, Code);
    GaveUp = true;
    Pos = Tokens.size() - 1; // the EOF token
  }

  /// True if declaring one more class stays within budget; trips the
  /// parse otherwise.
  bool chargeClass(SourceLoc Loc) {
    if (H.numClasses() < Options.Budget.MaxClasses)
      return true;
    giveUp(Loc, DiagCode::TooManyClasses,
           "too many classes (limit " +
               std::to_string(Options.Budget.MaxClasses) +
               "); giving up on this input");
    return false;
  }

  bool chargeEdge(SourceLoc Loc) {
    if (H.numEdges() < Options.Budget.MaxEdges)
      return true;
    giveUp(Loc, DiagCode::TooManyEdges,
           "too many inheritance edges (limit " +
               std::to_string(Options.Budget.MaxEdges) +
               "); giving up on this input");
    return false;
  }

  bool chargeMember(SourceLoc Loc) {
    if (H.numMemberDecls() < Options.Budget.MaxMemberDecls)
      return true;
    giveUp(Loc, DiagCode::TooManyMembers,
           "too many member declarations (limit " +
               std::to_string(Options.Budget.MaxMemberDecls) +
               "); giving up on this input");
    return false;
  }

  void parseClassDef();
  void parseBaseList(ClassId Class, AccessSpec DefaultAccess);
  void parseMember(ClassId Class, AccessSpec &CurrentAccess);
  void parseLookupDirective();
  void parseCodeBlock();

  const std::vector<Token> &Tokens;
  DiagnosticEngine &Diags;
  const ParseOptions &Options;
  size_t Pos = 0;
  bool GaveUp = false;

  Hierarchy H;
  std::vector<LookupDirective> Lookups;
  std::vector<CodeBlock> CodeBlocks;
};

} // namespace

std::optional<ParsedProgram> Parser::run() {
  while (!peek().is(TokenKind::EndOfFile)) {
    // Once the error cap trips, every further diagnostic is dropped -
    // parsing on would be silent busywork over input that has already
    // proven itself broken.
    if (Diags.truncated())
      break;
    if (peek().is(TokenKind::KwClass) || peek().is(TokenKind::KwStruct)) {
      parseClassDef();
      continue;
    }
    if (peek().is(TokenKind::KwLookup) || peek().is(TokenKind::KwExpect)) {
      parseLookupDirective();
      continue;
    }
    if (peek().is(TokenKind::KwCode)) {
      parseCodeBlock();
      continue;
    }
    Diags.error(peek().Loc,
                std::string(
                    "expected 'class', 'struct', 'lookup', 'expect', or "
                    "'code', got ") +
                    tokenKindName(peek().Kind),
                DiagCode::SyntaxError);
    advance();
  }

  if (Diags.hasErrors())
    return std::nullopt;
  if (!H.finalize(Diags))
    return std::nullopt;
  return ParsedProgram{std::move(H), std::move(Lookups),
                       std::move(CodeBlocks)};
}

void Parser::parseClassDef() {
  bool IsStruct = peek().is(TokenKind::KwStruct);
  SourceLoc KeywordLoc = advance().Loc;
  AccessSpec DefaultAccess =
      IsStruct ? AccessSpec::Public : AccessSpec::Private;

  if (!peek().is(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected class name", DiagCode::SyntaxError);
    skipToSemicolon();
    return;
  }
  Token NameTok = advance();
  if (!chargeClass(NameTok.Loc))
    return;
  ClassId Class = H.createClass(NameTok.Text, NameTok.Loc, &Diags);
  if (!Class.isValid()) {
    skipToSemicolon();
    return;
  }
  (void)KeywordLoc;

  if (consumeIf(TokenKind::Colon))
    parseBaseList(Class, DefaultAccess);

  if (!expect(TokenKind::LBrace)) {
    skipToSemicolon();
    return;
  }

  AccessSpec CurrentAccess = DefaultAccess;
  while (!peek().is(TokenKind::RBrace) && !peek().is(TokenKind::EndOfFile))
    parseMember(Class, CurrentAccess);

  // A budget give-up already said everything worth saying; don't pile
  // "expected '}'" on top of it.
  if (GaveUp)
    return;
  expect(TokenKind::RBrace);
  expect(TokenKind::Semicolon);
}

void Parser::parseBaseList(ClassId Class, AccessSpec DefaultAccess) {
  do {
    bool Virtual = false;
    bool SawAccess = false;
    AccessSpec Access = DefaultAccess;

    // C++ allows 'virtual' and the access specifier in either order.
    while (true) {
      if (consumeIf(TokenKind::KwVirtual)) {
        Virtual = true;
        continue;
      }
      if (peek().is(TokenKind::KwPublic) ||
          peek().is(TokenKind::KwProtected) ||
          peek().is(TokenKind::KwPrivate)) {
        if (SawAccess)
          Diags.error(peek().Loc, "duplicate access specifier in base",
                      DiagCode::SyntaxError);
        SawAccess = true;
        TokenKind K = advance().Kind;
        Access = K == TokenKind::KwPublic      ? AccessSpec::Public
                 : K == TokenKind::KwProtected ? AccessSpec::Protected
                                               : AccessSpec::Private;
        continue;
      }
      break;
    }

    if (!peek().is(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected base class name",
                  DiagCode::SyntaxError);
      return;
    }
    Token BaseTok = advance();
    ClassId Base = H.findClass(BaseTok.Text);
    if (!Base.isValid()) {
      Diags.error(BaseTok.Loc,
                  "base class '" + std::string(BaseTok.Text) +
                      "' is not defined",
                  DiagCode::UnknownBase);
      continue;
    }
    if (!chargeEdge(BaseTok.Loc))
      return;
    H.addBase(Class, Base,
              Virtual ? InheritanceKind::Virtual : InheritanceKind::NonVirtual,
              Access, BaseTok.Loc, &Diags);
  } while (consumeIf(TokenKind::Comma));
}

void Parser::parseMember(ClassId Class, AccessSpec &CurrentAccess) {
  // Access label: 'public:' etc.
  if (peek().is(TokenKind::KwPublic) || peek().is(TokenKind::KwProtected) ||
      peek().is(TokenKind::KwPrivate)) {
    if (peek(1).is(TokenKind::Colon)) {
      TokenKind K = advance().Kind;
      advance(); // ':'
      CurrentAccess = K == TokenKind::KwPublic      ? AccessSpec::Public
                      : K == TokenKind::KwProtected ? AccessSpec::Protected
                                                    : AccessSpec::Private;
      return;
    }
  }

  // Using-declaration: `using Base::name;`.
  if (consumeIf(TokenKind::KwUsing)) {
    if (!peek().is(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected base class name after 'using'",
                  DiagCode::SyntaxError);
      skipToSemicolon();
      return;
    }
    Token BaseTok = advance();
    if (!expect(TokenKind::ColonColon)) {
      skipToSemicolon();
      return;
    }
    if (!peek().is(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected member name after '::'",
                  DiagCode::SyntaxError);
      skipToSemicolon();
      return;
    }
    Token NameTok = advance();
    expect(TokenKind::Semicolon);

    ClassId Base = H.findClass(BaseTok.Text);
    if (!Base.isValid()) {
      Diags.error(BaseTok.Loc,
                  "class '" + std::string(BaseTok.Text) +
                      "' in using-declaration is not defined",
                  DiagCode::UnknownBase);
      return;
    }
    H.addUsingDeclaration(Class, Base, NameTok.Text, CurrentAccess,
                          NameTok.Loc, &Diags);
    return;
  }

  bool IsStatic = false;
  bool IsVirtual = false;
  while (true) {
    if (consumeIf(TokenKind::KwStatic)) {
      IsStatic = true;
      continue;
    }
    if (consumeIf(TokenKind::KwVirtual)) {
      IsVirtual = true;
      continue;
    }
    break;
  }

  if (!peek().is(TokenKind::Identifier)) {
    Diags.error(peek().Loc,
                std::string("expected member declaration, got ") +
                    tokenKindName(peek().Kind),
                DiagCode::SyntaxError);
    skipToSemicolon();
    return;
  }

  // One identifier: the member name. Two: a type name we ignore, then
  // the member name ('void m();').
  Token First = advance();
  Token NameTok = First;
  if (peek().is(TokenKind::Identifier))
    NameTok = advance();

  if (consumeIf(TokenKind::LParen))
    expect(TokenKind::RParen);

  if (!expect(TokenKind::Semicolon)) {
    skipToSemicolon();
    return;
  }

  if (!chargeMember(NameTok.Loc))
    return;
  H.addMember(Class, NameTok.Text, IsStatic, IsVirtual, CurrentAccess,
              NameTok.Loc, &Diags);
}

void Parser::parseLookupDirective() {
  bool IsExpect = peek().is(TokenKind::KwExpect);
  SourceLoc Loc = advance().Loc; // 'lookup' or 'expect'

  if (!peek().is(TokenKind::Identifier)) {
    Diags.error(peek().Loc,
                std::string("expected class name after '") +
                    (IsExpect ? "expect'" : "lookup'"),
                DiagCode::SyntaxError);
    skipToSemicolon();
    return;
  }
  Token ClassTok = advance();

  if (!expect(TokenKind::ColonColon)) {
    skipToSemicolon();
    return;
  }

  if (!peek().is(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected member name after '::'");
    skipToSemicolon();
    return;
  }
  Token MemberTok = advance();

  std::optional<LookupExpectation> Expectation;
  if (IsExpect) {
    if (!expect(TokenKind::Equals)) {
      skipToSemicolon();
      return;
    }
    if (!peek().is(TokenKind::Identifier)) {
      Diags.error(peek().Loc,
                  "expected class name, 'ambiguous', or 'notfound' "
                  "after '='",
                  DiagCode::SyntaxError);
      skipToSemicolon();
      return;
    }
    Token OutcomeTok = advance();
    LookupExpectation E;
    if (OutcomeTok.Text == "ambiguous") {
      E.ExpectKind = LookupExpectation::Kind::Ambiguous;
    } else if (OutcomeTok.Text == "notfound") {
      E.ExpectKind = LookupExpectation::Kind::NotFound;
    } else {
      E.ExpectKind = LookupExpectation::Kind::ResolvesTo;
      E.DefiningClass = std::string(OutcomeTok.Text);
    }
    Expectation = std::move(E);
  }
  expect(TokenKind::Semicolon);

  Lookups.push_back(LookupDirective{std::string(ClassTok.Text),
                                    std::string(MemberTok.Text), Loc,
                                    std::move(Expectation)});
}

void Parser::parseCodeBlock() {
  SourceLoc Loc = advance().Loc; // 'code'

  if (!peek().is(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected class name after 'code'",
                DiagCode::SyntaxError);
    skipToSemicolon();
    return;
  }
  Token ClassTok = advance();

  CodeBlock Block;
  Block.ClassName = std::string(ClassTok.Text);
  Block.Loc = Loc;

  if (!expect(TokenKind::LBrace)) {
    skipToSemicolon();
    return;
  }

  while (!peek().is(TokenKind::RBrace) && !peek().is(TokenKind::EndOfFile)) {
    if (!peek().is(TokenKind::Identifier)) {
      Diags.error(peek().Loc,
                  std::string("expected a name use, got ") +
                      tokenKindName(peek().Kind),
                  DiagCode::SyntaxError);
      skipToSemicolon();
      continue;
    }
    Token First = advance();
    NameUse Use;
    Use.Loc = First.Loc;
    if (consumeIf(TokenKind::ColonColon)) {
      if (!peek().is(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected member name after '::'",
                  DiagCode::SyntaxError);
        skipToSemicolon();
        continue;
      }
      Token NameTok = advance();
      Use.Qualifier = std::string(First.Text);
      Use.Name = std::string(NameTok.Text);
    } else {
      Use.Name = std::string(First.Text);
    }
    if (consumeIf(TokenKind::Arrow)) {
      if (!peek().is(TokenKind::Identifier)) {
        Diags.error(peek().Loc,
                    "expected class name, 'ambiguous', or 'error' "
                    "after '=>'",
                    DiagCode::SyntaxError);
        skipToSemicolon();
        continue;
      }
      Use.Expected = std::string(advance().Text);
    }
    expect(TokenKind::Semicolon);
    Block.Uses.push_back(std::move(Use));
  }

  expect(TokenKind::RBrace);
  consumeIf(TokenKind::Semicolon); // optional trailing ';'
  CodeBlocks.push_back(std::move(Block));
}

std::optional<ParsedProgram> memlook::parseProgram(std::string_view Source,
                                                   DiagnosticEngine &Diags) {
  return parseProgram(Source, Diags, ParseOptions());
}

std::optional<ParsedProgram>
memlook::parseProgram(std::string_view Source, DiagnosticEngine &Diags,
                      const ParseOptions &Options) {
  Diags.setErrorLimit(Options.Budget.MaxErrorDiagnostics);
  Lexer Lex(Source, Diags);
  Parser P(Lex.tokens(), Diags, Options);
  return P.run();
}
