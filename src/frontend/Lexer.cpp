//===- Lexer.cpp - Mini-C++ lexer ------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/frontend/Lexer.h"

#include <cctype>

using namespace memlook;

const char *memlook::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwClass:
    return "'class'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwVirtual:
    return "'virtual'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwPublic:
    return "'public'";
  case TokenKind::KwProtected:
    return "'protected'";
  case TokenKind::KwPrivate:
    return "'private'";
  case TokenKind::KwLookup:
    return "'lookup'";
  case TokenKind::KwExpect:
    return "'expect'";
  case TokenKind::KwUsing:
    return "'using'";
  case TokenKind::KwCode:
    return "'code'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Equals:
    return "'='";
  case TokenKind::Arrow:
    return "'=>'";
  case TokenKind::ColonColon:
    return "'::'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::EndOfFile:
    return "end of input";
  case TokenKind::Invalid:
    return "invalid token";
  }
  return "unknown";
}

static TokenKind keywordOrIdentifier(std::string_view Text) {
  if (Text == "class")
    return TokenKind::KwClass;
  if (Text == "struct")
    return TokenKind::KwStruct;
  if (Text == "virtual")
    return TokenKind::KwVirtual;
  if (Text == "static")
    return TokenKind::KwStatic;
  if (Text == "public")
    return TokenKind::KwPublic;
  if (Text == "protected")
    return TokenKind::KwProtected;
  if (Text == "private")
    return TokenKind::KwPrivate;
  if (Text == "lookup")
    return TokenKind::KwLookup;
  if (Text == "expect")
    return TokenKind::KwExpect;
  if (Text == "using")
    return TokenKind::KwUsing;
  if (Text == "code")
    return TokenKind::KwCode;
  return TokenKind::Identifier;
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags) {
  lexAll(Source, Diags);
}

void Lexer::lexAll(std::string_view Source, DiagnosticEngine &Diags) {
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;

  auto Advance = [&](size_t Count) {
    for (size_t I = 0; I != Count; ++I) {
      if (Source[Pos + I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    Pos += Count;
  };

  auto Emit = [&](TokenKind Kind, size_t Length) {
    Tokens.push_back(
        Token{Kind, Source.substr(Pos, Length), SourceLoc{Line, Col}});
    Advance(Length);
  };

  while (Pos < Source.size()) {
    char C = Source[Pos];

    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance(1);
      continue;
    }

    // Comments.
    if (C == '/' && Pos + 1 < Source.size()) {
      if (Source[Pos + 1] == '/') {
        size_t End = Source.find('\n', Pos);
        Advance((End == std::string_view::npos ? Source.size() : End) - Pos);
        continue;
      }
      if (Source[Pos + 1] == '*') {
        size_t End = Source.find("*/", Pos + 2);
        if (End == std::string_view::npos) {
          Diags.error(SourceLoc{Line, Col}, "unterminated block comment",
                      DiagCode::SyntaxError);
          Advance(Source.size() - Pos);
          continue;
        }
        Advance(End + 2 - Pos);
        continue;
      }
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Length = 1;
      while (Pos + Length < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[Pos + Length])) ||
              Source[Pos + Length] == '_'))
        ++Length;
      Emit(keywordOrIdentifier(Source.substr(Pos, Length)), Length);
      continue;
    }

    switch (C) {
    case '{':
      Emit(TokenKind::LBrace, 1);
      continue;
    case '}':
      Emit(TokenKind::RBrace, 1);
      continue;
    case '(':
      Emit(TokenKind::LParen, 1);
      continue;
    case ')':
      Emit(TokenKind::RParen, 1);
      continue;
    case ',':
      Emit(TokenKind::Comma, 1);
      continue;
    case ';':
      Emit(TokenKind::Semicolon, 1);
      continue;
    case '=':
      if (Pos + 1 < Source.size() && Source[Pos + 1] == '>') {
        Emit(TokenKind::Arrow, 2);
      } else {
        Emit(TokenKind::Equals, 1);
      }
      continue;
    case ':':
      if (Pos + 1 < Source.size() && Source[Pos + 1] == ':') {
        Emit(TokenKind::ColonColon, 2);
      } else {
        Emit(TokenKind::Colon, 1);
      }
      continue;
    default:
      Diags.error(SourceLoc{Line, Col},
                  std::string("unexpected character '") + C + "'",
                  DiagCode::SyntaxError);
      Emit(TokenKind::Invalid, 1);
      continue;
    }
  }

  Tokens.push_back(Token{TokenKind::EndOfFile, {}, SourceLoc{Line, Col}});
}
