//===- SourcePrinter.cpp - Hierarchy -> source --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/frontend/SourcePrinter.h"

using namespace memlook;

void memlook::printHierarchySource(const Hierarchy &H, std::ostream &OS) {
  assert(H.isFinalized() && "printing requires finalize()");

  for (ClassId C : H.topologicalOrder()) {
    const Hierarchy::ClassInfo &Info = H.info(C);

    // `struct` keeps the default access public; everything else is
    // spelled out explicitly, so the emitted text is default-free.
    OS << "struct " << H.className(C);
    bool FirstBase = true;
    for (const BaseSpecifier &Spec : Info.DirectBases) {
      OS << (FirstBase ? " : " : ", ");
      FirstBase = false;
      if (Spec.Kind == InheritanceKind::Virtual)
        OS << "virtual ";
      OS << accessSpelling(Spec.Access) << ' ' << H.className(Spec.Base);
    }

    if (Info.Members.empty()) {
      OS << " {};\n";
      continue;
    }

    OS << " {\n";
    // Track the current label; structs start public.
    AccessSpec Current = AccessSpec::Public;
    for (const MemberDecl &Member : Info.Members) {
      if (Member.Access != Current) {
        Current = Member.Access;
        OS << accessSpelling(Current) << ":\n";
      }
      OS << "  ";
      if (Member.isUsingDeclaration()) {
        OS << "using " << H.className(Member.UsingFrom)
           << "::" << H.spelling(Member.Name) << ";\n";
        continue;
      }
      if (Member.IsStatic)
        OS << "static ";
      if (Member.IsVirtual)
        OS << "virtual ";
      OS << H.spelling(Member.Name) << ";\n";
    }
    OS << "};\n";
  }
}
