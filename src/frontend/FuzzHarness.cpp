//===- FuzzHarness.cpp - Fuzzing the pipeline --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/frontend/FuzzHarness.h"

#include "memlook/core/DifferentialCheck.h"
#include "memlook/frontend/Parser.h"
#include "memlook/frontend/SourcePrinter.h"
#include "memlook/support/Rng.h"
#include "memlook/workload/Generators.h"

#include <algorithm>
#include <sstream>

using namespace memlook;

namespace {

/// Bytes worth injecting: structural punctuation that moves the parser
/// between states, keywords, and plain junk.
constexpr std::string_view JunkAtoms[] = {
    "{", "}", ";", ":", "::", ",", "(", ")", "=", "=>",
    "class ", "struct ", "virtual ", "public ", "private ", "protected ",
    "using ", "lookup ", "expect ", "code ", "static ",
    "X", "$", "\x01", "/*", "*/", "//", "\n",
};

/// Applies one seeded byte-level mutation to \p Source in place.
void mutateOnce(std::string &Source, Rng &R) {
  if (Source.empty()) {
    Source = "}";
    return;
  }
  switch (R.nextBelow(4)) {
  case 0: { // delete a small range
    size_t At = R.nextBelow(Source.size());
    size_t Len = 1 + R.nextBelow(std::min<size_t>(8, Source.size() - At));
    Source.erase(At, Len);
    break;
  }
  case 1: { // duplicate a chunk elsewhere
    size_t At = R.nextBelow(Source.size());
    size_t Len = 1 + R.nextBelow(std::min<size_t>(24, Source.size() - At));
    std::string Chunk = Source.substr(At, Len);
    Source.insert(R.nextBelow(Source.size() + 1), Chunk);
    break;
  }
  case 2: { // insert a junk atom
    constexpr size_t NumAtoms = sizeof(JunkAtoms) / sizeof(JunkAtoms[0]);
    std::string_view Atom = JunkAtoms[R.nextBelow(NumAtoms)];
    Source.insert(R.nextBelow(Source.size() + 1), Atom);
    break;
  }
  default: // truncate (models a cut-off upload)
    Source.resize(R.nextBelow(Source.size()));
    break;
  }
}

} // namespace

std::string memlook::generateFuzzInput(uint64_t Seed) {
  Rng R(Seed);

  RandomHierarchyParams Params;
  Params.NumClasses = static_cast<uint32_t>(R.nextInRange(1, 40));
  Params.AvgBases = 0.5 + R.nextUnit() * 2.0;
  Params.VirtualEdgeChance = R.nextUnit() * 0.6;
  Params.MemberPool = static_cast<uint32_t>(R.nextInRange(1, 8));
  Params.DeclareChance = 0.1 + R.nextUnit() * 0.4;
  Params.StaticChance = R.nextUnit() * 0.3;
  Params.VirtualMemberChance = R.nextUnit() * 0.5;
  Params.RestrictedEdgeChance = R.nextUnit() * 0.4;
  Params.UsingChance = R.nextChance(1, 3) ? R.nextUnit() * 0.3 : 0.0;

  Workload W = makeRandomHierarchy(Params, R.next());
  std::ostringstream OS;
  printHierarchySource(W.H, OS);
  std::string Source = OS.str();

  // A third of the corpus stays well-formed so the engines' agreement is
  // audited too, not just the parser's rejection paths.
  if (R.nextChance(2, 3)) {
    uint64_t Mutations = R.nextInRange(1, 4);
    for (uint64_t I = 0; I != Mutations; ++I)
      mutateOnce(Source, R);
  }
  return Source;
}

FuzzCaseResult memlook::runFuzzCase(uint64_t Seed, std::string_view Source,
                                    const ResourceBudget &Budget) {
  FuzzCaseResult Result;
  Result.Seed = Seed;

  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget = Budget;
  std::optional<ParsedProgram> Program = parseProgram(Source, Diags, Options);
  Result.DiagnosticsTruncated = Diags.truncated();
  if (!Program)
    return Result;

  Result.Parsed = true;
  DifferentialReport Report = runDifferentialCheck(Program->H, Budget);
  Result.PairsChecked = Report.PairsChecked;
  Result.PairsSkipped = Report.PairsSkipped;
  Result.Mismatches = std::move(Report.Mismatches);
  return Result;
}

FuzzCaseResult memlook::runFuzzCase(uint64_t Seed,
                                    const ResourceBudget &Budget) {
  return runFuzzCase(Seed, generateFuzzInput(Seed), Budget);
}

FuzzCampaignReport memlook::runFuzzCampaign(uint64_t FirstSeed,
                                            uint64_t NumCases,
                                            const ResourceBudget &Budget) {
  FuzzCampaignReport Report;
  for (uint64_t I = 0; I != NumCases; ++I) {
    FuzzCaseResult Case = runFuzzCase(FirstSeed + I, Budget);
    ++Report.CasesRun;
    if (Case.Parsed)
      ++Report.CasesParsed;
    else
      ++Report.CasesRejected;
    Report.PairsChecked += Case.PairsChecked;
    Report.PairsSkipped += Case.PairsSkipped;
    if (!Case.passed())
      Report.Failures.push_back(std::move(Case));
  }
  return Report;
}
