//===- CodeResolution.cpp - code blocks ---------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/frontend/CodeResolution.h"

#include "memlook/core/UnqualifiedLookup.h"
#include "memlook/subobject/SubobjectCount.h"

using namespace memlook;

namespace {

std::string describeMember(const Hierarchy &H, const NameUse &Use,
                           const LookupResult &R) {
  std::string Out;
  if (!Use.Qualifier.empty()) {
    Out += Use.Qualifier;
    Out += "::";
  }
  Out += Use.Name;
  Out += " -> ";
  Out += formatLookupResult(H, R);
  return Out;
}

} // namespace

bool memlook::useMatchesExpectation(const Hierarchy &H,
                                    const ResolvedUse &Use) {
  if (!Use.Use || Use.Use->Expected.empty())
    return true;
  const std::string &Expected = Use.Use->Expected;
  if (Expected == "ambiguous")
    return Use.UseKind == ResolvedUse::Kind::AmbiguousMember;
  if (Expected == "error")
    return Use.UseKind != ResolvedUse::Kind::Member;
  return Use.UseKind == ResolvedUse::Kind::Member &&
         H.className(Use.Member.DefiningClass) == Expected;
}

std::vector<ResolvedUse> memlook::resolveCodeBlock(const Hierarchy &H,
                                                   LookupEngine &Engine,
                                                   const CodeBlock &Block) {
  std::vector<ResolvedUse> Results;

  ClassId Context = H.findClass(Block.ClassName);
  if (!Context.isValid()) {
    ResolvedUse Bad;
    Bad.UseKind = ResolvedUse::Kind::BadQualifier;
    Bad.Description =
        "code block names unknown class '" + Block.ClassName + "'";
    Results.push_back(std::move(Bad));
    return Results;
  }

  // The lexical context of a member function body: the class scope.
  ScopeStack Scopes(Engine);
  Scopes.pushClassScope(Context);

  for (const NameUse &Use : Block.Uses) {
    ResolvedUse Out;
    Out.Use = &Use;

    if (Use.Qualifier.empty()) {
      // Unqualified: ordinary scope resolution; the class scope
      // delegates to member lookup (paper Section 6).
      ResolvedName R = Scopes.resolve(Use.Name);
      switch (R.NameKind) {
      case ResolvedName::Kind::NotFound:
        Out.UseKind = ResolvedUse::Kind::UnknownName;
        Out.Description = Use.Name + " -> error: undeclared name";
        break;
      case ResolvedName::Kind::LocalName:
        // Cannot happen here: the stack holds only the class scope.
        Out.UseKind = ResolvedUse::Kind::Member;
        Out.Description = Use.Name + " -> local";
        break;
      case ResolvedName::Kind::Member:
        Out.Member = std::move(*R.MemberResult);
        Out.UseKind = Out.Member.Status == LookupStatus::Unambiguous
                          ? ResolvedUse::Kind::Member
                          : ResolvedUse::Kind::AmbiguousMember;
        Out.Description = describeMember(H, Use, Out.Member);
        break;
      }
      Results.push_back(std::move(Out));
      continue;
    }

    // Qualified: B::x.
    ClassId Naming = H.findClass(Use.Qualifier);
    if (!Naming.isValid()) {
      Out.UseKind = ResolvedUse::Kind::BadQualifier;
      Out.Description = Use.Qualifier + "::" + Use.Name +
                        " -> error: unknown class '" + Use.Qualifier + "'";
      Results.push_back(std::move(Out));
      continue;
    }

    Symbol Member = H.findName(Use.Name);
    if (!Member.isValid()) {
      // The name was never declared anywhere; report the base problem
      // first if there is one (the better diagnostic), else not-found.
      uint64_t Copies = countSubobjectsWithLdc(H, Context, Naming);
      if (Copies == 0) {
        Out.UseKind = ResolvedUse::Kind::BadQualifier;
        Out.Description = Use.Qualifier + "::" + Use.Name +
                          " -> error: '" + Use.Qualifier + "' is not " +
                          Block.ClassName + " or one of its bases";
      } else if (Copies > 1) {
        Out.UseKind = ResolvedUse::Kind::BadQualifier;
        Out.Description = Use.Qualifier + "::" + Use.Name +
                          " -> error: '" + Use.Qualifier +
                          "' is an ambiguous base of " + Block.ClassName;
      } else {
        Out.UseKind = ResolvedUse::Kind::UnknownName;
        Out.Description = Use.Qualifier + "::" + Use.Name +
                          " -> error: no member named '" + Use.Name + "'";
      }
      Results.push_back(std::move(Out));
      continue;
    }

    QualifiedLookupResult Q =
        qualifiedMemberLookup(H, Engine, Context, Naming, Member);
    switch (Q.ResultKind) {
    case QualifiedLookupResult::Kind::NotABase:
      Out.UseKind = ResolvedUse::Kind::BadQualifier;
      Out.Description = Use.Qualifier + "::" + Use.Name + " -> error: '" +
                        Use.Qualifier + "' is not " + Block.ClassName +
                        " or one of its bases";
      break;
    case QualifiedLookupResult::Kind::AmbiguousBase:
      Out.UseKind = ResolvedUse::Kind::BadQualifier;
      Out.Description = Use.Qualifier + "::" + Use.Name + " -> error: '" +
                        Use.Qualifier + "' is an ambiguous base of " +
                        Block.ClassName;
      break;
    case QualifiedLookupResult::Kind::MemberProblem:
      Out.Member = std::move(Q.Member);
      Out.UseKind = Out.Member.Status == LookupStatus::Ambiguous
                        ? ResolvedUse::Kind::AmbiguousMember
                        : ResolvedUse::Kind::UnknownName;
      Out.Description = describeMember(H, Use, Out.Member);
      break;
    case QualifiedLookupResult::Kind::Ok:
      Out.Member = std::move(Q.Member);
      Out.UseKind = ResolvedUse::Kind::Member;
      Out.Description = describeMember(H, Use, Out.Member);
      break;
    }
    Results.push_back(std::move(Out));
  }

  return Results;
}
