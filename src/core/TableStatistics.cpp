//===- TableStatistics.cpp - Table metrics -----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/TableStatistics.h"

#include "memlook/subobject/SubobjectCount.h"

#include <sstream>

using namespace memlook;

TableStatistics
memlook::computeTableStatistics(const Hierarchy &H,
                                DominanceLookupEngine &Engine) {
  TableStatistics Stats;
  Stats.Classes = H.numClasses();
  Stats.Edges = H.numEdges();
  Stats.MemberNames = static_cast<uint32_t>(H.allMemberNames().size());
  Stats.MemberDecls = H.numMemberDecls();

  using Entry = DominanceLookupEngine::Entry;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId C(Idx);
    for (Symbol Member : H.allMemberNames()) {
      ++Stats.Pairs;
      const Entry &E = Engine.entry(C, Member);
      switch (E.EntryKind) {
      case Entry::Kind::Absent:
        ++Stats.NotFoundPairs;
        break;
      case Entry::Kind::Red:
        ++Stats.UnambiguousPairs;
        if (E.StaticMerged)
          ++Stats.SharedStaticPairs;
        break;
      case Entry::Kind::Blue:
        ++Stats.AmbiguousPairs;
        if (E.Blues.size() > Stats.MaxBlueSetSize) {
          Stats.MaxBlueSetSize = E.Blues.size();
          Stats.MaxBlueSetClass = C;
          Stats.MaxBlueSetMember = Member;
        }
        break;
      }
    }

    uint64_t Count = countSubobjects(H, C);
    Stats.TotalSubobjects = saturatingAdd(Stats.TotalSubobjects, Count);
    if (Count > Stats.MaxSubobjects) {
      Stats.MaxSubobjects = Count;
      Stats.MaxSubobjectsClass = C;
    }
  }
  return Stats;
}

std::string memlook::formatTableStatistics(const Hierarchy &H,
                                           const TableStatistics &Stats) {
  std::ostringstream OS;
  OS << "classes " << Stats.Classes << ", edges " << Stats.Edges
     << ", member names " << Stats.MemberNames << " ("
     << Stats.MemberDecls << " declarations)\n";
  OS << "lookup table: " << Stats.Pairs << " pairs = "
     << Stats.UnambiguousPairs << " unambiguous ("
     << Stats.SharedStaticPairs << " via shared static), "
     << Stats.AmbiguousPairs << " ambiguous, " << Stats.NotFoundPairs
     << " not-found\n";
  if (Stats.MaxBlueSetSize != 0)
    OS << "largest blue set: " << Stats.MaxBlueSetSize << " at "
       << H.className(Stats.MaxBlueSetClass)
       << "::" << H.spelling(Stats.MaxBlueSetMember) << '\n';
  OS << "subobjects: "
     << (Stats.TotalSubobjects == UINT64_MAX
             ? std::string(">= 2^64")
             : std::to_string(Stats.TotalSubobjects))
     << " total across complete-object types, largest ";
  if (Stats.MaxSubobjects == UINT64_MAX)
    OS << ">= 2^64";
  else
    OS << Stats.MaxSubobjects;
  if (Stats.MaxSubobjectsClass.isValid())
    OS << " (" << H.className(Stats.MaxSubobjectsClass) << ")";
  OS << '\n';
  return OS.str();
}
