//===- TableStatistics.cpp - Table metrics -----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/TableStatistics.h"

#include "memlook/subobject/SubobjectCount.h"

#include <sstream>

using namespace memlook;

TableStatistics
memlook::computeTableStatistics(const Hierarchy &H,
                                DominanceLookupEngine &Engine) {
  TableStatistics Stats;
  Stats.Classes = H.numClasses();
  Stats.Edges = H.numEdges();
  Stats.MemberNames = static_cast<uint32_t>(H.allMemberNames().size());
  Stats.MemberDecls = H.numMemberDecls();

  // Tabulate every column up front, then sweep the compact entries
  // directly - same class-major order as before (the MaxBlueSet
  // tie-break is "first strict maximum in class-major order"), without
  // expanding |N| x |M| entries through entry().
  const std::vector<Symbol> &Members = H.allMemberNames();
  std::vector<const CompactColumn *> Columns;
  Columns.reserve(Members.size());
  for (Symbol Member : Members)
    Columns.push_back(Engine.column(Member));

  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId C(Idx);
    for (size_t MI = 0; MI != Members.size(); ++MI) {
      ++Stats.Pairs;
      const CompactEntry &E = (*Columns[MI])[Idx];
      switch (E.kind()) {
      case EntryKind::Absent:
        ++Stats.NotFoundPairs;
        break;
      case EntryKind::Red:
        ++Stats.UnambiguousPairs;
        if (E.staticMerged())
          ++Stats.SharedStaticPairs;
        break;
      case EntryKind::Blue:
        ++Stats.AmbiguousPairs;
        if (E.PoolCount > Stats.MaxBlueSetSize) {
          Stats.MaxBlueSetSize = E.PoolCount;
          Stats.MaxBlueSetClass = C;
          Stats.MaxBlueSetMember = Members[MI];
        }
        break;
      }
    }

    uint64_t Count = countSubobjects(H, C);
    Stats.TotalSubobjects = saturatingAdd(Stats.TotalSubobjects, Count);
    if (Count > Stats.MaxSubobjects) {
      Stats.MaxSubobjects = Count;
      Stats.MaxSubobjectsClass = C;
    }
  }

  DominanceLookupEngine::MemoryStats Mem = Engine.memoryStats();
  Stats.TableHeapBytes = Mem.HeapBytes;
  Stats.InlineRedEntries = Mem.Pools.InlineRedEntries;
  Stats.OverflowRedEntries = Mem.Pools.OverflowRedEntries;
  Stats.RedPoolElements = Mem.Pools.RedPoolElements;
  Stats.BluePoolElements = Mem.Pools.BluePoolElements;
  return Stats;
}

std::string memlook::formatTableStatistics(const Hierarchy &H,
                                           const TableStatistics &Stats) {
  std::ostringstream OS;
  OS << "classes " << Stats.Classes << ", edges " << Stats.Edges
     << ", member names " << Stats.MemberNames << " ("
     << Stats.MemberDecls << " declarations)\n";
  OS << "lookup table: " << Stats.Pairs << " pairs = "
     << Stats.UnambiguousPairs << " unambiguous ("
     << Stats.SharedStaticPairs << " via shared static), "
     << Stats.AmbiguousPairs << " ambiguous, " << Stats.NotFoundPairs
     << " not-found\n";
  if (Stats.MaxBlueSetSize != 0)
    OS << "largest blue set: " << Stats.MaxBlueSetSize << " at "
       << H.className(Stats.MaxBlueSetClass)
       << "::" << H.spelling(Stats.MaxBlueSetMember) << '\n';
  OS << "subobjects: "
     << (Stats.TotalSubobjects == UINT64_MAX
             ? std::string(">= 2^64")
             : std::to_string(Stats.TotalSubobjects))
     << " total across complete-object types, largest ";
  if (Stats.MaxSubobjects == UINT64_MAX)
    OS << ">= 2^64";
  else
    OS << Stats.MaxSubobjects;
  if (Stats.MaxSubobjectsClass.isValid())
    OS << " (" << H.className(Stats.MaxSubobjectsClass) << ")";
  OS << '\n';
  OS << "memory: " << Stats.TableHeapBytes << " table bytes, red entries "
     << Stats.InlineRedEntries << " inline / " << Stats.OverflowRedEntries
     << " pooled (" << Stats.RedPoolElements << " pool elements), "
     << Stats.BluePoolElements << " blue pool elements\n";
  return OS.str();
}
