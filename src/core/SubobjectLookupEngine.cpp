//===- SubobjectLookupEngine.cpp - R-F reference ---------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/SubobjectLookupEngine.h"

#include "memlook/core/MostDominant.h"

using namespace memlook;

SubobjectLookupEngine::SubobjectLookupEngine(const Hierarchy &H,
                                             size_t MaxSubobjects)
    : LookupEngine(H) {
  Budget.MaxSubobjects = MaxSubobjects;
}

SubobjectLookupEngine::SubobjectLookupEngine(const Hierarchy &H,
                                             const ResourceBudget &Budget)
    : LookupEngine(H), Budget(Budget) {}

const SubobjectGraph *SubobjectLookupEngine::graphFor(ClassId Complete) {
  auto It = GraphCache.find(Complete);
  if (It == GraphCache.end())
    It = GraphCache
             .emplace(Complete,
                      SubobjectGraph::build(H, Complete, Budget.MaxSubobjects))
             .first;
  return It->second ? &*It->second : nullptr;
}

LookupResult SubobjectLookupEngine::lookup(ClassId Context, Symbol Member) {
  const SubobjectGraph *Graph = graphFor(Context);
  if (!Graph)
    return LookupResult::overflow();

  // The defining-subobject set drives the (quadratic) dominance resolve,
  // so metering its size bounds the whole query's work.
  BudgetMeter Meter = BudgetMeter::lookupSteps(Budget);
  std::vector<DefinitionRecord> Defs;
  for (SubobjectId Id : Graph->definingSubobjects(Member)) {
    if (!Meter.charge())
      return LookupResult::exhausted();
    const SubobjectGraph::Subobject &S = Graph->subobject(Id);
    Defs.push_back(DefinitionRecord{S.Key, S.Repr});
  }
  return resolveByDominance(H, Defs, Member);
}

LookupResult SubobjectLookupEngine::dynLookup(ClassId Complete,
                                              const SubobjectKey &S,
                                              Symbol Member) {
  // dyn(m, s) = lookup(mdc(s), m): virtual dispatch always resolves in
  // the context of the complete object's class.
  assert(S.Mdc == Complete && "subobject key from a different object");
  (void)Complete;
  return lookup(S.Mdc, Member);
}

LookupResult SubobjectLookupEngine::statLookup(ClassId Complete,
                                               const SubobjectKey &S,
                                               Symbol Member) {
  // stat(m, s) = lookup(ldc(s), m) o s: resolve against the static type,
  // then re-embed the found subobject into the complete object.
  assert(S.Mdc == Complete && "subobject key from a different object");
  LookupResult Inner = lookup(S.ldc(), Member);
  if (Inner.Status != LookupStatus::Unambiguous)
    return Inner;

  assert(Inner.Subobject && Inner.Witness && "reference result lacks key");
  SubobjectKey Composed = composeSubobjectKeys(*Inner.Subobject, S);

  // The witness path of the composition: inner witness continued by a
  // representative path of s (taken from the complete object's graph).
  std::optional<Path> Witness;
  if (const SubobjectGraph *Graph = graphFor(Complete)) {
    SubobjectId SId = Graph->find(S);
    assert(SId.isValid() && "key does not name a subobject");
    Witness = concat(*Inner.Witness, Graph->subobject(SId).Repr);
  }

  return LookupResult::unambiguous(Inner.DefiningClass, std::move(Composed),
                                   std::move(Witness), Inner.SharedStatic);
}
