//===- LookupResult.cpp - Lookup results -----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/LookupResult.h"

using namespace memlook;

const char *memlook::lookupStatusLabel(LookupStatus Status) {
  switch (Status) {
  case LookupStatus::Unambiguous:
    return "unambiguous";
  case LookupStatus::Ambiguous:
    return "ambiguous";
  case LookupStatus::NotFound:
    return "not-found";
  case LookupStatus::Overflow:
    return "overflow";
  case LookupStatus::Exhausted:
    return "exhausted";
  }
  return "unknown";
}

std::string memlook::formatLookupResult(const Hierarchy &H,
                                        const LookupResult &R) {
  switch (R.Status) {
  case LookupStatus::NotFound:
    return "not found";
  case LookupStatus::Overflow:
    return "overflow (engine budget exceeded)";
  case LookupStatus::Exhausted:
    return "exhausted (per-lookup step budget exceeded)";
  case LookupStatus::Ambiguous: {
    std::string Out = "ambiguous";
    if (!R.AmbiguousCandidates.empty()) {
      Out += " {";
      for (size_t I = 0, E = R.AmbiguousCandidates.size(); I != E; ++I) {
        if (I != 0)
          Out += ", ";
        Out += formatSubobjectKey(H, R.AmbiguousCandidates[I]);
      }
      Out += '}';
    }
    return Out;
  }
  case LookupStatus::Unambiguous:
    break;
  }

  std::string Out(H.className(R.DefiningClass));
  if (R.Subobject) {
    Out += " (subobject ";
    Out += formatSubobjectKey(H, *R.Subobject);
    Out += ')';
  }
  if (R.SharedStatic)
    Out += " [shared static]";
  return Out;
}
