//===- AccessControl.cpp - Access rights -----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/AccessControl.h"

using namespace memlook;

AccessSpec memlook::effectiveAccess(const Hierarchy &H, const Path &Witness,
                                    AccessSpec MemberAccess) {
  AccessSpec Effective = MemberAccess;
  for (size_t I = 0, E = Witness.length() - 1; I != E; ++I) {
    auto EdgeAcc = H.edgeAccess(Witness.Nodes[I], Witness.Nodes[I + 1]);
    assert(EdgeAcc && "witness is not a CHG path");
    // Private inheritance makes inherited members private in the derived
    // class; protected caps them at protected; public passes through.
    Effective = restrictAccess(Effective, *EdgeAcc);
  }
  return Effective;
}

bool memlook::isAccessible(const Hierarchy &H, const LookupResult &R,
                           Symbol Member, AccessContext Context) {
  assert(R.Status == LookupStatus::Unambiguous &&
         "access applies only after successful lookup");
  assert(R.Witness && "access check requires the witness path");

  const MemberDecl *Decl = H.declaredMember(R.DefiningClass, Member);
  assert(Decl && "resolved member is not declared in its defining class");

  switch (Context) {
  case AccessContext::SelfOrFriend:
    // A member (or friend) of the context class sees everything the
    // class itself sees, including privately inherited members.
    return true;
  case AccessContext::DerivedMember: {
    AccessSpec Effective = effectiveAccess(H, *R.Witness, Decl->Access);
    return Effective != AccessSpec::Private;
  }
  case AccessContext::Outside: {
    AccessSpec Effective = effectiveAccess(H, *R.Witness, Decl->Access);
    return Effective == AccessSpec::Public;
  }
  }
  return false;
}
