//===- MostDominant.cpp - Defns -> result ----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/MostDominant.h"

using namespace memlook;

std::vector<DefinitionRecord>
memlook::maximalDefinitions(const Hierarchy &H,
                            const std::vector<DefinitionRecord> &Defs) {
  std::vector<DefinitionRecord> Maximal;
  for (size_t I = 0, E = Defs.size(); I != E; ++I) {
    bool Dominated = false;
    for (size_t J = 0; J != E && !Dominated; ++J) {
      if (I == J)
        continue;
      // Dominance is a partial order on distinct subobjects (Lemma 2),
      // so "J dominates I" here is necessarily strict.
      if (dominates(H, Defs[J].Key, Defs[I].Key))
        Dominated = true;
    }
    if (!Dominated)
      Maximal.push_back(Defs[I]);
  }
  return Maximal;
}

LookupResult
memlook::resolveByDominance(const Hierarchy &H,
                            const std::vector<DefinitionRecord> &Defs,
                            Symbol Member) {
  if (Defs.empty())
    return LookupResult::notFound();

  std::vector<DefinitionRecord> Maximal = maximalDefinitions(H, Defs);
  assert(!Maximal.empty() && "non-empty set must have maximal elements");

  if (Maximal.size() == 1)
    return LookupResult::unambiguous(Maximal.front().Key.ldc(),
                                     Maximal.front().Key,
                                     Maximal.front().Witness);

  // Definition 17(2): several maximal subobjects are fine when they all
  // share one defining class whose member is static (including class-
  // scope type names and enumerators, which behave like statics).
  ClassId SharedLdc = Maximal.front().Key.ldc();
  bool AllShare = true;
  for (const DefinitionRecord &Def : Maximal)
    if (Def.Key.ldc() != SharedLdc) {
      AllShare = false;
      break;
    }
  if (AllShare) {
    const MemberDecl *Decl = H.declaredMember(SharedLdc, Member);
    assert(Decl && "maximal definition without declaration");
    if (Decl->IsStatic)
      return LookupResult::unambiguous(SharedLdc, Maximal.front().Key,
                                       Maximal.front().Witness,
                                       /*SharedStatic=*/true);
  }

  std::vector<SubobjectKey> Candidates;
  Candidates.reserve(Maximal.size());
  for (DefinitionRecord &Def : Maximal)
    Candidates.push_back(std::move(Def.Key));
  return LookupResult::ambiguous(std::move(Candidates));
}
