//===- QualifiedLookup.cpp - x.B::m -------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/QualifiedLookup.h"

#include "memlook/subobject/SubobjectCount.h"
#include "memlook/subobject/SubobjectGraph.h"

using namespace memlook;

namespace {

/// Any single path NamingClass -> ... -> ObjectType; when the B
/// subobject is unique, any path names it, so one DFS suffices.
std::optional<Path> findAnyPath(const Hierarchy &H, ClassId From,
                                ClassId To) {
  Path Current(From);
  std::optional<Path> Found;
  // Iterative DFS carrying the path; prunes to classes that reach To.
  struct Frame {
    ClassId Node;
    uint32_t NextChild = 0;
  };
  std::vector<Frame> Stack{Frame{From, 0}};
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Node == To)
      return Current;
    const std::vector<ClassId> &Derived = H.info(Top.Node).DirectDerived;
    bool Descended = false;
    while (Top.NextChild < Derived.size()) {
      ClassId Next = Derived[Top.NextChild++];
      if (Next == To || H.isBaseOf(Next, To)) {
        Current.Nodes.push_back(Next);
        Stack.push_back(Frame{Next, 0});
        Descended = true;
        break;
      }
    }
    if (!Descended && !(Stack.back().Node == To)) {
      Stack.pop_back();
      if (!Current.Nodes.empty())
        Current.Nodes.pop_back();
    }
  }
  return Found;
}

} // namespace

QualifiedLookupResult
memlook::qualifiedMemberLookup(const Hierarchy &H, LookupEngine &Engine,
                               ClassId ObjectType, ClassId NamingClass,
                               Symbol Member) {
  QualifiedLookupResult Result;

  // Step 1: the naming class must be the object type or an unambiguous
  // base of it.
  uint64_t BaseCopies = countSubobjectsWithLdc(H, ObjectType, NamingClass);
  if (BaseCopies == 0) {
    Result.ResultKind = QualifiedLookupResult::Kind::NotABase;
    return Result;
  }
  if (BaseCopies > 1) {
    Result.ResultKind = QualifiedLookupResult::Kind::AmbiguousBase;
    return Result;
  }

  // The unique B subobject: since it is unique, *any* path from B to the
  // object type names it.
  std::optional<Path> BasePath = findAnyPath(H, NamingClass, ObjectType);
  assert(BasePath && "count said the base exists but no path was found");
  SubobjectKey BaseKey = subobjectKey(H, *BasePath);
  Result.BaseSubobject = BaseKey;

  // Step 2: ordinary member lookup in the context of the naming class.
  LookupResult Inner = Engine.lookup(NamingClass, Member);
  if (Inner.Status != LookupStatus::Unambiguous) {
    Result.ResultKind = QualifiedLookupResult::Kind::MemberProblem;
    Result.Member = std::move(Inner);
    return Result;
  }

  // Step 3: re-embed into the complete object (stat's composition, on
  // canonical keys; the witness concatenates when available).
  Result.ResultKind = QualifiedLookupResult::Kind::Ok;
  Result.Member = Inner;
  if (Inner.Subobject)
    Result.Member.Subobject =
        composeSubobjectKeys(*Inner.Subobject, BaseKey);
  if (Inner.Witness)
    Result.Member.Witness = concat(*Inner.Witness, *BasePath);
  return Result;
}
