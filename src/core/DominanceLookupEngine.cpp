//===- DominanceLookupEngine.cpp - Figure 8 --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"

#include <algorithm>

using namespace memlook;

DominanceLookupEngine::DominanceLookupEngine(const Hierarchy &H, Mode Mode)
    : LookupEngine(H), TabulationMode(Mode) {
  const std::vector<Symbol> &Names = H.allMemberNames();
  MemberIndex.reserve(Names.size());
  for (uint32_t I = 0, E = static_cast<uint32_t>(Names.size()); I != E; ++I)
    MemberIndex.emplace(Names[I], I);

  Columns.resize(Names.size());
  EntryComputed.resize(Names.size());

  if (TabulationMode == Mode::Eager)
    for (uint32_t I = 0, E = static_cast<uint32_t>(Names.size()); I != E; ++I)
      computeColumn(I);
}

std::string_view DominanceLookupEngine::engineName() const {
  switch (TabulationMode) {
  case Mode::Eager:
    return "figure8-eager";
  case Mode::Lazy:
    return "figure8-lazy";
  case Mode::LazyRecursive:
    return "figure8-lazy-recursive";
  }
  return "figure8";
}

namespace {

/// Lemma 4 on the set abstraction: does the red value (L, Vs) cover the
/// definition abstracted as V2 (arriving along a different edge)?
bool redCovers(const Hierarchy &H, ClassId L, std::span<const ClassId> Vs,
               ClassId V2, const CompactColumn &Column,
               DominanceLookupEngine::Stats &S) {
  ++S.DominanceTests;
  if (!V2.isValid())
    return false;
  // Lemma 4 clause (i): V2 is a virtual base of the defining class.
  // Sound for any member of the set: only the shared ldc matters.
  if (H.isVirtualBaseOf(V2, L))
    return true;
  // Lemma 4 clause (ii): some maximal member crossed the same first
  // virtual node. Soundness requires that member's fixed part to
  // dominate every definition reaching V2 - equivalently, that the
  // entry *at* V2 is red with the same defining class. Members that
  // were propagated red-all-the-way satisfy this by construction (a red
  // lineage passes through V2 while red); members absorbed from blue
  // elements by the static rule need the explicit check, since their
  // fixed part may be just one of several incomparable definitions
  // at V2.
  if (std::find(Vs.begin(), Vs.end(), V2) == Vs.end())
    return false;
  const CompactEntry &AtV2 = Column[V2.index()];
  return AtV2.kind() == EntryKind::Red && AtV2.DefiningClass == L;
}

/// Per-thread accumulation scratch for computeEntry. The generalized
/// red member set and the blue to-be-dominated list vary per entry but
/// their *capacity* stabilizes quickly; reusing one set of vectors per
/// thread removes the per-entry heap churn that dominated the old
/// vector-of-vectors build. Each worker thread (ParallelTabulator) gets
/// its own copy, so the kernel stays synchronization-free.
struct ComputeScratch {
  std::vector<ClassId> CandVs; ///< candidate's member V-set (unsorted)
  std::vector<ClassId> NewVs;  ///< arriving red set composed across an edge
  std::vector<BlueElement> ToBeDominated;
  std::vector<BlueElement> Surviving;
};

ComputeScratch &computeScratch() {
  thread_local ComputeScratch S;
  return S;
}

void addUniqueV(std::vector<ClassId> &Vs, ClassId V) {
  if (std::find(Vs.begin(), Vs.end(), V) == Vs.end())
    Vs.push_back(V);
}

/// Reconstructs the witness path of a red entry by walking Via links.
/// The witness runs ldc-first, so collect backwards and reverse.
Path reconstructWitness(const CompactColumn &Column, ClassId Context) {
  std::vector<ClassId> Reversed;
  ClassId Cur = Context;
  while (true) {
    Reversed.push_back(Cur);
    const CompactEntry &E = Column[Cur.index()];
    assert(E.kind() == EntryKind::Red && "witness of non-red entry");
    if (!E.Via.isValid())
      break;
    Cur = E.Via;
  }
  std::reverse(Reversed.begin(), Reversed.end());
  return Path(std::move(Reversed));
}

} // namespace

void DominanceLookupEngine::computeEntry(const Hierarchy &H,
                                         CompactColumn &Column, ClassId C,
                                         Symbol Member, Stats &S) {
  ++S.EntriesComputed;
  CompactEntry &Out = Column.slot(C.index());

  auto IsStaticIn = [&](ClassId L) {
    const MemberDecl *Decl = H.declaredMember(L, Member);
    return Decl && Decl->IsStatic;
  };

  // Line [12]: a local declaration trivially dominates everything that
  // reaches C (it hides every inherited definition).
  if (const MemberDecl *Decl = H.declaredMember(C, Member)) {
    const ClassId Omega[1] = {ClassId()};
    Column.setRed(Out, C, Omega, ClassId(), ClassId(), Decl->Access,
                  /*StaticMerged=*/false);
    return;
  }

  // Lines [14]-[33]: fold the values arriving along each incoming edge,
  // maintaining at most one red candidate (now a member *set*, see the
  // header) and the blue abstractions it must dominate.
  ComputeScratch &Scr = computeScratch();
  std::vector<ClassId> &CandVs = Scr.CandVs;
  std::vector<ClassId> &NewVs = Scr.NewVs;
  std::vector<BlueElement> &ToBeDominated = Scr.ToBeDominated;
  CandVs.clear();
  ToBeDominated.clear();

  bool SawAnything = false;
  bool CandPresent = false;
  ClassId CandL, CandRepV, CandVia;
  AccessSpec CandAccess = AccessSpec::Public;
  bool CandStaticMerged = false;

  // Pre-size the accumulators from the incoming entries so the eager
  // path never regrows them mid-fold: every element they can receive
  // originates in a base entry's blue set or red member set.
  {
    size_t IncomingBlues = 0, IncomingReds = 0;
    for (const BaseSpecifier &Spec : H.info(C).DirectBases) {
      const CompactEntry &In = Column[Spec.Base.index()];
      if (In.kind() == EntryKind::Blue)
        IncomingBlues += In.PoolCount;
      else if (In.kind() == EntryKind::Red)
        IncomingReds += Column.redCount(In);
    }
    ToBeDominated.reserve(IncomingBlues + IncomingReds);
    CandVs.reserve(IncomingReds);
  }

  // Duplicates are tolerated during accumulation and removed in one
  // sort+unique pass below: a per-insert membership scan would make the
  // ambiguity-heavy regime cubic instead of the paper's quadratic.
  auto AddBlue = [&](BlueElement Elem) { ToBeDominated.push_back(Elem); };

  auto DedupeBlues = [](std::vector<BlueElement> &Blues) {
    std::sort(Blues.begin(), Blues.end());
    Blues.erase(std::unique(Blues.begin(), Blues.end()), Blues.end());
  };

  auto DemoteCandidateToBlue = [&]() {
    for (ClassId V : CandVs)
      AddBlue(BlueElement{V, CandL});
    CandPresent = false;
    CandVs.clear();
    CandStaticMerged = false;
  };

  for (const BaseSpecifier &Spec : H.info(C).DirectBases) {
    const CompactEntry &In = Column[Spec.Base.index()];
    if (In.kind() == EntryKind::Absent)
      continue;
    SawAnything = true;

    if (In.kind() == EntryKind::Blue) {
      // Lines [29]-[32]: compose every blue element across the edge.
      for (const BlueElement &Elem : Column.blues(In)) {
        ++S.BlueElementsMoved;
        AddBlue(BlueElement{composeAcross(Elem.LeastVirtual, Spec),
                            Elem.DefiningClass});
      }
      continue;
    }

    // A red value arrives: compose its member set across the edge. The
    // composed access restricts the inherited access by the edge's
    // (Section 6: access is determined along the witness path; private
    // inheritance demotes, protected caps).
    NewVs.clear();
    for (uint32_t I = 0, E = Column.redCount(In); I != E; ++I)
      addUniqueV(NewVs, composeAcross(Column.redV(In, I), Spec));
    ClassId NewL = In.DefiningClass;
    ClassId NewRepV = composeAcross(In.RepresentativeV, Spec);
    AccessSpec NewAccess = restrictAccess(In.access(), Spec.Access);
    bool NewStaticMerged = In.staticMerged();

    auto AdoptNew = [&]() {
      CandPresent = true;
      CandL = NewL;
      CandVs.swap(NewVs);
      CandRepV = NewRepV;
      CandVia = Spec.Base;
      CandAccess = NewAccess;
      CandStaticMerged = NewStaticMerged;
    };

    if (!CandPresent) {
      AdoptNew();
      continue;
    }

    // Lines [18]-[28], set-generalized: keep whichever side covers the
    // other; for same-class statics, union what neither side covers;
    // otherwise mutual non-domination means ambiguity.
    auto Covers = [&](ClassId LA, std::span<const ClassId> VsA,
                      std::span<const ClassId> VsB) {
      for (ClassId V : VsB)
        if (!redCovers(H, LA, VsA, V, Column, S))
          return false;
      return true;
    };

    if (Covers(CandL, CandVs, NewVs)) {
      // Existing candidate dominates the arrival (which includes the
      // virtual-sharing case where both edges deliver the very same
      // subobject).
      continue;
    }
    if (Covers(NewL, NewVs, CandVs)) {
      AdoptNew();
      continue;
    }

    if (CandL == NewL && IsStaticIn(NewL)) {
      // Definition 17(2): one entity seen through several genuinely
      // distinct subobjects. Union the uncovered members: each must
      // keep constraining later competitors.
      for (ClassId V : NewVs)
        if (!redCovers(H, CandL, CandVs, V, Column, S))
          addUniqueV(CandVs, V);
      CandStaticMerged = true;
      continue;
    }

    // Mutual non-domination: both sides become blue.
    for (ClassId V : NewVs)
      AddBlue(BlueElement{V, NewL});
    DemoteCandidateToBlue();
  }

  if (!SawAnything)
    return; // Absent: m is not a member of C.

  DedupeBlues(ToBeDominated);

  if (!CandPresent) {
    // Lines [34]-[35].
    Column.setBlue(Out, ToBeDominated);
    return;
  }

  // Lines [36]-[44]: the candidate must cover every blue element;
  // same-class static elements are absorbed instead (one entity).
  std::vector<BlueElement> &Surviving = Scr.Surviving;
  Surviving.clear();
  Surviving.reserve(ToBeDominated.size() + CandVs.size());
  for (const BlueElement &Elem : ToBeDominated) {
    if (redCovers(H, CandL, CandVs, Elem.LeastVirtual, Column, S))
      continue;
    if (Elem.DefiningClass == CandL && IsStaticIn(CandL)) {
      addUniqueV(CandVs, Elem.LeastVirtual);
      CandStaticMerged = true;
      continue;
    }
    Surviving.push_back(Elem);
  }

  if (Surviving.empty()) {
    std::sort(CandVs.begin(), CandVs.end());
    Column.setRed(Out, CandL, CandVs, CandRepV, CandVia, CandAccess,
                  CandStaticMerged);
  } else {
    for (ClassId V : CandVs)
      Surviving.push_back(BlueElement{V, CandL});
    std::sort(Surviving.begin(), Surviving.end());
    Surviving.erase(std::unique(Surviving.begin(), Surviving.end()),
                    Surviving.end());
    Column.setBlue(Out, Surviving);
  }
}

LookupResult DominanceLookupEngine::entryToResult(const Hierarchy &H,
                                                  const CompactColumn &Column,
                                                  ClassId Context) {
  const CompactEntry &E = Column[Context.index()];
  switch (E.kind()) {
  case EntryKind::Absent:
    return LookupResult::notFound();
  case EntryKind::Blue:
    // The blue abstraction intentionally forgets the candidate
    // subobjects (that is the point of the algorithm); entry() exposes
    // the abstraction itself, and explainAmbiguity() reconstructs the
    // candidates for diagnostics.
    return LookupResult::ambiguous({});
  case EntryKind::Red:
    break;
  }

  // The witness chain crosses entries for base classes, all of which
  // were computed before this entry in every tabulation mode.
  Path Witness = reconstructWitness(Column, Context);
  assert(Witness.ldc() == E.DefiningClass &&
         "witness does not start at the defining class");
  assert(leastVirtual(H, Witness) == E.RepresentativeV &&
         "witness abstraction disagrees with the table");
  SubobjectKey Key = subobjectKey(H, Witness);
  LookupResult R = LookupResult::unambiguous(
      E.DefiningClass, std::move(Key), std::move(Witness), E.staticMerged());
  R.EffectiveAccess = E.access();
  return R;
}

void DominanceLookupEngine::ensureColumnStorage(uint32_t MemberIdx) {
  if (Columns[MemberIdx].empty()) {
    Columns[MemberIdx].reset(H.numClasses());
    EntryComputed[MemberIdx] = BitVector(H.numClasses());
  }
}

void DominanceLookupEngine::computeColumn(uint32_t MemberIdx) {
  ensureColumnStorage(MemberIdx);
  Symbol Member = H.allMemberNames()[MemberIdx];
  CompactColumn &Column = Columns[MemberIdx];
  BitVector &Done = EntryComputed[MemberIdx];

  for (ClassId C : H.topologicalOrder()) {
    if (Done.test(C.index()))
      continue;
    // A deadline abort leaves the computed topological prefix valid and
    // the column's popcount short of full, so a later query (with a
    // fresh deadline) resumes where this one stopped.
    if (deadlineExpired())
      return;
    computeEntry(H, Column, C, Member, EngineStats);
    Done.set(C.index());
  }
}

void DominanceLookupEngine::computeEntryRecursive(uint32_t MemberIdx,
                                                  ClassId Context) {
  // The paper's memoizing lazy variant (Section 5): "a request for
  // lookup[C,m] will recursively invoke lookup[B,m] for every direct
  // base class B of C if necessary". Implemented with an explicit stack
  // so pathological chains cannot overflow the call stack.
  ensureColumnStorage(MemberIdx);
  Symbol Member = H.allMemberNames()[MemberIdx];
  CompactColumn &Column = Columns[MemberIdx];
  BitVector &Done = EntryComputed[MemberIdx];

  std::vector<ClassId> Stack{Context};
  while (!Stack.empty()) {
    if (deadlineExpired())
      return;
    ClassId Cur = Stack.back();
    if (Done.test(Cur.index())) {
      Stack.pop_back();
      continue;
    }
    bool Ready = true;
    for (const BaseSpecifier &Spec : H.info(Cur).DirectBases)
      if (!Done.test(Spec.Base.index())) {
        Stack.push_back(Spec.Base);
        Ready = false;
      }
    if (!Ready)
      continue;
    computeEntry(H, Column, Cur, Member, EngineStats);
    Done.set(Cur.index());
    Stack.pop_back();
  }
}

DominanceLookupEngine::Entry DominanceLookupEngine::entry(ClassId Context,
                                                          Symbol Member) {
  assert(Context.isValid() && Context.index() < H.numClasses() &&
         "bad class id");
  Entry Out;
  auto It = MemberIndex.find(Member);
  if (It == MemberIndex.end())
    return Out; // name never declared anywhere

  uint32_t MemberIdx = It->second;
  switch (TabulationMode) {
  case Mode::Eager:
    break; // everything was computed at construction
  case Mode::Lazy:
    if (!columnFullyComputed(MemberIdx))
      computeColumn(MemberIdx);
    break;
  case Mode::LazyRecursive:
    ensureColumnStorage(MemberIdx);
    if (!EntryComputed[MemberIdx].test(Context.index()))
      computeEntryRecursive(MemberIdx, Context);
    break;
  }

  const CompactColumn &Col = Columns[MemberIdx];
  const CompactEntry &E = Col[Context.index()];
  Out.EntryKind = E.kind();
  switch (E.kind()) {
  case EntryKind::Absent:
    break;
  case EntryKind::Red:
    Out.DefiningClass = E.DefiningClass;
    Out.RedVs.reserve(Col.redCount(E));
    for (uint32_t I = 0, N = Col.redCount(E); I != N; ++I)
      Out.RedVs.push_back(Col.redV(E, I));
    Out.RepresentativeV = E.RepresentativeV;
    Out.Via = E.Via;
    Out.StaticMerged = E.staticMerged();
    Out.Access = E.access();
    break;
  case EntryKind::Blue: {
    std::span<const BlueElement> Blues = Col.blues(E);
    Out.Blues.assign(Blues.begin(), Blues.end());
    break;
  }
  }
  return Out;
}

const CompactColumn *DominanceLookupEngine::column(Symbol Member) {
  auto It = MemberIndex.find(Member);
  if (It == MemberIndex.end())
    return nullptr;
  if (!columnFullyComputed(It->second))
    computeColumn(It->second);
  return &Columns[It->second];
}

uint64_t DominanceLookupEngine::tableHeapBytes() const {
  uint64_t Bytes = 0;
  for (const CompactColumn &Column : Columns)
    Bytes += Column.heapBytes();
  for (const BitVector &Done : EntryComputed)
    Bytes += Done.heapBytes();
  return Bytes;
}

DominanceLookupEngine::MemoryStats DominanceLookupEngine::memoryStats() const {
  MemoryStats M;
  M.HeapBytes = tableHeapBytes();
  for (const CompactColumn &Column : Columns) {
    if (Column.empty())
      continue;
    ++M.ColumnsAllocated;
    M.Pools += Column.poolStats();
  }
  return M;
}

LookupResult DominanceLookupEngine::lookup(ClassId Context, Symbol Member) {
  // Force the mode's tabulation for this entry, exactly as entry() does
  // (minus the expansion).
  auto It = MemberIndex.find(Member);
  if (It == MemberIndex.end())
    return LookupResult::notFound();
  uint32_t MemberIdx = It->second;
  switch (TabulationMode) {
  case Mode::Eager:
    break;
  case Mode::Lazy:
    if (!columnFullyComputed(MemberIdx))
      computeColumn(MemberIdx);
    break;
  case Mode::LazyRecursive:
    ensureColumnStorage(MemberIdx);
    if (!EntryComputed[MemberIdx].test(Context.index()))
      computeEntryRecursive(MemberIdx, Context);
    break;
  }
  if (DeadlineTripped) {
    // The tabulation may have stopped before reaching this entry; an
    // uncomputed slot reads as Absent, which would be a *wrong* answer.
    // Degrade it to Exhausted like a tripped step budget instead.
    if (Columns[MemberIdx].empty() ||
        !EntryComputed[MemberIdx].test(Context.index()))
      return LookupResult::exhausted();
  }
  return entryToResult(H, Columns[MemberIdx], Context);
}
