//===- DominanceLookupEngine.cpp - Figure 8 --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"

#include <algorithm>

using namespace memlook;

DominanceLookupEngine::DominanceLookupEngine(const Hierarchy &H, Mode Mode)
    : LookupEngine(H), TabulationMode(Mode) {
  const std::vector<Symbol> &Names = H.allMemberNames();
  MemberIndex.reserve(Names.size());
  for (uint32_t I = 0, E = static_cast<uint32_t>(Names.size()); I != E; ++I)
    MemberIndex.emplace(Names[I], I);

  Columns.resize(Names.size());
  EntryComputed.resize(Names.size());

  if (TabulationMode == Mode::Eager)
    for (uint32_t I = 0, E = static_cast<uint32_t>(Names.size()); I != E; ++I)
      computeColumn(I);
}

std::string_view DominanceLookupEngine::engineName() const {
  switch (TabulationMode) {
  case Mode::Eager:
    return "figure8-eager";
  case Mode::Lazy:
    return "figure8-lazy";
  case Mode::LazyRecursive:
    return "figure8-lazy-recursive";
  }
  return "figure8";
}

namespace {

/// Lemma 4 on the set abstraction: does the red value (L, Vs) cover the
/// definition abstracted as V2 (arriving along a different edge)?
bool redCovers(const Hierarchy &H, ClassId L, const std::vector<ClassId> &Vs,
               ClassId V2, const std::vector<DominanceLookupEngine::Entry> &Column,
               DominanceLookupEngine::Stats &S) {
  using Entry = DominanceLookupEngine::Entry;
  ++S.DominanceTests;
  if (!V2.isValid())
    return false;
  // Lemma 4 clause (i): V2 is a virtual base of the defining class.
  // Sound for any member of the set: only the shared ldc matters.
  if (H.isVirtualBaseOf(V2, L))
    return true;
  // Lemma 4 clause (ii): some maximal member crossed the same first
  // virtual node. Soundness requires that member's fixed part to
  // dominate every definition reaching V2 - equivalently, that the
  // entry *at* V2 is red with the same defining class. Members that
  // were propagated red-all-the-way satisfy this by construction (a red
  // lineage passes through V2 while red); members absorbed from blue
  // elements by the static rule need the explicit check, since their
  // fixed part may be just one of several incomparable definitions
  // at V2.
  if (std::find(Vs.begin(), Vs.end(), V2) == Vs.end())
    return false;
  const Entry &AtV2 = Column[V2.index()];
  return AtV2.EntryKind == Entry::Kind::Red && AtV2.DefiningClass == L;
}

/// Working state for one class's red candidate: the generalized red
/// value (L, member V-set) plus representative provenance and the
/// representative's composed access (the Section 6 access extension).
struct CandidateState {
  bool Present = false;
  ClassId L;
  std::vector<ClassId> Vs; // unsorted during accumulation; deduped
  ClassId RepresentativeV;
  ClassId Via;
  AccessSpec Access = AccessSpec::Public;
  bool StaticMerged = false;

  void addV(ClassId V) {
    if (std::find(Vs.begin(), Vs.end(), V) == Vs.end())
      Vs.push_back(V);
  }
};

/// Reconstructs the witness path of a red entry by walking Via links.
/// The witness runs ldc-first, so collect backwards and reverse.
Path reconstructWitness(const std::vector<DominanceLookupEngine::Entry> &Column,
                        ClassId Context) {
  using Entry = DominanceLookupEngine::Entry;
  std::vector<ClassId> Reversed;
  ClassId Cur = Context;
  while (true) {
    Reversed.push_back(Cur);
    const Entry &E = Column[Cur.index()];
    assert(E.EntryKind == Entry::Kind::Red && "witness of non-red entry");
    if (!E.Via.isValid())
      break;
    Cur = E.Via;
  }
  std::reverse(Reversed.begin(), Reversed.end());
  return Path(std::move(Reversed));
}

} // namespace

void DominanceLookupEngine::computeEntry(const Hierarchy &H,
                                         std::vector<Entry> &Column, ClassId C,
                                         Symbol Member, Stats &S) {
  ++S.EntriesComputed;
  Entry &Out = Column[C.index()];

  auto IsStaticIn = [&](ClassId L) {
    const MemberDecl *Decl = H.declaredMember(L, Member);
    return Decl && Decl->IsStatic;
  };

  // Line [12]: a local declaration trivially dominates everything that
  // reaches C (it hides every inherited definition).
  if (const MemberDecl *Decl = H.declaredMember(C, Member)) {
    Out.EntryKind = Entry::Kind::Red;
    Out.DefiningClass = C;
    Out.RedVs = {ClassId()};
    Out.RepresentativeV = ClassId();
    Out.Via = ClassId();
    Out.Access = Decl->Access;
    return;
  }

  // Lines [14]-[33]: fold the values arriving along each incoming edge,
  // maintaining at most one red candidate (now a member *set*, see the
  // header) and the blue abstractions it must dominate.
  bool SawAnything = false;
  CandidateState Cand;
  std::vector<BlueElement> ToBeDominated;

  // Pre-size the accumulators from the incoming entries so the eager
  // path never regrows them mid-fold: every element they can receive
  // originates in a base entry's blue set or red member set.
  {
    size_t IncomingBlues = 0, IncomingReds = 0;
    for (const BaseSpecifier &Spec : H.info(C).DirectBases) {
      const Entry &In = Column[Spec.Base.index()];
      IncomingBlues += In.Blues.size();
      IncomingReds += In.RedVs.size();
    }
    ToBeDominated.reserve(IncomingBlues + IncomingReds);
    Cand.Vs.reserve(IncomingReds);
  }

  // Duplicates are tolerated during accumulation and removed in one
  // sort+unique pass below: a per-insert membership scan would make the
  // ambiguity-heavy regime cubic instead of the paper's quadratic.
  auto AddBlue = [&](BlueElement Elem) { ToBeDominated.push_back(Elem); };

  auto DedupeBlues = [](std::vector<BlueElement> &Blues) {
    std::sort(Blues.begin(), Blues.end());
    Blues.erase(std::unique(Blues.begin(), Blues.end()), Blues.end());
  };

  auto DemoteCandidateToBlue = [&]() {
    for (ClassId V : Cand.Vs)
      AddBlue(BlueElement{V, Cand.L});
    Cand = CandidateState{};
  };

  for (const BaseSpecifier &Spec : H.info(C).DirectBases) {
    const Entry &In = Column[Spec.Base.index()];
    if (In.EntryKind == Entry::Kind::Absent)
      continue;
    SawAnything = true;

    if (In.EntryKind == Entry::Kind::Blue) {
      // Lines [29]-[32]: compose every blue element across the edge.
      for (const BlueElement &Elem : In.Blues) {
        ++S.BlueElementsMoved;
        AddBlue(BlueElement{composeAcross(Elem.LeastVirtual, Spec),
                            Elem.DefiningClass});
      }
      continue;
    }

    // A red value arrives: compose its member set across the edge. The
    // composed access restricts the inherited access by the edge's
    // (Section 6: access is determined along the witness path; private
    // inheritance demotes, protected caps).
    std::vector<ClassId> NewVs;
    NewVs.reserve(In.RedVs.size());
    for (ClassId V : In.RedVs) {
      ClassId Composed = composeAcross(V, Spec);
      if (std::find(NewVs.begin(), NewVs.end(), Composed) == NewVs.end())
        NewVs.push_back(Composed);
    }
    ClassId NewL = In.DefiningClass;
    ClassId NewRepV = composeAcross(In.RepresentativeV, Spec);
    AccessSpec NewAccess = restrictAccess(In.Access, Spec.Access);
    bool NewStaticMerged = In.StaticMerged;

    auto AdoptNew = [&]() {
      Cand.Present = true;
      Cand.L = NewL;
      Cand.Vs = std::move(NewVs);
      Cand.RepresentativeV = NewRepV;
      Cand.Via = Spec.Base;
      Cand.Access = NewAccess;
      Cand.StaticMerged = NewStaticMerged;
    };

    if (!Cand.Present) {
      AdoptNew();
      continue;
    }

    // Lines [18]-[28], set-generalized: keep whichever side covers the
    // other; for same-class statics, union what neither side covers;
    // otherwise mutual non-domination means ambiguity.
    auto Covers = [&](ClassId LA, const std::vector<ClassId> &VsA,
                      const std::vector<ClassId> &VsB) {
      for (ClassId V : VsB)
        if (!redCovers(H, LA, VsA, V, Column, S))
          return false;
      return true;
    };

    if (Covers(Cand.L, Cand.Vs, NewVs)) {
      // Existing candidate dominates the arrival (which includes the
      // virtual-sharing case where both edges deliver the very same
      // subobject).
      continue;
    }
    if (Covers(NewL, NewVs, Cand.Vs)) {
      AdoptNew();
      continue;
    }

    if (Cand.L == NewL && IsStaticIn(NewL)) {
      // Definition 17(2): one entity seen through several genuinely
      // distinct subobjects. Union the uncovered members: each must
      // keep constraining later competitors.
      for (ClassId V : NewVs)
        if (!redCovers(H, Cand.L, Cand.Vs, V, Column, S))
          Cand.addV(V);
      Cand.StaticMerged = true;
      continue;
    }

    // Mutual non-domination: both sides become blue.
    for (ClassId V : NewVs)
      AddBlue(BlueElement{V, NewL});
    DemoteCandidateToBlue();
  }

  if (!SawAnything)
    return; // Absent: m is not a member of C.

  DedupeBlues(ToBeDominated);

  if (!Cand.Present) {
    // Lines [34]-[35].
    Out.EntryKind = Entry::Kind::Blue;
    Out.Blues = std::move(ToBeDominated);
    return;
  }

  // Lines [36]-[44]: the candidate must cover every blue element;
  // same-class static elements are absorbed instead (one entity).
  std::vector<BlueElement> Surviving;
  Surviving.reserve(ToBeDominated.size() + Cand.Vs.size());
  for (const BlueElement &Elem : ToBeDominated) {
    if (redCovers(H, Cand.L, Cand.Vs, Elem.LeastVirtual, Column, S))
      continue;
    if (Elem.DefiningClass == Cand.L && IsStaticIn(Cand.L)) {
      Cand.addV(Elem.LeastVirtual);
      Cand.StaticMerged = true;
      continue;
    }
    Surviving.push_back(Elem);
  }

  if (Surviving.empty()) {
    Out.EntryKind = Entry::Kind::Red;
    Out.DefiningClass = Cand.L;
    std::sort(Cand.Vs.begin(), Cand.Vs.end());
    Out.RedVs = std::move(Cand.Vs);
    Out.RepresentativeV = Cand.RepresentativeV;
    Out.Via = Cand.Via;
    Out.Access = Cand.Access;
    Out.StaticMerged = Cand.StaticMerged;
  } else {
    for (ClassId V : Cand.Vs)
      Surviving.push_back(BlueElement{V, Cand.L});
    std::sort(Surviving.begin(), Surviving.end());
    Surviving.erase(std::unique(Surviving.begin(), Surviving.end()),
                    Surviving.end());
    Out.EntryKind = Entry::Kind::Blue;
    Out.Blues = std::move(Surviving);
  }
}

LookupResult
DominanceLookupEngine::entryToResult(const Hierarchy &H,
                                     const std::vector<Entry> &Column,
                                     ClassId Context) {
  const Entry &E = Column[Context.index()];
  switch (E.EntryKind) {
  case Entry::Kind::Absent:
    return LookupResult::notFound();
  case Entry::Kind::Blue:
    // The blue abstraction intentionally forgets the candidate
    // subobjects (that is the point of the algorithm); entry() exposes
    // the abstraction itself, and explainAmbiguity() reconstructs the
    // candidates for diagnostics.
    return LookupResult::ambiguous({});
  case Entry::Kind::Red:
    break;
  }

  // The witness chain crosses entries for base classes, all of which
  // were computed before this entry in every tabulation mode.
  Path Witness = reconstructWitness(Column, Context);
  assert(Witness.ldc() == E.DefiningClass &&
         "witness does not start at the defining class");
  assert(leastVirtual(H, Witness) == E.RepresentativeV &&
         "witness abstraction disagrees with the table");
  SubobjectKey Key = subobjectKey(H, Witness);
  LookupResult R = LookupResult::unambiguous(
      E.DefiningClass, std::move(Key), std::move(Witness), E.StaticMerged);
  R.EffectiveAccess = E.Access;
  return R;
}

void DominanceLookupEngine::ensureColumnStorage(uint32_t MemberIdx) {
  if (Columns[MemberIdx].empty()) {
    Columns[MemberIdx].assign(H.numClasses(), Entry{});
    EntryComputed[MemberIdx] = BitVector(H.numClasses());
  }
}

void DominanceLookupEngine::computeColumn(uint32_t MemberIdx) {
  ensureColumnStorage(MemberIdx);
  Symbol Member = H.allMemberNames()[MemberIdx];
  std::vector<Entry> &Column = Columns[MemberIdx];
  BitVector &Done = EntryComputed[MemberIdx];

  for (ClassId C : H.topologicalOrder()) {
    if (Done.test(C.index()))
      continue;
    // A deadline abort leaves the computed topological prefix valid and
    // the column's popcount short of full, so a later query (with a
    // fresh deadline) resumes where this one stopped.
    if (deadlineExpired())
      return;
    computeEntry(H, Column, C, Member, EngineStats);
    Done.set(C.index());
  }
}

void DominanceLookupEngine::computeEntryRecursive(uint32_t MemberIdx,
                                                  ClassId Context) {
  // The paper's memoizing lazy variant (Section 5): "a request for
  // lookup[C,m] will recursively invoke lookup[B,m] for every direct
  // base class B of C if necessary". Implemented with an explicit stack
  // so pathological chains cannot overflow the call stack.
  ensureColumnStorage(MemberIdx);
  Symbol Member = H.allMemberNames()[MemberIdx];
  std::vector<Entry> &Column = Columns[MemberIdx];
  BitVector &Done = EntryComputed[MemberIdx];

  std::vector<ClassId> Stack{Context};
  while (!Stack.empty()) {
    if (deadlineExpired())
      return;
    ClassId Cur = Stack.back();
    if (Done.test(Cur.index())) {
      Stack.pop_back();
      continue;
    }
    bool Ready = true;
    for (const BaseSpecifier &Spec : H.info(Cur).DirectBases)
      if (!Done.test(Spec.Base.index())) {
        Stack.push_back(Spec.Base);
        Ready = false;
      }
    if (!Ready)
      continue;
    computeEntry(H, Column, Cur, Member, EngineStats);
    Done.set(Cur.index());
    Stack.pop_back();
  }
}

const DominanceLookupEngine::Entry &
DominanceLookupEngine::entry(ClassId Context, Symbol Member) {
  assert(Context.isValid() && Context.index() < H.numClasses() &&
         "bad class id");
  auto It = MemberIndex.find(Member);
  if (It == MemberIndex.end())
    return AbsentEntry; // name never declared anywhere

  uint32_t MemberIdx = It->second;
  switch (TabulationMode) {
  case Mode::Eager:
    break; // everything was computed at construction
  case Mode::Lazy:
    if (!columnFullyComputed(MemberIdx))
      computeColumn(MemberIdx);
    break;
  case Mode::LazyRecursive:
    ensureColumnStorage(MemberIdx);
    if (!EntryComputed[MemberIdx].test(Context.index()))
      computeEntryRecursive(MemberIdx, Context);
    break;
  }
  return Columns[MemberIdx][Context.index()];
}

uint64_t DominanceLookupEngine::approximateTableBytes() const {
  uint64_t Bytes = 0;
  for (const std::vector<Entry> &Column : Columns) {
    Bytes += Column.capacity() * sizeof(Entry);
    for (const Entry &E : Column) {
      Bytes += E.RedVs.capacity() * sizeof(ClassId);
      Bytes += E.Blues.capacity() * sizeof(BlueElement);
    }
  }
  return Bytes;
}

LookupResult DominanceLookupEngine::lookup(ClassId Context, Symbol Member) {
  const Entry &E = entry(Context, Member);
  if (DeadlineTripped) {
    // The tabulation may have stopped before reaching this entry; an
    // uncomputed slot reads as Absent, which would be a *wrong* answer.
    // Degrade it to Exhausted like a tripped step budget instead.
    auto It = MemberIndex.find(Member);
    if (It != MemberIndex.end() &&
        (Columns[It->second].empty() ||
         !EntryComputed[It->second].test(Context.index())))
      return LookupResult::exhausted();
  }
  if (E.EntryKind == Entry::Kind::Absent)
    return LookupResult::notFound();
  return entryToResult(H, Columns[MemberIndex.at(Member)], Context);
}
