//===- DifferentialCheck.cpp - Self-check ------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/DifferentialCheck.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"

using namespace memlook;

std::string memlook::renderLookupForComparison(const Hierarchy &H,
                                               const LookupResult &R) {
  std::string Out = lookupStatusLabel(R.Status);
  if (R.Status != LookupStatus::Unambiguous)
    return Out;
  Out += ':';
  Out += H.className(R.DefiningClass);
  if (!R.SharedStatic && R.Subobject) {
    Out += ':';
    Out += formatSubobjectKey(H, *R.Subobject);
  }
  return Out;
}

DifferentialReport memlook::runDifferentialCheck(const Hierarchy &H,
                                                 size_t MaxSubobjects) {
  ResourceBudget Budget;
  Budget.MaxSubobjects = MaxSubobjects;
  Budget.MaxDefsPerClass = MaxSubobjects;
  return runDifferentialCheck(H, Budget);
}

DifferentialReport memlook::runDifferentialCheck(const Hierarchy &H,
                                                 const ResourceBudget &Budget) {
  assert(H.isFinalized() && "differential check requires finalize()");
  DifferentialReport Report;

  DominanceLookupEngine Eager(H, DominanceLookupEngine::Mode::Eager);
  DominanceLookupEngine Recursive(H,
                                  DominanceLookupEngine::Mode::LazyRecursive);
  NaivePropagationEngine Killing(H, NaivePropagationEngine::Killing::Enabled,
                                 Budget);
  SubobjectLookupEngine Reference(H, Budget);

  std::vector<LookupEngine *> Others{&Recursive, &Killing, &Reference};

  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId C(Idx);
    for (Symbol Member : H.allMemberNames()) {
      LookupResult Baseline = Eager.lookup(C, Member);
      std::string BaselineKey = renderLookupForComparison(H, Baseline);
      bool Skipped = false;
      for (LookupEngine *Other : Others) {
        LookupResult R = Other->lookup(C, Member);
        if (isBudgetDegraded(R.Status)) {
          Skipped = true;
          continue;
        }
        std::string Key = renderLookupForComparison(H, R);
        if (Key != BaselineKey)
          Report.Mismatches.push_back(
              std::string(H.className(C)) + "::" +
              std::string(H.spelling(Member)) + ": figure8-eager says '" +
              BaselineKey + "' but " + std::string(Other->engineName()) +
              " says '" + Key + "'");
      }
      if (Skipped)
        ++Report.PairsSkipped;
      else
        ++Report.PairsChecked;
    }
  }
  return Report;
}
