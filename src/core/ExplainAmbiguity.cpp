//===- ExplainAmbiguity.cpp - Diagnostics -----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/ExplainAmbiguity.h"

#include "memlook/core/NaivePropagationEngine.h"

using namespace memlook;

std::vector<DefinitionRecord>
memlook::explainAmbiguity(const Hierarchy &H, ClassId Context, Symbol Member,
                          size_t MaxDefsPerClass) {
  // The killing engine's surviving set at Context *is* the maximal set.
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Enabled,
                                MaxDefsPerClass);
  if (Engine.overflowed(Member))
    return {};
  return Engine.reachingDefinitions(Context, Member);
}

std::string memlook::formatAmbiguityCandidates(
    const Hierarchy &H, Symbol Member,
    const std::vector<DefinitionRecord> &Defs) {
  std::string Out = "candidates:";
  if (Defs.empty())
    return Out + " <unavailable>";
  bool First = true;
  for (const DefinitionRecord &Def : Defs) {
    Out += First ? " " : ", ";
    First = false;
    Out += H.className(Def.Key.ldc());
    Out += "::";
    Out += H.spelling(Member);
    Out += " (in ";
    Out += formatSubobjectKey(H, Def.Key);
    Out += ')';
  }
  return Out;
}
