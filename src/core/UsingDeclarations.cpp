//===- UsingDeclarations.cpp - using B::m ------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/UsingDeclarations.h"

using namespace memlook;

std::vector<UsingIssue>
memlook::validateUsingDeclarations(const Hierarchy &H, LookupEngine &Engine) {
  std::vector<UsingIssue> Issues;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId Class(Idx);
    for (const MemberDecl &Member : H.info(Class).Members) {
      if (!Member.isUsingDeclaration())
        continue;
      LookupResult R = resolveUsingTarget(H, Engine, Member);
      if (R.Status == LookupStatus::Unambiguous)
        continue;

      UsingIssue Issue;
      Issue.Class = Class;
      Issue.Member = Member.Name;
      Issue.NamedBase = Member.UsingFrom;
      Issue.Status = R.Status;
      Issue.Message =
          "in class '" + std::string(H.className(Class)) + "': 'using " +
          std::string(H.className(Member.UsingFrom)) +
          "::" + std::string(H.spelling(Member.Name)) + "' " +
          (R.Status == LookupStatus::NotFound
               ? "names no member of the base"
               : "names an ambiguous member of the base");
      Issues.push_back(std::move(Issue));
    }
  }
  return Issues;
}

ClassId memlook::ultimateUsingTarget(const Hierarchy &H,
                                     LookupEngine &Engine,
                                     ClassId DeclaringClass, Symbol Member) {
  ClassId Cur = DeclaringClass;
  // The chain is strictly topologically decreasing (a using-declaration
  // names a proper base), so |N| hops bound the loop.
  for (uint32_t Guard = 0; Guard <= H.numClasses(); ++Guard) {
    const MemberDecl *Decl = H.declaredMember(Cur, Member);
    if (!Decl)
      return ClassId();
    if (!Decl->isUsingDeclaration())
      return Cur;
    LookupResult Next = Engine.lookup(Decl->UsingFrom, Member);
    if (Next.Status != LookupStatus::Unambiguous)
      return ClassId();
    Cur = Next.DefiningClass;
  }
  return ClassId(); // unreachable on well-formed hierarchies
}

LookupResult memlook::resolveUsingTarget(const Hierarchy &H,
                                         LookupEngine &Engine,
                                         const MemberDecl &Decl) {
  assert(Decl.isUsingDeclaration() && "not a using-declaration");
  (void)H;
  // Lookup in the context of the named base; crucially, a
  // using-declaration found *there* resolves recursively through this
  // same path if the base forwarded the name itself. The engine handles
  // that for free because the forwarding declaration is just a
  // declaration.
  return Engine.lookup(Decl.UsingFrom, Decl.Name);
}
