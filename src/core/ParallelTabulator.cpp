//===- ParallelTabulator.cpp - Parallel Figure 8 ---------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/ParallelTabulator.h"

#include "memlook/support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace memlook;

uint32_t ParallelTabulator::resolveThreads(uint32_t Requested) {
  return Requested != 0 ? Requested : defaultTabulationThreads();
}

LookupResult ParallelTabulator::Column::resultFor(const Hierarchy &H,
                                                  ClassId Context) const {
  for (const auto &[Row, Answer] : Overrides)
    if (Row == Context.index())
      return Answer;
  if (Context.index() >= Data.size() || !Computed.test(Context.index()))
    return LookupResult::notFound();
  return DominanceLookupEngine::entryToResult(H, Data, Context);
}

uint64_t ParallelTabulator::Column::heapBytes() const {
  uint64_t Bytes = Data.heapBytes() + Computed.heapBytes();
  Bytes += Overrides.capacity() * sizeof(Overrides[0]);
  return Bytes;
}

namespace {

/// Computes one member column start to finish in compact form. Runs on
/// a worker thread; touches only \p Out, \p S and the shared expiry
/// flag - the hierarchy is immutable input.
void tabulateColumn(const Hierarchy &H, Symbol Member, const Deadline &D,
                    std::atomic<bool> &ExpiredFlag,
                    ParallelTabulator::Column &Out,
                    ParallelTabulator::Stats &S) {
  using Engine = DominanceLookupEngine;

  uint32_t NumClasses = H.numClasses();
  Out.Computed = BitVector(NumClasses);
  Out.Data.reset(NumClasses);

  if (ExpiredFlag.load(std::memory_order_relaxed))
    return; // pre-expired: publish an empty (all-uncomputed) column

  bool CheckDeadline = !D.unlimited();
  uint32_t SinceCheck = 0;

  for (ClassId C : H.topologicalOrder()) {
    if (CheckDeadline && ++SinceCheck % Engine::DeadlineStride == 0) {
      // One worker's expiry stops the others within a stride: the flag
      // is sticky and checked before the (possibly syscall-priced)
      // clock read.
      if (ExpiredFlag.load(std::memory_order_relaxed) || D.expired()) {
        ExpiredFlag.store(true, std::memory_order_relaxed);
        return; // the computed topological prefix stays valid
      }
    }
    Engine::computeEntry(H, Out.Data, C, Member, S);
    Out.Computed.set(C.index());
  }
  Out.Complete = true;
  // Finished columns are long-lived (shared across epochs); drop the
  // pools' growth slack so heapBytes() is the real footprint, and hash
  // once so structural dedup never re-reads a shared column's bytes.
  Out.Data.shrinkPools();
  Out.StructuralHash = Out.Data.structuralHash();
}

} // namespace

ParallelTabulator::Result
ParallelTabulator::tabulate(const Hierarchy &H,
                            const std::vector<uint32_t> &MemberIdxs,
                            const Deadline &D, uint32_t Threads) {
  const std::vector<Symbol> &Names = H.allMemberNames();

  std::vector<uint32_t> Work(MemberIdxs);
  std::sort(Work.begin(), Work.end());
  Work.erase(std::unique(Work.begin(), Work.end()), Work.end());

  Result R;
  R.Columns.resize(Names.size());
  R.ThreadsUsed = std::min<uint32_t>(resolveThreads(Threads),
                                     std::max<size_t>(Work.size(), 1));

  // Per-task output slots: each worker writes only its claimed column
  // and stats slot, and parallelFor's join publishes everything to this
  // thread before the merge below runs.
  std::vector<Column> Built(Work.size());
  std::vector<Stats> PerColumn(Work.size());
  std::atomic<bool> ExpiredFlag{D.expired()};

  parallelFor(R.ThreadsUsed, static_cast<uint32_t>(Work.size()),
              [&](uint32_t I) {
                assert(Work[I] < Names.size() && "member index out of range");
                tabulateColumn(H, Names[Work[I]], D, ExpiredFlag, Built[I],
                               PerColumn[I]);
              });

  for (size_t I = 0; I != Work.size(); ++I) {
    R.TabulationStats += PerColumn[I];
    R.Complete &= Built[I].Complete;
    R.Columns[Work[I]] = std::make_shared<const Column>(std::move(Built[I]));
  }
  return R;
}

ParallelTabulator::Result ParallelTabulator::tabulateAll(const Hierarchy &H,
                                                         const Deadline &D,
                                                         uint32_t Threads) {
  std::vector<uint32_t> All(H.allMemberNames().size());
  for (uint32_t I = 0, E = static_cast<uint32_t>(All.size()); I != E; ++I)
    All[I] = I;
  return tabulate(H, All, D, Threads);
}
