//===- TopsortShortcutEngine.cpp - Section 7.2 -----------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/TopsortShortcutEngine.h"

using namespace memlook;

TopsortShortcutEngine::TopsortShortcutEngine(const Hierarchy &H)
    : LookupEngine(H) {
  TopoNumber.assign(H.numClasses(), 0);
  const std::vector<ClassId> &Order = H.topologicalOrder();
  for (uint32_t Pos = 0, E = static_cast<uint32_t>(Order.size()); Pos != E;
       ++Pos)
    TopoNumber[Order[Pos].index()] = Pos;
}

LookupResult TopsortShortcutEngine::lookup(ClassId Context, Symbol Member) {
  // Select the declaring class with the maximum topological number among
  // Context and its bases. (Any declaring class reaches Context by some
  // path; when the program has no ambiguous lookups all those paths name
  // the same subobject, so one greedy witness path below suffices.)
  ClassId BestClass;
  uint32_t BestNumber = 0;
  auto Consider = [&](ClassId Candidate) {
    if (!H.declaresMember(Candidate, Member))
      return;
    if (!BestClass.isValid() || TopoNumber[Candidate.index()] > BestNumber) {
      BestClass = Candidate;
      BestNumber = TopoNumber[Candidate.index()];
    }
  };

  Consider(Context);
  H.basesOf(Context).forEachSetBit(
      [&](size_t Idx) { Consider(ClassId(static_cast<uint32_t>(Idx))); });

  if (!BestClass.isValid())
    return LookupResult::notFound();

  // Greedy witness: walk derived-wards from the defining class toward
  // Context, always stepping into a class that still reaches Context.
  Path Witness(BestClass);
  ClassId Cur = BestClass;
  while (Cur != Context) {
    ClassId Next;
    for (ClassId Derived : H.info(Cur).DirectDerived)
      if (Derived == Context || H.isBaseOf(Derived, Context)) {
        Next = Derived;
        break;
      }
    assert(Next.isValid() && "declaring class does not reach context");
    Witness.Nodes.push_back(Next);
    Cur = Next;
  }

  // Compute the key before the move: argument evaluation order is
  // unspecified, so passing subobjectKey(H, Witness) and
  // std::move(Witness) in one call would be a use-after-move hazard.
  SubobjectKey Key = subobjectKey(H, Witness);
  return LookupResult::unambiguous(BestClass, std::move(Key),
                                   std::move(Witness));
}
