//===- EngineFactory.cpp - Status-checked engines --------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/EngineFactory.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/GxxBfsEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"
#include "memlook/core/TopsortShortcutEngine.h"

using namespace memlook;

const char *memlook::engineKindName(EngineKind Kind) {
  switch (Kind) {
  case EngineKind::Figure8Eager:
    return "figure8-eager";
  case EngineKind::Figure8Lazy:
    return "figure8-lazy";
  case EngineKind::Figure8LazyRecursive:
    return "figure8-lazy-recursive";
  case EngineKind::PropagationNaive:
    return "propagation-naive";
  case EngineKind::PropagationKilling:
    return "propagation-killing";
  case EngineKind::RossieFriedman:
    return "rossie-friedman";
  case EngineKind::GxxBfs:
    return "gxx-bfs";
  case EngineKind::TopsortShortcut:
    return "topsort-shortcut";
  }
  return "unknown";
}

Status memlook::validateForLookup(const Hierarchy &H) {
  if (!H.isFinalized())
    return Status::error(ErrorCode::NotFinalized,
                         "lookup requires a finalized hierarchy; call "
                         "finalize() (and fix its diagnostics) first");
  return Status::ok();
}

Expected<std::unique_ptr<LookupEngine>>
memlook::createLookupEngine(EngineKind Kind, const Hierarchy &H,
                            const ResourceBudget &Budget) {
  if (Status S = validateForLookup(H); !S)
    return S;

  std::unique_ptr<LookupEngine> Engine;
  switch (Kind) {
  case EngineKind::Figure8Eager:
    Engine = std::make_unique<DominanceLookupEngine>(
        H, DominanceLookupEngine::Mode::Eager);
    break;
  case EngineKind::Figure8Lazy:
    Engine = std::make_unique<DominanceLookupEngine>(
        H, DominanceLookupEngine::Mode::Lazy);
    break;
  case EngineKind::Figure8LazyRecursive:
    Engine = std::make_unique<DominanceLookupEngine>(
        H, DominanceLookupEngine::Mode::LazyRecursive);
    break;
  case EngineKind::PropagationNaive:
    Engine = std::make_unique<NaivePropagationEngine>(
        H, NaivePropagationEngine::Killing::Disabled, Budget);
    break;
  case EngineKind::PropagationKilling:
    Engine = std::make_unique<NaivePropagationEngine>(
        H, NaivePropagationEngine::Killing::Enabled, Budget);
    break;
  case EngineKind::RossieFriedman:
    Engine = std::make_unique<SubobjectLookupEngine>(H, Budget);
    break;
  case EngineKind::GxxBfs:
    Engine = std::make_unique<GxxBfsEngine>(H, Budget.MaxSubobjects);
    break;
  case EngineKind::TopsortShortcut:
    Engine = std::make_unique<TopsortShortcutEngine>(H);
    break;
  }
  if (!Engine)
    return Status::error(ErrorCode::InvalidArgument, "unknown engine kind");
  return Engine;
}
