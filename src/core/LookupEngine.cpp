//===- LookupEngine.cpp - Engine interface ---------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/LookupEngine.h"

using namespace memlook;

LookupEngine::~LookupEngine() = default;

LookupResult LookupEngine::lookup(ClassId Context, std::string_view Member) {
  Symbol Sym = H.findName(Member);
  if (!Sym.isValid())
    return LookupResult::notFound();
  return lookup(Context, Sym);
}
