//===- NaivePropagationEngine.cpp - Section 4 ------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/NaivePropagationEngine.h"

#include "memlook/core/MostDominant.h"

#include <algorithm>
#include <unordered_set>

using namespace memlook;

NaivePropagationEngine::NaivePropagationEngine(const Hierarchy &H,
                                               Killing KillPolicy,
                                               size_t MaxDefsPerClass)
    : LookupEngine(H), KillPolicy(KillPolicy) {
  Budget.MaxDefsPerClass = MaxDefsPerClass;
}

NaivePropagationEngine::NaivePropagationEngine(const Hierarchy &H,
                                               Killing KillPolicy,
                                               const ResourceBudget &Budget)
    : LookupEngine(H), KillPolicy(KillPolicy), Budget(Budget) {}

const NaivePropagationEngine::Column &
NaivePropagationEngine::columnFor(Symbol Member) {
  auto It = Cache.find(Member);
  if (It != Cache.end())
    return It->second;
  Column &Out = Cache[Member];
  computeColumn(Member, Out);
  return Out;
}

void NaivePropagationEngine::computeColumn(Symbol Member, Column &Out) {
  Out.DefsPerClass.assign(H.numClasses(), {});

  // One meter per column: every definition propagated across an edge is
  // one unit of work, so the meter bounds the column's total cost (and
  // hosts the deterministic fault injector).
  BudgetMeter Meter = BudgetMeter::lookupSteps(Budget);
  auto GiveUp = [&](bool Exhausted) {
    Out.Exhausted = Exhausted;
    Out.Overflowed = !Exhausted;
    Out.DefsPerClass.assign(H.numClasses(), {});
  };

  // Propagate definitions in topological order. A definition is a path;
  // ~-equivalent paths denote the same definition, so each class's set
  // is deduplicated by canonical subobject key (keeping the first
  // witness path encountered, in deterministic traversal order).
  for (ClassId C : H.topologicalOrder()) {
    std::vector<Definition> &Defs = Out.DefsPerClass[C.index()];
    std::unordered_set<SubobjectKey, SubobjectKeyHash> SeenKeys;

    auto AddDefinition = [&](Definition Def) {
      if (SeenKeys.insert(Def.Key).second)
        Defs.push_back(std::move(Def));
    };

    // Generated definition: the trivial path <C> (Section 4 calls the
    // set of these { A::m | m in Members(A) }).
    if (H.declaresMember(C, Member)) {
      if (!Meter.charge())
        return GiveUp(/*Exhausted=*/true);
      Path Trivial(C);
      AddDefinition(Definition{subobjectKey(H, Trivial), Trivial});
    }

    // Inherited definitions: extend what each direct base propagates
    // across the edge X -> C.
    for (const BaseSpecifier &Spec : H.info(C).DirectBases) {
      for (const Definition &In : Out.DefsPerClass[Spec.Base.index()]) {
        if (!Meter.charge())
          return GiveUp(/*Exhausted=*/true);
        Path Extended = extend(In.Witness, C);
        AddDefinition(Definition{subobjectKey(H, Extended),
                                 std::move(Extended)});
      }
      if (Defs.size() > Budget.MaxDefsPerClass)
        return GiveUp(/*Exhausted=*/false);
    }

    // With killing enabled only the maximal definitions survive - both
    // as this class's reaching set and for further propagation
    // (Corollary 1 justifies dropping the dominated ones; the maximal
    // ones are the paper's red/blue survivors).
    if (KillPolicy == Killing::Enabled && Defs.size() > 1)
      Defs = maximalDefinitions(H, Defs);
  }
}

const std::vector<NaivePropagationEngine::Definition> &
NaivePropagationEngine::reachingDefinitions(ClassId Context, Symbol Member) {
  assert(Context.isValid() && Context.index() < H.numClasses() &&
         "bad class id");
  const Column &Col = columnFor(Member);
  if (Col.Overflowed || Col.Exhausted)
    return Empty;
  return Col.DefsPerClass[Context.index()];
}

bool NaivePropagationEngine::overflowed(Symbol Member) {
  return columnFor(Member).Overflowed;
}

bool NaivePropagationEngine::exhausted(Symbol Member) {
  return columnFor(Member).Exhausted;
}

LookupResult NaivePropagationEngine::lookup(ClassId Context, Symbol Member) {
  assert(Context.isValid() && Context.index() < H.numClasses() &&
         "bad class id");
  const Column &Col = columnFor(Member);
  if (Col.Overflowed)
    return LookupResult::overflow();
  if (Col.Exhausted)
    return LookupResult::exhausted();

  return resolveByDominance(H, Col.DefsPerClass[Context.index()], Member);
}
