//===- GxxBfsEngine.cpp - g++ 2.7.2 baseline -------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/GxxBfsEngine.h"

#include <deque>

using namespace memlook;

GxxBfsEngine::GxxBfsEngine(const Hierarchy &H, size_t MaxSubobjects)
    : LookupEngine(H), MaxSubobjects(MaxSubobjects) {}

const SubobjectGraph *GxxBfsEngine::graphFor(ClassId Complete) {
  auto It = GraphCache.find(Complete);
  if (It == GraphCache.end())
    It = GraphCache
             .emplace(Complete,
                      SubobjectGraph::build(H, Complete, MaxSubobjects))
             .first;
  return It->second ? &*It->second : nullptr;
}

LookupResult GxxBfsEngine::lookup(ClassId Context, Symbol Member) {
  // A member of the class itself short-circuits the traversal.
  if (H.declaresMember(Context, Member)) {
    Path Trivial(Context);
    return LookupResult::unambiguous(Context, subobjectKey(H, Trivial),
                                     Trivial);
  }

  const SubobjectGraph *Graph = graphFor(Context);
  if (!Graph)
    return LookupResult::overflow();

  // Breadth-first scan of the subobject graph from the complete object,
  // visiting each subobject once, direct bases in declaration order.
  std::optional<SubobjectId> Best;
  BitVector Visited(Graph->numSubobjects());
  std::deque<SubobjectId> Queue{Graph->root()};
  Visited.set(Graph->root().index());

  while (!Queue.empty()) {
    SubobjectId Cur = Queue.front();
    Queue.pop_front();
    const SubobjectGraph::Subobject &S = Graph->subobject(Cur);

    const MemberDecl *Decl =
        Cur == Graph->root() ? nullptr
                             : H.declaredMember(S.Key.ldc(), Member);
    if (Decl) {
      if (!Best) {
        Best = Cur;
      } else {
        // Keep whichever of the two dominates; report ambiguity as soon
        // as neither does. The early report is g++ 2.7.2's bug: a
        // definition dominating both may still be ahead in the queue.
        const SubobjectGraph::Subobject &BestS = Graph->subobject(*Best);
        bool BestWins = Graph->contains(*Best, Cur);
        bool CurWins = Graph->contains(Cur, *Best);
        if (!BestWins && !CurWins) {
          // Static members of one class are one entity; mirror the
          // Definition 17(2) allowance so the baseline is only wrong
          // where the paper says it is wrong.
          const MemberDecl *BestDecl =
              H.declaredMember(BestS.Key.ldc(), Member);
          bool SharedStatic = BestDecl && BestDecl->IsStatic &&
                              BestS.Key.ldc() == S.Key.ldc();
          if (!SharedStatic)
            return LookupResult::ambiguous(
                {BestS.Key, S.Key});
        } else if (CurWins) {
          Best = Cur;
        }
      }
    }

    for (SubobjectId Base : S.DirectBases)
      if (!Visited.test(Base.index())) {
        Visited.set(Base.index());
        Queue.push_back(Base);
      }
  }

  if (!Best)
    return LookupResult::notFound();
  const SubobjectGraph::Subobject &BestS = Graph->subobject(*Best);
  return LookupResult::unambiguous(BestS.Key.ldc(), BestS.Key, BestS.Repr);
}
