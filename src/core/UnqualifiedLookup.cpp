//===- UnqualifiedLookup.cpp - Scope stack ---------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/UnqualifiedLookup.h"

using namespace memlook;

void ScopeStack::pushLexicalScope(std::string Name) {
  Scope S;
  S.IsClass = false;
  S.Name = std::move(Name);
  Scopes.push_back(std::move(S));
}

void ScopeStack::pushClassScope(ClassId Class) {
  assert(Class.isValid() && "pushing invalid class scope");
  Scope S;
  S.IsClass = true;
  S.Class = Class;
  Scopes.push_back(std::move(S));
}

void ScopeStack::popScope() {
  assert(!Scopes.empty() && "pop of empty scope stack");
  Scopes.pop_back();
}

void ScopeStack::declare(std::string_view Name) {
  assert(!Scopes.empty() && "declare with no scope");
  assert(!Scopes.back().IsClass &&
         "class scopes are populated by the hierarchy, not declare()");
  Scopes.back().Names.insert(std::string(Name));
}

ResolvedName ScopeStack::resolve(std::string_view Name) {
  for (size_t I = Scopes.size(); I-- > 0;) {
    Scope &S = Scopes[I];
    if (!S.IsClass) {
      if (S.Names.count(std::string(Name))) {
        ResolvedName R;
        R.NameKind = ResolvedName::Kind::LocalName;
        R.ScopeIndex = I;
        R.ScopeName = S.Name;
        return R;
      }
      continue;
    }

    // Class scope: the local lookup is exactly the member lookup
    // problem. Both a successful and an *ambiguous* member lookup bind
    // the name (the latter is then an error at the use site); only
    // NotFound continues outward.
    LookupResult MemberResult = Engine.lookup(S.Class, Name);
    if (MemberResult.Status == LookupStatus::NotFound)
      continue;
    ResolvedName R;
    R.NameKind = ResolvedName::Kind::Member;
    R.ScopeIndex = I;
    R.ClassScope = S.Class;
    R.MemberResult = std::move(MemberResult);
    return R;
  }
  return ResolvedName{};
}
