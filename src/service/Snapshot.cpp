//===- Snapshot.cpp - Versioned snapshots ------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/Snapshot.h"

#include <unordered_set>

using namespace memlook;
using namespace memlook::service;

const LookupResult LookupTable::NotFoundAnswer{};

std::shared_ptr<const LookupTable>
LookupTable::build(const Hierarchy &H, const Deadline &BuildDeadline,
                   uint32_t Threads) {
  assert(H.isFinalized() && "tabulation requires finalize()");

  ParallelTabulator::Result R =
      ParallelTabulator::tabulateAll(H, BuildDeadline, Threads);
  if (!R.Complete)
    return nullptr; // deadline expired mid-build: the epoch stays cold

  std::shared_ptr<LookupTable> Table(new LookupTable());
  Table->NumClasses = H.numClasses();
  const std::vector<Symbol> &Members = H.allMemberNames();
  Table->MemberIndex.reserve(Members.size());
  for (uint32_t Idx = 0; Idx != Members.size(); ++Idx)
    Table->MemberIndex.emplace(Members[Idx], Idx);
  Table->Columns = std::move(R.Columns);
  Table->Build.ColumnsBuilt = static_cast<uint32_t>(Members.size());
  Table->Build.ThreadsUsed = R.ThreadsUsed;
  Table->Build.Tabulation = R.TabulationStats;
  return Table;
}

std::shared_ptr<const LookupTable>
LookupTable::rewarm(const Hierarchy &NewH, const Hierarchy &OldH,
                    const LookupTable &Prev,
                    const std::vector<std::string> &ImpactedNames,
                    const Deadline &BuildDeadline, uint32_t Threads) {
  assert(NewH.isFinalized() && "tabulation requires finalize()");

  std::unordered_set<std::string_view> Impacted(ImpactedNames.begin(),
                                                ImpactedNames.end());

  // Partition the new epoch's member names: impacted spellings (and any
  // name the predecessor does not tabulate, defensively - a genuinely
  // new name is always impacted) get re-tabulated; the rest alias the
  // predecessor's columns. Symbols are per-hierarchy interner ids, so
  // the cross-epoch join key is the spelling, not the Symbol.
  const std::vector<Symbol> &Members = NewH.allMemberNames();
  std::vector<uint32_t> Retab;
  std::vector<std::pair<uint32_t, uint32_t>> Shared; // (new idx, prev idx)
  Retab.reserve(ImpactedNames.size());
  Shared.reserve(Members.size());
  for (uint32_t Idx = 0; Idx != Members.size(); ++Idx) {
    std::string_view Spelling = NewH.spelling(Members[Idx]);
    if (Impacted.count(Spelling) != 0) {
      Retab.push_back(Idx);
      continue;
    }
    Symbol OldSym = OldH.findName(Spelling);
    auto PrevIt = OldSym.isValid() ? Prev.MemberIndex.find(OldSym)
                                   : Prev.MemberIndex.end();
    if (PrevIt == Prev.MemberIndex.end())
      Retab.push_back(Idx);
    else
      Shared.emplace_back(Idx, PrevIt->second);
  }

  ParallelTabulator::Result R =
      ParallelTabulator::tabulate(NewH, Retab, BuildDeadline, Threads);
  if (!R.Complete)
    return nullptr;

  std::shared_ptr<LookupTable> Table(new LookupTable());
  Table->NumClasses = NewH.numClasses();
  Table->MemberIndex.reserve(Members.size());
  for (uint32_t Idx = 0; Idx != Members.size(); ++Idx)
    Table->MemberIndex.emplace(Members[Idx], Idx);
  Table->Columns = std::move(R.Columns);
  for (const auto &[NewIdx, PrevIdx] : Shared)
    Table->Columns[NewIdx] = Prev.Columns[PrevIdx];
  Table->Build.ColumnsBuilt = static_cast<uint32_t>(Retab.size());
  Table->Build.ColumnsShared = static_cast<uint32_t>(Shared.size());
  Table->Build.ThreadsUsed = R.ThreadsUsed;
  Table->Build.Tabulation = R.TabulationStats;
  return Table;
}

uint64_t LookupTable::numEntries() const {
  uint64_t N = 0;
  for (const std::shared_ptr<const Column> &Col : Columns)
    N += Col->Rows.size();
  return N;
}

uint64_t LookupTable::approximateBytes() const {
  uint64_t Bytes = sizeof(LookupTable);
  for (const std::shared_ptr<const Column> &Col : Columns) {
    Bytes += sizeof(Column) + Col->Rows.capacity() * sizeof(LookupResult);
    for (const LookupResult &R : Col->Rows) {
      Bytes += R.AmbiguousCandidates.capacity() * sizeof(SubobjectKey);
      if (R.Witness)
        Bytes += R.Witness->Nodes.capacity() * sizeof(ClassId);
      if (R.Subobject)
        Bytes += R.Subobject->Fixed.capacity() * sizeof(ClassId);
    }
  }
  Bytes += MemberIndex.size() * (sizeof(Symbol) + sizeof(uint32_t) +
                                 2 * sizeof(void *)); // node overhead, roughly
  return Bytes;
}

std::shared_ptr<const LookupTable>
LookupTable::cloneWithCorruptedEntry(ClassId Context, Symbol Member) const {
  if (!Context.isValid() || Context.index() >= NumClasses)
    return nullptr;
  auto It = MemberIndex.find(Member);
  if (It == MemberIndex.end())
    return nullptr;
  if (Context.index() >= Columns[It->second]->Rows.size())
    return nullptr; // shared short column: no materialized slot to damage

  std::shared_ptr<LookupTable> Copy(new LookupTable(*this));
  auto Damaged = std::make_shared<Column>(*Copy->Columns[It->second]);
  LookupResult &Slot = Damaged->Rows[Context.index()];
  // Any wrong answer works; pick one that changes the comparison key for
  // every possible original status.
  switch (Slot.Status) {
  case LookupStatus::Unambiguous:
    Slot = LookupResult::ambiguous({});
    break;
  case LookupStatus::Ambiguous:
    Slot = LookupResult::notFound();
    break;
  default:
    Slot = LookupResult::ambiguous({});
    break;
  }
  Copy->Columns[It->second] = std::move(Damaged);
  return Copy;
}
