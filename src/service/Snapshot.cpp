//===- Snapshot.cpp - Versioned snapshots ------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/Snapshot.h"

#include "memlook/core/DominanceLookupEngine.h"

using namespace memlook;
using namespace memlook::service;

const LookupResult LookupTable::NotFoundAnswer{};

std::shared_ptr<const LookupTable>
LookupTable::build(const Hierarchy &H, const Deadline &BuildDeadline) {
  assert(H.isFinalized() && "tabulation requires finalize()");

  std::shared_ptr<LookupTable> Table(new LookupTable());
  Table->NumClasses = H.numClasses();
  const std::vector<Symbol> &Members = H.allMemberNames();
  Table->MemberIndex.reserve(Members.size());
  for (uint32_t Idx = 0; Idx != Members.size(); ++Idx)
    Table->MemberIndex.emplace(Members[Idx], Idx);
  Table->Results.resize(static_cast<size_t>(H.numClasses()) * Members.size());

  // Lazy column-at-a-time tabulation so the deadline can stop the build
  // between columns; Eager mode would commit to the whole table inside
  // the constructor.
  DominanceLookupEngine Engine(H, DominanceLookupEngine::Mode::Lazy);
  Engine.setDeadline(&BuildDeadline);

  for (uint32_t MemberIdx = 0; MemberIdx != Members.size(); ++MemberIdx) {
    Symbol Member = Members[MemberIdx];
    for (uint32_t ClassIdx = 0; ClassIdx != H.numClasses(); ++ClassIdx) {
      LookupResult R = Engine.lookup(ClassId(ClassIdx), Member);
      if (Engine.deadlineTripped())
        return nullptr;
      Table->Results[static_cast<size_t>(ClassIdx) * Members.size() +
                     MemberIdx] = std::move(R);
    }
  }
  return Table;
}

uint64_t LookupTable::approximateBytes() const {
  uint64_t Bytes = sizeof(LookupTable);
  Bytes += Results.capacity() * sizeof(LookupResult);
  for (const LookupResult &R : Results) {
    Bytes += R.AmbiguousCandidates.capacity() * sizeof(SubobjectKey);
    if (R.Witness)
      Bytes += R.Witness->Nodes.capacity() * sizeof(ClassId);
    if (R.Subobject)
      Bytes += R.Subobject->Fixed.capacity() * sizeof(ClassId);
  }
  Bytes += MemberIndex.size() * (sizeof(Symbol) + sizeof(uint32_t) +
                                 2 * sizeof(void *)); // node overhead, roughly
  return Bytes;
}

std::shared_ptr<const LookupTable>
LookupTable::cloneWithCorruptedEntry(ClassId Context, Symbol Member) const {
  if (!Context.isValid() || Context.index() >= NumClasses)
    return nullptr;
  auto It = MemberIndex.find(Member);
  if (It == MemberIndex.end())
    return nullptr;

  std::shared_ptr<LookupTable> Copy(new LookupTable(*this));
  LookupResult &Slot =
      Copy->Results[static_cast<size_t>(Context.index()) * MemberIndex.size() +
                    It->second];
  // Any wrong answer works; pick one that changes the comparison key for
  // every possible original status.
  switch (Slot.Status) {
  case LookupStatus::Unambiguous:
    Slot = LookupResult::ambiguous({});
    break;
  case LookupStatus::Ambiguous:
    Slot = LookupResult::notFound();
    break;
  default:
    Slot = LookupResult::ambiguous({});
    break;
  }
  return Copy;
}
