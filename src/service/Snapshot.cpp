//===- Snapshot.cpp - Versioned snapshots ------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/Snapshot.h"

#include <unordered_map>
#include <unordered_set>

using namespace memlook;
using namespace memlook::service;

namespace {

/// Structural column deduplication: point member indices whose finished
/// columns are byte-identical at one shared Column object. Sound
/// because a Complete column with no Overrides is exactly the
/// deterministic kernel's output for its member name - value-immutable
/// from publication on - so aliasing is unobservable through find().
/// Returns the number of aliased pointers in excess of the distinct
/// objects (i.e. how many columns' storage the table no longer pays
/// for), counting pointers that already aliased on entry (cross-epoch
/// rewarm sharing can re-derive a column identical to a shared one).
uint32_t dedupStructurallyEqualColumns(
    std::vector<std::shared_ptr<const LookupTable::Column>> &Columns) {
  std::unordered_map<uint64_t,
                     std::vector<std::shared_ptr<const LookupTable::Column>>>
      Buckets;
  for (std::shared_ptr<const LookupTable::Column> &Col : Columns) {
    if (!Col || !Col->Complete || !Col->Overrides.empty())
      continue;
    // The hash was computed once at tabulation time; the only bytes a
    // dedup pass reads are the memcmp of genuinely colliding columns.
    auto &Bucket = Buckets[Col->StructuralHash];
    bool Unified = false;
    for (const std::shared_ptr<const LookupTable::Column> &Canonical :
         Bucket) {
      if (Canonical == Col || Canonical->Data == Col->Data) {
        Col = Canonical; // first occurrence wins; no-op if already aliased
        Unified = true;
        break;
      }
    }
    if (!Unified)
      Bucket.push_back(Col);
  }

  std::unordered_set<const LookupTable::Column *> Distinct;
  uint32_t Aliased = 0;
  for (const std::shared_ptr<const LookupTable::Column> &Col : Columns)
    if (Col && !Distinct.insert(Col.get()).second)
      ++Aliased;
  return Aliased;
}

} // namespace

void LookupTable::buildMemberIndex(const Hierarchy &H) {
  const std::vector<Symbol> &Members = H.allMemberNames();
  MemberIndex.assign(H.numInternedNames(), NoColumn);
  for (uint32_t Idx = 0; Idx != Members.size(); ++Idx)
    MemberIndex[Members[Idx].rawValue()] = Idx;
}

std::shared_ptr<const LookupTable>
LookupTable::build(const Hierarchy &H, const Deadline &BuildDeadline,
                   uint32_t Threads) {
  assert(H.isFinalized() && "tabulation requires finalize()");

  ParallelTabulator::Result R =
      ParallelTabulator::tabulateAll(H, BuildDeadline, Threads);
  if (!R.Complete)
    return nullptr; // deadline expired mid-build: the epoch stays cold

  std::shared_ptr<LookupTable> Table(new LookupTable());
  Table->NumClasses = H.numClasses();
  const std::vector<Symbol> &Members = H.allMemberNames();
  Table->buildMemberIndex(H);
  Table->Columns = std::move(R.Columns);
  Table->Build.ColumnsDeduped = dedupStructurallyEqualColumns(Table->Columns);
  Table->Build.ColumnsBuilt = static_cast<uint32_t>(Members.size());
  Table->Build.ThreadsUsed = R.ThreadsUsed;
  Table->Build.Tabulation = R.TabulationStats;
  return Table;
}

std::shared_ptr<const LookupTable>
LookupTable::rewarm(const Hierarchy &NewH, const Hierarchy &OldH,
                    const LookupTable &Prev,
                    const std::vector<std::string> &ImpactedNames,
                    const Deadline &BuildDeadline, uint32_t Threads) {
  assert(NewH.isFinalized() && "tabulation requires finalize()");

  std::unordered_set<std::string_view> Impacted(ImpactedNames.begin(),
                                                ImpactedNames.end());

  // Partition the new epoch's member names: impacted spellings (and any
  // name the predecessor does not tabulate, defensively - a genuinely
  // new name is always impacted) get re-tabulated; the rest alias the
  // predecessor's columns. Symbols are per-hierarchy interner ids, so
  // the cross-epoch join key is the spelling, not the Symbol.
  const std::vector<Symbol> &Members = NewH.allMemberNames();
  std::vector<uint32_t> Retab;
  std::vector<std::pair<uint32_t, uint32_t>> Shared; // (new idx, prev idx)
  Retab.reserve(ImpactedNames.size());
  Shared.reserve(Members.size());
  for (uint32_t Idx = 0; Idx != Members.size(); ++Idx) {
    std::string_view Spelling = NewH.spelling(Members[Idx]);
    if (Impacted.count(Spelling) != 0) {
      Retab.push_back(Idx);
      continue;
    }
    Symbol OldSym = OldH.findName(Spelling);
    uint32_t PrevCol = Prev.columnIndexFor(OldSym);
    if (PrevCol == NoColumn)
      Retab.push_back(Idx);
    else
      Shared.emplace_back(Idx, PrevCol);
  }

  ParallelTabulator::Result R =
      ParallelTabulator::tabulate(NewH, Retab, BuildDeadline, Threads);
  if (!R.Complete)
    return nullptr;

  std::shared_ptr<LookupTable> Table(new LookupTable());
  Table->NumClasses = NewH.numClasses();
  Table->buildMemberIndex(NewH);
  Table->Columns = std::move(R.Columns);
  for (const auto &[NewIdx, PrevIdx] : Shared)
    Table->Columns[NewIdx] = Prev.Columns[PrevIdx];
  // Dedup after sharing, so a re-tabulated column that came out
  // identical to a shared (shorter-or-equal, here equal-length only:
  // retabbed columns span NewH) column still unifies. Columns of
  // different lengths are never byte-equal, so a retabbed column over a
  // grown hierarchy cannot wrongly unify with a short shared one.
  Table->Build.ColumnsDeduped = dedupStructurallyEqualColumns(Table->Columns);
  Table->Build.ColumnsBuilt = static_cast<uint32_t>(Retab.size());
  Table->Build.ColumnsShared = static_cast<uint32_t>(Shared.size());
  Table->Build.ThreadsUsed = R.ThreadsUsed;
  Table->Build.Tabulation = R.TabulationStats;
  return Table;
}

std::shared_ptr<const LookupTable>
LookupTable::fromColumns(const Hierarchy &H,
                         std::vector<std::shared_ptr<const Column>> Columns) {
  assert(H.isFinalized() && "loading a table requires finalize()");
  assert(Columns.size() == H.allMemberNames().size() &&
         "one column pointer per member name");

  std::shared_ptr<LookupTable> Table(new LookupTable());
  Table->NumClasses = H.numClasses();
  Table->buildMemberIndex(H);
  Table->Columns = std::move(Columns);

  // Count the aliasing the file preserved, so loaded tables report the
  // same dedup savings a fresh build would.
  std::unordered_set<const Column *> Distinct;
  uint32_t Aliased = 0;
  for (const std::shared_ptr<const Column> &Col : Table->Columns) {
    assert(Col && Col->Complete && Col->Overrides.empty() &&
           "loaded columns are complete and override-free");
    if (!Distinct.insert(Col.get()).second)
      ++Aliased;
  }
  Table->Build.ColumnsDeduped = Aliased;
  Table->Build.ColumnsBuilt = 0; // nothing tabulated: all columns loaded
  return Table;
}

uint64_t LookupTable::numEntries() const {
  uint64_t N = 0;
  for (const std::shared_ptr<const Column> &Col : Columns)
    N += Col->numRows();
  return N;
}

uint64_t LookupTable::heapBytes() const {
  uint64_t Bytes = sizeof(LookupTable);
  Bytes += Columns.capacity() * sizeof(Columns[0]);
  std::unordered_set<const Column *> Seen;
  for (const std::shared_ptr<const Column> &Col : Columns) {
    if (!Col || !Seen.insert(Col.get()).second)
      continue; // aliased (deduped or cross-epoch shared): charge once
    Bytes += sizeof(Column) + Col->heapBytes();
  }
  Bytes += MemberIndex.capacity() * sizeof(uint32_t); // flat dispatch
  return Bytes;
}

std::shared_ptr<const LookupTable>
LookupTable::cloneWithCorruptedEntry(const Hierarchy &H, ClassId Context,
                                     Symbol Member) const {
  if (!Context.isValid() || Context.index() >= NumClasses)
    return nullptr;
  uint32_t Col = columnIndexFor(Member);
  if (Col == NoColumn)
    return nullptr;
  const Column &Original = *Columns[Col];
  if (Context.index() >= Original.numRows())
    return nullptr; // shared short column: no materialized slot to damage

  std::shared_ptr<LookupTable> Copy(new LookupTable(*this));
  auto Damaged = std::make_shared<Column>(Original);
  LookupResult Current = Original.resultFor(H, Context);
  // Any wrong answer works; pick one that changes the comparison key for
  // every possible original status.
  LookupResult Wrong = Current.Status == LookupStatus::Ambiguous
                           ? LookupResult::notFound()
                           : LookupResult::ambiguous({});
  Damaged->Overrides.emplace_back(Context.index(), std::move(Wrong));
  Copy->Columns[Col] = std::move(Damaged);
  return Copy;
}
