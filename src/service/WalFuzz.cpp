//===- WalFuzz.cpp - Write-ahead-log fuzzing ---------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/WalFuzz.h"

#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/Snapshot.h"
#include "memlook/service/WriteAheadLog.h"
#include "memlook/support/Deadline.h"
#include "memlook/support/Rng.h"
#include "memlook/workload/Generators.h"

#include <algorithm>
#include <cstring>

using namespace memlook;
using namespace memlook::service;

namespace {

/// Record-header geometry, mirrored from the format comment in
/// WriteAheadLog.h so the structure-aware mutations can aim at fields.
constexpr size_t WalHeaderSize = 28;
constexpr size_t WalOffEpoch = 8;

bool isRecoverableSalvageStop(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::WalCorrupt:
  case ErrorCode::WalEpochSkew:
    return true;
  default:
    return false;
  }
}

std::string poolMember(Rng &R) { return "m" + std::to_string(R.nextBelow(8)); }

/// Ops that are valid by construction against \p H: a fresh class, an
/// edge from it to an existing class, and a member on it. Same shape as
/// the edit-script fuzzer's committed half, but built as a raw op
/// vector because this fuzzer encodes records directly rather than
/// driving a service.
std::vector<Transaction::Op> makeValidOps(Rng &R, const Hierarchy &H,
                                          uint64_t CaseTag, uint64_t TxnIdx) {
  std::vector<Transaction::Op> Ops;
  std::string Fresh =
      "Wal" + std::to_string(CaseTag) + "_" + std::to_string(TxnIdx);
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddClass, Fresh, {}, {},
                                InheritanceKind::NonVirtual, AccessSpec::Public,
                                false, false});
  if (H.numClasses() != 0) {
    ClassId BaseId(static_cast<uint32_t>(R.nextBelow(H.numClasses())));
    Ops.push_back(Transaction::Op{
        Transaction::OpKind::AddBase, Fresh, std::string(H.className(BaseId)),
        {},
        R.nextChance(1, 3) ? InheritanceKind::Virtual
                           : InheritanceKind::NonVirtual,
        AccessSpec::Public, false, false});
  }
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddMember, Fresh, {},
                                poolMember(R), InheritanceKind::NonVirtual,
                                AccessSpec::Public,
                                /*IsStatic=*/R.nextChance(1, 6),
                                /*IsVirtual=*/R.nextChance(1, 4)});
  return Ops;
}

/// Mutations over log bytes. The structure-aware ones use the record
/// boundaries of the pristine encoding; every op changes the buffer or
/// reports false so the caller can fall back to a bit flip.
enum class MutationOp : uint64_t {
  FlipBit = 0,
  TruncateTail,
  TornAppend,
  ZeroRange,
  DuplicateRecord,
  DropRecord,
  SwapRecords,
  RewriteEpoch,
  AppendJunk,
  NumOps,
};

const char *mutationName(MutationOp Op) {
  switch (Op) {
  case MutationOp::FlipBit:
    return "flip-bit";
  case MutationOp::TruncateTail:
    return "truncate-tail";
  case MutationOp::TornAppend:
    return "torn-append";
  case MutationOp::ZeroRange:
    return "zero-range";
  case MutationOp::DuplicateRecord:
    return "duplicate-record";
  case MutationOp::DropRecord:
    return "drop-record";
  case MutationOp::SwapRecords:
    return "swap-records";
  case MutationOp::RewriteEpoch:
    return "rewrite-epoch";
  case MutationOp::AppendJunk:
    return "append-junk";
  case MutationOp::NumOps:
    break;
  }
  return "?";
}

void flipBit(Rng &R, std::string &B) {
  size_t At = R.nextBelow(B.size());
  B[At] = static_cast<char>(B[At] ^ (1u << R.nextBelow(8)));
}

/// Context the structure-aware mutations need: the pristine per-record
/// encodings (index 0 is the base record) and a spare record beyond the
/// log's end for the torn-append simulation.
struct MutationPlan {
  const std::vector<std::string> &Encoded;
  const std::string &NextRecord;
};

size_t recordOffset(const MutationPlan &Plan, size_t Index) {
  size_t Off = 0;
  for (size_t I = 0; I != Index; ++I)
    Off += Plan.Encoded[I].size();
  return Off;
}

bool applyMutation(Rng &R, MutationOp Op, const MutationPlan &Plan,
                   std::string &B) {
  size_t NumRecords = Plan.Encoded.size();
  switch (Op) {
  case MutationOp::FlipBit:
    flipBit(R, B);
    return true;

  case MutationOp::TruncateTail:
    B.resize(R.nextBelow(B.size())); // always strictly shorter
    return true;

  case MutationOp::TornAppend: {
    // The exact artifact of a crash mid-append: a strict prefix of a
    // valid next record after a clean log. Salvage must drop precisely
    // these bytes and keep everything before them.
    if (Plan.NextRecord.size() < 2)
      return false;
    size_t Len = 1 + R.nextBelow(Plan.NextRecord.size() - 1);
    B.append(Plan.NextRecord, 0, Len);
    return true;
  }

  case MutationOp::ZeroRange: {
    size_t At = R.nextBelow(B.size());
    size_t Len = 1 + R.nextBelow(std::min<size_t>(B.size() - At, 64));
    bool AllZero = true;
    for (size_t I = At; I != At + Len; ++I)
      AllZero &= B[I] == 0;
    if (AllZero)
      return false;
    std::memset(B.data() + At, 0, Len);
    return true;
  }

  case MutationOp::DuplicateRecord: {
    // Splice a byte-identical copy of one record in at a record
    // boundary: every CRC still passes, so only the base-first rule and
    // the epoch chain can catch it.
    size_t From = R.nextBelow(NumRecords);
    size_t AtBoundary = R.nextBelow(NumRecords + 1);
    B.insert(recordOffset(Plan, AtBoundary), Plan.Encoded[From]);
    return true;
  }

  case MutationOp::DropRecord: {
    size_t At = R.nextBelow(NumRecords);
    B.erase(recordOffset(Plan, At), Plan.Encoded[At].size());
    return true;
  }

  case MutationOp::SwapRecords: {
    if (NumRecords < 3)
      return false; // needs two distinct transaction records
    size_t I = 1 + R.nextBelow(NumRecords - 1);
    size_t J = 1 + R.nextBelow(NumRecords - 1);
    if (I == J)
      J = 1 + (J % (NumRecords - 1));
    size_t Lo = std::min(I, J), Hi = std::max(I, J);
    std::string Rebuilt = B.substr(0, recordOffset(Plan, Lo));
    Rebuilt += Plan.Encoded[Hi];
    for (size_t K = Lo + 1; K != Hi; ++K)
      Rebuilt += Plan.Encoded[K];
    Rebuilt += Plan.Encoded[Lo];
    Rebuilt += B.substr(recordOffset(Plan, Hi) + Plan.Encoded[Hi].size());
    if (Rebuilt == B)
      return false; // identical records: swapping changed nothing
    B = std::move(Rebuilt);
    return true;
  }

  case MutationOp::RewriteEpoch: {
    size_t At = R.nextBelow(NumRecords);
    size_t Off = recordOffset(Plan, At) + WalOffEpoch;
    uint64_t Old;
    std::memcpy(&Old, B.data() + Off, 8);
    uint64_t Lie;
    switch (R.nextBelow(4)) {
    case 0:
      Lie = R.next();
      break;
    case 1:
      Lie = Old + 1;
      break;
    case 2:
      Lie = Old - 1;
      break;
    default:
      Lie = Old == 0 ? 1 : Old - Old % 2; // collide with a neighbour
      break;
    }
    if (Lie == Old)
      Lie = Old + 1;
    std::memcpy(B.data() + Off, &Lie, 8);
    return true;
  }

  case MutationOp::AppendJunk: {
    size_t Len = 1 + R.nextBelow(64);
    for (size_t I = 0; I != Len; ++I)
      B.push_back(static_cast<char>(R.nextBelow(256)));
    return true;
  }

  case MutationOp::NumOps:
    break;
  }
  return false;
}

/// Appends to \p Out any (class, member) answer where \p Table (over
/// \p H) disagrees with \p Oracle (over \p OracleH - a different
/// Hierarchy object describing the same classes, as after a replay).
/// The join key is the member spelling: Symbol ids are per-interner.
/// Returns pairs compared.
uint64_t diffTables(const Hierarchy &H, const LookupTable &Table,
                    const Hierarchy &OracleH, const LookupTable &Oracle,
                    const char *What, std::vector<std::string> &Out) {
  uint64_t Pairs = 0;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    for (Symbol M : H.allMemberNames()) {
      ++Pairs;
      Symbol OracleM = OracleH.findName(H.spelling(M));
      std::string Got =
          renderLookupForComparison(H, Table.find(H, ClassId(Idx), M));
      std::string Want = renderLookupForComparison(
          OracleH, Oracle.find(OracleH, ClassId(Idx), OracleM));
      if (Got != Want && Out.size() < 8)
        Out.push_back(std::string(What) + ": " +
                      std::string(H.className(ClassId(Idx))) + "::" +
                      std::string(H.spelling(M)) + ": replayed table says '" +
                      Got + "' but the direct chain says '" + Want + "'");
    }
  }
  return Pairs;
}

} // namespace

WalFuzzCaseResult
memlook::service::runWalFuzzCase(uint64_t Seed, const ResourceBudget &Budget) {
  WalFuzzCaseResult Result;
  Result.Seed = Seed;

  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 0x3a17);

  RandomHierarchyParams Params;
  Params.NumClasses = static_cast<uint32_t>(R.nextInRange(4, 16));
  Params.MemberPool = 6;
  Params.UsingChance = 0.1;
  Workload W = makeRandomHierarchy(Params, R.next());

  // The committed chain the log describes: States[K] is the hierarchy
  // after K transactions; Encoded[0] is the base record, Encoded[K] the
  // record of the commit producing States[K].
  uint64_t BaseEpoch = 1 + (Seed & 0x7);
  uint64_t CaseTag = Seed & 0xffff;
  std::vector<Hierarchy> States;
  States.push_back(std::move(W.H));

  std::vector<std::string> Encoded;
  Encoded.push_back(
      encodeWalBaseRecord(BaseEpoch, hierarchyFingerprint(States[0])));

  uint64_t NumTxns = R.nextInRange(2, 5);
  for (uint64_t K = 0; K != NumTxns; ++K) {
    std::vector<Transaction::Op> Ops = makeValidOps(R, States.back(), CaseTag, K);
    Expected<Hierarchy> Next = applyEditScript(States.back(), Ops, Budget);
    if (!Next) {
      // makeValidOps is valid by construction; failure is a fuzzer bug.
      Result.Mismatches.push_back("generator script rejected: " +
                                  Next.status().toString());
      return Result;
    }
    Encoded.push_back(encodeWalTxnRecord(BaseEpoch + K + 1, Ops));
    States.push_back(std::move(*Next));
  }

  std::string Pristine;
  for (const std::string &Rec : Encoded)
    Pristine += Rec;
  Result.BytesEncoded = Pristine.size();

  const uint32_t BaseFingerprint = hierarchyFingerprint(States[0]);
  const std::string NextRecord = encodeWalTxnRecord(
      BaseEpoch + NumTxns + 1, makeValidOps(R, States.back(), CaseTag, NumTxns));
  MutationPlan Plan{Encoded, NextRecord};

  // Checks one salvage against the known chain. Pristine expectations
  // (full clean salvage) are asserted only for Round 0; every round
  // gets the structural, prefix, and replay oracles.
  auto checkSalvage = [&](const std::string &B, const WalSalvage &S,
                          const char *What, bool Resealed, bool IsPristine) {
    auto fail = [&](std::string Msg) {
      if (Result.Mismatches.size() < 8)
        Result.Mismatches.push_back(std::string(What) + ": " + std::move(Msg));
    };

    // Status discipline: salvage only ever stops with a recoverable
    // WAL status.
    if (!S.Error.isOk() && !isRecoverableSalvageStop(S.Error.code()))
      fail("salvage stopped with a non-WAL error: " + S.Error.toString());

    // Accounting: the clean prefix fits the buffer, and a clean scan
    // explains every byte as either salvaged or torn.
    if (S.CleanBytes > B.size())
      fail("clean prefix longer than the buffer");
    if (S.Error.isOk() && S.CleanBytes + S.TornBytesDropped != B.size())
      fail("clean scan did not account for every byte");
    if (!S.HasBase && !S.Records.empty())
      fail("salvaged transaction records without a base record");
    for (size_t I = 0; I != S.Records.size(); ++I)
      if (S.Records[I].Epoch != S.BaseEpoch + I + 1)
        fail("salvaged epochs are not contiguous");

    // Unsealed mutations never forge history: whatever salvages must be
    // byte-identical to the record originally at its position.
    if (!Resealed) {
      if (S.HasBase &&
          (S.BaseEpoch != BaseEpoch || S.BaseFingerprint != BaseFingerprint))
        fail("unsealed mutation changed the salvaged base record");
      if (S.Records.size() > NumTxns)
        fail("salvaged more records than were ever appended");
      for (size_t I = 0;
           I != S.Records.size() && Result.Mismatches.size() < 8; ++I) {
        std::string Reencoded =
            encodeWalTxnRecord(S.Records[I].Epoch, S.Records[I].Ops);
        if (I + 1 >= Encoded.size() || Reencoded != Encoded[I + 1])
          fail("salvaged record " + std::to_string(I) +
               " is not the record originally at that position");
      }
    }
    if (IsPristine) {
      if (!S.Error.isOk())
        fail("pristine log rejected: " + S.Error.toString());
      if (S.TornBytesDropped != 0)
        fail("pristine log reported a torn tail");
      if (!S.HasBase || S.Records.size() != NumTxns)
        fail("pristine log did not salvage completely");
    }

    // Whatever salvages, replays safely. Only a log claiming this
    // lineage (same base epoch and fingerprint) is eligible; recovery
    // refuses to replay any other onto this state.
    if (!S.HasBase || S.BaseEpoch != BaseEpoch ||
        S.BaseFingerprint != BaseFingerprint)
      return;
    const Hierarchy *Cur = &States[0];
    Hierarchy Replayed;
    bool AllApplied = true;
    bool MatchesChain = !Resealed; // byte-equal prefix, checked above
    for (const WalRecord &Rec : S.Records) {
      Expected<Hierarchy> Next = applyEditScript(*Cur, Rec.Ops, Budget);
      if (!Next) {
        // A mutated-but-resealed record may decode to an invalid
        // script; the engine refusing it is the safe outcome.
        AllApplied = false;
        break;
      }
      Replayed = std::move(*Next);
      Cur = &Replayed;
    }
    if (!AllApplied || S.Records.empty())
      return;
    if (MatchesChain) {
      // Byte-equal records must replay to the very hierarchy the direct
      // chain produced: encode -> salvage -> decode -> apply is lossless.
      const Hierarchy &Direct = States[S.Records.size()];
      if (hierarchyFingerprint(Replayed) != hierarchyFingerprint(Direct)) {
        fail("replayed chain fingerprint diverged from the direct chain");
        return;
      }
      auto ReplayTable =
          LookupTable::build(Replayed, Deadline::never(), /*Threads=*/1);
      auto DirectTable =
          LookupTable::build(Direct, Deadline::never(), /*Threads=*/1);
      Result.PairsChecked += diffTables(Replayed, *ReplayTable, Direct,
                                        *DirectTable, What, Result.Mismatches);
    } else {
      // A resealed log may describe a different but valid chain; its
      // replay must still be a hierarchy every engine agrees on.
      DifferentialReport Report = runDifferentialCheck(Replayed, Budget);
      Result.PairsChecked += Report.PairsChecked;
      for (const std::string &M : Report.Mismatches)
        if (Result.Mismatches.size() < 8)
          Result.Mismatches.push_back(std::string(What) +
                                      ": replayed hierarchy: " + M);
    }
  };

  // Round 0: the unmutated log must salvage completely and round-trip.
  ++Result.RoundsRun;
  {
    WalSalvage S = salvageWalBytes(Pristine);
    if (S.Error.isOk())
      ++Result.RoundsClean;
    else
      ++Result.RoundsRejected;
    Result.RecordsSalvaged += S.Records.size();
    checkSalvage(Pristine, S, "round-trip", /*Resealed=*/false,
                 /*IsPristine=*/true);
  }

  uint64_t NumRounds = R.nextInRange(8, 14);
  for (uint64_t Round = 0; Round != NumRounds; ++Round) {
    ++Result.RoundsRun;
    std::string B = Pristine;
    auto Op = static_cast<MutationOp>(
        R.nextBelow(static_cast<uint64_t>(MutationOp::NumOps)));
    if (!applyMutation(R, Op, Plan, B))
      flipBit(R, B); // fallback keeps every round a real mutation

    // Half the content rounds reseal, pushing the corruption past the
    // CRC rung into the base-first / epoch-chain / op-decoding
    // validators. The two crash-shaped mutations stay unsealed - they
    // model the artifacts a real interrupted writer leaves, which are
    // never resealed.
    bool Resealed = false;
    if (Op != MutationOp::TruncateTail && Op != MutationOp::TornAppend &&
        R.nextChance(1, 2)) {
      resealWalChecksums(B);
      Resealed = true;
    }

    WalSalvage S = salvageWalBytes(B);
    if (S.Error.isOk())
      ++Result.RoundsClean;
    else
      ++Result.RoundsRejected;
    Result.RecordsSalvaged += S.Records.size();
    checkSalvage(B, S, mutationName(Op), Resealed, /*IsPristine=*/false);
  }
  return Result;
}

WalFuzzCampaignReport
memlook::service::runWalFuzzCampaign(uint64_t FirstSeed, uint64_t NumCases,
                                     const ResourceBudget &Budget) {
  WalFuzzCampaignReport Report;
  for (uint64_t Idx = 0; Idx != NumCases; ++Idx) {
    WalFuzzCaseResult Case = runWalFuzzCase(FirstSeed + Idx, Budget);
    ++Report.CasesRun;
    Report.RoundsRun += Case.RoundsRun;
    Report.RoundsRejected += Case.RoundsRejected;
    Report.RoundsClean += Case.RoundsClean;
    Report.RecordsSalvaged += Case.RecordsSalvaged;
    Report.PairsChecked += Case.PairsChecked;
    if (!Case.passed())
      Report.Failures.push_back(std::move(Case));
  }
  return Report;
}
