//===- SnapshotFile.cpp - Durable snapshots ----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/SnapshotFile.h"

#include "memlook/support/AtomicFile.h"
#include "memlook/support/Crc32.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>

using namespace memlook;
using namespace memlook::service;

static_assert(std::endian::native == std::endian::little,
              "the version-1 snapshot format is little-endian on disk and "
              "this implementation memcpys scalars");

namespace {

constexpr char Magic[8] = {'M', 'L', 'K', 'S', 'N', 'A', 'P', '\0'};
constexpr size_t FixedHeaderBytes = 36; // magic..sectionCount
constexpr size_t SectionEntryBytes = 24;

constexpr uint32_t SectionStrings = 1;
constexpr uint32_t SectionHierarchy = 2;
constexpr uint32_t SectionColumns = 3;

constexpr uint32_t FlagHasTable = 1;

using Column = LookupTable::Column;

Status malformed(std::string Message) {
  return Status::error(ErrorCode::SnapshotMalformed, std::move(Message));
}

//===----------------------------------------------------------------------===//
// Byte building and bounds-checked reading
//===----------------------------------------------------------------------===//

void putU32(std::string &B, uint32_t V) {
  B.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

void putU64(std::string &B, uint64_t V) {
  B.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

void patchU32(std::string &B, size_t At, uint32_t V) {
  std::memcpy(B.data() + At, &V, sizeof(V));
}

/// Sequential reader that never steps past its range: every accessor
/// reports failure instead, and the caller converts that into a
/// SnapshotMalformed status naming what was being read.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes)
      : P(reinterpret_cast<const unsigned char *>(Bytes.data())),
        Len(Bytes.size()) {}

  size_t remaining() const { return Len - Pos; }

  bool readU32(uint32_t &Out) { return readScalar(Out); }
  bool readU64(uint64_t &Out) { return readScalar(Out); }
  bool readU8(uint8_t &Out) { return readScalar(Out); }

  bool readBytes(void *Out, size_t N) {
    if (remaining() < N)
      return false;
    std::memcpy(Out, P + Pos, N);
    Pos += N;
    return true;
  }

  bool readView(std::string_view &Out, size_t N) {
    if (remaining() < N)
      return false;
    Out = std::string_view(reinterpret_cast<const char *>(P + Pos), N);
    Pos += N;
    return true;
  }

private:
  template <typename T> bool readScalar(T &Out) {
    if (remaining() < sizeof(T))
      return false;
    std::memcpy(&Out, P + Pos, sizeof(T));
    Pos += sizeof(T);
    return true;
  }

  const unsigned char *P;
  size_t Len;
  size_t Pos = 0;
};

/// Section payloads are zero-padded to a multiple of eight bytes (the
/// header region is 8-aligned by construction, so this makes every
/// section base 8-aligned too - what lets the loader borrow typed spans
/// straight out of the file buffer). The pad sits under the section CRC;
/// a parser calls this after consuming its real content, so fewer than
/// eight zero bytes may remain and anything else is trailing garbage.
Status consumeSectionPad(ByteReader &R, const char *Section) {
  if (R.remaining() >= 8)
    return malformed(std::string("trailing bytes after the ") + Section);
  while (R.remaining() != 0) {
    uint8_t B = 0;
    R.readU8(B);
    if (B != 0)
      return malformed(std::string("nonzero padding after the ") + Section);
  }
  return Status::ok();
}

/// The serializer-side counterpart of consumeSectionPad.
void padSectionTo8(std::string &Payload) {
  Payload.append((8 - Payload.size() % 8) % 8, '\0');
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

/// First-use-ordered string table builder (the durable form of the name
/// interner: every class and member spelling stored once).
class StringTableBuilder {
public:
  uint32_t ref(std::string_view S) {
    auto It = Index.find(S);
    if (It != Index.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.push_back(S);
    Index.emplace(S, Id);
    return Id;
  }

  std::string payload() const {
    std::string Out;
    putU32(Out, static_cast<uint32_t>(Strings.size()));
    for (std::string_view S : Strings) {
      putU32(Out, static_cast<uint32_t>(S.size()));
      Out.append(S);
    }
    return Out;
  }

private:
  std::vector<std::string_view> Strings; // views into the live Hierarchy
  std::unordered_map<std::string_view, uint32_t> Index;
};

std::string serializeHierarchy(const Hierarchy &H, StringTableBuilder &Strings) {
  std::string Out;
  uint32_t N = H.numClasses();
  putU32(Out, N);
  for (uint32_t C = 0; C != N; ++C) {
    const Hierarchy::ClassInfo &Info = H.info(ClassId(C));
    putU32(Out, Strings.ref(H.spelling(Info.Name)));
    putU32(Out, static_cast<uint32_t>(Info.DirectBases.size()));
    for (const BaseSpecifier &Spec : Info.DirectBases) {
      putU32(Out, Spec.Base.index());
      Out.push_back(static_cast<char>(Spec.Kind));
      Out.push_back(static_cast<char>(Spec.Access));
    }
    putU32(Out, static_cast<uint32_t>(Info.Members.size()));
    for (const MemberDecl &M : Info.Members) {
      putU32(Out, Strings.ref(H.spelling(M.Name)));
      uint8_t Flags = (M.IsStatic ? 1 : 0) | (M.IsVirtual ? 2 : 0);
      Out.push_back(static_cast<char>(Flags));
      Out.push_back(static_cast<char>(M.Access));
      putU32(Out, M.UsingFrom.rawValue());
    }
  }
  return Out;
}

std::string serializeColumns(const Hierarchy &H, const LookupTable &Table,
                             uint32_t HierarchyCrc) {
  std::string Out;

  // The columns are only meaningful for the exact hierarchy they were
  // tabulated over, so the section opens by naming it: the CRC of the
  // hierarchy payload it was built against. The loader refuses a table
  // whose binding disagrees with the hierarchy it just replayed - a
  // corruption (even a re-checksummed one) that edits the hierarchy
  // cannot smuggle a stale-but-well-formed table past validation.
  putU32(Out, HierarchyCrc);

  // Distinct columns in first-reference order; aliased member indices
  // share one stored column, preserving dedup/rewarm sharing on disk.
  std::vector<const Column *> Distinct;
  std::unordered_map<const Column *, uint32_t> DistinctIdx;
  std::vector<uint32_t> MemberRefs;
  MemberRefs.reserve(Table.columns().size());
  for (const std::shared_ptr<const Column> &Col : Table.columns()) {
    assert(Col && Col->Complete && Col->Overrides.empty() &&
           "only fully built, unmodified tables are persisted");
    auto [It, Inserted] =
        DistinctIdx.emplace(Col.get(), static_cast<uint32_t>(Distinct.size()));
    if (Inserted)
      Distinct.push_back(Col.get());
    MemberRefs.push_back(It->second);
  }

  putU32(Out, static_cast<uint32_t>(Distinct.size()));
  for (const Column *Col : Distinct) {
    const CompactColumn &Data = Col->Data;
    assert(Data.size() <= H.numClasses() &&
           "column rows beyond the epoch's class count");
    (void)H;
    std::span<const CompactEntry> Entries = Data.rawEntries();
    std::span<const ClassId> Red = Data.rawRedPool();
    std::span<const BlueElement> Blue = Data.rawBluePool();
    putU32(Out, static_cast<uint32_t>(Entries.size()));
    putU32(Out, static_cast<uint32_t>(Red.size()));
    putU32(Out, static_cast<uint32_t>(Blue.size()));
    putU64(Out, Col->StructuralHash);
    Out.append(reinterpret_cast<const char *>(Entries.data()),
               Entries.size() * sizeof(CompactEntry));
    Out.append(reinterpret_cast<const char *>(Red.data()),
               Red.size() * sizeof(ClassId));
    Out.append(reinterpret_cast<const char *>(Blue.data()),
               Blue.size() * sizeof(BlueElement));
  }

  putU32(Out, static_cast<uint32_t>(MemberRefs.size()));
  for (uint32_t Ref : MemberRefs)
    putU32(Out, Ref);
  return Out;
}

//===----------------------------------------------------------------------===//
// Hierarchy replay
//===----------------------------------------------------------------------===//

/// Rebuilds the hierarchy by replaying the section through the public
/// construction API and finalize(), so loaded files pass exactly the
/// validation untrusted .mlk sources pass. On success the replayed
/// hierarchy's member-name order matches the save side (finalize()
/// derives it deterministically from class/declaration order).
Status replayHierarchy(ByteReader &R, uint32_t ExpectClasses,
                       uint32_t ExpectMembers,
                       const std::vector<std::string_view> &Strings,
                       const ResourceBudget &Budget, Hierarchy &Out) {
  uint32_t NumClasses = 0;
  if (!R.readU32(NumClasses))
    return malformed("hierarchy section truncated before class count");
  if (NumClasses != ExpectClasses)
    return malformed("hierarchy class count disagrees with the header");

  DiagnosticEngine Diags;
  Diags.setErrorLimit(static_cast<unsigned>(Budget.MaxErrorDiagnostics));

  struct PendingBase {
    uint32_t Derived, Base;
    uint8_t Kind, Access;
  };
  struct PendingMember {
    uint32_t Class, Name, UsingFrom;
    uint8_t Flags, Access;
  };
  std::vector<PendingBase> Bases;
  std::vector<PendingMember> Members;

  // Pass 1: create every class (ids match file order), queueing edges
  // and members so forward base references resolve.
  uint64_t TotalEdges = 0, TotalMembers = 0;
  for (uint32_t C = 0; C != NumClasses; ++C) {
    uint32_t NameRef = 0, NumBases = 0, NumMembers = 0;
    if (!R.readU32(NameRef) || !R.readU32(NumBases))
      return malformed("hierarchy section truncated in class record");
    if (NameRef >= Strings.size())
      return malformed("class name reference out of string-table range");
    ClassId Id = Out.createClass(Strings[NameRef], SourceLoc(), &Diags);
    if (!Id.isValid() || Id.index() != C)
      return malformed("duplicate class name in hierarchy section");

    TotalEdges += NumBases;
    if (TotalEdges > Budget.MaxEdges)
      return Status::error(ErrorCode::BudgetExceeded,
                           "snapshot hierarchy exceeds the edge budget");
    // Each base record is 6 bytes; reject impossible counts before
    // looping so a lying count cannot spin.
    if (NumBases > R.remaining() / 6)
      return malformed("hierarchy base count exceeds the section");
    for (uint32_t I = 0; I != NumBases; ++I) {
      PendingBase B{};
      B.Derived = C;
      if (!R.readU32(B.Base) || !R.readU8(B.Kind) || !R.readU8(B.Access))
        return malformed("hierarchy section truncated in base specifier");
      if (B.Base >= NumClasses)
        return malformed("base class index out of range");
      if (B.Kind > 1 || B.Access > 2)
        return malformed("base specifier with impossible kind or access");
      Bases.push_back(B);
    }

    if (!R.readU32(NumMembers))
      return malformed("hierarchy section truncated before member count");
    TotalMembers += NumMembers;
    if (TotalMembers > Budget.MaxMemberDecls)
      return Status::error(ErrorCode::BudgetExceeded,
                           "snapshot hierarchy exceeds the member budget");
    if (NumMembers > R.remaining() / 10) // 10 bytes per member record
      return malformed("hierarchy member count exceeds the section");
    for (uint32_t I = 0; I != NumMembers; ++I) {
      PendingMember M{};
      M.Class = C;
      if (!R.readU32(M.Name) || !R.readU8(M.Flags) || !R.readU8(M.Access) ||
          !R.readU32(M.UsingFrom))
        return malformed("hierarchy section truncated in member record");
      if (M.Name >= Strings.size())
        return malformed("member name reference out of string-table range");
      if (M.Flags > 3 || M.Access > 2)
        return malformed("member with impossible flags or access");
      if (M.UsingFrom != ClassId::InvalidValue) {
        if (M.UsingFrom >= NumClasses)
          return malformed("using-declaration target index out of range");
        if (M.Flags != 0)
          return malformed("using-declaration carrying member flags");
      }
      Members.push_back(M);
    }
  }
  if (Status S = consumeSectionPad(R, "hierarchy section"); !S.isOk())
    return S;

  // Pass 2: replay edges and members through the validating API.
  for (const PendingBase &B : Bases)
    if (!Out.addBase(ClassId(B.Derived), ClassId(B.Base),
                     static_cast<InheritanceKind>(B.Kind),
                     static_cast<AccessSpec>(B.Access), SourceLoc(), &Diags))
      return malformed("rejected base specifier: " +
                       (Diags.diagnostics().empty()
                            ? std::string("invalid edge")
                            : Diags.diagnostics().back().Message));
  for (const PendingMember &M : Members) {
    // The serializer never writes a name twice in one class (the
    // builder folds redeclarations), so a duplicate here is corruption;
    // replaying it would silently shrink the member count.
    if (Out.declaresMember(ClassId(M.Class), Out.findName(Strings[M.Name])))
      return malformed("duplicate member declaration in one class");
    if (M.UsingFrom != ClassId::InvalidValue)
      Out.addUsingDeclaration(ClassId(M.Class), ClassId(M.UsingFrom),
                              Strings[M.Name],
                              static_cast<AccessSpec>(M.Access), SourceLoc(),
                              &Diags);
    else
      Out.addMember(ClassId(M.Class), Strings[M.Name], (M.Flags & 1) != 0,
                    (M.Flags & 2) != 0, static_cast<AccessSpec>(M.Access),
                    SourceLoc(), &Diags);
  }

  if (!Out.finalize(Diags) || Diags.hasErrors()) {
    std::string Why = "hierarchy failed replay validation";
    for (const Diagnostic &D : Diags.diagnostics())
      if (D.Level == Severity::Error) {
        Why += ": " + D.Message;
        break;
      }
    return malformed(std::move(Why));
  }
  if (Out.allMemberNames().size() != ExpectMembers)
    return malformed("member-name count disagrees with the header");
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Column validation
//===----------------------------------------------------------------------===//

/// Definition 15's o composition, mirrored from the kernel (where it is
/// an implementation detail): crossing the direct edge Base -> Derived
/// keeps an existing leastVirtual, otherwise a virtual edge contributes
/// its base.
ClassId composeLeastVirtual(ClassId V, ClassId Base, InheritanceKind Kind) {
  if (V.isValid())
    return V;
  if (Kind == InheritanceKind::Virtual)
    return Base;
  return ClassId();
}

bool validClassRef(uint32_t Raw, uint32_t NumClasses) {
  return Raw == ClassId::InvalidValue || Raw < NumClasses;
}

/// The per-class direct-base and direct-derived lists flattened into
/// CSR arrays, built once per columns section. The validator walks an
/// edge list for nearly every entry of every column; chasing each
/// class's ClassInfo (a fat struct whose base list is a separate heap
/// vector) per row was a measurable slice of warm starts, while these
/// contiguous 8- and 4-byte records stay cache-resident across all
/// columns.
struct FlatEdges {
  struct Base {
    uint32_t Index;
    uint8_t Kind;   // InheritanceKind
    uint8_t Access; // AccessSpec
    uint16_t Unused = 0;
  };
  std::vector<Base> Bases;       ///< concatenated per-class base lists
  std::vector<uint32_t> BaseOff; ///< NumClasses + 1 offsets into Bases
  std::vector<uint32_t> Derived; ///< concatenated per-class derived lists
  std::vector<uint32_t> DerivedOff;

  explicit FlatEdges(const Hierarchy &H) {
    uint32_t N = H.numClasses();
    BaseOff.reserve(N + 1);
    DerivedOff.reserve(N + 1);
    for (uint32_t C = 0; C != N; ++C) {
      const Hierarchy::ClassInfo &Info = H.info(ClassId(C));
      BaseOff.push_back(static_cast<uint32_t>(Bases.size()));
      for (const BaseSpecifier &Spec : Info.DirectBases)
        Bases.push_back({Spec.Base.index(), static_cast<uint8_t>(Spec.Kind),
                         static_cast<uint8_t>(Spec.Access)});
      DerivedOff.push_back(static_cast<uint32_t>(Derived.size()));
      for (ClassId D : Info.DirectDerived)
        Derived.push_back(D.index());
    }
    BaseOff.push_back(static_cast<uint32_t>(Bases.size()));
    DerivedOff.push_back(static_cast<uint32_t>(Derived.size()));
  }
};

/// Rejects any column no run of the deterministic kernel could have
/// produced over \p H (restricted to the column's leading \p NumRows
/// classes). Beyond bounds safety, the Via-chain rules re-establish the
/// invariants entryToResult asserts, so reconstructing a witness from a
/// loaded column can neither loop nor assert-fail. As a side product of
/// the sweep, \p LocalRows collects the rows holding local declarations
/// (red with no Via) in ascending order - the member-reference pass
/// needs them, and a second full pass over the entries was a measurable
/// slice of warm starts. \p MergeRows collects the rows whose entry
/// records a static merge that happened *at* that row (flag newly set
/// or member set grown beyond the via base's); the member-reference
/// pass checks those against the member's staticness, which a column
/// alone cannot know. \p NonAbsentScratch is reused row storage for the
/// derived sweep below.
Status validateColumn(const FlatEdges &Edges,
                      std::span<const CompactEntry> Entries,
                      std::span<const ClassId> RedPool,
                      std::span<const BlueElement> BluePool,
                      std::vector<uint32_t> &LocalRows,
                      std::vector<uint32_t> &MergeRows,
                      std::vector<uint32_t> &NonAbsentScratch) {
  static const CompactEntry AbsentEntry{};
  uint32_t NumRows = static_cast<uint32_t>(Entries.size());
  auto Bad = [](uint32_t Row, const char *Why) {
    return malformed("column row " + std::to_string(Row) + ": " + Why);
  };

  // Direct bases of \p Row whose entries are inside this column's span
  // and non-absent - the edges that contributed a value when the kernel
  // computed the row. (A base beyond the span can only be a class added
  // after a shared column's epoch; sharing is only legal when such a
  // base contributes nothing.)
  auto countContributingBases = [&](uint32_t Row) {
    uint32_t Count = 0;
    for (uint32_t I = Edges.BaseOff[Row], End = Edges.BaseOff[Row + 1];
         I != End; ++I) {
      uint32_t B = Edges.Bases[I].Index;
      if (B < NumRows && Entries[B].kind() != EntryKind::Absent)
        ++Count;
    }
    return Count;
  };

  std::vector<uint32_t> &NonAbsentRows = NonAbsentScratch;
  NonAbsentRows.clear();

  for (uint32_t Row = 0; Row != NumRows; ++Row) {
    const CompactEntry &E = Entries[Row];
    if ((E.KindAndFlags & ~7u) != 0 || E.Reserved0 != 0 || E.Reserved1 != 0)
      return Bad(Row, "reserved bits set");

    switch (E.KindAndFlags & 3u) {
    case 0: { // Absent: exactly the all-default entry
      if (std::memcmp(&E, &AbsentEntry, sizeof(CompactEntry)) != 0)
        return Bad(Row, "absent entry with payload");
      break;
    }
    case 3:
      return Bad(Row, "impossible entry kind");

    case 2: { // Blue: only the pool reference is meaningful
      if (E.KindAndFlags != 2 || E.AccessByte != 0 ||
          E.DefiningClass.isValid() || E.RepresentativeV.isValid() ||
          E.Via.isValid())
        return Bad(Row, "blue entry with red payload");
      // An ambiguity is always inherited from somewhere.
      if (countContributingBases(Row) == 0)
        return Bad(Row, "blue entry with no inherited member");
      NonAbsentRows.push_back(Row);
      if (E.PoolCount == 0)
        return Bad(Row, "empty blue set");
      if (uint64_t(E.InlineOrOffset) + E.PoolCount > BluePool.size())
        return Bad(Row, "blue pool reference out of range");
      const BlueElement *Prev = nullptr;
      for (uint32_t I = 0; I != E.PoolCount; ++I) {
        const BlueElement &Elem = BluePool[E.InlineOrOffset + I];
        if (!validClassRef(Elem.LeastVirtual.rawValue(), NumRows) ||
            !Elem.DefiningClass.isValid() ||
            Elem.DefiningClass.index() >= NumRows)
          return Bad(Row, "blue element referencing an impossible class");
        if (Prev && !(*Prev < Elem))
          return Bad(Row, "blue set not sorted and unique");
        Prev = &Elem;
      }
      break;
    }

    case 1: { // Red
      NonAbsentRows.push_back(Row);
      if (E.AccessByte > 2)
        return Bad(Row, "impossible access");
      if (!E.DefiningClass.isValid() || E.DefiningClass.index() >= NumRows)
        return Bad(Row, "defining class out of range");

      if (E.PoolCount == 1) {
        return Bad(Row, "pooled red singleton (singletons are inlined)");
      } else if (E.PoolCount == 0) {
        if (!validClassRef(E.InlineOrOffset, NumRows))
          return Bad(Row, "inline red V out of range");
      } else {
        if (uint64_t(E.InlineOrOffset) + E.PoolCount > RedPool.size())
          return Bad(Row, "red pool reference out of range");
        uint32_t PrevRaw = 0;
        for (uint32_t I = 0; I != E.PoolCount; ++I) {
          uint32_t Raw = RedPool[E.InlineOrOffset + I].rawValue();
          if (!validClassRef(Raw, NumRows))
            return Bad(Row, "pooled red V out of range");
          if (I != 0 && Raw <= PrevRaw)
            return Bad(Row, "red member set not sorted and unique");
          PrevRaw = Raw;
        }
      }

      if (!E.Via.isValid()) {
        // Kernel line [12]: a local declaration. Everything else about
        // the entry is forced.
        if (E.DefiningClass.index() != Row || E.RepresentativeV.isValid() ||
            E.PoolCount != 0 || E.InlineOrOffset != ClassId::InvalidValue ||
            E.staticMerged())
          return Bad(Row, "local-declaration entry with inherited payload");
        LocalRows.push_back(Row);
        break;
      }

      // Inherited: the Via chain must follow genuine direct-base edges
      // (the CHG is acyclic, so chains terminate) through red entries
      // agreeing on the defining class, with leastVirtual and access
      // composed per Definition 15 / Section 6. Exactly the facts
      // entryToResult's asserts re-derive.
      if (E.Via.index() >= NumRows)
        return Bad(Row, "via link out of range");
      // One linear scan of the row's flattened base list yields the
      // edge's kind and access together. Hierarchies bound base lists
      // tightly (a handful per class), so this beats the finalized edge
      // index's two hash lookups per inherited entry - the former
      // validation hotspot on wide hierarchies.
      const FlatEdges::Base *Edge = nullptr;
      for (uint32_t I = Edges.BaseOff[Row], End = Edges.BaseOff[Row + 1];
           I != End; ++I)
        if (Edges.Bases[I].Index == E.Via.index()) {
          Edge = &Edges.Bases[I];
          break;
        }
      if (!Edge)
        return Bad(Row, "via link is not a direct base");
      auto EdgeKind = static_cast<InheritanceKind>(Edge->Kind);
      auto EdgeAccess = static_cast<AccessSpec>(Edge->Access);
      const CompactEntry &ViaE = Entries[E.Via.index()];
      if (ViaE.kind() != EntryKind::Red)
        return Bad(Row, "via chain through a non-red entry");
      if (ViaE.DefiningClass != E.DefiningClass)
        return Bad(Row, "via chain changes the defining class");
      if (E.RepresentativeV !=
          composeLeastVirtual(ViaE.RepresentativeV, E.Via, EdgeKind))
        return Bad(Row, "representative leastVirtual breaks composition");
      if (E.access() != restrictAccess(ViaE.access(), EdgeAccess))
        return Bad(Row, "access breaks witness-path composition");

      // The member set and the StaticMerged flag follow the kernel's
      // fold: the set starts as the via base's set composed across the
      // edge (Definition 15, the same o as the representative above)
      // and can only grow at a static merge, and the flag starts as
      // the via base's and can only be turned on (at a merge, which
      // needs a second contributing edge). Re-checking that here is
      // what makes the flag - which decides whether a result renders as
      // one shared static entity or a specific subobject - unforgeable.
      bool Grew = false;
      if (ViaE.PoolCount == 0 && E.PoolCount == 0) {
        // Singleton through singleton, by far the common case: the set
        // must be exactly the composed one.
        if (E.InlineOrOffset !=
            composeLeastVirtual(ClassId(ViaE.InlineOrOffset), E.Via, EdgeKind)
                .rawValue())
          return Bad(Row, "member set drops an inherited member");
      } else {
        uint32_t ViaPool = ViaE.PoolCount;
        if (ViaPool != 0 &&
            uint64_t(ViaE.InlineOrOffset) + ViaPool > RedPool.size())
          return Bad(Row, "via entry's red pool reference out of range");
        uint32_t ComposedBuf[8];
        std::vector<uint32_t> ComposedHeap;
        uint32_t ViaCount = ViaPool == 0 ? 1 : ViaPool;
        uint32_t *Composed = ComposedBuf;
        if (ViaCount > 8) {
          ComposedHeap.resize(ViaCount);
          Composed = ComposedHeap.data();
        }
        for (uint32_t I = 0; I != ViaCount; ++I) {
          ClassId V = ViaPool == 0 ? ClassId(ViaE.InlineOrOffset)
                                   : RedPool[ViaE.InlineOrOffset + I];
          Composed[I] = composeLeastVirtual(V, E.Via, EdgeKind).rawValue();
        }
        std::sort(Composed, Composed + ViaCount);
        ViaCount = static_cast<uint32_t>(
            std::unique(Composed, Composed + ViaCount) - Composed);
        // E's own set, already checked sorted-and-unique above, must
        // contain every composed member.
        auto OwnV = [&](uint32_t I) {
          return E.PoolCount == 0 ? E.InlineOrOffset
                                  : RedPool[E.InlineOrOffset + I].rawValue();
        };
        uint32_t OwnCount = E.PoolCount == 0 ? 1 : E.PoolCount;
        uint32_t OwnIdx = 0;
        for (uint32_t I = 0; I != ViaCount; ++I) {
          while (OwnIdx != OwnCount && OwnV(OwnIdx) < Composed[I])
            ++OwnIdx;
          if (OwnIdx == OwnCount || OwnV(OwnIdx) != Composed[I])
            return Bad(Row, "member set drops an inherited member");
        }
        Grew = OwnCount > ViaCount;
      }
      if (ViaE.staticMerged() && !E.staticMerged())
        return Bad(Row, "static-merge flag dropped along the via chain");
      if (Grew && !E.staticMerged())
        return Bad(Row, "member set grew without a static merge");
      bool MergedHere = E.staticMerged() && !ViaE.staticMerged();
      if (Grew || MergedHere) {
        if (countContributingBases(Row) < 2)
          return Bad(Row, "static merge with a single incoming edge");
        MergeRows.push_back(Row);
      }
      break;
    }
    }
  }

  // Lookup never loses a member on the way down: a row may be absent
  // only if every contributing base is absent too. (A blue entry's
  // class ids are already all-invalid, so zeroing its pool reference
  // and kind forges a byte-perfect absent entry; this is the check
  // that catches it.) Sweeping the derived lists of the non-absent
  // rows checks the same property in time proportional to the members
  // actually present, instead of walking the base list of every
  // (mostly absent) row.
  for (uint32_t Row : NonAbsentRows)
    for (uint32_t I = Edges.DerivedOff[Row], End = Edges.DerivedOff[Row + 1];
         I != End; ++I) {
      uint32_t D = Edges.Derived[I];
      if (D < NumRows && Entries[D].kind() == EntryKind::Absent)
        return Bad(D, "absent entry but a direct base has the member");
    }
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Column section parsing
//===----------------------------------------------------------------------===//

/// Parses the columns section from \p Section. When \p Arena is non-null
/// and the section sits at entry alignment (every in-section payload
/// offset is a multiple of four by construction, so the base settles it),
/// the columns *borrow* their entry and pool storage straight out of the
/// file buffer - the dominant cost of a warm start used to be copying
/// these bytes into freshly zeroed vectors. \p Arena keeps the buffer
/// alive for as long as any borrowed column does. A null or misaligned
/// arena falls back to owned copies, bit-identical behavior.
Status parseColumns(std::string_view Section, std::shared_ptr<const void> Arena,
                    const Hierarchy &H, uint32_t NumMembers,
                    uint32_t HierarchyCrc,
                    std::vector<std::shared_ptr<const Column>> &Out) {
  ByteReader R(Section);
  uint32_t NumClasses = H.numClasses();
  bool Borrow = Arena != nullptr &&
                reinterpret_cast<uintptr_t>(Section.data()) %
                        alignof(CompactEntry) ==
                    0;

  // The table must have been tabulated over *these* hierarchy bytes. The
  // binding is stored inside the columns payload (under its own CRC), so
  // recomputing the section-table checksums after editing the hierarchy
  // does not re-establish it.
  uint32_t StoredBinding = 0;
  if (!R.readU32(StoredBinding))
    return malformed("columns section truncated before the hierarchy binding");
  if (StoredBinding != HierarchyCrc)
    return malformed("columns were tabulated over a different hierarchy");

  uint32_t DistinctCount = 0;
  if (!R.readU32(DistinctCount))
    return malformed("columns section truncated before column count");
  // Every stored column must be referenced by some member, so more
  // distinct columns than members is impossible; this also caps the
  // upcoming allocations.
  if (DistinctCount > NumMembers)
    return malformed("more distinct columns than member names");

  std::vector<std::shared_ptr<const Column>> Distinct;
  std::vector<std::vector<uint32_t>> LocalRows(DistinctCount);
  std::vector<std::vector<uint32_t>> MergeRows(DistinctCount);
  FlatEdges Edges(H);
  std::vector<uint32_t> NonAbsentScratch;
  Distinct.reserve(DistinctCount);
  for (uint32_t D = 0; D != DistinctCount; ++D) {
    uint32_t NumRows = 0, RedLen = 0, BlueLen = 0;
    uint64_t StoredHash = 0;
    if (!R.readU32(NumRows) || !R.readU32(RedLen) || !R.readU32(BlueLen) ||
        !R.readU64(StoredHash))
      return malformed("columns section truncated in column header");
    // Incremental rewarm shares columns spanning an older (never a
    // larger) epoch; resultFor answers NotFound beyond the span.
    if (NumRows > NumClasses)
      return malformed("column spans more rows than the hierarchy");

    uint64_t NeedBytes = uint64_t(NumRows) * sizeof(CompactEntry) +
                         uint64_t(RedLen) * sizeof(ClassId) +
                         uint64_t(BlueLen) * sizeof(BlueElement);
    if (NeedBytes > R.remaining())
      return malformed("column payload exceeds the section");

    std::span<const CompactEntry> Entries;
    std::span<const ClassId> RedPool;
    std::span<const BlueElement> BluePool;
    std::vector<CompactEntry> OwnedEntries;
    std::vector<ClassId> OwnedRed;
    std::vector<BlueElement> OwnedBlue;
    if (Borrow) {
      // All three types are trivially-copyable PODs with
      // unique object representations; reinterpreting the checksummed
      // file bytes as them is exactly what the copy below would produce.
      std::string_view EV, RV, BV;
      if (!R.readView(EV, uint64_t(NumRows) * sizeof(CompactEntry)) ||
          !R.readView(RV, uint64_t(RedLen) * sizeof(ClassId)) ||
          !R.readView(BV, uint64_t(BlueLen) * sizeof(BlueElement)))
        return malformed("columns section truncated in column payload");
      Entries = {reinterpret_cast<const CompactEntry *>(EV.data()), NumRows};
      RedPool = {reinterpret_cast<const ClassId *>(RV.data()), RedLen};
      BluePool = {reinterpret_cast<const BlueElement *>(BV.data()), BlueLen};
    } else {
      OwnedEntries.resize(NumRows);
      OwnedRed.resize(RedLen);
      OwnedBlue.resize(BlueLen);
      bool ReadOk =
          R.readBytes(OwnedEntries.data(), NumRows * sizeof(CompactEntry)) &&
          R.readBytes(OwnedRed.data(), RedLen * sizeof(ClassId)) &&
          R.readBytes(OwnedBlue.data(), BlueLen * sizeof(BlueElement));
      if (!ReadOk)
        return malformed("columns section truncated in column payload");
      Entries = OwnedEntries;
      RedPool = OwnedRed;
      BluePool = OwnedBlue;
    }

    // The sweep also collects where this column claims local
    // declarations (kernel line [12] rows); the member-reference pass
    // below holds every member that adopts the column to exactly those
    // declaration sites.
    if (Status S = validateColumn(Edges, Entries, RedPool, BluePool,
                                  LocalRows[D], MergeRows[D], NonAbsentScratch);
        !S.isOk())
      return S;

    auto Col = std::make_shared<Column>();
    Col->Data = Borrow ? CompactColumn::fromBorrowed(Arena, Entries, RedPool,
                                                     BluePool)
                       : CompactColumn::fromRaw(std::move(OwnedEntries),
                                                std::move(OwnedRed),
                                                std::move(OwnedBlue));
    // The stored hash is adopted as-is: it sits under the section CRC,
    // so accidental corruption cannot reach here, and a deliberately
    // resealed wrong hash is harmless because structural dedup treats
    // the hash as a bucket key and byte-compares columns before ever
    // aliasing them (Snapshot.cpp) - the worst a forged hash can do is
    // cost a future rewarm some sharing. Recomputing it here would add
    // a full pass over the table and was a measurable slice of warm
    // starts.
    Col->StructuralHash = StoredHash;
    Col->Computed = BitVector(NumRows);
    Col->Computed.setAll();
    Col->Complete = true;
    Distinct.push_back(std::move(Col));
  }

  uint32_t RefCount = 0;
  if (!R.readU32(RefCount))
    return malformed("columns section truncated before member references");
  if (RefCount != NumMembers)
    return malformed("member reference count disagrees with the header");

  // Declaration sites per member name, ascending (classes are scanned in
  // id order). A column is correct for a member only if its local rows
  // are exactly the member's declaration sites - kernel line [12] fires
  // iff the class declares the member, and inherited candidates always
  // carry a valid Via. This pins every reference to its member, so a
  // corrupted reference cannot quietly hand one member another member's
  // (individually well-formed) column.
  std::unordered_map<uint32_t, std::vector<uint32_t>> DeclSites;
  for (uint32_t C = 0; C != NumClasses; ++C)
    for (const MemberDecl &M : H.info(ClassId(C)).Members)
      DeclSites[M.Name.rawValue()].push_back(C);

  std::vector<bool> Referenced(DistinctCount, false);
  Out.reserve(RefCount);
  for (uint32_t I = 0; I != RefCount; ++I) {
    uint32_t Ref = 0;
    if (!R.readU32(Ref))
      return malformed("columns section truncated in member references");
    if (Ref >= DistinctCount)
      return malformed("member references a nonexistent column");

    Symbol Member = H.allMemberNames()[I];
    auto SitesIt = DeclSites.find(Member.rawValue());
    const std::vector<uint32_t> Empty;
    const std::vector<uint32_t> &Sites =
        SitesIt != DeclSites.end() ? SitesIt->second : Empty;
    // Restrict to the column's span: rewarm-shared columns may stop
    // short of declaration sites in newer classes.
    uint32_t Span = static_cast<uint32_t>(Distinct[Ref]->numRows());
    auto SitesEnd =
        std::lower_bound(Sites.begin(), Sites.end(), Span);
    const std::vector<uint32_t> &Local = LocalRows[Ref];
    if (!std::equal(Sites.begin(), SitesEnd, Local.begin(), Local.end()))
      return malformed("column's local declarations disagree with member '" +
                       std::string(H.spelling(Member)) +
                       "' declaration sites");
    // A static merge is only possible for a member declared static in
    // the entry's defining class (Definition 17(2)); the column sweep
    // could not check that without knowing the member.
    for (uint32_t MergeRow : MergeRows[Ref]) {
      const CompactEntry &E = Distinct[Ref]->Data[MergeRow];
      const MemberDecl *Decl = H.declaredMember(E.DefiningClass, Member);
      if (!Decl || !Decl->IsStatic)
        return malformed("static merge on the non-static member '" +
                         std::string(H.spelling(Member)) + "'");
    }

    Referenced[Ref] = true;
    Out.push_back(Distinct[Ref]);
  }
  for (uint32_t D = 0; D != DistinctCount; ++D)
    if (!Referenced[D])
      return malformed("stored column referenced by no member");
  return consumeSectionPad(R, "columns section");
}

//===----------------------------------------------------------------------===//
// Header / section-table parsing (shared by load and introspection)
//===----------------------------------------------------------------------===//

struct ParsedHeader {
  uint64_t Epoch = 0;
  uint32_t NumClasses = 0;
  uint32_t NumMembers = 0;
  uint32_t Flags = 0;
  std::vector<SnapshotSectionInfo> Sections;
  size_t PayloadStart = 0; // end of header crc
};

/// Parses geometry only; \p VerifyCrcs additionally checks the header
/// CRC (section payload CRCs are the caller's job, so introspection and
/// resealing can work on deliberately corrupted payloads).
Status parseHeader(std::string_view Bytes, bool VerifyCrcs, ParsedHeader &Out) {
  ByteReader R(Bytes);
  char FileMagic[8];
  uint32_t Version = 0, SectionCount = 0;
  if (!R.readBytes(FileMagic, sizeof(FileMagic)))
    return malformed("file shorter than the magic");
  if (std::memcmp(FileMagic, Magic, sizeof(Magic)) != 0)
    return Status::error(ErrorCode::SnapshotVersionMismatch,
                         "not a memlook snapshot (bad magic)");
  if (!R.readU32(Version))
    return malformed("file truncated before the version");
  if (Version != SnapshotFormatVersion)
    return Status::error(ErrorCode::SnapshotVersionMismatch,
                         "snapshot format version " + std::to_string(Version) +
                             " (this build reads " +
                             std::to_string(SnapshotFormatVersion) + ")");
  if (!R.readU64(Out.Epoch) || !R.readU32(Out.NumClasses) ||
      !R.readU32(Out.NumMembers) || !R.readU32(Out.Flags) ||
      !R.readU32(SectionCount))
    return malformed("file truncated inside the fixed header");
  if ((Out.Flags & ~FlagHasTable) != 0)
    return malformed("unknown header flags");
  uint32_t ExpectSections = 2 + ((Out.Flags & FlagHasTable) ? 1 : 0);
  if (SectionCount != ExpectSections)
    return malformed("section count disagrees with the header flags");

  size_t HeaderBytes = FixedHeaderBytes + size_t(SectionCount) * SectionEntryBytes;
  if (Bytes.size() < HeaderBytes + sizeof(uint32_t))
    return malformed("file truncated inside the section table");

  const uint32_t ExpectedKinds[3] = {SectionStrings, SectionHierarchy,
                                     SectionColumns};
  uint64_t PrevEnd = HeaderBytes + sizeof(uint32_t);
  for (uint32_t I = 0; I != SectionCount; ++I) {
    SnapshotSectionInfo Info;
    if (!R.readU32(Info.Kind) || !R.readU32(Info.StoredCrc) ||
        !R.readU64(Info.Offset) || !R.readU64(Info.Size))
      return malformed("file truncated inside the section table");
    if (Info.Kind != ExpectedKinds[I])
      return malformed("unexpected section kind or order");
    if (Info.Size > Bytes.size() || Info.Offset > Bytes.size() - Info.Size)
      return malformed("section extends past the end of the file");
    // Writers zero-pad every payload to eight bytes; with the 8-aligned
    // header region this keeps all section bases aligned enough for the
    // loader to borrow typed spans out of the buffer.
    if (Info.Size % 8 != 0)
      return malformed("section size is not a multiple of eight");
    // Sections are contiguous and packed: with the final-end check below
    // this puts every byte of the file under exactly one CRC, so no
    // mutation can hide in a gap.
    if (Info.Offset != PrevEnd)
      return malformed("section payloads are not contiguous");
    PrevEnd = Info.Offset + Info.Size;
    Out.Sections.push_back(Info);
  }
  if (PrevEnd != Bytes.size())
    return malformed("trailing bytes after the last section");
  Out.PayloadStart = HeaderBytes + sizeof(uint32_t);

  if (VerifyCrcs) {
    uint32_t StoredHeaderCrc = 0;
    std::memcpy(&StoredHeaderCrc, Bytes.data() + HeaderBytes,
                sizeof(StoredHeaderCrc));
    if (crc32c(Bytes.substr(0, HeaderBytes)) != StoredHeaderCrc)
      return Status::error(ErrorCode::SnapshotChecksumMismatch,
                           "header checksum mismatch");
  }
  return Status::ok();
}

std::string_view sectionBytes(std::string_view Bytes,
                              const SnapshotSectionInfo &Info) {
  return Bytes.substr(Info.Offset, Info.Size);
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

std::string memlook::service::serializeSnapshot(uint64_t Epoch,
                                                const Hierarchy &H,
                                                const LookupTable *Table) {
  assert(H.isFinalized() && "snapshots hold finalized hierarchies");

  StringTableBuilder Strings;
  std::string HierarchyPayload = serializeHierarchy(H, Strings);
  // Pad before computing the columns binding: the binding must equal the
  // hierarchy section's table CRC, which covers the pad.
  padSectionTo8(HierarchyPayload);
  std::string ColumnsPayload;
  if (Table) {
    ColumnsPayload = serializeColumns(H, *Table, crc32c(HierarchyPayload));
    padSectionTo8(ColumnsPayload);
  }
  std::string StringsPayload = Strings.payload();
  padSectionTo8(StringsPayload);

  struct Pending {
    uint32_t Kind;
    const std::string *Payload;
  };
  std::vector<Pending> Sections = {{SectionStrings, &StringsPayload},
                                   {SectionHierarchy, &HierarchyPayload}};
  if (Table)
    Sections.push_back({SectionColumns, &ColumnsPayload});

  size_t HeaderBytes =
      FixedHeaderBytes + Sections.size() * SectionEntryBytes;
  std::string Out;
  Out.reserve(HeaderBytes + sizeof(uint32_t) + StringsPayload.size() +
              HierarchyPayload.size() + ColumnsPayload.size());

  Out.append(Magic, sizeof(Magic));
  putU32(Out, SnapshotFormatVersion);
  putU64(Out, Epoch);
  putU32(Out, H.numClasses());
  putU32(Out, static_cast<uint32_t>(H.allMemberNames().size()));
  putU32(Out, Table ? FlagHasTable : 0);
  putU32(Out, static_cast<uint32_t>(Sections.size()));

  uint64_t Offset = HeaderBytes + sizeof(uint32_t);
  for (const Pending &S : Sections) {
    putU32(Out, S.Kind);
    putU32(Out, crc32c(*S.Payload));
    putU64(Out, Offset);
    putU64(Out, S.Payload->size());
    Offset += S.Payload->size();
  }
  putU32(Out, crc32c(std::string_view(Out))); // header crc

  for (const Pending &S : Sections)
    Out.append(*S.Payload);
  return Out;
}

std::string memlook::service::serializeSnapshot(const Snapshot &Snap) {
  return serializeSnapshot(Snap.Epoch, *Snap.H,
                           Snap.warm() ? Snap.Table.get() : nullptr);
}

Expected<SnapshotPayload>
memlook::service::deserializeSnapshot(std::shared_ptr<const std::string> Bytes,
                                      const ResourceBudget &Budget) {
  if (!Bytes)
    return malformed("null snapshot buffer");
  std::string_view View(*Bytes);

  ParsedHeader Header;
  if (Status S = parseHeader(View, /*VerifyCrcs=*/true, Header); !S.isOk())
    return S;
  if (Header.NumClasses > Budget.MaxClasses)
    return Status::error(ErrorCode::BudgetExceeded,
                         "snapshot hierarchy exceeds the class budget");
  if (Header.NumMembers > Budget.MaxMemberDecls)
    return Status::error(ErrorCode::BudgetExceeded,
                         "snapshot hierarchy exceeds the member budget");

  for (const SnapshotSectionInfo &Info : Header.Sections)
    if (crc32c(sectionBytes(View, Info)) != Info.StoredCrc)
      return Status::error(ErrorCode::SnapshotChecksumMismatch,
                           "section " + std::to_string(Info.Kind) +
                               " checksum mismatch");

  // Strings: zero-copy views into the (checksummed) input buffer; they
  // only live until the hierarchy replay copies what it keeps.
  std::vector<std::string_view> Strings;
  {
    ByteReader R(sectionBytes(View, Header.Sections[0]));
    uint32_t Count = 0;
    if (!R.readU32(Count))
      return malformed("string table truncated before its count");
    if (Count > R.remaining() / sizeof(uint32_t))
      return malformed("string count exceeds the section");
    Strings.reserve(Count);
    for (uint32_t I = 0; I != Count; ++I) {
      uint32_t Len = 0;
      std::string_view S;
      if (!R.readU32(Len) || !R.readView(S, Len))
        return malformed("string table truncated in string " +
                         std::to_string(I));
      Strings.push_back(S);
    }
    if (Status S = consumeSectionPad(R, "string table"); !S.isOk())
      return S;
  }

  SnapshotPayload Payload;
  Payload.Epoch = Header.Epoch;
  auto H = std::make_shared<Hierarchy>();
  {
    ByteReader R(sectionBytes(View, Header.Sections[1]));
    if (Status S = replayHierarchy(R, Header.NumClasses, Header.NumMembers,
                                   Strings, Budget, *H);
        !S.isOk())
      return S;
  }

  if ((Header.Flags & FlagHasTable) != 0) {
    std::vector<std::shared_ptr<const Column>> Columns;
    // The section CRCs were verified above, so the hierarchy section's
    // stored CRC is the CRC of the bytes the hierarchy was replayed from.
    // Columns borrow their storage from the buffer, pinned by Bytes.
    if (Status S = parseColumns(sectionBytes(View, Header.Sections[2]), Bytes,
                                *H, Header.NumMembers,
                                Header.Sections[1].StoredCrc, Columns);
        !S.isOk())
      return S;
    Payload.Table = LookupTable::fromColumns(*H, std::move(Columns));
  }
  Payload.H = std::move(H);
  return Payload;
}

Expected<SnapshotPayload>
memlook::service::deserializeSnapshot(std::string_view Bytes,
                                      const ResourceBudget &Budget) {
  // One up-front copy pins the bytes in an arena the columns can borrow
  // from; that single large memcpy is far cheaper than the per-column
  // zeroed-vector copies it replaces.
  return deserializeSnapshot(std::make_shared<const std::string>(Bytes),
                             Budget);
}

Status memlook::service::writeSnapshotFile(const std::string &Path,
                                           const Snapshot &Snap) {
  return writeFileAtomic(Path, serializeSnapshot(Snap));
}

Expected<SnapshotPayload>
memlook::service::readSnapshotFile(const std::string &Path,
                                   const ResourceBudget &Budget,
                                   uint64_t MaxFileBytes) {
  Expected<std::string> Bytes = readFileCapped(Path, MaxFileBytes);
  if (!Bytes)
    return Bytes.status();
  // Hand the file buffer over as the arena the loaded columns borrow
  // from - a warm start never copies the column bytes at all.
  return deserializeSnapshot(
      std::make_shared<const std::string>(std::move(*Bytes)), Budget);
}

Expected<std::vector<SnapshotSectionInfo>>
memlook::service::inspectSnapshotSections(std::string_view Bytes) {
  ParsedHeader Header;
  if (Status S = parseHeader(Bytes, /*VerifyCrcs=*/false, Header); !S.isOk())
    return S;
  return Header.Sections;
}

Status memlook::service::resealSnapshotChecksums(std::string &Bytes) {
  ParsedHeader Header;
  if (Status S = parseHeader(Bytes, /*VerifyCrcs=*/false, Header); !S.isOk())
    return S;

  for (size_t I = 0; I != Header.Sections.size(); ++I) {
    const SnapshotSectionInfo &Info = Header.Sections[I];
    uint32_t Crc = crc32c(std::string_view(Bytes).substr(Info.Offset,
                                                        Info.Size));
    // Crc field sits 4 bytes into the section-table entry.
    patchU32(Bytes, FixedHeaderBytes + I * SectionEntryBytes + 4, Crc);
  }
  size_t HeaderBytes =
      FixedHeaderBytes + Header.Sections.size() * SectionEntryBytes;
  patchU32(Bytes, HeaderBytes, crc32c(std::string_view(Bytes).substr(0, HeaderBytes)));
  return Status::ok();
}
