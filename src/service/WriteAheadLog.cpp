//===- WriteAheadLog.cpp - Durable commit log --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/WriteAheadLog.h"

#include "memlook/support/AtomicFile.h"
#include "memlook/support/CrashPoint.h"
#include "memlook/support/Crc32.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace memlook;
using namespace memlook::service;

namespace {

// "WAL1" read as a little-endian u32.
constexpr uint32_t WalMagic = 0x314C4157u;
constexpr uint32_t WalFormatVersion = 1;
constexpr uint32_t KindBase = 1;
constexpr uint32_t KindTxn = 2;
constexpr size_t HeaderSize = 28;
// Header layout offsets (see the format comment in the header file).
constexpr size_t OffMagic = 0;
constexpr size_t OffKind = 4;
constexpr size_t OffEpoch = 8;
constexpr size_t OffPayloadSize = 16;
constexpr size_t OffPayloadCrc = 20;
constexpr size_t OffHeaderCrc = 24;

void putU32(std::string &Out, uint32_t V) {
  char B[4];
  std::memcpy(B, &V, 4);
  Out.append(B, 4);
}

void putU64(std::string &Out, uint64_t V) {
  char B[8];
  std::memcpy(B, &V, 8);
  Out.append(B, 8);
}

uint32_t loadU32(const char *P) {
  uint32_t V;
  std::memcpy(&V, P, 4);
  return V;
}

uint64_t loadU64(const char *P) {
  uint64_t V;
  std::memcpy(&V, P, 8);
  return V;
}

void storeU32(char *P, uint32_t V) { std::memcpy(P, &V, 4); }

/// Bounds-checked cursor over an untrusted payload.
struct Reader {
  const char *P;
  size_t Size;
  size_t Off = 0;

  bool u8(uint8_t &V) {
    if (Size - Off < 1)
      return false;
    V = static_cast<uint8_t>(P[Off++]);
    return true;
  }
  bool u32(uint32_t &V) {
    if (Size - Off < 4)
      return false;
    V = loadU32(P + Off);
    Off += 4;
    return true;
  }
  bool str(std::string &V) {
    uint32_t Len;
    if (!u32(Len) || Size - Off < Len)
      return false;
    V.assign(P + Off, Len);
    Off += Len;
    return true;
  }
};

void encodeOps(std::string &Out, const std::vector<Transaction::Op> &Ops) {
  putU32(Out, static_cast<uint32_t>(Ops.size()));
  for (const Transaction::Op &Op : Ops) {
    Out.push_back(static_cast<char>(Op.Kind));
    Out.push_back(static_cast<char>(Op.EdgeKind));
    Out.push_back(static_cast<char>(Op.Access));
    Out.push_back(static_cast<char>((Op.IsStatic ? 1 : 0) |
                                    (Op.IsVirtual ? 2 : 0)));
    putU32(Out, static_cast<uint32_t>(Op.Class.size()));
    Out.append(Op.Class);
    putU32(Out, static_cast<uint32_t>(Op.Target.size()));
    Out.append(Op.Target);
    putU32(Out, static_cast<uint32_t>(Op.Member.size()));
    Out.append(Op.Member);
  }
}

/// Decodes a transaction payload. False on any bounds or range failure:
/// a CRC-valid payload that does not decode is corruption (or an
/// adversarial reseal), never a torn tail.
bool decodeOps(std::string_view Payload, std::vector<Transaction::Op> &Ops) {
  Reader R{Payload.data(), Payload.size()};
  uint32_t Count;
  if (!R.u32(Count))
    return false;
  // Each op occupies at least 4 flag bytes + three 4-byte lengths; an
  // honest count can never exceed what the payload could hold.
  if (Count > (Payload.size() - R.Off) / 16)
    return false;
  Ops.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    uint8_t Kind, Edge, Access, Flags;
    if (!R.u8(Kind) || !R.u8(Edge) || !R.u8(Access) || !R.u8(Flags))
      return false;
    if (Kind > static_cast<uint8_t>(Transaction::OpKind::AddUsing) ||
        Edge > static_cast<uint8_t>(InheritanceKind::Virtual) ||
        Access > static_cast<uint8_t>(AccessSpec::Private) || Flags > 3)
      return false;
    Transaction::Op Op;
    Op.Kind = static_cast<Transaction::OpKind>(Kind);
    Op.EdgeKind = static_cast<InheritanceKind>(Edge);
    Op.Access = static_cast<AccessSpec>(Access);
    Op.IsStatic = (Flags & 1) != 0;
    Op.IsVirtual = (Flags & 2) != 0;
    if (!R.str(Op.Class) || !R.str(Op.Target) || !R.str(Op.Member))
      return false;
    Ops.push_back(std::move(Op));
  }
  // Trailing bytes inside a CRC-valid payload were never written by the
  // encoder.
  return R.Off == Payload.size();
}

std::string frameRecord(uint32_t Kind, uint64_t Epoch,
                        std::string_view Payload) {
  std::string Out;
  Out.reserve(HeaderSize + Payload.size());
  putU32(Out, WalMagic);
  putU32(Out, Kind);
  putU64(Out, Epoch);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32c(Payload.data(), Payload.size()));
  putU32(Out, crc32c(Out.data(), OffHeaderCrc));
  Out.append(Payload);
  return Out;
}

Status walError(ErrorCode Code, std::string Msg) {
  return Status::error(Code, std::move(Msg));
}

Status walIo(const char *Step, const std::string &Path, int Err) {
  return Status::error(ErrorCode::WalIoError, std::string(Step) + " '" + Path +
                                                  "': " + std::strerror(Err));
}

} // namespace

uint32_t memlook::service::hierarchyFingerprint(const Hierarchy &H) {
  // Canonical structural stream in id order. Lengths are folded in so
  // adjacent strings cannot alias ("ab","c" vs "a","bc"); ids are
  // deterministic for a given construction sequence, which is the only
  // lineage the fingerprint is ever compared across.
  uint32_t C = crc32c(nullptr, 0);
  char Buf[16];
  auto foldU32 = [&](uint32_t V) {
    std::memcpy(Buf, &V, 4);
    C = crc32c(Buf, 4, C);
  };
  auto foldStr = [&](std::string_view S) {
    foldU32(static_cast<uint32_t>(S.size()));
    C = crc32c(S.data(), S.size(), C);
  };
  foldU32(H.numClasses());
  for (uint32_t I = 0; I != H.numClasses(); ++I) {
    ClassId Id(I);
    const Hierarchy::ClassInfo &Info = H.info(Id);
    foldStr(H.className(Id));
    foldU32(static_cast<uint32_t>(Info.DirectBases.size()));
    for (const BaseSpecifier &B : Info.DirectBases) {
      foldStr(H.className(B.Base));
      foldU32(static_cast<uint32_t>(B.Kind));
      foldU32(static_cast<uint32_t>(B.Access));
    }
    foldU32(static_cast<uint32_t>(Info.Members.size()));
    for (const MemberDecl &M : Info.Members) {
      foldStr(H.spelling(M.Name));
      foldU32(static_cast<uint32_t>(M.Access) | (M.IsStatic ? 0x100u : 0) |
              (M.IsVirtual ? 0x200u : 0));
      foldStr(M.UsingFrom.isValid() ? H.className(M.UsingFrom)
                                    : std::string_view());
    }
  }
  return C;
}

std::string memlook::service::encodeWalBaseRecord(uint64_t BaseEpoch,
                                                  uint32_t Fingerprint) {
  std::string Payload;
  putU32(Payload, WalFormatVersion);
  putU32(Payload, Fingerprint);
  return frameRecord(KindBase, BaseEpoch, Payload);
}

std::string
memlook::service::encodeWalTxnRecord(uint64_t Epoch,
                                     const std::vector<Transaction::Op> &Ops) {
  std::string Payload;
  encodeOps(Payload, Ops);
  return frameRecord(KindTxn, Epoch, Payload);
}

WalSalvage memlook::service::salvageWalBytes(std::string_view Bytes) {
  WalSalvage S;
  size_t Off = 0;
  bool First = true;
  while (Off < Bytes.size()) {
    size_t Remaining = Bytes.size() - Off;
    if (Remaining < HeaderSize) {
      // Fewer bytes than a header: only an interrupted append leaves
      // this, and only at the very end of the file.
      S.TornBytesDropped = Remaining;
      break;
    }
    const char *H = Bytes.data() + Off;
    uint32_t HeaderCrc = loadU32(H + OffHeaderCrc);
    if (crc32c(H, OffHeaderCrc) != HeaderCrc) {
      // A torn append leaves a short suffix, handled above; a full
      // header's worth of bytes with a bad CRC is interior damage.
      S.Error = walError(ErrorCode::WalCorrupt,
                         "record header CRC mismatch at offset " +
                             std::to_string(Off));
      break;
    }
    uint32_t Magic = loadU32(H + OffMagic);
    uint32_t Kind = loadU32(H + OffKind);
    uint64_t Epoch = loadU64(H + OffEpoch);
    uint32_t PayloadSize = loadU32(H + OffPayloadSize);
    uint32_t PayloadCrc = loadU32(H + OffPayloadCrc);
    if (Magic != WalMagic) {
      S.Error = walError(ErrorCode::WalCorrupt,
                         "bad record magic at offset " + std::to_string(Off));
      break;
    }
    if (Kind != KindBase && Kind != KindTxn) {
      S.Error = walError(ErrorCode::WalCorrupt,
                         "unknown record kind " + std::to_string(Kind) +
                             " at offset " + std::to_string(Off));
      break;
    }
    if (PayloadSize > WriteAheadLog::MaxRecordPayloadBytes) {
      // The writer never emits a payload this large, so the length
      // cannot be the honest prefix of a torn append.
      S.Error = walError(ErrorCode::WalCorrupt,
                         "impossible payload length " +
                             std::to_string(PayloadSize) + " at offset " +
                             std::to_string(Off));
      break;
    }
    if (Remaining < HeaderSize + PayloadSize) {
      // Valid header, short payload: the torn tail of the final append.
      S.TornBytesDropped = Remaining;
      break;
    }
    std::string_view Payload = Bytes.substr(Off + HeaderSize, PayloadSize);
    if (crc32c(Payload.data(), Payload.size()) != PayloadCrc) {
      S.Error = walError(ErrorCode::WalCorrupt,
                         "payload CRC mismatch at offset " +
                             std::to_string(Off));
      break;
    }
    if (First) {
      if (Kind != KindBase) {
        S.Error = walError(ErrorCode::WalCorrupt,
                           "log does not begin with a base record");
        break;
      }
      Reader R{Payload.data(), Payload.size()};
      uint32_t Version, Fingerprint;
      if (!R.u32(Version) || !R.u32(Fingerprint) || R.Off != Payload.size()) {
        S.Error =
            walError(ErrorCode::WalCorrupt, "malformed base record payload");
        break;
      }
      if (Version != WalFormatVersion) {
        S.Error = walError(ErrorCode::WalCorrupt,
                           "unsupported log format version " +
                               std::to_string(Version));
        break;
      }
      S.HasBase = true;
      S.BaseEpoch = Epoch;
      S.BaseFingerprint = Fingerprint;
    } else {
      if (Kind == KindBase) {
        S.Error = walError(ErrorCode::WalCorrupt,
                           "base record not first, at offset " +
                               std::to_string(Off));
        break;
      }
      uint64_t Expected = S.BaseEpoch + S.Records.size() + 1;
      if (Epoch != Expected) {
        S.Error = walError(ErrorCode::WalEpochSkew,
                           "record epoch " + std::to_string(Epoch) +
                               " where " + std::to_string(Expected) +
                               " was required, at offset " +
                               std::to_string(Off));
        break;
      }
      WalRecord Rec;
      Rec.Epoch = Epoch;
      if (!decodeOps(Payload, Rec.Ops)) {
        S.Error = walError(ErrorCode::WalCorrupt,
                           "malformed transaction payload at offset " +
                               std::to_string(Off));
        break;
      }
      S.Records.push_back(std::move(Rec));
    }
    Off += HeaderSize + PayloadSize;
    S.CleanBytes = Off;
    First = false;
  }
  return S;
}

void memlook::service::resealWalChecksums(std::string &Bytes) {
  size_t Off = 0;
  while (Bytes.size() - Off >= HeaderSize) {
    char *H = Bytes.data() + Off;
    uint32_t PayloadSize = loadU32(H + OffPayloadSize);
    if (PayloadSize > WriteAheadLog::MaxRecordPayloadBytes ||
        Bytes.size() - Off < HeaderSize + PayloadSize)
      return;
    storeU32(H + OffPayloadCrc,
             crc32c(H + HeaderSize, static_cast<size_t>(PayloadSize)));
    storeU32(H + OffHeaderCrc, crc32c(H, OffHeaderCrc));
    Off += HeaderSize + PayloadSize;
  }
}

//===----------------------------------------------------------------------===//
// WriteAheadLog
//===----------------------------------------------------------------------===//

WriteAheadLog::WriteAheadLog(WriteAheadLog &&Other) noexcept
    : Path(std::move(Other.Path)), Fd(Other.Fd), LastEpoch(Other.LastEpoch),
      BytesAppended(Other.BytesAppended),
      SyncEachAppend(Other.SyncEachAppend) {
  Other.Fd = -1;
}

WriteAheadLog &WriteAheadLog::operator=(WriteAheadLog &&Other) noexcept {
  if (this != &Other) {
    if (Fd >= 0)
      ::close(Fd);
    Path = std::move(Other.Path);
    Fd = Other.Fd;
    LastEpoch = Other.LastEpoch;
    BytesAppended = Other.BytesAppended;
    SyncEachAppend = Other.SyncEachAppend;
    Other.Fd = -1;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (Fd >= 0)
    ::close(Fd);
}

Expected<WriteAheadLog> WriteAheadLog::create(std::string Path,
                                              uint64_t BaseEpoch,
                                              uint32_t Fingerprint,
                                              bool SyncEachAppend) {
  // The base record goes through the atomic-replace recipe so a crash
  // mid-create leaves either no log or a complete one - and so the
  // file's very existence is durable before the service relies on it.
  std::string Record = encodeWalBaseRecord(BaseEpoch, Fingerprint);
  if (Status S = writeFileAtomic(Path, Record); !S.isOk())
    return walError(ErrorCode::WalIoError, S.message());

  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (Fd < 0)
    return walIo("open", Path, errno);
  WriteAheadLog W;
  W.Path = std::move(Path);
  W.Fd = Fd;
  W.LastEpoch = BaseEpoch;
  W.SyncEachAppend = SyncEachAppend;
  return W;
}

Expected<WriteAheadLog> WriteAheadLog::openExisting(std::string Path,
                                                    const WalSalvage &S,
                                                    bool SyncEachAppend) {
  if (!S.Error.isOk())
    return S.Error;
  if (!S.HasBase)
    return walError(ErrorCode::WalCorrupt,
                    "'" + Path + "' has no base record to append after");

  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (Fd < 0)
    return walIo("open", Path, errno);

  // Physically drop the torn tail so the next append starts at the
  // clean end; O_APPEND then lands writes exactly there.
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    int Err = errno;
    ::close(Fd);
    return walIo("stat", Path, Err);
  }
  if (static_cast<uint64_t>(St.st_size) > S.CleanBytes) {
    if (::ftruncate(Fd, static_cast<off_t>(S.CleanBytes)) != 0) {
      int Err = errno;
      ::close(Fd);
      return walIo("truncate", Path, Err);
    }
    if (::fdatasync(Fd) != 0) {
      int Err = errno;
      ::close(Fd);
      return walIo("fdatasync", Path, Err);
    }
  }

  WriteAheadLog W;
  W.Path = std::move(Path);
  W.Fd = Fd;
  W.LastEpoch = S.Records.empty() ? S.BaseEpoch : S.Records.back().Epoch;
  W.SyncEachAppend = SyncEachAppend;
  return W;
}

WalSalvage WriteAheadLog::replayFile(const std::string &Path) {
  Expected<std::string> Bytes = readFileCapped(Path, MaxReplayBytes);
  if (!Bytes) {
    WalSalvage S;
    S.Error = walError(ErrorCode::WalIoError, Bytes.status().message());
    return S;
  }
  return salvageWalBytes(*Bytes);
}

bool WriteAheadLog::exists(const std::string &Path) {
  return ::access(Path.c_str(), F_OK) == 0;
}

Status WriteAheadLog::append(uint64_t Epoch,
                             const std::vector<Transaction::Op> &Ops) {
  if (Fd < 0)
    return walError(ErrorCode::WalIoError,
                    "'" + Path + "' is poisoned after a failed append");
  assert(Epoch == LastEpoch + 1 &&
         "commit epochs reach the log in +1 steps under the writer lock");

  std::string Record = encodeWalTxnRecord(Epoch, Ops);

  // The current clean end, for rollback: an append whose sync fails
  // must not leave a complete-but-unacknowledged record behind, or a
  // retried commit would collide with it as a duplicate epoch.
  off_t End = ::lseek(Fd, 0, SEEK_END);
  if (End < 0)
    return walIo("seek", Path, errno);

  auto rollback = [&]() {
    if (::ftruncate(Fd, End) != 0) {
      // Cannot restore the clean end: poison the handle so no later
      // append writes after a suspect region.
      ::close(Fd);
      Fd = -1;
    }
  };

  CrashDirective Dir = crashPointHit("wal-append");
  if (Dir.Fail)
    return walError(ErrorCode::WalIoError, "append '" + Path +
                                               "': injected write failure");
  if (Dir.Partial) {
    size_t N = std::min<size_t>(Dir.PartialBytes, Record.size());
    (void)!::write(Fd, Record.data(), N);
    crashPointKill();
  }

  const char *P = Record.data();
  size_t Left = Record.size();
  while (Left != 0) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int Err = errno;
      rollback();
      return walIo("append", Path, Err);
    }
    P += N;
    Left -= static_cast<size_t>(N);
  }

  if (SyncEachAppend) {
    if (crashPointHit("wal-append-fsync").Fail) {
      rollback();
      return walError(ErrorCode::WalIoError,
                      "fdatasync '" + Path + "': injected sync failure");
    }
    if (::fdatasync(Fd) != 0) {
      int Err = errno;
      rollback();
      return walIo("fdatasync", Path, Err);
    }
  }

  LastEpoch = Epoch;
  BytesAppended += Record.size();
  return Status::ok();
}

Status WriteAheadLog::reset(uint64_t BaseEpoch, uint32_t Fingerprint) {
  // Atomic swap: the sibling-file rename means a crash at any instant
  // leaves either the full old log or the fresh base record.
  std::string Record = encodeWalBaseRecord(BaseEpoch, Fingerprint);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Status S = writeFileAtomic(Path, Record);
  // Whichever file won the swap is the one to append to next.
  int NewFd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (NewFd < 0) {
    int Err = errno;
    return S.isOk() ? walIo("reopen", Path, Err)
                    : walError(ErrorCode::WalIoError, S.message());
  }
  Fd = NewFd;
  if (!S.isOk()) {
    // The swap failed but the old log is intact; keep extending it.
    return walError(ErrorCode::WalIoError, S.message());
  }
  LastEpoch = BaseEpoch;
  return Status::ok();
}
