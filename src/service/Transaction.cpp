//===- Transaction.cpp - Batch edits -----------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/Transaction.h"

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/support/BitVector.h"
#include "memlook/support/Diagnostics.h"

#include <unordered_map>
#include <unordered_set>

using namespace memlook;
using namespace memlook::service;

namespace {

/// A name-keyed, freely editable model of a hierarchy. Ids are per-epoch
/// (dense, finalize-ordered), so edits recorded by name must replay
/// against names too; the model supports the removals the append-only
/// Hierarchy API cannot express, and is rebuilt into a fresh Hierarchy
/// only after the whole script replayed cleanly.
struct EditModel {
  struct BaseEdge {
    std::string Base;
    InheritanceKind Kind;
    AccessSpec Access;
  };
  struct Member {
    std::string Name;
    bool IsStatic;
    bool IsVirtual;
    AccessSpec Access;
    std::string UsingFrom; ///< empty unless a using-declaration
  };
  struct Class {
    std::string Name;
    std::vector<BaseEdge> Bases;
    std::vector<Member> Members;
  };

  /// Classes in creation order (kept stable so replaying the same script
  /// twice yields bit-identical hierarchies).
  std::vector<Class> Classes;
  std::unordered_map<std::string, size_t> Index;

  static EditModel fromHierarchy(const Hierarchy &Base) {
    EditModel Model;
    Model.Classes.reserve(Base.numClasses());
    for (uint32_t Idx = 0; Idx != Base.numClasses(); ++Idx) {
      const Hierarchy::ClassInfo &Info = Base.info(ClassId(Idx));
      Class C;
      C.Name = std::string(Base.className(ClassId(Idx)));
      for (const BaseSpecifier &Spec : Info.DirectBases)
        C.Bases.push_back(BaseEdge{std::string(Base.className(Spec.Base)),
                                   Spec.Kind, Spec.Access});
      for (const MemberDecl &M : Info.Members) {
        Member Out;
        Out.Name = std::string(Base.spelling(M.Name));
        Out.IsStatic = M.IsStatic;
        Out.IsVirtual = M.IsVirtual;
        Out.Access = M.Access;
        if (M.isUsingDeclaration())
          Out.UsingFrom = std::string(Base.className(M.UsingFrom));
        C.Members.push_back(std::move(Out));
      }
      Model.Index.emplace(C.Name, Model.Classes.size());
      Model.Classes.push_back(std::move(C));
    }
    return Model;
  }

  Class *find(const std::string &Name) {
    auto It = Index.find(Name);
    return It == Index.end() ? nullptr : &Classes[It->second];
  }

  size_t numEdges() const {
    size_t N = 0;
    for (const Class &C : Classes)
      N += C.Bases.size();
    return N;
  }

  size_t numMembers() const {
    size_t N = 0;
    for (const Class &C : Classes)
      N += C.Members.size();
    return N;
  }
};

Status opError(ErrorCode Code, const std::string &What,
               const Transaction::Op &Op) {
  std::string Msg = What;
  Msg += " (class '" + Op.Class + "'";
  if (!Op.Target.empty())
    Msg += ", target '" + Op.Target + "'";
  if (!Op.Member.empty())
    Msg += ", member '" + Op.Member + "'";
  Msg += ")";
  return Status::error(Code, std::move(Msg));
}

/// Applies one op to the model, or explains why it cannot apply.
Status applyOp(EditModel &Model, const Transaction::Op &Op) {
  using OpKind = Transaction::OpKind;
  switch (Op.Kind) {
  case OpKind::AddClass: {
    if (Op.Class.empty())
      return opError(ErrorCode::InvalidArgument, "empty class name", Op);
    if (Model.find(Op.Class))
      return opError(ErrorCode::DuplicateClass, "class already exists", Op);
    Model.Index.emplace(Op.Class, Model.Classes.size());
    Model.Classes.push_back(EditModel::Class{Op.Class, {}, {}});
    return Status::ok();
  }

  case OpKind::RemoveClass: {
    auto It = Model.Index.find(Op.Class);
    if (It == Model.Index.end())
      return opError(ErrorCode::UnknownClass, "no such class", Op);
    // A class can only go when nothing else references it: C++ has no
    // way to un-inherit, and a dangling using-target would be
    // meaningless.
    for (const EditModel::Class &C : Model.Classes) {
      if (C.Name == Op.Class)
        continue;
      for (const EditModel::BaseEdge &E : C.Bases)
        if (E.Base == Op.Class)
          return opError(ErrorCode::InvalidArgument,
                         "class is still a base of '" + C.Name + "'", Op);
      for (const EditModel::Member &M : C.Members)
        if (M.UsingFrom == Op.Class)
          return opError(ErrorCode::InvalidArgument,
                         "class is still named by a using-declaration in '" +
                             C.Name + "'",
                         Op);
    }
    size_t Removed = It->second;
    Model.Classes.erase(Model.Classes.begin() +
                        static_cast<ptrdiff_t>(Removed));
    Model.Index.erase(It);
    for (auto &Entry : Model.Index)
      if (Entry.second > Removed)
        --Entry.second;
    return Status::ok();
  }

  case OpKind::AddBase: {
    EditModel::Class *Derived = Model.find(Op.Class);
    if (!Derived)
      return opError(ErrorCode::UnknownClass, "no such derived class", Op);
    if (!Model.find(Op.Target))
      return opError(ErrorCode::UnknownClass, "no such base class", Op);
    for (const EditModel::BaseEdge &E : Derived->Bases)
      if (E.Base == Op.Target)
        return opError(ErrorCode::DuplicateBase, "base already listed", Op);
    Derived->Bases.push_back(
        EditModel::BaseEdge{Op.Target, Op.EdgeKind, Op.Access});
    return Status::ok();
  }

  case OpKind::RemoveBase: {
    EditModel::Class *Derived = Model.find(Op.Class);
    if (!Derived)
      return opError(ErrorCode::UnknownClass, "no such derived class", Op);
    for (size_t Idx = 0; Idx != Derived->Bases.size(); ++Idx) {
      if (Derived->Bases[Idx].Base == Op.Target) {
        Derived->Bases.erase(Derived->Bases.begin() +
                             static_cast<ptrdiff_t>(Idx));
        return Status::ok();
      }
    }
    return opError(ErrorCode::InvalidArgument, "no such base edge", Op);
  }

  case OpKind::AddMember:
  case OpKind::AddUsing: {
    EditModel::Class *C = Model.find(Op.Class);
    if (!C)
      return opError(ErrorCode::UnknownClass, "no such class", Op);
    if (Op.Member.empty())
      return opError(ErrorCode::InvalidArgument, "empty member name", Op);
    for (const EditModel::Member &M : C->Members)
      if (M.Name == Op.Member)
        return opError(ErrorCode::InvalidArgument,
                       "member name already declared in class", Op);
    EditModel::Member M;
    M.Name = Op.Member;
    M.IsStatic = Op.IsStatic;
    M.IsVirtual = Op.IsVirtual;
    M.Access = Op.Access;
    if (Op.Kind == OpKind::AddUsing) {
      if (!Model.find(Op.Target))
        return opError(ErrorCode::UnknownClass, "no such using-source class",
                       Op);
      M.UsingFrom = Op.Target;
    }
    C->Members.push_back(std::move(M));
    return Status::ok();
  }

  case OpKind::RemoveMember: {
    EditModel::Class *C = Model.find(Op.Class);
    if (!C)
      return opError(ErrorCode::UnknownClass, "no such class", Op);
    for (size_t Idx = 0; Idx != C->Members.size(); ++Idx) {
      if (C->Members[Idx].Name == Op.Member) {
        C->Members.erase(C->Members.begin() + static_cast<ptrdiff_t>(Idx));
        return Status::ok();
      }
    }
    return opError(ErrorCode::InvalidArgument, "member not declared in class",
                   Op);
  }
  }
  return Status::error(ErrorCode::InvalidArgument, "unknown op kind");
}

/// Materializes the model as a fresh finalized Hierarchy. Two passes so
/// forward references (a base created later in the script) work.
Expected<Hierarchy> rebuild(const EditModel &Model) {
  Hierarchy H;
  DiagnosticEngine Diags;

  std::vector<ClassId> Ids(Model.Classes.size());
  for (size_t Idx = 0; Idx != Model.Classes.size(); ++Idx) {
    Ids[Idx] = H.createClass(Model.Classes[Idx].Name, SourceLoc(), &Diags);
    if (!Ids[Idx].isValid())
      return statusFromDiagnostics(Diags);
  }
  for (size_t Idx = 0; Idx != Model.Classes.size(); ++Idx) {
    const EditModel::Class &C = Model.Classes[Idx];
    for (const EditModel::BaseEdge &E : C.Bases) {
      ClassId Base = H.findClass(E.Base);
      assert(Base.isValid() && "model edge names a missing class?");
      if (!H.addBase(Ids[Idx], Base, E.Kind, E.Access, SourceLoc(), &Diags))
        return statusFromDiagnostics(Diags);
    }
    for (const EditModel::Member &M : C.Members) {
      if (M.UsingFrom.empty()) {
        H.addMember(Ids[Idx], M.Name, M.IsStatic, M.IsVirtual, M.Access,
                    SourceLoc(), &Diags);
      } else {
        ClassId From = H.findClass(M.UsingFrom);
        assert(From.isValid() && "model using names a missing class?");
        H.addUsingDeclaration(Ids[Idx], From, M.Name, M.Access, SourceLoc(),
                              &Diags);
      }
      if (Diags.hasErrors())
        return statusFromDiagnostics(Diags);
    }
  }

  if (!H.finalize(Diags))
    return statusFromDiagnostics(Diags);
  Status S = statusFromDiagnostics(Diags);
  if (!S.isOk())
    return S;
  return H;
}

} // namespace

Expected<Hierarchy>
memlook::service::applyEditScript(const Hierarchy &Base,
                                  const std::vector<Transaction::Op> &Ops,
                                  const ResourceBudget &Budget) {
  assert(Base.isFinalized() && "edit scripts replay against an epoch");

  EditModel Model = EditModel::fromHierarchy(Base);
  for (const Transaction::Op &Op : Ops) {
    Status S = applyOp(Model, Op);
    if (!S.isOk())
      return S;
    if (Model.Classes.size() > Budget.MaxClasses)
      return Status::error(ErrorCode::BudgetExceeded,
                           "transaction exceeds the class budget");
    if (Model.numEdges() > Budget.MaxEdges)
      return Status::error(ErrorCode::BudgetExceeded,
                           "transaction exceeds the edge budget");
    if (Model.numMembers() > Budget.MaxMemberDecls)
      return Status::error(ErrorCode::BudgetExceeded,
                           "transaction exceeds the member budget");
  }
  return rebuild(Model);
}

ImpactSet
memlook::service::computeImpactSet(const Hierarchy &Old, const Hierarchy &New,
                                   const std::vector<Transaction::Op> &Ops) {
  assert(Old.isFinalized() && New.isFinalized() &&
         "impact sets relate two epochs");

  ImpactSet Impact;
  std::unordered_set<std::string> Names;
  std::unordered_set<std::string> EditedClasses;

  for (const Transaction::Op &Op : Ops) {
    // RemoveClass erases a slot out of the dense id space: every later
    // class shifts down one index, so a shared column (indexed by class
    // id) would answer for the wrong classes. Sharing is off the table.
    if (Op.Kind == Transaction::OpKind::RemoveClass)
      Impact.FullRebuild = true;
    // Op.Class is the class whose declaration changes in every op kind
    // (the base of an AddBase edge gains a *derived* class, which does
    // not change any lookup at or above the base).
    EditedClasses.insert(Op.Class);
    if (!Op.Member.empty())
      Names.insert(Op.Member);
  }
  if (Impact.FullRebuild)
    return Impact;

  // Down-closure of the edited classes, per epoch. Class ids are stable
  // across the two epochs here (no RemoveClass), but closures differ -
  // an AddBase edge extends the new epoch's closure only, a RemoveBase
  // edge only the old one's - so both sides are collected.
  auto MarkImpacted = [&EditedClasses](const Hierarchy &H, BitVector &Bits) {
    for (const std::string &Name : EditedClasses) {
      ClassId A = H.findClass(Name);
      if (!A.isValid())
        continue; // exists only in the other epoch (AddClass, say)
      Bits.set(A.index());
      for (uint32_t C = 0; C != H.numClasses(); ++C)
        if (H.isBaseOf(A, ClassId(C)))
          Bits.set(C);
    }
  };

  // The names whose answers can change at an impacted class C are the
  // names declared in C's up-closure - visible-before or visible-after,
  // hence again both epochs.
  auto CollectVisibleNames = [&Names](const Hierarchy &H,
                                      const BitVector &Impacted) {
    BitVector Sources(H.numClasses());
    Impacted.forEachSetBit([&](size_t C) {
      Sources.set(C);
      H.basesOf(ClassId(static_cast<uint32_t>(C)))
          .forEachSetBit([&](size_t B) { Sources.set(B); });
    });
    Sources.forEachSetBit([&](size_t C) {
      for (const MemberDecl &M :
           H.info(ClassId(static_cast<uint32_t>(C))).Members)
        Names.insert(std::string(H.spelling(M.Name)));
    });
  };

  BitVector OldImpacted(Old.numClasses()), NewImpacted(New.numClasses());
  MarkImpacted(Old, OldImpacted);
  MarkImpacted(New, NewImpacted);
  CollectVisibleNames(Old, OldImpacted);
  CollectVisibleNames(New, NewImpacted);

  Impact.ImpactedClasses = NewImpacted.count();
  Impact.MemberNames.assign(Names.begin(), Names.end());
  return Impact;
}
