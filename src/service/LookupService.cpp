//===- LookupService.cpp - Long-lived service --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/LookupService.h"

#include "memlook/core/DifferentialCheck.h"
#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/GxxBfsEngine.h"
#include "memlook/service/SnapshotFile.h"
#include "memlook/service/WriteAheadLog.h"
#include "memlook/support/CrashPoint.h"
#include "memlook/support/Rng.h"

#include <chrono>
#include <cstdio>

using namespace memlook;
using namespace memlook::service;

const char *memlook::service::answerRungLabel(AnswerRung Rung) {
  switch (Rung) {
  case AnswerRung::Tabulated:
    return "tabulated";
  case AnswerRung::Figure8PerQuery:
    return "figure8-per-query";
  case AnswerRung::GxxApproximate:
    return "gxx-approximate";
  }
  return "unknown";
}

const char *memlook::service::restoreRungLabel(RestoreRung Rung) {
  switch (Rung) {
  case RestoreRung::Snapshot:
    return "snapshot";
  case RestoreRung::RebuildFromSource:
    return "rebuild-from-source";
  case RestoreRung::SnapshotAndWal:
    return "snapshot+wal";
  }
  return "unknown";
}

std::string RestoreReport::toString() const {
  std::string Out = std::string("restore: rung=") + restoreRungLabel(Rung) +
                    " epoch=" + std::to_string(Epoch);
  if (Rung == RestoreRung::Snapshot || Rung == RestoreRung::SnapshotAndWal)
    Out += ", " + std::to_string(AuditColumnsChecked) + " columns audited";
  if (!SnapshotStatus.isOk())
    Out += ", snapshot passed over: " + SnapshotStatus.toString();
  if (FileQuarantined)
    Out += ", file quarantined to " + QuarantinePath;
  if (WalAttempted) {
    if (WalRecordsReplayed != 0)
      Out += ", " + std::to_string(WalRecordsReplayed) + " wal records replayed";
    if (WalRecordsSkipped != 0)
      Out += ", " + std::to_string(WalRecordsSkipped) +
             " wal records already covered";
    if (!WalStatus.isOk())
      Out += ", wal stopped: " + WalStatus.toString();
    if (WalQuarantined)
      Out += ", wal quarantined to " + WalQuarantinePath;
    if (DataLoss)
      Out += ", DATA LOSS";
  }
  return Out;
}

std::string AuditReport::toString() const {
  std::string Out = "audit epoch " + std::to_string(Epoch) + ": " +
                    std::to_string(PairsSampled) + " table pairs sampled, " +
                    std::to_string(EnginePairsChecked) +
                    " engine pairs checked, " + std::to_string(PairsSkipped) +
                    " skipped, " + std::to_string(Mismatches.size()) +
                    " mismatches";
  if (!TableWasWarm)
    Out += ", table cold";
  if (QuarantinedTable)
    Out += ", QUARANTINED";
  return Out;
}

LookupService::LookupService(Hierarchy Initial, ServiceOptions Options)
    : Opts(std::move(Options)) {
  assert(Initial.isFinalized() &&
         "the service serves finalized hierarchies; use create() for "
         "untrusted input");
  auto Snap = std::make_shared<Snapshot>();
  Snap->Epoch = 1;
  Snap->H = std::make_shared<const Hierarchy>(std::move(Initial));
  if (Opts.WarmOnCommit) {
    Deadline BuildDeadline = warmDeadline();
    Snap->Table = LookupTable::build(*Snap->H, BuildDeadline, Opts.WarmThreads);
    if (Snap->Table)
      NumColumnsDeduped.fetch_add(Snap->Table->buildStats().ColumnsDeduped,
                                  std::memory_order_relaxed);
  }
  if (!Opts.WalPath.empty()) {
    // A fresh service is a fresh history: start the log at epoch 1.
    // restore() is the entry point that preserves an existing log (it
    // clears WalPath before reaching this constructor and attaches the
    // log it salvaged itself).
    Expected<WriteAheadLog> W = WriteAheadLog::create(
        Opts.WalPath, /*BaseEpoch=*/1, hierarchyFingerprint(*Snap->H),
        Opts.WalSyncEachAppend);
    if (W)
      Wal = std::make_unique<WriteAheadLog>(W.takeValue());
    else
      WalHealth = W.status();
  }
  adoptInitial(std::move(Snap));
}

Expected<std::unique_ptr<LookupService>>
LookupService::create(Hierarchy Initial, ServiceOptions Options) {
  if (!Initial.isFinalized())
    return Status::error(ErrorCode::NotFinalized,
                         "service requires a finalized hierarchy");
  return std::make_unique<LookupService>(std::move(Initial),
                                         std::move(Options));
}

LookupService::LookupService(RestoreTag, uint64_t Epoch,
                             std::shared_ptr<const Hierarchy> H,
                             std::shared_ptr<const LookupTable> Table,
                             ServiceOptions Options)
    : Opts(std::move(Options)) {
  assert(H && H->isFinalized() && "restore() validates before adopting");
  auto Snap = std::make_shared<Snapshot>();
  Snap->Epoch = Epoch;
  Snap->H = std::move(H);
  Snap->Table = std::move(Table);
  if (!Snap->Table && Opts.WarmOnCommit)
    Snap->Table = LookupTable::build(*Snap->H, warmDeadline(),
                                     Opts.WarmThreads);
  if (Snap->Table)
    NumColumnsDeduped.fetch_add(Snap->Table->buildStats().ColumnsDeduped,
                                std::memory_order_relaxed);
  adoptInitial(std::move(Snap));
}

namespace {

/// The restore audit: recompute up to \p SampleColumns member columns
/// with a live kernel (the same code path commit-time warms use) and
/// require the loaded table's answers to agree row-for-row. Structural
/// validation proved the table internally consistent; this proves a
/// deterministic sample of it *correct* - the defense against a
/// CRC-valid, well-formed file whose entries answer wrongly.
Status auditRestoredTable(const Hierarchy &H, const LookupTable &Table,
                          uint32_t SampleColumns, uint64_t &ColumnsChecked) {
  uint32_t NumMembers = static_cast<uint32_t>(H.allMemberNames().size());
  if (SampleColumns == 0 || NumMembers == 0)
    return Status::ok();
  uint32_t Sample = std::min(SampleColumns, NumMembers);
  // Deterministic evenly spread sample: restores are reproducible.
  std::vector<uint32_t> Idxs;
  Idxs.reserve(Sample);
  for (uint32_t I = 0; I != Sample; ++I)
    Idxs.push_back(static_cast<uint32_t>(uint64_t(I) * NumMembers / Sample));

  ParallelTabulator::Result Fresh =
      ParallelTabulator::tabulate(H, Idxs, Deadline::never(), /*Threads=*/1);
  assert(Fresh.Complete && "an unbounded serial tabulation cannot expire");

  for (uint32_t Idx : Idxs) {
    ++ColumnsChecked;
    const LookupTable::Column &Oracle = *Fresh.Columns[Idx];
    Symbol Member = H.allMemberNames()[Idx];
    for (uint32_t Row = 0; Row != H.numClasses(); ++Row) {
      // find() consults the loaded column (short rows answer NotFound -
      // legal only if the kernel also says the answer is NotFound).
      std::string Got =
          renderLookupForComparison(H, Table.find(H, ClassId(Row), Member));
      std::string Want =
          renderLookupForComparison(H, Oracle.resultFor(H, ClassId(Row)));
      if (Got != Want)
        return Status::error(
            ErrorCode::TableQuarantined,
            "restore audit: loaded table answers '" + Got + "' for " +
                std::string(H.className(ClassId(Row))) + "::" +
                std::string(H.spelling(Member)) +
                " but a live kernel answers '" + Want + "'");
    }
  }
  return Status::ok();
}

} // namespace

Expected<std::unique_ptr<LookupService>>
LookupService::restore(const std::string &Path, Hierarchy FallbackSource,
                       ServiceOptions Options, RestoreReport *Report) {
  RestoreReport Local;
  RestoreReport &R = Report ? *Report : Local;
  R = RestoreReport();
  const uint64_t T0 = observabilityNowNanos();

  // Durable mode: salvage the log up front, before any rung can touch
  // the filesystem, and keep the constructors away from the file
  // (WalPath cleared) - restore owns the log's fate here.
  const std::string WalPath = Options.WalPath;
  const bool Durable = !WalPath.empty();
  const bool Sync = Options.WalSyncEachAppend;
  Options.WalPath.clear();
  R.WalAttempted = Durable;
  WalSalvage Salvage;
  bool WalFileExists = false;
  if (Durable) {
    WalFileExists = WriteAheadLog::exists(WalPath);
    if (WalFileExists)
      Salvage = WriteAheadLog::replayFile(WalPath);
  }

  // Base state: the snapshot rung, else the rebuild rung.
  Status SnapStatus = Status::ok();
  Expected<SnapshotPayload> Loaded = readSnapshotFile(Path, Options.Budget);
  if (!Loaded) {
    SnapStatus = Loaded.status();
  } else if (Loaded->Table) {
    SnapStatus = auditRestoredTable(*Loaded->H, *Loaded->Table,
                                    Options.RestoreAuditColumns,
                                    R.AuditColumnsChecked);
  }

  std::unique_ptr<LookupService> Svc;
  if (SnapStatus.isOk() && Loaded) {
    R.Rung = RestoreRung::Snapshot;
    R.Epoch = Loaded->Epoch;
    Svc = std::unique_ptr<LookupService>(
        new LookupService(RestoreTag{}, Loaded->Epoch, std::move(Loaded->H),
                          std::move(Loaded->Table), std::move(Options)));
    Svc->NumSnapshotRestores.fetch_add(1, std::memory_order_relaxed);
  } else {
    // The file exists but is unusable: move it aside so the evidence
    // survives the rebuild (and a crash loop cannot keep re-reading
    // it). A missing file simply fails the rename - nothing to
    // preserve.
    R.SnapshotStatus = SnapStatus;
    std::string Quarantine = Path + ".quarantined";
    if (std::rename(Path.c_str(), Quarantine.c_str()) == 0) {
      R.FileQuarantined = true;
      R.QuarantinePath = Quarantine;
    }

    if (!FallbackSource.isFinalized())
      return Status::error(ErrorCode::NotFinalized,
                           "snapshot unusable (" + SnapStatus.toString() +
                               ") and the fallback hierarchy is not finalized");
    R.Rung = RestoreRung::RebuildFromSource;
    R.Epoch = 1;
    Svc = std::make_unique<LookupService>(std::move(FallbackSource), Options);
    if (R.FileQuarantined)
      Svc->NumSnapshotQuarantines.fetch_add(1, std::memory_order_relaxed);
  }

  if (!Durable) {
    // Restore trace events carry the RestoreRung in the Rung byte.
    Svc->Obs.recordWriterEvent(TraceKind::Restore, R.Epoch,
                               observabilityNowNanos() - T0,
                               static_cast<uint8_t>(R.Rung));
    return Svc;
  }

  // The WAL rung: replay the log's committed transactions onto the
  // base state through the normal commit path. The log connects when
  // its contiguous epoch chain reaches past the base epoch; records at
  // or below it were compacted into the snapshot already and are
  // skipped, not lost.
  const uint64_t BaseEpoch = Svc->currentEpoch();
  bool WalUsable = false;

  if (!WalFileExists ||
      (!Salvage.HasBase && Salvage.Records.empty() && Salvage.Error.isOk())) {
    // No log, an empty file, or a create() torn before its base record
    // landed: nothing was ever durable in it. Start fresh, no loss.
  } else if (!Salvage.HasBase) {
    R.WalStatus = Salvage.Error;
    R.DataLoss = true; // unreadable from the first record: content unknown
  } else if (Salvage.BaseEpoch > BaseEpoch) {
    R.WalStatus = Status::error(
        ErrorCode::WalEpochSkew,
        "log begins at epoch " + std::to_string(Salvage.BaseEpoch) +
            ", beyond the recovered epoch " + std::to_string(BaseEpoch) +
            "; its history does not connect");
    R.DataLoss = true;
  } else if (Salvage.BaseEpoch == BaseEpoch &&
             Salvage.BaseFingerprint !=
                 hierarchyFingerprint(*Svc->snapshot()->H)) {
    R.WalStatus = Status::error(
        ErrorCode::WalCorrupt,
        "log base fingerprint does not match the recovered state at epoch " +
            std::to_string(BaseEpoch) + "; refusing to replay");
    R.DataLoss = !Salvage.Records.empty();
  } else {
    // Connected. Skip what the snapshot already covers; contiguity
    // guarantees the first kept record is exactly BaseEpoch + 1.
    size_t Skip = 0;
    while (Skip != Salvage.Records.size() &&
           Salvage.Records[Skip].Epoch <= BaseEpoch)
      ++Skip;
    R.WalRecordsSkipped = Skip;

    WalUsable = true;
    for (size_t I = Skip; I != Salvage.Records.size(); ++I) {
      WalRecord &Rec = Salvage.Records[I];
      Transaction Txn(Svc->currentEpoch());
      Txn.Ops = std::move(Rec.Ops);
      if (Status C = Svc->commit(Txn); !C.isOk()) {
        // The durable prefix before this record stands; the rest of
        // the log describes commits this state can no longer accept.
        R.WalStatus = Status::error(
            C.code(), "replaying logged epoch " + std::to_string(Rec.Epoch) +
                          ": " + C.message());
        R.DataLoss = true;
        WalUsable = false;
        break;
      }
      ++R.WalRecordsReplayed;
    }
    if (WalUsable && !Salvage.Error.isOk()) {
      // Clean prefix replayed, but the scan stopped early: whatever
      // followed the damage is gone.
      R.WalStatus = Salvage.Error;
      R.DataLoss = true;
      WalUsable = false;
    }
  }

  Svc->NumWalReplayedRecords.fetch_add(R.WalRecordsReplayed,
                                       std::memory_order_relaxed);
  if (R.WalRecordsReplayed != 0 && R.Rung == RestoreRung::Snapshot)
    R.Rung = RestoreRung::SnapshotAndWal;
  R.Epoch = Svc->currentEpoch();

  // Disposition on disk. Keep extending the existing log only when its
  // end epoch is exactly the recovered epoch (so the append chain
  // continues unbroken); a stale-but-clean log is superseded without
  // ceremony, an unusable one is quarantined as evidence.
  uint64_t LogEnd = Salvage.Records.empty()
                        ? Salvage.BaseEpoch
                        : Salvage.Records.back().Epoch;
  if (WalUsable && Salvage.HasBase && LogEnd == Svc->currentEpoch()) {
    Expected<WriteAheadLog> W =
        WriteAheadLog::openExisting(WalPath, Salvage, Sync);
    if (W)
      Svc->Wal = std::make_unique<WriteAheadLog>(W.takeValue());
    else {
      Svc->WalHealth = W.status();
      if (R.WalStatus.isOk())
        R.WalStatus = W.status();
    }
  } else {
    if (!R.WalStatus.isOk() && WalFileExists) {
      std::string Quarantine = WalPath + ".quarantined";
      if (std::rename(WalPath.c_str(), Quarantine.c_str()) == 0) {
        R.WalQuarantined = true;
        R.WalQuarantinePath = Quarantine;
        Svc->NumWalQuarantines.fetch_add(1, std::memory_order_relaxed);
      }
      // The quarantined log held the only durable copy of the replayed
      // prefix; persist a snapshot at the recovered epoch so that
      // prefix survives the next crash too. Best-effort: on failure
      // the state still serves, only re-crash durability suffers.
      if (R.WalRecordsReplayed != 0)
        (void)Svc->saveSnapshot(Path);
    }
    Expected<WriteAheadLog> W = WriteAheadLog::create(
        WalPath, Svc->currentEpoch(),
        hierarchyFingerprint(*Svc->snapshot()->H), Sync);
    if (W)
      Svc->Wal = std::make_unique<WriteAheadLog>(W.takeValue());
    else {
      Svc->WalHealth = W.status();
      if (R.WalStatus.isOk())
        R.WalStatus = W.status();
    }
  }
  Svc->Opts.WalPath = WalPath;
  Svc->Obs.recordWriterEvent(TraceKind::Restore, R.Epoch,
                             observabilityNowNanos() - T0,
                             static_cast<uint8_t>(R.Rung));
  return Svc;
}

Status LookupService::saveSnapshot(const std::string &Path) const {
  // The writer lock fences the save against racing commits so the log
  // compaction below cannot truncate a record appended after the
  // snapshot we wrote (write snapshot at epoch E, compact to base E,
  // all while E stays current).
  std::lock_guard<std::mutex> Writer(WriterMutex);
  const uint64_t T0 = observabilityNowNanos();
  std::shared_ptr<const Snapshot> Snap = snapshot();
  Status S = writeSnapshotFile(Path, *Snap);
  if (!S.isOk())
    return S;
  NumSnapshotSaves.fetch_add(1, std::memory_order_relaxed);
  Obs.recordWriterEvent(TraceKind::SnapshotSave, Snap->Epoch,
                        observabilityNowNanos() - T0);
  if (Wal) {
    // Window under test: the snapshot is durable but the log still
    // carries the records it covers. Recovery must skip them.
    crashPointHit("wal-reset");
    if (Wal->reset(Snap->Epoch, hierarchyFingerprint(*Snap->H)).isOk())
      NumWalResets.fetch_add(1, std::memory_order_relaxed);
    // A failed compaction is not a save failure: the old log's records
    // are all <= the snapshot epoch or still replayable after it, so
    // nothing durable was lost - restore skips the covered prefix.
  }
  return S;
}

LookupService::~LookupService() {
  stopBackgroundAudit();
  // Member destruction then drains the reclaimer's limbo list (declared
  // after Current, so it is destroyed first, while the pointees are
  // still reachable). The caller owns the usual precondition: no reader
  // thread is still inside a guard-pinned call on this service.
}

std::shared_ptr<const Snapshot> LookupService::snapshot() const {
  std::lock_guard<std::mutex> Lock(SnapMutex);
  return Current;
}

void LookupService::adoptInitial(std::shared_ptr<const Snapshot> Snap) {
  // Construction only: no readers exist yet, so plain ordering suffices.
  CurrentEpoch.store(Snap->Epoch, std::memory_order_relaxed);
  CurrentPtr.store(Snap.get(), EpochReclaimer::pointerOrder());
  Current = std::move(Snap);
}

void LookupService::publish(std::shared_ptr<const Snapshot> Next) {
  // Callers hold WriterMutex, which serializes the epoch-reclaimer's
  // writer side (retire + reclaim) as well as the swap itself.
  const Snapshot *Raw = Next.get();
  std::shared_ptr<const Snapshot> Old;
  {
    std::lock_guard<std::mutex> Lock(SnapMutex);
    Old = std::move(Current);
    Current = std::move(Next);
  }
  CurrentEpoch.store(Raw->Epoch, std::memory_order_relaxed);
  // The EBR publication point: the store must precede the epoch bump
  // inside retire() (see EpochReclaimer.h's W1/W2/W3 ordering).
  CurrentPtr.store(Raw, EpochReclaimer::pointerOrder());
  Reclaimer.retire(std::static_pointer_cast<const void>(std::move(Old)));
}

Deadline LookupService::warmDeadline() const {
  return Opts.WarmBuildMillis > 0 ? Deadline::afterMillis(Opts.WarmBuildMillis)
                                  : Deadline::never();
}

//===----------------------------------------------------------------------===//
// Queries: the degradation ladder
//===----------------------------------------------------------------------===//

QueryAnswer LookupService::query(std::string_view Class,
                                 std::string_view Member,
                                 const Deadline &D) const {
  EpochReclaimer::ReadGuard Guard(Reclaimer);
  return queryOn(*currentRaw(), Class, Member, D);
}

namespace {

uint8_t traceFlagsOf(const QueryAnswer &A) {
  uint8_t Flags = 0;
  if (A.Approximate)
    Flags |= TfApproximate;
  if (A.DeadlineExpired)
    Flags |= TfDeadlineExpired;
  if (A.TableQuarantined)
    Flags |= TfTableQuarantined;
  if (!A.S.isOk())
    Flags |= TfUnknownContext;
  return Flags;
}

uint8_t traceFlagsOf(const ProbeAnswer &A) {
  uint8_t Flags = 0;
  if (A.Approximate)
    Flags |= TfApproximate;
  if (A.DeadlineExpired)
    Flags |= TfDeadlineExpired;
  if (A.TableQuarantined)
    Flags |= TfTableQuarantined;
  if (A.UnknownContext)
    Flags |= TfUnknownContext;
  return Flags;
}

} // namespace

void LookupService::finishQuery(QueryPath Path, uint64_t T0,
                                const QueryAnswer &A) const {
  if (T0)
    Obs.recordQuerySample(Path, A.Rung, T0, A.Epoch, traceFlagsOf(A));
  if (A.Rung != AnswerRung::Tabulated)
    Obs.noteRungDrop(Path, A.Rung, A.Epoch, A.DeadlineExpired);
}

QueryAnswer LookupService::queryOn(const Snapshot &Snap, std::string_view Class,
                                   std::string_view Member,
                                   const Deadline &D) const {
  ReadStats.add(RcQueries);
  const uint64_t T0 = Obs.sampleBegin();
  QueryAnswer A = answerResolved(Snap, Snap.H->findClass(Class), Class,
                                 Snap.H->findName(Member), D);
  finishQuery(QueryPath::String, T0, A);
  return A;
}

QueryAnswer LookupService::answerResolved(const Snapshot &Snap,
                                          ClassId Context,
                                          std::string_view ClassSpelling,
                                          Symbol Member,
                                          const Deadline &D) const {
  QueryAnswer Answer;
  Answer.Epoch = Snap.Epoch;
  Answer.TableQuarantined = Snap.quarantined();

  if (Context.rawValue() >= Snap.H->numClasses()) {
    // The one unanswerable shape: no rung can resolve a member in the
    // context of a class this epoch has never heard of. Constant time,
    // so it counts as the tabulated rung. A *valid-looking* id beyond
    // the epoch's range is the stale/forged-handle case the release-
    // safe bounds check exists for: same NotFound, plus an audit stat.
    if (Context.isValid())
      ReadStats.add(RcStaleContextRejects);
    ReadStats.add(RcUnknownContexts);
    ReadStats.add(RcRungTabulated);
    Answer.S = Status::error(ErrorCode::UnknownClass,
                             "unknown context class '" +
                                 std::string(ClassSpelling) + "' at epoch " +
                                 std::to_string(Snap.Epoch));
    Answer.Result = LookupResult::notFound();
    Answer.Rung = AnswerRung::Tabulated;
    return Answer;
  }

  if (!Member.isValid()) {
    // Name never interned anywhere in this epoch: NotFound, O(1).
    ReadStats.add(RcRungTabulated);
    Answer.Result = LookupResult::notFound();
    Answer.Rung = AnswerRung::Tabulated;
    return Answer;
  }

  // Rung 0: the epoch's warm table - a constant-time const read. The
  // checked find is belt-and-braces here (the bounds check above
  // already validated Context against the snapshot's hierarchy, and a
  // published table always spans it).
  if (Snap.warm()) {
    ReadStats.add(RcRungTabulated);
    bool StaleContext = false;
    Answer.Result =
        Snap.Table->findChecked(*Snap.H, Context, Member, &StaleContext);
    if (StaleContext)
      ReadStats.add(RcStaleContextRejects);
    Answer.Rung = AnswerRung::Tabulated;
    Answer.DeadlineExpired = D.expired();
    return Answer;
  }

  // Rung 1: a private Figure 8 engine, memoizing only this query's
  // down-closure, bounded by the caller's deadline. Skipped outright
  // when the deadline has already expired.
  if (!D.expired()) {
    DominanceLookupEngine Engine(*Snap.H,
                                 DominanceLookupEngine::Mode::LazyRecursive);
    Engine.setDeadline(&D);
    LookupResult R = Engine.lookup(Context, Member);
    if (!isBudgetDegraded(R.Status)) {
      ReadStats.add(RcRungFigure8);
      Answer.Result = std::move(R);
      Answer.Rung = AnswerRung::Figure8PerQuery;
      return Answer;
    }
  }

  // Rung 2: the floor. Instant-ish, never refuses, but approximate
  // (g++ 2.7.2's eager ambiguity reporting) - a late or approximate
  // answer beats none, so this rung answers even past the deadline,
  // flagged.
  GxxBfsEngine Floor(*Snap.H, Opts.Budget.MaxSubobjects);
  ReadStats.add(RcRungGxx);
  Answer.Result = Floor.lookup(Context, Member);
  Answer.Rung = AnswerRung::GxxApproximate;
  Answer.Approximate = true;
  Answer.DeadlineExpired = D.expired();
  return Answer;
}

//===----------------------------------------------------------------------===//
// The query fast lane: resolved handles, batches, probes
//===----------------------------------------------------------------------===//

void LookupService::resolveKeyOn(const Snapshot &Snap, QueryKey &Key) const {
  Key.Context = Snap.H->findClass(Key.ClassName);
  Key.Member = Snap.H->findName(Key.MemberName);
  Key.Epoch = Snap.Epoch;
}

QueryKey LookupService::resolve(std::string_view Class,
                                std::string_view Member) const {
  ReadStats.add(RcResolves);
  QueryKey Key;
  Key.ClassName.assign(Class);
  Key.MemberName.assign(Member);
  EpochReclaimer::ReadGuard Guard(Reclaimer);
  resolveKeyOn(*currentRaw(), Key);
  return Key;
}

QueryAnswer LookupService::query(QueryKey &Key, const Deadline &D) const {
  EpochReclaimer::ReadGuard Guard(Reclaimer);
  return queryOn(*currentRaw(), Key, D);
}

QueryAnswer LookupService::queryOn(const Snapshot &Snap, QueryKey &Key,
                                   const Deadline &D) const {
  ReadStats.add(RcQueries);
  const uint64_t T0 = Obs.sampleBegin();
  if (Key.Epoch != Snap.Epoch) {
    ReadStats.add(RcStaleKeyReresolves);
    resolveKeyOn(Snap, Key);
    Obs.noteStaleKey(Snap.Epoch);
  }
  QueryAnswer A =
      answerResolved(Snap, Key.Context, Key.ClassName, Key.Member, D);
  finishQuery(QueryPath::Key, T0, A);
  return A;
}

void LookupService::queryMany(std::span<QueryKey> Keys,
                              std::span<QueryAnswer> Answers,
                              const Deadline &D) const {
  // One guard pins one snapshot for the whole batch, so the windowed
  // prefetch+answer passes see a consistent epoch.
  EpochReclaimer::ReadGuard Guard(Reclaimer);
  queryManyOn(*currentRaw(), Keys, Answers, D);
}

void LookupService::queryManyOn(const Snapshot &Snap, std::span<QueryKey> Keys,
                                std::span<QueryAnswer> Answers,
                                const Deadline &D) const {
  assert(Keys.size() == Answers.size() &&
         "one answer slot per key in a batch");
  ReadStats.add(RcBatchQueries);
  ReadStats.add(RcQueries, Keys.size());
  const uint64_t T0 = Obs.sampleBegin();
  const bool Warm = Snap.warm();
  AnswerRung Worst = AnswerRung::Tabulated;

  // Window the batch: pass 1 refreshes stale keys and issues a software
  // prefetch for each key's compact entry, pass 2 answers them. By the
  // time pass 2 reads an entry, its cache line has been in flight for a
  // whole window - the batch pays max(misses), not sum(misses).
  constexpr size_t Window = 16;
  for (size_t Base = 0; Base < Keys.size(); Base += Window) {
    size_t End = std::min(Keys.size(), Base + Window);
    for (size_t I = Base; I != End; ++I) {
      QueryKey &Key = Keys[I];
      if (Key.Epoch != Snap.Epoch) {
        ReadStats.add(RcStaleKeyReresolves);
        resolveKeyOn(Snap, Key);
        Obs.noteStaleKey(Snap.Epoch);
      }
      if (Warm)
        Snap.Table->prefetchEntry(Key.Context, Key.Member);
    }
    for (size_t I = Base; I != End; ++I) {
      Answers[I] = answerResolved(Snap, Keys[I].Context, Keys[I].ClassName,
                                  Keys[I].Member, D);
      Worst = std::max(Worst, Answers[I].Rung);
    }
  }
  if (T0 && !Keys.empty())
    Obs.recordBatchSample(Worst, T0, Snap.Epoch, Keys.size());
  if (Worst != AnswerRung::Tabulated)
    Obs.noteRungDrop(QueryPath::Batch, Worst, Snap.Epoch, D.expired());
}

ProbeAnswer LookupService::probe(QueryKey &Key, const Deadline &D) const {
  EpochReclaimer::ReadGuard Guard(Reclaimer);
  return probeOn(*currentRaw(), Key, D);
}

ProbeAnswer LookupService::probeOn(const Snapshot &Snap, QueryKey &Key,
                                   const Deadline &D) const {
  ReadStats.add(RcProbes);
  const uint64_t T0 = Obs.sampleBegin();
  if (Key.Epoch != Snap.Epoch) {
    ReadStats.add(RcStaleKeyReresolves);
    resolveKeyOn(Snap, Key);
    Obs.noteStaleKey(Snap.Epoch);
  }
  ProbeAnswer A = probeResolved(Snap, Key, D);
  if (T0)
    Obs.recordQuerySample(QueryPath::Probe, A.Rung, T0, A.Epoch,
                          traceFlagsOf(A));
  if (A.Rung != AnswerRung::Tabulated)
    Obs.noteRungDrop(QueryPath::Probe, A.Rung, A.Epoch, A.DeadlineExpired);
  return A;
}

ProbeAnswer LookupService::probeResolved(const Snapshot &Snap,
                                         const QueryKey &Key,
                                         const Deadline &D) const {
  ProbeAnswer A;
  A.Epoch = Snap.Epoch;
  A.TableQuarantined = Snap.quarantined();

  if (Key.Context.rawValue() >= Snap.H->numClasses()) {
    if (Key.Context.isValid())
      ReadStats.add(RcStaleContextRejects);
    ReadStats.add(RcUnknownContexts);
    ReadStats.add(RcRungTabulated);
    A.UnknownContext = true;
    return A;
  }
  if (!Key.Member.isValid()) {
    ReadStats.add(RcRungTabulated);
    return A;
  }

  // The fast lane proper: one compact-entry read, no heap.
  if (Snap.warm()) {
    ReadStats.add(RcRungTabulated);
    LookupTable::Probe P = Snap.Table->probe(Key.Context, Key.Member);
    if (P.StaleContext)
      ReadStats.add(RcStaleContextRejects);
    A.Status = P.Status;
    A.DefiningClass = P.DefiningClass;
    A.Access = P.Access;
    A.SharedStatic = P.SharedStatic;
    A.DeadlineExpired = D.expired();
    return A;
  }

  // Cold or quarantined snapshot: descend the materializing ladder
  // (allocation is unavoidable there - the per-query engines build
  // witness state) and compress to the POD shape.
  QueryAnswer Full =
      answerResolved(Snap, Key.Context, Key.ClassName, Key.Member, D);
  A.Status = Full.Result.Status;
  A.DefiningClass = Full.Result.DefiningClass;
  A.Access = Full.Result.EffectiveAccess.value_or(AccessSpec::Public);
  A.SharedStatic = Full.Result.SharedStatic;
  A.Rung = Full.Rung;
  A.Approximate = Full.Approximate;
  A.DeadlineExpired = Full.DeadlineExpired;
  return A;
}

//===----------------------------------------------------------------------===//
// Transactions
//===----------------------------------------------------------------------===//

Transaction LookupService::beginTxn() const {
  return Transaction(currentEpoch());
}

Status LookupService::commit(const Transaction &Txn) {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  const uint64_t T0 = observabilityNowNanos();
  // Every exit traces: rejects as CommitReject (epoch = the epoch that
  // refused them), publishes as Commit (epoch = the new epoch, and the
  // duration feeds the commit latency histogram).
  auto TraceReject = [&](uint64_t Epoch) {
    Obs.recordWriterEvent(TraceKind::CommitReject, Epoch,
                          observabilityNowNanos() - T0, /*Rung=*/0,
                          TfRejected);
  };

  std::shared_ptr<const Snapshot> Base = snapshot();
  if (Base->Epoch != Txn.baseEpoch()) {
    NumCommitConflicts.fetch_add(1, std::memory_order_relaxed);
    TraceReject(Base->Epoch);
    return Status::error(
        ErrorCode::TransactionConflict,
        "transaction began at epoch " + std::to_string(Txn.baseEpoch()) +
            " but the service is at epoch " + std::to_string(Base->Epoch));
  }

  Expected<Hierarchy> Edited = applyEditScript(*Base->H, Txn.ops(), Opts.Budget);
  if (!Edited) {
    NumCommitRejects.fetch_add(1, std::memory_order_relaxed);
    TraceReject(Base->Epoch);
    return Edited.status();
  }

  // Durable mode: append-then-publish. The record reaches the log (and
  // in sync mode, the platter) before any reader can observe the new
  // epoch; an append failure rolls the whole commit back, exactly like
  // a validation failure. Only *validated* scripts are logged, so
  // recovery replays them through the same engine without re-hitting
  // rejections.
  if (!Opts.WalPath.empty()) {
    if (!Wal) {
      NumCommitRejects.fetch_add(1, std::memory_order_relaxed);
      TraceReject(Base->Epoch);
      return WalHealth.isOk()
                 ? Status::error(ErrorCode::WalIoError,
                                 "durable mode with no open log")
                 : WalHealth;
    }
    if (Status W = Wal->append(Base->Epoch + 1, Txn.ops()); !W.isOk()) {
      NumCommitRejects.fetch_add(1, std::memory_order_relaxed);
      TraceReject(Base->Epoch);
      return W;
    }
    NumWalAppends.fetch_add(1, std::memory_order_relaxed);
    NumWalBytesAppended.store(Wal->bytesAppended(),
                              std::memory_order_relaxed);
    // The durable-but-unpublished window: a kill here must recover the
    // transaction even though the caller never saw commit() return.
    crashPointHit("wal-publish");
  }

  auto Next = std::make_shared<Snapshot>();
  Next->Epoch = Base->Epoch + 1;
  Next->H = std::make_shared<const Hierarchy>(Edited.takeValue());
  if (Opts.WarmOnCommit) {
    Deadline BuildDeadline = warmDeadline();

    // Fast path: the predecessor epoch is warm and trustworthy and the
    // script kept class ids stable, so the new table re-tabulates only
    // the edit's impact set and aliases every other column.
    if (Opts.IncrementalRewarm && Base->warm()) {
      ImpactSet Impact = computeImpactSet(*Base->H, *Next->H, Txn.ops());
      if (!Impact.FullRebuild) {
        Next->Table =
            LookupTable::rewarm(*Next->H, *Base->H, *Base->Table,
                                Impact.MemberNames, BuildDeadline,
                                Opts.WarmThreads);
        if (Next->Table) {
          const LookupTable::BuildStats &B = Next->Table->buildStats();
          NumIncrementalRewarms.fetch_add(1, std::memory_order_relaxed);
          NumColumnsShared.fetch_add(B.ColumnsShared,
                                     std::memory_order_relaxed);
          NumColumnsRetabulated.fetch_add(B.ColumnsBuilt,
                                          std::memory_order_relaxed);
          NumColumnsDeduped.fetch_add(B.ColumnsDeduped,
                                      std::memory_order_relaxed);
        }
      }
    }

    // Full build: first epoch shape (cold/quarantined predecessor),
    // RemoveClass scripts, or a rewarm that missed its deadline (the
    // remaining budget may still cover a from-scratch parallel build).
    if (!Next->Table) {
      Next->Table =
          LookupTable::build(*Next->H, BuildDeadline, Opts.WarmThreads);
      if (Next->Table)
        NumColumnsDeduped.fetch_add(Next->Table->buildStats().ColumnsDeduped,
                                    std::memory_order_relaxed);
    }
  }
  publish(std::move(Next));
  NumCommits.fetch_add(1, std::memory_order_relaxed);
  Obs.recordWriterEvent(TraceKind::Commit, Base->Epoch + 1,
                        observabilityNowNanos() - T0);
  return Status::ok();
}

void LookupService::abort(const Transaction &Txn) {
  (void)Txn;
  NumAbortedTxns.fetch_add(1, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Table lifecycle
//===----------------------------------------------------------------------===//

Status LookupService::warmCurrent(const Deadline &D) {
  std::lock_guard<std::mutex> Writer(WriterMutex);
  const uint64_t T0 = observabilityNowNanos();

  std::shared_ptr<const Snapshot> Base = snapshot();
  if (Base->warm())
    return Status::ok();

  auto Table = LookupTable::build(*Base->H, D, Opts.WarmThreads);
  if (Table)
    NumColumnsDeduped.fetch_add(Table->buildStats().ColumnsDeduped,
                                std::memory_order_relaxed);
  if (!Table)
    return Status::error(ErrorCode::DeadlineExceeded,
                         "table build missed its deadline at epoch " +
                             std::to_string(Base->Epoch) +
                             "; epoch stays cold");

  auto Next = std::make_shared<Snapshot>();
  Next->Epoch = Base->Epoch;
  Next->H = Base->H;
  Next->Table = std::move(Table);
  Next->RebuiltByAudit = Base->RebuiltByAudit;
  if (Base->quarantined())
    NumTableRebuilds.fetch_add(1, std::memory_order_relaxed);
  publish(std::move(Next));
  Obs.recordWriterEvent(TraceKind::Warm, Base->Epoch,
                        observabilityNowNanos() - T0);
  return Status::ok();
}

Status LookupService::tableHealth() const {
  std::shared_ptr<const Snapshot> Snap = snapshot();
  if (Snap->quarantined())
    return Status::error(ErrorCode::TableQuarantined,
                         "epoch " + std::to_string(Snap->Epoch) +
                             " table is quarantined pending rebuild");
  if (!Snap->Table)
    return Status::error(ErrorCode::InvalidArgument,
                         "epoch " + std::to_string(Snap->Epoch) +
                             " table is cold");
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Self-audit
//===----------------------------------------------------------------------===//

AuditReport LookupService::auditNow() {
  // Hold the writer lock for the whole pass: the audited snapshot is
  // then guaranteed to still be current when a mismatch forces the
  // quarantine + rebuild, and audits serialize with commits (readers
  // are never blocked - they keep serving the pinned snapshot).
  std::lock_guard<std::mutex> Writer(WriterMutex);
  const uint64_t T0 = observabilityNowNanos();

  std::shared_ptr<const Snapshot> Snap = snapshot();
  AuditReport Report;
  Report.Epoch = Snap->Epoch;
  Report.TableWasWarm = Snap->warm();

  // Layer 1: engine vs engine, the repository's central correctness
  // argument, run against the live hierarchy. Budget-degraded pairs are
  // skips, not failures (the fault injector lands here in tests).
  if (Opts.AuditEngineCheck) {
    DifferentialReport Engines = runDifferentialCheck(*Snap->H, Opts.Budget);
    Report.EnginePairsChecked = Engines.PairsChecked;
    Report.PairsSkipped += Engines.PairsSkipped;
    for (const std::string &M : Engines.Mismatches)
      Report.Mismatches.push_back("engine: " + M);
  }

  // Layer 2: cached table vs a fresh Figure 8 engine on sampled pairs -
  // the check that catches a corrupted or stale cache, which layer 1
  // cannot see (it never consults the table).
  bool TableBad = false;
  if (Report.TableWasWarm) {
    const Hierarchy &H = *Snap->H;
    DominanceLookupEngine Fresh(H, DominanceLookupEngine::Mode::LazyRecursive);
    const std::vector<Symbol> &Members = H.allMemberNames();
    uint64_t TotalPairs =
        static_cast<uint64_t>(H.numClasses()) * Members.size();

    auto CheckPair = [&](ClassId C, Symbol M) {
      LookupResult Cached = Snap->Table->find(H, C, M);
      LookupResult Live = Fresh.lookup(C, M);
      std::string CachedKey = renderLookupForComparison(H, Cached);
      std::string LiveKey = renderLookupForComparison(H, Live);
      ++Report.PairsSampled;
      if (CachedKey != LiveKey) {
        Report.Mismatches.push_back(
            "table: " + std::string(H.className(C)) + "::" +
            std::string(H.spelling(M)) + ": cached table says '" + CachedKey +
            "' but figure8 says '" + LiveKey + "'");
        TableBad = true;
      }
    };

    if (TotalPairs <= Opts.AuditSampleLimit || Opts.AuditSampleLimit == 0) {
      for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
        for (Symbol M : Members)
          CheckPair(ClassId(Idx), M);
    } else {
      // Deterministic sample keyed by the epoch: repeated audits of one
      // epoch re-check the same pairs, different epochs rotate coverage.
      Rng Sampler(0x5eed5eedULL ^ Snap->Epoch);
      for (uint64_t N = 0; N != Opts.AuditSampleLimit; ++N) {
        ClassId C(static_cast<uint32_t>(Sampler.nextBelow(H.numClasses())));
        Symbol M = Members[Sampler.nextBelow(Members.size())];
        CheckPair(C, M);
      }
    }
  }

  // A bad table is quarantined immediately (readers drop to the
  // per-query rungs) and replaced at the same epoch: the hierarchy
  // content did not change, only the cache was rebuilt.
  if (TableBad) {
    Snap->quarantine();
    NumQuarantines.fetch_add(1, std::memory_order_relaxed);
    Report.QuarantinedTable = true;
    // Quarantines bypass the anomaly rate limiter: they are rare and
    // operators must never miss one.
    Obs.noteQuarantine(Snap->Epoch, Report.Mismatches.empty()
                                        ? std::string("table audit mismatch")
                                        : Report.Mismatches.front());
    Obs.recordWriterEvent(TraceKind::Quarantine, Snap->Epoch,
                          observabilityNowNanos() - T0, /*Rung=*/0,
                          TfTableQuarantined);

    auto Next = std::make_shared<Snapshot>();
    Next->Epoch = Snap->Epoch;
    Next->H = Snap->H;
    Next->Table = LookupTable::build(*Snap->H, warmDeadline(),
                                     Opts.WarmThreads);
    if (Next->Table)
      NumColumnsDeduped.fetch_add(Next->Table->buildStats().ColumnsDeduped,
                                  std::memory_order_relaxed);
    Next->RebuiltByAudit = true;
    publish(std::move(Next));
    NumTableRebuilds.fetch_add(1, std::memory_order_relaxed);
  }

  NumAudits.fetch_add(1, std::memory_order_relaxed);
  NumAuditMismatches.fetch_add(Report.Mismatches.size(),
                               std::memory_order_relaxed);
  Obs.recordWriterEvent(TraceKind::Audit, Snap->Epoch,
                        observabilityNowNanos() - T0);
  return Report;
}

void LookupService::startBackgroundAudit(int64_t IntervalMillis) {
  std::lock_guard<std::mutex> Lock(AuditThreadMutex);
  if (AuditThread.joinable())
    return;
  AuditStopRequested = false;
  AuditThread = std::thread([this, IntervalMillis] {
    std::unique_lock<std::mutex> Lock(AuditThreadMutex);
    while (!AuditStopRequested) {
      if (AuditCv.wait_for(Lock, std::chrono::milliseconds(IntervalMillis),
                           [this] { return AuditStopRequested; }))
        break;
      Lock.unlock();
      auditNow();
      Lock.lock();
    }
  });
}

void LookupService::stopBackgroundAudit() {
  std::thread Worker;
  {
    std::lock_guard<std::mutex> Lock(AuditThreadMutex);
    AuditStopRequested = true;
    Worker = std::move(AuditThread);
  }
  AuditCv.notify_all();
  if (Worker.joinable())
    Worker.join();
}

//===----------------------------------------------------------------------===//
// Observability and test hooks
//===----------------------------------------------------------------------===//

ServiceStats LookupService::stats() const {
  ServiceStats S;
  S.Commits = NumCommits.load(std::memory_order_relaxed);
  S.CommitRejects = NumCommitRejects.load(std::memory_order_relaxed);
  S.CommitConflicts = NumCommitConflicts.load(std::memory_order_relaxed);
  S.AbortedTxns = NumAbortedTxns.load(std::memory_order_relaxed);
  S.Queries = ReadStats.total(RcQueries);
  S.RungAnswers[0] = ReadStats.total(RcRungTabulated);
  S.RungAnswers[1] = ReadStats.total(RcRungFigure8);
  S.RungAnswers[2] = ReadStats.total(RcRungGxx);
  S.UnknownContexts = ReadStats.total(RcUnknownContexts);
  S.Resolves = ReadStats.total(RcResolves);
  S.Probes = ReadStats.total(RcProbes);
  S.BatchQueries = ReadStats.total(RcBatchQueries);
  S.StaleKeyReresolves = ReadStats.total(RcStaleKeyReresolves);
  S.StaleContextRejects = ReadStats.total(RcStaleContextRejects);
  S.Audits = NumAudits.load(std::memory_order_relaxed);
  S.AuditMismatches = NumAuditMismatches.load(std::memory_order_relaxed);
  S.Quarantines = NumQuarantines.load(std::memory_order_relaxed);
  S.TableRebuilds = NumTableRebuilds.load(std::memory_order_relaxed);
  S.IncrementalRewarms = NumIncrementalRewarms.load(std::memory_order_relaxed);
  S.ColumnsShared = NumColumnsShared.load(std::memory_order_relaxed);
  S.ColumnsRetabulated =
      NumColumnsRetabulated.load(std::memory_order_relaxed);
  S.ColumnsDeduped = NumColumnsDeduped.load(std::memory_order_relaxed);
  S.SnapshotSaves = NumSnapshotSaves.load(std::memory_order_relaxed);
  S.SnapshotRestores = NumSnapshotRestores.load(std::memory_order_relaxed);
  S.SnapshotQuarantines =
      NumSnapshotQuarantines.load(std::memory_order_relaxed);
  S.WalAppends = NumWalAppends.load(std::memory_order_relaxed);
  S.WalBytesAppended = NumWalBytesAppended.load(std::memory_order_relaxed);
  S.WalResets = NumWalResets.load(std::memory_order_relaxed);
  S.WalReplayedRecords =
      NumWalReplayedRecords.load(std::memory_order_relaxed);
  S.WalQuarantines = NumWalQuarantines.load(std::memory_order_relaxed);
  S.SnapshotsRetired = Reclaimer.retiredTotal();
  S.SnapshotsReclaimed = Reclaimer.reclaimedTotal();
  S.SnapshotLimboDepth = Reclaimer.limboDepth();
  S.EpochPinOverflows = Reclaimer.overflowTotal();
  S.LatencySamples = Obs.latencySamplesTotal();
  S.TraceEventsRecorded = Obs.trace().recordedTotal();
  S.TraceEventsOverwritten = Obs.trace().overwrittenTotal();
  S.AnomaliesLogged = Obs.anomalies().loggedTotal();
  S.AnomaliesSuppressed = Obs.anomalies().suppressedTotal();
  if (std::shared_ptr<const Snapshot> Snap = snapshot(); Snap->Table)
    S.TableHeapBytes = Snap->Table->heapBytes();
  return S;
}

bool LookupService::corruptTableEntryForTesting(std::string_view Class,
                                                std::string_view Member) {
  std::lock_guard<std::mutex> Writer(WriterMutex);

  std::shared_ptr<const Snapshot> Snap = snapshot();
  if (!Snap->warm())
    return false;
  ClassId Context = Snap->H->findClass(Class);
  Symbol MemberSym = Snap->H->findName(Member);
  if (!Context.isValid() || !MemberSym.isValid())
    return false;
  auto Corrupted =
      Snap->Table->cloneWithCorruptedEntry(*Snap->H, Context, MemberSym);
  if (!Corrupted)
    return false;

  auto Next = std::make_shared<Snapshot>();
  Next->Epoch = Snap->Epoch;
  Next->H = Snap->H;
  Next->Table = std::move(Corrupted);
  Next->RebuiltByAudit = Snap->RebuiltByAudit;
  publish(std::move(Next));
  return true;
}
