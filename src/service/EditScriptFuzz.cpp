//===- EditScriptFuzz.cpp - Transaction fuzzing ------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/EditScriptFuzz.h"

#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/LookupService.h"
#include "memlook/support/Rng.h"
#include "memlook/workload/Generators.h"

#include <map>

using namespace memlook;
using namespace memlook::service;

namespace {

/// Member-name pool shared with the random-hierarchy generator's
/// defaults ("m0".."m5") plus a few never-declared names so removals and
/// queries also exercise the not-found paths.
std::string poolMember(Rng &R) { return "m" + std::to_string(R.nextBelow(8)); }

/// A random class name: usually one that exists, sometimes garbage.
std::string pickClassName(Rng &R, const Hierarchy &H) {
  if (H.numClasses() != 0 && R.nextChance(7, 8)) {
    ClassId Id(static_cast<uint32_t>(R.nextBelow(H.numClasses())));
    return std::string(H.className(Id));
  }
  return "Ghost" + std::to_string(R.nextBelow(4));
}

/// Records 1-3 ops that are valid by construction: fresh class names,
/// fresh member names on existing classes, and forward edges from an
/// existing class to the new one. Keeps the committed half of the
/// campaign growing instead of stalling on rejections.
void recordValidOps(Rng &R, const Hierarchy &H, uint64_t CaseTag,
                    uint64_t TxnIdx, Transaction &Txn) {
  std::string Fresh = "Fuzz" + std::to_string(CaseTag) + "_" +
                      std::to_string(TxnIdx);
  Txn.addClass(Fresh);
  if (H.numClasses() != 0) {
    ClassId BaseId(static_cast<uint32_t>(R.nextBelow(H.numClasses())));
    Txn.addBase(Fresh, std::string(H.className(BaseId)),
                R.nextChance(1, 3) ? InheritanceKind::Virtual
                                   : InheritanceKind::NonVirtual);
  }
  Txn.addMember(Fresh, poolMember(R), /*IsStatic=*/R.nextChance(1, 6),
                /*IsVirtual=*/R.nextChance(1, 4));
}

/// Records 1-6 random ops - valid and invalid alike - into \p Txn.
void recordRandomOps(Rng &R, const Hierarchy &H, uint64_t CaseTag,
                     Transaction &Txn) {
  uint64_t NumOps = R.nextInRange(1, 6);
  for (uint64_t Idx = 0; Idx != NumOps; ++Idx) {
    switch (R.nextBelow(8)) {
    case 0:
      // Fresh name most of the time; occasionally a duplicate.
      Txn.addClass(R.nextChance(1, 6)
                       ? pickClassName(R, H)
                       : "Fuzz" + std::to_string(CaseTag) + "_" +
                             std::to_string(R.nextBelow(64)));
      break;
    case 1:
      Txn.removeClass(pickClassName(R, H));
      break;
    case 2: {
      // Random direction, so some of these propose back-edges that can
      // only be caught by the cycle validation at commit.
      InheritanceKind Kind = R.nextChance(1, 3) ? InheritanceKind::Virtual
                                                : InheritanceKind::NonVirtual;
      Txn.addBase(pickClassName(R, H), pickClassName(R, H), Kind);
      break;
    }
    case 3:
      Txn.removeBase(pickClassName(R, H), pickClassName(R, H));
      break;
    case 4:
      Txn.addMember(pickClassName(R, H), poolMember(R),
                    /*IsStatic=*/R.nextChance(1, 6),
                    /*IsVirtual=*/R.nextChance(1, 4));
      break;
    case 5:
      Txn.removeMember(pickClassName(R, H), poolMember(R));
      break;
    case 6:
      Txn.addUsing(pickClassName(R, H), pickClassName(R, H), poolMember(R));
      break;
    default:
      // A second member edit, biased valid: grows hierarchies over the
      // case instead of stalling on rejections.
      Txn.addMember(pickClassName(R, H),
                    "f" + std::to_string(R.nextBelow(16)));
      break;
    }
  }
}

/// Every (class, member-pool) answer of \p Snap, rendered with the
/// differential comparison key - the "bit-identical answers" the
/// rollback oracle compares.
std::map<std::string, std::string> renderAllAnswers(const LookupService &Svc,
                                                    const Snapshot &Snap) {
  std::map<std::string, std::string> Out;
  const Hierarchy &H = *Snap.H;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId C(Idx);
    for (Symbol Member : H.allMemberNames()) {
      QueryAnswer A = Svc.queryOn(Snap, H.className(C), H.spelling(Member));
      Out[std::string(H.className(C)) + "::" +
          std::string(H.spelling(Member))] =
          renderLookupForComparison(H, A.Result);
    }
  }
  return Out;
}

} // namespace

EditScriptCaseResult
memlook::service::runEditScriptCase(uint64_t Seed,
                                    const ResourceBudget &Budget) {
  EditScriptCaseResult Result;
  Result.Seed = Seed;

  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 0xed17);

  RandomHierarchyParams Params;
  Params.NumClasses = static_cast<uint32_t>(R.nextInRange(4, 20));
  Params.MemberPool = 6;
  Params.UsingChance = 0.1;
  Workload W = makeRandomHierarchy(Params, R.next());

  ServiceOptions Opts;
  Opts.Budget = Budget;
  Opts.AuditSampleLimit = 64;
  // Commits go down the incremental-rewarm path (the default), and the
  // pool size rotates with the seed so the campaign covers serial,
  // small-parallel, and auto-sized builds alike.
  Opts.WarmThreads = static_cast<uint32_t>(Seed % 5); // 0 = auto
  LookupService Svc(std::move(W.H), Opts);

  uint64_t NumTxns = R.nextInRange(3, 8);
  for (uint64_t TxnIdx = 0; TxnIdx != NumTxns; ++TxnIdx) {
    ++Result.TxnsAttempted;

    std::shared_ptr<const Snapshot> Before = Svc.snapshot();
    std::map<std::string, std::string> AnswersBefore =
        renderAllAnswers(Svc, *Before);

    Transaction Txn = Svc.beginTxn();
    if (TxnIdx % 2 == 0)
      recordValidOps(R, *Before->H, Seed & 0xffff, TxnIdx, Txn);
    else
      recordRandomOps(R, *Before->H, Seed & 0xffff, Txn);

    Status S = Svc.commit(Txn);
    if (S.isOk()) {
      ++Result.TxnsCommitted;
      // Oracle 1: the new epoch must pass the full self-audit (engines
      // against each other, cached table against a fresh engine).
      AuditReport Audit = Svc.auditNow();
      Result.PairsChecked += Audit.PairsSampled + Audit.EnginePairsChecked;
      Result.PairsSkipped += Audit.PairsSkipped;
      for (const std::string &M : Audit.Mismatches)
        Result.Mismatches.push_back("txn " + std::to_string(TxnIdx) +
                                    " post-commit " + M);
      // A committed transaction must move the epoch by exactly one.
      if (Svc.snapshot()->Epoch != Before->Epoch + 1)
        Result.Mismatches.push_back(
            "txn " + std::to_string(TxnIdx) +
            ": commit succeeded but epoch did not advance by one");
      // Oracle 3: the published table - usually an incremental rewarm
      // sharing columns with the predecessor epoch, built in parallel -
      // must be entry-for-entry identical to a serial from-scratch
      // build over the same hierarchy.
      std::shared_ptr<const Snapshot> Now = Svc.snapshot();
      if (Now->Table) {
        auto Scratch =
            LookupTable::build(*Now->H, Deadline::never(), /*Threads=*/1);
        const Hierarchy &NH = *Now->H;
        for (uint32_t Idx = 0;
             Idx != NH.numClasses() && Result.Mismatches.size() < 16; ++Idx) {
          for (Symbol M : NH.allMemberNames()) {
            std::string Rewarmed = renderLookupForComparison(
                NH, Now->Table->find(NH, ClassId(Idx), M));
            std::string FromScratch = renderLookupForComparison(
                NH, Scratch->find(NH, ClassId(Idx), M));
            ++Result.PairsChecked;
            if (Rewarmed != FromScratch)
              Result.Mismatches.push_back(
                  "txn " + std::to_string(TxnIdx) + " rewarm: " +
                  std::string(NH.className(ClassId(Idx))) + "::" +
                  std::string(NH.spelling(M)) + ": rewarmed table says '" +
                  Rewarmed + "' but a from-scratch build says '" +
                  FromScratch + "'");
          }
        }
      }
    } else {
      ++Result.TxnsRejected;
      // Oracle 2: rollback restores answers. The snapshot pointer must
      // be untouched (nothing was published) and every answer
      // bit-identical.
      std::shared_ptr<const Snapshot> After = Svc.snapshot();
      if (After.get() != Before.get())
        Result.Mismatches.push_back(
            "txn " + std::to_string(TxnIdx) + " (" + S.toString() +
            "): rejected commit published a new snapshot");
      std::map<std::string, std::string> AnswersAfter =
          renderAllAnswers(Svc, *After);
      if (AnswersAfter != AnswersBefore)
        Result.Mismatches.push_back(
            "txn " + std::to_string(TxnIdx) + " (" + S.toString() +
            "): rejected commit changed lookup answers");
      Result.PairsChecked += AnswersBefore.size();
    }
  }

  // Epoch-conflict path: a transaction begun one commit ago must be
  // refused with TransactionConflict and change nothing - unless no
  // transaction ever committed, in which case it commits fine.
  Transaction Stale = Svc.beginTxn();
  Transaction Winner = Svc.beginTxn();
  Winner.addMember(pickClassName(R, *Svc.snapshot()->H), poolMember(R));
  bool WinnerCommitted = Svc.commit(Winner).isOk();
  std::shared_ptr<const Snapshot> BeforeStale = Svc.snapshot();
  Stale.addClass("StaleClass");
  Status StaleS = Svc.commit(Stale);
  ++Result.TxnsAttempted;
  if (WinnerCommitted) {
    if (StaleS.code() != ErrorCode::TransactionConflict)
      Result.Mismatches.push_back(
          "stale transaction was not refused with transaction-conflict "
          "(got " +
          StaleS.toString() + ")");
    if (Svc.snapshot().get() != BeforeStale.get())
      Result.Mismatches.push_back(
          "conflicted commit published a new snapshot");
    ++Result.TxnsRejected;
  } else if (StaleS.isOk()) {
    ++Result.TxnsCommitted;
  } else {
    ++Result.TxnsRejected;
  }

  return Result;
}

EditScriptCampaignReport
memlook::service::runEditScriptCampaign(uint64_t FirstSeed, uint64_t NumCases,
                                        const ResourceBudget &Budget) {
  EditScriptCampaignReport Report;
  for (uint64_t Idx = 0; Idx != NumCases; ++Idx) {
    EditScriptCaseResult Case = runEditScriptCase(FirstSeed + Idx, Budget);
    ++Report.CasesRun;
    Report.TxnsCommitted += Case.TxnsCommitted;
    Report.TxnsRejected += Case.TxnsRejected;
    Report.PairsChecked += Case.PairsChecked;
    Report.PairsSkipped += Case.PairsSkipped;
    if (!Case.passed())
      Report.Failures.push_back(std::move(Case));
  }
  return Report;
}
