//===- Observability.cpp - Service observability ------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/Observability.h"

#include "memlook/service/LookupService.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string_view>

using namespace memlook;
using namespace memlook::service;

const char *memlook::service::queryPathLabel(QueryPath Path) {
  switch (Path) {
  case QueryPath::String:
    return "string";
  case QueryPath::Key:
    return "key";
  case QueryPath::Probe:
    return "probe";
  case QueryPath::Batch:
    return "batch";
  }
  return "unknown";
}

const char *memlook::service::traceKindLabel(TraceKind Kind) {
  switch (Kind) {
  case TraceKind::Query:
    return "query";
  case TraceKind::Probe:
    return "probe";
  case TraceKind::Batch:
    return "batch";
  case TraceKind::Commit:
    return "commit";
  case TraceKind::CommitReject:
    return "commit-reject";
  case TraceKind::Restore:
    return "restore";
  case TraceKind::Warm:
    return "warm";
  case TraceKind::Audit:
    return "audit";
  case TraceKind::Quarantine:
    return "quarantine";
  case TraceKind::SnapshotSave:
    return "snapshot-save";
  }
  return "unknown";
}

const char *memlook::service::anomalyKindLabel(AnomalyKind Kind) {
  switch (Kind) {
  case AnomalyKind::RungDrop:
    return "rung-drop";
  case AnomalyKind::StaleKeyReresolve:
    return "stale-key-reresolve";
  case AnomalyKind::SlowQuery:
    return "slow-query";
  case AnomalyKind::Quarantine:
    return "quarantine";
  }
  return "unknown";
}

namespace {

const char *rungFieldLabel(TraceKind Kind, uint8_t Rung) {
  if (Kind == TraceKind::Restore)
    return restoreRungLabel(static_cast<RestoreRung>(Rung));
  return answerRungLabel(static_cast<AnswerRung>(Rung));
}

void appendFlags(std::string &Out, uint8_t Flags) {
  if (!Flags)
    return;
  Out += " [";
  bool First = true;
  auto Add = [&](uint8_t Bit, const char *Name) {
    if (!(Flags & Bit))
      return;
    if (!First)
      Out += ",";
    Out += Name;
    First = false;
  };
  Add(TfApproximate, "approximate");
  Add(TfDeadlineExpired, "deadline-expired");
  Add(TfTableQuarantined, "table-quarantined");
  Add(TfStaleKey, "stale-key");
  Add(TfUnknownContext, "unknown-context");
  Add(TfRejected, "rejected");
  Out += "]";
}

} // namespace

std::string TraceEvent::toString() const {
  std::string Out = traceKindLabel(Kind);
  Out += " epoch=" + std::to_string(Epoch);
  switch (Kind) {
  case TraceKind::Query:
  case TraceKind::Probe:
  case TraceKind::Batch:
  case TraceKind::Restore:
    Out += std::string(" rung=") + rungFieldLabel(Kind, Rung);
    break;
  default:
    break;
  }
  Out += " " + std::to_string(DurationNanos) + "ns";
  appendFlags(Out, Flags);
  return Out;
}

std::string AnomalyRecord::toString() const {
  std::string Out = anomalyKindLabel(Kind);
  Out += " epoch=" + std::to_string(Epoch);
  if (Kind == AnomalyKind::RungDrop || Kind == AnomalyKind::SlowQuery)
    Out += std::string(" rung=") +
           answerRungLabel(static_cast<AnswerRung>(Rung));
  if (DurationNanos)
    Out += " " + std::to_string(DurationNanos) + "ns";
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

//===----------------------------------------------------------------------===//
// TraceRing
//===----------------------------------------------------------------------===//

TraceRing::TraceRing(uint32_t CapacityPerShard)
    : Capacity(std::bit_ceil(std::max<uint32_t>(CapacityPerShard, 8))) {
  for (Shard &S : Shards)
    S.Entries = std::make_unique<Entry[]>(Capacity);
}

size_t TraceRing::shardIndex() {
  static std::atomic<uint32_t> NextShard{0};
  thread_local uint32_t Assigned =
      NextShard.fetch_add(1, std::memory_order_relaxed);
  return Assigned & (NumShards - 1);
}

void TraceRing::record(const TraceEvent &E) {
  Shard &S = Shards[shardIndex()];
  uint64_t Slot = S.Head.fetch_add(1, std::memory_order_relaxed);
  Entry &Slotted = S.Entries[Slot & (Capacity - 1)];

  constexpr uint64_t MaxDuration = (uint64_t(1) << 40) - 1;
  uint64_t Packed = uint64_t(static_cast<uint8_t>(E.Kind)) |
                    (uint64_t(E.Rung) << 8) | (uint64_t(E.Flags) << 16) |
                    (std::min(E.DurationNanos, MaxDuration) << 24);

  // Per-entry seqlock: odd while the payload words are in flight. The
  // payload words are relaxed atomics, so a racing drain() reads
  // well-formed words and the version check tells it whether they
  // belong to one publication. (Two writers can collide on an entry
  // only after lapping a whole shard ring; the drain-side check then
  // drops at most that one blended record.)
  uint64_t V = Slotted.Ver.load(std::memory_order_relaxed);
  Slotted.Ver.store(V + 1, std::memory_order_release);
  Slotted.Packed.store(Packed, std::memory_order_relaxed);
  Slotted.Epoch.store(E.Epoch, std::memory_order_relaxed);
  Slotted.When.store(E.WhenNanos, std::memory_order_relaxed);
  Slotted.Ver.store(V + 2, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::drain() const {
  std::vector<TraceEvent> Out;
  Out.reserve(NumShards * 8);
  for (const Shard &S : Shards) {
    uint64_t Head = S.Head.load(std::memory_order_acquire);
    uint64_t Kept = std::min<uint64_t>(Head, Capacity);
    for (uint64_t I = 0; I != Kept; ++I) {
      const Entry &E = S.Entries[I];
      uint64_t V1 = E.Ver.load(std::memory_order_acquire);
      if (V1 == 0 || (V1 & 1))
        continue; // never written, or mid-write
      uint64_t Packed = E.Packed.load(std::memory_order_relaxed);
      uint64_t Epoch = E.Epoch.load(std::memory_order_relaxed);
      uint64_t When = E.When.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (E.Ver.load(std::memory_order_relaxed) != V1)
        continue; // overwritten while we read
      TraceEvent Ev;
      Ev.Kind = static_cast<TraceKind>(Packed & 0xff);
      Ev.Rung = static_cast<uint8_t>((Packed >> 8) & 0xff);
      Ev.Flags = static_cast<uint8_t>((Packed >> 16) & 0xff);
      Ev.DurationNanos = Packed >> 24;
      Ev.Epoch = Epoch;
      Ev.WhenNanos = When;
      Out.push_back(Ev);
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return A.WhenNanos < B.WhenNanos;
            });
  return Out;
}

uint64_t TraceRing::recordedTotal() const {
  uint64_t N = 0;
  for (const Shard &S : Shards)
    N += S.Head.load(std::memory_order_relaxed);
  return N;
}

uint64_t TraceRing::overwrittenTotal() const {
  uint64_t N = 0;
  for (const Shard &S : Shards) {
    uint64_t Head = S.Head.load(std::memory_order_relaxed);
    if (Head > Capacity)
      N += Head - Capacity;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// AnomalyLog
//===----------------------------------------------------------------------===//

AnomalyLog::AnomalyLog(uint32_t Capacity, uint32_t RatePerSecond)
    : Capacity(std::max<uint32_t>(Capacity, 1)),
      RatePerSecond(std::max<uint32_t>(RatePerSecond, 1)),
      Tokens(this->RatePerSecond) {}

bool AnomalyLog::tryAcquireToken() {
  // Cheap rejection first: a storm of anomalies must cost relaxed
  // atomics, never the clock-and-mutex path below per event.
  if (Tokens.load(std::memory_order_relaxed) > 0 &&
      Tokens.fetch_sub(1, std::memory_order_relaxed) > 0)
    return true;
  // Bucket looks dry: refill at second granularity. One racing thread
  // wins the CAS and takes the first token of the new second.
  uint64_t Second = observabilityNowNanos() / 1'000'000'000;
  uint64_t Last = LastRefillSecond.load(std::memory_order_relaxed);
  if (Second != Last && LastRefillSecond.compare_exchange_strong(
                            Last, Second, std::memory_order_relaxed)) {
    Tokens.store(int64_t(RatePerSecond) - 1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool AnomalyLog::note(AnomalyKind Kind, uint64_t Epoch, uint8_t Rung,
                      uint64_t DurationNanos, std::string Detail, bool Force) {
  if (!Force && !tryAcquireToken()) {
    NumSuppressed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  AnomalyRecord R;
  R.Kind = Kind;
  R.Epoch = Epoch;
  R.Rung = Rung;
  R.DurationNanos = DurationNanos;
  R.WhenNanos = observabilityNowNanos();
  R.Detail = std::move(Detail);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Ring.size() < Capacity) {
      Ring.push_back(std::move(R));
    } else {
      Ring[Next] = std::move(R);
      Next = (Next + 1) % Capacity;
    }
  }
  NumLogged.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<AnomalyRecord> AnomalyLog::recent() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<AnomalyRecord> Out;
  Out.reserve(Ring.size());
  // Oldest first: the ring wraps at Next once full.
  for (size_t I = 0; I != Ring.size(); ++I)
    Out.push_back(Ring[(Next + I) % Ring.size()]);
  return Out;
}

//===----------------------------------------------------------------------===//
// ObservabilityCenter
//===----------------------------------------------------------------------===//

ObservabilityCenter::ObservabilityCenter(const ObservabilityOptions &O)
    : Opts(O),
      SampleMask(O.SamplePeriod == 0 ? ~uint64_t(0)
                                     : uint64_t(std::bit_ceil(std::max<
                                           uint32_t>(O.SamplePeriod, 1))) -
                                           1),
      Ring(O.TraceShardCapacity),
      Anomalies(O.AnomalyCapacity, O.AnomalyRatePerSecond) {}

void ObservabilityCenter::recordQuerySample(QueryPath Path, AnswerRung Rung,
                                            uint64_t T0, uint64_t Epoch,
                                            uint8_t Flags) {
  uint64_t Now = observabilityNowNanos();
  uint64_t Duration = Now - T0;
  PathLatency[static_cast<size_t>(Path)][static_cast<size_t>(Rung)].record(
      Duration);

  TraceEvent E;
  E.Kind = Path == QueryPath::Probe ? TraceKind::Probe : TraceKind::Query;
  E.Rung = static_cast<uint8_t>(Rung);
  E.Flags = Flags;
  E.Epoch = Epoch;
  E.DurationNanos = Duration;
  E.WhenNanos = Now;
  Ring.record(E);

  if (Opts.SlowQueryNanos && Duration >= Opts.SlowQueryNanos)
    Anomalies.note(AnomalyKind::SlowQuery, Epoch,
                   static_cast<uint8_t>(Rung), Duration,
                   std::string(queryPathLabel(Path)) + " path");
}

void ObservabilityCenter::recordBatchSample(AnswerRung WorstRung, uint64_t T0,
                                            uint64_t Epoch, size_t NumKeys) {
  uint64_t Now = observabilityNowNanos();
  uint64_t Duration = Now - T0;
  PathLatency[static_cast<size_t>(QueryPath::Batch)]
             [static_cast<size_t>(WorstRung)]
                 .record(Duration);

  TraceEvent E;
  E.Kind = TraceKind::Batch;
  E.Rung = static_cast<uint8_t>(WorstRung);
  E.Epoch = Epoch;
  E.DurationNanos = Duration;
  E.WhenNanos = Now;
  Ring.record(E);

  if (Opts.SlowQueryNanos && NumKeys &&
      Duration / NumKeys >= Opts.SlowQueryNanos)
    Anomalies.note(AnomalyKind::SlowQuery, Epoch,
                   static_cast<uint8_t>(WorstRung), Duration,
                   "batch of " + std::to_string(NumKeys) + " keys");
}

void ObservabilityCenter::recordWriterEvent(TraceKind Kind, uint64_t Epoch,
                                            uint64_t DurationNanos,
                                            uint8_t Rung, uint8_t Flags) {
  if (Kind == TraceKind::Commit)
    CommitNanos.record(DurationNanos);
  TraceEvent E;
  E.Kind = Kind;
  E.Rung = Rung;
  E.Flags = Flags;
  E.Epoch = Epoch;
  E.DurationNanos = DurationNanos;
  E.WhenNanos = observabilityNowNanos();
  Ring.record(E);
}

void ObservabilityCenter::noteRungDrop(QueryPath Path, AnswerRung Rung,
                                       uint64_t Epoch, bool DeadlineExpired) {
  Anomalies.note(AnomalyKind::RungDrop, Epoch, static_cast<uint8_t>(Rung), 0,
                 std::string(queryPathLabel(Path)) + " path answered by " +
                     answerRungLabel(Rung) +
                     (DeadlineExpired ? " past its deadline" : ""));
}

void ObservabilityCenter::noteStaleKey(uint64_t Epoch) {
  Anomalies.note(AnomalyKind::StaleKeyReresolve, Epoch, 0, 0, std::string());
}

void ObservabilityCenter::noteQuarantine(uint64_t Epoch, std::string Detail) {
  Anomalies.note(AnomalyKind::Quarantine, Epoch, 0, 0, std::move(Detail),
                 /*Force=*/true);
}

LatencyHistogram ObservabilityCenter::latency(QueryPath Path,
                                              AnswerRung Rung) const {
  return PathLatency[static_cast<size_t>(Path)][static_cast<size_t>(Rung)]
      .snapshot();
}

LatencyHistogram ObservabilityCenter::latencyMerged(QueryPath Path) const {
  LatencyHistogram Out;
  for (size_t R = 0; R != 3; ++R)
    Out.merge(PathLatency[static_cast<size_t>(Path)][R].snapshot());
  return Out;
}

LatencyHistogram ObservabilityCenter::commitLatency() const {
  return CommitNanos.snapshot();
}

uint64_t ObservabilityCenter::latencySamplesTotal() const {
  uint64_t N = 0;
  for (size_t P = 0; P != NumQueryPaths; ++P)
    for (size_t R = 0; R != 3; ++R)
      N += PathLatency[P][R].countTotal();
  return N;
}

//===----------------------------------------------------------------------===//
// The metric catalog
//===----------------------------------------------------------------------===//

namespace {

// One macro per scalar stat keeps the Prometheus name, the ServiceStats
// field, and the help line in one row - the shape check_docs.py parses.
#define COUNTER(Prom, Field, Help)                                            \
  MetricDesc {                                                                \
    Prom, #Field, MetricDesc::Kind::Counter, Help,                            \
        [](const ServiceStats &S) -> uint64_t { return S.Field; }             \
  }
#define GAUGE(Prom, Field, Help)                                              \
  MetricDesc {                                                                \
    Prom, #Field, MetricDesc::Kind::Gauge, Help,                              \
        [](const ServiceStats &S) -> uint64_t { return S.Field; }             \
  }
// RungAnswers is an array indexed by AnswerRung; each labeled series
// reads one element.
#define RUNG_COUNTER(Prom, Idx, Help)                                         \
  MetricDesc {                                                                \
    Prom, "RungAnswers", MetricDesc::Kind::Counter, Help,                     \
        [](const ServiceStats &S) -> uint64_t { return S.RungAnswers[Idx]; }  \
  }

const MetricDesc Catalog[] = {
    COUNTER("memlook_commits_total", Commits, "Transactions published."),
    COUNTER("memlook_commit_rejects_total", CommitRejects,
            "Commits rolled back by validation or a WAL append failure."),
    COUNTER("memlook_commit_conflicts_total", CommitConflicts,
            "Commits rolled back by an epoch race."),
    COUNTER("memlook_aborted_txns_total", AbortedTxns,
            "Explicit abort() calls."),
    COUNTER("memlook_queries_total", Queries,
            "Queries answered (string, key, and batch keys)."),
    RUNG_COUNTER("memlook_rung_answers_total{rung=\"tabulated\"}", 0,
                 "Answers served per degradation-ladder rung."),
    RUNG_COUNTER("memlook_rung_answers_total{rung=\"figure8-per-query\"}", 1,
                 "Answers served per degradation-ladder rung."),
    RUNG_COUNTER("memlook_rung_answers_total{rung=\"gxx-approximate\"}", 2,
                 "Answers served per degradation-ladder rung."),
    COUNTER("memlook_unknown_contexts_total", UnknownContexts,
            "Queries naming no class at their epoch (still answered)."),
    COUNTER("memlook_resolves_total", Resolves,
            "resolve() calls (QueryKeys minted)."),
    COUNTER("memlook_probes_total", Probes, "probe()/probeOn() calls."),
    COUNTER("memlook_batch_queries_total", BatchQueries,
            "queryMany() batches (their keys count as queries)."),
    COUNTER("memlook_stale_key_reresolves_total", StaleKeyReresolves,
            "Keys transparently re-resolved after a commit outran them."),
    COUNTER("memlook_stale_context_rejects_total", StaleContextRejects,
            "Valid-looking context ids out of the epoch's range, degraded "
            "to NotFound."),
    COUNTER("memlook_audits_total", Audits, "Audit passes completed."),
    COUNTER("memlook_audit_mismatches_total", AuditMismatches,
            "Total mismatch lines across audits."),
    COUNTER("memlook_quarantines_total", Quarantines, "Tables quarantined."),
    COUNTER("memlook_table_rebuilds_total", TableRebuilds,
            "Tables rebuilt after quarantine."),
    COUNTER("memlook_incremental_rewarms_total", IncrementalRewarms,
            "Commits warmed by column sharing."),
    COUNTER("memlook_columns_shared_total", ColumnsShared,
            "Columns aliased across epochs by incremental rewarms."),
    COUNTER("memlook_columns_retabulated_total", ColumnsRetabulated,
            "Columns rebuilt by rewarms."),
    COUNTER("memlook_columns_deduped_total", ColumnsDeduped,
            "Column pointers unified by structural dedup."),
    GAUGE("memlook_table_heap_bytes", TableHeapBytes,
          "Heap bytes of the current snapshot's table (0 when cold)."),
    COUNTER("memlook_snapshot_saves_total", SnapshotSaves,
            "saveSnapshot() calls that hit disk."),
    COUNTER("memlook_snapshot_restores_total", SnapshotRestores,
            "Restores served from the snapshot rung."),
    COUNTER("memlook_snapshot_quarantines_total", SnapshotQuarantines,
            "Snapshot files moved aside as bad."),
    COUNTER("memlook_wal_appends_total", WalAppends,
            "Commit records appended to the write-ahead log."),
    COUNTER("memlook_wal_bytes_appended_total", WalBytesAppended,
            "Bytes those appends wrote."),
    COUNTER("memlook_wal_resets_total", WalResets,
            "Log compactions (saveSnapshot)."),
    COUNTER("memlook_wal_replayed_records_total", WalReplayedRecords,
            "Logged transactions replayed by restore."),
    COUNTER("memlook_wal_quarantines_total", WalQuarantines,
            "Log files moved aside as bad."),
    COUNTER("memlook_snapshots_retired_total", SnapshotsRetired,
            "Superseded snapshots handed to the epoch reclaimer."),
    COUNTER("memlook_snapshots_reclaimed_total", SnapshotsReclaimed,
            "Retired snapshots whose limbo reference was dropped."),
    GAUGE("memlook_snapshot_limbo_depth", SnapshotLimboDepth,
          "Retired snapshots still awaiting reclamation."),
    COUNTER("memlook_epoch_pin_overflows_total", EpochPinOverflows,
            "Reader pins that overflowed onto the shared fallback counter."),
    COUNTER("memlook_latency_samples_total", LatencySamples,
            "Operations clocked into the latency histograms."),
    COUNTER("memlook_trace_events_recorded_total", TraceEventsRecorded,
            "Events written to the trace ring."),
    COUNTER("memlook_trace_events_overwritten_total", TraceEventsOverwritten,
            "Trace events lost to ring wrap-around."),
    COUNTER("memlook_anomalies_logged_total", AnomaliesLogged,
            "Anomaly records retained by the anomaly log."),
    COUNTER("memlook_anomalies_suppressed_total", AnomaliesSuppressed,
            "Anomalies dropped by the rate limiter."),
};

#undef COUNTER
#undef GAUGE
#undef RUNG_COUNTER

/// Splits "name{labels}" into its name for HELP/TYPE coalescing.
std::string_view promBaseName(const char *PromName) {
  std::string_view Name(PromName);
  if (size_t Brace = Name.find('{'); Brace != std::string_view::npos)
    Name = Name.substr(0, Brace);
  return Name;
}

void appendJsonString(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string formatDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f", V);
  return Buf;
}

/// Samples at or below \p Bound (bucket-boundary-aligned cumulative
/// count for the Prometheus 'le' rendering).
uint64_t cumulativeBelow(const LatencyHistogram &H, uint64_t Bound) {
  uint64_t N = 0;
  uint32_t FirstAbove = LatencyHistogram::bucketOf(Bound);
  for (uint32_t I = 0; I != FirstAbove; ++I)
    N += H.bucketCount(I);
  return N;
}

struct NamedHistogram {
  const char *Metric; ///< "memlook_query_latency_nanos" or commit twin
  std::string Labels; ///< "path=\"probe\",rung=\"tabulated\"" or empty
  LatencyHistogram H;
};

/// Every non-empty histogram the service holds, catalog order.
std::vector<NamedHistogram> collectHistograms(const LookupService &Svc) {
  std::vector<NamedHistogram> Out;
  for (size_t P = 0; P != NumQueryPaths; ++P) {
    for (size_t R = 0; R != 3; ++R) {
      QueryPath Path = static_cast<QueryPath>(P);
      AnswerRung Rung = static_cast<AnswerRung>(R);
      LatencyHistogram H = Svc.latencySnapshot(Path, Rung);
      if (H.count() == 0)
        continue;
      Out.push_back({"memlook_query_latency_nanos",
                     std::string("path=\"") + queryPathLabel(Path) +
                         "\",rung=\"" + answerRungLabel(Rung) + "\"",
                     H});
    }
  }
  if (LatencyHistogram C = Svc.commitLatencySnapshot(); C.count() != 0)
    Out.push_back({"memlook_commit_latency_nanos", std::string(), C});
  return Out;
}

/// The 'le' ladder for one histogram: powers of 4 from 16 up past the
/// largest recorded value - coarse enough to keep the exposition
/// short, fine enough that a scrape sees the distribution's shape (the
/// full 12.5%-resolution data stays queryable via metricsJson()'s
/// percentiles).
std::vector<uint64_t> leBoundaries(const LatencyHistogram &H) {
  std::vector<uint64_t> Out;
  uint64_t Top = std::max<uint64_t>(H.maxSeen(), 16);
  for (uint64_t Le = 16; Le / 4 <= Top; Le *= 4) {
    Out.push_back(Le);
    if (Le > (uint64_t(1) << 40))
      break;
  }
  return Out;
}

} // namespace

std::span<const MetricDesc> memlook::service::serviceMetricCatalog() {
  return Catalog;
}

//===----------------------------------------------------------------------===//
// LookupService exposition (lives here to keep LookupService.cpp about
// the lookup machinery, not string formatting)
//===----------------------------------------------------------------------===//

std::string LookupService::metricsText() const {
  ServiceStats S = stats();
  std::string Out;
  Out.reserve(8192);

  std::string_view PrevName;
  for (const MetricDesc &M : serviceMetricCatalog()) {
    std::string_view Base = promBaseName(M.PromName);
    if (Base != PrevName) {
      Out += "# HELP ";
      Out += Base;
      Out += " ";
      Out += M.Help;
      Out += "\n# TYPE ";
      Out += Base;
      Out += M.K == MetricDesc::Kind::Gauge ? " gauge\n" : " counter\n";
      PrevName = Base;
    }
    Out += M.PromName;
    Out += " ";
    Out += std::to_string(M.Get(S));
    Out += "\n";
  }

  Out += "# HELP memlook_epoch Current published epoch.\n"
         "# TYPE memlook_epoch gauge\n"
         "memlook_epoch " +
         std::to_string(currentEpoch()) + "\n";

  std::string_view PrevHist;
  for (const NamedHistogram &NH : collectHistograms(*this)) {
    std::string LabelPrefix =
        NH.Labels.empty() ? std::string("{") : "{" + NH.Labels + ",";
    std::string BareLabels = NH.Labels.empty() ? "" : "{" + NH.Labels + "}";
    if (std::string_view(NH.Metric) != PrevHist) {
      Out += std::string("# HELP ") + NH.Metric +
             " Sampled latency distribution (nanoseconds).\n# TYPE " +
             NH.Metric + " histogram\n";
      PrevHist = NH.Metric;
    }
    for (uint64_t Le : leBoundaries(NH.H))
      Out += NH.Metric + ("_bucket" + LabelPrefix) + "le=\"" +
             std::to_string(Le) + "\"} " +
             std::to_string(cumulativeBelow(NH.H, Le)) + "\n";
    Out += NH.Metric + ("_bucket" + LabelPrefix) + "le=\"+Inf\"} " +
           std::to_string(NH.H.count()) + "\n";
    Out += NH.Metric + ("_sum" + BareLabels) + " " +
           std::to_string(NH.H.sum()) + "\n";
    Out += NH.Metric + ("_count" + BareLabels) + " " +
           std::to_string(NH.H.count()) + "\n";
  }
  return Out;
}

std::string LookupService::metricsJson() const {
  ServiceStats S = stats();
  std::string Out;
  Out.reserve(8192);
  Out += "{\n  \"epoch\": " + std::to_string(currentEpoch()) +
         ",\n  \"stats\": {";

  bool First = true;
  bool RungsEmitted = false;
  for (const MetricDesc &M : serviceMetricCatalog()) {
    if (std::string_view(M.StatField) == "RungAnswers") {
      if (RungsEmitted)
        continue;
      RungsEmitted = true;
      Out += First ? "\n    " : ",\n    ";
      Out += "\"RungAnswers\": [" + std::to_string(S.RungAnswers[0]) + ", " +
             std::to_string(S.RungAnswers[1]) + ", " +
             std::to_string(S.RungAnswers[2]) + "]";
    } else {
      Out += First ? "\n    " : ",\n    ";
      appendJsonString(Out, M.StatField);
      Out += ": " + std::to_string(M.Get(S));
    }
    First = false;
  }
  Out += "\n  },\n  \"histograms\": [";

  First = true;
  for (const NamedHistogram &NH : collectHistograms(*this)) {
    Out += First ? "\n    {" : ",\n    {";
    First = false;
    Out += "\"metric\": ";
    appendJsonString(Out, NH.Metric);
    if (!NH.Labels.empty()) {
      // Labels arrive as path="probe",rung="tabulated" - re-split them
      // into proper JSON fields.
      size_t Comma = NH.Labels.find(',');
      auto Emit = [&](std::string_view One) {
        size_t Eq = One.find('=');
        Out += ", ";
        appendJsonString(Out, One.substr(0, Eq));
        Out += ": ";
        Out += One.substr(Eq + 1);
      };
      Emit(std::string_view(NH.Labels).substr(0, Comma));
      Emit(std::string_view(NH.Labels).substr(Comma + 1));
    }
    Out += ", \"count\": " + std::to_string(NH.H.count());
    Out += ", \"sum\": " + std::to_string(NH.H.sum());
    Out += ", \"mean\": " + formatDouble(NH.H.mean());
    Out += ", \"p50\": " + formatDouble(NH.H.percentile(50));
    Out += ", \"p90\": " + formatDouble(NH.H.percentile(90));
    Out += ", \"p99\": " + formatDouble(NH.H.percentile(99));
    Out += ", \"p999\": " + formatDouble(NH.H.percentile(99.9));
    Out += ", \"max\": " + std::to_string(NH.H.maxSeen());
    Out += "}";
  }
  Out += "\n  ],\n  \"trace\": {\"recorded\": " +
         std::to_string(S.TraceEventsRecorded) +
         ", \"overwritten\": " + std::to_string(S.TraceEventsOverwritten) +
         "},\n  \"anomalies\": {\"logged\": " +
         std::to_string(S.AnomaliesLogged) +
         ", \"suppressed\": " + std::to_string(S.AnomaliesSuppressed) +
         "}\n}\n";
  return Out;
}

std::vector<TraceEvent> LookupService::drainTrace() const {
  return Obs.trace().drain();
}

std::vector<AnomalyRecord> LookupService::recentAnomalies() const {
  return Obs.anomalies().recent();
}

LatencyHistogram LookupService::latencySnapshot(QueryPath Path) const {
  return Obs.latencyMerged(Path);
}

LatencyHistogram LookupService::latencySnapshot(QueryPath Path,
                                                AnswerRung Rung) const {
  return Obs.latency(Path, Rung);
}

LatencyHistogram LookupService::commitLatencySnapshot() const {
  return Obs.commitLatency();
}
