//===- SnapshotFuzz.cpp - Snapshot-file fuzzing ------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/SnapshotFuzz.h"

#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/SnapshotFile.h"
#include "memlook/support/Rng.h"
#include "memlook/workload/Generators.h"

#include <algorithm>
#include <cstring>

using namespace memlook;
using namespace memlook::service;

namespace {

bool isRecoverableLoadFailure(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::SnapshotVersionMismatch:
  case ErrorCode::SnapshotChecksumMismatch:
  case ErrorCode::SnapshotMalformed:
  case ErrorCode::BudgetExceeded:
    return true;
  default:
    return false;
  }
}

/// Byte-level mutations. Every op changes at least one byte of a
/// non-empty buffer (flipping a bit cannot be a no-op; the others are
/// retried by construction or fall back to a flip).
enum class MutationOp : uint64_t {
  FlipBit = 0,
  Truncate,
  SwapSections,
  CorruptLengthField,
  ZeroRange,
  DuplicateRange,
  NumOps,
};

const char *mutationName(MutationOp Op) {
  switch (Op) {
  case MutationOp::FlipBit:
    return "flip-bit";
  case MutationOp::Truncate:
    return "truncate";
  case MutationOp::SwapSections:
    return "swap-sections";
  case MutationOp::CorruptLengthField:
    return "corrupt-length";
  case MutationOp::ZeroRange:
    return "zero-range";
  case MutationOp::DuplicateRange:
    return "duplicate-range";
  case MutationOp::NumOps:
    break;
  }
  return "?";
}

void flipBit(Rng &R, std::string &B) {
  size_t At = R.nextBelow(B.size());
  B[At] = static_cast<char>(B[At] ^ (1u << R.nextBelow(8)));
}

/// Applies \p Op to \p B. Returns false when the op cannot apply (e.g.
/// a single-section swap), in which case the caller falls back.
bool applyMutation(Rng &R, MutationOp Op, std::string &B) {
  switch (Op) {
  case MutationOp::FlipBit:
    flipBit(R, B);
    return true;

  case MutationOp::Truncate:
    B.resize(R.nextBelow(B.size())); // always strictly shorter
    return true;

  case MutationOp::SwapSections: {
    // Swap two section payloads while leaving the section table alone:
    // offsets, sizes, and CRCs then describe bytes that are no longer
    // there.
    Expected<std::vector<SnapshotSectionInfo>> Sections =
        inspectSnapshotSections(B);
    if (!Sections || Sections->size() < 2)
      return false;
    size_t I = R.nextBelow(Sections->size());
    size_t J = R.nextBelow(Sections->size());
    if (I == J)
      J = (J + 1) % Sections->size();
    const SnapshotSectionInfo &A = (*Sections)[std::min(I, J)];
    const SnapshotSectionInfo &C = (*Sections)[std::max(I, J)];
    std::string Between = B.substr(A.Offset + A.Size,
                                   C.Offset - (A.Offset + A.Size));
    std::string Rebuilt = B.substr(0, A.Offset);
    Rebuilt += B.substr(C.Offset, C.Size);
    Rebuilt += Between;
    Rebuilt += B.substr(A.Offset, A.Size);
    Rebuilt += B.substr(C.Offset + C.Size);
    if (Rebuilt == B)
      return false; // identical payloads: swapping changed nothing
    B = std::move(Rebuilt);
    return true;
  }

  case MutationOp::CorruptLengthField: {
    // Overwrite an aligned u32 in the header/section-table region,
    // where every length, offset, and count field lives.
    Expected<std::vector<SnapshotSectionInfo>> Sections =
        inspectSnapshotSections(B);
    size_t HeaderEnd = Sections && !Sections->empty()
                           ? static_cast<size_t>((*Sections)[0].Offset)
                           : std::min<size_t>(B.size(), 64);
    if (HeaderEnd < sizeof(uint32_t))
      return false;
    size_t At = R.nextBelow(HeaderEnd / sizeof(uint32_t)) * sizeof(uint32_t);
    uint32_t Lie = R.nextChance(1, 2)
                       ? static_cast<uint32_t>(R.next())
                       : static_cast<uint32_t>(R.nextBelow(1u << 20));
    if (std::memcmp(B.data() + At, &Lie, sizeof(Lie)) == 0)
      return false;
    std::memcpy(B.data() + At, &Lie, sizeof(Lie));
    return true;
  }

  case MutationOp::ZeroRange: {
    size_t At = R.nextBelow(B.size());
    size_t Len = 1 + R.nextBelow(std::min<size_t>(B.size() - At, 64));
    bool AllZero = true;
    for (size_t I = At; I != At + Len; ++I)
      AllZero &= B[I] == 0;
    if (AllZero)
      return false;
    std::memset(B.data() + At, 0, Len);
    return true;
  }

  case MutationOp::DuplicateRange: {
    if (B.size() < 2)
      return false;
    size_t Len = 1 + R.nextBelow(std::min<size_t>(B.size() / 2, 64));
    size_t From = R.nextBelow(B.size() - Len + 1);
    size_t To = R.nextBelow(B.size() - Len + 1);
    if (From == To ||
        std::memcmp(B.data() + From, B.data() + To, Len) == 0)
      return false;
    std::memmove(B.data() + To, B.data() + From, Len);
    return true;
  }

  case MutationOp::NumOps:
    break;
  }
  return false;
}

/// Appends to \p Out any (class, member) answer where \p Table (over
/// \p H) disagrees with \p Oracle (over \p OracleH - possibly a
/// different Hierarchy object describing the same classes, as after a
/// round trip). The join key is the member *spelling*: Symbol ids are
/// per-interner and intentionally not part of the persisted format.
/// Returns pairs compared.
uint64_t diffTables(const Hierarchy &H, const LookupTable &Table,
                    const Hierarchy &OracleH, const LookupTable &Oracle,
                    const char *What, std::vector<std::string> &Out) {
  uint64_t Pairs = 0;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    for (Symbol M : H.allMemberNames()) {
      ++Pairs;
      Symbol OracleM = OracleH.findName(H.spelling(M));
      std::string Got =
          renderLookupForComparison(H, Table.find(H, ClassId(Idx), M));
      std::string Want = renderLookupForComparison(
          OracleH, Oracle.find(OracleH, ClassId(Idx), OracleM));
      if (Got != Want && Out.size() < 8)
        Out.push_back(std::string(What) + ": " +
                      std::string(H.className(ClassId(Idx))) + "::" +
                      std::string(H.spelling(M)) + ": loaded table says '" +
                      Got + "' but the oracle says '" + Want + "'");
    }
  }
  return Pairs;
}

} // namespace

SnapshotFuzzCaseResult
memlook::service::runSnapshotFuzzCase(uint64_t Seed,
                                      const ResourceBudget &Budget) {
  SnapshotFuzzCaseResult Result;
  Result.Seed = Seed;

  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 0x5eed);

  RandomHierarchyParams Params;
  Params.NumClasses = static_cast<uint32_t>(R.nextInRange(4, 40));
  Params.MemberPool = static_cast<uint32_t>(R.nextInRange(3, 10));
  Params.StaticChance = 0.2;
  Params.UsingChance = 0.15;
  Workload W = makeRandomHierarchy(Params, R.next());
  const Hierarchy &H = W.H;

  // One case in eight serializes a cold snapshot (hierarchy only), so
  // the two-section geometry is fuzzed too.
  std::shared_ptr<const LookupTable> Table;
  if (!R.nextChance(1, 8))
    Table = LookupTable::build(H, Deadline::never(), /*Threads=*/1);
  std::string Pristine = serializeSnapshot(/*Epoch=*/1 + (Seed & 0xff), H,
                                           Table.get());
  Result.BytesSerialized = Pristine.size();

  // Round 0: the unmutated buffer must round-trip exactly.
  ++Result.RoundsRun;
  {
    Expected<SnapshotPayload> Loaded = deserializeSnapshot(Pristine, Budget);
    if (!Loaded) {
      Result.Mismatches.push_back("pristine buffer rejected: " +
                                  Loaded.status().toString());
    } else {
      ++Result.RoundsLoaded;
      if (Loaded->Epoch != 1 + (Seed & 0xff))
        Result.Mismatches.push_back("round trip changed the epoch");
      if (Loaded->H->numClasses() != H.numClasses())
        Result.Mismatches.push_back("round trip changed the class count");
      if ((Loaded->Table != nullptr) != (Table != nullptr))
        Result.Mismatches.push_back("round trip changed table presence");
      if (Loaded->Table && Table)
        Result.PairsChecked += diffTables(*Loaded->H, *Loaded->Table, H,
                                          *Table, "round-trip",
                                          Result.Mismatches);
    }
  }

  uint64_t NumRounds = R.nextInRange(6, 12);
  for (uint64_t Round = 0; Round != NumRounds; ++Round) {
    ++Result.RoundsRun;
    std::string B = Pristine;
    auto Op = static_cast<MutationOp>(
        R.nextBelow(static_cast<uint64_t>(MutationOp::NumOps)));
    if (!applyMutation(R, Op, B))
      flipBit(R, B); // fallback keeps every round a real mutation

    // Half the payload-content rounds reseal, pushing the corruption
    // past the checksum gate into the structural validators. Geometry
    // mutations stay unsealed (resealing a lying section table would
    // checksum the lie, which is exactly what an attacker would do -
    // CorruptLengthField covers that by NOT being eligible here).
    bool Resealed = false;
    if ((Op == MutationOp::FlipBit || Op == MutationOp::ZeroRange ||
         Op == MutationOp::DuplicateRange || Op == MutationOp::SwapSections) &&
        R.nextChance(1, 2))
      Resealed = resealSnapshotChecksums(B).isOk();

    Expected<SnapshotPayload> Loaded = deserializeSnapshot(B, Budget);
    if (!Loaded) {
      if (!isRecoverableLoadFailure(Loaded.status().code())) {
        Result.Mismatches.push_back(
            std::string(mutationName(Op)) +
            ": rejected with a non-snapshot error: " +
            Loaded.status().toString());
      }
      ++Result.RoundsRejected;
      continue;
    }
    ++Result.RoundsLoaded;

    if (!Resealed && B != Pristine) {
      // Every byte sits under a CRC and the geometry is cross-checked,
      // so an unsealed change that still loads means a validation hole.
      Result.Mismatches.push_back(std::string(mutationName(Op)) +
                                  ": unsealed mutation was accepted");
      continue;
    }

    // A resealed file may describe a different but valid snapshot; what
    // it must never do is decode into a table that answers differently
    // from a fresh tabulation over its own hierarchy.
    if (Loaded->Table) {
      std::shared_ptr<const LookupTable> Oracle =
          LookupTable::build(*Loaded->H, Deadline::never(), /*Threads=*/1);
      Result.PairsChecked +=
          diffTables(*Loaded->H, *Loaded->Table, *Loaded->H, *Oracle,
                     mutationName(Op), Result.Mismatches);
    }
  }
  return Result;
}

SnapshotFuzzCampaignReport
memlook::service::runSnapshotFuzzCampaign(uint64_t FirstSeed,
                                          uint64_t NumCases,
                                          const ResourceBudget &Budget) {
  SnapshotFuzzCampaignReport Report;
  for (uint64_t Idx = 0; Idx != NumCases; ++Idx) {
    SnapshotFuzzCaseResult Case = runSnapshotFuzzCase(FirstSeed + Idx, Budget);
    ++Report.CasesRun;
    Report.RoundsRun += Case.RoundsRun;
    Report.RoundsRejected += Case.RoundsRejected;
    Report.RoundsLoaded += Case.RoundsLoaded;
    Report.PairsChecked += Case.PairsChecked;
    if (!Case.passed())
      Report.Failures.push_back(std::move(Case));
  }
  return Report;
}
