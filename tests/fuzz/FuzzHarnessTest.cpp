//===- FuzzHarnessTest.cpp -------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CI face of the fuzz harness: a deterministic 1000-seed campaign
/// through the full untrusted-input pipeline (generate -> mutate ->
/// parse under budget -> differential oracle). Any crash fails the
/// binary, any sanitizer report fails the asan preset, and any engine
/// disagreement fails these assertions with the offending seed in the
/// message - `runFuzzCase(seed)` reproduces it exactly.
///
//===----------------------------------------------------------------------===//

#include "memlook/frontend/FuzzHarness.h"

#include <gtest/gtest.h>

using namespace memlook;

namespace {
constexpr uint64_t CampaignSeed = 20260805;
constexpr uint64_t CampaignSize = 1000;
} // namespace

TEST(FuzzHarnessTest, GenerationIsDeterministic) {
  for (uint64_t Seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(generateFuzzInput(Seed), generateFuzzInput(Seed))
        << "seed " << Seed;
  }
  // Distinct seeds should essentially never collide.
  EXPECT_NE(generateFuzzInput(1), generateFuzzInput(2));
}

TEST(FuzzHarnessTest, CaseResultsAreReproducible) {
  for (uint64_t Seed = 0; Seed != 16; ++Seed) {
    FuzzCaseResult A = runFuzzCase(Seed);
    FuzzCaseResult B = runFuzzCase(Seed);
    EXPECT_EQ(A.Parsed, B.Parsed) << "seed " << Seed;
    EXPECT_EQ(A.PairsChecked, B.PairsChecked) << "seed " << Seed;
    EXPECT_EQ(A.PairsSkipped, B.PairsSkipped) << "seed " << Seed;
    EXPECT_EQ(A.Mismatches, B.Mismatches) << "seed " << Seed;
  }
}

TEST(FuzzHarnessTest, CampaignOf1000SeedsFindsNoBugs) {
  FuzzCampaignReport Report =
      runFuzzCampaign(CampaignSeed, CampaignSize,
                      ResourceBudget::untrustedInput());

  EXPECT_EQ(Report.CasesRun, CampaignSize);
  for (const FuzzCaseResult &Failure : Report.Failures)
    for (const std::string &Mismatch : Failure.Mismatches)
      ADD_FAILURE() << "seed " << Failure.Seed << ": " << Mismatch;
  EXPECT_TRUE(Report.passed());

  // The corpus must exercise both sides of the pipeline: a healthy
  // fraction parses (oracle coverage) and a healthy fraction is
  // rejected (error-path coverage). These are loose structural floors,
  // not tuning targets.
  EXPECT_GT(Report.CasesParsed, CampaignSize / 10);
  EXPECT_GT(Report.CasesRejected, CampaignSize / 10);
  EXPECT_GT(Report.PairsChecked, 0u);
}

TEST(FuzzHarnessTest, HostileHandAuthoredInputsDoNotCrash) {
  const char *Inputs[] = {
      "",
      ";",
      "}",
      "{{{{{{{{",
      "class",
      "class ;",
      "class A : A {};",
      "class A { class A { class A {",
      "lookup ::;",
      "expect A::m = ;",
      "code { x; }",
      "using X::y;",
      "\x01\x02\x03\xff",
      "/* never closed",
      "class A {}; class A {}; class A {};",
      "struct S : virtual S, S {};",
  };
  for (const char *Input : Inputs) {
    FuzzCaseResult Result =
        runFuzzCase(/*Seed=*/0, Input, ResourceBudget::untrustedInput());
    EXPECT_TRUE(Result.passed()) << "input: " << Input;
  }
}

TEST(FuzzHarnessTest, FaultInjectedCampaignDegradesGracefully) {
  // With the injector arming every reference lookup to trip, the oracle
  // must skip pairs rather than mismatch or crash.
  ResourceBudget Budget = ResourceBudget::untrustedInput();
  Budget.FaultAfterChecks = 1;
  FuzzCampaignReport Report = runFuzzCampaign(CampaignSeed, 50, Budget);
  EXPECT_TRUE(Report.passed());
  // Some parsed cases must have hit the injector and been skipped.
  EXPECT_GT(Report.PairsSkipped, 0u);
}
