//===- DotExportTest.cpp ---------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/DotExport.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace memlook;
using namespace memlook::testutil;

TEST(DotExportTest, Figure2StyleMatchesPaperConvention) {
  Hierarchy H = makeFigure2();
  std::ostringstream OS;
  writeHierarchyDot(H, OS, "fig2");
  std::string Out = OS.str();

  // Every class appears as a node.
  for (const char *Name : {"A", "B", "C", "D", "E"})
    EXPECT_NE(Out.find(std::string("\"") + Name + "\" [label="),
              std::string::npos)
        << Name;

  // Virtual edges dashed (B -> C, B -> D), non-virtual solid (A -> B).
  EXPECT_NE(Out.find("\"B\" -> \"C\" [style=dashed];"), std::string::npos);
  EXPECT_NE(Out.find("\"B\" -> \"D\" [style=dashed];"), std::string::npos);
  EXPECT_NE(Out.find("\"A\" -> \"B\";"), std::string::npos);
}

TEST(DotExportTest, MembersListedInNodeLabels) {
  Hierarchy H = makeFigure3();
  std::ostringstream OS;
  writeHierarchyDot(H, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("A\\nfoo()"), std::string::npos);
  EXPECT_NE(Out.find("G\\nfoo()\\nbar()"), std::string::npos);
}

TEST(DotExportTest, StaticMembersMarked) {
  HierarchyBuilder B;
  B.addClass("A").withStaticMember("s");
  Hierarchy H = std::move(B).build();
  std::ostringstream OS;
  writeHierarchyDot(H, OS);
  EXPECT_NE(OS.str().find("static s"), std::string::npos);
}
