//===- DominanceLawsTest.cpp - Experiment E10 ------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Property-based validation of the paper's formal core on randomly
/// generated hierarchies:
///
///  * the closed-form dominance test (Path.h) agrees with the literal
///    Definition 5 ("a dominates b iff a hides some a' ~ b") evaluated
///    by brute-force path enumeration;
///  * Lemma 1: dominance is ~-invariant;
///  * Lemma 2: dominance is a partial order on ~-classes;
///  * Lemma 3: path extension distributes over dominance.
///
//===----------------------------------------------------------------------===//

#include "memlook/chg/Path.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// Literal Definition 5: a dominates b iff a is a suffix of some a' with
/// a' ~ b. Brute force over all paths with mdc(b)'s target.
bool dominatesLiteral(const Hierarchy &H, const Path &A, const Path &B) {
  if (A.mdc() != B.mdc())
    return false;
  bool Found = false;
  enumeratePathsTo(H, B.mdc(), [&](const Path &Candidate) {
    if (!Found && equivalent(H, Candidate, B) && hides(A, Candidate))
      Found = true;
  });
  return Found;
}

/// All paths ending at Mdc, capped.
std::vector<Path> pathsTo(const Hierarchy &H, ClassId Mdc) {
  std::vector<Path> Paths;
  enumeratePathsTo(H, Mdc, [&](const Path &P) { Paths.push_back(P); },
                   /*MaxPaths=*/4096);
  return Paths;
}

class DominanceLawsTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DominanceLawsTest, ClosedFormMatchesLiteralDefinition5) {
  RandomHierarchyParams Params;
  Params.NumClasses = 14;
  Params.AvgBases = 1.7;
  Params.VirtualEdgeChance = 0.35;
  Workload W = makeRandomHierarchy(Params, GetParam());

  for (ClassId C : W.QueryClasses) {
    std::vector<Path> Paths = pathsTo(W.H, C);
    if (Paths.size() > 40)
      Paths.resize(40); // keep the O(paths^2 * paths) check tractable
    for (const Path &A : Paths)
      for (const Path &B : Paths)
        EXPECT_EQ(dominates(W.H, A, B), dominatesLiteral(W.H, A, B))
            << "seed " << GetParam() << ": " << formatPath(W.H, A) << " vs "
            << formatPath(W.H, B);
  }
}

TEST_P(DominanceLawsTest, Lemma1DominanceIsEquivalenceInvariant) {
  RandomHierarchyParams Params;
  Params.NumClasses = 12;
  Params.VirtualEdgeChance = 0.4;
  Workload W = makeRandomHierarchy(Params, GetParam() * 7919 + 1);

  for (ClassId C : W.QueryClasses) {
    std::vector<Path> Paths = pathsTo(W.H, C);
    if (Paths.size() > 30)
      Paths.resize(30);
    for (const Path &A : Paths)
      for (const Path &A2 : Paths) {
        if (!equivalent(W.H, A, A2))
          continue;
        for (const Path &B : Paths)
          EXPECT_EQ(dominates(W.H, A, B), dominates(W.H, A2, B))
              << "left-invariance, seed " << GetParam();
      }
  }
}

TEST_P(DominanceLawsTest, Lemma2PartialOrderOnClasses) {
  RandomHierarchyParams Params;
  Params.NumClasses = 12;
  Params.VirtualEdgeChance = 0.3;
  Workload W = makeRandomHierarchy(Params, GetParam() * 104729 + 3);

  for (ClassId C : W.QueryClasses) {
    // One representative per ~-class.
    std::map<SubobjectKey, Path> Classes;
    for (const Path &P : pathsTo(W.H, C))
      Classes.emplace(subobjectKey(W.H, P), P);

    // Reflexivity.
    for (const auto &[Key, Repr] : Classes)
      EXPECT_TRUE(dominates(W.H, Key, Key));

    // Antisymmetry on distinct classes.
    for (const auto &[KeyA, ReprA] : Classes)
      for (const auto &[KeyB, ReprB] : Classes) {
        if (KeyA == KeyB)
          continue;
        EXPECT_FALSE(dominates(W.H, KeyA, KeyB) &&
                     dominates(W.H, KeyB, KeyA))
            << "antisymmetry violated, seed " << GetParam();
      }

    // Transitivity.
    for (const auto &[KeyA, ReprA] : Classes)
      for (const auto &[KeyB, ReprB] : Classes)
        for (const auto &[KeyC, ReprC] : Classes)
          if (dominates(W.H, KeyA, KeyB) && dominates(W.H, KeyB, KeyC)) {
            EXPECT_TRUE(dominates(W.H, KeyA, KeyC))
                << "transitivity violated, seed " << GetParam();
          }
  }
}

TEST_P(DominanceLawsTest, Lemma3ExtensionDistributes) {
  // gamma . (X->Y) dominates delta . (X->Y) iff gamma dominates delta.
  RandomHierarchyParams Params;
  Params.NumClasses = 12;
  Params.VirtualEdgeChance = 0.35;
  Workload W = makeRandomHierarchy(Params, GetParam() * 31337 + 5);

  for (uint32_t Idx = 0; Idx != W.H.numClasses(); ++Idx) {
    ClassId X(Idx);
    std::vector<Path> ToX = pathsTo(W.H, X);
    if (ToX.size() > 25)
      ToX.resize(25);
    for (ClassId Y : W.H.info(X).DirectDerived)
      for (const Path &Gamma : ToX)
        for (const Path &Delta : ToX)
          EXPECT_EQ(dominates(W.H, extend(Gamma, Y), extend(Delta, Y)),
                    dominates(W.H, Gamma, Delta))
              << "seed " << GetParam() << ": " << formatPath(W.H, Gamma)
              << " / " << formatPath(W.H, Delta) << " over edge to "
              << W.H.className(Y);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceLawsTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST_P(DominanceLawsTest, HidesImpliesDominatesAndSuffixLaws) {
  RandomHierarchyParams Params;
  Params.NumClasses = 12;
  Params.VirtualEdgeChance = 0.35;
  Workload W = makeRandomHierarchy(Params, GetParam() * 55441 + 2);

  for (ClassId C : W.QueryClasses) {
    std::vector<Path> Paths = pathsTo(W.H, C);
    if (Paths.size() > 30)
      Paths.resize(30);
    for (const Path &A : Paths)
      for (const Path &B : Paths) {
        // Definition 5: hides is the suffix relation, and hiding is a
        // special case of dominating (take b' = b).
        if (hides(A, B)) {
          EXPECT_TRUE(dominates(W.H, A, B))
              << formatPath(W.H, A) << " hides but does not dominate "
              << formatPath(W.H, B);
          // Suffix facts: shared mdc, ldc(A) on B's node list.
          EXPECT_EQ(A.mdc(), B.mdc());
          EXPECT_NE(std::find(B.Nodes.begin(), B.Nodes.end(), A.ldc()),
                    B.Nodes.end());
        }
        // hides is antisymmetric outright (exact suffix both ways =>
        // equality), unlike dominates which is antisymmetric only up
        // to ~.
        if (hides(A, B) && hides(B, A)) {
          EXPECT_EQ(A, B);
        }
      }
  }
}

//===----------------------------------------------------------------------===//
// Deterministic corner cases
//===----------------------------------------------------------------------===//

TEST(DominanceCornersTest, TrivialPathDominatesEverythingAtItsClass) {
  Hierarchy H = makeFigure1();
  ClassId E = H.findClass("E");
  Path Trivial(E);
  enumeratePathsTo(H, E, [&](const Path &P) {
    EXPECT_TRUE(dominates(H, Trivial, P))
        << "the class's own scope hides all inherited members";
  });
}

TEST(DominanceCornersTest, VirtualDiamondSharedBaseIsDominated) {
  Hierarchy H = makeFigure2();
  // In Figure 2, <D,E> dominates the shared A subobject <A,B>*E.
  Path DE = pathOf(H, {"D", "E"});
  Path ABE = pathOf(H, {"A", "B", "D", "E"}); // one witness of <A,B>*E
  EXPECT_TRUE(dominates(H, DE, ABE));
  EXPECT_FALSE(dominates(H, ABE, DE));
}

TEST(DominanceCornersTest, NonVirtualReplicationIsIncomparable) {
  Hierarchy H = makeFigure1();
  Path ViaC = pathOf(H, {"A", "B", "C", "E"});
  Path ViaD = pathOf(H, {"A", "B", "D", "E"});
  EXPECT_FALSE(dominates(H, ViaC, ViaD));
  EXPECT_FALSE(dominates(H, ViaD, ViaC));
}

TEST(DominanceCornersTest, DifferentMdcNeverDominates) {
  Hierarchy H = makeFigure3();
  EXPECT_FALSE(
      dominates(H, pathOf(H, {"A", "B"}), pathOf(H, {"A", "C"})));
}
