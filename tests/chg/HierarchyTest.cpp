//===- HierarchyTest.cpp ---------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/Hierarchy.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(HierarchyTest, CreateAndFindClasses) {
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B");
  ASSERT_TRUE(A.isValid());
  ASSERT_TRUE(B.isValid());
  EXPECT_EQ(H.numClasses(), 2u);
  EXPECT_EQ(H.findClass("A"), A);
  EXPECT_EQ(H.findClass("B"), B);
  EXPECT_FALSE(H.findClass("C").isValid());
  EXPECT_EQ(H.className(A), "A");
}

TEST(HierarchyTest, DuplicateClassIsRejected) {
  Hierarchy H;
  DiagnosticEngine Diags;
  ASSERT_TRUE(H.createClass("A", SourceLoc(), &Diags).isValid());
  EXPECT_FALSE(H.createClass("A", SourceLoc(), &Diags).isValid());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(HierarchyTest, SelfInheritanceIsRejected) {
  Hierarchy H;
  DiagnosticEngine Diags;
  ClassId A = H.createClass("A");
  EXPECT_FALSE(H.addBase(A, A, InheritanceKind::NonVirtual,
                         AccessSpec::Public, SourceLoc(), &Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(HierarchyTest, DuplicateDirectBaseIsRejected) {
  // C++ [class.mi]: a class shall not be specified as a direct base
  // class more than once.
  Hierarchy H;
  DiagnosticEngine Diags;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B");
  EXPECT_TRUE(H.addBase(B, A));
  EXPECT_FALSE(H.addBase(B, A, InheritanceKind::Virtual, AccessSpec::Public,
                         SourceLoc(), &Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(HierarchyTest, MemberRedeclarationFoldsWithWarning) {
  Hierarchy H;
  DiagnosticEngine Diags;
  ClassId A = H.createClass("A");
  H.addMember(A, "m");
  H.addMember(A, "m", /*IsStatic=*/true, false, AccessSpec::Public,
              SourceLoc(), &Diags);
  EXPECT_EQ(H.info(A).Members.size(), 1u);
  EXPECT_FALSE(H.info(A).Members.front().IsStatic) << "first decl wins";
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 1u);
}

TEST(HierarchyTest, CycleFailsFinalize) {
  // Cycles cannot be written in C++ source (a base must be complete),
  // but the API must still reject them for robustness.
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B");
  ASSERT_TRUE(H.addBase(B, A)); // A -> B
  ASSERT_TRUE(H.addBase(A, B)); // B -> A: cycle
  DiagnosticEngine Diags;
  EXPECT_FALSE(H.finalize(Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(HierarchyTest, TopologicalOrderRespectsEdges) {
  Hierarchy H = makeFigure3();
  const std::vector<ClassId> &Order = H.topologicalOrder();
  ASSERT_EQ(Order.size(), H.numClasses());
  std::vector<uint32_t> Pos(H.numClasses());
  for (uint32_t I = 0; I != Order.size(); ++I)
    Pos[Order[I].index()] = I;
  for (uint32_t D = 0; D != H.numClasses(); ++D)
    for (const BaseSpecifier &Spec : H.info(ClassId(D)).DirectBases)
      EXPECT_LT(Pos[Spec.Base.index()], Pos[D]);
}

TEST(HierarchyTest, BaseClosureOnFigure3) {
  Hierarchy H = makeFigure3();
  ClassId A = H.findClass("A"), B = H.findClass("B"), C = H.findClass("C"),
          D = H.findClass("D"), E = H.findClass("E"), F = H.findClass("F"),
          G = H.findClass("G"), HH = H.findClass("H");

  EXPECT_TRUE(H.isBaseOf(A, HH));
  EXPECT_TRUE(H.isBaseOf(A, D));
  EXPECT_TRUE(H.isBaseOf(B, D));
  EXPECT_TRUE(H.isBaseOf(E, F));
  EXPECT_TRUE(H.isBaseOf(E, HH));
  EXPECT_FALSE(H.isBaseOf(E, G));
  EXPECT_FALSE(H.isBaseOf(HH, A)) << "base-of is directional";
  EXPECT_FALSE(H.isBaseOf(A, A)) << "base-of is proper (nonempty path)";
  EXPECT_FALSE(H.isBaseOf(B, C)) << "siblings are unrelated";
  EXPECT_TRUE(H.isBaseOf(D, F));
  EXPECT_TRUE(H.isBaseOf(D, G));
}

TEST(HierarchyTest, VirtualBaseClosureOnFigure3) {
  // X is a virtual base of Y iff some X->...->Y path *starts* with a
  // virtual edge (Section 2). In Figure 3 only D -> F and D -> G are
  // virtual.
  Hierarchy H = makeFigure3();
  ClassId A = H.findClass("A"), D = H.findClass("D"), F = H.findClass("F"),
          G = H.findClass("G"), HH = H.findClass("H");

  EXPECT_TRUE(H.isVirtualBaseOf(D, F));
  EXPECT_TRUE(H.isVirtualBaseOf(D, G));
  EXPECT_TRUE(H.isVirtualBaseOf(D, HH)) << "virtual-ness persists upward";
  EXPECT_FALSE(H.isVirtualBaseOf(A, HH))
      << "paths from A start with non-virtual edges";
  EXPECT_FALSE(H.isVirtualBaseOf(F, HH));
  EXPECT_FALSE(H.isVirtualBaseOf(G, HH));
}

TEST(HierarchyTest, VirtualBaseRequiresFirstEdgeVirtual) {
  // B -> C virtual, A -> B non-virtual: B is a virtual base of C but A
  // is NOT (the A -> B -> C path starts with a non-virtual edge).
  HierarchyBuilder Builder;
  Builder.addClass("A");
  Builder.addClass("B").withBase("A");
  Builder.addClass("C").withVirtualBase("B");
  Hierarchy H = std::move(Builder).build();
  EXPECT_TRUE(H.isVirtualBaseOf(H.findClass("B"), H.findClass("C")));
  EXPECT_FALSE(H.isVirtualBaseOf(H.findClass("A"), H.findClass("C")));
  EXPECT_TRUE(H.isBaseOf(H.findClass("A"), H.findClass("C")));
}

TEST(HierarchyTest, EdgeKindAndAccess) {
  Hierarchy H = makeFigure3();
  ClassId D = H.findClass("D"), F = H.findClass("F"), E = H.findClass("E"),
          A = H.findClass("A");

  ASSERT_TRUE(H.edgeKind(D, F).has_value());
  EXPECT_EQ(*H.edgeKind(D, F), InheritanceKind::Virtual);
  ASSERT_TRUE(H.edgeKind(E, F).has_value());
  EXPECT_EQ(*H.edgeKind(E, F), InheritanceKind::NonVirtual);
  EXPECT_FALSE(H.edgeKind(A, F).has_value()) << "no direct edge";
  EXPECT_EQ(*H.edgeAccess(D, F), AccessSpec::Public);
}

TEST(HierarchyTest, MemberQueries) {
  Hierarchy H = makeFigure3();
  ClassId A = H.findClass("A"), G = H.findClass("G");
  Symbol Foo = H.findName("foo");
  Symbol Bar = H.findName("bar");
  ASSERT_TRUE(Foo.isValid());
  ASSERT_TRUE(Bar.isValid());

  EXPECT_TRUE(H.declaresMember(A, Foo));
  EXPECT_FALSE(H.declaresMember(A, Bar));
  EXPECT_TRUE(H.declaresMember(G, Foo));
  EXPECT_TRUE(H.declaresMember(G, Bar));
  EXPECT_EQ(H.allMemberNames().size(), 2u);
  EXPECT_EQ(H.numMemberDecls(), 5u);
}

TEST(HierarchyTest, EdgeCountMatches) {
  Hierarchy H = makeFigure3();
  EXPECT_EQ(H.numEdges(), 9u);
}

TEST(HierarchyTest, AccessRestriction) {
  EXPECT_EQ(restrictAccess(AccessSpec::Public, AccessSpec::Public),
            AccessSpec::Public);
  EXPECT_EQ(restrictAccess(AccessSpec::Public, AccessSpec::Private),
            AccessSpec::Private);
  EXPECT_EQ(restrictAccess(AccessSpec::Protected, AccessSpec::Public),
            AccessSpec::Protected);
  EXPECT_EQ(restrictAccess(AccessSpec::Private, AccessSpec::Protected),
            AccessSpec::Private);
}

TEST(HierarchyTest, AccessSpelling) {
  EXPECT_STREQ(accessSpelling(AccessSpec::Public), "public");
  EXPECT_STREQ(accessSpelling(AccessSpec::Protected), "protected");
  EXPECT_STREQ(accessSpelling(AccessSpec::Private), "private");
}

TEST(HierarchyTest, ValidateAcceptsCleanDraft) {
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B");
  H.addBase(B, A, InheritanceKind::NonVirtual, AccessSpec::Public);
  H.addMember(A, "m", false, false, AccessSpec::Public);
  H.addUsingDeclaration(B, A, "m", AccessSpec::Public);
  DiagnosticEngine Diags;
  EXPECT_TRUE(H.validate(Diags));
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(HierarchyTest, ValidateReportsCycleWithoutMutating) {
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B");
  H.addBase(B, A, InheritanceKind::NonVirtual, AccessSpec::Public);
  H.addBase(A, B, InheritanceKind::NonVirtual, AccessSpec::Public);
  DiagnosticEngine Diags;
  EXPECT_FALSE(H.validate(Diags));
  EXPECT_TRUE(Diags.hasCode(DiagCode::InheritanceCycle));
  // validate() is const: the draft is still usable for diagnosis.
  EXPECT_FALSE(H.isFinalized());
  EXPECT_EQ(H.numClasses(), 2u);
}

TEST(HierarchyTest, ValidateReportsNonBaseUsingTarget) {
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B"); // unrelated to A
  H.addMember(A, "m", false, false, AccessSpec::Public);
  H.addUsingDeclaration(B, A, "m", AccessSpec::Public);
  DiagnosticEngine Diags;
  EXPECT_FALSE(H.validate(Diags));
  EXPECT_TRUE(Diags.hasCode(DiagCode::InvalidUsingTarget));
}

TEST(HierarchyTest, ValidateIsCycleSafeWithUsingDeclarations) {
  // Both problems at once: the using-target walk must not loop forever
  // on a cyclic base graph.
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B");
  ClassId C = H.createClass("C");
  H.addBase(B, A, InheritanceKind::NonVirtual, AccessSpec::Public);
  H.addBase(A, B, InheritanceKind::NonVirtual, AccessSpec::Public);
  H.addMember(A, "m", false, false, AccessSpec::Public);
  H.addUsingDeclaration(C, A, "m", AccessSpec::Public);
  DiagnosticEngine Diags;
  EXPECT_FALSE(H.validate(Diags));
  EXPECT_TRUE(Diags.hasCode(DiagCode::InheritanceCycle));
  EXPECT_TRUE(Diags.hasCode(DiagCode::InvalidUsingTarget));
}
