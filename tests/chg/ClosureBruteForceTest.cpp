//===- ClosureBruteForceTest.cpp --------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The base-class and virtual-base closures that finalize() computes
/// with bit-row unions, validated against literal brute force:
///
///  * isBaseOf(B, D) iff a nonempty CHG path B -> ... -> D exists;
///  * isVirtualBaseOf(B, D) iff some such path starts with a virtual
///    edge (Section 2's definition, checked by path enumeration).
///
//===----------------------------------------------------------------------===//

#include "memlook/chg/Path.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// Literal reachability: DFS over direct-base lists, no closures.
bool reachableBruteForce(const Hierarchy &H, ClassId From, ClassId To) {
  if (From == To)
    return false; // base-of is proper
  std::vector<ClassId> Stack{From};
  std::vector<bool> Seen(H.numClasses(), false);
  Seen[From.index()] = true;
  while (!Stack.empty()) {
    ClassId Cur = Stack.back();
    Stack.pop_back();
    for (ClassId Derived : H.info(Cur).DirectDerived) {
      if (Derived == To)
        return true;
      if (!Seen[Derived.index()]) {
        Seen[Derived.index()] = true;
        Stack.push_back(Derived);
      }
    }
  }
  return false;
}

/// Literal Section 2 virtual-base test: enumerate paths From -> To and
/// look for one whose first edge is virtual.
bool virtualBaseBruteForce(const Hierarchy &H, ClassId From, ClassId To) {
  bool Found = false;
  enumeratePaths(H, From, To, [&](const Path &P) {
    if (Found || P.length() < 2)
      return;
    auto Kind = H.edgeKind(P.Nodes[0], P.Nodes[1]);
    if (Kind && *Kind == InheritanceKind::Virtual)
      Found = true;
  });
  return Found;
}

class ClosureBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ClosureBruteForceTest, BaseClosureMatchesReachability) {
  RandomHierarchyParams Params;
  Params.NumClasses = 18;
  Params.AvgBases = 2.1;
  Params.VirtualEdgeChance = 0.4;
  Workload W = makeRandomHierarchy(Params, GetParam() * 677 + 13);
  for (uint32_t A = 0; A != W.H.numClasses(); ++A)
    for (uint32_t B = 0; B != W.H.numClasses(); ++B)
      EXPECT_EQ(W.H.isBaseOf(ClassId(A), ClassId(B)),
                reachableBruteForce(W.H, ClassId(A), ClassId(B)))
          << W.H.className(ClassId(A)) << " vs "
          << W.H.className(ClassId(B)) << " seed " << GetParam();
}

TEST_P(ClosureBruteForceTest, VirtualClosureMatchesPathEnumeration) {
  RandomHierarchyParams Params;
  Params.NumClasses = 14; // enumeration-bounded
  Params.AvgBases = 1.9;
  Params.VirtualEdgeChance = 0.45;
  Workload W = makeRandomHierarchy(Params, GetParam() * 331 + 7);
  for (uint32_t A = 0; A != W.H.numClasses(); ++A)
    for (uint32_t B = 0; B != W.H.numClasses(); ++B)
      EXPECT_EQ(W.H.isVirtualBaseOf(ClassId(A), ClassId(B)),
                virtualBaseBruteForce(W.H, ClassId(A), ClassId(B)))
          << W.H.className(ClassId(A)) << " vs "
          << W.H.className(ClassId(B)) << " seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureBruteForceTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(ClosureBruteForceTest, VirtualBaseOfSelfIsAlwaysFalse) {
  Hierarchy H = makeFigure9();
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    EXPECT_FALSE(H.isBaseOf(ClassId(Idx), ClassId(Idx)));
    EXPECT_FALSE(H.isVirtualBaseOf(ClassId(Idx), ClassId(Idx)));
  }
}

TEST(ClosureBruteForceTest, VirtualBaseImpliesBase) {
  RandomHierarchyParams Params;
  Params.NumClasses = 30;
  Params.VirtualEdgeChance = 0.5;
  Workload W = makeRandomHierarchy(Params, 31415);
  for (uint32_t A = 0; A != W.H.numClasses(); ++A)
    for (uint32_t B = 0; B != W.H.numClasses(); ++B)
      if (W.H.isVirtualBaseOf(ClassId(A), ClassId(B))) {
        EXPECT_TRUE(W.H.isBaseOf(ClassId(A), ClassId(B)));
      }
}
