//===- PathCalculusTest.cpp - Experiment E3 --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the worked example of Section 3 on the Figure 3 hierarchy:
/// the four A..H paths, their fixed parts, the ~-equivalences, and the
/// hides/dominates facts the paper states verbatim.
///
//===----------------------------------------------------------------------===//

#include "memlook/chg/Path.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace memlook;
using namespace memlook::testutil;

namespace {

class PathCalculusTest : public ::testing::Test {
protected:
  PathCalculusTest() : H(makeFigure3()) {}

  Path path(std::initializer_list<const char *> Names) {
    std::vector<std::string> Strings(Names.begin(), Names.end());
    return pathOf(H, Strings);
  }

  Hierarchy H;
};

} // namespace

TEST_F(PathCalculusTest, ValidityFollowsEdges) {
  EXPECT_TRUE(isValidPath(H, path({"A", "B", "D", "F", "H"})));
  EXPECT_TRUE(isValidPath(H, path({"G", "H"})));
  EXPECT_TRUE(isValidPath(H, path({"A"}))) << "trivial path";
  EXPECT_FALSE(isValidPath(H, path({"A", "D"}))) << "no direct edge A->D";
  EXPECT_FALSE(isValidPath(H, path({"H", "G"}))) << "edges are directed";
  EXPECT_FALSE(isValidPath(H, Path())) << "empty path is invalid";
}

TEST_F(PathCalculusTest, LdcAndMdc) {
  Path P = path({"A", "B", "D", "F", "H"});
  EXPECT_EQ(P.ldc(), H.findClass("A"));
  EXPECT_EQ(P.mdc(), H.findClass("H"));
}

TEST_F(PathCalculusTest, FixedPartsMatchSection3Example) {
  // Paper: fixed(ABDFH) = ABD, fixed(ABDGH) = ABD,
  //        fixed(ACDFH) = ACD, fixed(ACDGH) = ACD.
  EXPECT_EQ(formatPath(H, fixedPrefix(H, path({"A", "B", "D", "F", "H"}))),
            "ABD");
  EXPECT_EQ(formatPath(H, fixedPrefix(H, path({"A", "B", "D", "G", "H"}))),
            "ABD");
  EXPECT_EQ(formatPath(H, fixedPrefix(H, path({"A", "C", "D", "F", "H"}))),
            "ACD");
  EXPECT_EQ(formatPath(H, fixedPrefix(H, path({"A", "C", "D", "G", "H"}))),
            "ACD");
  // A path with no virtual edge is its own fixed part.
  EXPECT_EQ(formatPath(H, fixedPrefix(H, path({"G", "H"}))), "GH");
  EXPECT_EQ(formatPath(H, fixedPrefix(H, path({"E", "F", "H"}))), "EFH");
}

TEST_F(PathCalculusTest, EquivalencesMatchSection3Example) {
  // Paper: ABDFH ~ ABDGH and ACDFH ~ ACDGH, but ABDFH !~ ACDFH.
  EXPECT_TRUE(equivalent(H, path({"A", "B", "D", "F", "H"}),
                         path({"A", "B", "D", "G", "H"})));
  EXPECT_TRUE(equivalent(H, path({"A", "C", "D", "F", "H"}),
                         path({"A", "C", "D", "G", "H"})));
  EXPECT_FALSE(equivalent(H, path({"A", "B", "D", "F", "H"}),
                          path({"A", "C", "D", "F", "H"})));
  EXPECT_TRUE(equivalent(H, path({"G", "H"}), path({"G", "H"})));
}

TEST_F(PathCalculusTest, TwoASubobjectsInAnHObject) {
  // "Thus, there are two different subobjects of class A in an instance
  // of H."
  std::set<SubobjectKey> Keys;
  ClassId A = H.findClass("A");
  enumeratePathsTo(H, H.findClass("H"), [&](const Path &P) {
    if (P.ldc() == A)
      Keys.insert(subobjectKey(H, P));
  });
  EXPECT_EQ(Keys.size(), 2u);
}

TEST_F(PathCalculusTest, VPathAndLeastVirtual) {
  EXPECT_TRUE(isVPath(H, path({"A", "B", "D", "F", "H"})));
  EXPECT_FALSE(isVPath(H, path({"G", "H"})));
  EXPECT_FALSE(isVPath(H, path({"A", "B", "D"})));

  // leastVirtual = mdc(fixed(p)) for v-paths, Omega otherwise (Def 14).
  EXPECT_EQ(leastVirtual(H, path({"A", "B", "D", "F", "H"})),
            H.findClass("D"));
  EXPECT_EQ(leastVirtual(H, path({"D", "G", "H"})), H.findClass("D"));
  EXPECT_FALSE(leastVirtual(H, path({"G", "H"})).isValid());
  EXPECT_FALSE(leastVirtual(H, path({"E", "F", "H"})).isValid());
}

TEST_F(PathCalculusTest, HidesIsSuffix) {
  // Paper: "path GH hides ABDGH but not ABDFH".
  EXPECT_TRUE(hides(path({"G", "H"}), path({"A", "B", "D", "G", "H"})));
  EXPECT_FALSE(hides(path({"G", "H"}), path({"A", "B", "D", "F", "H"})));
  EXPECT_TRUE(hides(path({"H"}), path({"G", "H"})));
  Path Self = path({"A", "B", "D"});
  EXPECT_TRUE(hides(Self, Self)) << "a path hides itself";
}

TEST_F(PathCalculusTest, DominatesMatchesSection3Example) {
  // Paper: GH dominates ABDFH (via ABDGH ~ ABDFH); FH dominates ABDGH.
  EXPECT_TRUE(
      dominates(H, path({"G", "H"}), path({"A", "B", "D", "F", "H"})));
  EXPECT_TRUE(
      dominates(H, path({"F", "H"}), path({"A", "B", "D", "G", "H"})));
  EXPECT_FALSE(
      dominates(H, path({"A", "B", "D", "F", "H"}), path({"G", "H"})));
  // Equivalent paths dominate each other (reflexivity up to ~).
  EXPECT_TRUE(dominates(H, path({"A", "B", "D", "F", "H"}),
                        path({"A", "B", "D", "G", "H"})));
}

TEST_F(PathCalculusTest, SubobjectKeyCanonicality) {
  SubobjectKey K1 = subobjectKey(H, path({"A", "B", "D", "F", "H"}));
  SubobjectKey K2 = subobjectKey(H, path({"A", "B", "D", "G", "H"}));
  SubobjectKey K3 = subobjectKey(H, path({"A", "C", "D", "F", "H"}));
  EXPECT_EQ(K1, K2);
  EXPECT_FALSE(K1 == K3);
  EXPECT_EQ(SubobjectKeyHash()(K1), SubobjectKeyHash()(K2));
  EXPECT_EQ(K1.ldc(), H.findClass("A"));
  EXPECT_EQ(K1.Mdc, H.findClass("H"));
  EXPECT_TRUE(K1.isVirtualPathClass());
  EXPECT_EQ(K1.fixedEnd(), H.findClass("D"));

  SubobjectKey NonVirtual = subobjectKey(H, path({"G", "H"}));
  EXPECT_FALSE(NonVirtual.isVirtualPathClass());
  EXPECT_EQ(NonVirtual.fixedEnd(), H.findClass("H"));
}

TEST_F(PathCalculusTest, KeyDominanceAgreesWithPathDominance) {
  std::vector<Path> Paths;
  enumeratePathsTo(H, H.findClass("H"),
                   [&](const Path &P) { Paths.push_back(P); });
  for (const Path &A : Paths)
    for (const Path &B : Paths)
      EXPECT_EQ(dominates(H, A, B),
                dominates(H, subobjectKey(H, A), subobjectKey(H, B)))
          << formatPath(H, A) << " vs " << formatPath(H, B);
}

TEST_F(PathCalculusTest, ConcatAndExtend) {
  Path AB = path({"A", "B"});
  Path BD = path({"B", "D"});
  Path ABD = concat(AB, BD);
  EXPECT_EQ(formatPath(H, ABD), "ABD");
  EXPECT_TRUE(isValidPath(H, ABD));
  EXPECT_EQ(formatPath(H, extend(ABD, H.findClass("F"))), "ABDF");
}

TEST_F(PathCalculusTest, FormatMultiCharNamesUsesDots) {
  HierarchyBuilder Builder;
  Builder.addClass("Base");
  Builder.addClass("Derived").withBase("Base");
  Hierarchy H2 = std::move(Builder).build();
  Path P = pathOf(H2, {"Base", "Derived"});
  EXPECT_EQ(formatPath(H2, P), "Base.Derived");
}

TEST_F(PathCalculusTest, FormatSubobjectKeyShowsVirtualTail) {
  EXPECT_EQ(formatSubobjectKey(
                H, subobjectKey(H, path({"A", "B", "D", "F", "H"}))),
            "ABD*H");
  EXPECT_EQ(formatSubobjectKey(H, subobjectKey(H, path({"G", "H"}))), "GH");
}

TEST_F(PathCalculusTest, EnumeratePathsFindsAllFourAToH) {
  std::vector<std::string> Found;
  enumeratePaths(H, H.findClass("A"), H.findClass("H"),
                 [&](const Path &P) { Found.push_back(formatPath(H, P)); });
  EXPECT_EQ(Found, (std::vector<std::string>{"ABDFH", "ABDGH", "ACDFH",
                                             "ACDGH"}));
}

TEST_F(PathCalculusTest, EnumeratePathsRespectsCap) {
  size_t Count = 0;
  bool Complete = enumeratePaths(
      H, H.findClass("A"), H.findClass("H"), [&](const Path &) { ++Count; },
      /*MaxPaths=*/2);
  EXPECT_FALSE(Complete);
  EXPECT_EQ(Count, 2u);
}

TEST_F(PathCalculusTest, EnumeratePathsToIncludesTrivialPath) {
  size_t Trivial = 0;
  enumeratePathsTo(H, H.findClass("H"), [&](const Path &P) {
    if (P.length() == 1)
      ++Trivial;
  });
  EXPECT_EQ(Trivial, 1u);
}

TEST_F(PathCalculusTest, NoPathsBetweenUnrelatedClasses) {
  size_t Count = 0;
  bool Complete = enumeratePaths(H, H.findClass("E"), H.findClass("G"),
                                 [&](const Path &) { ++Count; });
  EXPECT_TRUE(Complete);
  EXPECT_EQ(Count, 0u);
}
