//===- HierarchyBuilderTest.cpp --------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/HierarchyBuilder.h"

#include <gtest/gtest.h>

using namespace memlook;

TEST(HierarchyBuilderTest, BuildsFinalizedHierarchy) {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  B.addClass("B").withBase("A");
  Hierarchy H = std::move(B).build();
  EXPECT_TRUE(H.isFinalized());
  EXPECT_EQ(H.numClasses(), 2u);
  EXPECT_TRUE(H.isBaseOf(H.findClass("A"), H.findClass("B")));
}

TEST(HierarchyBuilderTest, VirtualBaseFlag) {
  HierarchyBuilder B;
  B.addClass("A");
  B.addClass("B").withVirtualBase("A");
  Hierarchy H = std::move(B).build();
  EXPECT_EQ(*H.edgeKind(H.findClass("A"), H.findClass("B")),
            InheritanceKind::Virtual);
}

TEST(HierarchyBuilderTest, MemberFlagsArePreserved) {
  HierarchyBuilder B;
  B.addClass("A")
      .withMember("plain")
      .withStaticMember("stat", AccessSpec::Protected)
      .withVirtualMember("virt", AccessSpec::Private);
  Hierarchy H = std::move(B).build();
  ClassId A = H.findClass("A");

  const MemberDecl *Plain = H.declaredMember(A, H.findName("plain"));
  const MemberDecl *Stat = H.declaredMember(A, H.findName("stat"));
  const MemberDecl *Virt = H.declaredMember(A, H.findName("virt"));
  ASSERT_TRUE(Plain && Stat && Virt);
  EXPECT_FALSE(Plain->IsStatic);
  EXPECT_FALSE(Plain->IsVirtual);
  EXPECT_TRUE(Stat->IsStatic);
  EXPECT_EQ(Stat->Access, AccessSpec::Protected);
  EXPECT_TRUE(Virt->IsVirtual);
  EXPECT_EQ(Virt->Access, AccessSpec::Private);
}

TEST(HierarchyBuilderTest, GetClassContinuesConstruction) {
  HierarchyBuilder B;
  B.addClass("A");
  B.getClass("A").withMember("late");
  Hierarchy H = std::move(B).build();
  EXPECT_TRUE(H.declaresMember(H.findClass("A"), H.findName("late")));
}

TEST(HierarchyBuilderTest, FromHierarchyCopiesEverything) {
  HierarchyBuilder B;
  B.addClass("A").withMember("m").withStaticMember("s", AccessSpec::Private);
  B.addClass("L").withBase("A", AccessSpec::Protected);
  B.addClass("R").withVirtualBase("A");
  B.addClass("D").withBase("L").withBase("R").withUsing("L", "m");
  Hierarchy Original = std::move(B).build();

  Hierarchy Copy = std::move(HierarchyBuilder::fromHierarchy(Original)).build();
  EXPECT_EQ(Copy.numClasses(), Original.numClasses());
  EXPECT_EQ(Copy.numEdges(), Original.numEdges());
  EXPECT_EQ(Copy.numMemberDecls(), Original.numMemberDecls());
  EXPECT_EQ(*Copy.edgeAccess(Copy.findClass("A"), Copy.findClass("L")),
            AccessSpec::Protected);
  EXPECT_EQ(*Copy.edgeKind(Copy.findClass("A"), Copy.findClass("R")),
            InheritanceKind::Virtual);
  const MemberDecl *S =
      Copy.declaredMember(Copy.findClass("A"), Copy.findName("s"));
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->IsStatic);
  EXPECT_EQ(S->Access, AccessSpec::Private);
  const MemberDecl *U =
      Copy.declaredMember(Copy.findClass("D"), Copy.findName("m"));
  ASSERT_NE(U, nullptr);
  EXPECT_TRUE(U->isUsingDeclaration());
}

TEST(HierarchyBuilderTest, FromHierarchySupportsExtension) {
  // The immutable-after-finalize workflow: copy, extend, re-finalize,
  // and the old hierarchy keeps answering unchanged.
  HierarchyBuilder B;
  B.addClass("Base").withMember("m");
  B.addClass("Derived").withBase("Base");
  Hierarchy V1 = std::move(B).build();

  HierarchyBuilder Extend = HierarchyBuilder::fromHierarchy(V1);
  Extend.addClass("Grandchild").withBase("Derived").withMember("m");
  Hierarchy V2 = std::move(Extend).build();

  EXPECT_EQ(V1.numClasses(), 2u);
  EXPECT_EQ(V2.numClasses(), 3u);
  EXPECT_TRUE(
      V2.isBaseOf(V2.findClass("Base"), V2.findClass("Grandchild")));
  EXPECT_TRUE(V2.declaresMember(V2.findClass("Grandchild"),
                                V2.findName("m")));
}

TEST(HierarchyBuilderTest, BaseAccessIsRecorded) {
  HierarchyBuilder B;
  B.addClass("A");
  B.addClass("B").withBase("A", AccessSpec::Private);
  Hierarchy H = std::move(B).build();
  EXPECT_EQ(*H.edgeAccess(H.findClass("A"), H.findClass("B")),
            AccessSpec::Private);
}

// Regression: referencing an unknown base on an otherwise-fine two-class
// hierarchy used to assert inside the builder. It must instead record a
// structured diagnostic and surface through tryBuild() as an error.
TEST(HierarchyBuilderTest, UnknownBaseIsDiagnosedNotFatal) {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  B.addClass("B").withBase("A").withBase("Missing");
  EXPECT_TRUE(B.diagnostics().hasErrors());
  EXPECT_TRUE(B.diagnostics().hasCode(DiagCode::UnknownBase));

  Expected<Hierarchy> Result = std::move(B).tryBuild();
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.status().code(), ErrorCode::UnknownClass);
}

TEST(HierarchyBuilderTest, GetClassUnknownNameYieldsInertHandle) {
  HierarchyBuilder B;
  B.addClass("A");
  HierarchyBuilder::ClassHandle Ghost = B.getClass("NoSuchClass");
  EXPECT_FALSE(Ghost.valid());
  Ghost.withMember("m").withBase("A"); // all no-ops, must not crash
  EXPECT_TRUE(B.diagnostics().hasCode(DiagCode::UnknownBase));

  DiagnosticEngine Diags;
  Expected<Hierarchy> Result = std::move(B).tryBuild(&Diags);
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.status().code(), ErrorCode::UnknownClass);
  EXPECT_TRUE(Diags.hasCode(DiagCode::UnknownBase));
}

TEST(HierarchyBuilderTest, DuplicateClassIsDiagnosedNotFatal) {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  HierarchyBuilder::ClassHandle Again = B.addClass("A");
  EXPECT_FALSE(Again.valid());
  Expected<Hierarchy> Result = std::move(B).tryBuild();
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.status().code(), ErrorCode::DuplicateClass);
}

TEST(HierarchyBuilderTest, MultiClassCycleIsDiagnosedAtTryBuild) {
  // The fluent API can describe a cycle that insertion-time checks can't
  // see (each edge is locally fine); validate() must catch it.
  HierarchyBuilder B;
  B.addClass("A");
  B.addClass("B").withBase("A");
  B.getClass("A").withBase("B");
  Expected<Hierarchy> Result = std::move(B).tryBuild();
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.status().code(), ErrorCode::InheritanceCycle);
}

TEST(HierarchyBuilderTest, TryBuildSucceedsOnCleanInput) {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  B.addClass("B").withBase("A");
  DiagnosticEngine Diags;
  Expected<Hierarchy> Result = std::move(B).tryBuild(&Diags);
  ASSERT_TRUE(Result.hasValue());
  EXPECT_FALSE(Diags.hasErrors());
  Hierarchy H = Result.takeValue();
  EXPECT_TRUE(H.isFinalized());
  EXPECT_TRUE(H.isBaseOf(H.findClass("A"), H.findClass("B")));
}

TEST(HierarchyBuilderTest, ConflictingBaseKindIsDiagnosed) {
  HierarchyBuilder B;
  B.addClass("A");
  B.addClass("B").withBase("A").withVirtualBase("A");
  EXPECT_TRUE(B.diagnostics().hasCode(DiagCode::ConflictingBase));
  Expected<Hierarchy> Result = std::move(B).tryBuild();
  ASSERT_FALSE(Result.hasValue());
  EXPECT_EQ(Result.status().code(), ErrorCode::DuplicateBase);
}
