//===- InvalidCorpusTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every file in tests/corpus/invalid/ through the front end under
/// the untrusted-input budget and checks that each one is rejected with
/// the *expected structured diagnostic* - not a crash, not an assert,
/// and not a vague catch-all. The corpus is the executable spec of the
/// hardened pipeline's rejection behavior.
///
//===----------------------------------------------------------------------===//

#include "memlook/frontend/Parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace memlook;

namespace {

struct InvalidCase {
  const char *FileName;
  DiagCode ExpectedCode;
};

// Every file in corpus/invalid must appear here: the test cross-checks
// the directory listing against this table so a new malformed input
// can't land without a stated expectation.
constexpr InvalidCase Cases[] = {
    {"cycle.mlk", DiagCode::SelfInheritance},
    {"duplicate_class.mlk", DiagCode::DuplicateClass},
    {"mixed_virtual_duplicate_edge.mlk", DiagCode::ConflictingBase},
    {"unterminated_block.mlk", DiagCode::SyntaxError},
    {"deep_chain.mlk", DiagCode::TooManyClasses},
};

std::string readFile(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::filesystem::path invalidDir() {
  return std::filesystem::path(MEMLOOK_CORPUS_DIR) / "invalid";
}

class InvalidCorpusTest : public ::testing::TestWithParam<InvalidCase> {};

} // namespace

TEST_P(InvalidCorpusTest, RejectedWithStructuredDiagnostic) {
  const InvalidCase &Case = GetParam();
  std::string Source = readFile(invalidDir() / Case.FileName);
  ASSERT_FALSE(Source.empty());

  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget = ResourceBudget::untrustedInput();
  std::optional<ParsedProgram> Program =
      parseProgram(Source, Diags, Options);

  EXPECT_FALSE(Program.has_value())
      << Case.FileName << " should have been rejected";
  EXPECT_TRUE(Diags.hasErrors()) << Case.FileName;
  EXPECT_TRUE(Diags.hasCode(Case.ExpectedCode))
      << Case.FileName << ": expected " << diagCodeLabel(Case.ExpectedCode)
      << " among the reported diagnostics";
}

TEST(InvalidCorpusTest, EveryCorpusFileHasAnExpectation) {
  size_t FilesSeen = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(invalidDir())) {
    if (Entry.path().extension() != ".mlk")
      continue;
    ++FilesSeen;
    std::string Name = Entry.path().filename().string();
    bool Known = false;
    for (const InvalidCase &Case : Cases)
      Known |= Name == Case.FileName;
    EXPECT_TRUE(Known) << Name << " has no entry in the expectation table";
  }
  EXPECT_EQ(FilesSeen, sizeof(Cases) / sizeof(Cases[0]));
}

TEST(InvalidCorpusTest, DiagnosticCapBoundsErrorCount) {
  // The deep chain emits exactly one budget diagnostic, but even inputs
  // with thousands of independent errors stay within the configured cap
  // (plus the TooManyErrors sentinel).
  std::string Source;
  for (int I = 0; I != 500; ++I)
    Source += "lookup ; ;\n"; // each line is an independent syntax error
  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget = ResourceBudget::untrustedInput();
  EXPECT_FALSE(parseProgram(Source, Diags, Options).has_value());
  EXPECT_TRUE(Diags.truncated());
  EXPECT_TRUE(Diags.hasCode(DiagCode::TooManyErrors));
  EXPECT_LE(Diags.errorCount(),
            ResourceBudget::untrustedInput().MaxErrorDiagnostics + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Files, InvalidCorpusTest, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<InvalidCase> &Info) {
      std::string Name = Info.param.FileName;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
