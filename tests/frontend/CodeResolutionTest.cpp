//===- CodeResolutionTest.cpp -------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end Section 6: `code C { ... }` blocks resolving unqualified
/// and qualified name uses through the scope-stack and naming-class
/// machinery.
///
//===----------------------------------------------------------------------===//

#include "memlook/frontend/CodeResolution.h"

#include "memlook/core/DominanceLookupEngine.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace memlook;

namespace {

using Kind = ResolvedUse::Kind;

struct Resolved {
  Hierarchy H;
  std::vector<std::vector<ResolvedUse>> Blocks;
};

Resolved resolveAll(std::string_view Source) {
  DiagnosticEngine Diags;
  std::optional<ParsedProgram> Program = parseProgram(Source, Diags);
  if (!Program) {
    std::ostringstream OS;
    Diags.print(OS, "<test>");
    ADD_FAILURE() << "parse failed:\n" << OS.str();
    return {};
  }
  Resolved Out{std::move(Program->H), {}};
  DominanceLookupEngine Engine(Out.H);
  for (const CodeBlock &Block : Program->CodeBlocks)
    Out.Blocks.push_back(resolveCodeBlock(Out.H, Engine, Block));
  return Out;
}

} // namespace

TEST(CodeResolutionTest, UnqualifiedUsesResolveThroughTheClassScope) {
  Resolved R = resolveAll(R"cpp(
    struct A { void f(); void g(); };
    struct B : A { void f(); };
    code B { f; g; }
  )cpp");
  ASSERT_EQ(R.Blocks.size(), 1u);
  const auto &Uses = R.Blocks[0];
  ASSERT_EQ(Uses.size(), 2u);

  EXPECT_EQ(Uses[0].UseKind, Kind::Member);
  EXPECT_EQ(R.H.className(Uses[0].Member.DefiningClass), "B")
      << "the override hides A::f";
  EXPECT_EQ(Uses[1].UseKind, Kind::Member);
  EXPECT_EQ(R.H.className(Uses[1].Member.DefiningClass), "A");
}

TEST(CodeResolutionTest, QualifiedUseBypassesTheOverride) {
  Resolved R = resolveAll(R"cpp(
    struct A { void f(); };
    struct B : A { void f(); };
    code B { A::f; B::f; }
  )cpp");
  const auto &Uses = R.Blocks.at(0);
  ASSERT_EQ(Uses.size(), 2u);
  EXPECT_EQ(Uses[0].UseKind, Kind::Member);
  EXPECT_EQ(R.H.className(Uses[0].Member.DefiningClass), "A");
  EXPECT_EQ(Uses[1].UseKind, Kind::Member);
  EXPECT_EQ(R.H.className(Uses[1].Member.DefiningClass), "B");
}

TEST(CodeResolutionTest, AmbiguousUnqualifiedUseIsAnErrorNotNotFound) {
  Resolved R = resolveAll(R"cpp(
    struct X { void m(); };
    struct Y { void m(); };
    struct Z : X, Y {};
    code Z { m; X::m; Y::m; }
  )cpp");
  const auto &Uses = R.Blocks.at(0);
  ASSERT_EQ(Uses.size(), 3u);
  EXPECT_EQ(Uses[0].UseKind, Kind::AmbiguousMember)
      << "plain m is ambiguous in Z";
  // But qualification resolves each side - the paper's Section 6 story.
  EXPECT_EQ(Uses[1].UseKind, Kind::Member);
  EXPECT_EQ(R.H.className(Uses[1].Member.DefiningClass), "X");
  EXPECT_EQ(Uses[2].UseKind, Kind::Member);
  EXPECT_EQ(R.H.className(Uses[2].Member.DefiningClass), "Y");
}

TEST(CodeResolutionTest, AmbiguousBaseQualifierIsRejected) {
  Resolved R = resolveAll(R"cpp(
    struct A { void m(); };
    struct L : A {};
    struct Rr : A {};
    struct D : L, Rr {};
    code D { A::m; L::m; }
  )cpp");
  const auto &Uses = R.Blocks.at(0);
  ASSERT_EQ(Uses.size(), 2u);
  EXPECT_EQ(Uses[0].UseKind, Kind::BadQualifier)
      << "two A subobjects: the conversion is ambiguous";
  EXPECT_EQ(Uses[1].UseKind, Kind::Member)
      << "L is a unique base; through it the lookup succeeds";
  EXPECT_EQ(R.H.className(Uses[1].Member.DefiningClass), "A");
}

TEST(CodeResolutionTest, UnknownNamesAndClasses) {
  Resolved R = resolveAll(R"cpp(
    struct A { void f(); };
    struct Unrelated { void g(); };
    code A { nosuch; Missing::f; Unrelated::g; A::nosuch; }
  )cpp");
  const auto &Uses = R.Blocks.at(0);
  ASSERT_EQ(Uses.size(), 4u);
  EXPECT_EQ(Uses[0].UseKind, Kind::UnknownName);
  EXPECT_EQ(Uses[1].UseKind, Kind::BadQualifier) << "unknown class";
  EXPECT_EQ(Uses[2].UseKind, Kind::BadQualifier) << "not a base";
  EXPECT_EQ(Uses[3].UseKind, Kind::UnknownName);
}

TEST(CodeResolutionTest, UnknownBlockClassReportsOnce) {
  Resolved R = resolveAll(R"cpp(
    struct A { void f(); };
    code Nope { f; }
  )cpp");
  const auto &Uses = R.Blocks.at(0);
  ASSERT_EQ(Uses.size(), 1u);
  EXPECT_EQ(Uses[0].UseKind, Kind::BadQualifier);
  EXPECT_NE(Uses[0].Description.find("unknown class"), std::string::npos);
}

TEST(CodeResolutionTest, QualifiedUseThroughVirtualBaseReembeds) {
  Resolved R = resolveAll(R"cpp(
    struct Top { void op(); };
    struct L : virtual Top {};
    struct Rr : virtual Top {};
    struct D : L, Rr {};
    code D { Top::op; op; }
  )cpp");
  const auto &Uses = R.Blocks.at(0);
  ASSERT_EQ(Uses.size(), 2u);
  EXPECT_EQ(Uses[0].UseKind, Kind::Member)
      << "the shared virtual Top is a unique base";
  ASSERT_TRUE(Uses[0].Member.Subobject.has_value());
  EXPECT_EQ(Uses[0].Member.Subobject->Mdc, R.H.findClass("D"))
      << "the result is re-embedded into the D object";
  EXPECT_EQ(Uses[1].UseKind, Kind::Member);
}

TEST(CodeResolutionTest, DescriptionsAreDiagnosticReady) {
  Resolved R = resolveAll(R"cpp(
    struct A { void f(); };
    struct B : A {};
    code B { f; A::f; }
  )cpp");
  const auto &Uses = R.Blocks.at(0);
  EXPECT_NE(Uses[0].Description.find("f -> A"), std::string::npos);
  EXPECT_NE(Uses[1].Description.find("A::f -> A"), std::string::npos);
}
