//===- SourcePrinterTest.cpp -------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Round-trip property: printHierarchySource() emits text that
/// parseProgram() turns back into an equivalent hierarchy - same
/// classes, edges (kind + access), member declarations (flags + access),
/// and, consequently, the same lookup table.
///
//===----------------------------------------------------------------------===//

#include "memlook/frontend/SourcePrinter.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/frontend/Parser.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace memlook;
using namespace memlook::testutil;

namespace {

Hierarchy roundTrip(const Hierarchy &H) {
  std::ostringstream OS;
  printHierarchySource(H, OS);
  DiagnosticEngine Diags;
  std::optional<ParsedProgram> Program = parseProgram(OS.str(), Diags);
  if (!Program) {
    std::ostringstream Err;
    Diags.print(Err, "<printed>");
    ADD_FAILURE() << "round trip failed to parse:\n"
                  << OS.str() << "\n"
                  << Err.str();
    return Hierarchy();
  }
  return std::move(Program->H);
}

void expectEquivalent(const Hierarchy &A, const Hierarchy &B,
                      const char *Tag) {
  ASSERT_EQ(A.numClasses(), B.numClasses()) << Tag;
  ASSERT_EQ(A.numEdges(), B.numEdges()) << Tag;
  ASSERT_EQ(A.numMemberDecls(), B.numMemberDecls()) << Tag;

  for (uint32_t Idx = 0; Idx != A.numClasses(); ++Idx) {
    ClassId CA(Idx);
    ClassId CB = B.findClass(A.className(CA));
    ASSERT_TRUE(CB.isValid()) << Tag << ": " << A.className(CA);

    const auto &InfoA = A.info(CA);
    const auto &InfoB = B.info(CB);
    ASSERT_EQ(InfoA.DirectBases.size(), InfoB.DirectBases.size()) << Tag;
    for (size_t I = 0; I != InfoA.DirectBases.size(); ++I) {
      EXPECT_EQ(A.className(InfoA.DirectBases[I].Base),
                B.className(InfoB.DirectBases[I].Base))
          << Tag;
      EXPECT_EQ(InfoA.DirectBases[I].Kind, InfoB.DirectBases[I].Kind)
          << Tag;
      EXPECT_EQ(InfoA.DirectBases[I].Access, InfoB.DirectBases[I].Access)
          << Tag;
    }

    ASSERT_EQ(InfoA.Members.size(), InfoB.Members.size())
        << Tag << ": " << A.className(CA);
    for (size_t I = 0; I != InfoA.Members.size(); ++I) {
      EXPECT_EQ(A.spelling(InfoA.Members[I].Name),
                B.spelling(InfoB.Members[I].Name))
          << Tag;
      EXPECT_EQ(InfoA.Members[I].IsStatic, InfoB.Members[I].IsStatic) << Tag;
      EXPECT_EQ(InfoA.Members[I].IsVirtual, InfoB.Members[I].IsVirtual)
          << Tag;
      EXPECT_EQ(InfoA.Members[I].Access, InfoB.Members[I].Access) << Tag;
      ASSERT_EQ(InfoA.Members[I].isUsingDeclaration(),
                InfoB.Members[I].isUsingDeclaration())
          << Tag;
      if (InfoA.Members[I].isUsingDeclaration())
        EXPECT_EQ(A.className(InfoA.Members[I].UsingFrom),
                  B.className(InfoB.Members[I].UsingFrom))
            << Tag;
    }
  }
}

void expectSameLookupTable(const Hierarchy &A, Hierarchy &B,
                           const char *Tag) {
  DominanceLookupEngine EngineA(const_cast<const Hierarchy &>(A));
  DominanceLookupEngine EngineB(B);
  for (uint32_t Idx = 0; Idx != A.numClasses(); ++Idx) {
    ClassId CA(Idx);
    ClassId CB = B.findClass(A.className(CA));
    for (Symbol MemberA : A.allMemberNames()) {
      Symbol MemberB = B.findName(A.spelling(MemberA));
      ASSERT_TRUE(MemberB.isValid()) << Tag;
      LookupResult RA = EngineA.lookup(CA, MemberA);
      LookupResult RB = EngineB.lookup(CB, MemberB);
      EXPECT_EQ(RA.Status, RB.Status) << Tag;
      if (RA.Status == LookupStatus::Unambiguous)
        EXPECT_EQ(A.className(RA.DefiningClass),
                  B.className(RB.DefiningClass))
            << Tag;
    }
  }
}

void checkRoundTrip(const Hierarchy &H, const char *Tag) {
  Hierarchy Reparsed = roundTrip(H);
  if (Reparsed.numClasses() == 0 && H.numClasses() != 0)
    return; // parse failure already reported
  expectEquivalent(H, Reparsed, Tag);
  expectSameLookupTable(H, Reparsed, Tag);
}

} // namespace

TEST(SourcePrinterTest, RoundTripsPaperFigures) {
  checkRoundTrip(makeFigure1(), "figure1");
  checkRoundTrip(makeFigure2(), "figure2");
  checkRoundTrip(makeFigure3(), "figure3");
  checkRoundTrip(makeFigure9(), "figure9");
}

TEST(SourcePrinterTest, RoundTripsStructuredFamilies) {
  checkRoundTrip(makeIostreamLike().H, "iostream");
  checkRoundTrip(makeAmbiguityFan(6).H, "fan");
  checkRoundTrip(makeWideForest(2, 2, 2).H, "forest");
  checkRoundTrip(makeGrid(3, 3, true).H, "v-grid");
}

TEST(SourcePrinterTest, RoundTripsRandomHierarchiesWithAccessAndFlags) {
  RandomHierarchyParams Params;
  Params.NumClasses = 25;
  Params.VirtualEdgeChance = 0.35;
  Params.RestrictedEdgeChance = 0.5;
  Params.StaticChance = 0.3;
  Params.VirtualMemberChance = 0.4;
  for (uint64_t Seed = 11; Seed <= 30; ++Seed)
    checkRoundTrip(makeRandomHierarchy(Params, Seed).H, "random");
}

TEST(SourcePrinterTest, RoundTripsUsingDeclarations) {
  RandomHierarchyParams Params;
  Params.NumClasses = 20;
  Params.UsingChance = 0.6;
  Params.StaticChance = 0.2;
  for (uint64_t Seed = 71; Seed <= 80; ++Seed)
    checkRoundTrip(makeRandomHierarchy(Params, Seed).H, "random-using");

  HierarchyBuilder B;
  B.addClass("A").withMember("f");
  B.addClass("L").withBase("A");
  B.addClass("R").withBase("A");
  B.addClass("D").withBase("L").withBase("R").withUsing("L", "f");
  checkRoundTrip(std::move(B).build(), "repaired-diamond");
}

TEST(SourcePrinterTest, EmitsAccessLabelsOnlyWhenNeeded) {
  HierarchyBuilder B;
  B.addClass("A")
      .withMember("pub", AccessSpec::Public)
      .withMember("priv", AccessSpec::Private)
      .withMember("priv2", AccessSpec::Private);
  Hierarchy H = std::move(B).build();
  std::ostringstream OS;
  printHierarchySource(H, OS);
  std::string Out = OS.str();
  // One private label, no redundant public label up front, no repeat
  // before priv2.
  EXPECT_EQ(Out.find("public:"), std::string::npos);
  size_t First = Out.find("private:");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Out.find("private:", First + 1), std::string::npos);
}

TEST(SourcePrinterTest, EmptyHierarchyPrintsNothing) {
  Hierarchy H;
  DiagnosticEngine Diags;
  ASSERT_TRUE(H.finalize(Diags));
  std::ostringstream OS;
  printHierarchySource(H, OS);
  EXPECT_TRUE(OS.str().empty());
}
