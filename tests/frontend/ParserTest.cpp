//===- ParserTest.cpp ------------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The mini-language parser, exercised with (among others) the verbatim
/// source of the paper's Figures 1, 2, and 9.
///
//===----------------------------------------------------------------------===//

#include "memlook/frontend/Parser.h"

#include "memlook/core/DominanceLookupEngine.h"

#include <gtest/gtest.h>

#include "memlook/support/Rng.h"

#include <sstream>

using namespace memlook;

namespace {

ParsedProgram parseOrDie(std::string_view Source) {
  DiagnosticEngine Diags;
  std::optional<ParsedProgram> Program = parseProgram(Source, Diags);
  if (!Program) {
    std::ostringstream OS;
    Diags.print(OS, "<test>");
    ADD_FAILURE() << "parse failed:\n" << OS.str();
  }
  return std::move(*Program);
}

} // namespace

TEST(ParserTest, Figure1SourceVerbatim) {
  // The exact program of Figure 1(a), plus a lookup directive.
  ParsedProgram P = parseOrDie(R"cpp(
    class A { void m(); };
    class B : A {};
    class C : B {};
    class D : B { void m(); };
    class E : C, D {};
    lookup E::m;
  )cpp");

  EXPECT_EQ(P.H.numClasses(), 5u);
  ASSERT_EQ(P.Lookups.size(), 1u);
  EXPECT_EQ(P.Lookups[0].ClassName, "E");
  EXPECT_EQ(P.Lookups[0].MemberName, "m");

  DominanceLookupEngine Engine(P.H);
  EXPECT_EQ(Engine.lookup(P.H.findClass("E"), "m").Status,
            LookupStatus::Ambiguous);
}

TEST(ParserTest, Figure2SourceVerbatim) {
  ParsedProgram P = parseOrDie(R"cpp(
    class A { void m(); };
    class B : A {};
    class C : virtual B {};
    class D : virtual B { void m(); };
    class E : C, D {};
    lookup E::m;
  )cpp");

  DominanceLookupEngine Engine(P.H);
  LookupResult R = Engine.lookup(P.H.findClass("E"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, P.H.findClass("D"));
}

TEST(ParserTest, Figure9SourceVerbatim) {
  ParsedProgram P = parseOrDie(R"cpp(
    struct S { int m; };
    struct A : virtual S { int m; };
    struct B : virtual S { int m; };
    struct C : virtual A, virtual B { int m; };
    struct D : C {};
    struct E : virtual A, virtual B, D {};
    lookup E::m;
  )cpp");

  DominanceLookupEngine Engine(P.H);
  LookupResult R = Engine.lookup(P.H.findClass("E"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, P.H.findClass("C"));
}

TEST(ParserTest, DefaultAccessDiffersForClassAndStruct) {
  ParsedProgram P = parseOrDie(R"cpp(
    class C { m; };
    struct S { m; };
  )cpp");
  EXPECT_EQ(P.H.declaredMember(P.H.findClass("C"), P.H.findName("m"))->Access,
            AccessSpec::Private);
  EXPECT_EQ(P.H.declaredMember(P.H.findClass("S"), P.H.findName("m"))->Access,
            AccessSpec::Public);
}

TEST(ParserTest, AccessLabelsSwitchAccess) {
  ParsedProgram P = parseOrDie(R"cpp(
    class C {
      a;
    public:
      b;
    protected:
      c;
    private:
      d;
    };
  )cpp");
  ClassId C = P.H.findClass("C");
  EXPECT_EQ(P.H.declaredMember(C, P.H.findName("a"))->Access,
            AccessSpec::Private);
  EXPECT_EQ(P.H.declaredMember(C, P.H.findName("b"))->Access,
            AccessSpec::Public);
  EXPECT_EQ(P.H.declaredMember(C, P.H.findName("c"))->Access,
            AccessSpec::Protected);
  EXPECT_EQ(P.H.declaredMember(C, P.H.findName("d"))->Access,
            AccessSpec::Private);
}

TEST(ParserTest, BaseSpecifierModifiersInEitherOrder) {
  ParsedProgram P = parseOrDie(R"cpp(
    class A {};
    class B : virtual public A {};
    class C : public virtual A {};
    class D : private A {};
  )cpp");
  ClassId A = P.H.findClass("A");
  EXPECT_EQ(*P.H.edgeKind(A, P.H.findClass("B")), InheritanceKind::Virtual);
  EXPECT_EQ(*P.H.edgeKind(A, P.H.findClass("C")), InheritanceKind::Virtual);
  EXPECT_EQ(*P.H.edgeAccess(A, P.H.findClass("B")), AccessSpec::Public);
  EXPECT_EQ(*P.H.edgeAccess(A, P.H.findClass("D")), AccessSpec::Private);
}

TEST(ParserTest, DefaultBaseAccessFollowsClassKey) {
  ParsedProgram P = parseOrDie(R"cpp(
    class A {};
    class B : A {};
    struct S : A {};
  )cpp");
  ClassId A = P.H.findClass("A");
  EXPECT_EQ(*P.H.edgeAccess(A, P.H.findClass("B")), AccessSpec::Private);
  EXPECT_EQ(*P.H.edgeAccess(A, P.H.findClass("S")), AccessSpec::Public);
}

TEST(ParserTest, MemberFlagsAndForms) {
  ParsedProgram P = parseOrDie(R"cpp(
    struct S {
      plain;
      static stat;
      virtual void vf();
      static int counter;
      void typed();
    };
  )cpp");
  ClassId S = P.H.findClass("S");
  EXPECT_FALSE(P.H.declaredMember(S, P.H.findName("plain"))->IsStatic);
  EXPECT_TRUE(P.H.declaredMember(S, P.H.findName("stat"))->IsStatic);
  EXPECT_TRUE(P.H.declaredMember(S, P.H.findName("vf"))->IsVirtual);
  EXPECT_TRUE(P.H.declaredMember(S, P.H.findName("counter"))->IsStatic);
  EXPECT_TRUE(P.H.declaresMember(S, P.H.findName("typed")));
  // The type word 'void'/'int' is not itself a member.
  EXPECT_FALSE(P.H.declaresMember(S, P.H.internName("void")));
  EXPECT_FALSE(P.H.declaresMember(S, P.H.internName("int")));
}

TEST(ParserTest, UndefinedBaseIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram("class B : Missing {};", Diags).has_value());
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.diagnostics()[0].Message.find("not defined"),
            std::string::npos);
}

TEST(ParserTest, DuplicateClassIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      parseProgram("class A {}; class A {};", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, DuplicateDirectBaseIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      parseProgram("class A {}; class B : A, A {};", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, RecoveryReportsMultipleErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram(R"cpp(
    class A { 123; good; };
    class B : Missing {};
  )cpp",
                            Diags)
                   .has_value());
  EXPECT_GE(Diags.errorCount(), 2u) << "parser should recover and continue";
}

TEST(ParserTest, ErrorsCarryLocations) {
  DiagnosticEngine Diags;
  parseProgram("class A {};\nclass B : Nope {};", Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Line, 2u);
}

TEST(ParserTest, LookupDirectiveSyntaxErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram("lookup E;", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, EmptyProgramIsValid) {
  ParsedProgram P = parseOrDie("// nothing but comments\n");
  EXPECT_EQ(P.H.numClasses(), 0u);
  EXPECT_TRUE(P.Lookups.empty());
}

TEST(ParserTest, ExpectDirectiveForms) {
  ParsedProgram P = parseOrDie(R"cpp(
    struct A { m; };
    expect A::m = A;
    expect A::m = ambiguous;
    expect A::q = notfound;
    lookup A::m;
  )cpp");
  ASSERT_EQ(P.Lookups.size(), 4u);

  ASSERT_TRUE(P.Lookups[0].Expectation.has_value());
  EXPECT_EQ(P.Lookups[0].Expectation->ExpectKind,
            LookupExpectation::Kind::ResolvesTo);
  EXPECT_EQ(P.Lookups[0].Expectation->DefiningClass, "A");

  EXPECT_EQ(P.Lookups[1].Expectation->ExpectKind,
            LookupExpectation::Kind::Ambiguous);
  EXPECT_EQ(P.Lookups[2].Expectation->ExpectKind,
            LookupExpectation::Kind::NotFound);
  EXPECT_FALSE(P.Lookups[3].Expectation.has_value())
      << "plain lookup carries no expectation";
}

TEST(ParserTest, ExpectDirectiveSyntaxErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      parseProgram("struct A { m; }; expect A::m;", Diags).has_value())
      << "missing '= outcome'";
  EXPECT_TRUE(Diags.hasErrors());

  DiagnosticEngine Diags2;
  EXPECT_FALSE(
      parseProgram("struct A { m; }; expect A::m = ;", Diags2).has_value());
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(ParserTest, RandomTokenSoupNeverCrashes) {
  // Robustness fuzz: arbitrary token sequences must produce diagnostics,
  // never crashes or hangs. Seeded, so any failure reproduces.
  const char *Vocabulary[] = {
      "class",  "struct",    "virtual", "static", "public", "protected",
      "private", "lookup",   "expect",  "using",  "{",      "}",
      "(",       ")",        ":",       "::",     ",",      ";",
      "=",       "A",        "B",       "m",      "0x!",    "\n",
      "/*",      "*/",       "//",      " "};
  Rng Rng(20260705);
  for (int Round = 0; Round != 200; ++Round) {
    std::string Soup;
    uint32_t Length = 1 + static_cast<uint32_t>(Rng.nextBelow(120));
    for (uint32_t I = 0; I != Length; ++I) {
      Soup += Vocabulary[Rng.nextBelow(std::size(Vocabulary))];
      Soup += ' ';
    }
    DiagnosticEngine Diags;
    std::optional<ParsedProgram> Program = parseProgram(Soup, Diags);
    // Either it parsed cleanly or it reported errors; both are fine.
    if (!Program) {
      EXPECT_TRUE(Diags.hasErrors()) << Soup;
    }
  }
}

TEST(ParserTest, MutatedCorpusNeverCrashes) {
  // Take a valid program and splice random fragments into random
  // positions - closer-to-valid inputs exercise deeper recovery paths.
  std::string Valid = R"cpp(
    class A { void m(); static s; };
    struct B : virtual A { using A::m; };
    struct C : B, public A {};
    expect C::m = ambiguous;
  )cpp";
  const char *Fragments[] = {";", "}", "{", "class", "::",
                             "virtual", "=", ",", "expect", "\0x"};
  Rng Rng(424242);
  for (int Round = 0; Round != 200; ++Round) {
    std::string Mutated = Valid;
    uint32_t Cuts = 1 + static_cast<uint32_t>(Rng.nextBelow(4));
    for (uint32_t I = 0; I != Cuts; ++I) {
      size_t Pos = Rng.nextBelow(Mutated.size());
      Mutated.insert(Pos, Fragments[Rng.nextBelow(std::size(Fragments))]);
    }
    DiagnosticEngine Diags;
    std::optional<ParsedProgram> Program = parseProgram(Mutated, Diags);
    if (!Program) {
      EXPECT_TRUE(Diags.hasErrors()) << Mutated;
    }
  }
}

TEST(ParserTest, MultipleLookupDirectivesKeepOrder) {
  ParsedProgram P = parseOrDie(R"cpp(
    struct A { m; n; };
    lookup A::m;
    lookup A::n;
    lookup A::missing;
  )cpp");
  ASSERT_EQ(P.Lookups.size(), 3u);
  EXPECT_EQ(P.Lookups[0].MemberName, "m");
  EXPECT_EQ(P.Lookups[1].MemberName, "n");
  EXPECT_EQ(P.Lookups[2].MemberName, "missing");
}

TEST(ParserTest, ClassBudgetTripsWithStructuredDiagnostic) {
  std::string Source;
  for (int I = 0; I != 10; ++I)
    Source += "struct C" + std::to_string(I) + " { m; };\n";
  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget.MaxClasses = 4;
  EXPECT_FALSE(parseProgram(Source, Diags, Options).has_value());
  EXPECT_TRUE(Diags.hasCode(DiagCode::TooManyClasses));
}

TEST(ParserTest, EdgeBudgetTripsWithStructuredDiagnostic) {
  std::string Source = "struct A { m; };\n";
  Source += "struct B : A, virtual A, public A, private A, protected A {};\n";
  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget.MaxEdges = 1;
  EXPECT_FALSE(parseProgram(Source, Diags, Options).has_value());
  EXPECT_TRUE(Diags.hasCode(DiagCode::TooManyEdges));
}

TEST(ParserTest, MemberBudgetTripsWithStructuredDiagnostic) {
  std::string Source = "struct A { m0; m1; m2; m3; m4; m5; };\n";
  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget.MaxMemberDecls = 3;
  EXPECT_FALSE(parseProgram(Source, Diags, Options).has_value());
  EXPECT_TRUE(Diags.hasCode(DiagCode::TooManyMembers));
}

TEST(ParserTest, BudgetWithinLimitsParsesNormally) {
  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget = ResourceBudget::untrustedInput();
  std::optional<ParsedProgram> Program = parseProgram(
      "struct A { m; };\nstruct B : A { n; };\n", Diags, Options);
  ASSERT_TRUE(Program.has_value());
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Program->H.numClasses(), 2u);
}

TEST(ParserTest, ErrorCapStopsTheParseNotTheProcess) {
  // 100 bogus top-level tokens: far more errors than the cap. The parse
  // must stop at the cap with the TooManyErrors sentinel, not spend
  // time reporting all 100.
  std::string Source;
  for (int I = 0; I != 100; ++I)
    Source += "=\n";
  DiagnosticEngine Diags;
  ParseOptions Options;
  Options.Budget.MaxErrorDiagnostics = 5;
  EXPECT_FALSE(parseProgram(Source, Diags, Options).has_value());
  EXPECT_TRUE(Diags.truncated());
  EXPECT_TRUE(Diags.hasCode(DiagCode::TooManyErrors));
  EXPECT_LE(Diags.diagnostics().size(), 6u);
}

TEST(ParserTest, SyntaxErrorsCarryTheSyntaxErrorCode) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram("class { m; };", Diags).has_value());
  EXPECT_TRUE(Diags.hasCode(DiagCode::SyntaxError));
}
