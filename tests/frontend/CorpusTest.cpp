//===- CorpusTest.cpp - Self-checking .mlk test vectors ---------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Runs every .mlk file in tests/corpus/ through the front end and
/// verifies its `expect` directives against four engines: the Figure 8
/// algorithm (eager and recursive-lazy), the killing propagation, and
/// the Rossie-Friedman reference. The corpus doubles as executable
/// documentation of the lookup semantics.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"
#include "memlook/frontend/CodeResolution.h"
#include "memlook/frontend/Parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

using namespace memlook;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(MEMLOOK_CORPUS_DIR))
    if (Entry.path().extension() == ".mlk")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

class CorpusTest : public ::testing::TestWithParam<std::string> {};

std::string describeExpectation(const LookupExpectation &E) {
  switch (E.ExpectKind) {
  case LookupExpectation::Kind::Ambiguous:
    return "ambiguous";
  case LookupExpectation::Kind::NotFound:
    return "notfound";
  case LookupExpectation::Kind::ResolvesTo:
    return E.DefiningClass;
  }
  return "?";
}

void checkDirective(const Hierarchy &H, LookupEngine &Engine,
                    const LookupDirective &Directive) {
  if (!Directive.Expectation)
    return;
  ClassId Id = H.findClass(Directive.ClassName);
  ASSERT_TRUE(Id.isValid()) << Directive.ClassName;
  LookupResult R = Engine.lookup(Id, Directive.MemberName);

  const LookupExpectation &E = *Directive.Expectation;
  std::string Context = Directive.ClassName + "::" + Directive.MemberName +
                        " (line " + std::to_string(Directive.Loc.Line) +
                        ", engine " + std::string(Engine.engineName()) +
                        ", wanted " + describeExpectation(E) + ")";
  switch (E.ExpectKind) {
  case LookupExpectation::Kind::Ambiguous:
    EXPECT_EQ(R.Status, LookupStatus::Ambiguous) << Context;
    break;
  case LookupExpectation::Kind::NotFound:
    EXPECT_EQ(R.Status, LookupStatus::NotFound) << Context;
    break;
  case LookupExpectation::Kind::ResolvesTo:
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous) << Context;
    EXPECT_EQ(H.className(R.DefiningClass), E.DefiningClass) << Context;
    break;
  }
}

} // namespace

TEST_P(CorpusTest, ExpectationsHoldOnAllEngines) {
  std::ifstream File(GetParam());
  ASSERT_TRUE(File.good()) << GetParam();
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  std::string Source = Buffer.str();

  DiagnosticEngine Diags;
  std::optional<ParsedProgram> Program = parseProgram(Source, Diags);
  if (!Program) {
    std::ostringstream OS;
    Diags.print(OS, GetParam());
    FAIL() << "parse failed:\n" << OS.str();
  }
  const Hierarchy &H = Program->H;

  ASSERT_FALSE(Program->Lookups.empty() && Program->CodeBlocks.empty())
      << "corpus files must contain expect directives or code blocks";
  size_t WithExpectation = 0;
  for (const LookupDirective &D : Program->Lookups)
    if (D.Expectation)
      ++WithExpectation;
  for (const CodeBlock &Block : Program->CodeBlocks)
    for (const NameUse &Use : Block.Uses)
      if (!Use.Expected.empty())
        ++WithExpectation;
  EXPECT_GT(WithExpectation, 0u);

  // Code-block assertions run on the primary engine.
  {
    DominanceLookupEngine Engine(H);
    for (const CodeBlock &Block : Program->CodeBlocks)
      for (const ResolvedUse &Use : resolveCodeBlock(H, Engine, Block))
        EXPECT_TRUE(useMatchesExpectation(H, Use))
            << GetParam() << ": " << Use.Description << " (wanted "
            << (Use.Use ? Use.Use->Expected : std::string()) << ")";
  }

  DominanceLookupEngine Eager(H, DominanceLookupEngine::Mode::Eager);
  DominanceLookupEngine Recursive(H,
                                  DominanceLookupEngine::Mode::LazyRecursive);
  NaivePropagationEngine Killing(H, NaivePropagationEngine::Killing::Enabled);
  SubobjectLookupEngine Reference(H);
  for (LookupEngine *Engine :
       {static_cast<LookupEngine *>(&Eager),
        static_cast<LookupEngine *>(&Recursive),
        static_cast<LookupEngine *>(&Killing),
        static_cast<LookupEngine *>(&Reference)})
    for (const LookupDirective &Directive : Program->Lookups)
      checkDirective(H, *Engine, Directive);
}

INSTANTIATE_TEST_SUITE_P(
    Files, CorpusTest, ::testing::ValuesIn(corpusFiles()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = std::filesystem::path(Info.param).stem().string();
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
