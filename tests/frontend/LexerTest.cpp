//===- LexerTest.cpp -------------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace memlook;

namespace {

std::vector<TokenKind> kindsOf(std::string_view Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<TokenKind> Kinds;
  for (const Token &T : Lex.tokens())
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(LexerTest, EmptyInputYieldsEof) {
  EXPECT_EQ(kindsOf(""), (std::vector<TokenKind>{TokenKind::EndOfFile}));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  EXPECT_EQ(kindsOf("class struct virtual static public protected private "
                    "lookup name _x x1"),
            (std::vector<TokenKind>{
                TokenKind::KwClass, TokenKind::KwStruct, TokenKind::KwVirtual,
                TokenKind::KwStatic, TokenKind::KwPublic,
                TokenKind::KwProtected, TokenKind::KwPrivate,
                TokenKind::KwLookup, TokenKind::Identifier,
                TokenKind::Identifier, TokenKind::Identifier,
                TokenKind::EndOfFile}));
}

TEST(LexerTest, Punctuation) {
  EXPECT_EQ(kindsOf("{ } ( ) , ; : ::"),
            (std::vector<TokenKind>{
                TokenKind::LBrace, TokenKind::RBrace, TokenKind::LParen,
                TokenKind::RParen, TokenKind::Comma, TokenKind::Semicolon,
                TokenKind::Colon, TokenKind::ColonColon,
                TokenKind::EndOfFile}));
}

TEST(LexerTest, ColonColonIsGreedy) {
  // ":::" lexes as "::" then ":".
  EXPECT_EQ(kindsOf(":::"),
            (std::vector<TokenKind>{TokenKind::ColonColon, TokenKind::Colon,
                                    TokenKind::EndOfFile}));
}

TEST(LexerTest, LineAndBlockComments) {
  EXPECT_EQ(kindsOf("class // whole line ignored\n/* block\nspanning */ X"),
            (std::vector<TokenKind>{TokenKind::KwClass,
                                    TokenKind::Identifier,
                                    TokenKind::EndOfFile}));
}

TEST(LexerTest, UnterminatedBlockCommentDiagnosed) {
  DiagnosticEngine Diags;
  Lexer Lex("class /* oops", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnknownCharacterDiagnosedAndSkipped) {
  DiagnosticEngine Diags;
  Lexer Lex("class @ X", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues after the bad character.
  EXPECT_EQ(Lex.tokens().size(), 4u); // class, invalid, X, eof
}

TEST(LexerTest, LocationsAreOneBased) {
  DiagnosticEngine Diags;
  Lexer Lex("class A\n  { };", Diags);
  const std::vector<Token> &Toks = Lex.tokens();
  ASSERT_GE(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Col, 7u);  // A
  EXPECT_EQ(Toks[2].Loc.Line, 2u); // {
  EXPECT_EQ(Toks[2].Loc.Col, 3u);
}

TEST(LexerTest, TokenTextPointsIntoSource) {
  DiagnosticEngine Diags;
  std::string Source = "class Widget";
  Lexer Lex(Source, Diags);
  EXPECT_EQ(Lex.tokens()[1].Text, "Widget");
}

TEST(LexerTest, TokenKindNamesForDiagnostics) {
  EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_STREQ(tokenKindName(TokenKind::KwLookup), "'lookup'");
  EXPECT_STREQ(tokenKindName(TokenKind::ColonColon), "'::'");
  EXPECT_STREQ(tokenKindName(TokenKind::EndOfFile), "end of input");
}
