//===- IncrementalRewarmTest.cpp -------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental commit-time rewarm: computeImpactSet must be sound
/// (every column it declares unimpacted really is identical across the
/// edit) and tight enough to be worth having (an edit inside one module
/// of a modular forest shares the other modules' columns). The rewarmed
/// table must be entry-for-entry identical to a from-scratch build of
/// the new epoch - checked directly on small edits and over a 500+
/// edit-script fuzz campaign whose in-harness oracle does exactly that
/// comparison after every successful commit.
///
//===----------------------------------------------------------------------===//

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/core/DifferentialCheck.h"
#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/service/EditScriptFuzz.h"
#include "memlook/service/LookupService.h"
#include "memlook/service/Snapshot.h"
#include "memlook/service/Transaction.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace memlook;
using namespace memlook::service;

namespace {

bool contains(const std::vector<std::string> &Names, std::string_view Want) {
  return std::find(Names.begin(), Names.end(), Want) != Names.end();
}

/// Applies \p Ops to \p Base with an unlimited budget, asserting success.
Hierarchy applyOps(const Hierarchy &Base,
                const std::vector<Transaction::Op> &Ops) {
  Expected<Hierarchy> New =
      applyEditScript(Base, Ops, ResourceBudget::unlimited());
  EXPECT_TRUE(New.hasValue()) << New.status().message();
  return std::move(*New);
}

/// Every (class, member) answer of \p Table over \p H, rendered with the
/// differential comparison key.
std::vector<std::string> renderTable(const Hierarchy &H,
                                     const LookupTable &Table) {
  std::vector<std::string> Out;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    for (Symbol Member : H.allMemberNames())
      Out.push_back(
          renderLookupForComparison(H, Table.find(H, ClassId(Idx), Member)));
  return Out;
}

TEST(ImpactSetTest, EditInOneModuleImpactsOnlyThatModule) {
  // Three independent trees; editing tree 0's root can only change
  // answers for tree 0's classes, so only tree-0-local names (plus the
  // globals every root declares, which tree 0 sees too) are impacted.
  Workload W = makeModularForest(3, 2, 2, 4, 2);
  std::vector<Transaction::Op> Ops;
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddMember, "T0", "",
                                "t0_fresh", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, false});
  Hierarchy New = applyOps(W.H, Ops);

  ImpactSet Impact = computeImpactSet(W.H, New, Ops);
  EXPECT_FALSE(Impact.FullRebuild);
  EXPECT_TRUE(contains(Impact.MemberNames, "t0_fresh"));
  EXPECT_TRUE(contains(Impact.MemberNames, "t0_m0"));
  EXPECT_TRUE(contains(Impact.MemberNames, "g0"));
  EXPECT_FALSE(contains(Impact.MemberNames, "t1_m0"));
  EXPECT_FALSE(contains(Impact.MemberNames, "t2_m0"));
  // Down-closure of T0 = tree 0 only: 1 root + 2 + 4 children.
  EXPECT_EQ(Impact.ImpactedClasses, 7u);
}

TEST(ImpactSetTest, RemoveClassForcesFullRebuild) {
  // RemoveClass compacts class ids, so every shared column would be
  // misaligned; the impact set must demand a from-scratch build.
  Workload W = makeModularForest(2, 2, 1, 2, 1);
  std::vector<Transaction::Op> Ops;
  Ops.push_back(Transaction::Op{Transaction::OpKind::RemoveClass, "T1_0", "",
                                "", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, false});
  Hierarchy New = applyOps(W.H, Ops);

  ImpactSet Impact = computeImpactSet(W.H, New, Ops);
  EXPECT_TRUE(Impact.FullRebuild);
}

TEST(ImpactSetTest, RemovedMemberNameComesFromTheOldClosure) {
  // Removing T0's only declaration of t0_m1 makes the name invisible in
  // the new hierarchy; the old-side closure (and the conservative
  // per-op spelling) must still put it in the impact set, or its stale
  // column would be shared.
  Workload W = makeModularForest(2, 2, 1, 4, 1);
  std::vector<Transaction::Op> Ops;
  Ops.push_back(Transaction::Op{Transaction::OpKind::RemoveMember, "T0", "",
                                "t0_m1", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, false});
  Hierarchy New = applyOps(W.H, Ops);

  ImpactSet Impact = computeImpactSet(W.H, New, Ops);
  EXPECT_FALSE(Impact.FullRebuild);
  EXPECT_TRUE(contains(Impact.MemberNames, "t0_m1"));
  EXPECT_FALSE(contains(Impact.MemberNames, "t1_m0"));
}

TEST(RewarmTest, SharesUnaffectedColumnsAndMatchesScratch) {
  Workload W = makeModularForest(12, 2, 2, 4, 2);
  std::shared_ptr<const LookupTable> Old = LookupTable::build(W.H);
  ASSERT_NE(Old, nullptr);

  std::vector<Transaction::Op> Ops;
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddMember, "T0", "",
                                "t0_fresh", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, true});
  Hierarchy New = applyOps(W.H, Ops);
  ImpactSet Impact = computeImpactSet(W.H, New, Ops);
  ASSERT_FALSE(Impact.FullRebuild);

  std::shared_ptr<const LookupTable> Rewarmed =
      LookupTable::rewarm(New, W.H, *Old, Impact.MemberNames);
  ASSERT_NE(Rewarmed, nullptr);

  // Entry-for-entry identical to a from-scratch serial build.
  std::shared_ptr<const LookupTable> Scratch =
      LookupTable::build(New, Deadline::never(), /*Threads=*/1);
  ASSERT_NE(Scratch, nullptr);
  EXPECT_EQ(renderTable(New, *Rewarmed), renderTable(New, *Scratch));

  // The other eleven trees' columns rode along untouched: the edit
  // re-tabulated only tree 0's names, the globals, and the new name.
  const LookupTable::BuildStats &Stats = Rewarmed->buildStats();
  EXPECT_EQ(Stats.ColumnsBuilt, Impact.MemberNames.size());
  EXPECT_EQ(Stats.ColumnsBuilt + Stats.ColumnsShared,
            New.allMemberNames().size());
  EXPECT_GT(Stats.ColumnsShared, Stats.ColumnsBuilt);
  // The <20% re-tabulation bar the bench harness enforces, in-tree.
  EXPECT_LT(Stats.ColumnsBuilt * 5, New.allMemberNames().size());
}

TEST(RewarmTest, NewClassReadsNotFoundOffSharedShortColumns) {
  // Adding a class leaves every pre-existing column one row short for
  // the new id. Sharing is still sound because any name *visible* from
  // the new class is impacted by construction; for unimpacted names the
  // right answer is NotFound, which find() synthesizes for row indices
  // beyond a shared column's span.
  Workload W = makeModularForest(3, 2, 2, 4, 2);
  std::shared_ptr<const LookupTable> Old = LookupTable::build(W.H);
  ASSERT_NE(Old, nullptr);

  std::vector<Transaction::Op> Ops;
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddClass, "Fresh", "",
                                "", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, false});
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddBase, "Fresh", "T1",
                                "", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, false});
  Hierarchy New = applyOps(W.H, Ops);
  ImpactSet Impact = computeImpactSet(W.H, New, Ops);
  ASSERT_FALSE(Impact.FullRebuild);

  std::shared_ptr<const LookupTable> Rewarmed =
      LookupTable::rewarm(New, W.H, *Old, Impact.MemberNames);
  ASSERT_NE(Rewarmed, nullptr);
  std::shared_ptr<const LookupTable> Scratch = LookupTable::build(New);
  ASSERT_NE(Scratch, nullptr);

  // Tree 0's names are invisible from Fresh (it derives from T1), so
  // their columns were shared - and must answer NotFound for Fresh,
  // exactly as the scratch table does. Tree 1's names are visible from
  // Fresh and so were re-tabulated.
  ClassId Fresh = New.findClass("Fresh");
  ASSERT_TRUE(Fresh.isValid());
  ASSERT_EQ(Fresh.index(), W.H.numClasses());
  EXPECT_FALSE(contains(Impact.MemberNames, "t0_m0"));
  EXPECT_TRUE(contains(Impact.MemberNames, "t1_m0"));
  EXPECT_EQ(renderTable(New, *Rewarmed), renderTable(New, *Scratch));
  EXPECT_EQ(Rewarmed->find(New, Fresh, New.findName("t0_m0")).Status,
            LookupStatus::NotFound);
}

TEST(RewarmTest, DedupNeverMutatesSharedColumnsInPlace) {
  // PR 3's sharing invariant under dedup: a rewarm may alias the old
  // epoch's columns (cross-epoch sharing) and unify byte-identical ones
  // (structural dedup), but must never write through either. Render the
  // old table before and after the rewarm - any in-place mutation of a
  // shared or deduped column would change the old epoch's answers.
  Workload W = makeModularForest(6, 2, 2, 4, 2);
  std::shared_ptr<const LookupTable> Old = LookupTable::build(W.H);
  ASSERT_NE(Old, nullptr);
  std::vector<std::string> OldAnswersBefore = renderTable(W.H, *Old);

  std::vector<Transaction::Op> Ops;
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddMember, "T1", "",
                                "t1_fresh", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, true});
  Hierarchy New = applyOps(W.H, Ops);
  ImpactSet Impact = computeImpactSet(W.H, New, Ops);
  ASSERT_FALSE(Impact.FullRebuild);

  std::shared_ptr<const LookupTable> Rewarmed =
      LookupTable::rewarm(New, W.H, *Old, Impact.MemberNames);
  ASSERT_NE(Rewarmed, nullptr);

  EXPECT_EQ(renderTable(W.H, *Old), OldAnswersBefore)
      << "rewarm mutated a column shared with the predecessor epoch";
  std::shared_ptr<const LookupTable> Scratch =
      LookupTable::build(New, Deadline::never(), /*Threads=*/1);
  ASSERT_NE(Scratch, nullptr);
  EXPECT_EQ(renderTable(New, *Rewarmed), renderTable(New, *Scratch));

  // ColumnsBuilt/ColumnsShared keep their PR 3 meanings; dedup is the
  // separate pointer-unification counter.
  const LookupTable::BuildStats &Stats = Rewarmed->buildStats();
  EXPECT_EQ(Stats.ColumnsBuilt + Stats.ColumnsShared,
            New.allMemberNames().size());
  EXPECT_EQ(Stats.ColumnsDeduped, Scratch->buildStats().ColumnsDeduped);
}

TEST(RewarmTest, DedupSavesBytesWhenColumnsCoincide) {
  // Two member names declared identically on the same class produce
  // byte-identical columns; the table must store them once and report
  // both the dedup hit and the byte saving.
  HierarchyBuilder B;
  B.addClass("Base").withMember("alpha").withMember("beta");
  B.addClass("Mid").withVirtualBase("Base");
  B.addClass("Leaf").withBase("Mid").withVirtualBase("Base");
  Hierarchy H = std::move(B).build();

  std::shared_ptr<const LookupTable> Table = LookupTable::build(H);
  ASSERT_NE(Table, nullptr);
  EXPECT_GE(Table->buildStats().ColumnsDeduped, 1u);

  // Both names still answer independently and correctly.
  DominanceLookupEngine Engine(H);
  for (const char *Member : {"alpha", "beta"})
    for (const char *Class : {"Base", "Mid", "Leaf"}) {
      ClassId C = H.findClass(Class);
      EXPECT_EQ(renderLookupForComparison(H,
                                          Table->find(H, C, H.findName(Member))),
                renderLookupForComparison(H, Engine.lookup(C, H.findName(Member))))
          << Class << "::" << Member;
    }
}

TEST(ServiceTest, CommitRewarmsIncrementallyAndCountsIt) {
  Workload W = makeModularForest(4, 2, 2, 4, 2);
  ServiceOptions Opts;
  Opts.WarmThreads = 2;
  LookupService Svc(std::move(W.H), Opts);

  Transaction Txn = Svc.beginTxn();
  Txn.addMember("T2", "t2_fresh");
  ASSERT_TRUE(Svc.commit(Txn).isOk());

  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Commits, 1u);
  EXPECT_EQ(Stats.IncrementalRewarms, 1u);
  EXPECT_GT(Stats.ColumnsShared, 0u);
  EXPECT_GT(Stats.ColumnsRetabulated, 0u);
  std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
  EXPECT_TRUE(Snap->warm());

  // The rewarmed epoch serves the new member from the tabulated rung
  // and survives a full self-audit.
  QueryAnswer A = Svc.query("T2_0_0", "t2_fresh");
  EXPECT_EQ(A.Result.Status, LookupStatus::Unambiguous);
  EXPECT_TRUE(Svc.auditNow().passed());

  // A class-removing commit falls back to a full (non-incremental)
  // build and stays warm.
  Transaction Txn2 = Svc.beginTxn();
  Txn2.removeClass("T3_1_1");
  ASSERT_TRUE(Svc.commit(Txn2).isOk());
  Stats = Svc.stats();
  EXPECT_EQ(Stats.Commits, 2u);
  EXPECT_EQ(Stats.IncrementalRewarms, 1u);
  EXPECT_TRUE(Svc.snapshot()->warm());
  EXPECT_TRUE(Svc.auditNow().passed());
}

TEST(EditScriptCampaignTest, FiveHundredScriptsRewarmIdenticallyToScratch) {
  // The harness's oracle 3 rebuilds the table from scratch (serial,
  // single-threaded) after every successful commit and compares it
  // entry-for-entry against the incrementally rewarmed one; the case
  // seed also varies WarmThreads, so this campaign is the
  // "incremental + parallel == serial from-scratch" acceptance check.
  EditScriptCampaignReport Report = runEditScriptCampaign(2000, 130);
  for (const EditScriptCaseResult &Failure : Report.Failures) {
    ADD_FAILURE() << "seed " << Failure.Seed << ": "
                  << Failure.Mismatches.front();
  }
  EXPECT_TRUE(Report.passed());
  EXPECT_GE(Report.TxnsCommitted + Report.TxnsRejected, 500u)
      << "campaign too small to count as 500 edit scripts";
  EXPECT_GT(Report.PairsChecked, 0u);
}

} // namespace
