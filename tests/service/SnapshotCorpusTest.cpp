//===- SnapshotCorpusTest.cpp ----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every file in tests/corpus/snapshots/ through the snapshot
/// loader under the untrusted-input budget and checks that each one is
/// rejected with the *expected structured ErrorCode* - not a crash, not
/// an assert, and not a vague catch-all. The corpus is the executable
/// spec of the loader's rejection behavior; regenerate it with the
/// make_snapshot_corpus tool (which self-checks the same table).
///
//===----------------------------------------------------------------------===//

#include "memlook/service/SnapshotFile.h"

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>

using namespace memlook;
using namespace memlook::service;

namespace {

struct CorpusCase {
  const char *FileName;
  ErrorCode ExpectedCode;
};

// Every file in corpus/snapshots must appear here: the test cross-checks
// the directory listing against this table so a new corrupted snapshot
// can't land without a stated expectation.
constexpr CorpusCase Cases[] = {
    {"empty.snap", ErrorCode::SnapshotMalformed},
    {"bad_magic.snap", ErrorCode::SnapshotVersionMismatch},
    {"bad_version.snap", ErrorCode::SnapshotVersionMismatch},
    {"truncated_mid_section.snap", ErrorCode::SnapshotMalformed},
    {"flipped_payload_bit.snap", ErrorCode::SnapshotChecksumMismatch},
    {"oob_pool_offset.snap", ErrorCode::SnapshotMalformed},
    {"header_class_count_lie.snap", ErrorCode::SnapshotMalformed},
    {"cyclic_hierarchy.snap", ErrorCode::SnapshotMalformed},
    {"huge_counts.snap", ErrorCode::BudgetExceeded},
    {"via_not_base.snap", ErrorCode::SnapshotMalformed},
    {"member_ref_swap.snap", ErrorCode::SnapshotMalformed},
    {"stale_table_after_hierarchy_edit.snap", ErrorCode::SnapshotMalformed},
};

std::filesystem::path snapshotsDir() {
  return std::filesystem::path(MEMLOOK_CORPUS_DIR) / "snapshots";
}

class SnapshotCorpusTest : public ::testing::TestWithParam<CorpusCase> {};

} // namespace

TEST_P(SnapshotCorpusTest, RejectedWithStructuredError) {
  const CorpusCase &Case = GetParam();
  std::filesystem::path Path = snapshotsDir() / Case.FileName;
  ASSERT_TRUE(std::filesystem::exists(Path))
      << Path << " missing - regenerate with make_snapshot_corpus";

  Expected<SnapshotPayload> Loaded =
      readSnapshotFile(Path.string(), ResourceBudget::untrustedInput());
  ASSERT_FALSE(Loaded.hasValue())
      << Case.FileName << " should have been rejected";
  EXPECT_EQ(Loaded.status().code(), Case.ExpectedCode)
      << Case.FileName << ": rejected as '" << Loaded.status().toString()
      << "', expected " << errorCodeLabel(Case.ExpectedCode);
}

TEST(SnapshotCorpusTest, EveryCorpusFileHasAnExpectation) {
  size_t FilesSeen = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(snapshotsDir())) {
    if (Entry.path().extension() != ".snap")
      continue;
    ++FilesSeen;
    std::string Name = Entry.path().filename().string();
    bool Known = false;
    for (const CorpusCase &Case : Cases)
      Known |= Name == Case.FileName;
    EXPECT_TRUE(Known) << Name << " has no entry in the expectation table";
  }
  EXPECT_EQ(FilesSeen, sizeof(Cases) / sizeof(Cases[0]));
}

INSTANTIATE_TEST_SUITE_P(
    Files, SnapshotCorpusTest, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<CorpusCase> &Info) {
      std::string Name = Info.param.FileName;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
