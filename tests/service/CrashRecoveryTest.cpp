//===- CrashRecoveryTest.cpp -------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-recovery campaign: fork the crash_child binary, let it run
/// the deterministic CrashWorkload script against a durable service,
/// and SIGKILL it (or tear its write, or fail its op) at an injected
/// crash point that rotates with the seed across every instrumented
/// window - mid-append, before the append's fsync, between append and
/// publish, between snapshot and log compaction, and inside the
/// atomic-file recipe. Then recover the directory it left behind and
/// hold the result to the durable-prefix contract:
///
///   * restore() succeeds, whatever the kill left on disk;
///   * every epoch the child acked (commit() returned) is recovered -
///     a kill may only lose the in-flight, never-acknowledged tail;
///   * no rung reports data loss: process death leaves torn tails,
///     which are silent, never corrupt interiors;
///   * the recovered service answers exactly like an oracle that
///     replays the same script, fresh and non-durably, to the same
///     epoch - and it accepts new commits afterwards.
///
/// MEMLOOK_CRASH_SEEDS overrides the campaign size (default 200).
///
//===----------------------------------------------------------------------===//

#include "tools/CrashWorkload.h"

#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/LookupService.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

using namespace memlook;
using namespace memlook::service;

namespace {

std::filesystem::path freshTempDir(const std::string &Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// The crash-point arming for this seed. Rotates over every
/// instrumented window; hit numbers and torn-byte counts are seed-
/// derived so the campaign sweeps the whole script, not one instant.
std::string specForSeed(uint64_t Seed) {
  // Appends and publishes happen once per committed transaction.
  std::string H = std::to_string(1 + Seed % crashwk::NumScriptTxns);
  std::string P = std::to_string(1 + Seed % 37);
  // writeFileAtomic runs at WAL creation (1), the mid-run snapshot
  // write (2), and the compacted log the reset writes (3).
  std::string W = std::to_string(1 + (Seed / 8) % 3);
  switch (Seed % 8) {
  case 0: return "wal-append@" + H;
  case 1: return "wal-append@" + H + "=partial:" + P;
  case 2: return "wal-append-fsync@" + H + "=fail";
  case 3: return "wal-publish@" + H;
  case 4: return "wal-reset@1";
  case 5: return "atomic-file-write@" + W + "=partial:" + P;
  case 6: return "atomic-file-fsync@" + W;
  default: return "atomic-file-rename@" + W;
  }
}

/// Forks and execs crash_child for \p Seed with the crash point armed
/// through the environment. Returns false on a campaign-harness failure
/// (never from the child dying - SIGKILL is the expected outcome).
bool runChild(uint64_t Seed, const std::string &Dir) {
  std::string Spec = specForSeed(Seed);
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ADD_FAILURE() << "fork failed";
    return false;
  }
  if (Pid == 0) {
    ::setenv("MEMLOOK_CRASH_POINT", Spec.c_str(), 1);
    std::string SeedStr = std::to_string(Seed);
    ::execl(MEMLOOK_CRASH_CHILD, MEMLOOK_CRASH_CHILD, SeedStr.c_str(),
            Dir.c_str(), static_cast<char *>(nullptr));
    ::_exit(127);
  }
  int WStatus = 0;
  if (::waitpid(Pid, &WStatus, 0) != Pid) {
    ADD_FAILURE() << "waitpid failed for seed " << Seed;
    return false;
  }
  if (WIFSIGNALED(WStatus)) {
    EXPECT_EQ(WTERMSIG(WStatus), SIGKILL)
        << "seed " << Seed << " spec " << Spec
        << ": child died of an unexpected signal";
    return WTERMSIG(WStatus) == SIGKILL;
  }
  // FailOp armings and out-of-range hit numbers let the script finish.
  EXPECT_EQ(WEXITSTATUS(WStatus), 0)
      << "seed " << Seed << " spec " << Spec
      << ": child exited with a script failure";
  return WEXITSTATUS(WStatus) == 0;
}

/// The last epoch the child acknowledged, i.e. the durability bar the
/// recovered service must meet. 1 (the construction epoch) when the
/// child died before its first ack.
uint64_t lastAckedEpoch(const std::string &Dir) {
  std::ifstream In(Dir + "/acks");
  uint64_t Last = 1, E;
  while (In >> E)
    Last = E;
  return Last;
}

/// Byte-for-byte answer comparison between recovered state and the
/// oracle, joined on member spellings (Symbol ids are per-interner).
void expectSameAnswers(uint64_t Seed, const Snapshot &Got,
                       const Snapshot &Want) {
  const Hierarchy &HG = *Got.H;
  const Hierarchy &HW = *Want.H;
  ASSERT_EQ(HG.numClasses(), HW.numClasses()) << "seed " << Seed;
  ASSERT_TRUE(Got.warm()) << "seed " << Seed;
  ASSERT_TRUE(Want.warm()) << "seed " << Seed;
  for (uint32_t Idx = 0; Idx != HG.numClasses(); ++Idx)
    for (Symbol M : HG.allMemberNames()) {
      Symbol MW = HW.findName(HG.spelling(M));
      ASSERT_TRUE(MW.isValid())
          << "seed " << Seed << ": spelling '" << HG.spelling(M) << "' lost";
      EXPECT_EQ(
          renderLookupForComparison(HG, Got.Table->find(HG, ClassId(Idx), M)),
          renderLookupForComparison(HW,
                                    Want.Table->find(HW, ClassId(Idx), MW)))
          << "seed " << Seed << ": " << HG.className(ClassId(Idx))
          << "::" << HG.spelling(M);
    }
}

/// One full campaign iteration: crash, recover, verify.
void runOneSeed(uint64_t Seed, const std::filesystem::path &Base) {
  std::filesystem::path Dir = Base / ("seed" + std::to_string(Seed));
  std::filesystem::create_directories(Dir);
  if (!runChild(Seed, Dir.string()))
    return;

  uint64_t LastAcked = lastAckedEpoch(Dir.string());

  ServiceOptions Opts;
  Opts.WalPath = (Dir / "state.wal").string();
  RestoreReport Report;
  auto Restored = LookupService::restore((Dir / "state.snap").string(),
                                         crashwk::baseWorkload().H, Opts,
                                         &Report);
  ASSERT_TRUE(Restored.hasValue())
      << "seed " << Seed << " spec " << specForSeed(Seed)
      << ": recovery must always succeed: " << Restored.status().toString();
  std::unique_ptr<LookupService> Svc = std::move(*Restored);

  // Process death may tear the in-flight tail, never corrupt what was
  // already synced - so no rung is allowed to report data loss here.
  EXPECT_FALSE(Report.DataLoss)
      << "seed " << Seed << " spec " << specForSeed(Seed) << ": "
      << Report.toString() << " / wal: " << Report.WalStatus.toString();

  uint64_t E = Svc->currentEpoch();
  EXPECT_GE(E, LastAcked)
      << "seed " << Seed << " spec " << specForSeed(Seed)
      << ": an acknowledged commit was lost (" << Report.toString() << ")";
  EXPECT_LE(E, 1 + crashwk::NumScriptTxns) << "seed " << Seed;

  // The durable-prefix oracle: a fresh, non-durable service replaying
  // the same deterministic script to the recovered epoch. Every script
  // transaction is valid by construction, so oracle commits never fail.
  auto Oracle =
      std::make_unique<LookupService>(crashwk::baseWorkload().H);
  for (uint64_t K = 0; K + 2 <= E; ++K) {
    Transaction Txn = Oracle->beginTxn();
    crashwk::recordScriptTxn(Seed, K, *Oracle->snapshot()->H, Txn);
    ASSERT_TRUE(Oracle->commit(Txn).isOk())
        << "seed " << Seed << ": oracle replay broke at txn " << K;
  }

  ASSERT_TRUE(Svc->warmCurrent().isOk()) << "seed " << Seed;
  expectSameAnswers(Seed, *Svc->snapshot(), *Oracle->snapshot());

  // Liveness: recovery hands back a service that still takes commits.
  if (E < 1 + crashwk::NumScriptTxns) {
    Transaction Txn = Svc->beginTxn();
    crashwk::recordScriptTxn(Seed, E - 1, *Svc->snapshot()->H, Txn);
    EXPECT_TRUE(Svc->commit(Txn).isOk())
        << "seed " << Seed << ": recovered service refused a valid commit";
  }
}

} // namespace

TEST(CrashRecoveryTest, EveryKilledChildRecoversItsDurablePrefix) {
  uint64_t NumSeeds = 200;
  if (const char *Env = std::getenv("MEMLOOK_CRASH_SEEDS"))
    NumSeeds = std::strtoull(Env, nullptr, 10);
  ASSERT_GE(NumSeeds, 1u);

  std::filesystem::path Base = freshTempDir("crash_campaign");
  for (uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
    runOneSeed(Seed, Base);
    if (::testing::Test::HasFatalFailure())
      break;
  }
  // The campaign's disk footprint is hundreds of directories; clean up
  // on success, keep the evidence on failure.
  if (!::testing::Test::HasFailure())
    std::filesystem::remove_all(Base);
}
