//===- LookupServiceTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit coverage of the long-lived lookup service: epoch-versioned
/// snapshots, transactional commits and rollbacks, the deadline
/// degradation ladder, and the self-audit's quarantine-and-rebuild path.
///
//===----------------------------------------------------------------------===//

#include "memlook/service/LookupService.h"

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/EditScriptFuzz.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <thread>

using namespace memlook;
using namespace memlook::service;
using memlook::testutil::makeFigure9;

namespace {

/// A small single-diamond hierarchy with distinct members per class.
Hierarchy diamond() {
  HierarchyBuilder B;
  B.addClass("Base").withMember("shared").withMember("tag");
  B.addClass("Left").withVirtualBase("Base").withMember("left_only");
  B.addClass("Right").withVirtualBase("Base").withMember("right_only");
  B.addClass("Join").withBase("Left").withBase("Right");
  return std::move(B).build();
}

} // namespace

TEST(LookupServiceTest, InitialEpochServesWarmTabulatedAnswers) {
  LookupService Svc(diamond());
  EXPECT_EQ(Svc.currentEpoch(), 1u);
  EXPECT_TRUE(Svc.tableHealth().isOk());

  QueryAnswer A = Svc.query("Join", "left_only");
  EXPECT_TRUE(A.S.isOk());
  EXPECT_EQ(A.Rung, AnswerRung::Tabulated);
  EXPECT_FALSE(A.Approximate);
  EXPECT_EQ(A.Epoch, 1u);
  ASSERT_EQ(A.Result.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(Svc.snapshot()->H->className(A.Result.DefiningClass), "Left");
}

TEST(LookupServiceTest, UnknownContextAnswersWithStatus) {
  LookupService Svc(diamond());
  QueryAnswer A = Svc.query("NoSuchClass", "shared");
  EXPECT_EQ(A.S.code(), ErrorCode::UnknownClass);
  EXPECT_EQ(A.Result.Status, LookupStatus::NotFound);
  EXPECT_EQ(Svc.stats().UnknownContexts, 1u);
}

TEST(LookupServiceTest, UnknownMemberAnswersNotFound) {
  LookupService Svc(diamond());
  QueryAnswer A = Svc.query("Join", "no_such_member");
  EXPECT_TRUE(A.S.isOk());
  EXPECT_EQ(A.Result.Status, LookupStatus::NotFound);
}

TEST(LookupServiceTest, CommitPublishesNewEpochAndPreservesPinnedReaders) {
  LookupService Svc(diamond());
  std::shared_ptr<const Snapshot> Pinned = Svc.snapshot();

  Transaction Txn = Svc.beginTxn();
  Txn.addClass("Leaf").addBase("Leaf", "Join").addMember("Leaf", "fresh");
  ASSERT_TRUE(Svc.commit(Txn).isOk());

  EXPECT_EQ(Svc.currentEpoch(), 2u);
  QueryAnswer New = Svc.query("Leaf", "fresh");
  EXPECT_EQ(New.Result.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(New.Epoch, 2u);

  // The pinned epoch-1 snapshot still answers, and has never heard of
  // the new class.
  EXPECT_EQ(Pinned->Epoch, 1u);
  QueryAnswer Old = Svc.queryOn(*Pinned, "Leaf", "fresh");
  EXPECT_EQ(Old.S.code(), ErrorCode::UnknownClass);
  QueryAnswer Shared = Svc.queryOn(*Pinned, "Join", "shared");
  EXPECT_EQ(Shared.Result.Status, LookupStatus::Unambiguous);
}

TEST(LookupServiceTest, FailedCommitRollsBackCompletely) {
  LookupService Svc(diamond());
  std::shared_ptr<const Snapshot> Before = Svc.snapshot();

  // Valid prefix, invalid suffix: a cycle Join -> ... -> Base -> Join.
  Transaction Txn = Svc.beginTxn();
  Txn.addMember("Base", "would_be_new").addBase("Base", "Join");
  Status S = Svc.commit(Txn);
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::InheritanceCycle) << S.toString();

  // Nothing was published: same epoch, same snapshot object.
  EXPECT_EQ(Svc.currentEpoch(), 1u);
  EXPECT_EQ(Svc.snapshot().get(), Before.get());
  EXPECT_EQ(Svc.query("Base", "would_be_new").Result.Status,
            LookupStatus::NotFound);
  EXPECT_EQ(Svc.stats().CommitRejects, 1u);
}

TEST(LookupServiceTest, RemovalOpsChangeAnswers) {
  LookupService Svc(diamond());

  // Removing Left's declaration re-routes Join::left_only to NotFound.
  Transaction Remove = Svc.beginTxn();
  Remove.removeMember("Left", "left_only");
  ASSERT_TRUE(Svc.commit(Remove).isOk());
  EXPECT_EQ(Svc.query("Join", "left_only").Result.Status,
            LookupStatus::NotFound);

  // Removing the Right edge makes Join::right_only invisible too.
  Transaction Unlink = Svc.beginTxn();
  Unlink.removeBase("Join", "Right");
  ASSERT_TRUE(Svc.commit(Unlink).isOk());
  EXPECT_EQ(Svc.query("Join", "right_only").Result.Status,
            LookupStatus::NotFound);

  // Right is now unreferenced and can be dropped entirely.
  Transaction Drop = Svc.beginTxn();
  Drop.removeClass("Right");
  ASSERT_TRUE(Svc.commit(Drop).isOk());
  EXPECT_EQ(Svc.query("Right", "right_only").S.code(), ErrorCode::UnknownClass);
  EXPECT_EQ(Svc.currentEpoch(), 4u);
}

TEST(LookupServiceTest, RemoveReferencedClassIsRefused) {
  LookupService Svc(diamond());
  Transaction Txn = Svc.beginTxn();
  Txn.removeClass("Base"); // still a base of Left and Right
  Status S = Svc.commit(Txn);
  EXPECT_EQ(S.code(), ErrorCode::InvalidArgument);
  EXPECT_EQ(Svc.currentEpoch(), 1u);
}

TEST(LookupServiceTest, StaleTransactionConflicts) {
  LookupService Svc(diamond());
  Transaction Stale = Svc.beginTxn();
  Transaction Winner = Svc.beginTxn();

  Winner.addMember("Join", "won");
  ASSERT_TRUE(Svc.commit(Winner).isOk());

  Stale.addMember("Join", "lost");
  Status S = Svc.commit(Stale);
  EXPECT_EQ(S.code(), ErrorCode::TransactionConflict);
  EXPECT_EQ(Svc.currentEpoch(), 2u);
  EXPECT_EQ(Svc.query("Join", "lost").Result.Status, LookupStatus::NotFound);
  EXPECT_EQ(Svc.stats().CommitConflicts, 1u);

  // Replaying the same edits against the new epoch succeeds.
  Transaction Retry = Svc.beginTxn();
  Retry.addMember("Join", "lost");
  EXPECT_TRUE(Svc.commit(Retry).isOk());
  EXPECT_EQ(Svc.query("Join", "lost").Result.Status,
            LookupStatus::Unambiguous);
}

TEST(LookupServiceTest, ColdServiceDegradesToPerQueryEngineAndWarms) {
  ServiceOptions Opts;
  Opts.WarmOnCommit = false;
  LookupService Svc(diamond(), Opts);

  EXPECT_FALSE(Svc.tableHealth().isOk());
  QueryAnswer Cold = Svc.query("Join", "shared");
  EXPECT_EQ(Cold.Rung, AnswerRung::Figure8PerQuery);
  EXPECT_EQ(Cold.Result.Status, LookupStatus::Unambiguous);
  EXPECT_FALSE(Cold.Approximate);

  ASSERT_TRUE(Svc.warmCurrent().isOk());
  EXPECT_TRUE(Svc.tableHealth().isOk());
  QueryAnswer Warm = Svc.query("Join", "shared");
  EXPECT_EQ(Warm.Rung, AnswerRung::Tabulated);
  EXPECT_EQ(Warm.Epoch, 1u); // warming republishes the same epoch
  EXPECT_EQ(renderLookupForComparison(*Svc.snapshot()->H, Warm.Result),
            renderLookupForComparison(*Svc.snapshot()->H, Cold.Result));
}

TEST(LookupServiceTest, ExpiredDeadlineFallsToApproximateFloor) {
  ServiceOptions Opts;
  Opts.WarmOnCommit = false; // skip rung 0 so the ladder is visible
  LookupService Svc(makeFigure9(), Opts);

  std::atomic<bool> Cancelled{true};
  Deadline D = Deadline::never();
  D.withCancelFlag(&Cancelled);

  // Figure 9's probe query: the exact engines say unambiguous, the
  // floor rung says ambiguous - so the rung is observable in the answer
  // itself, not just in the metadata.
  QueryAnswer A = Svc.query("E", "m", D);
  EXPECT_EQ(A.Rung, AnswerRung::GxxApproximate);
  EXPECT_TRUE(A.Approximate);
  EXPECT_TRUE(A.DeadlineExpired);
  EXPECT_EQ(A.Result.Status, LookupStatus::Ambiguous);

  QueryAnswer Exact = Svc.query("E", "m");
  EXPECT_EQ(Exact.Rung, AnswerRung::Figure8PerQuery);
  EXPECT_EQ(Exact.Result.Status, LookupStatus::Unambiguous);

  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.RungAnswers[2], 1u);
  EXPECT_EQ(Stats.RungAnswers[1], 1u);
}

TEST(LookupServiceTest, AuditPassesOnHealthyService) {
  LookupService Svc(diamond());
  AuditReport Report = Svc.auditNow();
  EXPECT_TRUE(Report.passed()) << Report.toString();
  EXPECT_TRUE(Report.TableWasWarm);
  EXPECT_FALSE(Report.QuarantinedTable);
  EXPECT_GT(Report.PairsSampled, 0u);
  EXPECT_GT(Report.EnginePairsChecked, 0u);
  EXPECT_EQ(Svc.stats().Audits, 1u);
  EXPECT_EQ(Svc.stats().AuditMismatches, 0u);
}

TEST(LookupServiceTest, AuditCatchesCorruptedTableAndRebuilds) {
  ServiceOptions Opts;
  Opts.AuditSampleLimit = 0; // full sweep: the corruption must be found
  LookupService Svc(diamond(), Opts);

  std::string HealthyKey = renderLookupForComparison(
      *Svc.snapshot()->H, Svc.query("Join", "shared").Result);

  ASSERT_TRUE(Svc.corruptTableEntryForTesting("Join", "shared"));
  QueryAnswer Lied = Svc.query("Join", "shared");
  EXPECT_NE(renderLookupForComparison(*Svc.snapshot()->H, Lied.Result),
            HealthyKey)
      << "corruption hook failed to change the served answer";

  AuditReport Report = Svc.auditNow();
  EXPECT_FALSE(Report.passed());
  EXPECT_TRUE(Report.QuarantinedTable);
  ASSERT_FALSE(Report.Mismatches.empty());
  EXPECT_NE(Report.Mismatches.front().find("Join"), std::string::npos);

  // The rebuilt table serves the truth again, at the same epoch.
  std::shared_ptr<const Snapshot> Rebuilt = Svc.snapshot();
  EXPECT_EQ(Rebuilt->Epoch, 1u);
  EXPECT_TRUE(Rebuilt->RebuiltByAudit);
  EXPECT_TRUE(Rebuilt->warm());
  QueryAnswer Healed = Svc.query("Join", "shared");
  EXPECT_EQ(Healed.Rung, AnswerRung::Tabulated);
  EXPECT_EQ(renderLookupForComparison(*Rebuilt->H, Healed.Result), HealthyKey);

  AuditReport Clean = Svc.auditNow();
  EXPECT_TRUE(Clean.passed()) << Clean.toString();

  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Quarantines, 1u);
  EXPECT_EQ(Stats.TableRebuilds, 1u);
}

TEST(LookupServiceTest, QuarantinedSnapshotSkipsTabulatedRung) {
  ServiceOptions Opts;
  Opts.AuditSampleLimit = 0;
  LookupService Svc(diamond(), Opts);

  // Pin the corrupted snapshot, then let the audit quarantine it.
  ASSERT_TRUE(Svc.corruptTableEntryForTesting("Join", "shared"));
  std::shared_ptr<const Snapshot> Corrupted = Svc.snapshot();
  (void)Svc.auditNow();

  // The pinned reader sees the quarantine (monotone flag on the shared
  // snapshot) and degrades to the exact per-query rung instead of
  // serving the lie.
  EXPECT_TRUE(Corrupted->quarantined());
  QueryAnswer A = Svc.queryOn(*Corrupted, "Join", "shared");
  EXPECT_EQ(A.Rung, AnswerRung::Figure8PerQuery);
  EXPECT_EQ(A.Result.Status, LookupStatus::Unambiguous);
  EXPECT_TRUE(A.TableQuarantined);
  EXPECT_EQ(Svc.queryOn(*Corrupted, "Join", "shared").Result.Status,
            LookupStatus::Unambiguous);
}

TEST(LookupServiceTest, TableHealthReportsQuarantine) {
  ServiceOptions Opts;
  Opts.AuditSampleLimit = 0;
  Opts.AuditEngineCheck = false;
  LookupService Svc(diamond(), Opts);

  ASSERT_TRUE(Svc.corruptTableEntryForTesting("Join", "tag"));
  std::shared_ptr<const Snapshot> Corrupted = Svc.snapshot();
  (void)Svc.auditNow();

  // The *current* snapshot was rebuilt and is healthy; the quarantined
  // one reports through the pinned pointer.
  EXPECT_TRUE(Svc.tableHealth().isOk());
  EXPECT_TRUE(Corrupted->quarantined());
}

TEST(LookupServiceTest, BackgroundAuditRunsAndStops) {
  LookupService Svc(diamond());
  Svc.startBackgroundAudit(/*IntervalMillis=*/5);

  // Wait (bounded) until at least two audits have run.
  for (int Tries = 0; Tries != 400 && Svc.stats().Audits < 2; ++Tries)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(Svc.stats().Audits, 2u);
  EXPECT_EQ(Svc.stats().AuditMismatches, 0u);

  Svc.stopBackgroundAudit();
  uint64_t AfterStop = Svc.stats().Audits;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(Svc.stats().Audits, AfterStop);
}

TEST(LookupServiceTest, CreateRejectsUnfinalizedHierarchy) {
  Hierarchy H;
  (void)H.createClass("A");
  Expected<std::unique_ptr<LookupService>> Svc =
      LookupService::create(std::move(H));
  ASSERT_FALSE(Svc);
  EXPECT_EQ(Svc.status().code(), ErrorCode::NotFinalized);
}

TEST(LookupServiceTest, BudgetBoundsTransactionGrowth) {
  ServiceOptions Opts;
  Opts.Budget.MaxClasses = 5; // diamond already has 4
  LookupService Svc(diamond(), Opts);

  Transaction Txn = Svc.beginTxn();
  Txn.addClass("One").addClass("Two");
  Status S = Svc.commit(Txn);
  EXPECT_EQ(S.code(), ErrorCode::BudgetExceeded);
  EXPECT_EQ(Svc.currentEpoch(), 1u);
}

TEST(LookupServiceTest, EditScriptFuzzSmoke) {
  // A quick deterministic slice of the edit-script campaign; the fuzz
  // binary runs the long version.
  EditScriptCampaignReport Report = runEditScriptCampaign(1, 20);
  EXPECT_EQ(Report.CasesRun, 20u);
  for (const EditScriptCaseResult &Failure : Report.Failures)
    for (const std::string &M : Failure.Mismatches)
      ADD_FAILURE() << "seed " << Failure.Seed << ": " << M;
  EXPECT_GT(Report.TxnsCommitted, 0u);
  EXPECT_GT(Report.TxnsRejected, 0u);
}

TEST(LookupServiceTest, EditScriptCasesAreReproducible) {
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    EditScriptCaseResult A = runEditScriptCase(Seed);
    EditScriptCaseResult B = runEditScriptCase(Seed);
    EXPECT_EQ(A.TxnsCommitted, B.TxnsCommitted) << "seed " << Seed;
    EXPECT_EQ(A.TxnsRejected, B.TxnsRejected) << "seed " << Seed;
    EXPECT_EQ(A.Mismatches, B.Mismatches) << "seed " << Seed;
  }
}
