//===- SnapshotPersistenceTest.cpp -----------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable-snapshot contract, from both directions:
///
///  * **Fidelity**: hundreds of fuzz-generated hierarchies (with
///    structural-dedup sharing, overflow pools, statics, and
///    using-declarations among them, and the test proves it) round-trip
///    through serialize + deserialize answering identically, with
///    column sharing preserved on disk and after the load.
///  * **Hostility**: every truncation prefix and every single-bit flip
///    of a snapshot is rejected with a recoverable Status - the format
///    keeps each byte under exactly one checksum, so nothing can change
///    without being caught.
///  * **Recovery**: LookupService::restore() serves from the snapshot
///    rung when the file is good, and quarantines + rebuilds from
///    source when it is not, reporting which rung served.
///
//===----------------------------------------------------------------------===//

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/LookupService.h"
#include "memlook/service/SnapshotFile.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>

using namespace memlook;
using namespace memlook::service;

namespace {

/// Compares every (class, member) answer of \p Table over \p H against
/// \p Oracle over \p OracleH. The join key is the member *spelling*:
/// Symbol ids are per-interner and intentionally not persisted.
void expectSameAnswers(const Hierarchy &H, const LookupTable &Table,
                       const Hierarchy &OracleH, const LookupTable &Oracle,
                       const char *What) {
  ASSERT_EQ(H.numClasses(), OracleH.numClasses()) << What;
  ASSERT_EQ(H.allMemberNames().size(), OracleH.allMemberNames().size())
      << What;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    for (Symbol M : H.allMemberNames()) {
      Symbol OracleM = OracleH.findName(H.spelling(M));
      ASSERT_TRUE(OracleM.isValid()) << What << ": member spelling '"
                                     << H.spelling(M) << "' lost";
      EXPECT_EQ(renderLookupForComparison(H, Table.find(H, ClassId(Idx), M)),
                renderLookupForComparison(
                    OracleH, Oracle.find(OracleH, ClassId(Idx), OracleM)))
          << What << ": " << H.className(ClassId(Idx))
          << "::" << H.spelling(M);
    }
}

RandomHierarchyParams paramsForSeed(uint64_t Seed) {
  RandomHierarchyParams P;
  P.NumClasses = 4 + static_cast<uint32_t>(Seed % 37);
  P.MemberPool = 3 + static_cast<uint32_t>(Seed % 8);
  P.StaticChance = 0.2;
  P.UsingChance = 0.15;
  return P;
}

std::filesystem::path freshTempDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

bool isRecoverableSnapshotRejection(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::SnapshotVersionMismatch:
  case ErrorCode::SnapshotChecksumMismatch:
  case ErrorCode::SnapshotMalformed:
  case ErrorCode::BudgetExceeded:
    return true;
  default:
    return false;
  }
}

} // namespace

TEST(SnapshotPersistenceTest, FiveHundredSeededHierarchiesRoundTripExactly) {
  // Cumulative feature counters prove the 500 cases actually cover the
  // interesting column shapes, not just tiny red-only tables.
  uint64_t SawDedupSharing = 0, SawRedPool = 0, SawBluePool = 0;
  uint64_t SawStatics = 0, SawUsings = 0;

  for (uint64_t Seed = 1; Seed <= 500; ++Seed) {
    Workload W = makeRandomHierarchy(paramsForSeed(Seed), Seed);
    const Hierarchy &H = W.H;
    std::shared_ptr<const LookupTable> Table = LookupTable::build(H);
    ASSERT_TRUE(Table) << "seed " << Seed;

    for (uint32_t C = 0; C != H.numClasses(); ++C)
      for (const MemberDecl &M : H.info(ClassId(C)).Members) {
        SawStatics += M.IsStatic;
        SawUsings += M.UsingFrom.isValid();
      }
    std::unordered_set<const LookupTable::Column *> DistinctCols;
    for (const std::shared_ptr<const LookupTable::Column> &Col :
         Table->columns()) {
      DistinctCols.insert(Col.get());
      SawRedPool += !Col->Data.rawRedPool().empty();
      SawBluePool += !Col->Data.rawBluePool().empty();
    }
    SawDedupSharing += DistinctCols.size() < Table->columns().size();

    std::string Bytes = serializeSnapshot(/*Epoch=*/Seed, H, Table.get());
    Expected<SnapshotPayload> Loaded =
        deserializeSnapshot(Bytes, ResourceBudget::untrustedInput());
    ASSERT_TRUE(Loaded.hasValue())
        << "seed " << Seed << ": " << Loaded.status().toString();
    EXPECT_EQ(Loaded->Epoch, Seed);
    ASSERT_TRUE(Loaded->Table) << "seed " << Seed;

    expectSameAnswers(*Loaded->H, *Loaded->Table, H, *Table, "round-trip");
    if (::testing::Test::HasFailure())
      FAIL() << "first failing seed: " << Seed;

    // Dedup sharing survives the round trip: the loaded table has
    // exactly as many distinct column objects as the original.
    std::unordered_set<const LookupTable::Column *> LoadedDistinct;
    for (const std::shared_ptr<const LookupTable::Column> &Col :
         Loaded->Table->columns())
      LoadedDistinct.insert(Col.get());
    EXPECT_EQ(LoadedDistinct.size(), DistinctCols.size()) << "seed " << Seed;
  }

  EXPECT_GT(SawDedupSharing, 0u) << "no case exercised dedup sharing";
  EXPECT_GT(SawRedPool, 0u) << "no case exercised red overflow pools";
  EXPECT_GT(SawBluePool, 0u) << "no case exercised blue overflow pools";
  EXPECT_GT(SawStatics, 0u) << "no case exercised static members";
  EXPECT_GT(SawUsings, 0u) << "no case exercised using-declarations";
}

TEST(SnapshotPersistenceTest, DedupSharedColumnsStaySharedOnDisk) {
  // m and n are declared together in A, so their finished columns are
  // byte-identical and structural dedup unifies them behind one Column
  // object. The file must store that column once, and the loader must
  // re-share it.
  HierarchyBuilder B;
  B.addClass("A").withMember("m").withMember("n");
  B.addClass("B").withBase("A");
  Hierarchy H = std::move(B).build();
  std::shared_ptr<const LookupTable> Table = LookupTable::build(H);
  ASSERT_TRUE(Table);
  ASSERT_EQ(Table->columns().size(), 2u);
  ASSERT_EQ(Table->columns()[0].get(), Table->columns()[1].get());

  std::string Bytes = serializeSnapshot(1, H, Table.get());
  Expected<SnapshotPayload> Loaded =
      deserializeSnapshot(Bytes, ResourceBudget::untrustedInput());
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().toString();
  ASSERT_TRUE(Loaded->Table);
  ASSERT_EQ(Loaded->Table->columns().size(), 2u);
  EXPECT_EQ(Loaded->Table->columns()[0].get(),
            Loaded->Table->columns()[1].get());
}

TEST(SnapshotPersistenceTest, ColdSnapshotRoundTripsWithoutATable) {
  Workload W = makeRandomHierarchy(paramsForSeed(11), 11);
  std::string Bytes = serializeSnapshot(/*Epoch=*/9, W.H, nullptr);
  Expected<SnapshotPayload> Loaded =
      deserializeSnapshot(Bytes, ResourceBudget::untrustedInput());
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().toString();
  EXPECT_EQ(Loaded->Epoch, 9u);
  EXPECT_EQ(Loaded->Table, nullptr);
  EXPECT_EQ(Loaded->H->numClasses(), W.H.numClasses());
}

TEST(SnapshotPersistenceTest, RewarmSharedShortColumnsRoundTrip) {
  // A committed class addition rewarms incrementally: untouched columns
  // are aliased from the previous epoch and legally span fewer rows
  // than the new class count. Those short columns must persist and
  // reload answering identically to a from-scratch build.
  Workload W = makeModularForest(3, 2, 2, 3, 2);
  LookupService Svc(std::move(W.H));
  Transaction Txn = Svc.beginTxn();
  Txn.addClass("Fresh").addMember("Fresh", "fresh_m");
  ASSERT_TRUE(Svc.commit(Txn).isOk());
  std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
  ASSERT_TRUE(Snap->warm());

  const Hierarchy &H = *Snap->H;
  bool SawShortColumn = false;
  for (const std::shared_ptr<const LookupTable::Column> &Col :
       Snap->Table->columns())
    SawShortColumn |= Col->numRows() < H.numClasses();
  ASSERT_TRUE(SawShortColumn)
      << "the commit did not leave any rewarm-shared short column";

  std::string Bytes =
      serializeSnapshot(Snap->Epoch, H, Snap->Table.get());
  Expected<SnapshotPayload> Loaded =
      deserializeSnapshot(Bytes, ResourceBudget::untrustedInput());
  ASSERT_TRUE(Loaded.hasValue()) << Loaded.status().toString();
  ASSERT_TRUE(Loaded->Table);
  std::shared_ptr<const LookupTable> Scratch = LookupTable::build(*Loaded->H);
  expectSameAnswers(*Loaded->H, *Loaded->Table, *Loaded->H, *Scratch,
                    "rewarmed");
}

TEST(SnapshotPersistenceTest, EveryTruncationPrefixIsRejectedRecoverably) {
  Workload W = makeRandomHierarchy(paramsForSeed(3), 3);
  std::shared_ptr<const LookupTable> Table = LookupTable::build(W.H);
  std::string Bytes = serializeSnapshot(1, W.H, Table.get());

  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Expected<SnapshotPayload> Loaded = deserializeSnapshot(
        std::string_view(Bytes).substr(0, Len),
        ResourceBudget::untrustedInput());
    ASSERT_FALSE(Loaded.hasValue()) << "prefix of " << Len << " bytes loaded";
    EXPECT_TRUE(isRecoverableSnapshotRejection(Loaded.status().code()))
        << "prefix " << Len << ": " << Loaded.status().toString();
  }
}

TEST(SnapshotPersistenceTest, EverySingleBitFlipIsRejected) {
  // Every byte of the file sits under exactly one checksum (the header
  // CRC, a section CRC, or it *is* a stored CRC), so no unsealed
  // single-bit change may load.
  Workload W = makeRandomHierarchy(paramsForSeed(5), 5);
  std::shared_ptr<const LookupTable> Table = LookupTable::build(W.H);
  std::string Bytes = serializeSnapshot(1, W.H, Table.get());

  for (size_t At = 0; At != Bytes.size(); ++At)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mutated = Bytes;
      Mutated[At] = static_cast<char>(Mutated[At] ^ (1 << Bit));
      Expected<SnapshotPayload> Loaded =
          deserializeSnapshot(Mutated, ResourceBudget::untrustedInput());
      ASSERT_FALSE(Loaded.hasValue())
          << "flip of byte " << At << " bit " << Bit << " loaded";
      EXPECT_TRUE(isRecoverableSnapshotRejection(Loaded.status().code()))
          << "byte " << At << " bit " << Bit << ": "
          << Loaded.status().toString();
    }
}

TEST(SnapshotPersistenceTest, RestoreServesFromTheSnapshotRung) {
  std::filesystem::path Dir = freshTempDir("restore_good");
  std::string Path = (Dir / "good.snap").string();

  Workload Source = makeModularForest(3, 2, 2, 3, 2);
  Workload Fallback = makeModularForest(3, 2, 2, 3, 2);
  LookupService Original(std::move(Source.H));
  ASSERT_TRUE(Original.saveSnapshot(Path).isOk());
  EXPECT_EQ(Original.stats().SnapshotSaves, 1u);

  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored =
      LookupService::restore(Path, std::move(Fallback.H), ServiceOptions(),
                             &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.Rung, RestoreRung::Snapshot);
  EXPECT_TRUE(Report.SnapshotStatus.isOk());
  EXPECT_FALSE(Report.FileQuarantined);
  EXPECT_GT(Report.AuditColumnsChecked, 0u);
  EXPECT_EQ((*Restored)->stats().SnapshotRestores, 1u);

  // Cold restart answers identically to the from-source build.
  std::shared_ptr<const Snapshot> A = Original.snapshot();
  std::shared_ptr<const Snapshot> B = (*Restored)->snapshot();
  ASSERT_TRUE(A->warm());
  ASSERT_TRUE(B->warm());
  EXPECT_EQ(B->Epoch, A->Epoch);
  expectSameAnswers(*B->H, *B->Table, *A->H, *A->Table, "restored");
}

TEST(SnapshotPersistenceTest, RestoreQuarantinesACorruptFileAndRebuilds) {
  std::filesystem::path Dir = freshTempDir("restore_bad");
  std::string Path = (Dir / "bad.snap").string();
  {
    // Valid magic, then garbage where the version belongs (the string
    // carries an embedded NUL, so it is sized explicitly).
    std::string Garbage("MLKSNAP\0garbage-after-the-magic", 31);
    std::ofstream Out(Path, std::ios::binary);
    Out.write(Garbage.data(), static_cast<std::streamsize>(Garbage.size()));
  }

  Workload Fallback = makeModularForest(2, 2, 2, 3, 2);
  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored =
      LookupService::restore(Path, std::move(Fallback.H), ServiceOptions(),
                             &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.Rung, RestoreRung::RebuildFromSource);
  EXPECT_FALSE(Report.SnapshotStatus.isOk());
  EXPECT_TRUE(Report.FileQuarantined);
  EXPECT_EQ(Report.QuarantinePath, Path + ".quarantined");
  EXPECT_TRUE(std::filesystem::exists(Report.QuarantinePath))
      << "evidence file missing";
  EXPECT_FALSE(std::filesystem::exists(Path)) << "corrupt file left behind";
  EXPECT_EQ((*Restored)->stats().SnapshotQuarantines, 1u);

  // The rebuilt service is fully operational at epoch 1.
  EXPECT_EQ((*Restored)->snapshot()->Epoch, 1u);
  EXPECT_TRUE((*Restored)->auditNow().passed());
}

TEST(SnapshotPersistenceTest, RestoreOfAMissingFileRebuildsWithoutQuarantine) {
  std::filesystem::path Dir = freshTempDir("restore_missing");
  Workload Fallback = makeModularForest(2, 2, 2, 3, 2);
  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored = LookupService::restore(
      (Dir / "never_written.snap").string(), std::move(Fallback.H),
      ServiceOptions(), &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.Rung, RestoreRung::RebuildFromSource);
  EXPECT_FALSE(Report.FileQuarantined) << "nothing existed to quarantine";
}

TEST(SnapshotPersistenceTest, RestoreFailsOnlyWhenTheFallbackIsUnusable) {
  std::filesystem::path Dir = freshTempDir("restore_nofallback");
  Hierarchy Unfinalized; // never finalized: the one unusable fallback
  Expected<std::unique_ptr<LookupService>> Restored = LookupService::restore(
      (Dir / "missing.snap").string(), std::move(Unfinalized));
  ASSERT_FALSE(Restored.hasValue());
  EXPECT_EQ(Restored.status().code(), ErrorCode::NotFinalized);
}

TEST(SnapshotPersistenceTest, SaveSnapshotIsAtomicAndLeavesNoTempFiles) {
  std::filesystem::path Dir = freshTempDir("atomic_save");
  Workload W = makeModularForest(2, 2, 2, 3, 2);
  LookupService Svc(std::move(W.H));
  ASSERT_TRUE(Svc.saveSnapshot((Dir / "out.snap").string()).isOk());

  size_t Entries = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    ++Entries;
    EXPECT_EQ(Entry.path().filename().string(), "out.snap")
        << "stray file: " << Entry.path();
  }
  EXPECT_EQ(Entries, 1u);

  Expected<SnapshotPayload> Loaded = readSnapshotFile(
      (Dir / "out.snap").string(), ResourceBudget::untrustedInput());
  EXPECT_TRUE(Loaded.hasValue()) << Loaded.status().toString();
}
