//===- QueryFastLaneTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query fast lane's correctness contract: resolved-handle queries,
/// batch queries, and allocation-free probes must answer *identically*
/// to the string-keyed path and to a fresh reference engine - the fast
/// lane is an implementation shortcut, never a semantic one. The core
/// is a 500-hierarchy differential campaign (seeded random DAGs with
/// virtual bases, restricted edges, statics, and using-declarations)
/// holding probe(), query(QueryKey&), and queryMany() against
/// DominanceLookupEngine over every (class, member) pair plus unknown
/// names. On top: the post-rewarm shared-short-column regime (a class
/// added after the table was built must get correct answers from both
/// re-tabulated full-span columns and shared shorter ones), transparent
/// stale-key re-resolution across commits, and the release-safe checked
/// find's handling of forged context ids.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DifferentialCheck.h"
#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/service/LookupService.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

using namespace memlook;
using namespace memlook::service;

namespace {

/// Asserts one probe answer against the full engine result for the same
/// (context, member). A probe carries no witness, so agreement means:
/// same classification, and for unambiguous answers the same defining
/// class, effective access, and static-merge flag.
void expectProbeMatches(const Hierarchy &H, const ProbeAnswer &P,
                        const LookupResult &R, const std::string &Where) {
  ASSERT_EQ(P.Status, R.Status) << Where;
  if (R.Status != LookupStatus::Unambiguous)
    return;
  EXPECT_EQ(P.DefiningClass, R.DefiningClass)
      << Where << ": probe says " << H.className(P.DefiningClass)
      << ", engine says " << H.className(R.DefiningClass);
  EXPECT_EQ(P.Access, R.EffectiveAccess.value_or(AccessSpec::Public)) << Where;
  EXPECT_EQ(P.SharedStatic, R.SharedStatic) << Where;
}

/// One hierarchy's worth of the campaign: every (class, member) pair -
/// plus unknown spellings - through all four entry points, against a
/// fresh lazy-recursive reference engine.
void runDifferential(LookupService &Svc, uint64_t Seed) {
  std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
  const Hierarchy &H = *Snap->H;
  ASSERT_TRUE(Snap->warm()) << "campaign fixtures warm on construction";
  DominanceLookupEngine Engine(H, DominanceLookupEngine::Mode::LazyRecursive);

  std::vector<QueryKey> Keys;
  std::vector<LookupResult> Expected;
  const std::vector<Symbol> &Names = H.allMemberNames();
  for (uint32_t C = 0; C != H.numClasses(); ++C) {
    std::string Class(H.className(ClassId(C)));
    for (Symbol M : Names) {
      std::string Member(H.spelling(M));
      LookupResult Ref = Engine.lookup(ClassId(C), M);
      std::string Where = "seed " + std::to_string(Seed) + ": " + Class +
                          "::" + Member;

      // String path against the reference.
      QueryAnswer ByString = Svc.queryOn(*Snap, Class, Member);
      ASSERT_TRUE(ByString.S.isOk()) << Where;
      EXPECT_EQ(ByString.Rung, AnswerRung::Tabulated) << Where;
      ASSERT_EQ(renderLookupForComparison(H, ByString.Result),
                renderLookupForComparison(H, Ref))
          << Where;

      // Resolved-key path: identical rendering, zero string work.
      QueryKey Key = Svc.resolve(Class, Member);
      QueryAnswer ByKey = Svc.queryOn(*Snap, Key);
      EXPECT_EQ(renderLookupForComparison(H, ByKey.Result),
                renderLookupForComparison(H, ByString.Result))
          << Where;

      // Probe: the compressed classification.
      ProbeAnswer P = Svc.probeOn(*Snap, Key);
      EXPECT_EQ(P.Rung, AnswerRung::Tabulated) << Where;
      expectProbeMatches(H, P, Ref, Where);

      Keys.push_back(std::move(Key));
      Expected.push_back(std::move(Ref));
    }
  }

  // Unknown spellings answer like the string path: NotFound for a ghost
  // member, UnknownClass for a ghost context - through every entry
  // point, with nothing resolving them away.
  QueryKey GhostMember = Svc.resolve(std::string(H.className(ClassId(0))),
                                     "fastlane_ghost_member");
  EXPECT_FALSE(GhostMember.Member.isValid());
  EXPECT_EQ(Svc.queryOn(*Snap, GhostMember).Result.Status,
            LookupStatus::NotFound);
  EXPECT_EQ(Svc.probeOn(*Snap, GhostMember).Status, LookupStatus::NotFound);
  QueryKey GhostClass = Svc.resolve("fastlane_ghost_class",
                                    std::string(H.spelling(Names[0])));
  EXPECT_FALSE(GhostClass.Context.isValid());
  EXPECT_EQ(Svc.queryOn(*Snap, GhostClass).S.code(), ErrorCode::UnknownClass);
  EXPECT_TRUE(Svc.probeOn(*Snap, GhostClass).UnknownContext);
  Keys.push_back(GhostMember);
  Expected.push_back(LookupResult::notFound());

  // The batch path: one queryMany over the whole campaign's keys must
  // reproduce every individual answer (the prefetch window and the
  // shared snapshot pin are invisible to semantics).
  std::vector<QueryAnswer> Answers(Keys.size());
  Svc.queryManyOn(*Snap, std::span<QueryKey>(Keys),
                  std::span<QueryAnswer>(Answers));
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_EQ(renderLookupForComparison(H, Answers[I].Result),
              renderLookupForComparison(H, Expected[I]))
        << "seed " << Seed << ": batch answer " << I << " ("
        << Keys[I].ClassName << "::" << Keys[I].MemberName << ")";
}

} // namespace

TEST(QueryFastLaneTest, FiveHundredHierarchyDifferentialCampaign) {
  // 500 seeded random DAGs through the full fast lane. Parameters keep
  // each hierarchy small (the campaign's power is breadth of shapes,
  // not size) while exercising virtual bases, non-public edges, static
  // members, and using-declarations - everything the compact entry
  // encodes.
  RandomHierarchyParams Params;
  Params.NumClasses = 12;
  Params.MemberPool = 5;
  Params.DeclareChance = 0.3;
  Params.VirtualEdgeChance = 0.3;
  Params.RestrictedEdgeChance = 0.25;
  Params.StaticChance = 0.2;
  Params.UsingChance = 0.1;
  for (uint64_t Seed = 0; Seed != 500; ++Seed) {
    Workload W = makeRandomHierarchy(Params, 0xfa57 + Seed);
    LookupService Svc(std::move(W.H));
    runDifferential(Svc, Seed);
    if (HasFatalFailure())
      return; // one broken seed is enough diagnosis
  }
}

TEST(QueryFastLaneTest, PostRewarmSharedShortColumnsAnswerCorrectly) {
  // After an incremental rewarm, untouched columns are shared from the
  // previous epoch at the *old* class count. A class added by the
  // commit has rows only in the re-tabulated columns; in the shared
  // short ones its row is beyond the span - and that is semantically
  // right, because a name outside the new class's impact set cannot be
  // inherited by it. The proof is differential: every pair, including
  // every (new class, old name) pair, against a fresh engine on the new
  // hierarchy.
  Workload W = makeModularForest(6, 2, 3, 4, 2);
  LookupService Svc(std::move(W.H));

  Transaction Txn = Svc.beginTxn();
  Txn.addClass("FastLaneLeaf")
      .addBase("FastLaneLeaf", "T0")
      .addBase("FastLaneLeaf", "T1", InheritanceKind::Virtual)
      .addMember("T0", "t0_fresh");
  ASSERT_TRUE(Svc.commit(Txn).isOk());

  ServiceStats Stats = Svc.stats();
  ASSERT_GT(Stats.IncrementalRewarms, 0u) << "fixture must rewarm, not rebuild";
  ASSERT_GT(Stats.ColumnsShared, 0u);

  std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
  const Hierarchy &H = *Snap->H;
  DominanceLookupEngine Engine(H, DominanceLookupEngine::Mode::LazyRecursive);
  ClassId Leaf = H.findClass("FastLaneLeaf");
  ASSERT_TRUE(Leaf.isValid());

  uint64_t LeafFound = 0, LeafNotFound = 0;
  for (uint32_t C = 0; C != H.numClasses(); ++C)
    for (Symbol M : H.allMemberNames()) {
      LookupResult Ref = Engine.lookup(ClassId(C), M);
      QueryKey Key = Svc.resolve(std::string(H.className(ClassId(C))),
                                 std::string(H.spelling(M)));
      std::string Where = Key.ClassName + "::" + Key.MemberName;
      QueryAnswer A = Svc.queryOn(*Snap, Key);
      EXPECT_EQ(A.Rung, AnswerRung::Tabulated) << Where;
      ASSERT_EQ(renderLookupForComparison(H, A.Result),
                renderLookupForComparison(H, Ref))
          << Where;
      expectProbeMatches(H, Svc.probeOn(*Snap, Key), Ref, Where);
      if (ClassId(C) == Leaf)
        ++(Ref.Status == LookupStatus::NotFound ? LeafNotFound : LeafFound);
    }
  // The new class must have hit both regimes: inherited names answered
  // from re-tabulated full-span columns, out-of-closure names answered
  // NotFound from shared short columns' beyond-span path.
  EXPECT_GT(LeafFound, 0u);
  EXPECT_GT(LeafNotFound, 0u);
}

TEST(QueryFastLaneTest, StaleKeysReresolveTransparentlyAcrossCommits) {
  Workload W = makeModularForest(4, 2, 2, 3, 1);
  LookupService Svc(std::move(W.H));

  QueryKey Key = Svc.resolve("T0_0", "t0_m0");
  ASSERT_TRUE(Key.Context.isValid());
  EXPECT_EQ(Key.Epoch, 1u);
  QueryAnswer Before = Svc.query(Key);
  ASSERT_TRUE(Before.S.isOk());
  ASSERT_EQ(Before.Result.Status, LookupStatus::Unambiguous);

  // Three commits move the epoch; the key is only re-resolved when next
  // used, and exactly once per epoch change it observes.
  for (int I = 0; I != 3; ++I) {
    Transaction Txn = Svc.beginTxn();
    Txn.addMember("T1", "fresh" + std::to_string(I));
    ASSERT_TRUE(Svc.commit(Txn).isOk());
  }
  uint64_t ReresolvesBefore = Svc.stats().StaleKeyReresolves;
  QueryAnswer After = Svc.query(Key);
  EXPECT_EQ(Key.Epoch, Svc.currentEpoch()) << "key restamped in place";
  EXPECT_EQ(Svc.stats().StaleKeyReresolves, ReresolvesBefore + 1);
  EXPECT_EQ(renderLookupForComparison(*Svc.snapshot()->H, After.Result),
            renderLookupForComparison(*Svc.snapshot()->H, Before.Result));

  // A key whose name did not exist at resolve() time picks the name up
  // on re-resolution after the epoch that introduces it.
  QueryKey Future = Svc.resolve("T1", "late_arrival");
  EXPECT_FALSE(Future.Member.isValid());
  EXPECT_EQ(Svc.query(Future).Result.Status, LookupStatus::NotFound);
  Transaction Txn = Svc.beginTxn();
  Txn.addMember("T1", "late_arrival");
  ASSERT_TRUE(Svc.commit(Txn).isOk());
  QueryAnswer Found = Svc.query(Future);
  EXPECT_TRUE(Future.Member.isValid());
  EXPECT_EQ(Found.Result.Status, LookupStatus::Unambiguous);

  // Probes re-resolve stale keys the same way.
  Transaction Probe = Svc.beginTxn();
  Probe.addMember("T2", "probe_fresh");
  ASSERT_TRUE(Svc.commit(Probe).isOk());
  ProbeAnswer P = Svc.probe(Key);
  EXPECT_EQ(Key.Epoch, Svc.currentEpoch());
  EXPECT_EQ(P.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(P.Epoch, Svc.currentEpoch());
}

TEST(QueryFastLaneTest, ForgedContextIdsDegradeToNotFoundNotUB) {
  // A context id that is valid-looking but beyond the epoch's class
  // count - a stale id from a removed-and-compacted epoch, or a forged
  // one - must answer UnknownClass / NotFound through every entry point
  // and bump the StaleContextRejects audit stat, never touch memory out
  // of range. The key's epoch matches the snapshot, so transparent
  // re-resolution cannot paper over the bad id.
  Workload W = makeModularForest(3, 2, 2, 3, 1);
  LookupService Svc(std::move(W.H));
  std::shared_ptr<const Snapshot> Snap = Svc.snapshot();

  QueryKey Forged;
  Forged.ClassName = "T0_0";
  Forged.MemberName = "t0_m0";
  Forged.Epoch = Snap->Epoch;
  Forged.Context = ClassId(Snap->H->numClasses() + 17);
  Forged.Member = Snap->H->findName("t0_m0");
  ASSERT_TRUE(Forged.Member.isValid());

  uint64_t RejectsBefore = Svc.stats().StaleContextRejects;
  QueryKey KeyCopy = Forged;
  QueryAnswer A = Svc.queryOn(*Snap, KeyCopy);
  EXPECT_EQ(A.S.code(), ErrorCode::UnknownClass);

  KeyCopy = Forged;
  ProbeAnswer P = Svc.probeOn(*Snap, KeyCopy);
  EXPECT_TRUE(P.UnknownContext);
  EXPECT_EQ(P.Status, LookupStatus::NotFound);

  KeyCopy = Forged;
  QueryAnswer BatchAnswer;
  Svc.queryManyOn(*Snap, std::span<QueryKey>(&KeyCopy, 1),
                  std::span<QueryAnswer>(&BatchAnswer, 1));
  EXPECT_EQ(BatchAnswer.S.code(), ErrorCode::UnknownClass);

  EXPECT_EQ(Svc.stats().StaleContextRejects, RejectsBefore + 3);

  // The release-safe checked find itself: the same forged id straight
  // against the table degrades to NotFound and reports staleness,
  // where the unchecked find would index out of range.
  bool Stale = false;
  LookupResult R = Snap->Table->findChecked(*Snap->H, Forged.Context,
                                            Forged.Member, &Stale);
  EXPECT_TRUE(Stale);
  EXPECT_EQ(R.Status, LookupStatus::NotFound);

  // An invalid (never-resolved) context is *unknown*, not stale: the
  // audit stat must separate "no such name" from "id out of range".
  QueryKey Unknown = Svc.resolve("no_such_class", "t0_m0");
  EXPECT_FALSE(Unknown.Context.isValid());
  uint64_t RejectsMid = Svc.stats().StaleContextRejects;
  EXPECT_EQ(Svc.queryOn(*Snap, Unknown).S.code(), ErrorCode::UnknownClass);
  EXPECT_EQ(Svc.stats().StaleContextRejects, RejectsMid);
}

TEST(QueryFastLaneTest, FastLaneStatsCountExactlyOncePerAnswer) {
  Workload W = makeModularForest(3, 2, 2, 3, 1);
  LookupService Svc(std::move(W.H));
  std::shared_ptr<const Snapshot> Snap = Svc.snapshot();

  QueryKey Key = Svc.resolve("T0_0", "t0_m0");
  ServiceStats S0 = Svc.stats();
  EXPECT_EQ(S0.Resolves, 1u);

  (void)Svc.queryOn(*Snap, "T0_0", "t0_m0");
  (void)Svc.queryOn(*Snap, Key);
  (void)Svc.probeOn(*Snap, Key);
  std::vector<QueryKey> Keys(4, Key);
  std::vector<QueryAnswer> Answers(4);
  Svc.queryManyOn(*Snap, std::span<QueryKey>(Keys),
                  std::span<QueryAnswer>(Answers));

  ServiceStats S1 = Svc.stats();
  // Queries: 1 string + 1 key + 4 batch keys; probes counted apart.
  EXPECT_EQ(S1.Queries - S0.Queries, 6u);
  EXPECT_EQ(S1.Probes - S0.Probes, 1u);
  EXPECT_EQ(S1.BatchQueries - S0.BatchQueries, 1u);
  // Every answer - queries and probes alike - lands on exactly one rung.
  uint64_t Rungs0 = S0.RungAnswers[0] + S0.RungAnswers[1] + S0.RungAnswers[2];
  uint64_t Rungs1 = S1.RungAnswers[0] + S1.RungAnswers[1] + S1.RungAnswers[2];
  EXPECT_EQ(Rungs1 - Rungs0, 7u);
}
