//===- WriteAheadLogTest.cpp -------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable-transaction contract, from both directions:
///
///  * **Format**: logs salvage exactly; every truncation prefix is a
///    silent torn tail (the artifact of an interrupted append, never an
///    error), and every single-bit flip either stops the scan with a
///    recoverable WAL Status or leaves a salvage that is byte-identical
///    to a prefix of what was written - corruption can shorten history
///    but never rewrite it.
///  * **Service**: commits are append-then-publish, so a service that
///    never saved a snapshot still recovers every committed transaction
///    from the log; saveSnapshot compacts the log; a crash between the
///    two leaves covered records that recovery skips, not replays.
///  * **Failure**: injected append/fsync failures roll the commit back
///    with no duplicate-epoch residue; a corrupt log replays its clean
///    prefix, flags data loss, and is quarantined; a log from a foreign
///    hierarchy is refused by fingerprint.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/LookupService.h"
#include "memlook/service/WriteAheadLog.h"
#include "memlook/support/CrashPoint.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

using namespace memlook;
using namespace memlook::service;

namespace {

std::filesystem::path freshTempDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// Compares every (class, member) answer of \p A against \p B. The join
/// key is the member spelling: Symbol ids are per-interner.
void expectSameAnswers(const Snapshot &A, const Snapshot &B,
                       const char *What) {
  const Hierarchy &HA = *A.H;
  const Hierarchy &HB = *B.H;
  ASSERT_EQ(HA.numClasses(), HB.numClasses()) << What;
  ASSERT_TRUE(A.warm()) << What;
  ASSERT_TRUE(B.warm()) << What;
  for (uint32_t Idx = 0; Idx != HA.numClasses(); ++Idx)
    for (Symbol M : HA.allMemberNames()) {
      Symbol MB = HB.findName(HA.spelling(M));
      ASSERT_TRUE(MB.isValid())
          << What << ": member spelling '" << HA.spelling(M) << "' lost";
      EXPECT_EQ(
          renderLookupForComparison(HA, A.Table->find(HA, ClassId(Idx), M)),
          renderLookupForComparison(HB, B.Table->find(HB, ClassId(Idx), MB)))
          << What << ": " << HA.className(ClassId(Idx))
          << "::" << HA.spelling(M);
    }
}

/// A three-record log over a small chain, with the per-record encodings
/// kept for prefix comparison.
struct EncodedLog {
  std::vector<std::string> Records; // [0] is the base record
  std::string Bytes;
  uint64_t BaseEpoch = 0;
  uint32_t Fingerprint = 0;
};

EncodedLog makeSampleLog() {
  EncodedLog Log;
  Workload W = makeModularForest(2, 2, 2, 3, 2);
  Log.BaseEpoch = 1;
  Log.Fingerprint = hierarchyFingerprint(W.H);
  Log.Records.push_back(encodeWalBaseRecord(Log.BaseEpoch, Log.Fingerprint));

  Hierarchy Cur = std::move(W.H);
  for (uint64_t K = 0; K != 3; ++K) {
    std::vector<Transaction::Op> Ops;
    std::string Fresh = "Logged" + std::to_string(K);
    Ops.push_back(Transaction::Op{Transaction::OpKind::AddClass, Fresh, {},
                                  {}, InheritanceKind::NonVirtual,
                                  AccessSpec::Public, false, false});
    Ops.push_back(Transaction::Op{
        Transaction::OpKind::AddBase, Fresh,
        std::string(Cur.className(ClassId(0))), {},
        K % 2 ? InheritanceKind::Virtual : InheritanceKind::NonVirtual,
        AccessSpec::Public, false, false});
    Ops.push_back(Transaction::Op{Transaction::OpKind::AddMember, Fresh, {},
                                  "logged_m", InheritanceKind::NonVirtual,
                                  AccessSpec::Public, K % 2 == 0, false});
    Expected<Hierarchy> Next =
        applyEditScript(Cur, Ops, ResourceBudget::untrustedInput());
    EXPECT_TRUE(Next.hasValue());
    Cur = std::move(*Next);
    Log.Records.push_back(encodeWalTxnRecord(Log.BaseEpoch + K + 1, Ops));
  }
  for (const std::string &R : Log.Records)
    Log.Bytes += R;
  return Log;
}

/// True when the salvaged records are byte-identical to a prefix of the
/// originally appended ones.
bool isPrefixOfOriginal(const WalSalvage &S, const EncodedLog &Log) {
  if (S.Records.size() + 1 > Log.Records.size())
    return false;
  for (size_t I = 0; I != S.Records.size(); ++I)
    if (encodeWalTxnRecord(S.Records[I].Epoch, S.Records[I].Ops) !=
        Log.Records[I + 1])
      return false;
  return true;
}

class WriteAheadLogTest : public ::testing::Test {
protected:
  void TearDown() override { disarmCrashPoints(); }
};

} // namespace

TEST_F(WriteAheadLogTest, FingerprintIsStructural) {
  Workload A = makeModularForest(2, 2, 2, 3, 2);
  Workload B = makeModularForest(2, 2, 2, 3, 2);
  EXPECT_EQ(hierarchyFingerprint(A.H), hierarchyFingerprint(B.H))
      << "identical construction must fingerprint identically";

  std::vector<Transaction::Op> Ops;
  Ops.push_back(Transaction::Op{Transaction::OpKind::AddMember,
                                std::string(B.H.className(ClassId(0))), {},
                                "fp_extra", InheritanceKind::NonVirtual,
                                AccessSpec::Public, false, false});
  Expected<Hierarchy> Edited =
      applyEditScript(B.H, Ops, ResourceBudget::untrustedInput());
  ASSERT_TRUE(Edited.hasValue());
  EXPECT_NE(hierarchyFingerprint(A.H), hierarchyFingerprint(*Edited))
      << "one added member must change the fingerprint";
}

TEST_F(WriteAheadLogTest, PristineLogSalvagesCompletely) {
  EncodedLog Log = makeSampleLog();
  WalSalvage S = salvageWalBytes(Log.Bytes);
  EXPECT_TRUE(S.Error.isOk()) << S.Error.toString();
  EXPECT_TRUE(S.HasBase);
  EXPECT_EQ(S.BaseEpoch, Log.BaseEpoch);
  EXPECT_EQ(S.BaseFingerprint, Log.Fingerprint);
  ASSERT_EQ(S.Records.size(), 3u);
  EXPECT_EQ(S.Records[0].Epoch, Log.BaseEpoch + 1);
  EXPECT_EQ(S.Records[2].Epoch, Log.BaseEpoch + 3);
  EXPECT_EQ(S.CleanBytes, Log.Bytes.size());
  EXPECT_EQ(S.TornBytesDropped, 0u);
  EXPECT_TRUE(isPrefixOfOriginal(S, Log));
}

TEST_F(WriteAheadLogTest, EveryTruncationPrefixIsASilentTornTail) {
  // An append is a single write(), so any prefix of the file is a state
  // a crash can leave. None of them may be an error; each salvages
  // exactly the records that are complete within it.
  EncodedLog Log = makeSampleLog();

  std::vector<size_t> Boundaries{0};
  for (const std::string &R : Log.Records)
    Boundaries.push_back(Boundaries.back() + R.size());

  for (size_t Len = 0; Len != Log.Bytes.size(); ++Len) {
    WalSalvage S = salvageWalBytes(std::string_view(Log.Bytes).substr(0, Len));
    ASSERT_TRUE(S.Error.isOk())
        << "prefix of " << Len << " bytes: " << S.Error.toString();

    size_t CompleteRecords = 0;
    while (CompleteRecords + 1 < Boundaries.size() &&
           Boundaries[CompleteRecords + 1] <= Len)
      ++CompleteRecords;
    EXPECT_EQ(S.HasBase, CompleteRecords >= 1) << "prefix " << Len;
    EXPECT_EQ(S.Records.size(),
              CompleteRecords == 0 ? 0 : CompleteRecords - 1)
        << "prefix " << Len;
    EXPECT_EQ(S.CleanBytes, Boundaries[CompleteRecords]) << "prefix " << Len;
    EXPECT_EQ(S.TornBytesDropped, Len - Boundaries[CompleteRecords])
        << "prefix " << Len;
    EXPECT_TRUE(isPrefixOfOriginal(S, Log)) << "prefix " << Len;
  }
}

TEST_F(WriteAheadLogTest, NoSingleBitFlipEverForgesARecord) {
  // A flip may shorten what salvages (torn tail, or a recoverable stop
  // with the clean prefix kept) but must never change a salvaged
  // record's bytes or invent one.
  EncodedLog Log = makeSampleLog();
  for (size_t At = 0; At != Log.Bytes.size(); ++At)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mutated = Log.Bytes;
      Mutated[At] = static_cast<char>(Mutated[At] ^ (1 << Bit));
      WalSalvage S = salvageWalBytes(Mutated);
      if (!S.Error.isOk())
        ASSERT_TRUE(S.Error.code() == ErrorCode::WalCorrupt ||
                    S.Error.code() == ErrorCode::WalEpochSkew)
            << "byte " << At << " bit " << Bit << ": " << S.Error.toString();
      if (S.HasBase) {
        EXPECT_EQ(S.BaseEpoch, Log.BaseEpoch) << "byte " << At;
        EXPECT_EQ(S.BaseFingerprint, Log.Fingerprint) << "byte " << At;
      }
      ASSERT_TRUE(isPrefixOfOriginal(S, Log))
          << "flip of byte " << At << " bit " << Bit
          << " forged a salvaged record";
    }
}

TEST_F(WriteAheadLogTest, DurableCommitsSurviveARestartWithoutASnapshot) {
  std::filesystem::path Dir = freshTempDir("wal_no_snapshot");
  std::string SnapPath = (Dir / "state.snap").string();
  std::string WalPath = (Dir / "state.wal").string();

  ServiceOptions Opts;
  Opts.WalPath = WalPath;
  Workload Source = makeModularForest(2, 2, 2, 3, 2);
  Workload Fallback = makeModularForest(2, 2, 2, 3, 2);

  std::shared_ptr<const Snapshot> Final;
  {
    LookupService Svc(std::move(Source.H), Opts);
    for (int K = 0; K != 3; ++K) {
      Transaction Txn = Svc.beginTxn();
      std::string Fresh = "Crashy" + std::to_string(K);
      Txn.addClass(Fresh)
          .addBase(Fresh, std::string(Svc.snapshot()->H->className(ClassId(0))))
          .addMember(Fresh, "m_new");
      ASSERT_TRUE(Svc.commit(Txn).isOk());
    }
    EXPECT_EQ(Svc.stats().WalAppends, 3u);
    EXPECT_GT(Svc.stats().WalBytesAppended, 0u);
    Final = Svc.snapshot();
    // The service dies here having never called saveSnapshot: the log
    // is the only durable copy of those three commits.
  }

  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored =
      LookupService::restore(SnapPath, std::move(Fallback.H), Opts, &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.Rung, RestoreRung::RebuildFromSource);
  EXPECT_TRUE(Report.WalAttempted);
  EXPECT_TRUE(Report.WalStatus.isOk()) << Report.WalStatus.toString();
  EXPECT_EQ(Report.WalRecordsReplayed, 3u);
  EXPECT_EQ(Report.WalRecordsSkipped, 0u);
  EXPECT_FALSE(Report.DataLoss);
  EXPECT_FALSE(Report.WalQuarantined);
  EXPECT_EQ(Report.Epoch, 4u);
  EXPECT_EQ((*Restored)->currentEpoch(), 4u);
  EXPECT_EQ((*Restored)->stats().WalReplayedRecords, 3u);
  expectSameAnswers(*(*Restored)->snapshot(), *Final, "wal-only recovery");
}

TEST_F(WriteAheadLogTest, SnapshotPlusWalServesTheNewestEpoch) {
  std::filesystem::path Dir = freshTempDir("wal_ladder");
  std::string SnapPath = (Dir / "state.snap").string();
  std::string WalPath = (Dir / "state.wal").string();

  ServiceOptions Opts;
  Opts.WalPath = WalPath;
  Workload Source = makeModularForest(2, 2, 2, 3, 2);
  Workload Fallback = makeModularForest(2, 2, 2, 3, 2);

  std::shared_ptr<const Snapshot> Final;
  {
    LookupService Svc(std::move(Source.H), Opts);
    auto commitOne = [&](const std::string &Fresh) {
      Transaction Txn = Svc.beginTxn();
      Txn.addClass(Fresh).addMember(Fresh, "m_new");
      ASSERT_TRUE(Svc.commit(Txn).isOk());
    };
    commitOne("PreSnapA");
    commitOne("PreSnapB");
    ASSERT_TRUE(Svc.saveSnapshot(SnapPath).isOk());
    EXPECT_EQ(Svc.stats().WalResets, 1u);

    // The compacted log is a single base record at the snapshot epoch.
    WalSalvage Compacted = WriteAheadLog::replayFile(WalPath);
    EXPECT_TRUE(Compacted.Error.isOk()) << Compacted.Error.toString();
    EXPECT_TRUE(Compacted.HasBase);
    EXPECT_EQ(Compacted.BaseEpoch, 3u);
    EXPECT_TRUE(Compacted.Records.empty());

    commitOne("PostSnapA");
    commitOne("PostSnapB");
    Final = Svc.snapshot();
  }

  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored =
      LookupService::restore(SnapPath, std::move(Fallback.H), Opts, &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.Rung, RestoreRung::SnapshotAndWal);
  EXPECT_TRUE(Report.SnapshotStatus.isOk());
  EXPECT_TRUE(Report.WalStatus.isOk()) << Report.WalStatus.toString();
  EXPECT_EQ(Report.WalRecordsReplayed, 2u);
  EXPECT_FALSE(Report.DataLoss);
  EXPECT_EQ(Report.Epoch, 5u);
  expectSameAnswers(*(*Restored)->snapshot(), *Final, "snapshot+wal");

  // The report's diagnostic names the rung it served from.
  EXPECT_NE(Report.toString().find("snapshot+wal"), std::string::npos)
      << Report.toString();

  // The restored service keeps committing durably on the same log.
  Transaction Txn = (*Restored)->beginTxn();
  Txn.addClass("AfterRestore").addMember("AfterRestore", "m_new");
  ASSERT_TRUE((*Restored)->commit(Txn).isOk());
  WalSalvage After = WriteAheadLog::replayFile(WalPath);
  EXPECT_TRUE(After.Error.isOk()) << After.Error.toString();
  ASSERT_FALSE(After.Records.empty());
  EXPECT_EQ(After.Records.back().Epoch, 6u);
}

TEST_F(WriteAheadLogTest, CrashBetweenSnapshotAndCompactionSkipsCoveredRecords) {
  std::filesystem::path Dir = freshTempDir("wal_skip");
  std::string SnapPath = (Dir / "state.snap").string();
  std::string WalPath = (Dir / "state.wal").string();

  ServiceOptions Opts;
  Opts.WalPath = WalPath;
  Workload Source = makeModularForest(2, 2, 2, 3, 2);
  Workload Fallback = makeModularForest(2, 2, 2, 3, 2);

  std::shared_ptr<const Snapshot> Final;
  {
    LookupService Svc(std::move(Source.H), Opts);
    for (int K = 0; K != 3; ++K) {
      Transaction Txn = Svc.beginTxn();
      std::string Fresh = "Covered" + std::to_string(K);
      Txn.addClass(Fresh).addMember(Fresh, "m_new");
      ASSERT_TRUE(Svc.commit(Txn).isOk());
    }
    // Simulate a crash after the snapshot rename but before the log
    // compaction: save (which compacts), then put the full pre-save log
    // back. Disk now holds snapshot@4 plus a log whose records 2..4 the
    // snapshot already covers.
    std::string FullLog = slurp(WalPath);
    ASSERT_TRUE(Svc.saveSnapshot(SnapPath).isOk());
    Final = Svc.snapshot();
    spit(WalPath, FullLog);
  }

  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored =
      LookupService::restore(SnapPath, std::move(Fallback.H), Opts, &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.Rung, RestoreRung::Snapshot)
      << "covered records are skipped, not replayed";
  EXPECT_EQ(Report.WalRecordsSkipped, 3u);
  EXPECT_EQ(Report.WalRecordsReplayed, 0u);
  EXPECT_FALSE(Report.DataLoss);
  EXPECT_EQ(Report.Epoch, 4u);
  expectSameAnswers(*(*Restored)->snapshot(), *Final, "covered-skip");

  // The stale-but-connected log keeps extending: a new commit appends
  // epoch 5 after the covered records, and a second restore replays
  // exactly that one.
  Transaction Txn = (*Restored)->beginTxn();
  Txn.addClass("Uncovered").addMember("Uncovered", "m_new");
  ASSERT_TRUE((*Restored)->commit(Txn).isOk());
  Restored->reset();

  Workload Fallback2 = makeModularForest(2, 2, 2, 3, 2);
  RestoreReport Report2;
  Expected<std::unique_ptr<LookupService>> Again =
      LookupService::restore(SnapPath, std::move(Fallback2.H), Opts, &Report2);
  ASSERT_TRUE(Again.hasValue()) << Again.status().toString();
  EXPECT_EQ(Report2.WalRecordsSkipped, 3u);
  EXPECT_EQ(Report2.WalRecordsReplayed, 1u);
  EXPECT_EQ(Report2.Epoch, 5u);
  EXPECT_FALSE(Report2.DataLoss);
}

TEST_F(WriteAheadLogTest, InjectedAppendFailureRollsTheCommitBack) {
  std::filesystem::path Dir = freshTempDir("wal_append_fail");
  ServiceOptions Opts;
  Opts.WalPath = (Dir / "state.wal").string();
  Workload Source = makeModularForest(2, 2, 2, 3, 2);
  LookupService Svc(std::move(Source.H), Opts);

  std::shared_ptr<const Snapshot> Before = Svc.snapshot();
  armCrashPoint("wal-append", 1, CrashMode::FailOp);
  Transaction Txn = Svc.beginTxn();
  Txn.addClass("NeverDurable").addMember("NeverDurable", "m_new");
  Status S = Svc.commit(Txn);
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::WalIoError);
  EXPECT_EQ(Svc.snapshot().get(), Before.get())
      << "failed append must publish nothing";
  EXPECT_EQ(Svc.stats().CommitRejects, 1u);
  EXPECT_EQ(Svc.stats().WalAppends, 0u);
  disarmCrashPoints();

  // The same edit retried commits fine and the log stays contiguous.
  Transaction Retry = Svc.beginTxn();
  Retry.addClass("NeverDurable").addMember("NeverDurable", "m_new");
  ASSERT_TRUE(Svc.commit(Retry).isOk());
  WalSalvage After = WriteAheadLog::replayFile(Opts.WalPath);
  EXPECT_TRUE(After.Error.isOk()) << After.Error.toString();
  ASSERT_EQ(After.Records.size(), 1u);
  EXPECT_EQ(After.Records[0].Epoch, 2u);
}

TEST_F(WriteAheadLogTest, InjectedSyncFailureLeavesNoDuplicateEpochResidue) {
  // The fsync failure fires *after* the record's bytes hit the file, so
  // this is the path where append must truncate its own write back out
  // - otherwise the retried commit would append epoch 2 twice and the
  // next salvage would stop with an epoch skew.
  std::filesystem::path Dir = freshTempDir("wal_fsync_fail");
  ServiceOptions Opts;
  Opts.WalPath = (Dir / "state.wal").string();
  Workload Source = makeModularForest(2, 2, 2, 3, 2);
  LookupService Svc(std::move(Source.H), Opts);

  armCrashPoint("wal-append-fsync", 1, CrashMode::FailOp);
  Transaction Txn = Svc.beginTxn();
  Txn.addClass("SyncLost").addMember("SyncLost", "m_new");
  Status S = Svc.commit(Txn);
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::WalIoError);
  disarmCrashPoints();

  Transaction Retry = Svc.beginTxn();
  Retry.addClass("SyncLost").addMember("SyncLost", "m_new");
  ASSERT_TRUE(Svc.commit(Retry).isOk());

  WalSalvage After = WriteAheadLog::replayFile(Opts.WalPath);
  EXPECT_TRUE(After.Error.isOk())
      << "duplicate-epoch residue: " << After.Error.toString();
  ASSERT_EQ(After.Records.size(), 1u);
  EXPECT_EQ(After.Records[0].Epoch, 2u);
}

TEST_F(WriteAheadLogTest, CorruptLogReplaysItsCleanPrefixAndIsQuarantined) {
  std::filesystem::path Dir = freshTempDir("wal_corrupt");
  std::string SnapPath = (Dir / "state.snap").string();
  std::string WalPath = (Dir / "state.wal").string();

  ServiceOptions Opts;
  Opts.WalPath = WalPath;
  Workload Source = makeModularForest(2, 2, 2, 3, 2);
  Workload Fallback = makeModularForest(2, 2, 2, 3, 2);

  std::shared_ptr<const Snapshot> AfterFirst;
  {
    LookupService Svc(std::move(Source.H), Opts);
    for (int K = 0; K != 3; ++K) {
      Transaction Txn = Svc.beginTxn();
      std::string Fresh = "Rot" + std::to_string(K);
      Txn.addClass(Fresh).addMember(Fresh, "m_new");
      ASSERT_TRUE(Svc.commit(Txn).isOk());
      if (K == 0)
        AfterFirst = Svc.snapshot();
    }
  }

  // Rot the *second* transaction record's payload: record 1 salvages,
  // records 2 and 3 are lost.
  std::string Bytes = slurp(WalPath);
  WalSalvage Clean = salvageWalBytes(Bytes);
  ASSERT_EQ(Clean.Records.size(), 3u);
  size_t Record2HeaderEnd =
      Clean.CleanBytes -
      (encodeWalTxnRecord(Clean.Records[2].Epoch, Clean.Records[2].Ops).size() +
       encodeWalTxnRecord(Clean.Records[1].Epoch, Clean.Records[1].Ops)
           .size()) +
      28;
  Bytes[Record2HeaderEnd + 2] =
      static_cast<char>(Bytes[Record2HeaderEnd + 2] ^ 0x40);
  spit(WalPath, Bytes);

  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored =
      LookupService::restore(SnapPath, std::move(Fallback.H), Opts, &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.WalRecordsReplayed, 1u);
  EXPECT_TRUE(Report.DataLoss);
  EXPECT_EQ(Report.WalStatus.code(), ErrorCode::WalCorrupt)
      << Report.WalStatus.toString();
  EXPECT_TRUE(Report.WalQuarantined);
  EXPECT_EQ(Report.WalQuarantinePath, WalPath + ".quarantined");
  EXPECT_TRUE(std::filesystem::exists(Report.WalQuarantinePath));
  EXPECT_EQ(Report.Epoch, 2u);
  EXPECT_EQ((*Restored)->stats().WalQuarantines, 1u);
  expectSameAnswers(*(*Restored)->snapshot(), *AfterFirst, "clean prefix");

  // The replayed prefix was immediately re-persisted (the quarantined
  // log held its only durable copy), and a fresh log now starts at the
  // recovered epoch.
  EXPECT_TRUE(std::filesystem::exists(SnapPath))
      << "replayed prefix not re-persisted";
  WalSalvage FreshLog = WriteAheadLog::replayFile(WalPath);
  EXPECT_TRUE(FreshLog.Error.isOk()) << FreshLog.Error.toString();
  EXPECT_TRUE(FreshLog.HasBase);
  EXPECT_EQ(FreshLog.BaseEpoch, 2u);
  EXPECT_TRUE(FreshLog.Records.empty());
}

TEST_F(WriteAheadLogTest, ForeignLogIsRefusedByFingerprint) {
  std::filesystem::path Dir = freshTempDir("wal_foreign");
  std::string SnapPath = (Dir / "state.snap").string();
  std::string WalPath = (Dir / "state.wal").string();

  // A log written by a service over a *different* hierarchy.
  ServiceOptions Opts;
  Opts.WalPath = WalPath;
  {
    Workload Other = makeModularForest(3, 2, 2, 3, 2);
    LookupService Svc(std::move(Other.H), Opts);
    Transaction Txn = Svc.beginTxn();
    Txn.addClass("Foreign").addMember("Foreign", "m_new");
    ASSERT_TRUE(Svc.commit(Txn).isOk());
  }

  Workload Fallback = makeModularForest(2, 2, 2, 3, 2);
  RestoreReport Report;
  Expected<std::unique_ptr<LookupService>> Restored =
      LookupService::restore(SnapPath, std::move(Fallback.H), Opts, &Report);
  ASSERT_TRUE(Restored.hasValue()) << Restored.status().toString();
  EXPECT_EQ(Report.WalStatus.code(), ErrorCode::WalCorrupt)
      << Report.WalStatus.toString();
  EXPECT_TRUE(Report.DataLoss);
  EXPECT_TRUE(Report.WalQuarantined);
  EXPECT_EQ(Report.WalRecordsReplayed, 0u);
  EXPECT_EQ(Report.Epoch, 1u);

  // The refused log is preserved as evidence and a fresh one serves.
  EXPECT_TRUE(std::filesystem::exists(WalPath + ".quarantined"));
  WalSalvage FreshLog = WriteAheadLog::replayFile(WalPath);
  EXPECT_TRUE(FreshLog.HasBase);
  EXPECT_EQ(FreshLog.BaseEpoch, 1u);
}

TEST_F(WriteAheadLogTest, NonDurableServiceWritesNoLog) {
  std::filesystem::path Dir = freshTempDir("wal_off");
  Workload Source = makeModularForest(2, 2, 2, 3, 2);
  LookupService Svc(std::move(Source.H)); // default options: no WalPath
  Transaction Txn = Svc.beginTxn();
  Txn.addClass("Plain").addMember("Plain", "m_new");
  ASSERT_TRUE(Svc.commit(Txn).isOk());
  EXPECT_EQ(Svc.stats().WalAppends, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(Dir));
}
