//===- ObservabilityTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's contracts: the metric catalog covers the
/// stats surface and renders parseable text/JSON expositions, the
/// accounting invariant Queries + Probes == sum(RungAnswers) holds
/// across a 200-hierarchy query campaign, sampled latency histograms
/// fill and agree with the operation counts, the trace ring keeps (and
/// bounds) recent events, and the anomaly log rate-limits everything
/// except quarantines.
///
//===----------------------------------------------------------------------===//

#include "memlook/service/Observability.h"

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/service/LookupService.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string>
#include <vector>

using namespace memlook;
using namespace memlook::service;

namespace {

Hierarchy diamond() {
  HierarchyBuilder B;
  B.addClass("Base").withMember("shared").withMember("tag");
  B.addClass("Left").withVirtualBase("Base").withMember("left_only");
  B.addClass("Right").withVirtualBase("Base").withMember("right_only");
  B.addClass("Join").withBase("Left").withBase("Right");
  return std::move(B).build();
}

/// Every operation sampled, tiny slow-query threshold disabled.
ServiceOptions sampledOptions() {
  ServiceOptions O;
  O.Observability.SamplePeriod = 1;
  O.Observability.SlowQueryNanos = 0;
  return O;
}

uint64_t rungSum(const ServiceStats &S) {
  return S.RungAnswers[0] + S.RungAnswers[1] + S.RungAnswers[2];
}

TEST(ObservabilityTest, CatalogIsSelfConsistent) {
  std::span<const MetricDesc> Catalog = serviceMetricCatalog();
  ASSERT_GE(Catalog.size(), 38u);

  // Prometheus names unique; every entry carries a field, a help line,
  // and a getter.
  std::set<std::string> PromNames;
  std::set<std::string> StatFields;
  for (const MetricDesc &M : Catalog) {
    EXPECT_TRUE(PromNames.insert(M.PromName).second) << M.PromName;
    ASSERT_NE(M.StatField, nullptr);
    StatFields.insert(M.StatField);
    ASSERT_NE(M.Help, nullptr);
    EXPECT_NE(std::string(M.Help), "");
    ASSERT_NE(M.Get, nullptr);
  }

  // Spot-check the corners of the surface: the oldest counter, the
  // newest, a gauge, and the array-valued rung series.
  EXPECT_TRUE(StatFields.count("Commits"));
  EXPECT_TRUE(StatFields.count("AnomaliesSuppressed"));
  EXPECT_TRUE(StatFields.count("SnapshotLimboDepth"));
  EXPECT_TRUE(StatFields.count("RungAnswers"));
}

TEST(ObservabilityTest, CatalogGettersReadTheFieldsTheyName) {
  LookupService Svc(diamond(), sampledOptions());
  (void)Svc.query("Join", "left_only");
  Transaction Txn = Svc.beginTxn();
  Txn.addMember("Base", "fresh");
  ASSERT_TRUE(Svc.commit(Txn).isOk());

  ServiceStats S = Svc.stats();
  for (const MetricDesc &M : serviceMetricCatalog()) {
    std::string Field(M.StatField);
    if (Field == "Commits")
      EXPECT_EQ(M.Get(S), S.Commits);
    else if (Field == "Queries")
      EXPECT_EQ(M.Get(S), S.Queries);
    else if (Field == "LatencySamples")
      EXPECT_EQ(M.Get(S), S.LatencySamples);
  }
  // The three rung entries read distinct array elements in order.
  std::vector<uint64_t> RungValues;
  for (const MetricDesc &M : serviceMetricCatalog())
    if (std::string(M.StatField) == "RungAnswers")
      RungValues.push_back(M.Get(S));
  ASSERT_EQ(RungValues.size(), 3u);
  EXPECT_EQ(RungValues[0], S.RungAnswers[0]);
  EXPECT_EQ(RungValues[1], S.RungAnswers[1]);
  EXPECT_EQ(RungValues[2], S.RungAnswers[2]);
}

TEST(ObservabilityTest, MetricsTextExposesEveryCatalogEntry) {
  LookupService Svc(diamond(), sampledOptions());
  (void)Svc.query("Join", "shared");
  QueryKey K = Svc.resolve("Join", "tag");
  (void)Svc.probe(K);

  std::string Text = Svc.metricsText();
  for (const MetricDesc &M : serviceMetricCatalog()) {
    EXPECT_NE(Text.find(std::string(M.PromName) + " "), std::string::npos)
        << M.PromName;
    std::string Base(M.PromName);
    if (size_t Brace = Base.find('{'); Brace != std::string::npos)
      Base.resize(Brace);
    EXPECT_NE(Text.find("# HELP " + Base + " "), std::string::npos) << Base;
    EXPECT_NE(Text.find("# TYPE " + Base + " "), std::string::npos) << Base;
  }
  EXPECT_NE(Text.find("memlook_epoch 1\n"), std::string::npos);
  // Sampled operations produced latency series with the histogram
  // triplet (= bucket ladder, sum, count).
  EXPECT_NE(Text.find("memlook_query_latency_nanos_bucket{path=\"string\","),
            std::string::npos);
  EXPECT_NE(Text.find("le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(Text.find("memlook_query_latency_nanos_sum"), std::string::npos);
  EXPECT_NE(Text.find("memlook_query_latency_nanos_count"), std::string::npos);

  // HELP/TYPE coalescing: one header per metric name even with three
  // labeled rung series.
  size_t First = Text.find("# TYPE memlook_rung_answers_total");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Text.find("# TYPE memlook_rung_answers_total", First + 1),
            std::string::npos);
}

TEST(ObservabilityTest, MetricsJsonIsStructurallySound) {
  LookupService Svc(diamond(), sampledOptions());
  (void)Svc.query("Join", "shared");
  Transaction Txn = Svc.beginTxn();
  Txn.addMember("Base", "fresh");
  ASSERT_TRUE(Svc.commit(Txn).isOk());

  std::string Json = Svc.metricsJson();
  // Braces and brackets balance (no string in the output may contain
  // them: field names and labels are all identifiers).
  int Depth = 0;
  for (char C : Json) {
    if (C == '{' || C == '[')
      ++Depth;
    if (C == '}' || C == ']')
      --Depth;
    ASSERT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);

  EXPECT_NE(Json.find("\"epoch\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"stats\": {"), std::string::npos);
  EXPECT_NE(Json.find("\"RungAnswers\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"p99\": "), std::string::npos);
  EXPECT_NE(Json.find("\"trace\": {\"recorded\": "), std::string::npos);
  EXPECT_NE(Json.find("\"anomalies\": {\"logged\": "), std::string::npos);
  // Commit latency appears: the commit above was always-traced.
  EXPECT_NE(Json.find("memlook_commit_latency_nanos"), std::string::npos);
  // Every scalar catalog field is a key exactly once.
  EXPECT_NE(Json.find("\"AnomaliesSuppressed\": "), std::string::npos);
}

TEST(ObservabilityTest, AccountingInvariantAcrossCampaign) {
  // 200 seeded random hierarchies, each queried through all four entry
  // points; the ladder books exactly one rung answer per query or
  // probe, so Queries + Probes == sum(RungAnswers) at every quiescent
  // point - with sampling on (1-in-1) and off (never), since
  // observability must not perturb the accounting.
  RandomHierarchyParams Params;
  Params.NumClasses = 8;
  Params.MemberPool = 4;
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    ServiceOptions O;
    O.Observability.SamplePeriod = (Seed % 2) ? 1 : 0;
    Workload W = makeRandomHierarchy(Params, 0x0b5e + Seed);
    LookupService Svc(std::move(W.H), O);
    std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
    const Hierarchy &H = *Snap->H;

    std::vector<QueryKey> Keys;
    for (uint32_t C = 0; C != H.numClasses(); ++C)
      for (Symbol M : H.allMemberNames()) {
        std::string Class(H.className(ClassId(C)));
        std::string Member(H.spelling(M));
        (void)Svc.queryOn(*Snap, Class, Member);
        QueryKey K = Svc.resolve(Class, Member);
        (void)Svc.queryOn(*Snap, K);
        (void)Svc.probeOn(*Snap, K);
        Keys.push_back(std::move(K));
      }
    std::vector<QueryAnswer> Answers(Keys.size());
    Svc.queryManyOn(*Snap, std::span<QueryKey>(Keys),
                    std::span<QueryAnswer>(Answers));

    ServiceStats S = Svc.stats();
    ASSERT_EQ(S.Queries + S.Probes, rungSum(S)) << "seed " << Seed;
    ASSERT_EQ(S.Queries, 3 * Keys.size()) << "seed " << Seed;
    ASSERT_EQ(S.Probes, Keys.size()) << "seed " << Seed;
  }
}

TEST(ObservabilityTest, SampledLatencyHistogramsMatchOperationCounts) {
  LookupService Svc(diamond(), sampledOptions());
  for (int I = 0; I != 40; ++I)
    (void)Svc.query("Join", "shared");
  QueryKey K = Svc.resolve("Join", "tag");
  for (int I = 0; I != 30; ++I)
    (void)Svc.query(K);
  for (int I = 0; I != 20; ++I)
    (void)Svc.probe(K);
  std::vector<QueryKey> Keys(5, Svc.resolve("Left", "left_only"));
  std::vector<QueryAnswer> Answers(Keys.size());
  for (int I = 0; I != 10; ++I)
    Svc.queryMany(std::span<QueryKey>(Keys), std::span<QueryAnswer>(Answers));

  EXPECT_EQ(Svc.latencySnapshot(QueryPath::String).count(), 40u);
  EXPECT_EQ(Svc.latencySnapshot(QueryPath::Key).count(), 30u);
  EXPECT_EQ(Svc.latencySnapshot(QueryPath::Probe).count(), 20u);
  // A batch records once, not per key.
  EXPECT_EQ(Svc.latencySnapshot(QueryPath::Batch).count(), 10u);
  // All of it landed on the tabulated rung of a warm epoch.
  EXPECT_EQ(
      Svc.latencySnapshot(QueryPath::String, AnswerRung::Tabulated).count(),
      40u);
  EXPECT_EQ(
      Svc.latencySnapshot(QueryPath::String, AnswerRung::Figure8PerQuery)
          .count(),
      0u);
  EXPECT_EQ(Svc.stats().LatencySamples, 100u);

  LatencyHistogram H = Svc.latencySnapshot(QueryPath::String);
  EXPECT_GT(H.sum(), 0u);
  EXPECT_GT(H.percentile(50), 0.0);
  EXPECT_LE(H.percentile(50), double(H.maxSeen()));
}

TEST(ObservabilityTest, SamplePeriodZeroDisablesClockingButNotCounting) {
  ServiceOptions O;
  O.Observability.SamplePeriod = 0;
  LookupService Svc(diamond(), O);
  for (int I = 0; I != 100; ++I)
    (void)Svc.query("Join", "shared");

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.LatencySamples, 0u);
  EXPECT_EQ(S.Queries, 100u);
  EXPECT_EQ(S.Queries + S.Probes, rungSum(S));
  EXPECT_EQ(Svc.drainTrace().size(), 0u);
}

TEST(ObservabilityTest, TraceRingRecordsQueriesAndWriterEvents) {
  LookupService Svc(diamond(), sampledOptions());
  (void)Svc.query("Join", "shared");
  QueryKey K = Svc.resolve("Join", "tag");
  (void)Svc.probe(K);
  (void)Svc.query(K); // key path traces as a Query too
  Transaction Stale = Svc.beginTxn(); // loses the epoch race below
  Transaction Txn = Svc.beginTxn();
  Txn.addMember("Base", "fresh");
  ASSERT_TRUE(Svc.commit(Txn).isOk());
  Stale.addMember("Base", "stale");
  EXPECT_FALSE(Svc.commit(Stale).isOk());

  std::vector<TraceEvent> Events = Svc.drainTrace();
  ASSERT_GE(Events.size(), 4u);
  uint64_t ByKind[NumTraceKinds] = {};
  for (size_t I = 0; I != Events.size(); ++I) {
    ++ByKind[size_t(Events[I].Kind)];
    if (I)
      EXPECT_LE(Events[I - 1].WhenNanos, Events[I].WhenNanos);
    EXPECT_NE(Events[I].toString(), "");
  }
  EXPECT_EQ(ByKind[size_t(TraceKind::Query)], 2u);
  EXPECT_EQ(ByKind[size_t(TraceKind::Probe)], 1u);
  EXPECT_EQ(ByKind[size_t(TraceKind::Commit)], 1u);
  EXPECT_EQ(ByKind[size_t(TraceKind::CommitReject)], 1u);

  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceKind::Commit) {
      EXPECT_EQ(E.Epoch, 2u);
      EXPECT_EQ(E.Flags, 0u);
    }
    if (E.Kind == TraceKind::CommitReject)
      EXPECT_TRUE(E.Flags & TfRejected);
  }

  // Drain is non-destructive.
  EXPECT_EQ(Svc.drainTrace().size(), Events.size());
  EXPECT_EQ(Svc.stats().TraceEventsRecorded, Events.size());
}

TEST(ObservabilityTest, TraceRingBoundsRetentionAndCountsOverwrites) {
  ServiceOptions O = sampledOptions();
  O.Observability.TraceShardCapacity = 8;
  LookupService Svc(diamond(), O);
  for (int I = 0; I != 500; ++I)
    (void)Svc.query("Join", "shared");

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.TraceEventsRecorded, 500u);
  EXPECT_GT(S.TraceEventsOverwritten, 0u);
  std::vector<TraceEvent> Events = Svc.drainTrace();
  // Single-threaded: exactly one shard holds exactly its capacity.
  EXPECT_EQ(Events.size(), 8u);
  // The retained records are the newest ones.
  EXPECT_EQ(S.TraceEventsRecorded - S.TraceEventsOverwritten, Events.size());
}

TEST(ObservabilityTest, AnomalyLogRateLimitsAndForceBypasses) {
  AnomalyLog Log(/*Capacity=*/4, /*RatePerSecond=*/2);
  int Accepted = 0;
  for (int I = 0; I != 10; ++I)
    Accepted += Log.note(AnomalyKind::RungDrop, 1, 1, 0,
                         "drop " + std::to_string(I));
  // The bucket starts with one second's budget, the first dry note
  // claims the lazily-initialized current second's refill, and a real
  // second boundary mid-loop can add one more refill - never the
  // whole burst.
  EXPECT_GE(Accepted, 2);
  EXPECT_LE(Accepted, 6);
  EXPECT_EQ(Log.loggedTotal() + Log.suppressedTotal(), 10u);

  // Force ignores the dry bucket...
  for (int I = 0; I != 6; ++I)
    EXPECT_TRUE(Log.note(AnomalyKind::Quarantine, 2, 0, 0,
                         "forced " + std::to_string(I), /*Force=*/true));
  // ...and the ring keeps only the newest Capacity records.
  std::vector<AnomalyRecord> Recent = Log.recent();
  ASSERT_EQ(Recent.size(), 4u);
  for (const AnomalyRecord &R : Recent) {
    EXPECT_EQ(R.Kind, AnomalyKind::Quarantine);
    EXPECT_NE(R.toString(), "");
  }
  EXPECT_EQ(Recent.back().Detail, "forced 5");
}

TEST(ObservabilityTest, StaleKeyCrossingACommitLogsAnAnomaly) {
  LookupService Svc(diamond(), sampledOptions());
  QueryKey K = Svc.resolve("Join", "shared");
  Transaction Txn = Svc.beginTxn();
  Txn.addMember("Base", "fresh");
  ASSERT_TRUE(Svc.commit(Txn).isOk());

  (void)Svc.query(K); // stale: re-resolves in place
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.StaleKeyReresolves, 1u);
  ASSERT_GE(S.AnomaliesLogged, 1u);
  bool Found = false;
  for (const AnomalyRecord &R : Svc.recentAnomalies())
    if (R.Kind == AnomalyKind::StaleKeyReresolve && R.Epoch == 2)
      Found = true;
  EXPECT_TRUE(Found);
  EXPECT_EQ(S.Queries + S.Probes, rungSum(S));
}

TEST(ObservabilityTest, QuarantineIsTracedAnomalizedAndForced) {
  LookupService Svc(diamond(), sampledOptions());
  ASSERT_TRUE(Svc.corruptTableEntryForTesting("Join", "shared"));
  AuditReport Report = Svc.auditNow();
  ASSERT_TRUE(Report.QuarantinedTable);

  ServiceStats S = Svc.stats();
  ASSERT_GE(S.AnomaliesLogged, 1u);
  bool FoundAnomaly = false;
  for (const AnomalyRecord &R : Svc.recentAnomalies())
    if (R.Kind == AnomalyKind::Quarantine) {
      FoundAnomaly = true;
      EXPECT_NE(R.Detail.find("table:"), std::string::npos);
    }
  EXPECT_TRUE(FoundAnomaly);

  bool SawQuarantine = false, SawAudit = false;
  for (const TraceEvent &E : Svc.drainTrace()) {
    if (E.Kind == TraceKind::Quarantine) {
      SawQuarantine = true;
      EXPECT_TRUE(E.Flags & TfTableQuarantined);
    }
    SawAudit |= E.Kind == TraceKind::Audit;
  }
  EXPECT_TRUE(SawQuarantine);
  EXPECT_TRUE(SawAudit);
}

TEST(ObservabilityTest, RungDropAnomalyOnColdEpoch) {
  // A service built with warming disabled answers off the per-query
  // rung: every query is a rung drop.
  ServiceOptions O = sampledOptions();
  O.WarmOnCommit = false;
  O.Observability.AnomalyRatePerSecond = 1000;
  LookupService Svc(diamond(), O);
  (void)Svc.query("Join", "shared");

  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.RungAnswers[1] + S.RungAnswers[2], 1u);
  ASSERT_GE(S.AnomaliesLogged, 1u);
  bool Found = false;
  for (const AnomalyRecord &R : Svc.recentAnomalies())
    if (R.Kind == AnomalyKind::RungDrop)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(ObservabilityTest, SlowQueryAnomalyFiresOnThreshold) {
  ServiceOptions O;
  O.Observability.SamplePeriod = 1;
  O.Observability.SlowQueryNanos = 1; // everything is "slow"
  LookupService Svc(diamond(), O);
  (void)Svc.query("Join", "shared");

  bool Found = false;
  for (const AnomalyRecord &R : Svc.recentAnomalies())
    if (R.Kind == AnomalyKind::SlowQuery) {
      Found = true;
      EXPECT_GT(R.DurationNanos, 0u);
    }
  EXPECT_TRUE(Found);
}

TEST(ObservabilityTest, RestoreEmitsATraceEvent) {
  std::string Dir = ::testing::TempDir() + "memlook_obs_restore";
  std::string Path = Dir + ".snapshot";
  {
    LookupService Svc(diamond());
    ASSERT_TRUE(Svc.saveSnapshot(Path).isOk());
  }
  ServiceOptions O = sampledOptions();
  RestoreReport Report;
  auto Restored = LookupService::restore(Path, diamond(), O, &Report);
  ASSERT_TRUE(Restored);
  ASSERT_EQ(Report.Rung, RestoreRung::Snapshot);

  bool Found = false;
  for (const TraceEvent &E : (*Restored)->drainTrace())
    if (E.Kind == TraceKind::Restore) {
      Found = true;
      EXPECT_EQ(E.Rung, uint8_t(RestoreRung::Snapshot));
      EXPECT_NE(E.toString().find("snapshot"), std::string::npos);
    }
  EXPECT_TRUE(Found);
  std::remove(Path.c_str());
}

} // namespace
