//===- WalCorpusTest.cpp -----------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every file in tests/corpus/wal/ through the salvager and checks
/// the full structured outcome - the stop code, how many records the
/// clean prefix still yields, and whether a torn tail was silently
/// dropped. The corpus is the executable spec of the torn-tail-versus-
/// corrupt-interior doctrine: damage a kill can produce is silent,
/// damage it cannot produce stops the scan with a recoverable Status,
/// and the clean prefix survives either way. Regenerate with the
/// make_wal_corpus tool (which self-checks the same table).
///
//===----------------------------------------------------------------------===//

#include "memlook/service/WriteAheadLog.h"

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>

using namespace memlook;
using namespace memlook::service;

namespace {

struct CorpusCase {
  const char *FileName;
  ErrorCode ExpectedCode;
  uint64_t ExpectedRecords;
  bool ExpectTornDrop;
};

// Every file in corpus/wal must appear here: the cross-check test below
// refuses a new damaged log without a stated expectation.
constexpr CorpusCase Cases[] = {
    {"empty.wal", ErrorCode::Ok, 0, false},
    {"no_base_record.wal", ErrorCode::WalCorrupt, 0, false},
    {"bad_magic.wal", ErrorCode::WalCorrupt, 0, false},
    {"bad_base_version.wal", ErrorCode::WalCorrupt, 0, false},
    {"flipped_payload_byte.wal", ErrorCode::WalCorrupt, 1, false},
    {"duplicated_epoch.wal", ErrorCode::WalEpochSkew, 2, false},
    {"epoch_gap.wal", ErrorCode::WalEpochSkew, 1, false},
    {"torn_tail.wal", ErrorCode::Ok, 2, true},
    {"truncated_mid_header.wal", ErrorCode::Ok, 2, true},
    {"length_lie.wal", ErrorCode::WalCorrupt, 2, false},
    {"junk_interior.wal", ErrorCode::WalCorrupt, 3, false},
};

std::filesystem::path walDir() {
  return std::filesystem::path(MEMLOOK_CORPUS_DIR) / "wal";
}

class WalCorpusTest : public ::testing::TestWithParam<CorpusCase> {};

} // namespace

TEST_P(WalCorpusTest, SalvageMatchesTheDoctrine) {
  const CorpusCase &Case = GetParam();
  std::filesystem::path Path = walDir() / Case.FileName;
  ASSERT_TRUE(std::filesystem::exists(Path))
      << Path << " missing - regenerate with make_wal_corpus";

  WalSalvage S = WriteAheadLog::replayFile(Path.string());
  EXPECT_EQ(S.Error.code(), Case.ExpectedCode)
      << Case.FileName << ": salvage stopped with '" << S.Error.toString()
      << "', expected " << errorCodeLabel(Case.ExpectedCode);
  EXPECT_EQ(S.Records.size(), Case.ExpectedRecords) << Case.FileName;
  EXPECT_EQ(S.TornBytesDropped != 0, Case.ExpectTornDrop) << Case.FileName;

  // The byte accounting closes on clean scans: every byte is either
  // cleanly framed or accounted torn.
  if (S.Error.isOk()) {
    EXPECT_EQ(S.CleanBytes + S.TornBytesDropped,
              std::filesystem::file_size(Path))
        << Case.FileName;
  }
}

TEST(WalCorpusTest, EveryCorpusFileHasAnExpectation) {
  size_t FilesSeen = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(walDir())) {
    if (Entry.path().extension() != ".wal")
      continue;
    ++FilesSeen;
    std::string Name = Entry.path().filename().string();
    bool Known = false;
    for (const CorpusCase &Case : Cases)
      Known |= Name == Case.FileName;
    EXPECT_TRUE(Known) << Name << " has no entry in the expectation table";
  }
  EXPECT_EQ(FilesSeen, sizeof(Cases) / sizeof(Cases[0]));
}

INSTANTIATE_TEST_SUITE_P(
    Files, WalCorpusTest, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<CorpusCase> &Info) {
      std::string Name = Info.param.FileName;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
