//===- ServiceStressTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrency contract, exercised for real: one writer thread
/// pushing over a thousand transactions (valid, invalid, and
/// deliberately stale) through a live LookupService while four reader
/// threads query under a mix of deadlines and a background audit sweeps
/// every few milliseconds. Run under the `tsan` preset this is the
/// data-race proof; under any build it checks the ladder's liveness
/// guarantee - every query is answered by *some* rung - and that the
/// self-audit never finds a mismatch on an unfaulted service.
///
/// Reader threads record into plain per-thread structs and the main
/// thread asserts after joining, so a TSan report can only ever be
/// about the service itself.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/LookupService.h"
#include "memlook/support/Rng.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <string>
#include <thread>
#include <vector>

using namespace memlook;
using namespace memlook::service;

namespace {

/// What one reader thread saw; asserted on the main thread after join.
struct ReaderLog {
  uint64_t Queries = 0;
  uint64_t RungSeen[3] = {0, 0, 0};
  uint64_t OkAnswers = 0;
  uint64_t UnknownContexts = 0;
  /// Pinned-snapshot repeat queries whose exact rungs disagreed.
  uint64_t RepeatDivergences = 0;
  /// Answers whose rung was outside the ladder (should be impossible).
  uint64_t BadRungs = 0;
};

std::string queryClassName(Rng &R, uint64_t WriterTxns) {
  switch (R.nextBelow(4)) {
  case 0: // a seed class, always present
    return "K" + std::to_string(R.nextBelow(12));
  case 1: // a writer-added class that may or may not exist yet
    return "W" + std::to_string(R.nextBelow(WriterTxns + 1));
  case 2: // never a class
    return "Ghost" + std::to_string(R.nextBelow(3));
  default:
    return "K" + std::to_string(R.nextBelow(24));
  }
}

void readerMain(const LookupService &Svc, const std::atomic<bool> &Done,
                uint64_t Seed, uint64_t NumWriterTxns, ReaderLog &Log) {
  Rng R(Seed);
  std::atomic<bool> Cancelled{true};
  uint64_t Iter = 0;
  // At least 512 queries even if the writer finishes instantly, capped
  // so a stalled writer cannot spin a reader forever.
  while ((Iter < 512 || !Done.load(std::memory_order_acquire)) &&
         Iter < 200000) {
    ++Iter;
    std::string Class = queryClassName(R, NumWriterTxns);
    std::string Member = "m" + std::to_string(R.nextBelow(8));

    QueryAnswer A;
    switch (Iter % 4) {
    case 0: { // already-cancelled deadline: floor rung on cold epochs
      Deadline D = Deadline::never();
      D.withCancelFlag(&Cancelled);
      A = Svc.query(Class, Member, D);
      break;
    }
    case 1: // tight wall-clock deadline
      A = Svc.query(Class, Member, Deadline::afterMillis(5));
      break;
    case 2: { // pinned snapshot, exact-deadline-free query twice: the
              // exact rungs (table, per-query engine) must agree
      std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
      A = Svc.queryOn(*Snap, Class, Member);
      QueryAnswer B = Svc.queryOn(*Snap, Class, Member);
      if (!A.Approximate && !B.Approximate &&
          renderLookupForComparison(*Snap->H, A.Result) !=
              renderLookupForComparison(*Snap->H, B.Result))
        ++Log.RepeatDivergences;
      break;
    }
    default:
      A = Svc.query(Class, Member);
      break;
    }

    ++Log.Queries;
    if (A.Rung > AnswerRung::GxxApproximate) {
      ++Log.BadRungs;
      continue;
    }
    ++Log.RungSeen[static_cast<uint8_t>(A.Rung)];
    if (A.S.isOk())
      ++Log.OkAnswers;
    else if (A.S.code() == ErrorCode::UnknownClass)
      ++Log.UnknownContexts;
  }
}

} // namespace

TEST(ServiceStressTest, ReadersWritersAndAuditShareOneService) {
  RandomHierarchyParams Params;
  Params.NumClasses = 16;
  Params.MemberPool = 6;
  Params.UsingChance = 0.1;
  Workload W = makeRandomHierarchy(Params, /*Seed=*/20260805);

  ServiceOptions Opts;
  // Cold-by-default epochs keep the per-query rung in play; the writer
  // warms periodically so the tabulated rung is exercised too.
  Opts.WarmOnCommit = false;
  // The table audit stays on every pass; the O(table) engine-vs-engine
  // sweep is covered by single-threaded tests and would make a 10ms
  // audit cadence dominate a TSan run.
  Opts.AuditEngineCheck = false;
  Opts.AuditSampleLimit = 64;
  LookupService Svc(std::move(W.H), Opts);

  constexpr uint64_t NumWriterTxns = 1100;
  constexpr int NumReaders = 4;

  Svc.startBackgroundAudit(/*IntervalMillis=*/10);

  std::atomic<bool> Done{false};
  std::vector<ReaderLog> Logs(NumReaders);
  std::vector<std::thread> Readers;
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    Readers.emplace_back(readerMain, std::cref(Svc), std::cref(Done),
                         /*Seed=*/0xbeef + Idx, NumWriterTxns,
                         std::ref(Logs[Idx]));

  // The writer: NumWriterTxns transactions in three interleaved
  // flavors - valid growth, validation rejects, and epoch-race
  // conflicts - with a periodic warmCurrent() so readers see warm and
  // cold epochs alike.
  uint64_t ValidFailures = 0, RejectAnomalies = 0, ConflictAnomalies = 0;
  {
    Rng R(0x57e55);
    uint64_t TxnCount = 0;
    for (uint64_t I = 0; TxnCount < NumWriterTxns; ++I) {
      switch (I % 3) {
      case 0: { // valid: a fresh class joined under an existing one,
                // or a fresh member on an existing class
        std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
        Transaction Txn = Svc.beginTxn();
        if (I % 12 == 0) {
          std::string Fresh = "W" + std::to_string(I);
          ClassId Under(
              static_cast<uint32_t>(R.nextBelow(Snap->H->numClasses())));
          Txn.addClass(Fresh)
              .addBase(Fresh, std::string(Snap->H->className(Under)),
                       R.nextChance(1, 3) ? InheritanceKind::Virtual
                                          : InheritanceKind::NonVirtual)
              .addMember(Fresh, "m" + std::to_string(R.nextBelow(6)));
        } else {
          ClassId Onto(
              static_cast<uint32_t>(R.nextBelow(Snap->H->numClasses())));
          Txn.addMember(std::string(Snap->H->className(Onto)),
                        "s" + std::to_string(I));
        }
        if (!Svc.commit(Txn).isOk())
          ++ValidFailures;
        ++TxnCount;
        break;
      }
      case 1: { // invalid: must reject and roll back
        Transaction Txn = Svc.beginTxn();
        Txn.addMember("NoSuchClassEver", "m0");
        if (Svc.commit(Txn).code() != ErrorCode::UnknownClass)
          ++RejectAnomalies;
        ++TxnCount;
        break;
      }
      default: { // stale: a second writer-side txn loses the epoch race
        Transaction Stale = Svc.beginTxn();
        Transaction Winner = Svc.beginTxn();
        Winner.addMember("K" + std::to_string(R.nextBelow(4)),
                         "w" + std::to_string(I));
        bool WinnerOk = Svc.commit(Winner).isOk();
        Stale.addClass("Stale" + std::to_string(I));
        Status S = Svc.commit(Stale);
        if (WinnerOk && S.code() != ErrorCode::TransactionConflict)
          ++ConflictAnomalies;
        TxnCount += 2;
        break;
      }
      }
      if (I % 25 == 0)
        (void)Svc.warmCurrent();
    }
  }
  Done.store(true, std::memory_order_release);

  for (std::thread &T : Readers)
    T.join();
  Svc.stopBackgroundAudit();

  // Writer-side sanity.
  EXPECT_EQ(ValidFailures, 0u);
  EXPECT_EQ(RejectAnomalies, 0u);
  EXPECT_EQ(ConflictAnomalies, 0u);

  // Reader-side: every query was answered by a ladder rung, exactly.
  uint64_t ReaderQueries = 0;
  for (const ReaderLog &Log : Logs) {
    EXPECT_GE(Log.Queries, 512u);
    EXPECT_EQ(Log.BadRungs, 0u);
    EXPECT_EQ(Log.RepeatDivergences, 0u);
    EXPECT_EQ(Log.Queries,
              Log.RungSeen[0] + Log.RungSeen[1] + Log.RungSeen[2]);
    EXPECT_EQ(Log.Queries, Log.OkAnswers + Log.UnknownContexts);
    ReaderQueries += Log.Queries;
  }

  // Service-side totals line up with what the threads observed.
  ServiceStats Stats = Svc.stats();
  EXPECT_GE(Stats.Queries, ReaderQueries);
  EXPECT_EQ(Stats.Queries,
            Stats.RungAnswers[0] + Stats.RungAnswers[1] +
                Stats.RungAnswers[2]);
  EXPECT_GE(Stats.Commits, NumWriterTxns / 3);
  EXPECT_GE(Stats.CommitRejects, NumWriterTxns / 5);
  EXPECT_GE(Stats.CommitConflicts, NumWriterTxns / 5);
  EXPECT_GE(Stats.Audits, 1u);

  // No faults were injected, so the audit must never have disagreed.
  EXPECT_EQ(Stats.AuditMismatches, 0u);
  EXPECT_EQ(Stats.Quarantines, 0u);

  // Deterministic rung coverage, now that the threads are quiet: warm
  // epoch -> tabulated; fresh cold commit -> per-query engine; cold +
  // cancelled deadline -> approximate floor.
  ASSERT_TRUE(Svc.warmCurrent().isOk());
  EXPECT_EQ(Svc.query("K0", "m0").Rung, AnswerRung::Tabulated);

  Transaction Cooling = Svc.beginTxn();
  Cooling.addClass("FinalCold");
  ASSERT_TRUE(Svc.commit(Cooling).isOk());
  EXPECT_EQ(Svc.query("K0", "m0").Rung, AnswerRung::Figure8PerQuery);

  std::atomic<bool> Cancelled{true};
  Deadline D = Deadline::never();
  D.withCancelFlag(&Cancelled);
  QueryAnswer Floor = Svc.query("K0", "m0", D);
  EXPECT_EQ(Floor.Rung, AnswerRung::GxxApproximate);
  EXPECT_TRUE(Floor.Approximate);
  EXPECT_TRUE(Floor.DeadlineExpired);

  AuditReport Final = Svc.auditNow();
  EXPECT_TRUE(Final.passed()) << Final.toString();
}

//===----------------------------------------------------------------------===//
// Parallel warm builds racing readers
//===----------------------------------------------------------------------===//

namespace {

/// A reader that hammers *real* class and member names, so the racing
/// queries actually read table columns (including columns structurally
/// shared across epochs by the incremental rewarm) rather than
/// short-circuiting on unknown contexts.
void tableReaderMain(const LookupService &Svc, const std::atomic<bool> &Done,
                     uint64_t Seed, const std::vector<std::string> &Classes,
                     const std::vector<std::string> &Members, ReaderLog &Log) {
  Rng R(Seed);
  uint64_t Iter = 0;
  while ((Iter < 512 || !Done.load(std::memory_order_acquire)) &&
         Iter < 200000) {
    ++Iter;
    const std::string &Class = Classes[R.nextBelow(Classes.size())];
    const std::string &Member = Members[R.nextBelow(Members.size())];

    QueryAnswer A;
    if (Iter % 3 == 0) {
      // Pinned snapshot queried twice: the answer must be stable even
      // while the writer publishes rewarmed tables that alias this
      // snapshot's columns.
      std::shared_ptr<const Snapshot> Snap = Svc.snapshot();
      A = Svc.queryOn(*Snap, Class, Member);
      QueryAnswer B = Svc.queryOn(*Snap, Class, Member);
      if (!A.Approximate && !B.Approximate &&
          renderLookupForComparison(*Snap->H, A.Result) !=
              renderLookupForComparison(*Snap->H, B.Result))
        ++Log.RepeatDivergences;
    } else {
      A = Svc.query(Class, Member);
    }

    ++Log.Queries;
    if (A.Rung > AnswerRung::GxxApproximate) {
      ++Log.BadRungs;
      continue;
    }
    ++Log.RungSeen[static_cast<uint8_t>(A.Rung)];
    if (A.S.isOk())
      ++Log.OkAnswers;
    else if (A.S.code() == ErrorCode::UnknownClass)
      ++Log.UnknownContexts;
  }
}

} // namespace

TEST(ServiceStressTest, ParallelRewarmCommitsRaceReaders) {
  // Every commit warms synchronously with a 4-thread parallel build or
  // incremental rewarm, while readers query the previous epochs' tables
  // - whose columns the rewarms are concurrently aliasing into new
  // tables. Under the tsan preset this is the data-race proof for
  // ParallelTabulator and the column-sharing rewarm path.
  Workload W = makeModularForest(6, 2, 3, 4, 2);

  std::vector<std::string> Classes;
  for (uint32_t Idx = 0; Idx != W.H.numClasses(); ++Idx)
    Classes.emplace_back(W.H.className(ClassId(Idx)));
  Classes.push_back("GhostClass"); // unknown contexts stay covered
  std::vector<std::string> Members;
  for (Symbol M : W.H.allMemberNames())
    Members.emplace_back(W.H.spelling(M));
  Members.push_back("ghost_member");

  ServiceOptions Opts;
  Opts.WarmOnCommit = true;
  Opts.WarmThreads = 4;
  Opts.AuditEngineCheck = false;
  Opts.AuditSampleLimit = 64;
  LookupService Svc(std::move(W.H), Opts);

  Svc.startBackgroundAudit(/*IntervalMillis=*/10);

  constexpr int NumReaders = 3;
  std::atomic<bool> Done{false};
  std::vector<ReaderLog> Logs(NumReaders);
  std::vector<std::thread> Readers;
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    Readers.emplace_back(tableReaderMain, std::cref(Svc), std::cref(Done),
                         /*Seed=*/0xfeed + Idx, std::cref(Classes),
                         std::cref(Members), std::ref(Logs[Idx]));

  // The writer: module-local edits (one tree's names re-tabulated, the
  // other trees' columns shared), fresh classes under existing roots,
  // and the occasional member removal - all warmed in-commit.
  uint64_t ValidFailures = 0;
  {
    Rng R(0x9a11e1);
    for (uint64_t I = 0; I != 60; ++I) {
      Transaction Txn = Svc.beginTxn();
      std::string Root = "T" + std::to_string(R.nextBelow(6));
      switch (I % 4) {
      case 0:
        Txn.addMember(Root, "fresh" + std::to_string(I), /*IsStatic=*/false,
                      /*IsVirtual=*/R.nextChance(1, 2));
        break;
      case 1: {
        std::string Fresh = "P" + std::to_string(I);
        Txn.addClass(Fresh).addBase(Fresh, Root,
                                    R.nextChance(1, 3)
                                        ? InheritanceKind::Virtual
                                        : InheritanceKind::NonVirtual);
        break;
      }
      case 2:
        Txn.addMember(Root + "_0", "deep" + std::to_string(I));
        break;
      default: {
        // Add-then-remove in one script: a net no-op hierarchy-wise,
        // but the impact set must still carry the name (the removal
        // side is collected from the old closure) and the rewarm must
        // stay sound under the race.
        std::string Name = "blip" + std::to_string(I);
        Txn.addMember(Root, Name).removeMember(Root, Name);
        break;
      }
      }
      if (!Svc.commit(Txn).isOk())
        ++ValidFailures;
    }
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  Svc.stopBackgroundAudit();

  EXPECT_EQ(ValidFailures, 0u);
  for (const ReaderLog &Log : Logs) {
    EXPECT_GE(Log.Queries, 512u);
    EXPECT_EQ(Log.BadRungs, 0u);
    EXPECT_EQ(Log.RepeatDivergences, 0u);
    EXPECT_EQ(Log.Queries, Log.OkAnswers + Log.UnknownContexts);
  }

  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Commits, 60u);
  // Module-local edits rewarm incrementally; only class-removing
  // scripts (none here) may fall back.
  EXPECT_GT(Stats.IncrementalRewarms, 0u);
  EXPECT_GT(Stats.ColumnsShared, Stats.ColumnsRetabulated);
  EXPECT_EQ(Stats.AuditMismatches, 0u);
  EXPECT_EQ(Stats.Quarantines, 0u);
  EXPECT_TRUE(Svc.snapshot()->warm());

  AuditReport Final = Svc.auditNow();
  EXPECT_TRUE(Final.passed()) << Final.toString();
}

namespace {

/// Renders a fixed set of (class, member) answers straight off a pinned
/// snapshot's table - the deduped compact columns themselves, no ladder
/// in between.
std::vector<std::string> renderPinnedPairs(
    const Snapshot &Snap,
    const std::vector<std::pair<std::string, std::string>> &Pairs) {
  std::vector<std::string> Out;
  const Hierarchy &H = *Snap.H;
  for (const auto &[Class, Member] : Pairs) {
    ClassId C = H.findClass(Class);
    Symbol M = H.findName(Member);
    if (!C.isValid() || !M.isValid()) {
      Out.push_back("<absent>");
      continue;
    }
    Out.push_back(renderLookupForComparison(H, Snap.Table->find(H, C, M)));
  }
  return Out;
}

} // namespace

TEST(ServiceStressTest, DedupedColumnsStayFrozenUnderRewarmRaces) {
  // The value-immutability proof for structural dedup: readers pin a
  // warm snapshot whose table contains deduped columns (the modular
  // forest's shared names g0/g1 are declared identically on every root,
  // so their finished columns are byte-identical and unified), render a
  // fixed pair set once, then re-render in a loop - while a writer
  // commits edits whose incremental rewarms alias those very columns
  // into new epochs and re-run dedup over the mixed shared/rebuilt
  // column set. Any in-place mutation of a shared column is either a
  // render divergence here or a TSan report under the tsan preset.
  Workload W = makeModularForest(6, 2, 2, 4, 2);

  std::vector<std::pair<std::string, std::string>> Pairs;
  for (uint32_t T = 0; T != 6; ++T)
    for (const char *Member : {"g0", "g1", "t0_m0", "ghost"})
      Pairs.emplace_back("T" + std::to_string(T) + "_1_1", Member);

  ServiceOptions Opts;
  Opts.WarmOnCommit = true;
  Opts.AuditEngineCheck = false;
  Opts.AuditSampleLimit = 32;
  LookupService Svc(std::move(W.H), Opts);
  ASSERT_TRUE(Svc.snapshot()->warm());
  ASSERT_GE(Svc.snapshot()->Table->buildStats().ColumnsDeduped, 1u)
      << "the fixture must actually exercise dedup";

  constexpr int NumReaders = 3;
  std::atomic<bool> Done{false};
  std::vector<uint64_t> Divergences(NumReaders, 0);
  std::vector<std::thread> Readers;
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    Readers.emplace_back([&, Idx] {
      // Pin whatever epoch is current when this reader starts; the
      // writer will rewarm past it while we keep re-reading it.
      std::shared_ptr<const Snapshot> Pinned = Svc.snapshot();
      while (!Pinned->warm())
        Pinned = Svc.snapshot();
      std::vector<std::string> First = renderPinnedPairs(*Pinned, Pairs);
      uint64_t Iter = 0;
      while ((Iter < 256 || !Done.load(std::memory_order_acquire)) &&
             Iter < 200000) {
        ++Iter;
        if (renderPinnedPairs(*Pinned, Pairs) != First)
          ++Divergences[Idx];
        // Every few rounds, also chase the newest epoch once (reading
        // the columns the rewarm just aliased) and re-pin our original.
        if (Iter % 8 == 0) {
          std::shared_ptr<const Snapshot> Now = Svc.snapshot();
          if (Now->warm())
            (void)renderPinnedPairs(*Now, Pairs);
        }
      }
    });

  uint64_t ValidFailures = 0;
  {
    Rng R(0xd0d0);
    for (uint64_t I = 0; I != 48; ++I) {
      Transaction Txn = Svc.beginTxn();
      std::string Root = "T" + std::to_string(R.nextBelow(6));
      if (I % 3 == 0) {
        // A tree-local edit: the other trees' columns - including the
        // deduped g0/g1 pair - are aliased, then deduped again.
        Txn.addMember(Root, "local" + std::to_string(I));
      } else if (I % 3 == 1) {
        std::string Fresh = "Q" + std::to_string(I);
        Txn.addClass(Fresh).addBase(Fresh, Root,
                                    R.nextChance(1, 3)
                                        ? InheritanceKind::Virtual
                                        : InheritanceKind::NonVirtual);
      } else {
        // Declare a shared name further down one tree: g0's column is
        // re-tabulated and must *stop* being deduped with g1's without
        // disturbing the pinned epochs that still unify them. The
        // (class, name) combos are unique across iterations, so every
        // one of these commits is valid.
        uint64_t K = I / 3;
        Txn.addMember("T" + std::to_string(K % 6) + "_0",
                      "g" + std::to_string(K / 6));
      }
      if (!Svc.commit(Txn).isOk())
        ++ValidFailures;
    }
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(ValidFailures, 0u);
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    EXPECT_EQ(Divergences[Idx], 0u)
        << "reader " << Idx
        << ": a pinned table's answers changed under rewarm+dedup";

  ServiceStats Stats = Svc.stats();
  EXPECT_GT(Stats.IncrementalRewarms, 0u);
  EXPECT_GE(Stats.ColumnsDeduped, 1u);
  EXPECT_EQ(Stats.AuditMismatches, 0u);

  AuditReport Final = Svc.auditNow();
  EXPECT_TRUE(Final.passed()) << Final.toString();
}

TEST(ServiceStressTest, DeadlineExpiryMidParallelBuildLeavesEpochCold) {
  // A 1ms warm budget on a hierarchy whose full tabulation costs far
  // more: every in-commit parallel build trips its deadline mid-flight
  // (cooperatively, at DeadlineStride granularity), the epoch publishes
  // cold, and queries degrade to the per-query rung - while readers
  // race the aborting builds. An explicit warmCurrent() with no
  // deadline then warms the final epoch fully.
  Workload W = makeModularForest(10, 3, 4, 4, 2); // 1210 classes

  std::vector<std::string> Classes;
  for (uint32_t Idx = 0; Idx != W.H.numClasses(); ++Idx)
    Classes.emplace_back(W.H.className(ClassId(Idx)));
  std::vector<std::string> Members;
  for (Symbol M : W.H.allMemberNames())
    Members.emplace_back(W.H.spelling(M));

  ServiceOptions Opts;
  Opts.WarmOnCommit = true;
  Opts.WarmThreads = 4;
  Opts.WarmBuildMillis = 1;
  Opts.AuditEngineCheck = false;
  Opts.AuditSampleLimit = 32;
  LookupService Svc(std::move(W.H), Opts);

  constexpr int NumReaders = 2;
  std::atomic<bool> Done{false};
  std::vector<ReaderLog> Logs(NumReaders);
  std::vector<std::thread> Readers;
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    Readers.emplace_back(tableReaderMain, std::cref(Svc), std::cref(Done),
                         /*Seed=*/0xc01d + Idx, std::cref(Classes),
                         std::cref(Members), std::ref(Logs[Idx]));

  uint64_t ColdEpochs = 0;
  for (uint64_t I = 0; I != 8; ++I) {
    Transaction Txn = Svc.beginTxn();
    Txn.addMember("T" + std::to_string(I % 10), "late" + std::to_string(I));
    ASSERT_TRUE(Svc.commit(Txn).isOk());
    if (!Svc.snapshot()->warm())
      ++ColdEpochs;
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  // The builds must have been expiring: this tabulation is orders of
  // magnitude over a 1ms budget. (Not asserted for all 8 - a pathological
  // scheduler stall could let one squeak through the stride check.)
  EXPECT_GE(ColdEpochs, 4u);
  for (const ReaderLog &Log : Logs) {
    EXPECT_EQ(Log.BadRungs, 0u);
    EXPECT_EQ(Log.RepeatDivergences, 0u);
  }

  // Cold epoch answers come off the ladder's per-query rung...
  if (!Svc.snapshot()->warm()) {
    EXPECT_EQ(Svc.query("T0_0_0_0", "t0_m0").Rung,
              AnswerRung::Figure8PerQuery);
  }

  // ...until an unbounded warm succeeds and the tabulated rung returns.
  ASSERT_TRUE(Svc.warmCurrent().isOk());
  EXPECT_TRUE(Svc.snapshot()->warm());
  EXPECT_EQ(Svc.query("T0_0_0_0", "t0_m0").Rung, AnswerRung::Tabulated);

  AuditReport Final = Svc.auditNow();
  EXPECT_TRUE(Final.passed()) << Final.toString();
}

TEST(ServiceStressTest, FastLaneReadersShardedStatsAndWriterShareOneService) {
  // The query fast lane under contention: readers running the
  // resolved-handle paths (probe, key query, queryMany batches) on
  // their own key copies, a stats thread summing the sharded read
  // counters mid-flight, and a writer committing member adds that
  // invalidate every outstanding key's epoch. Under the tsan preset
  // this is the data-race proof for ShardedCounters and the in-place
  // key re-resolution; under any build it checks the fast-lane
  // accounting invariant - every probe and every key answered by
  // exactly one rung - and that sharded totals only ever move forward.
  Workload W = makeModularForest(4, 2, 2, /*MembersPerRoot=*/4,
                                 /*SharedMembers=*/2);

  ServiceOptions Opts;
  Opts.AuditEngineCheck = false;
  Opts.AuditSampleLimit = 64;
  LookupService Svc(std::move(W.H), Opts);

  constexpr int NumReaders = 4;
  constexpr uint64_t NumWriterTxns = 400;

  // Keys minted once at epoch 1; each reader gets private copies (the
  // QueryKey contract: re-resolution mutates in place, so keys are
  // never shared mutably across threads).
  std::vector<QueryKey> Master;
  for (uint32_t T = 0; T != 4; ++T)
    for (uint32_t M = 0; M != 4; ++M)
      Master.push_back(Svc.resolve(
          "T" + std::to_string(T) + "_0",
          "t" + std::to_string(T) + "_m" + std::to_string(M)));
  Master.push_back(Svc.resolve("T0", "g0"));
  Master.push_back(Svc.resolve("NoSuchClass", "g0"));
  Master.push_back(Svc.resolve("T1", "no_such_member"));

  struct FastLaneLog {
    uint64_t Probes = 0;
    uint64_t KeyQueries = 0;
    uint64_t BatchKeys = 0;
    uint64_t RungSeen[3] = {0, 0, 0};
    uint64_t BadAnswers = 0;
  };

  Svc.startBackgroundAudit(/*IntervalMillis=*/10);

  std::atomic<bool> Done{false};
  std::vector<FastLaneLog> Logs(NumReaders);
  std::vector<std::thread> Readers;
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    Readers.emplace_back([&Svc, &Done, &Master, Idx, &Log = Logs[Idx]] {
      std::vector<QueryKey> Keys = Master; // private copies
      std::vector<QueryAnswer> Answers(Keys.size());
      uint64_t Iter = 0;
      while ((Iter < 512 || !Done.load(std::memory_order_acquire)) &&
             Iter < 200000) {
        ++Iter;
        QueryKey &Key = Keys[(Iter + Idx) % Keys.size()];
        switch (Iter % 3) {
        case 0: {
          ProbeAnswer P = Svc.probe(Key);
          ++Log.Probes;
          if (P.Rung > AnswerRung::GxxApproximate)
            ++Log.BadAnswers;
          else
            ++Log.RungSeen[static_cast<uint8_t>(P.Rung)];
          break;
        }
        case 1: {
          QueryAnswer A = Svc.query(Key);
          ++Log.KeyQueries;
          if (A.Rung > AnswerRung::GxxApproximate ||
              (!A.S.isOk() && A.S.code() != ErrorCode::UnknownClass))
            ++Log.BadAnswers;
          else
            ++Log.RungSeen[static_cast<uint8_t>(A.Rung)];
          break;
        }
        default: {
          Svc.queryMany(std::span<QueryKey>(Keys),
                        std::span<QueryAnswer>(Answers));
          for (const QueryAnswer &A : Answers) {
            ++Log.BatchKeys;
            if (A.Rung > AnswerRung::GxxApproximate)
              ++Log.BadAnswers;
            else
              ++Log.RungSeen[static_cast<uint8_t>(A.Rung)];
          }
          break;
        }
        }
      }
    });

  // The stats thread: sharded counters are eventually consistent, but
  // totals are monotone - a sum that goes backwards means a torn or
  // racy read. Checked mid-flight, not just after join.
  uint64_t StatsRegressions = 0, StatsSamples = 0;
  std::thread StatsThread([&Svc, &Done, &StatsRegressions, &StatsSamples] {
    uint64_t LastQ = 0, LastP = 0, LastB = 0, LastR = 0, LastRungs = 0;
    while (!Done.load(std::memory_order_acquire)) {
      ServiceStats S = Svc.stats();
      uint64_t Rungs =
          S.RungAnswers[0] + S.RungAnswers[1] + S.RungAnswers[2];
      if (S.Queries < LastQ || S.Probes < LastP || S.BatchQueries < LastB ||
          S.StaleKeyReresolves < LastR || Rungs < LastRungs)
        ++StatsRegressions;
      LastQ = S.Queries;
      LastP = S.Probes;
      LastB = S.BatchQueries;
      LastR = S.StaleKeyReresolves;
      LastRungs = Rungs;
      ++StatsSamples;
      std::this_thread::yield();
    }
  });

  // The writer: every commit moves the epoch, so each reader's next use
  // of each key crosses a stale epoch and re-resolves in place.
  for (uint64_t I = 0; I != NumWriterTxns; ++I) {
    Transaction Txn = Svc.beginTxn();
    Txn.addMember("T" + std::to_string(I % 4), "fresh" + std::to_string(I));
    ASSERT_TRUE(Svc.commit(Txn).isOk());
  }
  Done.store(true, std::memory_order_release);

  for (std::thread &T : Readers)
    T.join();
  StatsThread.join();
  Svc.stopBackgroundAudit();

  EXPECT_EQ(StatsRegressions, 0u);
  EXPECT_GE(StatsSamples, 1u);

  uint64_t SeenProbes = 0, SeenQueries = 0, SeenRungs = 0;
  for (const FastLaneLog &Log : Logs) {
    EXPECT_EQ(Log.BadAnswers, 0u);
    EXPECT_EQ(Log.Probes + Log.KeyQueries + Log.BatchKeys,
              Log.RungSeen[0] + Log.RungSeen[1] + Log.RungSeen[2]);
    SeenProbes += Log.Probes;
    SeenQueries += Log.KeyQueries + Log.BatchKeys;
    SeenRungs += Log.RungSeen[0] + Log.RungSeen[1] + Log.RungSeen[2];
  }

  // The fast-lane accounting invariant: probes are counted apart from
  // queries, and the rung totals cover both - exactly once each.
  ServiceStats Stats = Svc.stats();
  EXPECT_GE(Stats.Probes, SeenProbes);
  EXPECT_GE(Stats.Queries, SeenQueries);
  EXPECT_EQ(Stats.Queries + Stats.Probes,
            Stats.RungAnswers[0] + Stats.RungAnswers[1] +
                Stats.RungAnswers[2]);
  EXPECT_GT(Stats.StaleKeyReresolves, 0u);
  EXPECT_EQ(Stats.AuditMismatches, 0u);
  EXPECT_EQ(Stats.Quarantines, 0u);

  AuditReport Final = Svc.auditNow();
  EXPECT_TRUE(Final.passed()) << Final.toString();
}

TEST(ServiceStressTest, EpochReclamationRacesGuardPinnedReadersAndWriter) {
  // The lock-free read path under its designed-for load: 4 readers
  // hammer the guard-pinned entry points (probe / key query /
  // queryMany) - each call pins the published snapshot through an
  // EpochReclaimer::ReadGuard and dereferences it raw - while a writer
  // commits every few milliseconds, retiring a snapshot per publish,
  // and the reclaimer frees the limbo list behind the readers. Under
  // the tsan preset this is the data-race proof for the whole EBR
  // protocol (publish -> retire -> scan -> free vs. pin -> load ->
  // deref); under ASan a reclamation bug is a hard heap-use-after-free.
  // Build-independent assertions: answers from freed-candidate
  // snapshots stay coherent (epochs never run backwards per thread, no
  // answer carries epoch 0), the limbo list stays bounded by reader
  // progress, and it drains to zero once the readers quiesce.
  Workload W = makeModularForest(4, 2, 2, /*MembersPerRoot=*/4,
                                 /*SharedMembers=*/2);

  ServiceOptions Opts;
  Opts.AuditEngineCheck = false;
  Opts.AuditSampleLimit = 32;
  LookupService Svc(std::move(W.H), Opts);

  constexpr int NumReaders = 4;
  constexpr uint64_t NumWriterTxns = 300;

  std::vector<QueryKey> Master;
  for (uint32_t T = 0; T != 4; ++T)
    for (uint32_t M = 0; M != 4; ++M)
      Master.push_back(Svc.resolve(
          "T" + std::to_string(T) + "_0",
          "t" + std::to_string(T) + "_m" + std::to_string(M)));
  Master.push_back(Svc.resolve("T0", "g0"));

  struct ReclaimLog {
    uint64_t Ops = 0;
    uint64_t NonMonotoneEpochs = 0; ///< a later answer from an older epoch
    uint64_t ZeroEpochs = 0;        ///< an answer stamped with no epoch
    uint64_t BadAnswers = 0;
  };

  std::atomic<bool> Done{false};
  std::vector<ReclaimLog> Logs(NumReaders);
  std::vector<std::thread> Readers;
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    Readers.emplace_back([&Svc, &Done, &Master, Idx, &Log = Logs[Idx]] {
      std::vector<QueryKey> Keys = Master; // private copies
      std::vector<QueryAnswer> Answers(Keys.size());
      uint64_t LastEpoch = 0;
      auto Note = [&Log, &LastEpoch](uint64_t Epoch) {
        if (Epoch == 0)
          ++Log.ZeroEpochs;
        if (Epoch < LastEpoch)
          ++Log.NonMonotoneEpochs;
        else
          LastEpoch = Epoch;
      };
      uint64_t Iter = 0;
      while ((Iter < 512 || !Done.load(std::memory_order_acquire)) &&
             Iter < 200000) {
        ++Iter;
        QueryKey &Key = Keys[(Iter + Idx) % Keys.size()];
        switch (Iter % 4) {
        case 0:
        case 1: { // probe-heavy, like the bench's fast lane
          ProbeAnswer P = Svc.probe(Key);
          Note(P.Epoch);
          if (P.Rung > AnswerRung::GxxApproximate)
            ++Log.BadAnswers;
          break;
        }
        case 2: {
          QueryAnswer A = Svc.query(Key);
          Note(A.Epoch);
          if (A.Rung > AnswerRung::GxxApproximate ||
              (!A.S.isOk() && A.S.code() != ErrorCode::UnknownClass))
            ++Log.BadAnswers;
          break;
        }
        default: {
          Svc.queryMany(std::span<QueryKey>(Keys),
                        std::span<QueryAnswer>(Answers));
          for (const QueryAnswer &A : Answers) {
            Note(A.Epoch);
            if (A.Rung > AnswerRung::GxxApproximate)
              ++Log.BadAnswers;
          }
          break;
        }
        }
        Log.Ops += 1;
      }
    });

  // A sampler thread watches the reclaimer gauges mid-flight: the limbo
  // list must stay bounded (readers release their guards every call, so
  // reclamation keeps pace with retirement) and the running totals must
  // stay consistent.
  uint64_t MaxLimbo = 0, GaugeAnomalies = 0;
  std::thread Sampler([&Svc, &Done, &MaxLimbo, &GaugeAnomalies] {
    while (!Done.load(std::memory_order_acquire)) {
      ServiceStats S = Svc.stats();
      MaxLimbo = std::max(MaxLimbo, S.SnapshotLimboDepth);
      if (S.SnapshotsReclaimed > S.SnapshotsRetired)
        ++GaugeAnomalies;
      std::this_thread::yield();
    }
  });

  // The writer: a net no-op blip per commit (add + remove one member in
  // one script) every couple of milliseconds - each publish retires the
  // superseded snapshot while readers are mid-deref on it.
  for (uint64_t I = 0; I != NumWriterTxns; ++I) {
    Transaction Txn = Svc.beginTxn();
    std::string Name = "storm" + std::to_string(I);
    Txn.addMember("T" + std::to_string(I % 4), Name)
        .removeMember("T" + std::to_string(I % 4), Name);
    ASSERT_TRUE(Svc.commit(Txn).isOk());
    if (I % 8 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Done.store(true, std::memory_order_release);

  for (std::thread &T : Readers)
    T.join();
  Sampler.join();

  for (const ReclaimLog &Log : Logs) {
    EXPECT_GE(Log.Ops, 512u);
    EXPECT_EQ(Log.BadAnswers, 0u);
    EXPECT_EQ(Log.ZeroEpochs, 0u);
    EXPECT_EQ(Log.NonMonotoneEpochs, 0u)
        << "a guard-pinned read served an epoch older than one already "
           "observed on the same thread";
  }
  EXPECT_EQ(GaugeAnomalies, 0u);
  EXPECT_LE(MaxLimbo, EpochReclaimer::NumSlots)
      << "the limbo list outgrew any plausible reader-progress bound";

  // Quiescence: one more publish retires the last superseded snapshot
  // and its reclaim pass - with every reader slot quiescent - must
  // drain the limbo list completely.
  Transaction FinalTxn = Svc.beginTxn();
  FinalTxn.addMember("T0", "final_member");
  ASSERT_TRUE(Svc.commit(FinalTxn).isOk());

  ServiceStats Stats = Svc.stats();
  EXPECT_GE(Stats.SnapshotsRetired, NumWriterTxns);
  EXPECT_EQ(Stats.SnapshotLimboDepth, 0u);
  EXPECT_EQ(Stats.SnapshotsReclaimed, Stats.SnapshotsRetired);
  EXPECT_EQ(Stats.EpochPinOverflows, 0u);

  // And the answers on the far side of ~300 reclaimed epochs are right.
  QueryKey Check = Svc.resolve("T0", "final_member");
  EXPECT_EQ(Svc.probe(Check).Status, LookupStatus::Unambiguous);
  AuditReport Audit = Svc.auditNow();
  EXPECT_TRUE(Audit.passed()) << Audit.toString();
}

TEST(ServiceStressTest, TraceDrainRacesReadersAndCommittingWriter) {
  // The trace ring's concurrency contract under TSan: a drainer thread
  // repeatedly copies the ring (and renders the full metrics
  // exposition) while reader threads record sampled query/probe events
  // into it and a writer commits - drain() must never stop a reader,
  // never tear a record, and every drained event must be well-formed.
  Workload W = makeModularForest(4, 2, 2, /*MembersPerRoot=*/4,
                                 /*ExtraMembersPerChild=*/2);
  ServiceOptions Opts;
  Opts.Observability.SamplePeriod = 1; // every operation traced
  Opts.Observability.TraceShardCapacity = 32; // force wrap-around
  Opts.Observability.SlowQueryNanos = 0;
  LookupService Svc(std::move(W.H), Opts);

  constexpr uint64_t NumWriterTxns = 200;
  constexpr int NumReaders = 2;

  std::atomic<bool> Done{false};
  struct DrainLog {
    uint64_t Drains = 0;
    uint64_t Events = 0;
    uint64_t Malformed = 0;
    uint64_t UnsortedPairs = 0;
  } Drain;
  struct QueryLog {
    uint64_t Ops = 0;
    uint64_t BadAnswers = 0;
  };
  std::vector<QueryLog> Logs(NumReaders);

  std::thread Drainer([&Svc, &Done, &Drain] {
    while (!Done.load(std::memory_order_acquire)) {
      std::vector<TraceEvent> Events = Svc.drainTrace();
      ++Drain.Drains;
      Drain.Events += Events.size();
      for (size_t I = 0; I != Events.size(); ++I) {
        const TraceEvent &E = Events[I];
        if (size_t(E.Kind) >= NumTraceKinds || E.WhenNanos == 0 ||
            E.toString().empty())
          ++Drain.Malformed;
        if (I && Events[I - 1].WhenNanos > E.WhenNanos)
          ++Drain.UnsortedPairs;
      }
      // The expositions walk every instrument; render them in the race
      // too so TSan sees the read side of the histograms and stats.
      (void)Svc.metricsText();
      (void)Svc.metricsJson();
      (void)Svc.recentAnomalies();
    }
  });

  std::vector<std::thread> Readers;
  for (int Idx = 0; Idx != NumReaders; ++Idx)
    Readers.emplace_back([&Svc, &Done, Idx, &Log = Logs[Idx]] {
      Rng R(0x7ace + Idx);
      uint64_t Iter = 0;
      while ((Iter < 512 || !Done.load(std::memory_order_acquire)) &&
             Iter < 200000) {
        ++Iter;
        std::string Class = "T" + std::to_string(R.nextBelow(4));
        std::string Member = "m" + std::to_string(R.nextBelow(4));
        QueryKey K = Svc.resolve(Class, Member);
        QueryAnswer A = Svc.query(K);
        ProbeAnswer P = Svc.probe(K);
        Log.Ops += 2;
        if (A.Rung > AnswerRung::GxxApproximate ||
            P.Rung > AnswerRung::GxxApproximate)
          ++Log.BadAnswers;
      }
    });

  for (uint64_t I = 0; I != NumWriterTxns; ++I) {
    Transaction Txn = Svc.beginTxn();
    Txn.addMember("T" + std::to_string(I % 4),
                  "trace_s" + std::to_string(I));
    ASSERT_TRUE(Svc.commit(Txn).isOk());
  }
  Done.store(true, std::memory_order_release);

  for (std::thread &T : Readers)
    T.join();
  Drainer.join();

  EXPECT_GE(Drain.Drains, 1u);
  EXPECT_GT(Drain.Events, 0u);
  EXPECT_EQ(Drain.Malformed, 0u);
  EXPECT_EQ(Drain.UnsortedPairs, 0u);
  for (const QueryLog &Log : Logs)
    EXPECT_EQ(Log.BadAnswers, 0u);

  // Quiescent accounting: the sampled instruments and the sharded
  // stat counters agree with each other and with the ring totals.
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Queries + Stats.Probes,
            Stats.RungAnswers[0] + Stats.RungAnswers[1] +
                Stats.RungAnswers[2]);
  EXPECT_EQ(Stats.LatencySamples, Stats.Queries + Stats.Probes);
  EXPECT_GE(Stats.TraceEventsRecorded,
            Stats.Queries + Stats.Probes + NumWriterTxns);
  EXPECT_GE(Stats.TraceEventsRecorded, Stats.TraceEventsOverwritten);
  std::vector<TraceEvent> Remaining = Svc.drainTrace();
  EXPECT_EQ(Stats.TraceEventsRecorded - Stats.TraceEventsOverwritten,
            Remaining.size());
}
