//===- RollbackTest.cpp ----------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transactional-rollback correctness property, checked over
/// randomized hierarchies: a transaction that aborts - whether rejected
/// by validation, beaten by a conflicting commit, or explicitly
/// abandoned - must leave every (class, member) lookup answer
/// bit-identical to the pre-transaction state. "Bit-identical" is
/// enforced two ways: the published snapshot must be the *same object*
/// (nothing was swapped in), and the full answer map - every class
/// crossed with every member name, rendered with the differential
/// comparison key - must compare equal.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DifferentialCheck.h"
#include "memlook/service/LookupService.h"
#include "memlook/support/Rng.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <map>

using namespace memlook;
using namespace memlook::service;

namespace {

/// Every (class, member) answer of \p Snap as comparison-key renderings.
std::map<std::string, std::string> answersOf(const LookupService &Svc,
                                             const Snapshot &Snap) {
  std::map<std::string, std::string> Out;
  const Hierarchy &H = *Snap.H;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId C(Idx);
    for (Symbol Member : H.allMemberNames()) {
      QueryAnswer A = Svc.queryOn(Snap, H.className(C), H.spelling(Member));
      Out[std::string(H.className(C)) + "::" +
          std::string(H.spelling(Member))] =
          renderLookupForComparison(H, A.Result);
    }
  }
  return Out;
}

LookupService makeRandomService(uint64_t Seed, uint32_t NumClasses) {
  RandomHierarchyParams Params;
  Params.NumClasses = NumClasses;
  Params.UsingChance = 0.1;
  Workload W = makeRandomHierarchy(Params, Seed);
  return LookupService(std::move(W.H));
}

} // namespace

TEST(RollbackTest, RejectedCommitLeavesAnswersBitIdentical) {
  for (uint64_t Seed = 1; Seed != 13; ++Seed) {
    LookupService Svc = makeRandomService(Seed, 16);
    std::shared_ptr<const Snapshot> Before = Svc.snapshot();
    std::map<std::string, std::string> AnswersBefore =
        answersOf(Svc, *Before);

    // Three failure flavors, each prefixed with edits that *would* have
    // changed answers had the transaction committed.
    const char *Flavors[] = {"unknown-name", "cycle", "duplicate-base"};
    for (const char *Flavor : Flavors) {
      Transaction Txn = Svc.beginTxn();
      Txn.addClass("Edited").addBase("Edited", "K0").addMember("K0", "m0");
      // (m0 may already exist in C0 - then the *prefix* itself rejects;
      // either way the commit must fail atomically.)
      if (Flavor == std::string("unknown-name"))
        Txn.addMember("NoSuchClass", "m1");
      else if (Flavor == std::string("cycle"))
        Txn.addBase("K0", "Edited"); // C0 -> Edited -> C0
      else
        Txn.addBase("Edited", "K0"); // second copy of the same edge
      Status S = Svc.commit(Txn);
      ASSERT_FALSE(S.isOk()) << "seed " << Seed << " flavor " << Flavor;

      EXPECT_EQ(Svc.snapshot().get(), Before.get())
          << "seed " << Seed << " flavor " << Flavor
          << ": rejected commit published a snapshot";
      EXPECT_EQ(answersOf(Svc, *Svc.snapshot()), AnswersBefore)
          << "seed " << Seed << " flavor " << Flavor;
    }
  }
}

TEST(RollbackTest, ConflictedCommitLeavesAnswersBitIdentical) {
  for (uint64_t Seed = 20; Seed != 26; ++Seed) {
    LookupService Svc = makeRandomService(Seed, 12);

    Transaction Stale = Svc.beginTxn();
    Stale.addClass("StaleOnly").addMember("StaleOnly", "stale_m");

    Transaction Winner = Svc.beginTxn();
    Winner.addClass("WinnerOnly");
    ASSERT_TRUE(Svc.commit(Winner).isOk()) << "seed " << Seed;

    std::shared_ptr<const Snapshot> AfterWinner = Svc.snapshot();
    std::map<std::string, std::string> Answers =
        answersOf(Svc, *AfterWinner);

    ASSERT_EQ(Svc.commit(Stale).code(), ErrorCode::TransactionConflict)
        << "seed " << Seed;
    EXPECT_EQ(Svc.snapshot().get(), AfterWinner.get()) << "seed " << Seed;
    EXPECT_EQ(answersOf(Svc, *Svc.snapshot()), Answers) << "seed " << Seed;
  }
}

TEST(RollbackTest, ExplicitAbortChangesNothing) {
  LookupService Svc = makeRandomService(99, 16);
  std::shared_ptr<const Snapshot> Before = Svc.snapshot();
  std::map<std::string, std::string> Answers = answersOf(Svc, *Before);

  {
    Transaction Txn = Svc.beginTxn();
    Txn.addClass("Dropped").removeClass("K3").addMember("K1", "abandoned");
    Svc.abort(Txn);
  } // recording ops and dropping the Transaction touches no state

  EXPECT_EQ(Svc.snapshot().get(), Before.get());
  EXPECT_EQ(answersOf(Svc, *Svc.snapshot()), Answers);
  EXPECT_EQ(Svc.stats().AbortedTxns, 1u);
  EXPECT_EQ(Svc.stats().Commits, 0u);
}

TEST(RollbackTest, InverseScriptRestoresAnswers) {
  // Not a rollback but the semantic cousin: commit a script, commit its
  // inverse, and the original answers must hold again (at a higher
  // epoch - epochs name history, not content).
  for (uint64_t Seed = 40; Seed != 46; ++Seed) {
    LookupService Svc = makeRandomService(Seed, 12);
    std::map<std::string, std::string> Original =
        answersOf(Svc, *Svc.snapshot());

    Transaction Forward = Svc.beginTxn();
    Forward.addClass("Extra")
        .addBase("Extra", "K2", InheritanceKind::Virtual)
        .addMember("Extra", "extra_m")
        .addMember("K0", "added_m");
    ASSERT_TRUE(Svc.commit(Forward).isOk()) << "seed " << Seed;

    Transaction Inverse = Svc.beginTxn();
    Inverse.removeMember("K0", "added_m")
        .removeMember("Extra", "extra_m")
        .removeBase("Extra", "K2")
        .removeClass("Extra");
    ASSERT_TRUE(Svc.commit(Inverse).isOk()) << "seed " << Seed;

    // Compare on the original pair set: the round trip may leave the
    // member-name pool enlarged ("added_m" now renders NotFound rows),
    // but every originally present answer must be restored exactly.
    std::map<std::string, std::string> RoundTrip =
        answersOf(Svc, *Svc.snapshot());
    for (const auto &[Pair, Key] : Original) {
      auto It = RoundTrip.find(Pair);
      ASSERT_NE(It, RoundTrip.end()) << "seed " << Seed << " " << Pair;
      EXPECT_EQ(It->second, Key) << "seed " << Seed << " " << Pair;
    }
    EXPECT_EQ(Svc.currentEpoch(), 3u);
  }
}
