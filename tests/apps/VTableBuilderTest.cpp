//===- VTableBuilderTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/apps/VTableBuilder.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

Hierarchy makeVirtualCallHierarchy() {
  // struct Shape { virtual draw; virtual area; };
  // struct Circle : Shape { draw; };           (overrides draw)
  // struct Square : Shape { draw; area; };
  // struct Logged : virtual Shape { draw; };
  // struct LoggedCircle : Logged, virtual Shape {};
  HierarchyBuilder B;
  B.addClass("Shape").withVirtualMember("draw").withVirtualMember("area");
  B.addClass("Circle").withBase("Shape").withMember("draw");
  B.addClass("Square").withBase("Shape").withMember("draw").withMember(
      "area");
  B.addClass("Logged").withVirtualBase("Shape").withMember("draw");
  B.addClass("LoggedCircle").withBase("Logged").withVirtualBase("Shape");
  return std::move(B).build();
}

} // namespace

TEST(VTableBuilderTest, SlotsForAllVirtualNames) {
  Hierarchy H = makeVirtualCallHierarchy();
  DominanceLookupEngine Engine(H);
  VTableBuilder Builder(H, Engine);

  VTable Table = Builder.build(H.findClass("Circle"));
  ASSERT_EQ(Table.Slots.size(), 2u);
  EXPECT_EQ(H.spelling(Table.Slots[0].Member), "draw");
  EXPECT_EQ(H.spelling(Table.Slots[1].Member), "area");
}

TEST(VTableBuilderTest, FinalOverriderIsTheLookupResult) {
  Hierarchy H = makeVirtualCallHierarchy();
  DominanceLookupEngine Engine(H);
  VTableBuilder Builder(H, Engine);

  VTable Circle = Builder.build(H.findClass("Circle"));
  EXPECT_EQ(Circle.Slots[0].Overrider.DefiningClass, H.findClass("Circle"))
      << "draw overridden";
  EXPECT_EQ(Circle.Slots[1].Overrider.DefiningClass, H.findClass("Shape"))
      << "area inherited";

  VTable Base = Builder.build(H.findClass("Shape"));
  for (const VTable::Slot &S : Base.Slots)
    EXPECT_EQ(S.Overrider.DefiningClass, H.findClass("Shape"));
}

TEST(VTableBuilderTest, VirtualDiamondOverriderThroughVirtualBase) {
  Hierarchy H = makeVirtualCallHierarchy();
  DominanceLookupEngine Engine(H);
  VTableBuilder Builder(H, Engine);

  VTable LC = Builder.build(H.findClass("LoggedCircle"));
  ASSERT_EQ(LC.Slots.size(), 2u);
  EXPECT_EQ(LC.Slots[0].Overrider.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(LC.Slots[0].Overrider.DefiningClass, H.findClass("Logged"))
      << "Logged::draw dominates Shape::draw through the virtual base";
  EXPECT_FALSE(LC.hasAmbiguousSlot());
}

TEST(VTableBuilderTest, AmbiguousFinalOverriderIsReported) {
  // Two sibling overriders meeting in a virtual diamond: no unique
  // final overrider for draw.
  HierarchyBuilder B;
  B.addClass("Shape").withVirtualMember("draw");
  B.addClass("Red").withVirtualBase("Shape").withMember("draw");
  B.addClass("Blue").withVirtualBase("Shape").withMember("draw");
  B.addClass("RedBlue").withBase("Red").withBase("Blue");
  Hierarchy H = std::move(B).build();

  DominanceLookupEngine Engine(H);
  VTableBuilder Builder(H, Engine);
  VTable Table = Builder.build(H.findClass("RedBlue"));
  ASSERT_EQ(Table.Slots.size(), 1u);
  EXPECT_EQ(Table.Slots[0].Overrider.Status, LookupStatus::Ambiguous);
  EXPECT_TRUE(Table.hasAmbiguousSlot());
}

TEST(VTableBuilderTest, NoVirtualMembersNoSlots) {
  Hierarchy H = makeFigure1(); // m is a plain member everywhere
  DominanceLookupEngine Engine(H);
  VTableBuilder Builder(H, Engine);
  EXPECT_TRUE(Builder.build(H.findClass("E")).Slots.empty());
}

TEST(VTableBuilderTest, BuildAllCoversEveryClass) {
  Workload W = makeIostreamLike();
  DominanceLookupEngine Engine(W.H);
  VTableBuilder Builder(W.H, Engine);
  std::vector<VTable> Tables = Builder.buildAll();
  EXPECT_EQ(Tables.size(), W.H.numClasses());
  // iostream-like: both hooks are virtual and visible in basic_iostream.
  for (const VTable &T : Tables)
    if (T.Class == W.H.findClass("basic_iostream"))
      EXPECT_EQ(T.Slots.size(), 2u);
}
