//===- HierarchySlicerTest.cpp ---------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The Tip-et-al.-style slicing application: the slice must preserve the
/// result of every queried lookup, including its ambiguity status and
/// resolved subobject (compared by class-name rendering, since the slice
/// renumbers ids).
///
//===----------------------------------------------------------------------===//

#include "memlook/apps/HierarchySlicer.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// Renders a result with names only, portable across renumbered ids.
std::string renderForComparison(const Hierarchy &H, const LookupResult &R) {
  std::string Out = lookupStatusLabel(R.Status);
  if (R.Status != LookupStatus::Unambiguous)
    return Out;
  Out += ':';
  Out += H.className(R.DefiningClass);
  if (!R.SharedStatic && R.Subobject) {
    Out += ':';
    Out += formatSubobjectKey(H, *R.Subobject);
  }
  return Out;
}

void expectSlicePreserves(const Hierarchy &H,
                          const std::vector<LookupQuery> &Queries) {
  SliceResult Slice = sliceHierarchy(H, Queries);
  DominanceLookupEngine Original(const_cast<const Hierarchy &>(H));
  DominanceLookupEngine Sliced(Slice.Sliced);

  for (const LookupQuery &Q : Queries) {
    LookupResult Before = Original.lookup(Q.Class, Q.Member);
    ClassId NewClass = Slice.Sliced.findClass(H.className(Q.Class));
    ASSERT_TRUE(NewClass.isValid());
    Symbol NewMember = Slice.Sliced.findName(H.spelling(Q.Member));
    LookupResult After =
        NewMember.isValid()
            ? Sliced.lookup(NewClass, NewMember)
            : LookupResult::notFound();
    EXPECT_EQ(renderForComparison(H, Before),
              renderForComparison(Slice.Sliced, After))
        << H.className(Q.Class) << "::" << H.spelling(Q.Member);
  }
}

} // namespace

TEST(HierarchySlicerTest, PreservesFigure3Queries) {
  Hierarchy H = makeFigure3();
  std::vector<LookupQuery> Queries{
      {H.findClass("H"), H.findName("foo")},
      {H.findClass("H"), H.findName("bar")},
      {H.findClass("F"), H.findName("bar")},
  };
  expectSlicePreserves(H, Queries);
}

TEST(HierarchySlicerTest, DropsUnrelatedClasses) {
  Hierarchy H = makeFigure3();
  // Querying only F: G and H are not needed.
  SliceResult Slice = sliceHierarchy(
      H, {{H.findClass("F"), H.findName("bar")}});
  EXPECT_FALSE(Slice.Sliced.findClass("G").isValid());
  EXPECT_FALSE(Slice.Sliced.findClass("H").isValid());
  EXPECT_TRUE(Slice.Sliced.findClass("F").isValid());
  EXPECT_TRUE(Slice.Sliced.findClass("D").isValid());
  EXPECT_LT(Slice.Sliced.numClasses(), H.numClasses());
}

TEST(HierarchySlicerTest, DropsUnqueriedMembers) {
  Hierarchy H = makeFigure3();
  SliceResult Slice = sliceHierarchy(
      H, {{H.findClass("H"), H.findName("bar")}});
  // foo declarations are gone; bar declarations survive.
  EXPECT_EQ(Slice.Sliced.allMemberNames().size(), 1u);
  EXPECT_LT(Slice.SlicedMemberDecls, Slice.OriginalMemberDecls);
  ClassId G = Slice.Sliced.findClass("G");
  ASSERT_TRUE(G.isValid());
  EXPECT_TRUE(
      Slice.Sliced.declaresMember(G, Slice.Sliced.findName("bar")));
}

TEST(HierarchySlicerTest, KeepsEdgeAttributes) {
  Hierarchy H = makeFigure3();
  SliceResult Slice = sliceHierarchy(
      H, {{H.findClass("H"), H.findName("foo")}});
  const Hierarchy &S = Slice.Sliced;
  EXPECT_EQ(*S.edgeKind(S.findClass("D"), S.findClass("F")),
            InheritanceKind::Virtual);
  EXPECT_EQ(*S.edgeKind(S.findClass("A"), S.findClass("B")),
            InheritanceKind::NonVirtual);
}

TEST(HierarchySlicerTest, PreservesOnRandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 20;
  Params.VirtualEdgeChance = 0.35;
  Params.StaticChance = 0.3;
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed * 577 + 23);
    std::vector<LookupQuery> Queries;
    for (ClassId C : W.QueryClasses)
      if (C.index() % 4 == 1)
        for (Symbol M : W.QueryMembers)
          Queries.push_back(LookupQuery{C, M});
    if (Queries.empty())
      continue;
    expectSlicePreserves(W.H, Queries);
  }
}

TEST(HierarchySlicerTest, SliceOfEverythingIsIdentityOnClasses) {
  Hierarchy H = makeFigure9();
  std::vector<LookupQuery> Queries;
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    Queries.push_back(LookupQuery{ClassId(Idx), H.findName("m")});
  SliceResult Slice = sliceHierarchy(H, Queries);
  EXPECT_EQ(Slice.Sliced.numClasses(), H.numClasses());
}

TEST(HierarchySlicerTest, PreservesUsingDeclarations) {
  HierarchyBuilder B;
  B.addClass("A").withMember("f");
  B.addClass("L").withBase("A");
  B.addClass("R").withBase("A");
  B.addClass("D").withBase("L").withBase("R").withUsing("L", "f");
  Hierarchy H = std::move(B).build();

  SliceResult Slice =
      sliceHierarchy(H, {{H.findClass("D"), H.findName("f")}});
  const Hierarchy &S = Slice.Sliced;
  const MemberDecl *Decl =
      S.declaredMember(S.findClass("D"), S.findName("f"));
  ASSERT_NE(Decl, nullptr);
  ASSERT_TRUE(Decl->isUsingDeclaration());
  EXPECT_EQ(S.className(Decl->UsingFrom), "L");

  // And the repaired lookup survives the slice.
  DominanceLookupEngine Engine(Slice.Sliced);
  LookupResult R = Engine.lookup(S.findClass("D"), "f");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, S.findClass("D"));
}

TEST(HierarchySlicerTest, PreservesOnRandomHierarchiesWithUsing) {
  RandomHierarchyParams Params;
  Params.NumClasses = 18;
  Params.UsingChance = 0.5;
  Params.StaticChance = 0.25;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed * 911 + 4);
    std::vector<LookupQuery> Queries;
    for (ClassId C : W.QueryClasses)
      if (C.index() % 3 == 0)
        for (Symbol M : W.QueryMembers)
          Queries.push_back(LookupQuery{C, M});
    if (!Queries.empty())
      expectSlicePreserves(W.H, Queries);
  }
}

TEST(HierarchySlicerTest, ReportsStatistics) {
  Hierarchy H = makeFigure3();
  SliceResult Slice = sliceHierarchy(
      H, {{H.findClass("F"), H.findName("bar")}});
  EXPECT_EQ(Slice.OriginalClassCount, H.numClasses());
  EXPECT_EQ(Slice.KeptClasses.size(), Slice.Sliced.numClasses());
  EXPECT_EQ(Slice.OriginalMemberDecls, H.numMemberDecls());
}
