//===- ObjectLayoutTest.cpp ------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/apps/ObjectLayout.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/workload/Generators.h"
#include "memlook/subobject/SubobjectGraph.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace memlook;
using namespace memlook::testutil;

TEST(ObjectLayoutTest, EveryFigure1SubobjectIsPlacedOnce) {
  Hierarchy H = makeFigure1();
  ClassId E = H.findClass("E");
  ObjectLayout Layout = computeObjectLayout(H, E);

  auto Graph = SubobjectGraph::build(H, E);
  ASSERT_TRUE(Graph);
  EXPECT_EQ(Layout.SubobjectOffsets.size(), Graph->numSubobjects());

  std::set<SubobjectKey> Placed;
  for (const auto &[Key, Offset] : Layout.SubobjectOffsets) {
    EXPECT_TRUE(Graph->find(Key).isValid())
        << "placed key " << formatSubobjectKey(H, Key)
        << " is not a subobject";
    EXPECT_TRUE(Placed.insert(Key).second) << "duplicate placement";
  }
}

TEST(ObjectLayoutTest, VirtualBasePlacedOnceAtTheTail) {
  Hierarchy H = makeFigure2();
  ClassId E = H.findClass("E");
  ObjectLayout Layout = computeObjectLayout(H, E);

  // The shared B (and its A) appear exactly once.
  auto Graph = SubobjectGraph::build(H, E);
  ASSERT_TRUE(Graph);
  EXPECT_EQ(Layout.SubobjectOffsets.size(), Graph->numSubobjects());

  // The virtual B part sits after every non-virtual part.
  auto BOffset =
      Layout.subobjectOffset(SubobjectKey{{H.findClass("B")}, E});
  ASSERT_TRUE(BOffset.has_value());
  auto COffset = Layout.subobjectOffset(
      SubobjectKey{{H.findClass("C"), E}, E});
  auto DOffset = Layout.subobjectOffset(
      SubobjectKey{{H.findClass("D"), E}, E});
  ASSERT_TRUE(COffset && DOffset);
  EXPECT_GT(*BOffset, *COffset);
  EXPECT_GT(*BOffset, *DOffset);
}

TEST(ObjectLayoutTest, ReplicatedBasesGetDistinctOffsets) {
  Hierarchy H = makeFigure1();
  ClassId E = H.findClass("E");
  ObjectLayout Layout = computeObjectLayout(H, E);

  ClassId A = H.findClass("A"), B = H.findClass("B"), C = H.findClass("C"),
          D = H.findClass("D");
  auto AViaC = Layout.subobjectOffset(SubobjectKey{{A, B, C, E}, E});
  auto AViaD = Layout.subobjectOffset(SubobjectKey{{A, B, D, E}, E});
  ASSERT_TRUE(AViaC && AViaD);
  EXPECT_NE(*AViaC, *AViaD);
}

TEST(ObjectLayoutTest, MemberOffsetComposesWithLookup) {
  Hierarchy H = makeFigure2();
  ClassId E = H.findClass("E");
  ObjectLayout Layout = computeObjectLayout(H, E);

  DominanceLookupEngine Engine(H);
  Symbol M = H.findName("m");
  LookupResult R = Engine.lookup(E, M);
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);

  std::optional<uint64_t> Offset = Layout.memberOffset(H, R, M);
  ASSERT_TRUE(Offset.has_value());
  // D::m lives in the D non-virtual part.
  auto DOffset = Layout.subobjectOffset(
      SubobjectKey{{H.findClass("D"), E}, E});
  ASSERT_TRUE(DOffset.has_value());
  EXPECT_EQ(*Offset, *DOffset);
}

TEST(ObjectLayoutTest, AmbiguousLookupHasNoOffset) {
  Hierarchy H = makeFigure1();
  ClassId E = H.findClass("E");
  ObjectLayout Layout = computeObjectLayout(H, E);
  DominanceLookupEngine Engine(H);
  Symbol M = H.findName("m");
  EXPECT_FALSE(Layout.memberOffset(H, Engine.lookup(E, M), M).has_value());
}

TEST(ObjectLayoutTest, StaticMembersHaveNoObjectOffset) {
  HierarchyBuilder B;
  B.addClass("A").withStaticMember("s").withMember("f");
  Hierarchy H = std::move(B).build();
  ClassId A = H.findClass("A");
  ObjectLayout Layout = computeObjectLayout(H, A);

  DominanceLookupEngine Engine(H);
  Symbol S = H.findName("s");
  Symbol F = H.findName("f");
  EXPECT_FALSE(Layout.memberOffset(H, Engine.lookup(A, S), S).has_value());
  EXPECT_TRUE(Layout.memberOffset(H, Engine.lookup(A, F), F).has_value());
}

TEST(ObjectLayoutTest, SizeIsMonotoneInContent) {
  HierarchyBuilder B;
  B.addClass("Small").withMember("a");
  B.addClass("Big").withBase("Small").withMember("b").withMember("c");
  Hierarchy H = std::move(B).build();
  uint64_t Small = computeObjectLayout(H, H.findClass("Small")).Size;
  uint64_t Big = computeObjectLayout(H, H.findClass("Big")).Size;
  EXPECT_GT(Big, Small);
}

TEST(ObjectLayoutTest, VptrReservedForVirtualMembers) {
  HierarchyBuilder B;
  B.addClass("Plain").withMember("a");
  B.addClass("Poly").withVirtualMember("a");
  Hierarchy H = std::move(B).build();
  uint64_t Plain = computeObjectLayout(H, H.findClass("Plain")).Size;
  uint64_t Poly = computeObjectLayout(H, H.findClass("Poly")).Size;
  EXPECT_EQ(Poly, Plain + 8) << "one vptr header";
}

TEST(ObjectLayoutTest, ResolvedMemberOffsetsNeverCollide) {
  // Property: two lookups resolving to different (defining class,
  // member, subobject) triples must land on different byte offsets -
  // i.e. the layout never aliases distinct storage.
  auto CheckHierarchy = [](const Hierarchy &H, const char *Tag) {
    DominanceLookupEngine Engine(const_cast<const Hierarchy &>(H));
    for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
      ClassId Complete(Idx);
      ObjectLayout Layout = computeObjectLayout(H, Complete);
      std::map<uint64_t, std::string> SeenOffsets;
      for (Symbol Member : H.allMemberNames()) {
        LookupResult R = Engine.lookup(Complete, Member);
        if (R.Status != LookupStatus::Unambiguous)
          continue;
        std::optional<uint64_t> Offset = Layout.memberOffset(H, R, Member);
        if (!Offset)
          continue; // static member
        std::string Identity =
            formatSubobjectKey(H, *R.Subobject) + "::" +
            std::string(H.spelling(Member));
        auto [It, Inserted] = SeenOffsets.emplace(*Offset, Identity);
        EXPECT_TRUE(Inserted || It->second == Identity)
            << Tag << ": offset " << *Offset << " used by " << It->second
            << " and " << Identity << " in "
            << H.className(Complete);
      }
      EXPECT_LE(Layout.SubobjectOffsets.back().second, Layout.Size);
    }
  };

  CheckHierarchy(makeFigure2(), "figure2");
  CheckHierarchy(makeFigure9(), "figure9");
  CheckHierarchy(makeIostreamLike().H, "iostream");

  RandomHierarchyParams Params;
  Params.NumClasses = 16;
  Params.VirtualEdgeChance = 0.4;
  for (uint64_t Seed = 210; Seed != 225; ++Seed)
    CheckHierarchy(makeRandomHierarchy(Params, Seed).H, "random");
}

TEST(ObjectLayoutTest, EmptyClassHasNonZeroSize) {
  HierarchyBuilder B;
  B.addClass("Empty");
  Hierarchy H = std::move(B).build();
  EXPECT_GT(computeObjectLayout(H, H.findClass("Empty")).Size, 0u);
}
