//===- CompleteObjectVTablesTest.cpp ----------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/apps/CompleteObjectVTables.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// struct Shape { virtual draw; };
/// struct Circle : Shape { draw; };          - overrides
/// struct Widget { virtual paint; };
/// struct Button : Widget, Circle { draw; paint; }
Hierarchy makeMultiBasePoly() {
  HierarchyBuilder B;
  B.addClass("Shape").withVirtualMember("draw");
  B.addClass("Circle").withBase("Shape").withMember("draw");
  B.addClass("Widget").withVirtualMember("paint");
  B.addClass("Button")
      .withBase("Widget")
      .withBase("Circle")
      .withMember("draw")
      .withMember("paint");
  return std::move(B).build();
}

const CompleteObjectVTables::SubobjectVTable *
findTable(const CompleteObjectVTables &Tables, const Hierarchy &H,
          const std::string &KeyText) {
  for (const auto &Table : Tables.Tables)
    if (formatSubobjectKey(H, Table.Key) == KeyText)
      return &Table;
  return nullptr;
}

} // namespace

TEST(CompleteObjectVTablesTest, EveryPolymorphicSubobjectGetsATable) {
  Hierarchy H = makeMultiBasePoly();
  DominanceLookupEngine Engine(H);
  CompleteObjectVTables Tables =
      buildCompleteObjectVTables(H, Engine, H.findClass("Button"));

  // Button, Widget-in-Button, Circle-in-Button, Shape-in-Circle all see
  // virtual members.
  EXPECT_EQ(Tables.Tables.size(), 4u);
  EXPECT_NE(findTable(Tables, H, "Button"), nullptr);
  EXPECT_NE(findTable(Tables, H, "Widget.Button"), nullptr);
  EXPECT_NE(findTable(Tables, H, "Circle.Button"), nullptr);
  EXPECT_NE(findTable(Tables, H, "Shape.Circle.Button"), nullptr);
}

TEST(CompleteObjectVTablesTest, SlotsDispatchToFinalOverriders) {
  Hierarchy H = makeMultiBasePoly();
  DominanceLookupEngine Engine(H);
  ClassId Button = H.findClass("Button");
  CompleteObjectVTables Tables =
      buildCompleteObjectVTables(H, Engine, Button);

  for (const auto &Table : Tables.Tables)
    for (const auto &Slot : Table.Slots) {
      ASSERT_EQ(Slot.Overrider.Status, LookupStatus::Unambiguous);
      EXPECT_EQ(Slot.Overrider.DefiningClass, Button)
          << "Button overrides both draw and paint";
    }
}

TEST(CompleteObjectVTablesTest, NonPrimaryBaseNeedsThunk) {
  Hierarchy H = makeMultiBasePoly();
  DominanceLookupEngine Engine(H);
  ClassId Button = H.findClass("Button");
  CompleteObjectVTables Tables =
      buildCompleteObjectVTables(H, Engine, Button);

  // The Button subobject sits at offset 0: its own slots need no thunk.
  const auto *Own = &Tables.Tables.front();
  EXPECT_EQ(formatSubobjectKey(H, Own->Key), "Button");
  for (const auto &Slot : Own->Slots) {
    EXPECT_EQ(Slot.ThisAdjustment, 0);
    EXPECT_FALSE(Slot.NeedsThunk);
  }

  // The Circle subobject is laid out at a nonzero offset (after
  // Widget); dispatching draw through a Circle* must adjust this back
  // to the Button subobject.
  const auto *Circle = findTable(
      Tables, H,
      formatSubobjectKey(
          H, SubobjectKey{{H.findClass("Circle"), Button}, Button}));
  ASSERT_NE(Circle, nullptr);
  ASSERT_GT(Circle->Offset, 0u);
  for (const auto &Slot : Circle->Slots)
    if (H.spelling(Slot.Member) == "draw") {
      EXPECT_TRUE(Slot.NeedsThunk);
      EXPECT_EQ(Slot.ThisAdjustment,
                -static_cast<int64_t>(Circle->Offset));
    }
  EXPECT_GT(Tables.thunkCount(), 0u);
}

TEST(CompleteObjectVTablesTest, VirtualDiamondSharedBaseTable) {
  // The iostream shape: the shared basic_ios subobject's table must
  // dispatch the hooks into the istream/ostream parts with adjustments.
  Workload W = makeIostreamLike();
  DominanceLookupEngine Engine(W.H);
  ClassId FStream = W.H.findClass("basic_fstream");
  CompleteObjectVTables Tables =
      buildCompleteObjectVTables(W.H, Engine, FStream);

  uint64_t TablesWithSlots = 0;
  for (const auto &Table : Tables.Tables) {
    TablesWithSlots += !Table.Slots.empty();
    for (const auto &Slot : Table.Slots) {
      ASSERT_EQ(Slot.Overrider.Status, LookupStatus::Unambiguous);
      // underflow_hook's final overrider is basic_istream; overflow's
      // is basic_ostream.
      std::string Member(W.H.spelling(Slot.Member));
      if (Member == "underflow_hook")
        EXPECT_EQ(Slot.Overrider.DefiningClass,
                  W.H.findClass("basic_istream"));
      if (Member == "overflow_hook")
        EXPECT_EQ(Slot.Overrider.DefiningClass,
                  W.H.findClass("basic_ostream"));
    }
  }
  EXPECT_GT(TablesWithSlots, 2u);
  EXPECT_GT(Tables.thunkCount(), 0u)
      << "cross-part dispatch requires adjustment";
}

TEST(CompleteObjectVTablesTest, AmbiguousOverriderSurfaces) {
  HierarchyBuilder B;
  B.addClass("IFace").withVirtualMember("run");
  B.addClass("ImplA").withVirtualBase("IFace").withMember("run");
  B.addClass("ImplB").withVirtualBase("IFace").withMember("run");
  B.addClass("Broken").withBase("ImplA").withBase("ImplB");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  CompleteObjectVTables Tables =
      buildCompleteObjectVTables(H, Engine, H.findClass("Broken"));
  bool SawAmbiguous = false;
  for (const auto &Table : Tables.Tables)
    for (const auto &Slot : Table.Slots)
      SawAmbiguous |= Slot.Overrider.Status == LookupStatus::Ambiguous;
  EXPECT_TRUE(SawAmbiguous);
}

TEST(CompleteObjectVTablesTest, NoVirtualsNoTables) {
  Hierarchy H = makeFigure1();
  DominanceLookupEngine Engine(H);
  CompleteObjectVTables Tables =
      buildCompleteObjectVTables(H, Engine, H.findClass("E"));
  EXPECT_TRUE(Tables.Tables.empty());
}

TEST(CompleteObjectVTablesTest, CollectVirtualNamesOrderedAndDeduped) {
  Hierarchy H = makeMultiBasePoly();
  std::vector<Symbol> Names =
      collectVirtualMemberNames(H, H.findClass("Button"));
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(H.spelling(Names[0]), "draw");
  EXPECT_EQ(H.spelling(Names[1]), "paint");
}
