//===- Figure8Test.cpp - Experiment E6 (Figures 6 and 7) -------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figures 6 and 7: the red/blue *abstractions* the Figure 8
/// algorithm computes at every node of the Figure 3 hierarchy, for the
/// members foo and bar. (Omega is rendered as "~".)
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace memlook;
using namespace memlook::testutil;

namespace {

using Entry = DominanceLookupEngine::Entry;

class Figure8Test : public ::testing::Test {
protected:
  Figure8Test() : H(makeFigure3()), Engine(H) {}

  Entry entryOf(const char *Class, const char *Member) {
    return Engine.entry(H.findClass(Class), H.findName(Member));
  }

  std::string name(ClassId Id) {
    return Id.isValid() ? std::string(H.className(Id)) : std::string("~");
  }

  /// Renders a red entry as "(L,V)".
  std::string redOf(const char *Class, const char *Member) {
    const Entry &E = entryOf(Class, Member);
    EXPECT_EQ(E.EntryKind, Entry::Kind::Red) << Class << "::" << Member;
    if (E.EntryKind != Entry::Kind::Red)
      return "<not red>";
    return "(" + name(E.DefiningClass) + "," + name(E.RepresentativeV) +
           ")";
  }

  /// Renders a blue entry as the set of its V components (the paper's
  /// blue abstraction; the enriched L components are checked
  /// separately).
  std::set<std::string> blueOf(const char *Class, const char *Member) {
    const Entry &E = entryOf(Class, Member);
    EXPECT_EQ(E.EntryKind, Entry::Kind::Blue) << Class << "::" << Member;
    std::set<std::string> Out;
    for (const auto &Elem : E.Blues)
      Out.insert(name(Elem.LeastVirtual));
    return Out;
  }

  Hierarchy H;
  DominanceLookupEngine Engine;
};

} // namespace

TEST_F(Figure8Test, Figure6FooAbstractions) {
  // Figure 6: A, B, C carry red (A,~); D becomes blue {~}; the blue set
  // crosses the virtual edge D->F as {D}; G and H are red (G,~).
  EXPECT_EQ(redOf("A", "foo"), "(A,~)");
  EXPECT_EQ(redOf("B", "foo"), "(A,~)");
  EXPECT_EQ(redOf("C", "foo"), "(A,~)");
  EXPECT_EQ(blueOf("D", "foo"), (std::set<std::string>{"~"}));
  EXPECT_EQ(blueOf("F", "foo"), (std::set<std::string>{"D"}));
  EXPECT_EQ(redOf("G", "foo"), "(G,~)");
  EXPECT_EQ(redOf("H", "foo"), "(G,~)");
  EXPECT_EQ(entryOf("E", "foo").EntryKind, Entry::Kind::Absent);
}

TEST_F(Figure8Test, Figure7BarAbstractions) {
  // Figure 7: D, E, G generate red definitions; F joins (E,~) and (D,D)
  // into blue {~, D}; at H the red (G,~) kills D but not ~, leaving
  // blue {~}.
  EXPECT_EQ(redOf("D", "bar"), "(D,~)");
  EXPECT_EQ(redOf("E", "bar"), "(E,~)");
  EXPECT_EQ(redOf("G", "bar"), "(G,~)");
  EXPECT_EQ(blueOf("F", "bar"), (std::set<std::string>{"~", "D"}));
  EXPECT_EQ(blueOf("H", "bar"), (std::set<std::string>{"~"}));
  EXPECT_EQ(entryOf("A", "bar").EntryKind, Entry::Kind::Absent);
  EXPECT_EQ(entryOf("B", "bar").EntryKind, Entry::Kind::Absent);
  EXPECT_EQ(entryOf("C", "bar").EntryKind, Entry::Kind::Absent);
}

TEST_F(Figure8Test, BlueElementsRememberTheirDefiningClass) {
  // The enrichment this implementation adds for the static-member rule:
  // each blue element also carries the ldc of the definition it
  // abstracts. At F the bar blues came from D and E.
  const Entry &E = entryOf("F", "bar");
  ASSERT_EQ(E.EntryKind, Entry::Kind::Blue);
  std::set<std::string> Ldcs;
  for (const auto &Elem : E.Blues)
    Ldcs.insert(name(Elem.DefiningClass));
  EXPECT_EQ(Ldcs, (std::set<std::string>{"D", "E"}));
}

TEST_F(Figure8Test, RedEntriesRecordProvenance) {
  // The Via chain reconstructs the full-path triple of Section 4.
  const Entry &EB = entryOf("B", "foo");
  ASSERT_EQ(EB.EntryKind, Entry::Kind::Red);
  EXPECT_EQ(EB.Via, H.findClass("A"));

  const Entry &EG = entryOf("G", "foo");
  ASSERT_EQ(EG.EntryKind, Entry::Kind::Red);
  EXPECT_FALSE(EG.Via.isValid()) << "declared locally";

  const Entry &EH = entryOf("H", "foo");
  ASSERT_EQ(EH.EntryKind, Entry::Kind::Red);
  EXPECT_EQ(EH.Via, H.findClass("G"));
}

TEST_F(Figure8Test, LookupMaterializesWitnessAndKey) {
  LookupResult R = Engine.lookup(H.findClass("H"), H.findName("foo"));
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("G"));
  ASSERT_TRUE(R.Witness.has_value());
  EXPECT_EQ(formatPath(H, *R.Witness), "GH");
  EXPECT_EQ(formatSubobjectKey(H, *R.Subobject), "GH");
}

TEST_F(Figure8Test, LazyModeComputesIdenticalEntries) {
  DominanceLookupEngine Lazy(H, DominanceLookupEngine::Mode::Lazy);
  for (const char *Class : {"A", "B", "C", "D", "E", "F", "G", "H"})
    for (const char *Member : {"foo", "bar"}) {
      const Entry &E1 = Engine.entry(H.findClass(Class), H.findName(Member));
      const Entry &E2 = Lazy.entry(H.findClass(Class), H.findName(Member));
      EXPECT_EQ(E1.EntryKind, E2.EntryKind) << Class << "::" << Member;
      if (E1.EntryKind == Entry::Kind::Red) {
        EXPECT_EQ(E1.DefiningClass, E2.DefiningClass);
        EXPECT_EQ(E1.RepresentativeV, E2.RepresentativeV);
        EXPECT_EQ(E1.RedVs, E2.RedVs);
      }
    }
}

TEST_F(Figure8Test, LazyModeOnlyMaterializesQueriedColumns) {
  DominanceLookupEngine Lazy(H, DominanceLookupEngine::Mode::Lazy);
  EXPECT_EQ(Lazy.stats().EntriesComputed, 0u);
  Lazy.lookup(H.findClass("H"), H.findName("foo"));
  uint64_t AfterFirst = Lazy.stats().EntriesComputed;
  EXPECT_EQ(AfterFirst, H.numClasses()) << "one column";
  Lazy.lookup(H.findClass("F"), H.findName("foo"));
  EXPECT_EQ(Lazy.stats().EntriesComputed, AfterFirst)
      << "same column is memoized";
}

TEST_F(Figure8Test, UnknownMemberIsAbsentEverywhere) {
  Symbol Unknown = H.internName("nosuch");
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    EXPECT_EQ(Engine.entry(ClassId(Idx), Unknown).EntryKind,
              Entry::Kind::Absent);
}
