//===- PropagationTest.cpp - Experiment E5 (Figures 4 and 5) ----------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figures 4 and 5: the per-node reaching-definition sets of
/// the Section 4 propagation algorithm, without killing (the sets *are*
/// Defns up to ~) and with killing (only the paper's surviving red/blue
/// definitions remain; the crossed-out ones are gone).
///
//===----------------------------------------------------------------------===//

#include "memlook/core/NaivePropagationEngine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace memlook;
using namespace memlook::testutil;

namespace {

std::set<std::string> reachingSet(NaivePropagationEngine &Engine,
                                  const Hierarchy &H, const char *Class,
                                  const char *Member) {
  std::set<std::string> Out;
  for (const auto &Def :
       Engine.reachingDefinitions(H.findClass(Class), H.findName(Member)))
    Out.insert(formatSubobjectKey(H, Def.Key));
  return Out;
}

} // namespace

TEST(PropagationTest, Figure4ReachingSetsWithoutKilling) {
  Hierarchy H = makeFigure3();
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Disabled);

  EXPECT_EQ(reachingSet(Engine, H, "A", "foo"),
            (std::set<std::string>{"A"}));
  EXPECT_EQ(reachingSet(Engine, H, "B", "foo"),
            (std::set<std::string>{"AB"}));
  EXPECT_EQ(reachingSet(Engine, H, "C", "foo"),
            (std::set<std::string>{"AC"}));
  // Two definitions reach D: ABD and ACD (the figure's ambiguity at D).
  EXPECT_EQ(reachingSet(Engine, H, "D", "foo"),
            (std::set<std::string>{"ABD", "ACD"}));
  // Across the virtual edge D -> F the fixed part freezes at D.
  EXPECT_EQ(reachingSet(Engine, H, "F", "foo"),
            (std::set<std::string>{"ABD*F", "ACD*F"}));
  // G generates its own definition; without killing the inherited two
  // remain in the set (the figure shows them crossed out only in the
  // killing regime).
  EXPECT_EQ(reachingSet(Engine, H, "G", "foo"),
            (std::set<std::string>{"ABD*G", "ACD*G", "G"}));
  // At H all paths merge: exactly Defns(H, foo) from the paper.
  EXPECT_EQ(reachingSet(Engine, H, "H", "foo"),
            (std::set<std::string>{"ABD*H", "ACD*H", "GH"}));
  // E has no foo at all.
  EXPECT_TRUE(reachingSet(Engine, H, "E", "foo").empty());
}

TEST(PropagationTest, Figure4ReachingSetsWithKilling) {
  Hierarchy H = makeFigure3();
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Enabled);

  // G::foo kills ABDG::foo and ACDG::foo (paper, Section 4 example).
  EXPECT_EQ(reachingSet(Engine, H, "G", "foo"),
            (std::set<std::string>{"G"}));
  // At F nothing dominates: both blue definitions survive.
  EXPECT_EQ(reachingSet(Engine, H, "F", "foo"),
            (std::set<std::string>{"ABD*F", "ACD*F"}));
  // GH dominates ABDFH and ACDFH, so they are killed at H.
  EXPECT_EQ(reachingSet(Engine, H, "H", "foo"),
            (std::set<std::string>{"GH"}));
}

TEST(PropagationTest, Figure5ReachingSetsWithoutKilling) {
  Hierarchy H = makeFigure3();
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Disabled);

  EXPECT_EQ(reachingSet(Engine, H, "D", "bar"),
            (std::set<std::string>{"D"}));
  EXPECT_EQ(reachingSet(Engine, H, "E", "bar"),
            (std::set<std::string>{"E"}));
  EXPECT_EQ(reachingSet(Engine, H, "F", "bar"),
            (std::set<std::string>{"D*F", "EF"}));
  EXPECT_EQ(reachingSet(Engine, H, "G", "bar"),
            (std::set<std::string>{"D*G", "G"}));
  // Defns(H, bar) = { {EFH}, {DFH,DGH}, {GH} } from the paper.
  EXPECT_EQ(reachingSet(Engine, H, "H", "bar"),
            (std::set<std::string>{"EFH", "D*H", "GH"}));
}

TEST(PropagationTest, Figure5ReachingSetsWithKilling) {
  Hierarchy H = makeFigure3();
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Enabled);

  // lookup(F, bar) is ambiguous: both definitions are blue and both are
  // propagated (the paper stresses blue EF must flow on to H).
  EXPECT_EQ(reachingSet(Engine, H, "F", "bar"),
            (std::set<std::string>{"D*F", "EF"}));
  EXPECT_EQ(reachingSet(Engine, H, "G", "bar"),
            (std::set<std::string>{"G"}));
  // At H, GH kills the D definition but EFH remains: still ambiguous.
  EXPECT_EQ(reachingSet(Engine, H, "H", "bar"),
            (std::set<std::string>{"EFH", "GH"}));
}

TEST(PropagationTest, BlueDefinitionsMustBePropagated) {
  // The paper's central subtlety (Section 4): if blue EF were killed at
  // F, lookup(H, bar) would wrongly appear unambiguous. Check the final
  // verdicts under both policies.
  Hierarchy H = makeFigure3();
  for (auto Policy : {NaivePropagationEngine::Killing::Disabled,
                      NaivePropagationEngine::Killing::Enabled}) {
    NaivePropagationEngine Engine(H, Policy);
    EXPECT_EQ(Engine.lookup(H.findClass("H"), "bar").Status,
              LookupStatus::Ambiguous);
    EXPECT_EQ(Engine.lookup(H.findClass("H"), "foo").Status,
              LookupStatus::Unambiguous);
  }
}

TEST(PropagationTest, KillingNeverChangesLookupResults) {
  // Corollary 1 in action on the whole Figure 3 table.
  Hierarchy H = makeFigure3();
  NaivePropagationEngine Full(H, NaivePropagationEngine::Killing::Disabled);
  NaivePropagationEngine Killed(H, NaivePropagationEngine::Killing::Enabled);
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    for (Symbol Member : H.allMemberNames()) {
      LookupResult A = Full.lookup(ClassId(Idx), Member);
      LookupResult B = Killed.lookup(ClassId(Idx), Member);
      EXPECT_EQ(comparisonKey(H, A), comparisonKey(H, B))
          << H.className(ClassId(Idx)) << "::" << H.spelling(Member);
    }
}

TEST(PropagationTest, OverflowOnExplosiveHierarchies) {
  // Without killing, the propagation engine materializes every
  // definition; 18 stacked non-virtual diamonds exceed a small budget.
  HierarchyBuilder B;
  B.addClass("J0").withMember("m");
  for (uint32_t I = 1; I <= 18; ++I) {
    std::string Below = "J" + std::to_string(I - 1);
    B.addClass("L" + std::to_string(I)).withBase(Below);
    B.addClass("R" + std::to_string(I)).withBase(Below);
    B.addClass("J" + std::to_string(I))
        .withBase("L" + std::to_string(I))
        .withBase("R" + std::to_string(I));
  }
  Hierarchy H = std::move(B).build();
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Disabled,
                                /*MaxDefsPerClass=*/10000);
  EXPECT_EQ(Engine.lookup(H.findClass("J18"), "m").Status,
            LookupStatus::Overflow);
  EXPECT_TRUE(Engine.overflowed(H.findName("m")));
}
