//===- TableStatisticsTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/TableStatistics.h"

#include "memlook/subobject/SubobjectCount.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(TableStatisticsTest, Figure3Counts) {
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Engine(H);
  TableStatistics Stats = computeTableStatistics(H, Engine);

  EXPECT_EQ(Stats.Classes, 8u);
  EXPECT_EQ(Stats.Edges, 9u);
  EXPECT_EQ(Stats.MemberNames, 2u);
  EXPECT_EQ(Stats.Pairs, 16u);
  // foo: red at A,B,C,G,H; blue at D,F; absent at E.
  // bar: red at D,E,G; blue at F,H; absent at A,B,C.
  EXPECT_EQ(Stats.UnambiguousPairs, 8u);
  EXPECT_EQ(Stats.AmbiguousPairs, 4u);
  EXPECT_EQ(Stats.NotFoundPairs, 4u);
  EXPECT_EQ(Stats.SharedStaticPairs, 0u);
  EXPECT_GE(Stats.MaxBlueSetSize, 2u);
}

TEST(TableStatisticsTest, PartitionAlwaysSumsToPairs) {
  RandomHierarchyParams Params;
  Params.NumClasses = 25;
  Params.StaticChance = 0.3;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed * 7919);
    DominanceLookupEngine Engine(W.H);
    TableStatistics Stats = computeTableStatistics(W.H, Engine);
    EXPECT_EQ(Stats.UnambiguousPairs + Stats.AmbiguousPairs +
                  Stats.NotFoundPairs,
              Stats.Pairs);
    EXPECT_LE(Stats.SharedStaticPairs, Stats.UnambiguousPairs);
  }
}

TEST(TableStatisticsTest, SubobjectAggregatesSaturate) {
  Workload W = makeNonVirtualDiamondStack(70);
  DominanceLookupEngine Engine(W.H);
  TableStatistics Stats = computeTableStatistics(W.H, Engine);
  EXPECT_EQ(Stats.MaxSubobjects, UINT64_MAX);
  EXPECT_EQ(Stats.TotalSubobjects, UINT64_MAX);
  // Ties at the saturation cap keep the first class encountered, so the
  // reported class is *a* saturating one, not necessarily the top.
  ASSERT_TRUE(Stats.MaxSubobjectsClass.isValid());
  EXPECT_EQ(countSubobjects(W.H, Stats.MaxSubobjectsClass), UINT64_MAX);
}

TEST(TableStatisticsTest, FanMaxBlueSetGrowsWithArms) {
  Workload W = makeAmbiguityFan(12);
  DominanceLookupEngine Engine(W.H);
  TableStatistics Stats = computeTableStatistics(W.H, Engine);
  EXPECT_EQ(Stats.MaxBlueSetSize, 12u);
  EXPECT_EQ(W.H.className(Stats.MaxBlueSetClass), "C11");
}

TEST(TableStatisticsTest, FormattingMentionsTheEssentials) {
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Engine(H);
  std::string Report =
      formatTableStatistics(H, computeTableStatistics(H, Engine));
  EXPECT_NE(Report.find("classes 8"), std::string::npos);
  EXPECT_NE(Report.find("ambiguous"), std::string::npos);
  EXPECT_NE(Report.find("largest blue set"), std::string::npos);
  EXPECT_NE(Report.find("subobjects"), std::string::npos);
}
