//===- OverflowBehaviorTest.cpp ---------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Budget edges: engines with worst-case-exponential data structures
/// must degrade to an explicit Overflow status - never hang, crash, or
/// silently answer wrong - and the Figure 8 engine must keep answering
/// the same queries exactly.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/GxxBfsEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"
#include "memlook/subobject/SubobjectCount.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(OverflowBehaviorTest, BudgetExactlyAtCountSucceeds) {
  Workload W = makeNonVirtualDiamondStack(6);
  ClassId Top = W.QueryClasses.front();
  uint64_t Needed = countSubobjects(W.H, Top);
  EXPECT_TRUE(SubobjectGraph::build(W.H, Top, Needed).has_value());
  EXPECT_FALSE(SubobjectGraph::build(W.H, Top, Needed - 1).has_value());
}

TEST(OverflowBehaviorTest, ReferenceEngineOverflowIsPerCompleteClass) {
  // The budget binds per complete-object type: a huge class overflows,
  // a small one in the same hierarchy still answers.
  Workload W = makeNonVirtualDiamondStack(16);
  SubobjectLookupEngine Engine(W.H, /*MaxSubobjects=*/256);
  Symbol M = W.QueryMembers.front();

  EXPECT_EQ(Engine.lookup(W.H.findClass("J16"), M).Status,
            LookupStatus::Overflow);
  LookupResult Small = Engine.lookup(W.H.findClass("J3"), M);
  EXPECT_NE(Small.Status, LookupStatus::Overflow)
      << "J3 has only " << countSubobjects(W.H, W.H.findClass("J3"))
      << " subobjects";
}

TEST(OverflowBehaviorTest, GxxEngineShortCircuitBeatsOverflow) {
  // A class declaring the member itself answers without touching the
  // subobject graph, even when the graph would overflow.
  Workload W = makeNonVirtualDiamondStack(16, /*RedeclareAtJoins=*/true);
  GxxBfsEngine Engine(W.H, /*MaxSubobjects=*/64);
  LookupResult R = Engine.lookup(W.H.findClass("J16"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, W.H.findClass("J16"));
  EXPECT_EQ(Engine.lookup(W.H.findClass("L16"), "m").Status,
            LookupStatus::Overflow);
}

TEST(OverflowBehaviorTest, PropagationOverflowIsPerMemberColumn) {
  HierarchyBuilder B;
  B.addClass("Apex").withMember("wide");
  for (uint32_t I = 1; I <= 14; ++I) {
    std::string Below = I == 1 ? "Apex" : "J" + std::to_string(I - 1);
    B.addClass("L" + std::to_string(I)).withBase(Below);
    B.addClass("R" + std::to_string(I)).withBase(Below);
    B.addClass("J" + std::to_string(I))
        .withBase("L" + std::to_string(I))
        .withBase("R" + std::to_string(I));
  }
  // A second member declared only at the top: its column is tiny.
  B.getClass("J14").withMember("narrow");
  Hierarchy H = std::move(B).build();

  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Disabled,
                                /*MaxDefsPerClass=*/1000);
  EXPECT_EQ(Engine.lookup(H.findClass("J14"), "wide").Status,
            LookupStatus::Overflow);
  EXPECT_EQ(Engine.lookup(H.findClass("J14"), "narrow").Status,
            LookupStatus::Unambiguous)
      << "overflow of one member's column must not poison another's";
}

TEST(OverflowBehaviorTest, KillingAvoidsTheOverflowNaiveHits) {
  // With joins redeclaring the member, every replicated definition is
  // dominated: killing keeps singleton sets while the naive variant
  // still materializes the exponential replication and overflows.
  // (Without redeclaration killing would NOT help - the replicated
  // definitions are all maximal - which KillingShrinksOrKeepsReachingSets
  // already demonstrates.)
  Workload W = makeNonVirtualDiamondStack(14, /*RedeclareAtJoins=*/true);
  ClassId L14 = W.H.findClass("L14");
  Symbol M = W.QueryMembers.front();

  NaivePropagationEngine Naive(W.H,
                               NaivePropagationEngine::Killing::Disabled,
                               /*MaxDefsPerClass=*/1000);
  EXPECT_EQ(Naive.lookup(L14, M).Status, LookupStatus::Overflow);

  NaivePropagationEngine Killing(W.H,
                                 NaivePropagationEngine::Killing::Enabled,
                                 /*MaxDefsPerClass=*/1000);
  LookupResult R = Killing.lookup(L14, M);
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, W.H.findClass("J13"));
}

TEST(OverflowBehaviorTest, Figure8NeverOverflows) {
  // The point of the paper: 64 stacked diamonds (2^64-scale subobject
  // graph, beyond any budget) and the Figure 8 table still answers
  // every query.
  Workload W = makeNonVirtualDiamondStack(64, /*RedeclareAtJoins=*/true);
  DominanceLookupEngine Engine(W.H);
  for (uint32_t Idx = 0; Idx != W.H.numClasses(); ++Idx) {
    LookupResult R = Engine.lookup(ClassId(Idx), W.QueryMembers.front());
    EXPECT_NE(R.Status, LookupStatus::Overflow);
    EXPECT_NE(R.Status, LookupStatus::NotFound);
  }
  EXPECT_EQ(countSubobjects(W.H, W.QueryClasses.front()), UINT64_MAX)
      << "the saturating counter confirms the scale";
}
