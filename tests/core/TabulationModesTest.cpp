//===- TabulationModesTest.cpp - Section 5's tabulation variants -----------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Section 5 describes eager tabulation and a memoizing lazy variant
/// ("a request for lookup[C,m] will recursively invoke lookup[B,m] for
/// every direct base class B of C if necessary ... this will not worsen
/// the complexity"). All three disciplines must produce identical
/// entries; the lazy ones must do strictly bounded work.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

using Mode = DominanceLookupEngine::Mode;

void expectAllModesAgree(const Hierarchy &H, const char *Tag) {
  DominanceLookupEngine Eager(H, Mode::Eager);
  DominanceLookupEngine Lazy(H, Mode::Lazy);
  DominanceLookupEngine Recursive(H, Mode::LazyRecursive);
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    for (Symbol Member : H.allMemberNames()) {
      LookupResult A = Eager.lookup(ClassId(Idx), Member);
      LookupResult B = Lazy.lookup(ClassId(Idx), Member);
      LookupResult C = Recursive.lookup(ClassId(Idx), Member);
      EXPECT_EQ(comparisonKey(H, A), comparisonKey(H, B))
          << Tag << " lazy " << H.className(ClassId(Idx));
      EXPECT_EQ(comparisonKey(H, A), comparisonKey(H, C))
          << Tag << " recursive " << H.className(ClassId(Idx));
      EXPECT_EQ(A.EffectiveAccess, C.EffectiveAccess);
    }
}

} // namespace

TEST(TabulationModesTest, AgreeOnPaperFigures) {
  expectAllModesAgree(makeFigure1(), "figure1");
  expectAllModesAgree(makeFigure2(), "figure2");
  expectAllModesAgree(makeFigure3(), "figure3");
  expectAllModesAgree(makeFigure9(), "figure9");
}

TEST(TabulationModesTest, AgreeOnRandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 24;
  Params.VirtualEdgeChance = 0.35;
  Params.StaticChance = 0.3;
  for (uint64_t Seed = 900; Seed != 925; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed);
    expectAllModesAgree(W.H, "random");
  }
}

TEST(TabulationModesTest, EagerComputesEverythingUpFront) {
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Engine(H, Mode::Eager);
  // |M| columns x |N| classes, all at construction.
  EXPECT_EQ(Engine.stats().EntriesComputed,
            uint64_t(H.numClasses()) * H.allMemberNames().size());
}

TEST(TabulationModesTest, RecursiveComputesOnlyTheDownClosure) {
  // A chain of 100 classes: querying class 10 must compute exactly 11
  // entries, not 100.
  Workload W = makeChain(100, 100); // member declared only in C0
  DominanceLookupEngine Engine(W.H, Mode::LazyRecursive);
  EXPECT_EQ(Engine.stats().EntriesComputed, 0u);

  LookupResult R = Engine.lookup(W.H.findClass("C10"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(Engine.stats().EntriesComputed, 11u);

  // A second query below the computed range reuses everything.
  Engine.lookup(W.H.findClass("C5"), "m");
  EXPECT_EQ(Engine.stats().EntriesComputed, 11u);

  // Going further up only adds the difference.
  Engine.lookup(W.H.findClass("C20"), "m");
  EXPECT_EQ(Engine.stats().EntriesComputed, 21u);
}

TEST(TabulationModesTest, RecursiveUnrelatedSubtreesUntouched) {
  Workload W = makeWideForest(4, 2, 3); // 4 independent trees
  DominanceLookupEngine Engine(W.H, Mode::LazyRecursive);
  Symbol M0 = W.H.findName("m0");
  Engine.lookup(W.QueryClasses.front(), M0);
  // Entries computed: the queried leaf's ancestor chain only (depth 3
  // chain to its root = 4 classes), not the other 3 trees.
  EXPECT_LE(Engine.stats().EntriesComputed, 4u);
}

TEST(TabulationModesTest, LazyColumnThenRecursiveEquivalent) {
  // Interleaving queries across members must not corrupt shared state.
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Recursive(H, Mode::LazyRecursive);
  Symbol Foo = H.findName("foo");
  Symbol Bar = H.findName("bar");
  EXPECT_EQ(Recursive.lookup(H.findClass("G"), Bar).Status,
            LookupStatus::Unambiguous);
  EXPECT_EQ(Recursive.lookup(H.findClass("H"), Foo).Status,
            LookupStatus::Unambiguous);
  EXPECT_EQ(Recursive.lookup(H.findClass("H"), Bar).Status,
            LookupStatus::Ambiguous);
  EXPECT_EQ(Recursive.lookup(H.findClass("D"), Foo).Status,
            LookupStatus::Ambiguous);
}

TEST(TabulationModesTest, RecursiveHandlesDeepChainsWithoutRecursion) {
  // 50k-deep chain: an actual call-stack recursion would overflow here;
  // the explicit work stack must not.
  Workload W = makeChain(50000, 50000);
  DominanceLookupEngine Engine(W.H, Mode::LazyRecursive);
  LookupResult R = Engine.lookup(W.QueryClasses.front(), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, W.H.findClass("C0"));
  EXPECT_EQ(R.Witness->length(), 50000u);
}
