//===- UsingDeclarationsTest.cpp ---------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// `using B::m;` - the standard C++ repair for exactly the ambiguities
/// the paper's algorithm detects. Modeled as a declaration in the class
/// containing the using-declaration, so every engine handles it
/// unchanged; target validation/resolution is a post-pass.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/UsingDeclarations.h"

#include "memlook/core/DifferentialCheck.h"
#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// The classic diamond repair:
///   struct A { f; };  struct L : A {};  struct R : A {};
///   struct D : L, R { using L::f; };
Hierarchy makeRepairedDiamond() {
  HierarchyBuilder B;
  B.addClass("A").withMember("f");
  B.addClass("L").withBase("A");
  B.addClass("R").withBase("A");
  B.addClass("D").withBase("L").withBase("R").withUsing("L", "f");
  return std::move(B).build();
}

} // namespace

TEST(UsingDeclarationsTest, RepairsTheDiamondAmbiguity) {
  // Without the using-declaration this is Figure-1-shaped: ambiguous.
  {
    HierarchyBuilder B;
    B.addClass("A").withMember("f");
    B.addClass("L").withBase("A");
    B.addClass("R").withBase("A");
    B.addClass("D").withBase("L").withBase("R");
    Hierarchy H = std::move(B).build();
    DominanceLookupEngine Engine(H);
    EXPECT_EQ(Engine.lookup(H.findClass("D"), "f").Status,
              LookupStatus::Ambiguous);
  }
  // With it, D declares f: unambiguous at D and below.
  Hierarchy H = makeRepairedDiamond();
  DominanceLookupEngine Engine(H);
  LookupResult R = Engine.lookup(H.findClass("D"), "f");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("D"))
      << "the using-declaration is the found declaration";
}

TEST(UsingDeclarationsTest, TargetResolvesThroughTheNamedBase) {
  Hierarchy H = makeRepairedDiamond();
  DominanceLookupEngine Engine(H);
  const MemberDecl *Decl =
      H.declaredMember(H.findClass("D"), H.findName("f"));
  ASSERT_NE(Decl, nullptr);
  ASSERT_TRUE(Decl->isUsingDeclaration());
  EXPECT_EQ(Decl->UsingFrom, H.findClass("L"));

  LookupResult Target = resolveUsingTarget(H, Engine, *Decl);
  ASSERT_EQ(Target.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(Target.DefiningClass, H.findClass("A"));
  EXPECT_EQ(formatSubobjectKey(H, *Target.Subobject), "AL");
}

TEST(UsingDeclarationsTest, ValidationAcceptsWellFormed) {
  Hierarchy H = makeRepairedDiamond();
  DominanceLookupEngine Engine(H);
  EXPECT_TRUE(validateUsingDeclarations(H, Engine).empty());
}

TEST(UsingDeclarationsTest, ValidationRejectsMissingMember) {
  HierarchyBuilder B;
  B.addClass("A").withMember("f");
  B.addClass("D").withBase("A").withUsing("A", "nosuch");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  std::vector<UsingIssue> Issues = validateUsingDeclarations(H, Engine);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0].Status, LookupStatus::NotFound);
  EXPECT_NE(Issues[0].Message.find("names no member"), std::string::npos);
}

TEST(UsingDeclarationsTest, ValidationRejectsAmbiguousTarget) {
  // using B::m where m is ambiguous *in B* is ill-formed.
  HierarchyBuilder Builder;
  Builder.addClass("X").withMember("m");
  Builder.addClass("Y").withMember("m");
  Builder.addClass("B").withBase("X").withBase("Y");
  Builder.addClass("D").withBase("B").withUsing("B", "m");
  Hierarchy H = std::move(Builder).build();
  DominanceLookupEngine Engine(H);
  std::vector<UsingIssue> Issues = validateUsingDeclarations(H, Engine);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_EQ(Issues[0].Status, LookupStatus::Ambiguous);
}

TEST(UsingDeclarationsTest, NonBaseIsRejectedAtFinalize) {
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B"); // unrelated
  H.addMember(B, "m");
  H.addUsingDeclaration(A, B, "m");
  DiagnosticEngine Diags;
  EXPECT_FALSE(H.finalize(Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(UsingDeclarationsTest, ForwardingChainsResolve) {
  // Mid re-exports Base::f; Leaf re-exports Mid::f; the chained target
  // still lands on Base.
  HierarchyBuilder B;
  B.addClass("Base").withMember("f");
  B.addClass("Mid").withBase("Base").withUsing("Base", "f");
  B.addClass("Leaf").withBase("Mid").withUsing("Mid", "f");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  EXPECT_TRUE(validateUsingDeclarations(H, Engine).empty());

  const MemberDecl *LeafDecl =
      H.declaredMember(H.findClass("Leaf"), H.findName("f"));
  LookupResult Target = resolveUsingTarget(H, Engine, *LeafDecl);
  ASSERT_EQ(Target.Status, LookupStatus::Unambiguous);
  // The immediate target is Mid's using-declaration...
  EXPECT_EQ(Target.DefiningClass, H.findClass("Mid"));
  const MemberDecl *MidDecl =
      H.declaredMember(Target.DefiningClass, H.findName("f"));
  ASSERT_TRUE(MidDecl->isUsingDeclaration());
  // ...which in turn resolves to Base.
  LookupResult Final = resolveUsingTarget(H, Engine, *MidDecl);
  EXPECT_EQ(Final.DefiningClass, H.findClass("Base"));
}

TEST(UsingDeclarationsTest, UltimateTargetFollowsChains) {
  HierarchyBuilder B;
  B.addClass("Base").withMember("f");
  B.addClass("Mid").withBase("Base").withUsing("Base", "f");
  B.addClass("Leaf").withBase("Mid").withUsing("Mid", "f");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  Symbol F = H.findName("f");

  EXPECT_EQ(ultimateUsingTarget(H, Engine, H.findClass("Leaf"), F),
            H.findClass("Base"));
  EXPECT_EQ(ultimateUsingTarget(H, Engine, H.findClass("Mid"), F),
            H.findClass("Base"));
  EXPECT_EQ(ultimateUsingTarget(H, Engine, H.findClass("Base"), F),
            H.findClass("Base"))
      << "a plain declaration is its own target";
}

TEST(UsingDeclarationsTest, UltimateTargetFailsOnBrokenChain) {
  HierarchyBuilder B;
  B.addClass("A").withMember("f");
  B.addClass("D").withBase("A").withUsing("A", "missing");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  EXPECT_FALSE(ultimateUsingTarget(H, Engine, H.findClass("D"),
                                   H.findName("missing"))
                   .isValid());
}

TEST(UsingDeclarationsTest, EnginesStillAgree) {
  // The model claim: using-declarations are ordinary declarations, so
  // the full differential audit passes unchanged.
  Hierarchy H = makeRepairedDiamond();
  EXPECT_TRUE(runDifferentialCheck(H).passed());

  HierarchyBuilder B;
  B.addClass("T").withMember("g").withStaticMember("s");
  B.addClass("U").withBase("T");
  B.addClass("V").withVirtualBase("T");
  B.addClass("W").withBase("U").withBase("V").withUsing("U", "g").withUsing(
      "T", "s");
  Hierarchy H2 = std::move(B).build();
  EXPECT_TRUE(runDifferentialCheck(H2).passed());
}

TEST(UsingDeclarationsTest, AccessOfUsingDeclarationApplies) {
  // The common C++ idiom: privately inherit, publicly re-export one
  // member. The re-export is a public declaration in the derived class.
  HierarchyBuilder B;
  B.addClass("Impl").withMember("helper", AccessSpec::Public);
  B.addClass("Facade")
      .withBase("Impl", AccessSpec::Private)
      .withUsing("Impl", "helper", AccessSpec::Public);
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);

  LookupResult R = Engine.lookup(H.findClass("Facade"), "helper");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("Facade"));
  ASSERT_TRUE(R.EffectiveAccess.has_value());
  EXPECT_EQ(*R.EffectiveAccess, AccessSpec::Public)
      << "the re-export is public even though the base is private";
}
