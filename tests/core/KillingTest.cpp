//===- KillingTest.cpp - Experiment E10 (Lemma 4 / Corollary 1) ------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Two algorithm-justifying properties, validated on random hierarchies:
///
///  * Corollary 1: killing dominated definitions during propagation never
///    changes any lookup result;
///  * the Figure 8 red result really is the most-dominant definition:
///    its witness path dominates every element of Defns(C, m) under the
///    *general* dominance test - i.e. the Lemma 4 abstraction reached the
///    same conclusion the full path calculus would.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

class KillingRandomTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(KillingRandomTest, Corollary1KillingPreservesAllResults) {
  RandomHierarchyParams Params;
  Params.NumClasses = 22;
  Params.AvgBases = 1.9;
  Params.VirtualEdgeChance = 0.3;
  Params.StaticChance = 0.25;
  Workload W = makeRandomHierarchy(Params, GetParam() * 97 + 11);

  NaivePropagationEngine Full(W.H,
                              NaivePropagationEngine::Killing::Disabled);
  NaivePropagationEngine Killed(W.H,
                                NaivePropagationEngine::Killing::Enabled);
  for (ClassId C : W.QueryClasses)
    for (Symbol Member : W.QueryMembers) {
      LookupResult A = Full.lookup(C, Member);
      LookupResult B = Killed.lookup(C, Member);
      if (A.Status == LookupStatus::Overflow ||
          B.Status == LookupStatus::Overflow)
        continue;
      EXPECT_EQ(comparisonKey(W.H, A), comparisonKey(W.H, B))
          << W.H.className(C) << "::" << W.H.spelling(Member) << " seed "
          << GetParam();
    }
}

TEST_P(KillingRandomTest, KillingShrinksOrKeepsReachingSets) {
  RandomHierarchyParams Params;
  Params.NumClasses = 22;
  Params.VirtualEdgeChance = 0.3;
  Workload W = makeRandomHierarchy(Params, GetParam() * 193 + 7);

  NaivePropagationEngine Full(W.H,
                              NaivePropagationEngine::Killing::Disabled);
  NaivePropagationEngine Killed(W.H,
                                NaivePropagationEngine::Killing::Enabled);
  for (ClassId C : W.QueryClasses)
    for (Symbol Member : W.QueryMembers) {
      size_t FullSize = Full.reachingDefinitions(C, Member).size();
      size_t KilledSize = Killed.reachingDefinitions(C, Member).size();
      EXPECT_LE(KilledSize, FullSize);
      // Killing keeps exactly the maximal definitions, which are never
      // empty when any definition reaches the class.
      EXPECT_EQ(KilledSize == 0, FullSize == 0);
    }
}

TEST_P(KillingRandomTest, RedWitnessDominatesAllOfDefns) {
  RandomHierarchyParams Params;
  Params.NumClasses = 20;
  Params.AvgBases = 1.8;
  Params.VirtualEdgeChance = 0.35;
  Params.StaticChance = 0.0;
  Workload W = makeRandomHierarchy(Params, GetParam() * 7 + 3);

  DominanceLookupEngine Figure8(W.H);
  NaivePropagationEngine Defns(W.H,
                               NaivePropagationEngine::Killing::Disabled);
  for (ClassId C : W.QueryClasses)
    for (Symbol Member : W.QueryMembers) {
      LookupResult R = Figure8.lookup(C, Member);
      if (R.Status != LookupStatus::Unambiguous)
        continue;
      ASSERT_TRUE(R.Witness.has_value());
      for (const auto &Def : Defns.reachingDefinitions(C, Member))
        EXPECT_TRUE(dominates(W.H, subobjectKey(W.H, *R.Witness), Def.Key))
            << "red result fails to dominate "
            << formatSubobjectKey(W.H, Def.Key) << " at "
            << W.H.className(C) << "::" << W.H.spelling(Member) << " seed "
            << GetParam();
    }
}

TEST_P(KillingRandomTest, AmbiguousMeansNoMostDominantElement) {
  RandomHierarchyParams Params;
  Params.NumClasses = 20;
  Params.VirtualEdgeChance = 0.35;
  Params.StaticChance = 0.0;
  Workload W = makeRandomHierarchy(Params, GetParam() * 131 + 17);

  DominanceLookupEngine Figure8(W.H);
  NaivePropagationEngine Defns(W.H,
                               NaivePropagationEngine::Killing::Disabled);
  for (ClassId C : W.QueryClasses)
    for (Symbol Member : W.QueryMembers) {
      if (Figure8.lookup(C, Member).Status != LookupStatus::Ambiguous)
        continue;
      const auto &AllDefs = Defns.reachingDefinitions(C, Member);
      for (const auto &Candidate : AllDefs) {
        bool DominatesAll = true;
        for (const auto &Other : AllDefs)
          if (!dominates(W.H, Candidate.Key, Other.Key))
            DominatesAll = false;
        EXPECT_FALSE(DominatesAll)
            << formatSubobjectKey(W.H, Candidate.Key)
            << " would be most-dominant although Figure 8 said ambiguous";
      }
    }
}

TEST_P(KillingRandomTest, RedWitnessSatisfiesDefinition12) {
  // Definition 12: a red definition's every proper prefix is a
  // most-dominant element of DefnsPath at its own mdc. The Figure 8
  // engine's witness path must satisfy this for members without statics
  // (the static generalization deliberately relaxes it to maximal-set
  // membership).
  RandomHierarchyParams Params;
  Params.NumClasses = 18;
  Params.AvgBases = 1.8;
  Params.VirtualEdgeChance = 0.35;
  Params.StaticChance = 0.0;
  Workload W = makeRandomHierarchy(Params, GetParam() * 409 + 77);

  DominanceLookupEngine Figure8(W.H);
  NaivePropagationEngine Defns(W.H,
                               NaivePropagationEngine::Killing::Disabled);
  for (ClassId C : W.QueryClasses)
    for (Symbol Member : W.QueryMembers) {
      LookupResult R = Figure8.lookup(C, Member);
      if (R.Status != LookupStatus::Unambiguous)
        continue;
      const Path &Witness = *R.Witness;
      for (size_t Len = 1; Len <= Witness.length(); ++Len) {
        Path Prefix(std::vector<ClassId>(Witness.Nodes.begin(),
                                         Witness.Nodes.begin() + Len));
        SubobjectKey PrefixKey = subobjectKey(W.H, Prefix);
        for (const auto &Def :
             Defns.reachingDefinitions(Prefix.mdc(), Member))
          EXPECT_TRUE(dominates(W.H, PrefixKey, Def.Key))
              << "prefix " << formatPath(W.H, Prefix)
              << " is not most-dominant at its mdc (vs "
              << formatSubobjectKey(W.H, Def.Key) << "), seed "
              << GetParam();
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KillingRandomTest,
                         ::testing::Range<uint64_t>(1, 26));
