//===- ExplainAmbiguityTest.cpp --------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/ExplainAmbiguity.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace memlook;
using namespace memlook::testutil;

TEST(ExplainAmbiguityTest, Figure1Candidates) {
  Hierarchy H = makeFigure1();
  std::vector<DefinitionRecord> Defs =
      explainAmbiguity(H, H.findClass("E"), H.findName("m"));
  std::set<std::string> Keys;
  for (const DefinitionRecord &Def : Defs)
    Keys.insert(formatSubobjectKey(H, Def.Key));
  EXPECT_EQ(Keys, (std::set<std::string>{"ABCE", "DE"}));
}

TEST(ExplainAmbiguityTest, Figure3BarCandidates) {
  Hierarchy H = makeFigure3();
  std::vector<DefinitionRecord> Defs =
      explainAmbiguity(H, H.findClass("H"), H.findName("bar"));
  std::set<std::string> Keys;
  for (const DefinitionRecord &Def : Defs)
    Keys.insert(formatSubobjectKey(H, Def.Key));
  // The maximal candidates at H: EFH and GH (D*H is dominated by GH).
  EXPECT_EQ(Keys, (std::set<std::string>{"EFH", "GH"}));
}

TEST(ExplainAmbiguityTest, MatchesReferenceAmbiguousCandidates) {
  Hierarchy H = makeFigure9();
  SubobjectLookupEngine Reference(H);
  DominanceLookupEngine Figure8(H);
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    for (Symbol Member : H.allMemberNames()) {
      LookupResult R = Figure8.lookup(ClassId(Idx), Member);
      if (R.Status != LookupStatus::Ambiguous)
        continue;
      LookupResult Ref = Reference.lookup(ClassId(Idx), Member);
      std::set<std::string> FromExplain, FromRef;
      for (const auto &Def : explainAmbiguity(H, ClassId(Idx), Member))
        FromExplain.insert(formatSubobjectKey(H, Def.Key));
      for (const SubobjectKey &Key : Ref.AmbiguousCandidates)
        FromRef.insert(formatSubobjectKey(H, Key));
      EXPECT_EQ(FromExplain, FromRef);
    }
}

TEST(ExplainAmbiguityTest, MatchesReferenceOnRandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 18;
  Params.AvgBases = 2.0;
  Params.VirtualEdgeChance = 0.25;
  Params.StaticChance = 0.0;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed * 3163 + 9);
    SubobjectLookupEngine Reference(W.H);
    for (ClassId C : W.QueryClasses)
      for (Symbol Member : W.QueryMembers) {
        LookupResult Ref = Reference.lookup(C, Member);
        if (Ref.Status != LookupStatus::Ambiguous)
          continue;
        std::set<std::string> FromExplain, FromRef;
        for (const auto &Def : explainAmbiguity(W.H, C, Member))
          FromExplain.insert(formatSubobjectKey(W.H, Def.Key));
        for (const SubobjectKey &Key : Ref.AmbiguousCandidates)
          FromRef.insert(formatSubobjectKey(W.H, Key));
        EXPECT_EQ(FromExplain, FromRef)
            << W.H.className(C) << "::" << W.H.spelling(Member) << " seed "
            << Seed;
      }
  }
}

TEST(ExplainAmbiguityTest, FormattingIsDiagnosticReady) {
  Hierarchy H = makeFigure1();
  Symbol M = H.findName("m");
  std::vector<DefinitionRecord> Defs =
      explainAmbiguity(H, H.findClass("E"), M);
  std::string Line = formatAmbiguityCandidates(H, M, Defs);
  EXPECT_NE(Line.find("candidates:"), std::string::npos);
  EXPECT_NE(Line.find("A::m (in ABCE)"), std::string::npos);
  EXPECT_NE(Line.find("D::m (in DE)"), std::string::npos);
}

TEST(ExplainAmbiguityTest, EmptyForUnknownMember) {
  Hierarchy H = makeFigure1();
  Symbol Unknown = H.internName("zzz");
  EXPECT_TRUE(explainAmbiguity(H, H.findClass("E"), Unknown).empty());
  EXPECT_EQ(formatAmbiguityCandidates(H, Unknown, {}),
            "candidates: <unavailable>");
}
