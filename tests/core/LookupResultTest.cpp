//===- LookupResultTest.cpp ------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/LookupResult.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(LookupResultTest, StatusLabels) {
  EXPECT_STREQ(lookupStatusLabel(LookupStatus::Unambiguous), "unambiguous");
  EXPECT_STREQ(lookupStatusLabel(LookupStatus::Ambiguous), "ambiguous");
  EXPECT_STREQ(lookupStatusLabel(LookupStatus::NotFound), "not-found");
  EXPECT_STREQ(lookupStatusLabel(LookupStatus::Overflow), "overflow");
}

TEST(LookupResultTest, FactoriesSetStatus) {
  EXPECT_EQ(LookupResult::notFound().Status, LookupStatus::NotFound);
  EXPECT_EQ(LookupResult::overflow().Status, LookupStatus::Overflow);
  EXPECT_EQ(LookupResult::ambiguous({}).Status, LookupStatus::Ambiguous);
}

TEST(LookupResultTest, FormatUnambiguousWithSubobject) {
  Hierarchy H = makeFigure3();
  Path GH = pathOf(H, {"G", "H"});
  LookupResult R = LookupResult::unambiguous(H.findClass("G"),
                                             subobjectKey(H, GH), GH);
  EXPECT_EQ(formatLookupResult(H, R), "G (subobject GH)");
}

TEST(LookupResultTest, FormatSharedStatic) {
  Hierarchy H = makeFigure3();
  Path GH = pathOf(H, {"G", "H"});
  LookupResult R = LookupResult::unambiguous(
      H.findClass("G"), subobjectKey(H, GH), GH, /*SharedStatic=*/true);
  EXPECT_EQ(formatLookupResult(H, R), "G (subobject GH) [shared static]");
}

TEST(LookupResultTest, FormatAmbiguousWithCandidates) {
  Hierarchy H = makeFigure3();
  LookupResult R = LookupResult::ambiguous(
      {subobjectKey(H, pathOf(H, {"E", "F", "H"})),
       subobjectKey(H, pathOf(H, {"G", "H"}))});
  EXPECT_EQ(formatLookupResult(H, R), "ambiguous {EFH, GH}");
}

TEST(LookupResultTest, FormatAmbiguousWithoutCandidates) {
  Hierarchy H = makeFigure3();
  EXPECT_EQ(formatLookupResult(H, LookupResult::ambiguous({})), "ambiguous");
}

TEST(LookupResultTest, FormatNotFoundAndOverflow) {
  Hierarchy H = makeFigure3();
  EXPECT_EQ(formatLookupResult(H, LookupResult::notFound()), "not found");
  EXPECT_EQ(formatLookupResult(H, LookupResult::overflow()),
            "overflow (engine budget exceeded)");
}
