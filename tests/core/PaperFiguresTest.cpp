//===- PaperFiguresTest.cpp - Experiments E1/E2 ----------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The paper's headline motivating examples:
///  * Figure 1 (non-virtual inheritance): p->m on an E* is AMBIGUOUS;
///  * Figure 2 (virtual inheritance, same shape): p->m resolves to D::m.
/// Both outcomes are checked on every correct engine; the Figure 3
/// lookups (lookup(H,foo) = {GH}, lookup(H,bar) = bottom) likewise.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// All engines that must agree with the C++ semantics (i.e. everything
/// except the deliberately buggy/unsound baselines).
std::vector<std::unique_ptr<LookupEngine>>
correctEngines(const Hierarchy &H) {
  std::vector<std::unique_ptr<LookupEngine>> Engines;
  Engines.push_back(std::make_unique<DominanceLookupEngine>(
      H, DominanceLookupEngine::Mode::Eager));
  Engines.push_back(std::make_unique<DominanceLookupEngine>(
      H, DominanceLookupEngine::Mode::Lazy));
  Engines.push_back(std::make_unique<NaivePropagationEngine>(
      H, NaivePropagationEngine::Killing::Disabled));
  Engines.push_back(std::make_unique<NaivePropagationEngine>(
      H, NaivePropagationEngine::Killing::Enabled));
  Engines.push_back(std::make_unique<SubobjectLookupEngine>(H));
  return Engines;
}

} // namespace

TEST(PaperFiguresTest, Figure1LookupIsAmbiguous) {
  Hierarchy H = makeFigure1();
  ClassId E = H.findClass("E");
  for (auto &Engine : correctEngines(H)) {
    LookupResult R = Engine->lookup(E, "m");
    EXPECT_EQ(R.Status, LookupStatus::Ambiguous) << Engine->engineName();
  }
}

TEST(PaperFiguresTest, Figure1AmbiguityCandidates) {
  // The reference engine can name the culprits: the A subobject reached
  // through C and the D subobject (which itself dominates the A
  // subobject reached through D).
  Hierarchy H = makeFigure1();
  SubobjectLookupEngine Engine(H);
  LookupResult R = Engine.lookup(H.findClass("E"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Ambiguous);
  std::set<std::string> Candidates;
  for (const SubobjectKey &Key : R.AmbiguousCandidates)
    Candidates.insert(formatSubobjectKey(H, Key));
  EXPECT_EQ(Candidates, (std::set<std::string>{"ABCE", "DE"}));
}

TEST(PaperFiguresTest, Figure2LookupResolvesToD) {
  Hierarchy H = makeFigure2();
  ClassId E = H.findClass("E");
  ClassId D = H.findClass("D");
  for (auto &Engine : correctEngines(H)) {
    LookupResult R = Engine->lookup(E, "m");
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous) << Engine->engineName();
    EXPECT_EQ(R.DefiningClass, D) << Engine->engineName();
    ASSERT_TRUE(R.Subobject.has_value()) << Engine->engineName();
    EXPECT_EQ(formatSubobjectKey(H, *R.Subobject), "DE")
        << Engine->engineName();
  }
}

TEST(PaperFiguresTest, Figure2IntermediateLookups) {
  Hierarchy H = makeFigure2();
  for (auto &Engine : correctEngines(H)) {
    // In C and B the only m is A::m.
    LookupResult RC = Engine->lookup(H.findClass("C"), "m");
    ASSERT_EQ(RC.Status, LookupStatus::Unambiguous) << Engine->engineName();
    EXPECT_EQ(RC.DefiningClass, H.findClass("A"));

    LookupResult RD = Engine->lookup(H.findClass("D"), "m");
    ASSERT_EQ(RD.Status, LookupStatus::Unambiguous);
    EXPECT_EQ(RD.DefiningClass, H.findClass("D"))
        << "D's own declaration hides the inherited A::m";
  }
}

TEST(PaperFiguresTest, Figure3LookupFooAtH) {
  Hierarchy H = makeFigure3();
  for (auto &Engine : correctEngines(H)) {
    LookupResult R = Engine->lookup(H.findClass("H"), "foo");
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous) << Engine->engineName();
    EXPECT_EQ(R.DefiningClass, H.findClass("G"));
    ASSERT_TRUE(R.Subobject.has_value());
    EXPECT_EQ(formatSubobjectKey(H, *R.Subobject), "GH");
  }
}

TEST(PaperFiguresTest, Figure3LookupBarAtHIsAmbiguous) {
  Hierarchy H = makeFigure3();
  for (auto &Engine : correctEngines(H))
    EXPECT_EQ(Engine->lookup(H.findClass("H"), "bar").Status,
              LookupStatus::Ambiguous)
        << Engine->engineName();
}

TEST(PaperFiguresTest, Figure3LookupBarAtFIsAmbiguous) {
  // The paper: "lookup(F,bar) is ambiguous, with two reaching
  // definitions EF and DF."
  Hierarchy H = makeFigure3();
  for (auto &Engine : correctEngines(H))
    EXPECT_EQ(Engine->lookup(H.findClass("F"), "bar").Status,
              LookupStatus::Ambiguous)
        << Engine->engineName();
}

TEST(PaperFiguresTest, Figure3LookupFooAtFIsAmbiguousButNotAtH) {
  // "In the case of member foo, the lookup at node F is ambiguous, but
  // the lookup at the subsequent node H is not."
  Hierarchy H = makeFigure3();
  for (auto &Engine : correctEngines(H)) {
    EXPECT_EQ(Engine->lookup(H.findClass("F"), "foo").Status,
              LookupStatus::Ambiguous)
        << Engine->engineName();
    EXPECT_EQ(Engine->lookup(H.findClass("H"), "foo").Status,
              LookupStatus::Unambiguous)
        << Engine->engineName();
  }
}

TEST(PaperFiguresTest, NotFoundForUndeclaredNames) {
  Hierarchy H = makeFigure1();
  for (auto &Engine : correctEngines(H)) {
    EXPECT_EQ(Engine->lookup(H.findClass("E"), "nosuch").Status,
              LookupStatus::NotFound)
        << Engine->engineName();
    // 'm' is declared, but B has no m-declaring base... actually A is a
    // base of B, so B finds A::m; use A's own trivial case instead.
    LookupResult RA = Engine->lookup(H.findClass("A"), "m");
    ASSERT_EQ(RA.Status, LookupStatus::Unambiguous);
    EXPECT_EQ(RA.DefiningClass, H.findClass("A"));
  }
}

TEST(PaperFiguresTest, WitnessPathsAreValidAndNameTheSubobject) {
  Hierarchy H = makeFigure2();
  for (auto &Engine : correctEngines(H)) {
    LookupResult R = Engine->lookup(H.findClass("E"), "m");
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
    ASSERT_TRUE(R.Witness.has_value()) << Engine->engineName();
    EXPECT_TRUE(isValidPath(H, *R.Witness));
    EXPECT_EQ(subobjectKey(H, *R.Witness), *R.Subobject);
    EXPECT_EQ(R.Witness->ldc(), R.DefiningClass);
    EXPECT_EQ(R.Witness->mdc(), H.findClass("E"));
  }
}
