//===- DifferentialTest.cpp - Experiment E7 --------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The central correctness property: the Figure 8 algorithm computes
/// exactly the lookup function defined on the Rossie-Friedman subobject
/// model, for *every* (class, member) pair. Four independent
/// implementations are compared pairwise:
///
///   figure8-eager / figure8-lazy  (abstraction propagation, Lemma 4)
///   propagation-naive             (explicit paths, general dominance)
///   propagation-killing           (explicit paths + Corollary 1)
///   rossie-friedman               (materialized subobject graph)
///
/// on the paper's figures, the structured families, and a large seeded
/// random sweep that includes virtual/non-virtual mixes, static members,
/// and restricted access.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <memory>

using namespace memlook;
using namespace memlook::testutil;

namespace {

void compareAllEngines(const Hierarchy &H, const char *Tag) {
  DominanceLookupEngine Eager(H, DominanceLookupEngine::Mode::Eager);
  DominanceLookupEngine Lazy(H, DominanceLookupEngine::Mode::Lazy);
  NaivePropagationEngine Naive(H, NaivePropagationEngine::Killing::Disabled);
  NaivePropagationEngine Killing(H, NaivePropagationEngine::Killing::Enabled);
  SubobjectLookupEngine Reference(H);

  std::vector<LookupEngine *> Others{&Lazy, &Naive, &Killing, &Reference};

  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId C(Idx);
    for (Symbol Member : H.allMemberNames()) {
      LookupResult Baseline = Eager.lookup(C, Member);
      std::string BaselineKey = comparisonKey(H, Baseline);
      for (LookupEngine *Other : Others) {
        LookupResult R = Other->lookup(C, Member);
        if (R.Status == LookupStatus::Overflow)
          continue; // reference ran out of budget; nothing to compare
        EXPECT_EQ(BaselineKey, comparisonKey(H, R))
            << Tag << ": " << Other->engineName() << " disagrees on "
            << H.className(C) << "::" << H.spelling(Member);
      }
    }
  }
}

} // namespace

TEST(DifferentialTest, PaperFigures) {
  compareAllEngines(makeFigure1(), "figure1");
  compareAllEngines(makeFigure2(), "figure2");
  compareAllEngines(makeFigure3(), "figure3");
  compareAllEngines(makeFigure9(), "figure9");
}

TEST(DifferentialTest, StructuredFamilies) {
  compareAllEngines(makeChain(20, 3).H, "chain");
  compareAllEngines(makeNonVirtualDiamondStack(5).H, "nv-diamonds");
  compareAllEngines(makeNonVirtualDiamondStack(5, true).H,
                    "nv-diamonds-redeclared");
  compareAllEngines(makeVirtualDiamondStack(8).H, "v-diamonds");
  compareAllEngines(makeVirtualDiamondStack(8, true).H,
                    "v-diamonds-redeclared");
  compareAllEngines(makeGrid(4, 4).H, "grid");
  compareAllEngines(makeGrid(4, 4, true).H, "v-grid");
  compareAllEngines(makeWideForest(3, 3, 3).H, "forest");
  compareAllEngines(makeIostreamLike().H, "iostream");
}

class DifferentialRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialRandomTest, RandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 24;
  Params.AvgBases = 1.8;
  Params.VirtualEdgeChance = 0.35;
  Params.MemberPool = 5;
  Params.DeclareChance = 0.3;
  Params.StaticChance = 0.0; // statics compared separately (E15)
  Workload W = makeRandomHierarchy(Params, GetParam());
  compareAllEngines(W.H, "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRandomTest,
                         ::testing::Range<uint64_t>(1, 61));

class DifferentialStaticRandomTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialStaticRandomTest, RandomHierarchiesWithStatics) {
  RandomHierarchyParams Params;
  Params.NumClasses = 20;
  Params.AvgBases = 1.9;
  Params.VirtualEdgeChance = 0.3;
  Params.MemberPool = 4;
  Params.DeclareChance = 0.35;
  Params.StaticChance = 0.5; // exercise Definition 17 heavily
  Workload W = makeRandomHierarchy(Params, GetParam() * 2654435761u);
  compareAllEngines(W.H, "random-static");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialStaticRandomTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(DifferentialTest, RandomHierarchiesWithUsingDeclarations) {
  // Using-declarations are modeled as ordinary declarations, so every
  // engine must keep agreeing when they are sprinkled in.
  RandomHierarchyParams Params;
  Params.NumClasses = 22;
  Params.AvgBases = 1.8;
  Params.VirtualEdgeChance = 0.3;
  Params.StaticChance = 0.2;
  Params.UsingChance = 0.5;
  for (uint64_t Seed = 800; Seed != 820; ++Seed)
    compareAllEngines(makeRandomHierarchy(Params, Seed).H, "random-using");
}

TEST(DifferentialTest, DenseVirtualHierarchies) {
  // All-virtual edges: maximal sharing, frequent Definition 17(1) hits.
  RandomHierarchyParams Params;
  Params.NumClasses = 24;
  Params.AvgBases = 2.2;
  Params.VirtualEdgeChance = 1.0;
  for (uint64_t Seed = 500; Seed != 510; ++Seed)
    compareAllEngines(makeRandomHierarchy(Params, Seed).H, "all-virtual");
}

TEST(DifferentialTest, DenseNonVirtualHierarchies) {
  // No virtual edges at all: pure replication semantics.
  RandomHierarchyParams Params;
  Params.NumClasses = 18; // replication explodes; keep moderate
  Params.AvgBases = 2.0;
  Params.VirtualEdgeChance = 0.0;
  for (uint64_t Seed = 600; Seed != 610; ++Seed)
    compareAllEngines(makeRandomHierarchy(Params, Seed).H, "all-nonvirtual");
}
