//===- ParallelTabulatorTest.cpp -------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel tabulator's contract: a parallel build is entry-for-entry
/// identical to the serial Figure 8 engine on every hierarchy family
/// (column independence is the whole theorem), thread count never changes
/// answers, deadline expiry publishes only topological-prefix-valid
/// partial columns, and the worker pool runs each index exactly once.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DifferentialCheck.h"
#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/ParallelTabulator.h"
#include "memlook/support/ThreadPool.h"
#include "memlook/workload/Generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace memlook;

namespace {

/// Every (class, member) answer of a parallel build must render
/// identically to the serial eager engine's.
void expectMatchesSerial(const Hierarchy &H, uint32_t Threads) {
  ParallelTabulator::Result R =
      ParallelTabulator::tabulateAll(H, Deadline::never(), Threads);
  ASSERT_TRUE(R.Complete);

  DominanceLookupEngine Serial(H, DominanceLookupEngine::Mode::Eager);
  const std::vector<Symbol> &Members = H.allMemberNames();
  ASSERT_EQ(R.Columns.size(), Members.size());
  for (uint32_t MIdx = 0; MIdx != Members.size(); ++MIdx) {
    ASSERT_NE(R.Columns[MIdx], nullptr);
    const ParallelTabulator::Column &Col = *R.Columns[MIdx];
    ASSERT_TRUE(Col.Complete);
    ASSERT_EQ(Col.numRows(), H.numClasses());
    EXPECT_EQ(Col.Computed.count(), Col.Computed.size());
    for (uint32_t CIdx = 0; CIdx != H.numClasses(); ++CIdx) {
      LookupResult FromEngine = Serial.lookup(ClassId(CIdx), Members[MIdx]);
      EXPECT_EQ(renderLookupForComparison(H, Col.resultFor(H, ClassId(CIdx))),
                renderLookupForComparison(H, FromEngine))
          << H.className(ClassId(CIdx)) << "::" << H.spelling(Members[MIdx])
          << " at " << Threads << " threads";
    }
  }
}

TEST(ParallelTabulatorTest, MatchesSerialAcrossFamilies) {
  expectMatchesSerial(makeWideForest(6, 3, 2, 6).H, 4);
  expectMatchesSerial(makeModularForest(5, 2, 3, 4, 2).H, 4);
  expectMatchesSerial(makeGrid(4, 4).H, 4);            // ambiguity-rich
  expectMatchesSerial(makeAmbiguityFan(12).H, 4);      // big blue sets
  expectMatchesSerial(makeVirtualDiamondStack(6).H, 4);
  expectMatchesSerial(makeNonVirtualDiamondStack(5).H, 4);
}

TEST(ParallelTabulatorTest, MatchesSerialOnRandomHierarchies) {
  for (uint64_t Seed = 0; Seed != 12; ++Seed) {
    RandomHierarchyParams Params;
    Params.NumClasses = 40;
    Params.MemberPool = 10;
    Params.UsingChance = 0.1;
    Workload W = makeRandomHierarchy(Params, Seed * 7919 + 3);
    expectMatchesSerial(W.H, 1 + Seed % 5);
  }
}

TEST(ParallelTabulatorTest, ThreadCountNeverChangesAnswers) {
  Workload W = makeModularForest(4, 3, 3, 4, 1);
  ParallelTabulator::Result One =
      ParallelTabulator::tabulateAll(W.H, Deadline::never(), 1);
  for (uint32_t Threads : {2u, 3u, 8u, 16u}) {
    ParallelTabulator::Result Many =
        ParallelTabulator::tabulateAll(W.H, Deadline::never(), Threads);
    ASSERT_TRUE(Many.Complete);
    ASSERT_EQ(Many.Columns.size(), One.Columns.size());
    for (size_t Idx = 0; Idx != One.Columns.size(); ++Idx) {
      // Identical builds produce byte-identical compact columns - the
      // determinism that makes structural dedup sound.
      EXPECT_TRUE(Many.Columns[Idx]->Data == One.Columns[Idx]->Data);
      for (uint32_t Row = 0; Row != One.Columns[Idx]->numRows(); ++Row)
        EXPECT_EQ(renderLookupForComparison(
                      W.H, Many.Columns[Idx]->resultFor(W.H, ClassId(Row))),
                  renderLookupForComparison(
                      W.H, One.Columns[Idx]->resultFor(W.H, ClassId(Row))));
    }
    // The kernel counters are column-granular, so their merged totals
    // are schedule-independent.
    EXPECT_EQ(Many.TabulationStats.EntriesComputed,
              One.TabulationStats.EntriesComputed);
    EXPECT_EQ(Many.TabulationStats.DominanceTests,
              One.TabulationStats.DominanceTests);
  }
}

TEST(ParallelTabulatorTest, SubsetBuildsOnlyRequestedColumns) {
  Workload W = makeWideForest(4, 2, 2, 6);
  std::vector<uint32_t> Want{0, 2, 5, 2}; // duplicate tolerated
  ParallelTabulator::Result R =
      ParallelTabulator::tabulate(W.H, Want, Deadline::never(), 4);
  ASSERT_TRUE(R.Complete);
  for (uint32_t Idx = 0; Idx != R.Columns.size(); ++Idx) {
    bool Requested = Idx == 0 || Idx == 2 || Idx == 5;
    EXPECT_EQ(R.Columns[Idx] != nullptr, Requested) << "column " << Idx;
  }
}

TEST(ParallelTabulatorTest, PreExpiredDeadlinePublishesEmptyColumns) {
  Workload W = makeWideForest(3, 2, 2, 4);
  std::atomic<bool> Cancelled{true};
  Deadline D = Deadline::never();
  D.withCancelFlag(&Cancelled);
  ParallelTabulator::Result R =
      ParallelTabulator::tabulateAll(W.H, D, 4);
  EXPECT_FALSE(R.Complete);
  for (const auto &Col : R.Columns) {
    ASSERT_NE(Col, nullptr);
    EXPECT_FALSE(Col->Complete);
    EXPECT_EQ(Col->Computed.count(), 0u);
  }
}

TEST(ParallelTabulatorTest, ExpiryMidBuildLeavesValidTopologicalPrefix) {
  // A cancel flag tripped by a racing thread stops the build at an
  // arbitrary point. Wherever it lands, the published partial columns
  // must be *prefix-valid*: an entry is computed only if every direct
  // base's entry is, and every computed entry matches the serial build.
  Workload W = makeModularForest(8, 3, 4, 6, 2); // big enough to interrupt
  const Hierarchy &H = W.H;
  DominanceLookupEngine Serial(H, DominanceLookupEngine::Mode::Eager);

  for (int Attempt = 0; Attempt != 4; ++Attempt) {
    std::atomic<bool> Cancelled{false};
    Deadline D = Deadline::never();
    D.withCancelFlag(&Cancelled);

    std::thread Canceller([&Cancelled, Attempt] {
      // Vary the trip point; 0ms trips between the pre-check and the
      // first stride on most schedules.
      std::this_thread::sleep_for(std::chrono::milliseconds(Attempt * 2));
      Cancelled.store(true, std::memory_order_relaxed);
    });
    ParallelTabulator::Result R = ParallelTabulator::tabulateAll(H, D, 4);
    Canceller.join();

    const std::vector<Symbol> &Members = H.allMemberNames();
    for (uint32_t MIdx = 0; MIdx != Members.size(); ++MIdx) {
      const ParallelTabulator::Column &Col = *R.Columns[MIdx];
      for (uint32_t CIdx = 0; CIdx != H.numClasses(); ++CIdx) {
        if (!Col.Computed.test(CIdx))
          continue;
        for (const BaseSpecifier &Spec : H.info(ClassId(CIdx)).DirectBases)
          EXPECT_TRUE(Col.Computed.test(Spec.Base.index()))
              << "computed entry above an uncomputed base: not a "
                 "topological prefix";
        EXPECT_EQ(renderLookupForComparison(H, Col.resultFor(H, ClassId(CIdx))),
                  renderLookupForComparison(
                      H, Serial.lookup(ClassId(CIdx), Members[MIdx])));
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForRunsEachIndexExactlyOnce) {
  for (uint32_t Threads : {1u, 2u, 7u, 16u}) {
    std::vector<std::atomic<uint32_t>> Hits(1000);
    parallelFor(Threads, 1000,
                [&](uint32_t I) { Hits[I].fetch_add(1); });
    for (uint32_t I = 0; I != 1000; ++I)
      ASSERT_EQ(Hits[I].load(), 1u) << "index " << I << " at " << Threads
                                    << " threads";
  }
}

TEST(ThreadPoolTest, DefaultThreadsIsSaneAndOverridable) {
  EXPECT_GE(defaultTabulationThreads(), 1u);
  EXPECT_LE(defaultTabulationThreads(), 8u);
  EXPECT_EQ(ParallelTabulator::resolveThreads(0),
            defaultTabulationThreads());
  EXPECT_EQ(ParallelTabulator::resolveThreads(3), 3u);
}

} // namespace
