//===- StressTest.cpp - Structural extremes -----------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Degenerate and extreme hierarchy shapes: the engines must stay
/// correct (and finish) on inputs far outside anything a human writes.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(StressTest, EmptyHierarchy) {
  Hierarchy H;
  DiagnosticEngine Diags;
  ASSERT_TRUE(H.finalize(Diags));
  DominanceLookupEngine Engine(H);
  EXPECT_EQ(H.numClasses(), 0u);
  EXPECT_TRUE(H.allMemberNames().empty());
}

TEST(StressTest, SingleClassNoMembers) {
  HierarchyBuilder B;
  B.addClass("Lonely");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  EXPECT_EQ(Engine.lookup(H.findClass("Lonely"), "anything").Status,
            LookupStatus::NotFound);
}

TEST(StressTest, ThousandDirectBases) {
  // One class with 1000 direct bases, each declaring m: a single join
  // with a 1000-way conflict.
  HierarchyBuilder B;
  for (uint32_t I = 0; I != 1000; ++I)
    B.addClass("B" + std::to_string(I)).withMember("m");
  auto Join = B.addClass("Join");
  for (uint32_t I = 0; I != 1000; ++I)
    Join.withBase("B" + std::to_string(I));
  Hierarchy H = std::move(B).build();

  DominanceLookupEngine Engine(H);
  EXPECT_EQ(Engine.lookup(H.findClass("Join"), "m").Status,
            LookupStatus::Ambiguous);

  // A redeclaring subclass resolves all 1000 at once.
  HierarchyBuilder B2;
  for (uint32_t I = 0; I != 1000; ++I)
    B2.addClass("B" + std::to_string(I)).withMember("m");
  auto Join2 = B2.addClass("Join");
  for (uint32_t I = 0; I != 1000; ++I)
    Join2.withBase("B" + std::to_string(I));
  B2.addClass("Fix").withBase("Join").withMember("m");
  Hierarchy H2 = std::move(B2).build();
  DominanceLookupEngine Engine2(H2);
  LookupResult R = Engine2.lookup(H2.findClass("Fix"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H2.findClass("Fix"));
}

TEST(StressTest, ThousandMemberNames) {
  // Column-per-member bookkeeping with |M| = 1000 on a small hierarchy.
  HierarchyBuilder B;
  auto A = B.addClass("A");
  for (uint32_t I = 0; I != 1000; ++I)
    A.withMember("m" + std::to_string(I));
  B.addClass("D").withBase("A");
  Hierarchy H = std::move(B).build();

  DominanceLookupEngine Engine(H);
  EXPECT_EQ(H.allMemberNames().size(), 1000u);
  for (uint32_t I = 0; I < 1000; I += 97) {
    LookupResult R =
        Engine.lookup(H.findClass("D"), "m" + std::to_string(I));
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
    EXPECT_EQ(R.DefiningClass, H.findClass("A"));
  }
}

TEST(StressTest, DeepVirtualChain) {
  // 5000 alternating virtual/non-virtual edges; the fixed parts keep
  // resetting, so abstractions stay tiny while witnesses are long.
  HierarchyBuilder B;
  B.addClass("C0").withMember("m");
  for (uint32_t I = 1; I != 5000; ++I) {
    auto C = B.addClass("C" + std::to_string(I));
    if (I % 2)
      C.withVirtualBase("C" + std::to_string(I - 1));
    else
      C.withBase("C" + std::to_string(I - 1));
  }
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  LookupResult R = Engine.lookup(H.findClass("C4999"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("C0"));
  EXPECT_EQ(R.Witness->length(), 5000u);
  EXPECT_TRUE(isValidPath(H, *R.Witness));
}

TEST(StressTest, WideFanTimesDeepChainStaysPolynomial) {
  // 400-arm fan (blue sets of size 400) to make sure nothing in the
  // quadratic path is accidentally worse than quadratic in practice.
  Workload W = makeAmbiguityFan(400);
  DominanceLookupEngine Engine(W.H);
  Symbol M = W.H.findName("m");
  LookupResult R = Engine.lookup(W.QueryClasses.front(), M);
  EXPECT_EQ(R.Status, LookupStatus::Ambiguous);
  const auto &E = Engine.entry(W.QueryClasses.front(), M);
  EXPECT_EQ(E.Blues.size(), 400u);
}

TEST(StressTest, ManyIndependentComponents) {
  // A forest of 500 disjoint pairs: closures and tables must not mix
  // components.
  HierarchyBuilder B;
  for (uint32_t I = 0; I != 500; ++I) {
    B.addClass("Base" + std::to_string(I)).withMember("m");
    B.addClass("Derived" + std::to_string(I))
        .withBase("Base" + std::to_string(I));
  }
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  for (uint32_t I = 0; I < 500; I += 61) {
    LookupResult R =
        Engine.lookup(H.findClass("Derived" + std::to_string(I)), "m");
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
    EXPECT_EQ(R.DefiningClass, H.findClass("Base" + std::to_string(I)));
    EXPECT_FALSE(H.isBaseOf(H.findClass("Base" + std::to_string(I)),
                            H.findClass("Derived" + std::to_string(
                                            (I + 61) % 500))));
  }
}
