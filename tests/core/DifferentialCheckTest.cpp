//===- DifferentialCheckTest.cpp -------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/core/DifferentialCheck.h"

#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(DifferentialCheckTest, PassesOnPaperFigures) {
  for (auto Make : {&makeFigure1, &makeFigure2, &makeFigure3, &makeFigure9}) {
    Hierarchy H = Make();
    DifferentialReport Report = runDifferentialCheck(H);
    EXPECT_TRUE(Report.passed())
        << (Report.Mismatches.empty() ? "" : Report.Mismatches.front());
    EXPECT_GT(Report.PairsChecked, 0u);
    EXPECT_EQ(Report.PairsSkipped, 0u);
  }
}

TEST(DifferentialCheckTest, PassesOnStructuredFamilies) {
  EXPECT_TRUE(runDifferentialCheck(makeIostreamLike().H).passed());
  EXPECT_TRUE(runDifferentialCheck(makeGrid(4, 4).H).passed());
  EXPECT_TRUE(runDifferentialCheck(makeAmbiguityFan(10).H).passed());
  EXPECT_TRUE(
      runDifferentialCheck(makeNonVirtualDiamondStack(6, true).H).passed());
}

TEST(DifferentialCheckTest, PassesOnRandomSweep) {
  RandomHierarchyParams Params;
  Params.NumClasses = 20;
  Params.VirtualEdgeChance = 0.3;
  Params.StaticChance = 0.35;
  for (uint64_t Seed = 7000; Seed != 7030; ++Seed) {
    DifferentialReport Report =
        runDifferentialCheck(makeRandomHierarchy(Params, Seed).H);
    EXPECT_TRUE(Report.passed())
        << "seed " << Seed << ": "
        << (Report.Mismatches.empty() ? "" : Report.Mismatches.front());
  }
}

TEST(DifferentialCheckTest, CountsPairs) {
  Hierarchy H = makeFigure3();
  DifferentialReport Report = runDifferentialCheck(H);
  // 8 classes x 2 member names.
  EXPECT_EQ(Report.PairsChecked, 16u);
}

TEST(DifferentialCheckTest, SkipsWhenReferenceOverflows) {
  // 20 stacked non-virtual diamonds blow any 2^18 subobject budget; the
  // audit must degrade to "skipped", not fail or hang.
  Workload W = makeNonVirtualDiamondStack(20, /*RedeclareAtJoins=*/true);
  DifferentialReport Report = runDifferentialCheck(W.H, /*MaxSubobjects=*/4096);
  EXPECT_TRUE(Report.passed());
  EXPECT_GT(Report.PairsSkipped, 0u);
}

TEST(DifferentialCheckTest, SkipsWhenFaultInjectorTripsReferences) {
  // Force every metered reference lookup to exhaust on its first step:
  // the audit must count those pairs as skipped - never as mismatches,
  // since a degraded answer is not a wrong answer.
  Hierarchy H = makeFigure3();
  ResourceBudget Budget;
  Budget.FaultAfterChecks = 1;
  DifferentialReport Report = runDifferentialCheck(H, Budget);
  EXPECT_TRUE(Report.passed());
  EXPECT_GT(Report.PairsSkipped, 0u);
  EXPECT_EQ(Report.PairsChecked + Report.PairsSkipped, 16u);
}

TEST(DifferentialCheckTest, BudgetOverloadMatchesLegacyOverload) {
  Hierarchy H = makeFigure3();
  DifferentialReport Legacy = runDifferentialCheck(H, size_t(1) << 18);
  ResourceBudget Budget;
  Budget.MaxSubobjects = size_t(1) << 18;
  Budget.MaxDefsPerClass = size_t(1) << 18;
  DifferentialReport Budgeted = runDifferentialCheck(H, Budget);
  EXPECT_EQ(Legacy.PairsChecked, Budgeted.PairsChecked);
  EXPECT_EQ(Legacy.PairsSkipped, Budgeted.PairsSkipped);
  EXPECT_EQ(Legacy.Mismatches, Budgeted.Mismatches);
}
