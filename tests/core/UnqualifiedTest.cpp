//===- UnqualifiedTest.cpp - Experiment E16 (Section 6 scopes) -------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Section 6: unqualified-name resolution is traditional nested-scope
/// lookup where class scopes delegate to the member-lookup problem.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/UnqualifiedLookup.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

class UnqualifiedTest : public ::testing::Test {
protected:
  UnqualifiedTest() : H(makeFigure3()), Engine(H), Scopes(Engine) {}

  Hierarchy H;
  DominanceLookupEngine Engine;
  ScopeStack Scopes;
};

} // namespace

TEST_F(UnqualifiedTest, InnermostLexicalScopeWins) {
  Scopes.pushLexicalScope("global");
  Scopes.declare("x");
  Scopes.pushLexicalScope("block");
  Scopes.declare("x");

  ResolvedName R = Scopes.resolve("x");
  EXPECT_EQ(R.NameKind, ResolvedName::Kind::LocalName);
  EXPECT_EQ(R.ScopeName, "block");
  EXPECT_EQ(R.ScopeIndex, 1u);
}

TEST_F(UnqualifiedTest, FallsThroughToOuterScope) {
  Scopes.pushLexicalScope("global");
  Scopes.declare("g");
  Scopes.pushLexicalScope("block");

  ResolvedName R = Scopes.resolve("g");
  EXPECT_EQ(R.NameKind, ResolvedName::Kind::LocalName);
  EXPECT_EQ(R.ScopeName, "global");
}

TEST_F(UnqualifiedTest, ClassScopeUsesMemberLookup) {
  // Inside a member function of H, the name foo resolves via
  // lookup(H, foo) = G::foo.
  Scopes.pushLexicalScope("global");
  Scopes.pushClassScope(H.findClass("H"));
  Scopes.pushLexicalScope("memberFnBody");

  ResolvedName R = Scopes.resolve("foo");
  ASSERT_EQ(R.NameKind, ResolvedName::Kind::Member);
  EXPECT_EQ(R.ClassScope, H.findClass("H"));
  ASSERT_TRUE(R.MemberResult.has_value());
  EXPECT_EQ(R.MemberResult->Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.MemberResult->DefiningClass, H.findClass("G"));
}

TEST_F(UnqualifiedTest, LocalVariableShadowsMember) {
  Scopes.pushClassScope(H.findClass("H"));
  Scopes.pushLexicalScope("memberFnBody");
  Scopes.declare("foo");

  ResolvedName R = Scopes.resolve("foo");
  EXPECT_EQ(R.NameKind, ResolvedName::Kind::LocalName);
}

TEST_F(UnqualifiedTest, AmbiguousMemberStopsTheWalk) {
  // lookup(H, bar) is ambiguous. The class scope still *binds* the
  // name - resolution does not silently skip to an outer declaration.
  Scopes.pushLexicalScope("global");
  Scopes.declare("bar"); // a would-be outer binding
  Scopes.pushClassScope(H.findClass("H"));
  Scopes.pushLexicalScope("memberFnBody");

  ResolvedName R = Scopes.resolve("bar");
  ASSERT_EQ(R.NameKind, ResolvedName::Kind::Member);
  ASSERT_TRUE(R.MemberResult.has_value());
  EXPECT_EQ(R.MemberResult->Status, LookupStatus::Ambiguous);
}

TEST_F(UnqualifiedTest, UnknownMemberContinuesOutward) {
  Scopes.pushLexicalScope("global");
  Scopes.declare("helper");
  Scopes.pushClassScope(H.findClass("H"));

  ResolvedName R = Scopes.resolve("helper");
  EXPECT_EQ(R.NameKind, ResolvedName::Kind::LocalName);
  EXPECT_EQ(R.ScopeName, "global");
}

TEST_F(UnqualifiedTest, NestedClassScopesResolveInnermostFirst) {
  // A member function of G nested (lexically) inside code of H: G's
  // scope is searched first.
  Scopes.pushClassScope(H.findClass("H"));
  Scopes.pushClassScope(H.findClass("G"));

  ResolvedName R = Scopes.resolve("bar");
  ASSERT_EQ(R.NameKind, ResolvedName::Kind::Member);
  EXPECT_EQ(R.ClassScope, H.findClass("G"));
  EXPECT_EQ(R.MemberResult->Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.MemberResult->DefiningClass, H.findClass("G"));
}

TEST_F(UnqualifiedTest, NotFoundWhenNothingBinds) {
  Scopes.pushLexicalScope("global");
  Scopes.pushClassScope(H.findClass("A"));
  ResolvedName R = Scopes.resolve("nowhere");
  EXPECT_EQ(R.NameKind, ResolvedName::Kind::NotFound);
}

TEST_F(UnqualifiedTest, PopRestoresOuterBehavior) {
  Scopes.pushLexicalScope("global");
  Scopes.pushClassScope(H.findClass("H"));
  EXPECT_EQ(Scopes.resolve("foo").NameKind, ResolvedName::Kind::Member);
  Scopes.popScope();
  EXPECT_EQ(Scopes.resolve("foo").NameKind, ResolvedName::Kind::NotFound);
  EXPECT_EQ(Scopes.depth(), 1u);
}
