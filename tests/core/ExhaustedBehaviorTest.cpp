//===- ExhaustedBehaviorTest.cpp -------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Exhausted degradation path: when a reference engine's per-lookup
/// step budget trips (forced deterministically here via the
/// ResourceBudget fault injector), the engine must answer
/// LookupStatus::Exhausted - never crash, never return a half-computed
/// answer that looks authoritative. The Figure 8 engines take no budget
/// at all; that their hot path stays meter-free is the paper's point.
///
//===----------------------------------------------------------------------===//

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/EngineFactory.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"

#include <gtest/gtest.h>

using namespace memlook;

namespace {

Hierarchy makeDiamond() {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  B.addClass("L").withBase("A");
  B.addClass("R").withBase("A");
  B.addClass("D").withBase("L").withBase("R");
  return std::move(B).build();
}

} // namespace

TEST(ExhaustedBehaviorTest, SubobjectEngineTripsOnInjectedFault) {
  Hierarchy H = makeDiamond();
  ResourceBudget Budget;
  Budget.FaultAfterChecks = 1; // very first metered step trips
  SubobjectLookupEngine Engine(H, Budget);

  LookupResult R = Engine.lookup(H.findClass("D"), H.findName("m"));
  EXPECT_EQ(R.Status, LookupStatus::Exhausted);
  EXPECT_TRUE(isBudgetDegraded(R.Status));
}

TEST(ExhaustedBehaviorTest, SubobjectEngineAnswersWithoutFault) {
  Hierarchy H = makeDiamond();
  SubobjectLookupEngine Engine(H, ResourceBudget());
  LookupResult R = Engine.lookup(H.findClass("D"), H.findName("m"));
  // Non-virtual diamond: two A subobjects both define m -> ambiguous.
  EXPECT_EQ(R.Status, LookupStatus::Ambiguous);
}

TEST(ExhaustedBehaviorTest, PropagationEngineTripsOnInjectedFault) {
  Hierarchy H = makeDiamond();
  ResourceBudget Budget;
  Budget.FaultAfterChecks = 1;
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Enabled,
                                Budget);
  LookupResult R = Engine.lookup(H.findClass("D"), H.findName("m"));
  EXPECT_EQ(R.Status, LookupStatus::Exhausted);
  EXPECT_TRUE(isBudgetDegraded(R.Status));
  EXPECT_TRUE(Engine.exhausted(H.findName("m")));
}

TEST(ExhaustedBehaviorTest, PropagationEngineAnswersWithoutFault) {
  Hierarchy H = makeDiamond();
  NaivePropagationEngine Engine(H, NaivePropagationEngine::Killing::Enabled,
                                ResourceBudget());
  LookupResult R = Engine.lookup(H.findClass("D"), H.findName("m"));
  EXPECT_EQ(R.Status, LookupStatus::Ambiguous);
  EXPECT_FALSE(Engine.exhausted(H.findName("m")));
}

TEST(ExhaustedBehaviorTest, LaterFaultStillDegradesDeterministically) {
  // The injector is positional: the same N always trips at the same
  // point, so a degradation seen in CI reproduces exactly.
  Hierarchy H = makeDiamond();
  for (size_t N : {1u, 2u, 3u}) {
    ResourceBudget Budget;
    Budget.FaultAfterChecks = N;
    SubobjectLookupEngine First(H, Budget);
    SubobjectLookupEngine Second(H, Budget);
    LookupResult A = First.lookup(H.findClass("D"), H.findName("m"));
    LookupResult B = Second.lookup(H.findClass("D"), H.findName("m"));
    EXPECT_EQ(A.Status, B.Status) << "fault at check " << N;
  }
}

TEST(ExhaustedBehaviorTest, ExhaustedIsDistinctFromOverflow) {
  EXPECT_TRUE(isBudgetDegraded(LookupStatus::Overflow));
  EXPECT_TRUE(isBudgetDegraded(LookupStatus::Exhausted));
  EXPECT_FALSE(isBudgetDegraded(LookupStatus::Unambiguous));
  EXPECT_FALSE(isBudgetDegraded(LookupStatus::Ambiguous));
  EXPECT_FALSE(isBudgetDegraded(LookupStatus::NotFound));
  EXPECT_STREQ(lookupStatusLabel(LookupStatus::Exhausted), "exhausted");
}

TEST(EngineFactoryTest, RejectsNonFinalizedHierarchy) {
  Hierarchy Draft;
  Draft.createClass("A", SourceLoc(), nullptr);
  Status S = validateForLookup(Draft);
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::NotFinalized);

  Expected<std::unique_ptr<LookupEngine>> E =
      createLookupEngine(EngineKind::RossieFriedman, Draft);
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.status().code(), ErrorCode::NotFinalized);
}

TEST(EngineFactoryTest, BuildsEveryKindAndTheyAgree) {
  Hierarchy H = makeDiamond();
  ClassId D = H.findClass("D");
  Symbol M = H.findName("m");

  for (EngineKind Kind :
       {EngineKind::Figure8Eager, EngineKind::Figure8Lazy,
        EngineKind::Figure8LazyRecursive, EngineKind::PropagationNaive,
        EngineKind::PropagationKilling, EngineKind::RossieFriedman,
        EngineKind::GxxBfs, EngineKind::TopsortShortcut}) {
    Expected<std::unique_ptr<LookupEngine>> E = createLookupEngine(Kind, H);
    ASSERT_TRUE(E.hasValue()) << engineKindName(Kind);
    LookupResult R = (*E)->lookup(D, M);
    // topsort-shortcut is documented as unsound on ambiguous programs
    // (Section 7.2); the factory only promises it constructs and
    // answers. Every sound engine must see the diamond's ambiguity.
    if (Kind != EngineKind::TopsortShortcut)
      EXPECT_EQ(R.Status, LookupStatus::Ambiguous) << engineKindName(Kind);
  }
}

TEST(EngineFactoryTest, FaultyBudgetReachesReferenceEngines) {
  Hierarchy H = makeDiamond();
  ResourceBudget Budget;
  Budget.FaultAfterChecks = 1;
  Expected<std::unique_ptr<LookupEngine>> E =
      createLookupEngine(EngineKind::RossieFriedman, H, Budget);
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ((*E)->lookup(H.findClass("D"), H.findName("m")).Status,
            LookupStatus::Exhausted);
}
