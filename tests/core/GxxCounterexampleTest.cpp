//===- GxxCounterexampleTest.cpp - Experiment E8 (Figure 9) ----------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Figure 9: "Though the lookup in line [s2] is unambiguous, the g++
/// compiler flags it as being ambiguous. (In fact, 3 of the 7 compilers
/// we tried this example on reported this lookup as being ambiguous.)"
///
/// The faithful g++-2.7.2 BFS baseline must reproduce the *wrong*
/// answer; every correct engine must resolve E::m to C::m.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/GxxBfsEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(GxxCounterexampleTest, CorrectEnginesResolveToC) {
  Hierarchy H = makeFigure9();
  ClassId E = H.findClass("E");
  ClassId C = H.findClass("C");

  DominanceLookupEngine Figure8(H);
  NaivePropagationEngine Naive(H);
  SubobjectLookupEngine Reference(H);
  for (LookupEngine *Engine :
       {static_cast<LookupEngine *>(&Figure8),
        static_cast<LookupEngine *>(&Naive),
        static_cast<LookupEngine *>(&Reference)}) {
    LookupResult R = Engine->lookup(E, "m");
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous) << Engine->engineName();
    EXPECT_EQ(R.DefiningClass, C) << Engine->engineName();
  }
}

TEST(GxxCounterexampleTest, GxxBaselineReportsSpuriousAmbiguity) {
  Hierarchy H = makeFigure9();
  GxxBfsEngine Gxx(H);
  LookupResult R = Gxx.lookup(H.findClass("E"), "m");
  EXPECT_EQ(R.Status, LookupStatus::Ambiguous)
      << "the baseline must reproduce the g++ 2.7.2 bug";
  // The premature conflict is between the A and B definitions, both of
  // which C::m would have dominated.
  ASSERT_EQ(R.AmbiguousCandidates.size(), 2u);
  std::set<std::string> Culprits;
  for (const SubobjectKey &Key : R.AmbiguousCandidates)
    Culprits.insert(std::string(H.className(Key.ldc())));
  EXPECT_EQ(Culprits, (std::set<std::string>{"A", "B"}));
}

TEST(GxxCounterexampleTest, GxxBaselineIsRightOnTheEasyCases) {
  // The bug needs a later definition dominating two earlier incomparable
  // ones; on the paper's other figures the BFS answers correctly.
  {
    Hierarchy H = makeFigure1();
    GxxBfsEngine Gxx(H);
    EXPECT_EQ(Gxx.lookup(H.findClass("E"), "m").Status,
              LookupStatus::Ambiguous)
        << "genuine ambiguity is still reported";
  }
  {
    Hierarchy H = makeFigure2();
    GxxBfsEngine Gxx(H);
    LookupResult R = Gxx.lookup(H.findClass("E"), "m");
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
    EXPECT_EQ(R.DefiningClass, H.findClass("D"));
  }
  {
    Hierarchy H = makeFigure3();
    GxxBfsEngine Gxx(H);
    LookupResult R = Gxx.lookup(H.findClass("H"), "foo");
    ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
    EXPECT_EQ(R.DefiningClass, H.findClass("G"));
  }
}

TEST(GxxCounterexampleTest, LocalDeclarationShortCircuits) {
  Hierarchy H = makeFigure9();
  GxxBfsEngine Gxx(H);
  LookupResult R = Gxx.lookup(H.findClass("C"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("C"));
}

TEST(GxxCounterexampleTest, LookupAtDIsCorrectEvenForGxx) {
  // At D (below the second A/B join) the BFS sees C::m first, which then
  // dominates A::m and B::m as they arrive: no spurious report.
  Hierarchy H = makeFigure9();
  GxxBfsEngine Gxx(H);
  LookupResult R = Gxx.lookup(H.findClass("D"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("C"));
}

TEST(GxxCounterexampleTest, OverflowOnExponentialSubobjectGraphs) {
  // Unlike the Figure 8 engine, the traversal baseline inherits the
  // subobject graph's exponential worst case.
  HierarchyBuilder B;
  B.addClass("J0").withMember("m");
  for (uint32_t I = 1; I <= 16; ++I) {
    std::string Below = "J" + std::to_string(I - 1);
    B.addClass("L" + std::to_string(I)).withBase(Below);
    B.addClass("R" + std::to_string(I)).withBase(Below);
    B.addClass("J" + std::to_string(I))
        .withBase("L" + std::to_string(I))
        .withBase("R" + std::to_string(I))
        .withMember("m");
  }
  Hierarchy H = std::move(B).build();
  GxxBfsEngine Gxx(H, /*MaxSubobjects=*/5000);
  // J16 declares m itself, which short-circuits; query one level up
  // where the scan is actually needed.
  EXPECT_EQ(Gxx.lookup(H.findClass("L16"), "m").Status,
            LookupStatus::Overflow);

  DominanceLookupEngine Figure8(H);
  EXPECT_EQ(Figure8.lookup(H.findClass("L16"), H.findName("m")).Status,
            LookupStatus::Unambiguous)
      << "the paper's algorithm is immune to the blowup";
}
