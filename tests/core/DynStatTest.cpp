//===- DynStatTest.cpp - Section 7.1 dyn/stat operations --------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Section 7.1 relates the Rossie-Friedman lookups to the paper's:
///
///     dyn(m, s)  = lookup(mdc(s), m)
///     stat(m, s) = lookup(ldc(s), m) o s
///
/// dyn models a virtual call (resolve against the complete object's
/// class); stat models a non-virtual call (resolve against the static
/// type, then re-embed). These tests exercise both on hierarchies where
/// they differ - the essence of virtual dispatch.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/SubobjectLookupEngine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// Shape with an override: Base::f is redefined in Derived.
///   struct Base { f; };  struct Mid : Base {};
///   struct Derived : Mid { f; };
Hierarchy makeOverrideChain() {
  HierarchyBuilder B;
  B.addClass("Base").withMember("f");
  B.addClass("Mid").withBase("Base");
  B.addClass("Derived").withBase("Mid").withMember("f");
  return std::move(B).build();
}

} // namespace

TEST(DynStatTest, DynResolvesAgainstTheCompleteObject) {
  Hierarchy H = makeOverrideChain();
  SubobjectLookupEngine Engine(H);
  ClassId Derived = H.findClass("Derived");
  Symbol F = H.findName("f");

  // The Base subobject inside a Derived object.
  SubobjectKey BaseSub{{H.findClass("Base"), H.findClass("Mid"), Derived},
                       Derived};
  LookupResult Dyn = Engine.dynLookup(Derived, BaseSub, F);
  ASSERT_EQ(Dyn.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(Dyn.DefiningClass, Derived)
      << "virtual dispatch sees the override";
}

TEST(DynStatTest, StatResolvesAgainstTheStaticType) {
  Hierarchy H = makeOverrideChain();
  SubobjectLookupEngine Engine(H);
  ClassId Derived = H.findClass("Derived");
  Symbol F = H.findName("f");

  SubobjectKey BaseSub{{H.findClass("Base"), H.findClass("Mid"), Derived},
                       Derived};
  LookupResult Stat = Engine.statLookup(Derived, BaseSub, F);
  ASSERT_EQ(Stat.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(Stat.DefiningClass, H.findClass("Base"))
      << "a non-virtual call through Base* stays at Base::f";
  // The re-embedded subobject lives inside the complete object.
  ASSERT_TRUE(Stat.Subobject.has_value());
  EXPECT_EQ(Stat.Subobject->Mdc, Derived);
  EXPECT_EQ(Stat.Subobject->ldc(), H.findClass("Base"));
}

TEST(DynStatTest, DynEqualsLookupAtMdc) {
  // The defining equation, checked over every subobject of Figure 3's H.
  Hierarchy H = makeFigure3();
  SubobjectLookupEngine Engine(H);
  ClassId Complete = H.findClass("H");
  const SubobjectGraph *Graph = Engine.graphFor(Complete);
  ASSERT_NE(Graph, nullptr);

  for (Symbol Member : H.allMemberNames())
    for (uint32_t Idx = 0; Idx != Graph->numSubobjects(); ++Idx) {
      const SubobjectKey &Key = Graph->subobject(SubobjectId(Idx)).Key;
      LookupResult Dyn = Engine.dynLookup(Complete, Key, Member);
      LookupResult Direct = Engine.lookup(Complete, Member);
      EXPECT_EQ(comparisonKey(H, Dyn), comparisonKey(H, Direct));
    }
}

TEST(DynStatTest, StatOnTheCompleteSubobjectIsPlainLookup) {
  // s = [<C>]: stat(m, s) composes with the identity.
  Hierarchy H = makeFigure2();
  SubobjectLookupEngine Engine(H);
  ClassId E = H.findClass("E");
  Symbol M = H.findName("m");
  SubobjectKey Root{{E}, E};
  EXPECT_EQ(comparisonKey(H, Engine.statLookup(E, Root, M)),
            comparisonKey(H, Engine.lookup(E, M)));
}

TEST(DynStatTest, StatCanBeAmbiguousWhileDynIsNot) {
  // In Figure 3, lookup(F, bar) is ambiguous but lookup(H, bar) is also
  // ambiguous; use foo instead: lookup(F, foo) ambiguous (two A copies
  // through the virtual D), lookup(H, foo) = G::foo. So a non-virtual
  // call through an F* fails where a virtual call on the H object
  // succeeds.
  Hierarchy H = makeFigure3();
  SubobjectLookupEngine Engine(H);
  ClassId Complete = H.findClass("H");
  Symbol Foo = H.findName("foo");

  SubobjectKey FSub{{H.findClass("F"), Complete}, Complete};
  LookupResult Stat = Engine.statLookup(Complete, FSub, Foo);
  EXPECT_EQ(Stat.Status, LookupStatus::Ambiguous);

  LookupResult Dyn = Engine.dynLookup(Complete, FSub, Foo);
  ASSERT_EQ(Dyn.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(Dyn.DefiningClass, H.findClass("G"));
}

TEST(DynStatTest, StatReembeddingLandsOnARealSubobject) {
  // stat's composed key must name an actual subobject of the complete
  // object - across all subobjects and members of Figure 9.
  Hierarchy H = makeFigure9();
  SubobjectLookupEngine Engine(H);
  ClassId Complete = H.findClass("E");
  const SubobjectGraph *Graph = Engine.graphFor(Complete);
  ASSERT_NE(Graph, nullptr);

  for (Symbol Member : H.allMemberNames())
    for (uint32_t Idx = 0; Idx != Graph->numSubobjects(); ++Idx) {
      const SubobjectKey &Key = Graph->subobject(SubobjectId(Idx)).Key;
      LookupResult Stat = Engine.statLookup(Complete, Key, Member);
      if (Stat.Status != LookupStatus::Unambiguous)
        continue;
      ASSERT_TRUE(Stat.Subobject.has_value());
      EXPECT_TRUE(Graph->find(*Stat.Subobject).isValid())
          << formatSubobjectKey(H, *Stat.Subobject);
    }
}
