//===- CompactColumnTest.cpp - Compact storage + dedup ----------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact column representation (CompactColumn.h) and everything
/// built on it: inline-vs-pooled red sets, bytewise hashing/equality,
/// witness-path reconstruction through Via chains stored compactly, and
/// structural column dedup in LookupTable. The heart is a 500+
/// random-hierarchy differential campaign comparing the deduped
/// compact table against the Rossie-Friedman subobject reference
/// (exact) and the g++ 2.7.2 BFS (approximate: it may over-report
/// ambiguity, Figure 9, and is allowed exactly that deviation).
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/GxxBfsEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"
#include "memlook/service/Snapshot.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::service;
using namespace memlook::testutil;

namespace {

TEST(CompactColumnTest, EntryLayoutIsPodAndPadFree) {
  // The static_asserts in the header are the real guards; restate the
  // load-bearing numbers where a failure produces a test name.
  EXPECT_EQ(sizeof(CompactEntry), 24u);
  EXPECT_TRUE(std::has_unique_object_representations_v<CompactEntry>);
  EXPECT_TRUE(std::is_trivially_copyable_v<CompactEntry>);

  CompactEntry E;
  EXPECT_EQ(E.kind(), EntryKind::Absent);
  EXPECT_FALSE(E.staticMerged());
}

TEST(CompactColumnTest, SingletonRedInlinesAndLargerSetsPool) {
  CompactColumn Col;
  Col.reset(3);

  // Row 0: singleton red set (the overwhelmingly common case).
  const ClassId One[1] = {ClassId(7)};
  Col.setRed(Col.slot(0), ClassId(1), One, ClassId(7), ClassId(),
             AccessSpec::Public, false);
  EXPECT_EQ(Col[0].kind(), EntryKind::Red);
  EXPECT_EQ(Col[0].PoolCount, 0u);
  EXPECT_EQ(Col.redCount(Col[0]), 1u);
  EXPECT_EQ(Col.redV(Col[0], 0), ClassId(7));
  EXPECT_TRUE(Col.redContains(Col[0], ClassId(7)));
  EXPECT_FALSE(Col.redContains(Col[0], ClassId(8)));

  // An inline singleton must round-trip Omega (the invalid id) too.
  const ClassId Omega[1] = {ClassId()};
  Col.setRed(Col.slot(1), ClassId(2), Omega, ClassId(), ClassId(),
             AccessSpec::Private, true);
  EXPECT_FALSE(Col.redV(Col[1], 0).isValid());
  EXPECT_TRUE(Col[1].staticMerged());
  EXPECT_EQ(Col[1].access(), AccessSpec::Private);

  // Row 2: a merged static set spills to the red pool.
  const ClassId Three[3] = {ClassId(2), ClassId(5), ClassId(9)};
  Col.setRed(Col.slot(2), ClassId(1), Three, ClassId(5), ClassId(0),
             AccessSpec::Protected, true);
  EXPECT_EQ(Col[2].PoolCount, 3u);
  EXPECT_EQ(Col.redCount(Col[2]), 3u);
  EXPECT_EQ(Col.redV(Col[2], 1), ClassId(5));
  EXPECT_TRUE(Col.redContains(Col[2], ClassId(9)));
  EXPECT_FALSE(Col.redContains(Col[2], ClassId(7)));

  CompactColumn::PoolStats S = Col.poolStats();
  EXPECT_EQ(S.InlineRedEntries, 2u);
  EXPECT_EQ(S.OverflowRedEntries, 1u);
  EXPECT_EQ(S.RedPoolElements, 3u);
  EXPECT_EQ(S.BlueEntries, 0u);
  EXPECT_GT(Col.heapBytes(), 0u);
}

TEST(CompactColumnTest, HashAndEqualityAreStructural) {
  auto Build = [](ClassId Via) {
    CompactColumn Col;
    Col.reset(2);
    const ClassId One[1] = {ClassId(3)};
    Col.setRed(Col.slot(0), ClassId(0), One, ClassId(3), Via,
               AccessSpec::Public, false);
    const BlueElement Blues[2] = {{ClassId(1), ClassId(0)},
                                  {ClassId(2), ClassId(0)}};
    Col.setBlue(Col.slot(1), Blues);
    return Col;
  };

  CompactColumn A = Build(ClassId(1));
  CompactColumn B = Build(ClassId(1));
  CompactColumn C = Build(ClassId(2));
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.structuralHash(), B.structuralHash());
  EXPECT_FALSE(A == C);
  EXPECT_NE(A.structuralHash(), C.structuralHash());
}

//===----------------------------------------------------------------------===//
// Witness reconstruction over compacted + deduped columns
//===----------------------------------------------------------------------===//

/// Compares every (class, member) answer of a deduped compact table
/// against the Rossie-Friedman reference (exact) and the g++ BFS
/// (allowed to over-report ambiguity only), and checks that every
/// unambiguous table answer carries a valid witness path from the
/// defining class down to the query context.
void auditCompactTable(const Hierarchy &H, const char *Tag) {
  std::shared_ptr<const LookupTable> Table = LookupTable::build(H);
  ASSERT_NE(Table, nullptr) << Tag;

  SubobjectLookupEngine Reference(H);
  GxxBfsEngine Gxx(H);

  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    ClassId C(Idx);
    for (Symbol Member : H.allMemberNames()) {
      LookupResult FromTable = Table->find(H, C, Member);

      if (FromTable.Status == LookupStatus::Unambiguous &&
          FromTable.Witness) {
        const Path &W = *FromTable.Witness;
        EXPECT_TRUE(isValidPath(H, W))
            << Tag << ": invalid witness for " << H.className(C)
            << "::" << H.spelling(Member);
        EXPECT_EQ(W.ldc(), FromTable.DefiningClass);
        EXPECT_EQ(W.mdc(), C);
      }

      LookupResult Exact = Reference.lookup(C, Member);
      if (Exact.Status != LookupStatus::Overflow)
        EXPECT_EQ(comparisonKey(H, FromTable), comparisonKey(H, Exact))
            << Tag << ": table disagrees with rossie-friedman on "
            << H.className(C) << "::" << H.spelling(Member);

      // The g++ baseline is only comparable where the paper compares
      // it: members with no static declarations. Its one-entity mirror
      // of Definition 17(2) checks a skipped same-class static pair
      // against nothing later, so in the static regime it deviates in
      // *both* directions; statics get their exact coverage from the
      // rossie-friedman comparison above.
      bool HasStaticDecl = false;
      for (uint32_t DI = 0; DI != H.numClasses() && !HasStaticDecl; ++DI)
        if (const MemberDecl *D = H.declaredMember(ClassId(DI), Member))
          HasStaticDecl = D->IsStatic;
      if (HasStaticDecl)
        continue;
      LookupResult Approx = Gxx.lookup(C, Member);
      if (Approx.Status == LookupStatus::Overflow)
        continue;
      // Figure 9: the BFS may say Ambiguous where the truth is
      // Unambiguous. Every other deviation is a bug.
      if (FromTable.Status == LookupStatus::Unambiguous &&
          Approx.Status == LookupStatus::Ambiguous)
        continue;
      EXPECT_EQ(comparisonKey(H, FromTable), comparisonKey(H, Approx))
          << Tag << ": table vs gxx beyond the allowed over-ambiguity on "
          << H.className(C) << "::" << H.spelling(Member);
    }
  }
}

TEST(CompactWitnessDifferentialTest, PaperFiguresAndFamilies) {
  auditCompactTable(makeFigure1(), "figure1");
  auditCompactTable(makeFigure2(), "figure2");
  auditCompactTable(makeFigure3(), "figure3");
  auditCompactTable(makeFigure9(), "figure9");
  auditCompactTable(makeGrid(4, 4).H, "grid");
  auditCompactTable(makeVirtualDiamondStack(6).H, "v-diamonds");
  auditCompactTable(makeModularForest(4, 2, 2, 4, 2).H, "modular");
}

class CompactWitnessCampaignTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CompactWitnessCampaignTest, RandomHierarchies) {
  // Each instance audits a batch of seeds; 13 instances x 40 seeds =
  // 520 random hierarchies through the full differential.
  RandomHierarchyParams Params;
  Params.NumClasses = 14;
  Params.AvgBases = 1.8;
  Params.VirtualEdgeChance = 0.3;
  Params.MemberPool = 4;
  Params.DeclareChance = 0.3;
  Params.StaticChance = 0.2; // merged sets exercise the red pool
  Params.UsingChance = 0.1;
  for (uint64_t Seed = GetParam() * 40; Seed != GetParam() * 40 + 40; ++Seed)
    auditCompactTable(makeRandomHierarchy(Params, Seed * 2246822519u + 11).H,
                      "campaign");
}

INSTANTIATE_TEST_SUITE_P(Batches, CompactWitnessCampaignTest,
                         ::testing::Range<uint64_t>(0, 13));

TEST(CompactDedupTest, SharedColumnYieldsDistinctWitnessPathsPerContext) {
  // Pinned: alpha and beta are declared identically on Base, so their
  // finished columns are byte-identical and the table stores one Column
  // object for both - yet each (member, context) query must still
  // reconstruct its own witness path out of the shared Via chains.
  HierarchyBuilder B;
  B.addClass("Base").withMember("alpha").withMember("beta");
  B.addClass("Mid").withVirtualBase("Base");
  B.addClass("Leaf").withBase("Mid").withVirtualBase("Base");
  Hierarchy H = std::move(B).build();

  std::shared_ptr<const LookupTable> Table = LookupTable::build(H);
  ASSERT_NE(Table, nullptr);
  EXPECT_GE(Table->buildStats().ColumnsDeduped, 1u);

  ClassId Base = H.findClass("Base");
  ClassId Mid = H.findClass("Mid");
  ClassId Leaf = H.findClass("Leaf");

  for (const char *Member : {"alpha", "beta"}) {
    Symbol M = H.findName(Member);
    LookupResult AtMid = Table->find(H, Mid, M);
    LookupResult AtLeaf = Table->find(H, Leaf, M);
    ASSERT_EQ(AtMid.Status, LookupStatus::Unambiguous) << Member;
    ASSERT_EQ(AtLeaf.Status, LookupStatus::Unambiguous) << Member;
    ASSERT_TRUE(AtMid.Witness && AtLeaf.Witness) << Member;

    // Different contexts, different witness paths - both valid, both
    // rooted at Base, each ending at its own context.
    EXPECT_NE(*AtMid.Witness, *AtLeaf.Witness) << Member;
    for (const LookupResult *R : {&AtMid, &AtLeaf}) {
      EXPECT_TRUE(isValidPath(H, *R->Witness)) << Member;
      EXPECT_EQ(R->Witness->ldc(), Base) << Member;
      EXPECT_EQ(R->DefiningClass, Base) << Member;
    }
    EXPECT_EQ(AtMid.Witness->mdc(), Mid) << Member;
    EXPECT_EQ(AtLeaf.Witness->mdc(), Leaf) << Member;
  }

  // The dedup saved real bytes: the same table without sharing (one
  // engine-owned column per member) is strictly larger per column.
  DominanceLookupEngine Engine(H);
  EXPECT_LT(Table->heapBytes(),
            Engine.tableHeapBytes() + sizeof(LookupTable) + 4096)
      << "sanity: deduped table is in the same ballpark as the engine's";
}

TEST(CompactDedupTest, CorruptionOverlayDoesNotLeakIntoDedupedSibling) {
  // The corruption hook must damage one (member, context) answer
  // without touching the byte-identical sibling that shares the Column
  // object - Overrides live on a per-member copy, never in the shared
  // compact data.
  HierarchyBuilder B;
  B.addClass("Base").withMember("alpha").withMember("beta");
  B.addClass("Leaf").withBase("Base");
  Hierarchy H = std::move(B).build();

  std::shared_ptr<const LookupTable> Table = LookupTable::build(H);
  ASSERT_NE(Table, nullptr);
  ASSERT_GE(Table->buildStats().ColumnsDeduped, 1u);

  ClassId Leaf = H.findClass("Leaf");
  Symbol Alpha = H.findName("alpha");
  Symbol Beta = H.findName("beta");

  std::shared_ptr<const LookupTable> Damaged =
      Table->cloneWithCorruptedEntry(H, Leaf, Alpha);
  ASSERT_NE(Damaged, nullptr);

  EXPECT_NE(Damaged->find(H, Leaf, Alpha).Status,
            Table->find(H, Leaf, Alpha).Status)
      << "corruption hook failed to change the answer";
  EXPECT_EQ(comparisonKey(H, Damaged->find(H, Leaf, Beta)),
            comparisonKey(H, Table->find(H, Leaf, Beta)))
      << "corrupting alpha leaked into beta through the shared column";
  EXPECT_EQ(comparisonKey(H, Table->find(H, Leaf, Alpha)),
            comparisonKey(H, Table->find(H, Leaf, Beta)))
      << "original table changed underneath the clone";
}

} // namespace
