//===- StaticMembersTest.cpp - Experiment E15 (Section 6) ------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Definitions 16/17: with static members, lookup(C, m) is defined when
/// the maximal set of Defns(C, m) is a singleton OR all its elements
/// share one defining class whose member is static (there is only one
/// entity, however many subobjects see it).
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/NaivePropagationEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// The classic replicated diamond over a static member:
///   struct A { static int s; int ns; };
///   struct B : A {};  struct C : A {};  struct D : B, C {};
/// D::s is fine (one entity); D::ns is ambiguous (two subobjects).
Hierarchy makeStaticDiamond() {
  HierarchyBuilder Builder;
  Builder.addClass("A").withStaticMember("s").withMember("ns");
  Builder.addClass("B").withBase("A");
  Builder.addClass("C").withBase("A");
  Builder.addClass("D").withBase("B").withBase("C");
  return std::move(Builder).build();
}

void expectOnAllEngines(
    const Hierarchy &H, const char *Class, const char *Member,
    LookupStatus Status, const char *DefiningClass = nullptr) {
  DominanceLookupEngine Figure8(H);
  NaivePropagationEngine Naive(H);
  NaivePropagationEngine Killing(H, NaivePropagationEngine::Killing::Enabled);
  SubobjectLookupEngine Reference(H);
  for (LookupEngine *Engine :
       {static_cast<LookupEngine *>(&Figure8),
        static_cast<LookupEngine *>(&Naive),
        static_cast<LookupEngine *>(&Killing),
        static_cast<LookupEngine *>(&Reference)}) {
    LookupResult R = Engine->lookup(H.findClass(Class), Member);
    EXPECT_EQ(R.Status, Status)
        << Engine->engineName() << " on " << Class << "::" << Member;
    if (DefiningClass && R.Status == LookupStatus::Unambiguous)
      EXPECT_EQ(R.DefiningClass, H.findClass(DefiningClass))
          << Engine->engineName();
  }
}

} // namespace

TEST(StaticMembersTest, ReplicatedStaticIsUnambiguous) {
  Hierarchy H = makeStaticDiamond();
  expectOnAllEngines(H, "D", "s", LookupStatus::Unambiguous, "A");
}

TEST(StaticMembersTest, ReplicatedNonStaticStaysAmbiguous) {
  Hierarchy H = makeStaticDiamond();
  expectOnAllEngines(H, "D", "ns", LookupStatus::Ambiguous);
}

TEST(StaticMembersTest, SharedStaticFlagIsReported) {
  Hierarchy H = makeStaticDiamond();
  SubobjectLookupEngine Reference(H);
  LookupResult R = Reference.lookup(H.findClass("D"), "s");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_TRUE(R.SharedStatic);
  EXPECT_EQ(R.DefiningClass, H.findClass("A"));

  // A genuinely singleton result is not flagged.
  LookupResult RB = Reference.lookup(H.findClass("B"), "s");
  ASSERT_EQ(RB.Status, LookupStatus::Unambiguous);
  EXPECT_FALSE(RB.SharedStatic);
}

TEST(StaticMembersTest, DifferentDefiningClassesStillAmbiguous) {
  // Definition 17(2) needs *one* defining class: two static members of
  // the same name in unrelated bases remain ambiguous.
  HierarchyBuilder Builder;
  Builder.addClass("X").withStaticMember("s");
  Builder.addClass("Y").withStaticMember("s");
  Builder.addClass("Z").withBase("X").withBase("Y");
  Hierarchy H = std::move(Builder).build();
  expectOnAllEngines(H, "Z", "s", LookupStatus::Ambiguous);
}

TEST(StaticMembersTest, StaticBeatenByDerivedRedeclaration) {
  // A derived non-static declaration dominates the inherited static.
  HierarchyBuilder Builder;
  Builder.addClass("A").withStaticMember("s");
  Builder.addClass("B").withBase("A").withMember("s");
  Builder.addClass("C").withBase("B");
  Hierarchy H = std::move(Builder).build();
  expectOnAllEngines(H, "C", "s", LookupStatus::Unambiguous, "B");
}

TEST(StaticMembersTest, DeepReplicationOfStatics) {
  // Two stacked non-virtual diamonds: four A subobjects, still one
  // static entity.
  HierarchyBuilder Builder;
  Builder.addClass("A").withStaticMember("s");
  Builder.addClass("B1").withBase("A");
  Builder.addClass("C1").withBase("A");
  Builder.addClass("J1").withBase("B1").withBase("C1");
  Builder.addClass("B2").withBase("J1");
  Builder.addClass("C2").withBase("J1");
  Builder.addClass("J2").withBase("B2").withBase("C2");
  Hierarchy H = std::move(Builder).build();
  expectOnAllEngines(H, "J2", "s", LookupStatus::Unambiguous, "A");
}

TEST(StaticMembersTest, StaticCoveredBlueScenario) {
  // The case that forces blue abstractions to carry their defining
  // class (see DominanceLookupEngine.h): at J the static X::s (two
  // subobjects) is joined by Y::s - ambiguous; further up, a
  // redeclaration in K dominates the Y definition while the remaining
  // X definitions still share one static entity with it? No - K::s is
  // its own definition and dominates everything it can reach; the
  // interesting part is the intermediate ambiguity being resolved.
  HierarchyBuilder Builder;
  Builder.addClass("X").withStaticMember("s");
  Builder.addClass("B").withBase("X");
  Builder.addClass("C").withBase("X");
  Builder.addClass("J").withBase("B").withBase("C"); // shared-static okay
  Builder.addClass("Y").withStaticMember("s");
  Builder.addClass("K").withBase("J").withBase("Y"); // X::s vs Y::s: clash
  Hierarchy H = std::move(Builder).build();

  expectOnAllEngines(H, "J", "s", LookupStatus::Unambiguous, "X");
  expectOnAllEngines(H, "K", "s", LookupStatus::Ambiguous);
}

TEST(StaticMembersTest, SetAbstractionRegression) {
  // Distilled from a randomized differential failure (generator seed
  // 31*2654435761 in DifferentialTest). A shared-static maximal set
  // whose members carry *different* leastVirtual abstractions: the
  // virtual K0 of K3 (abstraction (K0,K0)) and the non-virtual
  // K0-K1-K3 copy (abstraction (K0,Omega)). K4 redeclares the static
  // and reaches K6 virtually; K4 dominates the virtual K0 subobject but
  // NOT the non-virtual copy, so lookup(K6, s) is ambiguous (maximal =
  // {K4 subobject, K0.K1.K3.K6 subobject}, different classes).
  //
  // An implementation that collapses the static set to one
  // representative (the paper's literal "add a clause to dominates"
  // suggestion) keeps only (K0,K0), sees it dominated by K4, and
  // wrongly reports the lookup unambiguous.
  HierarchyBuilder Builder;
  Builder.addClass("K0").withStaticMember("s");
  Builder.addClass("K1").withBase("K0");
  Builder.addClass("K3").withBase("K1").withVirtualBase("K0");
  Builder.addClass("K4").withBase("K3").withBase("K1").withStaticMember("s");
  Builder.addClass("K6").withBase("K3").withVirtualBase("K4");
  Hierarchy H = std::move(Builder).build();

  expectOnAllEngines(H, "K3", "s", LookupStatus::Unambiguous, "K0");
  expectOnAllEngines(H, "K4", "s", LookupStatus::Unambiguous, "K4");
  expectOnAllEngines(H, "K6", "s", LookupStatus::Ambiguous);
}

TEST(StaticMembersTest, VirtualSharedStaticIsNotFlaggedAsMerged) {
  // One shared virtual base: a single subobject, so Definition 17(1)
  // applies and no engine should report the shared-static (17(2)) case.
  HierarchyBuilder Builder;
  Builder.addClass("S").withStaticMember("s");
  Builder.addClass("L").withVirtualBase("S");
  Builder.addClass("R").withVirtualBase("S");
  Builder.addClass("D").withBase("L").withBase("R");
  Hierarchy H = std::move(Builder).build();

  DominanceLookupEngine Figure8(H);
  LookupResult R = Figure8.lookup(H.findClass("D"), "s");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("S"));
  EXPECT_FALSE(R.SharedStatic) << "only one S subobject exists";

  SubobjectLookupEngine Reference(H);
  LookupResult RRef = Reference.lookup(H.findClass("D"), "s");
  EXPECT_FALSE(RRef.SharedStatic);
}

TEST(StaticMembersTest, TypeNamesBehaveLikeStatics) {
  // Section 6: nested type names and enumerators are treated exactly
  // like static members for lookup; the model encodes them with
  // IsStatic = true.
  HierarchyBuilder Builder;
  Builder.addClass("Base").withStaticMember("value_type");
  Builder.addClass("L").withBase("Base");
  Builder.addClass("R").withBase("Base");
  Builder.addClass("Join").withBase("L").withBase("R");
  Hierarchy H = std::move(Builder).build();
  expectOnAllEngines(H, "Join", "value_type", LookupStatus::Unambiguous,
                     "Base");
}
