//===- TopsortShortcutTest.cpp - Experiment E17 (Section 7.2) --------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Section 7.2: on a program with no ambiguous lookups, picking the
/// declaring class with the maximum topological number gives the correct
/// answer. The shortcut engine must agree with Figure 8 on ambiguity-free
/// hierarchies - and is permitted to be wrong elsewhere, which a
/// dedicated test demonstrates (that is the paper's point: the hard part
/// of C++ lookup is detecting ambiguity).
///
//===----------------------------------------------------------------------===//

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/TopsortShortcutEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

/// Compares the shortcut against Figure 8 on every pair whose true
/// result is unambiguous or not-found; requires the hierarchy to be
/// ambiguity-free for full coverage.
void expectAgreesOnUnambiguous(const Hierarchy &H, const char *Tag) {
  DominanceLookupEngine Truth(H);
  TopsortShortcutEngine Shortcut(H);
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx)
    for (Symbol Member : H.allMemberNames()) {
      LookupResult Expected = Truth.lookup(ClassId(Idx), Member);
      if (Expected.Status == LookupStatus::Ambiguous)
        continue;
      LookupResult Got = Shortcut.lookup(ClassId(Idx), Member);
      EXPECT_EQ(comparisonKey(H, Expected), comparisonKey(H, Got))
          << Tag << ": " << H.className(ClassId(Idx))
          << "::" << H.spelling(Member);
    }
}

} // namespace

TEST(TopsortShortcutTest, AgreesOnChains) {
  expectAgreesOnUnambiguous(makeChain(30, 4).H, "chain");
}

TEST(TopsortShortcutTest, AgreesOnVirtualDiamonds) {
  expectAgreesOnUnambiguous(makeVirtualDiamondStack(8).H, "v-diamonds");
  expectAgreesOnUnambiguous(makeVirtualDiamondStack(8, true).H,
                            "v-diamonds-redeclared");
}

TEST(TopsortShortcutTest, AgreesOnRedeclaredNonVirtualDiamonds) {
  expectAgreesOnUnambiguous(makeNonVirtualDiamondStack(6, true).H,
                            "nv-redeclared");
}

TEST(TopsortShortcutTest, AgreesOnForestsAndIostream) {
  expectAgreesOnUnambiguous(makeWideForest(3, 2, 3).H, "forest");
  expectAgreesOnUnambiguous(makeIostreamLike().H, "iostream");
}

TEST(TopsortShortcutTest, AgreesOnUnambiguousPairsOfRandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 20;
  Params.VirtualEdgeChance = 0.4;
  Params.StaticChance = 0.0;
  for (uint64_t Seed = 40; Seed != 60; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed);
    // Only unambiguous pairs are comparable; the helper skips the rest.
    expectAgreesOnUnambiguous(W.H, "random");
  }
}

TEST(TopsortShortcutTest, IsConfidentlyWrongOnAmbiguousLookups) {
  // Figure 1: the true answer is "ambiguous"; the shortcut just returns
  // the topologically-largest declaring class (D). This is exactly the
  // unsoundness the paper ascribes to the assume-well-typed approach.
  Hierarchy H = makeFigure1();
  TopsortShortcutEngine Shortcut(H);
  LookupResult R = Shortcut.lookup(H.findClass("E"), "m");
  EXPECT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("D"));

  DominanceLookupEngine Truth(H);
  EXPECT_EQ(Truth.lookup(H.findClass("E"), H.findName("m")).Status,
            LookupStatus::Ambiguous);
}

TEST(TopsortShortcutTest, NotFoundForForeignNames) {
  Hierarchy H = makeChain(5).H;
  TopsortShortcutEngine Shortcut(H);
  EXPECT_EQ(Shortcut.lookup(H.findClass("C4"), "nosuch").Status,
            LookupStatus::NotFound);
}
