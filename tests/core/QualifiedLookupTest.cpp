//===- QualifiedLookupTest.cpp -----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// `x.B::m` (Section 6's other qualified form): the naming class must be
/// an unambiguous base, the member resolves in B's context, and the
/// result re-embeds into the complete object.
///
//===----------------------------------------------------------------------===//

#include "memlook/core/QualifiedLookup.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/subobject/SubobjectCount.h"
#include "memlook/subobject/SubobjectGraph.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

using Kind = QualifiedLookupResult::Kind;

TEST(QualifiedLookupTest, BypassesADerivedOverrider) {
  // The textbook use: x.Base::m reaches the hidden base member.
  HierarchyBuilder B;
  B.addClass("Base").withMember("m");
  B.addClass("Derived").withBase("Base").withMember("m");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);

  ClassId Derived = H.findClass("Derived");
  QualifiedLookupResult R = qualifiedMemberLookup(
      H, Engine, Derived, H.findClass("Base"), H.findName("m"));
  ASSERT_EQ(R.ResultKind, Kind::Ok);
  EXPECT_EQ(R.Member.DefiningClass, H.findClass("Base"));
  EXPECT_EQ(formatSubobjectKey(H, *R.Member.Subobject), "Base.Derived");

  // The plain lookup, in contrast, finds the overrider.
  EXPECT_EQ(Engine.lookup(Derived, "m").DefiningClass, Derived);
}

TEST(QualifiedLookupTest, SelfQualificationIsPlainLookup) {
  Hierarchy H = makeFigure2();
  DominanceLookupEngine Engine(H);
  ClassId E = H.findClass("E");
  QualifiedLookupResult R =
      qualifiedMemberLookup(H, Engine, E, E, H.findName("m"));
  ASSERT_EQ(R.ResultKind, Kind::Ok);
  EXPECT_EQ(R.Member.DefiningClass, H.findClass("D"));
}

TEST(QualifiedLookupTest, ReplicatedBaseIsRejected) {
  // Figure 1: E has two A (and two B) subobjects, so e.A::m and e.B::m
  // fail before member lookup - the conversion is ambiguous.
  Hierarchy H = makeFigure1();
  DominanceLookupEngine Engine(H);
  ClassId E = H.findClass("E");
  Symbol M = H.findName("m");

  EXPECT_EQ(qualifiedMemberLookup(H, Engine, E, H.findClass("A"), M)
                .ResultKind,
            Kind::AmbiguousBase);
  EXPECT_EQ(qualifiedMemberLookup(H, Engine, E, H.findClass("B"), M)
                .ResultKind,
            Kind::AmbiguousBase);
  // C and D are unique bases; through D the lookup succeeds and even
  // disambiguates the Figure 1 conflict.
  QualifiedLookupResult ViaD =
      qualifiedMemberLookup(H, Engine, E, H.findClass("D"), M);
  ASSERT_EQ(ViaD.ResultKind, Kind::Ok);
  EXPECT_EQ(ViaD.Member.DefiningClass, H.findClass("D"));
}

TEST(QualifiedLookupTest, VirtualSharingMakesTheBaseUnique) {
  // Figure 2: the virtual B collapses to one subobject, so e.A::m works.
  Hierarchy H = makeFigure2();
  DominanceLookupEngine Engine(H);
  ClassId E = H.findClass("E");
  QualifiedLookupResult R = qualifiedMemberLookup(
      H, Engine, E, H.findClass("A"), H.findName("m"));
  ASSERT_EQ(R.ResultKind, Kind::Ok);
  EXPECT_EQ(R.Member.DefiningClass, H.findClass("A"));
  EXPECT_EQ(formatSubobjectKey(H, *R.Member.Subobject), "AB*E");
}

TEST(QualifiedLookupTest, UnrelatedClassIsNotABase) {
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Engine(H);
  EXPECT_EQ(qualifiedMemberLookup(H, Engine, H.findClass("G"),
                                  H.findClass("E"), H.findName("bar"))
                .ResultKind,
            Kind::NotABase);
}

TEST(QualifiedLookupTest, MemberProblemIsReportedAfterBaseCheck) {
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Engine(H);
  ClassId HClass = H.findClass("H");

  // F is a unique base of H, but lookup(F, bar) is ambiguous.
  QualifiedLookupResult Ambig = qualifiedMemberLookup(
      H, Engine, HClass, H.findClass("F"), H.findName("bar"));
  EXPECT_EQ(Ambig.ResultKind, Kind::MemberProblem);
  EXPECT_EQ(Ambig.Member.Status, LookupStatus::Ambiguous);

  // And an unknown member reports NotFound through the same channel.
  QualifiedLookupResult Missing = qualifiedMemberLookup(
      H, Engine, HClass, H.findClass("F"), H.internName("zap"));
  EXPECT_EQ(Missing.ResultKind, Kind::MemberProblem);
  EXPECT_EQ(Missing.Member.Status, LookupStatus::NotFound);
}

TEST(QualifiedLookupTest, QualificationCanRescueAnAmbiguousPlainLookup) {
  // lookup(H, bar) is ambiguous, but h.G::bar and h.E::bar both resolve.
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Engine(H);
  ClassId HClass = H.findClass("H");
  Symbol Bar = H.findName("bar");

  EXPECT_EQ(Engine.lookup(HClass, Bar).Status, LookupStatus::Ambiguous);

  QualifiedLookupResult ViaG =
      qualifiedMemberLookup(H, Engine, HClass, H.findClass("G"), Bar);
  ASSERT_EQ(ViaG.ResultKind, Kind::Ok);
  EXPECT_EQ(ViaG.Member.DefiningClass, H.findClass("G"));
  EXPECT_EQ(formatSubobjectKey(H, *ViaG.Member.Subobject), "GH");

  QualifiedLookupResult ViaE =
      qualifiedMemberLookup(H, Engine, HClass, H.findClass("E"), Bar);
  ASSERT_EQ(ViaE.ResultKind, Kind::Ok);
  EXPECT_EQ(ViaE.Member.DefiningClass, H.findClass("E"));
  EXPECT_EQ(formatSubobjectKey(H, *ViaE.Member.Subobject), "EFH");
}

TEST(QualifiedLookupTest, ReembeddedWitnessIsValid) {
  Hierarchy H = makeFigure3();
  DominanceLookupEngine Engine(H);
  QualifiedLookupResult R = qualifiedMemberLookup(
      H, Engine, H.findClass("H"), H.findClass("G"), H.findName("foo"));
  ASSERT_EQ(R.ResultKind, Kind::Ok);
  ASSERT_TRUE(R.Member.Witness.has_value());
  EXPECT_TRUE(isValidPath(H, *R.Member.Witness));
  EXPECT_EQ(R.Member.Witness->mdc(), H.findClass("H"));
  EXPECT_EQ(subobjectKey(H, *R.Member.Witness), *R.Member.Subobject);
}

TEST(QualifiedLookupTest, CountWithLdcMatchesMaterializedGraphs) {
  RandomHierarchyParams Params;
  Params.NumClasses = 16;
  Params.AvgBases = 1.9;
  Params.VirtualEdgeChance = 0.35;
  for (uint64_t Seed = 400; Seed != 420; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed);
    for (ClassId C : W.QueryClasses) {
      auto Graph = SubobjectGraph::build(W.H, C, 1u << 16);
      if (!Graph)
        continue;
      for (uint32_t L = 0; L != W.H.numClasses(); ++L)
        EXPECT_EQ(countSubobjectsWithLdc(W.H, C, ClassId(L)),
                  Graph->countWithLdc(ClassId(L)))
            << W.H.className(C) << " / " << W.H.className(ClassId(L))
            << " seed " << Seed;
    }
  }
}
