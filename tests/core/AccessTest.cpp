//===- AccessTest.cpp - Experiment E16 (Section 6 access rights) -----------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Section 6: "The access rights do not affect the member lookup process
/// in any way; they are applied only after a successful member lookup to
/// determine if that particular member access is legal."
///
//===----------------------------------------------------------------------===//

#include "memlook/core/AccessControl.h"
#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

Hierarchy makeAccessHierarchy() {
  // class Base { public: p; protected: q; private: r; };
  // class Pub : public Base {};
  // class Prot : protected Base {};
  // class Priv : private Base {};
  HierarchyBuilder B;
  B.addClass("Base")
      .withMember("p", AccessSpec::Public)
      .withMember("q", AccessSpec::Protected)
      .withMember("r", AccessSpec::Private);
  B.addClass("Pub").withBase("Base", AccessSpec::Public);
  B.addClass("Prot").withBase("Base", AccessSpec::Protected);
  B.addClass("Priv").withBase("Base", AccessSpec::Private);
  B.addClass("PubPub").withBase("Pub", AccessSpec::Public);
  B.addClass("PrivPub").withBase("Priv", AccessSpec::Public);
  return std::move(B).build();
}

} // namespace

TEST(AccessTest, LookupIgnoresAccessEntirely) {
  // Even a private member in a privately-inherited base resolves; only
  // the post-pass rejects the access.
  Hierarchy H = makeAccessHierarchy();
  DominanceLookupEngine Engine(H);
  LookupResult R = Engine.lookup(H.findClass("PrivPub"), "r");
  EXPECT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, H.findClass("Base"));
}

TEST(AccessTest, EffectiveAccessComposesEdges) {
  Hierarchy H = makeAccessHierarchy();
  DominanceLookupEngine Engine(H);

  auto Effective = [&](const char *Class, const char *Member) {
    LookupResult R = Engine.lookup(H.findClass(Class), Member);
    EXPECT_EQ(R.Status, LookupStatus::Unambiguous);
    const MemberDecl *Decl =
        H.declaredMember(R.DefiningClass, H.findName(Member));
    return effectiveAccess(H, *R.Witness, Decl->Access);
  };

  // Direct member of Base: its declared access.
  EXPECT_EQ(Effective("Base", "p"), AccessSpec::Public);
  EXPECT_EQ(Effective("Base", "q"), AccessSpec::Protected);
  EXPECT_EQ(Effective("Base", "r"), AccessSpec::Private);

  // Public inheritance preserves access.
  EXPECT_EQ(Effective("Pub", "p"), AccessSpec::Public);
  EXPECT_EQ(Effective("Pub", "q"), AccessSpec::Protected);

  // Protected inheritance caps public at protected.
  EXPECT_EQ(Effective("Prot", "p"), AccessSpec::Protected);
  EXPECT_EQ(Effective("Prot", "q"), AccessSpec::Protected);

  // Private inheritance demotes everything.
  EXPECT_EQ(Effective("Priv", "p"), AccessSpec::Private);
  EXPECT_EQ(Effective("Priv", "q"), AccessSpec::Private);

  // Two hops: public-over-public keeps public; public-over-private is
  // still private.
  EXPECT_EQ(Effective("PubPub", "p"), AccessSpec::Public);
  EXPECT_EQ(Effective("PrivPub", "p"), AccessSpec::Private);
}

TEST(AccessTest, IsAccessibleByContext) {
  Hierarchy H = makeAccessHierarchy();
  DominanceLookupEngine Engine(H);
  Symbol P = H.findName("p");
  Symbol Q = H.findName("q");

  LookupResult PubP = Engine.lookup(H.findClass("Pub"), P);
  EXPECT_TRUE(isAccessible(H, PubP, P, AccessContext::Outside));
  EXPECT_TRUE(isAccessible(H, PubP, P, AccessContext::DerivedMember));

  LookupResult PubQ = Engine.lookup(H.findClass("Pub"), Q);
  EXPECT_FALSE(isAccessible(H, PubQ, Q, AccessContext::Outside))
      << "protected member is not visible to outsiders";
  EXPECT_TRUE(isAccessible(H, PubQ, Q, AccessContext::DerivedMember));
  EXPECT_TRUE(isAccessible(H, PubQ, Q, AccessContext::SelfOrFriend));

  LookupResult PrivP = Engine.lookup(H.findClass("Priv"), P);
  EXPECT_FALSE(isAccessible(H, PrivP, P, AccessContext::Outside))
      << "private inheritance hides the public member";
  EXPECT_FALSE(isAccessible(H, PrivP, P, AccessContext::DerivedMember));
  EXPECT_TRUE(isAccessible(H, PrivP, P, AccessContext::SelfOrFriend));
}

TEST(AccessTest, TabulatedAccessMatchesWitnessPostPass) {
  // The Figure 8 engine tabulates effective access during propagation
  // (the extension of the paper's companion report [8]); it must agree
  // with the witness-path post-pass on arbitrary hierarchies.
  RandomHierarchyParams Params;
  Params.NumClasses = 22;
  Params.VirtualEdgeChance = 0.3;
  Params.RestrictedEdgeChance = 0.5;
  Params.StaticChance = 0.2;
  for (uint64_t Seed = 300; Seed != 320; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed);
    DominanceLookupEngine Engine(W.H);
    for (ClassId C : W.QueryClasses)
      for (Symbol Member : W.QueryMembers) {
        LookupResult R = Engine.lookup(C, Member);
        if (R.Status != LookupStatus::Unambiguous)
          continue;
        ASSERT_TRUE(R.EffectiveAccess.has_value());
        const MemberDecl *Decl =
            W.H.declaredMember(R.DefiningClass, Member);
        ASSERT_NE(Decl, nullptr);
        EXPECT_EQ(*R.EffectiveAccess,
                  effectiveAccess(W.H, *R.Witness, Decl->Access))
            << W.H.className(C) << "::" << W.H.spelling(Member) << " seed "
            << Seed;
      }
  }
}

TEST(AccessTest, TabulatedAccessOnKnownShapes) {
  Hierarchy H = makeAccessHierarchy();
  DominanceLookupEngine Engine(H);
  auto Tabulated = [&](const char *Class, const char *Member) {
    LookupResult R = Engine.lookup(H.findClass(Class), Member);
    EXPECT_EQ(R.Status, LookupStatus::Unambiguous);
    return *R.EffectiveAccess;
  };
  EXPECT_EQ(Tabulated("Pub", "p"), AccessSpec::Public);
  EXPECT_EQ(Tabulated("Prot", "p"), AccessSpec::Protected);
  EXPECT_EQ(Tabulated("Priv", "p"), AccessSpec::Private);
  EXPECT_EQ(Tabulated("PrivPub", "p"), AccessSpec::Private);
  EXPECT_EQ(Tabulated("Base", "r"), AccessSpec::Private);
}

TEST(AccessTest, AmbiguityIsDetectedBeforeAccessEvenMatters) {
  // Two privately-inherited copies: the lookup is ambiguous regardless
  // of the fact that neither copy would be accessible anyway - the
  // paper's ordering of the two checks.
  HierarchyBuilder B;
  B.addClass("A").withMember("m", AccessSpec::Private);
  B.addClass("L").withBase("A", AccessSpec::Private);
  B.addClass("R").withBase("A", AccessSpec::Private);
  B.addClass("D").withBase("L").withBase("R");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  EXPECT_EQ(Engine.lookup(H.findClass("D"), "m").Status,
            LookupStatus::Ambiguous);
}
