//===- GeneratorsTest.cpp --------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/workload/Generators.h"

#include "memlook/core/DominanceLookupEngine.h"
#include "memlook/core/SubobjectLookupEngine.h"
#include "memlook/subobject/SubobjectGraph.h"

#include <gtest/gtest.h>

using namespace memlook;

TEST(GeneratorsTest, ChainShape) {
  Workload W = makeChain(10, 3);
  EXPECT_EQ(W.H.numClasses(), 10u);
  EXPECT_EQ(W.H.numEdges(), 9u);
  ASSERT_EQ(W.QueryClasses.size(), 1u);
  EXPECT_EQ(W.H.className(W.QueryClasses.front()), "C9");
  // Declared in C0, C3, C6, C9.
  EXPECT_EQ(W.H.numMemberDecls(), 4u);
}

TEST(GeneratorsTest, ChainLookupsResolveToNearestDeclaration) {
  Workload W = makeChain(10, 3);
  DominanceLookupEngine Engine(W.H);
  LookupResult R = Engine.lookup(W.H.findClass("C8"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, W.H.findClass("C6"));
}

TEST(GeneratorsTest, DiamondStackSizes) {
  Workload NV = makeNonVirtualDiamondStack(5);
  EXPECT_EQ(NV.H.numClasses(), 1u + 3 * 5);
  EXPECT_EQ(NV.H.numEdges(), 4u * 5);
  Workload V = makeVirtualDiamondStack(5);
  EXPECT_EQ(V.H.numClasses(), NV.H.numClasses());
}

TEST(GeneratorsTest, NonVirtualDiamondAmbiguityProfile) {
  Workload Plain = makeNonVirtualDiamondStack(4);
  DominanceLookupEngine E1(Plain.H);
  EXPECT_EQ(E1.lookup(Plain.H.findClass("J4"), "m").Status,
            LookupStatus::Ambiguous);

  Workload Redeclared = makeNonVirtualDiamondStack(4, true);
  DominanceLookupEngine E2(Redeclared.H);
  LookupResult R = E2.lookup(Redeclared.H.findClass("J4"), "m");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, Redeclared.H.findClass("J4"));
}

TEST(GeneratorsTest, VirtualDiamondIsAmbiguityFree) {
  Workload W = makeVirtualDiamondStack(6);
  DominanceLookupEngine Engine(W.H);
  for (uint32_t Idx = 0; Idx != W.H.numClasses(); ++Idx)
    EXPECT_NE(Engine.lookup(ClassId(Idx), "m").Status,
              LookupStatus::Ambiguous)
        << W.H.className(ClassId(Idx));
}

TEST(GeneratorsTest, GridShapeAndAmbiguity) {
  Workload W = makeGrid(3, 4);
  EXPECT_EQ(W.H.numClasses(), 12u);
  // Edges: vertical 2*4 + horizontal 3*3.
  EXPECT_EQ(W.H.numEdges(), 17u);
  DominanceLookupEngine Engine(W.H);
  EXPECT_EQ(Engine.lookup(W.QueryClasses.front(), "m").Status,
            LookupStatus::Ambiguous);

  Workload Row = makeGrid(1, 6);
  DominanceLookupEngine RowEngine(Row.H);
  EXPECT_EQ(RowEngine.lookup(Row.QueryClasses.front(), "m").Status,
            LookupStatus::Unambiguous);
}

TEST(GeneratorsTest, VirtualGridSubobjectsStaySmall) {
  Workload W = makeGrid(4, 4, /*Virtual=*/true);
  auto Graph = SubobjectGraph::build(W.H, W.QueryClasses.front(),
                                     /*MaxSubobjects=*/100000);
  ASSERT_TRUE(Graph);
  Workload NV = makeGrid(4, 4, /*Virtual=*/false);
  auto NVGraph = SubobjectGraph::build(NV.H, NV.QueryClasses.front(),
                                       /*MaxSubobjects=*/100000);
  ASSERT_TRUE(NVGraph);
  EXPECT_LT(Graph->numSubobjects(), NVGraph->numSubobjects());
}

TEST(GeneratorsTest, AmbiguityFanGrowsBlueSets) {
  Workload W = makeAmbiguityFan(6);
  EXPECT_EQ(W.H.numClasses(), 2u * 6 + 5);
  DominanceLookupEngine Engine(W.H);
  Symbol M = W.H.findName("m");
  // Every spine class is ambiguous, with one more blue element each.
  for (uint32_t I = 1; I <= 5; ++I) {
    ClassId C = W.H.findClass("C" + std::to_string(I));
    const auto &E = Engine.entry(C, M);
    ASSERT_EQ(E.EntryKind, DominanceLookupEngine::Entry::Kind::Blue)
        << "C" << I;
    EXPECT_EQ(E.Blues.size(), I + 1) << "C" << I;
  }
}

TEST(GeneratorsTest, AmbiguityFanAgreesWithReference) {
  Workload W = makeAmbiguityFan(5);
  DominanceLookupEngine Figure8(W.H);
  SubobjectLookupEngine Reference(W.H);
  for (uint32_t Idx = 0; Idx != W.H.numClasses(); ++Idx) {
    LookupResult A = Figure8.lookup(ClassId(Idx), "m");
    LookupResult B = Reference.lookup(ClassId(Idx), "m");
    EXPECT_EQ(A.Status, B.Status) << W.H.className(ClassId(Idx));
  }
}

TEST(GeneratorsTest, WideForestShape) {
  Workload W = makeWideForest(3, 2, 2, 4);
  // Each tree: 1 + 2 + 4 = 7 classes.
  EXPECT_EQ(W.H.numClasses(), 21u);
  EXPECT_EQ(W.QueryClasses.size(), 3u);
  // m0..m3 declared at roots.
  EXPECT_EQ(W.H.allMemberNames().size(), 4u);
}

TEST(GeneratorsTest, RandomHierarchyIsDeterministic) {
  RandomHierarchyParams Params;
  Params.NumClasses = 30;
  Workload A = makeRandomHierarchy(Params, 42);
  Workload B = makeRandomHierarchy(Params, 42);
  ASSERT_EQ(A.H.numClasses(), B.H.numClasses());
  EXPECT_EQ(A.H.numEdges(), B.H.numEdges());
  EXPECT_EQ(A.H.numMemberDecls(), B.H.numMemberDecls());
  for (uint32_t Idx = 0; Idx != A.H.numClasses(); ++Idx) {
    const auto &BasesA = A.H.info(ClassId(Idx)).DirectBases;
    const auto &BasesB = B.H.info(ClassId(Idx)).DirectBases;
    ASSERT_EQ(BasesA.size(), BasesB.size());
    for (size_t I = 0; I != BasesA.size(); ++I) {
      EXPECT_EQ(BasesA[I].Base, BasesB[I].Base);
      EXPECT_EQ(BasesA[I].Kind, BasesB[I].Kind);
    }
  }
}

TEST(GeneratorsTest, RandomHierarchySeedsDiffer) {
  RandomHierarchyParams Params;
  Params.NumClasses = 30;
  Workload A = makeRandomHierarchy(Params, 1);
  Workload B = makeRandomHierarchy(Params, 2);
  // Extremely unlikely to coincide in both edge and member counts.
  EXPECT_TRUE(A.H.numEdges() != B.H.numEdges() ||
              A.H.numMemberDecls() != B.H.numMemberDecls());
}

TEST(GeneratorsTest, RandomHierarchyRespectsVirtualChance) {
  RandomHierarchyParams Params;
  Params.NumClasses = 200;
  Params.VirtualEdgeChance = 0.0;
  Workload None = makeRandomHierarchy(Params, 7);
  for (uint32_t Idx = 0; Idx != None.H.numClasses(); ++Idx)
    for (const BaseSpecifier &Spec : None.H.info(ClassId(Idx)).DirectBases)
      EXPECT_EQ(Spec.Kind, InheritanceKind::NonVirtual);

  Params.VirtualEdgeChance = 1.0;
  Workload All = makeRandomHierarchy(Params, 7);
  for (uint32_t Idx = 0; Idx != All.H.numClasses(); ++Idx)
    for (const BaseSpecifier &Spec : All.H.info(ClassId(Idx)).DirectBases)
      EXPECT_EQ(Spec.Kind, InheritanceKind::Virtual);
}

TEST(GeneratorsTest, IostreamLikeShape) {
  Workload W = makeIostreamLike();
  EXPECT_EQ(W.H.numClasses(), 9u);
  ClassId Ios = W.H.findClass("basic_ios");
  ClassId IStream = W.H.findClass("basic_istream");
  ASSERT_TRUE(Ios.isValid() && IStream.isValid());
  EXPECT_TRUE(W.H.isVirtualBaseOf(Ios, IStream));

  // The classic sanity check: fstream sees exactly one flags.
  DominanceLookupEngine Engine(W.H);
  LookupResult R = Engine.lookup(W.H.findClass("basic_fstream"), "flags");
  ASSERT_EQ(R.Status, LookupStatus::Unambiguous);
  EXPECT_EQ(R.DefiningClass, W.H.findClass("ios_base"));
}
