//===- tests/support/Crc32Test.cpp - CRC-32 checksum tests ----------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
//
// The snapshot format stores CRC-32C checksums on disk, so the functions
// here must keep producing the standard values forever: a silent
// algorithm change would make every existing snapshot (and the checked-in
// corrupted-file corpus) fail checksum verification. These tests pin the
// published check values for both polynomials and force every fast path
// (slice-by-8, and the hardware crc32c when the CPU has it) to agree
// with the one-table byte loop on every alignment and length class.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/Crc32.h"
#include "memlook/support/Rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace memlook {
namespace {

TEST(Crc32Test, MatchesThePublishedCheckValues) {
  // The canonical CRC-32/ISO-HDLC check value, quoted in every catalog.
  EXPECT_EQ(crc32(std::string_view("123456789")), 0xCBF43926u);
  // Empty input is the identity under the pre/post inversion.
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
  // A few more fixed points so a polynomial or reflection mistake cannot
  // hide behind a single lucky value.
  EXPECT_EQ(crc32(std::string_view("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(std::string_view("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(std::string_view(
                "The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, Crc32cMatchesThePublishedCheckValues) {
  // The canonical CRC-32C/iSCSI check value.
  EXPECT_EQ(crc32c(std::string_view("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(nullptr, 0), 0x00000000u);
  EXPECT_EQ(crc32c(std::string_view("a")), 0xC1D04330u);
  // RFC 7143's 32-bytes-of-zero test vector.
  std::string Zeros(32, '\0');
  EXPECT_EQ(crc32c(Zeros), 0x8A9136AAu);
  std::string Ones(32, '\xff');
  EXPECT_EQ(crc32c(Ones), 0x62A8AB43u);
}

TEST(Crc32Test, ChainingEqualsOneShot) {
  // 12000 bytes: both sides of some splits cross the multi-stream
  // threshold, so seeded recombination is exercised too.
  std::string Bytes;
  Rng R(0xc4c32u);
  for (int I = 0; I != 12000; ++I)
    Bytes.push_back(static_cast<char>(R.nextInRange(0, 255)));
  uint32_t OneShot = crc32(Bytes);
  uint32_t OneShotC = crc32c(Bytes);
  for (size_t Split = 0; Split <= Bytes.size(); Split += 937) {
    uint32_t First = crc32(Bytes.data(), Split);
    EXPECT_EQ(crc32(Bytes.data() + Split, Bytes.size() - Split, First),
              OneShot)
        << "split at " << Split;
    uint32_t FirstC = crc32c(Bytes.data(), Split);
    EXPECT_EQ(crc32c(Bytes.data() + Split, Bytes.size() - Split, FirstC),
              OneShotC)
        << "split at " << Split;
  }
}

TEST(Crc32Test, FastPathsAgreeWithTheByteLoop) {
  // Sweep lengths across the 8-byte fold boundary and every start
  // alignment, on random content, comparing against the reference
  // byte-at-a-time loop. For crc32c this also pins the hardware
  // instruction path to the software semantics on CPUs that take it.
  std::vector<unsigned char> Bytes(40000);
  Rng R(0x51acedu);
  for (unsigned char &B : Bytes)
    B = static_cast<unsigned char>(R.nextInRange(0, 255));
  for (size_t Offset = 0; Offset != 9; ++Offset) {
    // 4000 and 39000 sit above the multi-stream cutover (with lengths
    // around it), so the three-chain recombination is pinned to the
    // byte loop at every start alignment as well.
    for (size_t Len : {size_t(0), size_t(1), size_t(7), size_t(8), size_t(9),
                       size_t(15), size_t(16), size_t(63), size_t(64),
                       size_t(255), size_t(1024), size_t(3071), size_t(3072),
                       size_t(3080), size_t(4000), size_t(39000)}) {
      if (Offset + Len > Bytes.size())
        continue;
      const unsigned char *P = Bytes.data() + Offset;
      uint32_t Ref = detail::crcBytewise(detail::Crc32Tables, P, Len,
                                         0xFFFFFFFFu) ^
                     0xFFFFFFFFu;
      EXPECT_EQ(crc32(P, Len), Ref) << "offset " << Offset << " len " << Len;
      uint32_t RefC = detail::crcBytewise(detail::Crc32cTables, P, Len,
                                          0xFFFFFFFFu) ^
                      0xFFFFFFFFu;
      EXPECT_EQ(crc32c(P, Len), RefC)
          << "offset " << Offset << " len " << Len;
    }
  }
}

} // namespace
} // namespace memlook
