//===- TopologicalSortTest.cpp ---------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/TopologicalSort.h"

#include "memlook/support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace memlook;

namespace {

/// Checks that Order is a permutation of 0..N-1 respecting all edges.
void expectValidOrder(uint32_t NumNodes,
                      const std::vector<std::vector<uint32_t>> &Successors,
                      const std::vector<uint32_t> &Order) {
  ASSERT_EQ(Order.size(), NumNodes);
  std::vector<uint32_t> Position(NumNodes, 0);
  std::vector<bool> Seen(NumNodes, false);
  for (uint32_t Pos = 0; Pos != NumNodes; ++Pos) {
    ASSERT_LT(Order[Pos], NumNodes);
    ASSERT_FALSE(Seen[Order[Pos]]) << "duplicate node in order";
    Seen[Order[Pos]] = true;
    Position[Order[Pos]] = Pos;
  }
  for (uint32_t From = 0; From != NumNodes; ++From)
    for (uint32_t To : Successors[From])
      EXPECT_LT(Position[From], Position[To])
          << "edge " << From << "->" << To << " violated";
}

} // namespace

TEST(TopologicalSortTest, EmptyGraph) {
  TopologicalSortResult R = topologicalSort(0, {});
  EXPECT_TRUE(R.IsAcyclic);
  EXPECT_TRUE(R.Order.empty());
}

TEST(TopologicalSortTest, SingleNode) {
  TopologicalSortResult R = topologicalSort(1, {{}});
  EXPECT_TRUE(R.IsAcyclic);
  EXPECT_EQ(R.Order, std::vector<uint32_t>{0});
}

TEST(TopologicalSortTest, Chain) {
  std::vector<std::vector<uint32_t>> Succ{{1}, {2}, {3}, {}};
  TopologicalSortResult R = topologicalSort(4, Succ);
  ASSERT_TRUE(R.IsAcyclic);
  EXPECT_EQ(R.Order, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(TopologicalSortTest, DiamondIsDeterministicSmallestFirst) {
  // 0 -> {1,2} -> 3; ties broken by index.
  std::vector<std::vector<uint32_t>> Succ{{1, 2}, {3}, {3}, {}};
  TopologicalSortResult R = topologicalSort(4, Succ);
  ASSERT_TRUE(R.IsAcyclic);
  EXPECT_EQ(R.Order, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(TopologicalSortTest, SelfLoopIsCyclic) {
  std::vector<std::vector<uint32_t>> Succ{{0}};
  TopologicalSortResult R = topologicalSort(1, Succ);
  EXPECT_FALSE(R.IsAcyclic);
  ASSERT_TRUE(R.CycleWitness.has_value());
  EXPECT_EQ(*R.CycleWitness, 0u);
}

TEST(TopologicalSortTest, TwoCycleReportsWitness) {
  std::vector<std::vector<uint32_t>> Succ{{1}, {0}, {}};
  TopologicalSortResult R = topologicalSort(3, Succ);
  EXPECT_FALSE(R.IsAcyclic);
  ASSERT_TRUE(R.CycleWitness.has_value());
  EXPECT_TRUE(*R.CycleWitness == 0 || *R.CycleWitness == 1);
  EXPECT_TRUE(R.Order.empty());
}

TEST(TopologicalSortTest, DisconnectedComponents) {
  std::vector<std::vector<uint32_t>> Succ{{1}, {}, {3}, {}, {}};
  TopologicalSortResult R = topologicalSort(5, Succ);
  ASSERT_TRUE(R.IsAcyclic);
  expectValidOrder(5, Succ, R.Order);
}

TEST(TopologicalSortTest, RandomDagsAreValidlyOrdered) {
  // Random DAGs with edges from lower to higher indices, shuffled via a
  // relabeling so the sorter cannot cheat on index order.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Rng Rng(Seed);
    uint32_t N = 2 + static_cast<uint32_t>(Rng.nextBelow(60));

    std::vector<uint32_t> Label(N);
    for (uint32_t I = 0; I != N; ++I)
      Label[I] = I;
    for (uint32_t I = N; I > 1; --I)
      std::swap(Label[I - 1], Label[Rng.nextBelow(I)]);

    std::vector<std::vector<uint32_t>> Succ(N);
    for (uint32_t Lo = 0; Lo != N; ++Lo)
      for (uint32_t Hi = Lo + 1; Hi != N; ++Hi)
        if (Rng.nextChance(1, 8))
          Succ[Label[Lo]].push_back(Label[Hi]);

    TopologicalSortResult R = topologicalSort(N, Succ);
    ASSERT_TRUE(R.IsAcyclic) << "seed " << Seed;
    expectValidOrder(N, Succ, R.Order);
  }
}
