//===- DotWriterTest.cpp ---------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/DotWriter.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace memlook;

TEST(DotWriterTest, EmitsDigraphSkeleton) {
  std::ostringstream OS;
  { DotWriter W(OS, "g"); }
  std::string Out = OS.str();
  EXPECT_NE(Out.find("digraph \"g\" {"), std::string::npos);
  EXPECT_EQ(Out.back(), '\n');
  EXPECT_NE(Out.find("}\n"), std::string::npos);
}

TEST(DotWriterTest, NodesAndEdges) {
  std::ostringstream OS;
  {
    DotWriter W(OS, "g");
    W.node("A", "A label");
    W.edge("A", "B");
    W.edge("B", "C", /*Dashed=*/true);
  }
  std::string Out = OS.str();
  EXPECT_NE(Out.find("\"A\" [label=\"A label\"];"), std::string::npos);
  EXPECT_NE(Out.find("\"A\" -> \"B\";"), std::string::npos);
  EXPECT_NE(Out.find("\"B\" -> \"C\" [style=dashed];"), std::string::npos);
}

TEST(DotWriterTest, EdgeLabelsAndCombinedAttrs) {
  std::ostringstream OS;
  {
    DotWriter W(OS, "g");
    W.edge("A", "B", /*Dashed=*/true, "virtual");
  }
  EXPECT_NE(OS.str().find("[style=dashed, label=\"virtual\"]"),
            std::string::npos);
}

TEST(DotWriterTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(DotWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(DotWriter::escape("plain"), "plain");
}

TEST(DotWriterTest, ExtraNodeAttrsAppended) {
  std::ostringstream OS;
  {
    DotWriter W(OS, "g");
    W.node("N", "N", "shape=box");
  }
  EXPECT_NE(OS.str().find("[label=\"N\", shape=box];"), std::string::npos);
}
