//===- ContractsTest.cpp - API contracts (assertion behavior) ----------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The library asserts its preconditions (the build keeps assertions on
/// in every configuration); these death tests document the contracts a
/// client must uphold. Also includes the umbrella-header smoke test.
///
//===----------------------------------------------------------------------===//

#include "memlook/memlook.h"

#include <gtest/gtest.h>

using namespace memlook;

TEST(ContractsTest, UmbrellaHeaderCoversTheApi) {
  // Compiling this file through memlook.h is the real test; exercise a
  // couple of symbols from each layer so nothing is optimized away.
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  Hierarchy H = std::move(B).build();
  DominanceLookupEngine Engine(H);
  EXPECT_EQ(Engine.lookup(H.findClass("A"), "m").Status,
            LookupStatus::Unambiguous);
  EXPECT_EQ(countSubobjects(H, H.findClass("A")), 1u);
  EXPECT_TRUE(runDifferentialCheck(H).passed());
}

TEST(ContractsDeathTest, FinalizeTwiceAsserts) {
  Hierarchy H;
  H.createClass("A");
  DiagnosticEngine Diags;
  ASSERT_TRUE(H.finalize(Diags));
  EXPECT_DEATH(
      {
        DiagnosticEngine Again;
        H.finalize(Again);
      },
      "finalize");
}

TEST(ContractsDeathTest, MutationAfterFinalizeAsserts) {
  Hierarchy H;
  ClassId A = H.createClass("A");
  DiagnosticEngine Diags;
  ASSERT_TRUE(H.finalize(Diags));
  EXPECT_DEATH(H.addMember(A, "late"), "after finalize");
  EXPECT_DEATH(H.createClass("B"), "after finalize");
}

TEST(ContractsDeathTest, ClosureQueriesRequireFinalize) {
  Hierarchy H;
  ClassId A = H.createClass("A");
  ClassId B = H.createClass("B");
  H.addBase(B, A);
  EXPECT_DEATH((void)H.isBaseOf(A, B), "finalize");
}

TEST(ContractsDeathTest, EngineRequiresFinalizedHierarchy) {
  Hierarchy H;
  H.createClass("A");
  EXPECT_DEATH(DominanceLookupEngine Engine(H), "finalized");
}

TEST(ContractsDeathTest, InvalidIdAsserts) {
  EXPECT_DEATH((void)ClassId().index(), "invalid id");
}

TEST(ContractsDeathTest, PathCalculusRejectsEmptyPaths) {
  HierarchyBuilder B;
  B.addClass("A");
  Hierarchy H = std::move(B).build();
  Path Empty;
  EXPECT_DEATH((void)fixedLength(H, Empty), "empty path");
}
