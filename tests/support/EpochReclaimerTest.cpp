//===- EpochReclaimerTest.cpp - EBR domain unit tests ---------------------===//
//
// Unit tests for support/EpochReclaimer.h: slot registration and reuse
// across thread lifetimes, guard nesting, the retire/reclaim ordering
// rule (free an object tagged T only once every pinned slot has advanced
// to >= T), the overflow fallback, and the destructor drain.  Retired
// payloads carry flag-setting deleters so the tests observe the exact
// moment the limbo reference drops.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/EpochReclaimer.h"

#include "gtest/gtest.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using memlook::EpochReclaimer;

namespace {

/// A retired payload whose destruction is observable: appends its label
/// to Order (guarded by the single-writer discipline of the tests that
/// use it) and bumps Freed.
struct Tracked {
  Tracked(std::vector<int> &Order, std::atomic<int> &Freed, int Label)
      : Order(Order), Freed(Freed), Label(Label) {}
  ~Tracked() {
    Order.push_back(Label);
    Freed.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<int> &Order;
  std::atomic<int> &Freed;
  int Label;
};

std::shared_ptr<const void> track(std::vector<int> &Order,
                                  std::atomic<int> &Freed, int Label) {
  return std::static_pointer_cast<const void>(
      std::make_shared<Tracked>(Order, Freed, Label));
}

TEST(EpochReclaimerTest, RetireWithNoReadersFreesImmediately) {
  EpochReclaimer R;
  std::vector<int> Order;
  std::atomic<int> Freed{0};

  R.retire(track(Order, Freed, 1));
  EXPECT_EQ(Freed.load(), 1);
  EXPECT_EQ(R.limboDepth(), 0u);
  EXPECT_EQ(R.retiredTotal(), 1u);
  EXPECT_EQ(R.reclaimedTotal(), 1u);
  EXPECT_EQ(R.epoch(), 1u);
}

TEST(EpochReclaimerTest, PinnedReaderBlocksNewerRetiresOnly) {
  EpochReclaimer R;
  std::vector<int> Order;
  std::atomic<int> Freed{0};

  // Pin at epoch 0, then retire A (tag 1) and B (tag 2): both newer than
  // the pin, so both must wait.
  {
    EpochReclaimer::ReadGuard G(R);
    EXPECT_EQ(R.activeReaders(), 1u);
    R.retire(track(Order, Freed, 1));
    R.retire(track(Order, Freed, 2));
    EXPECT_EQ(Freed.load(), 0);
    EXPECT_EQ(R.limboDepth(), 2u);
  }
  // Quiescent: the next reclaim frees both, in retire (FIFO) order.
  EXPECT_EQ(R.reclaim(), 2u);
  EXPECT_EQ(Freed.load(), 2);
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], 1);
  EXPECT_EQ(Order[1], 2);
  EXPECT_EQ(R.limboDepth(), 0u);
}

TEST(EpochReclaimerTest, ReaderPinnedAfterRetireDoesNotBlockIt) {
  EpochReclaimer R;
  std::vector<int> Order;
  std::atomic<int> Freed{0};

  // Retire A while an old guard is pinned at epoch 0; release it, then
  // pin a fresh guard (epoch now 1, the post-A world) and retire B.  The
  // fresh pin proves its reader cannot hold A, so A frees even though a
  // reader is active; B (tag 2 > pin 1) must wait for it.
  {
    EpochReclaimer::ReadGuard Old(R);
    R.retire(track(Order, Freed, 1));
    EXPECT_EQ(Freed.load(), 0);
  }
  {
    EpochReclaimer::ReadGuard Fresh(R);
    R.retire(track(Order, Freed, 2));
    EXPECT_EQ(Freed.load(), 1);
    ASSERT_EQ(Order.size(), 1u);
    EXPECT_EQ(Order[0], 1);
    EXPECT_EQ(R.limboDepth(), 1u);
  }
  EXPECT_EQ(R.reclaim(), 1u);
  EXPECT_EQ(Freed.load(), 2);
}

TEST(EpochReclaimerTest, NestedGuardsShareOnePinUntilTheOuterReleases) {
  EpochReclaimer R;
  std::vector<int> Order;
  std::atomic<int> Freed{0};

  {
    EpochReclaimer::ReadGuard Outer(R);
    R.retire(track(Order, Freed, 1));
    {
      EpochReclaimer::ReadGuard Inner(R);
      // One slot, one pin: nesting does not add readers.
      EXPECT_EQ(R.activeReaders(), 1u);
    }
    // The inner release must not unpin the outer guard.
    EXPECT_EQ(R.activeReaders(), 1u);
    EXPECT_EQ(R.reclaim(), 0u);
    EXPECT_EQ(Freed.load(), 0);
  }
  EXPECT_EQ(R.reclaim(), 1u);
  EXPECT_EQ(Freed.load(), 1);
}

TEST(EpochReclaimerTest, SlotsRecycleAcrossSequentialThreadLifetimes) {
  EpochReclaimer R;
  // Far more thread lifetimes than slots: each thread registers, pins
  // once, and exits (releasing its slot).  If slots failed to recycle
  // the later threads would overflow.
  for (int I = 0; I < int(EpochReclaimer::NumSlots) * 3; ++I) {
    std::thread T([&R] {
      EpochReclaimer::ReadGuard G(R);
      EXPECT_FALSE(G.overflowed());
    });
    T.join();
  }
  EXPECT_EQ(R.overflowTotal(), 0u);
  // Every slot was released at thread exit (the main thread never
  // registered in this test).
  EXPECT_EQ(R.ownedSlots(), 0u);
  EXPECT_EQ(R.activeReaders(), 0u);
}

TEST(EpochReclaimerTest, OneThreadReusesOneSlotAcrossManyGuards) {
  EpochReclaimer R;
  for (int I = 0; I < 1000; ++I)
    EpochReclaimer::ReadGuard G(R);
  EXPECT_EQ(R.ownedSlots(), 1u);
  EXPECT_EQ(R.overflowTotal(), 0u);
}

TEST(EpochReclaimerTest, OverflowPinsBlockAllReclamationWhileHeld) {
  EpochReclaimer R;
  std::vector<int> Order;
  std::atomic<int> Freed{0};

  // Saturate every slot from NumSlots parked threads, then push a few
  // more readers over the edge: they must take the overflow fallback and
  // still pin correctly (nothing reclaims while they are live).
  constexpr size_t Extra = 4;
  constexpr size_t Total = EpochReclaimer::NumSlots + Extra;
  std::atomic<size_t> Pinned{0};
  std::atomic<bool> Release{false};
  std::atomic<size_t> Overflowed{0};
  std::vector<std::thread> Threads;
  Threads.reserve(Total);
  for (size_t I = 0; I < Total; ++I)
    Threads.emplace_back([&] {
      EpochReclaimer::ReadGuard G(R);
      if (G.overflowed())
        Overflowed.fetch_add(1);
      Pinned.fetch_add(1);
      while (!Release.load(std::memory_order_acquire))
        std::this_thread::yield();
    });
  while (Pinned.load() != Total)
    std::this_thread::yield();

  EXPECT_EQ(Overflowed.load(), Extra);
  EXPECT_EQ(R.overflowTotal(), Extra);
  R.retire(track(Order, Freed, 1));
  EXPECT_EQ(Freed.load(), 0);
  EXPECT_EQ(R.limboDepth(), 1u);

  Release.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(R.reclaim(), 1u);
  EXPECT_EQ(Freed.load(), 1);
}

TEST(EpochReclaimerTest, DestructorDrainsTheLimboListEvenWithLiveGuards) {
  std::vector<int> Order;
  std::atomic<int> Freed{0};
  std::atomic<bool> Release{false};
  std::atomic<bool> Pinned{false};

  // An external shared_ptr keeps the payload itself valid past the
  // drain, mirroring how LookupService's snapshot() holders interact
  // with reclamation; the drain drops only the limbo reference.
  std::shared_ptr<const void> External;
  std::thread Reader;
  {
    EpochReclaimer R;
    auto Obj = std::make_shared<Tracked>(Order, Freed, 1);
    External = std::static_pointer_cast<const void>(Obj);
    Reader = std::thread([&R, &Release, &Pinned] {
      EpochReclaimer::ReadGuard G(R);
      Pinned.store(true, std::memory_order_release);
      while (!Release.load(std::memory_order_acquire))
        std::this_thread::yield();
    });
    while (!Pinned.load(std::memory_order_acquire))
      std::this_thread::yield();

    R.retire(std::static_pointer_cast<const void>(std::move(Obj)));
    EXPECT_EQ(R.limboDepth(), 1u);
    EXPECT_EQ(R.reclaim(), 0u); // the pinned reader blocks reclaim
    // Destroying the reclaimer now must drain the limbo list anyway:
    // a stuck reader delays reclamation, never teardown.
  }
  EXPECT_EQ(Freed.load(), 0); // External still holds the payload
  External.reset();
  EXPECT_EQ(Freed.load(), 1);

  Release.store(true, std::memory_order_release);
  Reader.join();
}

TEST(EpochReclaimerTest, OneThreadServesTwoReclaimersIndependently) {
  EpochReclaimer A;
  EpochReclaimer B;
  std::vector<int> Order;
  std::atomic<int> Freed{0};

  // Register this thread with both domains (a transient pin on B), then
  // hold a pin on A only: it must not block B's reclamation.
  { EpochReclaimer::ReadGuard GB(B); }
  EpochReclaimer::ReadGuard G(A);
  B.retire(track(Order, Freed, 1));
  EXPECT_EQ(Freed.load(), 1);
  A.retire(track(Order, Freed, 2));
  EXPECT_EQ(Freed.load(), 1);
  EXPECT_EQ(A.limboDepth(), 1u);
  EXPECT_EQ(A.ownedSlots(), 1u);
  EXPECT_EQ(B.ownedSlots(), 1u);
}

TEST(EpochReclaimerTest, ConcurrentReadersNeverSeeAFreedPointer) {
  // A miniature of the service's publish loop: a writer publishes
  // integers through an atomic pointer and retires the predecessors; 4
  // guard-pinned readers dereference the published pointer and check the
  // invariant value.  ASan/TSan turn a reclamation bug into a hard
  // failure here; the value check catches silent reuse.
  EpochReclaimer R;
  struct Boxed {
    explicit Boxed(uint64_t V) : Value(V) {}
    uint64_t Value;
  };
  std::atomic<const Boxed *> Published{nullptr};

  auto First = std::make_shared<const Boxed>(0x1234567812345678ULL);
  Published.store(First.get(), EpochReclaimer::pointerOrder());
  std::shared_ptr<const Boxed> Keep = First; // writer-owned current

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Reads{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 4; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        EpochReclaimer::ReadGuard G(R);
        const Boxed *P = Published.load(EpochReclaimer::pointerOrder());
        EXPECT_EQ(P->Value, 0x1234567812345678ULL);
        Reads.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (int I = 0; I < 2000; ++I) {
    auto Next = std::make_shared<const Boxed>(0x1234567812345678ULL);
    Published.store(Next.get(), EpochReclaimer::pointerOrder());
    std::shared_ptr<const Boxed> Old = std::move(Keep);
    Keep = std::move(Next);
    R.retire(std::static_pointer_cast<const void>(std::move(Old)));
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(R.retiredTotal(), 2000u);
  // All readers quiesced: everything retired must now be reclaimable.
  R.reclaim();
  EXPECT_EQ(R.limboDepth(), 0u);
  EXPECT_EQ(R.reclaimedTotal(), 2000u);
}

} // namespace
