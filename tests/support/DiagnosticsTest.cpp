//===- DiagnosticsTest.cpp -------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/Diagnostics.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace memlook;

TEST(DiagnosticsTest, StartsClean) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(DiagnosticsTest, ErrorsAreCounted) {
  DiagnosticEngine Diags;
  Diags.error("first problem");
  Diags.error(SourceLoc{3, 7}, "second problem");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);
  EXPECT_EQ(Diags.diagnostics().size(), 2u);
}

TEST(DiagnosticsTest, WarningsDoNotCountAsErrors) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc{1, 1}, "suspicious");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 1u);
}

TEST(DiagnosticsTest, PrintIncludesLocationWhenValid) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc{3, 7}, "bad thing");
  std::ostringstream OS;
  Diags.print(OS, "input.mlk");
  EXPECT_EQ(OS.str(), "input.mlk:3:7: error: bad thing\n");
}

TEST(DiagnosticsTest, PrintOmitsInvalidLocation) {
  DiagnosticEngine Diags;
  Diags.error("global problem");
  std::ostringstream OS;
  Diags.print(OS, "tool");
  EXPECT_EQ(OS.str(), "tool: error: global problem\n");
}

TEST(DiagnosticsTest, SeverityLabels) {
  EXPECT_STREQ(severityLabel(Severity::Note), "note");
  EXPECT_STREQ(severityLabel(Severity::Warning), "warning");
  EXPECT_STREQ(severityLabel(Severity::Error), "error");
}

TEST(DiagnosticsTest, SourceLocValidity) {
  EXPECT_FALSE(SourceLoc{}.isValid());
  EXPECT_TRUE((SourceLoc{1, 0}).isValid());
}
