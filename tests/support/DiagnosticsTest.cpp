//===- DiagnosticsTest.cpp -------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/Diagnostics.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace memlook;

TEST(DiagnosticsTest, StartsClean) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(DiagnosticsTest, ErrorsAreCounted) {
  DiagnosticEngine Diags;
  Diags.error("first problem");
  Diags.error(SourceLoc{3, 7}, "second problem");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);
  EXPECT_EQ(Diags.diagnostics().size(), 2u);
}

TEST(DiagnosticsTest, WarningsDoNotCountAsErrors) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc{1, 1}, "suspicious");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 1u);
}

TEST(DiagnosticsTest, PrintIncludesLocationWhenValid) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc{3, 7}, "bad thing");
  std::ostringstream OS;
  Diags.print(OS, "input.mlk");
  EXPECT_EQ(OS.str(), "input.mlk:3:7: error: bad thing\n");
}

TEST(DiagnosticsTest, PrintOmitsInvalidLocation) {
  DiagnosticEngine Diags;
  Diags.error("global problem");
  std::ostringstream OS;
  Diags.print(OS, "tool");
  EXPECT_EQ(OS.str(), "tool: error: global problem\n");
}

TEST(DiagnosticsTest, SeverityLabels) {
  EXPECT_STREQ(severityLabel(Severity::Note), "note");
  EXPECT_STREQ(severityLabel(Severity::Warning), "warning");
  EXPECT_STREQ(severityLabel(Severity::Error), "error");
}

TEST(DiagnosticsTest, SourceLocValidity) {
  EXPECT_FALSE(SourceLoc{}.isValid());
  EXPECT_TRUE((SourceLoc{1, 0}).isValid());
}

TEST(DiagnosticsTest, CodesAreRecordedAndQueryable) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc{1, 1}, "no class 'X'", DiagCode::UnknownBase);
  Diags.warning(SourceLoc{2, 1}, "member folded", DiagCode::RedeclaredMember);
  EXPECT_TRUE(Diags.hasCode(DiagCode::UnknownBase));
  EXPECT_TRUE(Diags.hasCode(DiagCode::RedeclaredMember));
  EXPECT_FALSE(Diags.hasCode(DiagCode::InheritanceCycle));
  EXPECT_EQ(Diags.diagnostics()[0].Code, DiagCode::UnknownBase);
}

TEST(DiagnosticsTest, EveryDiagCodeHasALabel) {
  for (uint8_t Raw = 0;
       Raw <= static_cast<uint8_t>(DiagCode::TooManyErrors); ++Raw) {
    const char *Label = diagCodeLabel(static_cast<DiagCode>(Raw));
    ASSERT_NE(Label, nullptr);
    EXPECT_STRNE(Label, "");
  }
}

TEST(DiagnosticsTest, ErrorLimitTruncatesWithSentinel) {
  DiagnosticEngine Diags;
  Diags.setErrorLimit(3);
  for (int I = 0; I != 10; ++I)
    Diags.error(SourceLoc{uint32_t(I + 1), 1}, "problem");
  EXPECT_TRUE(Diags.truncated());
  EXPECT_TRUE(Diags.hasCode(DiagCode::TooManyErrors));
  // 3 real errors + the sentinel; the other 6 were dropped.
  EXPECT_EQ(Diags.diagnostics().size(), 4u);
  EXPECT_EQ(Diags.errorCount(), 4u);
}

TEST(DiagnosticsTest, TruncationDropsWarningsToo) {
  DiagnosticEngine Diags;
  Diags.setErrorLimit(1);
  Diags.error("one");
  Diags.error("two"); // trips the cap
  Diags.warning(SourceLoc{1, 1}, "late warning");
  EXPECT_TRUE(Diags.truncated());
  EXPECT_EQ(Diags.diagnostics().size(), 2u); // "one" + sentinel
}

TEST(DiagnosticsTest, ZeroLimitMeansUnlimited) {
  DiagnosticEngine Diags;
  for (int I = 0; I != 100; ++I)
    Diags.error("problem");
  EXPECT_FALSE(Diags.truncated());
  EXPECT_EQ(Diags.errorCount(), 100u);
}
