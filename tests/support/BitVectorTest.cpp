//===- BitVectorTest.cpp ---------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/BitMatrix.h"
#include "memlook/support/BitVector.h"
#include "memlook/support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace memlook;

TEST(BitVectorTest, StartsClear) {
  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_TRUE(V.none());
  EXPECT_EQ(V.count(), 0u);
}

TEST(BitVectorTest, SetAndTestAcrossWordBoundaries) {
  BitVector V(200);
  for (size_t Idx : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 199u})
    V.set(Idx);
  for (size_t Idx : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 199u})
    EXPECT_TRUE(V.test(Idx)) << Idx;
  EXPECT_FALSE(V.test(2));
  EXPECT_FALSE(V.test(62));
  EXPECT_FALSE(V.test(66));
  EXPECT_EQ(V.count(), 8u);
}

TEST(BitVectorTest, ResetClearsOneBit) {
  BitVector V(70);
  V.set(69);
  V.set(3);
  V.reset(69);
  EXPECT_FALSE(V.test(69));
  EXPECT_TRUE(V.test(3));
}

TEST(BitVectorTest, UnionMatchesSetSemantics) {
  Rng Rng(42);
  BitVector A(300), B(300);
  std::set<size_t> Expect;
  for (int I = 0; I != 80; ++I) {
    size_t Bit = Rng.nextBelow(300);
    if (I % 2 == 0)
      A.set(Bit);
    else
      B.set(Bit);
    Expect.insert(Bit);
  }
  A |= B;
  std::set<size_t> Got;
  A.forEachSetBit([&](size_t Idx) { Got.insert(Idx); });
  EXPECT_EQ(Got, Expect);
}

TEST(BitVectorTest, IntersectionKeepsOnlyShared) {
  BitVector A(100), B(100);
  A.set(10);
  A.set(50);
  A.set(99);
  B.set(50);
  B.set(99);
  B.set(0);
  A &= B;
  EXPECT_FALSE(A.test(10));
  EXPECT_FALSE(A.test(0));
  EXPECT_TRUE(A.test(50));
  EXPECT_TRUE(A.test(99));
  EXPECT_EQ(A.count(), 2u);
}

TEST(BitVectorTest, ForEachSetBitIsInIncreasingOrder) {
  BitVector V(256);
  for (size_t Idx : {200u, 5u, 64u, 63u})
    V.set(Idx);
  std::vector<size_t> Order;
  V.forEachSetBit([&](size_t Idx) { Order.push_back(Idx); });
  EXPECT_EQ(Order, (std::vector<size_t>{5, 63, 64, 200}));
}

TEST(BitVectorTest, EqualityComparesContentAndSize) {
  BitVector A(10), B(10), C(11);
  A.set(3);
  B.set(3);
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A == C);
  B.set(4);
  EXPECT_FALSE(A == B);
}

TEST(BitVectorTest, ClearResetsEverything) {
  BitVector V(128);
  V.set(0);
  V.set(127);
  V.clear();
  EXPECT_TRUE(V.none());
}

TEST(BitMatrixTest, RowsAreIndependent) {
  BitMatrix M(4, 100);
  M.set(1, 42);
  EXPECT_TRUE(M.test(1, 42));
  EXPECT_FALSE(M.test(0, 42));
  EXPECT_FALSE(M.test(2, 42));
}

TEST(BitMatrixTest, UnionRowsAccumulates) {
  BitMatrix M(3, 64);
  M.set(0, 1);
  M.set(1, 2);
  M.unionRows(2, 0);
  M.unionRows(2, 1);
  EXPECT_TRUE(M.test(2, 1));
  EXPECT_TRUE(M.test(2, 2));
  EXPECT_FALSE(M.test(2, 3));
}

TEST(BitMatrixTest, DimensionsReported) {
  BitMatrix M(7, 33);
  EXPECT_EQ(M.rows(), 7u);
  EXPECT_EQ(M.cols(), 33u);
}
