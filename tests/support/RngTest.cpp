//===- RngTest.cpp ---------------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/Rng.h"

#include <gtest/gtest.h>

using namespace memlook;

TEST(RngTest, SameSeedSameSequence) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Differences = 0;
  for (int I = 0; I != 32; ++I)
    if (A.next() != B.next())
      ++Differences;
  EXPECT_GT(Differences, 30);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng Rng(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(Rng.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng Rng(7);
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(Rng.nextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng Rng(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = Rng.nextInRange(5, 7);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 7u);
    SawLo |= (V == 5);
    SawHi |= (V == 7);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, UnitIsInHalfOpenInterval) {
  Rng Rng(11);
  for (int I = 0; I != 1000; ++I) {
    double U = Rng.nextUnit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng Rng(13);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(Rng.nextChance(0, 10));
    EXPECT_TRUE(Rng.nextChance(10, 10));
  }
}

TEST(RngTest, RoughlyUniformBuckets) {
  Rng Rng(17);
  int Buckets[4] = {0, 0, 0, 0};
  constexpr int Draws = 40000;
  for (int I = 0; I != Draws; ++I)
    ++Buckets[Rng.nextBelow(4)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, Draws / 4 - Draws / 20);
    EXPECT_LT(Count, Draws / 4 + Draws / 20);
  }
}
