//===- AtomicFileTest.cpp ----------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic-replace contract under failure. The happy path is covered
/// incidentally by every snapshot test; these pin the *failure* paths:
/// each step that can fail (create, write, fsync, rename) must report a
/// recoverable Status, leave no stray temp file behind, and - the point
/// of the recipe - leave any pre-existing destination untouched. The
/// tests run as root in CI containers, where permission bits stop
/// nothing, so real failures come from path shapes (directories where
/// files belong) and injected ones from the crash-point facility.
///
//===----------------------------------------------------------------------===//

#include "memlook/support/AtomicFile.h"
#include "memlook/support/CrashPoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace memlook;

namespace {

std::filesystem::path freshTempDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// The directory must hold exactly the named entries - in particular,
/// no leftover "*.tmp".
void expectDirHoldsExactly(const std::filesystem::path &Dir,
                           std::vector<std::string> Names) {
  std::vector<std::string> Found;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    Found.push_back(Entry.path().filename().string());
  std::sort(Found.begin(), Found.end());
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(Found, Names);
}

class AtomicFileTest : public ::testing::Test {
protected:
  void TearDown() override { disarmCrashPoints(); }
};

} // namespace

TEST_F(AtomicFileTest, ReplacesExistingContentAtomically) {
  std::filesystem::path Dir = freshTempDir("atomic_replace");
  std::string Path = (Dir / "data").string();
  ASSERT_TRUE(writeFileAtomic(Path, "old").isOk());
  ASSERT_TRUE(writeFileAtomic(Path, "new").isOk());
  EXPECT_EQ(slurp(Path), "new");
  expectDirHoldsExactly(Dir, {"data"});
}

TEST_F(AtomicFileTest, PreExistingTempFileIsSimplyTruncated) {
  // A stale *.tmp left by an interrupted earlier writer is inert: the
  // next write truncates and replaces it.
  std::filesystem::path Dir = freshTempDir("atomic_stale_tmp");
  std::string Path = (Dir / "data").string();
  {
    std::ofstream Stale(Path + ".tmp", std::ios::binary);
    Stale << "half-written garbage from a dead process";
  }
  ASSERT_TRUE(writeFileAtomic(Path, "fresh").isOk());
  EXPECT_EQ(slurp(Path), "fresh");
  expectDirHoldsExactly(Dir, {"data"});
}

TEST_F(AtomicFileTest, CreateFailureWhenTempPathIsADirectory) {
  // The recipe's temp name is Path + ".tmp"; planting a directory there
  // makes open(O_CREAT) fail before anything else happens.
  std::filesystem::path Dir = freshTempDir("atomic_tmpdir");
  std::string Path = (Dir / "data").string();
  std::filesystem::create_directories(Path + ".tmp");

  Status S = writeFileAtomic(Path, "content");
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::SnapshotIoError);
  EXPECT_NE(S.message().find("create"), std::string::npos) << S.toString();
  EXPECT_FALSE(std::filesystem::exists(Path))
      << "failed create must not conjure the destination";
}

TEST_F(AtomicFileTest, RenameFailureLeavesTheOldFileAndNoTemp) {
  // A directory at the destination makes rename() fail after the temp
  // file was fully written and synced - the last failable step.
  std::filesystem::path Dir = freshTempDir("atomic_rename");
  std::string Path = (Dir / "data").string();
  std::filesystem::create_directories(Path);

  Status S = writeFileAtomic(Path, "content");
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), ErrorCode::SnapshotIoError);
  EXPECT_NE(S.message().find("rename"), std::string::npos) << S.toString();
  EXPECT_TRUE(std::filesystem::is_directory(Path));
  expectDirHoldsExactly(Dir, {"data"});
}

TEST_F(AtomicFileTest, InjectedWriteFailureLeavesTheOldContent) {
  std::filesystem::path Dir = freshTempDir("atomic_write_fail");
  std::string Path = (Dir / "data").string();
  ASSERT_TRUE(writeFileAtomic(Path, "old").isOk());

  armCrashPoint("atomic-file-write", 1, CrashMode::FailOp);
  Status S = writeFileAtomic(Path, "new");
  ASSERT_FALSE(S.isOk());
  EXPECT_NE(S.message().find("write"), std::string::npos) << S.toString();
  EXPECT_EQ(slurp(Path), "old");
  expectDirHoldsExactly(Dir, {"data"});
}

TEST_F(AtomicFileTest, InjectedFsyncFailureLeavesTheOldContent) {
  std::filesystem::path Dir = freshTempDir("atomic_fsync_fail");
  std::string Path = (Dir / "data").string();
  ASSERT_TRUE(writeFileAtomic(Path, "old").isOk());

  armCrashPoint("atomic-file-fsync", 1, CrashMode::FailOp);
  Status S = writeFileAtomic(Path, "new");
  ASSERT_FALSE(S.isOk());
  EXPECT_NE(S.message().find("fsync"), std::string::npos) << S.toString();
  EXPECT_EQ(slurp(Path), "old");
  expectDirHoldsExactly(Dir, {"data"});
}

TEST_F(AtomicFileTest, InjectedRenameFailureLeavesTheOldContent) {
  std::filesystem::path Dir = freshTempDir("atomic_rename_fail");
  std::string Path = (Dir / "data").string();
  ASSERT_TRUE(writeFileAtomic(Path, "old").isOk());

  armCrashPoint("atomic-file-rename", 1, CrashMode::FailOp);
  Status S = writeFileAtomic(Path, "new");
  ASSERT_FALSE(S.isOk());
  EXPECT_NE(S.message().find("rename"), std::string::npos) << S.toString();
  EXPECT_EQ(slurp(Path), "old");
  expectDirHoldsExactly(Dir, {"data"});

  // The injection is one-shot: the retry goes through.
  ASSERT_TRUE(writeFileAtomic(Path, "new").isOk());
  EXPECT_EQ(slurp(Path), "new");
}

TEST_F(AtomicFileTest, CrashPointsMatchByNameAndHitNumber) {
  std::filesystem::path Dir = freshTempDir("atomic_hit_number");
  std::string Path = (Dir / "data").string();

  // Armed for the SECOND fsync: the first write succeeds, the second
  // fails, the third (disarmed by consumption) succeeds again.
  armCrashPoint("atomic-file-fsync", 2, CrashMode::FailOp);
  EXPECT_TRUE(writeFileAtomic(Path, "one").isOk());
  EXPECT_FALSE(writeFileAtomic(Path, "two").isOk());
  EXPECT_EQ(slurp(Path), "one");
  EXPECT_TRUE(writeFileAtomic(Path, "three").isOk());
  EXPECT_EQ(slurp(Path), "three");

  // A different point's arming never fires here.
  armCrashPoint("wal-append", 1, CrashMode::FailOp);
  EXPECT_TRUE(writeFileAtomic(Path, "four").isOk());
}

TEST_F(AtomicFileTest, ReadFileCappedEnforcesTheCap) {
  std::filesystem::path Dir = freshTempDir("read_capped");
  std::string Path = (Dir / "data").string();
  ASSERT_TRUE(writeFileAtomic(Path, "0123456789").isOk());

  Expected<std::string> Under = readFileCapped(Path, 10);
  ASSERT_TRUE(Under.hasValue()) << Under.status().toString();
  EXPECT_EQ(*Under, "0123456789");

  Expected<std::string> Over = readFileCapped(Path, 9);
  ASSERT_FALSE(Over.hasValue());
  EXPECT_EQ(Over.status().code(), ErrorCode::SnapshotIoError);

  Expected<std::string> Missing = readFileCapped((Dir / "nope").string(), 10);
  ASSERT_FALSE(Missing.hasValue());

  Expected<std::string> NotAFile = readFileCapped(Dir.string(), 1 << 20);
  ASSERT_FALSE(NotAFile.hasValue());
  EXPECT_NE(NotAFile.status().message().find("regular file"),
            std::string::npos);
}
