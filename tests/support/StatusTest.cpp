//===- StatusTest.cpp ------------------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/ResourceBudget.h"
#include "memlook/support/Status.h"

#include <gtest/gtest.h>

#include <memory>

using namespace memlook;

TEST(StatusTest, DefaultIsOk) {
  Status S;
  EXPECT_TRUE(S.isOk());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), ErrorCode::Ok);
  EXPECT_EQ(S.toString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(ErrorCode::UnknownClass, "no class 'X'");
  EXPECT_FALSE(S.isOk());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), ErrorCode::UnknownClass);
  EXPECT_EQ(S.message(), "no class 'X'");
  EXPECT_EQ(S.toString(), "unknown-class: no class 'X'");
}

TEST(StatusTest, EveryErrorCodeHasALabel) {
  for (uint8_t Raw = 0;
       Raw <= static_cast<uint8_t>(ErrorCode::SnapshotMalformed); ++Raw) {
    const char *Label = errorCodeLabel(static_cast<ErrorCode>(Raw));
    ASSERT_NE(Label, nullptr);
    EXPECT_STRNE(Label, "");
  }
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(E.hasValue());
  EXPECT_EQ(*E, 42);
  EXPECT_TRUE(E.status().isOk());
  EXPECT_EQ(E.takeValue(), 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> E(Status::error(ErrorCode::BudgetExceeded, "too big"));
  EXPECT_FALSE(E.hasValue());
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.status().code(), ErrorCode::BudgetExceeded);
}

TEST(ExpectedTest, MoveOnlyValueWorks) {
  Expected<std::unique_ptr<int>> E(std::make_unique<int>(7));
  ASSERT_TRUE(E.hasValue());
  std::unique_ptr<int> P = E.takeValue();
  EXPECT_EQ(*P, 7);
}

TEST(BudgetMeterTest, ChargesUpToLimit) {
  BudgetMeter Meter(3);
  EXPECT_TRUE(Meter.charge());
  EXPECT_TRUE(Meter.charge());
  EXPECT_TRUE(Meter.charge());
  EXPECT_FALSE(Meter.charge()); // fourth unit exceeds the limit of 3
  EXPECT_TRUE(Meter.exhausted());
}

TEST(BudgetMeterTest, StaysTrippedForever) {
  BudgetMeter Meter(1);
  EXPECT_TRUE(Meter.charge());
  EXPECT_FALSE(Meter.charge());
  for (int I = 0; I != 10; ++I)
    EXPECT_FALSE(Meter.charge());
  EXPECT_TRUE(Meter.exhausted());
}

TEST(BudgetMeterTest, BulkChargeCountsUnits) {
  BudgetMeter Meter(10);
  EXPECT_TRUE(Meter.charge(10)); // exactly at the limit is still fine
  EXPECT_FALSE(Meter.charge(1));
  EXPECT_EQ(Meter.used(), 11u);
}

TEST(BudgetMeterTest, FaultInjectionTripsNthCheck) {
  // Limit is enormous; only the injector can trip it - on exactly the
  // third charge() call.
  BudgetMeter Meter(SIZE_MAX, /*FaultAfterChecks=*/3);
  EXPECT_TRUE(Meter.charge());
  EXPECT_TRUE(Meter.charge());
  EXPECT_FALSE(Meter.charge());
  EXPECT_TRUE(Meter.exhausted());
  EXPECT_EQ(Meter.checks(), 3u);
}

TEST(BudgetMeterTest, LookupStepsPicksUpFaultHook) {
  ResourceBudget Budget;
  Budget.FaultAfterChecks = 1;
  BudgetMeter Meter = BudgetMeter::lookupSteps(Budget);
  EXPECT_FALSE(Meter.charge());
  EXPECT_TRUE(Meter.exhausted());
}

TEST(ResourceBudgetTest, UntrustedPresetIsTighterThanDefault) {
  ResourceBudget Default;
  ResourceBudget Tight = ResourceBudget::untrustedInput();
  EXPECT_LT(Tight.MaxClasses, Default.MaxClasses);
  EXPECT_LT(Tight.MaxEdges, Default.MaxEdges);
  EXPECT_LT(Tight.MaxMemberDecls, Default.MaxMemberDecls);
  EXPECT_LT(Tight.MaxSubobjects, Default.MaxSubobjects);
  EXPECT_LT(Tight.MaxLookupSteps, Default.MaxLookupSteps);
  EXPECT_EQ(Tight.FaultAfterChecks, 0u);
}

TEST(ResourceBudgetTest, UnlimitedNeverTrips) {
  BudgetMeter Meter = BudgetMeter::lookupSteps(ResourceBudget::unlimited());
  EXPECT_TRUE(Meter.charge(1u << 30));
  EXPECT_TRUE(Meter.charge(1u << 30));
  EXPECT_FALSE(Meter.exhausted());
}
