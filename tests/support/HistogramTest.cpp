//===- HistogramTest.cpp - Latency histogram unit tests -------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit coverage of support/Histogram.h: the bucket map (exact unit
/// buckets, sub-bucket boundaries, clamping), merge/diff algebra,
/// percentile estimates checked against a sorted-sample oracle, and the
/// sharded recorder's equivalence to serial recording - including under
/// concurrent writers.
///
//===----------------------------------------------------------------------===//

#include "memlook/support/Histogram.h"

#include "memlook/support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

using memlook::LatencyHistogram;
using memlook::Rng;
using memlook::ShardedLatencyHistogram;

namespace {

TEST(HistogramTest, SmallValuesGetExactUnitBuckets) {
  for (uint64_t V = 0; V != LatencyHistogram::SubBucketCount; ++V) {
    uint32_t Idx = LatencyHistogram::bucketOf(V);
    EXPECT_EQ(Idx, V);
    EXPECT_EQ(LatencyHistogram::bucketLow(Idx), V);
    EXPECT_EQ(LatencyHistogram::bucketHigh(Idx), V + 1);
  }
}

TEST(HistogramTest, BucketBoundariesPartitionTheRange) {
  // Every bucket's [low, high) must be non-empty, adjacent to its
  // neighbor, and map back to itself through bucketOf at both ends.
  for (uint32_t I = 0; I != LatencyHistogram::NumBuckets; ++I) {
    uint64_t Low = LatencyHistogram::bucketLow(I);
    uint64_t High = LatencyHistogram::bucketHigh(I);
    ASSERT_LT(Low, High) << "bucket " << I;
    EXPECT_EQ(LatencyHistogram::bucketOf(Low), I);
    EXPECT_EQ(LatencyHistogram::bucketOf(High - 1), I);
    if (I + 1 < LatencyHistogram::NumBuckets)
      EXPECT_EQ(LatencyHistogram::bucketLow(I + 1), High);
  }
}

TEST(HistogramTest, BucketRelativeWidthIsBounded) {
  // Above the unit range, no bucket may be wider than low/SubBucketCount
  // - the 12.5% resolution bound the percentile contract rests on.
  for (uint32_t I = LatencyHistogram::SubBucketCount;
       I != LatencyHistogram::NumBuckets; ++I) {
    uint64_t Low = LatencyHistogram::bucketLow(I);
    uint64_t Width = LatencyHistogram::bucketHigh(I) - Low;
    EXPECT_LE(Width, Low / LatencyHistogram::SubBucketCount) << "bucket " << I;
  }
}

TEST(HistogramTest, HugeValuesClampIntoTheLastBucket) {
  EXPECT_EQ(LatencyHistogram::bucketOf(~uint64_t(0)),
            LatencyHistogram::NumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucketOf(uint64_t(1) << 60),
            LatencyHistogram::NumBuckets - 1);
  LatencyHistogram H;
  H.record(~uint64_t(0));
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.maxSeen(), ~uint64_t(0));
  EXPECT_EQ(H.bucketCount(LatencyHistogram::NumBuckets - 1), 1u);
}

TEST(HistogramTest, RecordTracksCountSumMax) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(99), 0.0);
  H.record(10);
  H.record(20);
  H.record(5);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 35u);
  EXPECT_EQ(H.maxSeen(), 20u);
  EXPECT_DOUBLE_EQ(H.mean(), 35.0 / 3.0);
}

TEST(HistogramTest, MergeEqualsConcatenation) {
  Rng R(0x1234);
  LatencyHistogram A, B, Both;
  for (int I = 0; I != 500; ++I) {
    uint64_t V = R.nextBelow(1'000'000);
    (I % 2 ? A : B).record(V);
    Both.record(V);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), Both.count());
  EXPECT_EQ(A.sum(), Both.sum());
  EXPECT_EQ(A.maxSeen(), Both.maxSeen());
  for (uint32_t I = 0; I != LatencyHistogram::NumBuckets; ++I)
    ASSERT_EQ(A.bucketCount(I), Both.bucketCount(I)) << "bucket " << I;
}

TEST(HistogramTest, DiffSinceIsolatesTheWindow) {
  LatencyHistogram H;
  H.record(100);
  H.record(200);
  LatencyHistogram Before = H;
  H.record(3000);
  H.record(4000);
  LatencyHistogram D = H.diffSince(Before);
  EXPECT_EQ(D.count(), 2u);
  EXPECT_EQ(D.sum(), 7000u);
  EXPECT_EQ(D.bucketCount(LatencyHistogram::bucketOf(100)), 0u);
  EXPECT_EQ(D.bucketCount(LatencyHistogram::bucketOf(3000)), 1u);
  EXPECT_EQ(D.bucketCount(LatencyHistogram::bucketOf(4000)), 1u);
}

/// Nearest-rank oracle over the raw samples.
uint64_t oraclePercentile(std::vector<uint64_t> Samples, double P) {
  std::sort(Samples.begin(), Samples.end());
  uint64_t Rank = static_cast<uint64_t>(P / 100.0 * double(Samples.size()));
  Rank = std::clamp<uint64_t>(Rank, 1, Samples.size());
  return Samples[Rank - 1];
}

TEST(HistogramTest, PercentileAgreesWithSortedOracle) {
  // Three shapes: uniform, log-uniform (the realistic latency shape),
  // and bimodal fast-path/slow-path. In each, the histogram estimate
  // must land inside the bucket holding the oracle's nearest-rank
  // sample - i.e. within the advertised 12.5% relative resolution.
  Rng R(0xfeed);
  auto Check = [](const std::vector<uint64_t> &Samples) {
    LatencyHistogram H;
    for (uint64_t V : Samples)
      H.record(V);
    for (double P : {50.0, 90.0, 99.0, 99.9}) {
      uint64_t Oracle = oraclePercentile(Samples, P);
      double Est = H.percentile(P);
      uint32_t OracleBucket = LatencyHistogram::bucketOf(Oracle);
      EXPECT_GE(Est, double(LatencyHistogram::bucketLow(OracleBucket)))
          << "p" << P;
      EXPECT_LE(Est, double(LatencyHistogram::bucketHigh(OracleBucket)))
          << "p" << P;
    }
  };

  std::vector<uint64_t> Uniform, LogUniform, Bimodal;
  for (int I = 0; I != 10'000; ++I) {
    Uniform.push_back(20 + R.nextBelow(100'000));
    LogUniform.push_back(uint64_t(1) << (4 + R.nextBelow(20)));
    Bimodal.push_back(I % 100 == 0 ? 1'000'000 + R.nextBelow(500'000)
                                   : 30 + R.nextBelow(40));
  }
  Check(Uniform);
  Check(LogUniform);
  Check(Bimodal);
}

TEST(HistogramTest, PercentileClampsToMaxSeen) {
  LatencyHistogram H;
  // One sample in a wide bucket: interpolation must not report a value
  // beyond anything recorded.
  H.record(1025);
  EXPECT_LE(H.percentile(100), 1025.0);
  EXPECT_GE(H.percentile(100), 1024.0);
}

TEST(HistogramTest, ShardedSnapshotMatchesSerialRecording) {
  Rng R(0xabcd);
  ShardedLatencyHistogram Sharded;
  LatencyHistogram Serial;
  for (int I = 0; I != 2000; ++I) {
    uint64_t V = R.nextBelow(1u << 20);
    Sharded.record(V);
    Serial.record(V);
  }
  LatencyHistogram Snap = Sharded.snapshot();
  EXPECT_EQ(Snap.count(), Serial.count());
  EXPECT_EQ(Snap.sum(), Serial.sum());
  EXPECT_EQ(Snap.maxSeen(), Serial.maxSeen());
  EXPECT_EQ(Sharded.countTotal(), Serial.count());
  for (uint32_t I = 0; I != LatencyHistogram::NumBuckets; ++I)
    ASSERT_EQ(Snap.bucketCount(I), Serial.bucketCount(I)) << "bucket " << I;
}

TEST(HistogramTest, ConcurrentRecordersLoseNothing) {
  constexpr int NumThreads = 4;
  constexpr int PerThread = 20'000;
  ShardedLatencyHistogram Sharded;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&Sharded, T] {
      Rng R(0x9999 + T);
      for (int I = 0; I != PerThread; ++I)
        Sharded.record(1 + R.nextBelow(1'000'000));
    });
  for (std::thread &T : Threads)
    T.join();

  LatencyHistogram Snap = Sharded.snapshot();
  EXPECT_EQ(Snap.count(), uint64_t(NumThreads) * PerThread);
  uint64_t BucketSum = 0;
  for (uint32_t I = 0; I != LatencyHistogram::NumBuckets; ++I)
    BucketSum += Snap.bucketCount(I);
  EXPECT_EQ(BucketSum, Snap.count());
  EXPECT_GE(Snap.maxSeen(), 1u);
}

} // namespace
