//===- StringInternerTest.cpp ----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//

#include "memlook/support/StringInterner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace memlook;

TEST(StringInternerTest, InternIsIdempotent) {
  StringInterner Interner;
  Symbol A1 = Interner.intern("alpha");
  Symbol A2 = Interner.intern("alpha");
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(Interner.size(), 1u);
}

TEST(StringInternerTest, DistinctStringsGetDistinctSymbols) {
  StringInterner Interner;
  Symbol A = Interner.intern("alpha");
  Symbol B = Interner.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(Interner.size(), 2u);
}

TEST(StringInternerTest, SpellingRoundTrips) {
  StringInterner Interner;
  Symbol A = Interner.intern("alpha");
  Symbol B = Interner.intern("beta");
  EXPECT_EQ(Interner.spelling(A), "alpha");
  EXPECT_EQ(Interner.spelling(B), "beta");
}

TEST(StringInternerTest, FindDoesNotIntern) {
  StringInterner Interner;
  EXPECT_FALSE(Interner.find("missing").isValid());
  EXPECT_EQ(Interner.size(), 0u);
  Symbol A = Interner.intern("present");
  EXPECT_EQ(Interner.find("present"), A);
}

TEST(StringInternerTest, EmptyStringIsInternable) {
  StringInterner Interner;
  Symbol Empty = Interner.intern("");
  EXPECT_TRUE(Empty.isValid());
  EXPECT_EQ(Interner.spelling(Empty), "");
}

TEST(StringInternerTest, SurvivesGrowthWithManyStrings) {
  // Regression guard for dangling string_view keys: symbols interned
  // early must still resolve after thousands of insertions force
  // storage growth.
  StringInterner Interner;
  std::vector<Symbol> Symbols;
  for (int I = 0; I != 5000; ++I)
    Symbols.push_back(Interner.intern("name" + std::to_string(I)));
  for (int I = 0; I != 5000; ++I) {
    EXPECT_EQ(Interner.spelling(Symbols[I]), "name" + std::to_string(I));
    EXPECT_EQ(Interner.find("name" + std::to_string(I)), Symbols[I]);
  }
}

TEST(StringInternerTest, SymbolsOrderedByCreation) {
  StringInterner Interner;
  Symbol First = Interner.intern("first");
  Symbol Second = Interner.intern("second");
  EXPECT_LT(First, Second);
  EXPECT_EQ(First.index() + 1, Second.index());
}
