//===- tests/TestUtil.h - Shared test fixtures ------------------*- C++ -*-===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's example hierarchies (Figures 1, 2, 3, and 9), shared by
/// the unit, property, and reproduction tests, plus small comparison
/// helpers.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLOOK_TESTS_TESTUTIL_H
#define MEMLOOK_TESTS_TESTUTIL_H

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/chg/Path.h"
#include "memlook/core/LookupResult.h"

#include <string>
#include <vector>

namespace memlook {
namespace testutil {

/// Figure 1: the non-virtual inheritance example.
///   class A { void m(); };  class B : A {};  class C : B {};
///   class D : B { void m(); };  class E : C, D {};
/// lookup(E, m) is ambiguous (two A subobjects).
inline Hierarchy makeFigure1() {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  B.addClass("B").withBase("A");
  B.addClass("C").withBase("B");
  B.addClass("D").withBase("B").withMember("m");
  B.addClass("E").withBase("C").withBase("D");
  return std::move(B).build();
}

/// Figure 2: the virtual inheritance twin of Figure 1.
///   class A { void m(); };  class B : A {};  class C : virtual B {};
///   class D : virtual B { void m(); };  class E : C, D {};
/// lookup(E, m) resolves to D::m (one shared A subobject).
inline Hierarchy makeFigure2() {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  B.addClass("B").withBase("A");
  B.addClass("C").withVirtualBase("B");
  B.addClass("D").withVirtualBase("B").withMember("m");
  B.addClass("E").withBase("C").withBase("D");
  return std::move(B).build();
}

/// Figure 3 (as completed by Figures 4-7): A -> B, A -> C, B -> D,
/// C -> D non-virtual; D -> F, D -> G virtual; E -> F, F -> H, G -> H
/// non-virtual. Members: A::foo, G::foo, E::bar, D::bar, G::bar.
inline Hierarchy makeFigure3() {
  HierarchyBuilder B;
  B.addClass("A").withMember("foo");
  B.addClass("B").withBase("A");
  B.addClass("C").withBase("A");
  B.addClass("D").withBase("B").withBase("C").withMember("bar");
  B.addClass("E").withMember("bar");
  B.addClass("F").withVirtualBase("D").withBase("E");
  B.addClass("G").withVirtualBase("D").withMember("foo").withMember("bar");
  B.addClass("H").withBase("F").withBase("G");
  return std::move(B).build();
}

/// Figure 9: the g++ counterexample.
///   struct S { int m; };
///   struct A : virtual S { int m; };
///   struct B : virtual S { int m; };
///   struct C : virtual A, virtual B { int m; };
///   struct D : C {};
///   struct E : virtual A, virtual B, D {};
/// lookup(E, m) is unambiguous (C::m), but a breadth-first scan meets
/// A::m and B::m first and g++ 2.7.2 reported ambiguity.
inline Hierarchy makeFigure9() {
  HierarchyBuilder B;
  B.addClass("S").withMember("m");
  B.addClass("A").withVirtualBase("S").withMember("m");
  B.addClass("B").withVirtualBase("S").withMember("m");
  B.addClass("C").withVirtualBase("A").withVirtualBase("B").withMember("m");
  B.addClass("D").withBase("C");
  B.addClass("E").withVirtualBase("A").withVirtualBase("B").withBase("D");
  return std::move(B).build();
}

/// Builds the Path for a sequence of class names, asserting each exists.
inline Path pathOf(const Hierarchy &H, const std::vector<std::string> &Names) {
  Path P;
  for (const std::string &Name : Names) {
    ClassId Id = H.findClass(Name);
    assert(Id.isValid() && "unknown class in pathOf");
    P.Nodes.push_back(Id);
  }
  return P;
}

/// Canonical comparison key of a LookupResult for differential tests:
/// status label, defining-class name, and subobject key rendering (or
/// just status+class for shared-static results, where engines may pick
/// different representatives).
inline std::string comparisonKey(const Hierarchy &H, const LookupResult &R) {
  std::string Out = lookupStatusLabel(R.Status);
  if (R.Status != LookupStatus::Unambiguous)
    return Out;
  Out += ':';
  Out += H.className(R.DefiningClass);
  if (!R.SharedStatic && R.Subobject) {
    Out += ':';
    Out += formatSubobjectKey(H, *R.Subobject);
  }
  return Out;
}

} // namespace testutil
} // namespace memlook

#endif // MEMLOOK_TESTS_TESTUTIL_H
