//===- Theorem1Test.cpp - Experiment E9 ------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Theorem 1: the poset of ~-equivalence classes of CHG paths under the
/// paper's dominance relation is isomorphic to the Rossie-Friedman
/// subobject poset. checkTheorem1 verifies the isomorphism structurally;
/// this test runs it over the paper's figures, the structured workload
/// families, and a seeded random sweep.
///
//===----------------------------------------------------------------------===//

#include "memlook/subobject/SubobjectGraph.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

void expectTheorem1Everywhere(const Hierarchy &H, const char *Tag) {
  for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
    std::optional<std::string> Violation =
        checkTheorem1(H, ClassId(Idx), /*MaxPaths=*/1u << 14);
    EXPECT_FALSE(Violation.has_value())
        << Tag << ", class " << H.className(ClassId(Idx)) << ": "
        << *Violation;
  }
}

} // namespace

TEST(Theorem1Test, HoldsOnPaperFigures) {
  expectTheorem1Everywhere(makeFigure1(), "figure1");
  expectTheorem1Everywhere(makeFigure2(), "figure2");
  expectTheorem1Everywhere(makeFigure3(), "figure3");
  expectTheorem1Everywhere(makeFigure9(), "figure9");
}

TEST(Theorem1Test, HoldsOnStructuredFamilies) {
  expectTheorem1Everywhere(makeNonVirtualDiamondStack(4).H, "nv-diamonds");
  expectTheorem1Everywhere(makeVirtualDiamondStack(6).H, "v-diamonds");
  expectTheorem1Everywhere(makeGrid(3, 3).H, "grid");
  expectTheorem1Everywhere(makeGrid(3, 3, /*Virtual=*/true).H, "v-grid");
  expectTheorem1Everywhere(makeIostreamLike().H, "iostream");
}

class Theorem1RandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1RandomTest, HoldsOnRandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 16;
  Params.AvgBases = 1.8;
  Params.VirtualEdgeChance = 0.35;
  Workload W = makeRandomHierarchy(Params, GetParam());
  expectTheorem1Everywhere(W.H, "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1RandomTest,
                         ::testing::Range<uint64_t>(100, 140));
