//===- ComposeKeysTest.cpp - Section 7.1 composition -----------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The subobject composition operator of Section 7.1 ([a] o [s] =
/// [a . s]) on canonical keys: composing the keys of two paths must give
/// the key of their concatenation, for every composable path pair.
///
//===----------------------------------------------------------------------===//

#include "memlook/subobject/SubobjectGraph.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

namespace {

void checkCompositionOn(const Hierarchy &H, ClassId Complete) {
  std::vector<Path> Outer;
  enumeratePathsTo(H, Complete, [&](const Path &P) { Outer.push_back(P); },
                   /*MaxPaths=*/2048);

  for (const Path &S : Outer) {
    std::vector<Path> Inner;
    enumeratePathsTo(H, S.ldc(), [&](const Path &P) { Inner.push_back(P); },
                     /*MaxPaths=*/2048);
    for (const Path &A : Inner) {
      SubobjectKey Composed =
          composeSubobjectKeys(subobjectKey(H, A), subobjectKey(H, S));
      EXPECT_EQ(Composed, subobjectKey(H, concat(A, S)))
          << formatPath(H, A) << " o " << formatPath(H, S);
    }
  }
}

} // namespace

TEST(ComposeKeysTest, MatchesPathConcatenationOnFigure3) {
  Hierarchy H = makeFigure3();
  checkCompositionOn(H, H.findClass("H"));
  checkCompositionOn(H, H.findClass("F"));
}

TEST(ComposeKeysTest, MatchesPathConcatenationOnFigure9) {
  Hierarchy H = makeFigure9();
  checkCompositionOn(H, H.findClass("E"));
}

TEST(ComposeKeysTest, MatchesOnRandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 12;
  Params.VirtualEdgeChance = 0.4;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed * 13 + 5);
    for (ClassId C : W.QueryClasses)
      if (C.index() % 3 == 0) // sample contexts to bound cost
        checkCompositionOn(W.H, C);
  }
}

TEST(ComposeKeysTest, IdentityComposition) {
  Hierarchy H = makeFigure2();
  ClassId E = H.findClass("E");
  // Composing with the trivial complete-object key is the identity.
  SubobjectKey Root{{E}, E};
  Path ViaD = pathOf(H, {"A", "B", "D", "E"});
  SubobjectKey Key = subobjectKey(H, ViaD);
  EXPECT_EQ(composeSubobjectKeys(Key, Root), Key);
}
