//===- SubobjectCountTest.cpp ----------------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// The closed-form counters must agree with brute-force enumeration and
/// with the materialized subobject graph wherever those are feasible -
/// and must keep producing exact values (or saturate) far beyond.
///
//===----------------------------------------------------------------------===//

#include "memlook/subobject/SubobjectCount.h"

#include "memlook/subobject/SubobjectGraph.h"
#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace memlook;
using namespace memlook::testutil;

TEST(SubobjectCountTest, PathCountsOnFigure3) {
  Hierarchy H = makeFigure3();
  EXPECT_EQ(countPaths(H, H.findClass("A"), H.findClass("H")), 4u);
  EXPECT_EQ(countPaths(H, H.findClass("A"), H.findClass("D")), 2u);
  EXPECT_EQ(countPaths(H, H.findClass("E"), H.findClass("H")), 1u);
  EXPECT_EQ(countPaths(H, H.findClass("E"), H.findClass("G")), 0u);
  EXPECT_EQ(countPaths(H, H.findClass("H"), H.findClass("A")), 0u)
      << "direction matters";
  EXPECT_EQ(countPaths(H, H.findClass("A"), H.findClass("A")), 1u)
      << "the trivial path";
}

TEST(SubobjectCountTest, PathCountsMatchEnumeration) {
  RandomHierarchyParams Params;
  Params.NumClasses = 14;
  Params.AvgBases = 2.0;
  for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed * 37 + 5);
    for (uint32_t From = 0; From != W.H.numClasses(); ++From)
      for (uint32_t To = 0; To != W.H.numClasses(); ++To) {
        uint64_t Enumerated = 0;
        enumeratePaths(W.H, ClassId(From), ClassId(To),
                       [&](const Path &) { ++Enumerated; });
        EXPECT_EQ(countPaths(W.H, ClassId(From), ClassId(To)), Enumerated)
            << W.H.className(ClassId(From)) << " -> "
            << W.H.className(ClassId(To)) << " seed " << Seed;
      }
  }
}

TEST(SubobjectCountTest, SubobjectCountsMatchMaterializedGraph) {
  auto CheckAll = [](const Hierarchy &H, const char *Tag) {
    for (uint32_t Idx = 0; Idx != H.numClasses(); ++Idx) {
      auto Graph = SubobjectGraph::build(H, ClassId(Idx));
      ASSERT_TRUE(Graph) << Tag;
      EXPECT_EQ(countSubobjects(H, ClassId(Idx)), Graph->numSubobjects())
          << Tag << ", class " << H.className(ClassId(Idx));
    }
  };
  CheckAll(makeFigure1(), "figure1");
  CheckAll(makeFigure2(), "figure2");
  CheckAll(makeFigure3(), "figure3");
  CheckAll(makeFigure9(), "figure9");
  CheckAll(makeIostreamLike().H, "iostream");
  CheckAll(makeGrid(3, 3).H, "grid");
  CheckAll(makeGrid(3, 3, true).H, "v-grid");
}

TEST(SubobjectCountTest, SubobjectCountsMatchOnRandomHierarchies) {
  RandomHierarchyParams Params;
  Params.NumClasses = 16;
  Params.AvgBases = 1.9;
  Params.VirtualEdgeChance = 0.35;
  for (uint64_t Seed = 50; Seed != 80; ++Seed) {
    Workload W = makeRandomHierarchy(Params, Seed);
    for (ClassId C : W.QueryClasses) {
      auto Graph = SubobjectGraph::build(W.H, C, 1u << 18);
      if (!Graph)
        continue;
      EXPECT_EQ(countSubobjects(W.H, C), Graph->numSubobjects())
          << W.H.className(C) << " seed " << Seed;
    }
  }
}

TEST(SubobjectCountTest, DiamondStackFormulae) {
  // k non-virtual diamonds: the apex is replicated 2^k times, and the
  // total subobject count telescopes to 2^(k+2) - 3 (the J_i at depth i
  // contribute 2^i copies each, the L_i/R_i pairs 2*2^(i-1)).
  for (uint32_t K = 1; K <= 20; ++K) {
    Workload W = makeNonVirtualDiamondStack(K);
    ClassId Apex = W.H.findClass("J0");
    ClassId Top = W.H.findClass("J" + std::to_string(K));
    EXPECT_EQ(countPaths(W.H, Apex, Top), uint64_t(1) << K);
    EXPECT_EQ(countSubobjects(W.H, Top), (uint64_t(1) << (K + 2)) - 3);
  }
}

TEST(SubobjectCountTest, VirtualDiamondStackIsLinear) {
  for (uint32_t K = 1; K <= 20; ++K) {
    Workload W = makeVirtualDiamondStack(K);
    ClassId Top = W.H.findClass("J" + std::to_string(K));
    EXPECT_LE(countSubobjects(W.H, Top), 3u * K + 1u);
  }
}

TEST(SubobjectCountTest, SaturationInsteadOfOverflow) {
  // 70 stacked diamonds: 2^70 paths overflow uint64; the counters must
  // saturate, not wrap.
  Workload W = makeNonVirtualDiamondStack(70);
  ClassId Apex = W.H.findClass("J0");
  ClassId Top = W.H.findClass("J70");
  EXPECT_EQ(countPaths(W.H, Apex, Top), UINT64_MAX);
  EXPECT_EQ(countSubobjects(W.H, Top), UINT64_MAX);

  // 62 diamonds still fit exactly.
  Workload W62 = makeNonVirtualDiamondStack(62);
  EXPECT_EQ(countPaths(W62.H, W62.H.findClass("J0"),
                       W62.H.findClass("J62")),
            uint64_t(1) << 62);
}

TEST(SubobjectCountTest, MixedVirtualCut) {
  // A virtual edge cuts the fixed part: B -> C virtual means C has the
  // trivial fixed path only, plus B's non-virtual paths via the vbase
  // rule.
  HierarchyBuilder Builder;
  Builder.addClass("A");
  Builder.addClass("B").withBase("A");
  Builder.addClass("C").withVirtualBase("B");
  Hierarchy H = std::move(Builder).build();
  // Subobjects of C: <C>, virtual <B>, <A,B>. (A alone is not a virtual
  // base of C, but the AB fixed path ends at B which is.)
  EXPECT_EQ(countSubobjects(H, H.findClass("C")), 3u);
  auto Graph = SubobjectGraph::build(H, H.findClass("C"));
  ASSERT_TRUE(Graph);
  EXPECT_EQ(Graph->numSubobjects(), 3u);
}
