//===- DefnsTest.cpp - Experiment E4 ---------------------------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's worked Defns examples on Figure 3:
///   Defns(H, foo) = { {ABDFH, ABDGH}, {ACDFH, ACDGH}, {GH} }
///   Defns(H, bar) = { {EFH}, {DFH, DGH}, {GH} }
/// and the lookup outcomes lookup(H, foo) = {GH}, lookup(H, bar) = bottom.
///
//===----------------------------------------------------------------------===//

#include "memlook/subobject/SubobjectGraph.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace memlook;
using namespace memlook::testutil;

namespace {

std::set<std::string> defnsAsStrings(const Hierarchy &H,
                                     const SubobjectGraph &Graph,
                                     const char *Member) {
  std::set<std::string> Out;
  for (SubobjectId Id : Graph.definingSubobjects(H.findName(Member)))
    Out.insert(formatSubobjectKey(H, Graph.subobject(Id).Key));
  return Out;
}

} // namespace

TEST(DefnsTest, DefnsOfFooAtH) {
  Hierarchy H = makeFigure3();
  auto Graph = SubobjectGraph::build(H, H.findClass("H"));
  ASSERT_TRUE(Graph);
  // The three equivalence classes, by canonical name: {ABDFH,ABDGH} is
  // ABD*H, {ACDFH,ACDGH} is ACD*H, {GH} is GH.
  EXPECT_EQ(defnsAsStrings(H, *Graph, "foo"),
            (std::set<std::string>{"ABD*H", "ACD*H", "GH"}));
}

TEST(DefnsTest, DefnsOfBarAtH) {
  Hierarchy H = makeFigure3();
  auto Graph = SubobjectGraph::build(H, H.findClass("H"));
  ASSERT_TRUE(Graph);
  // {EFH} is EFH, {DFH,DGH} is D*H, {GH} is GH.
  EXPECT_EQ(defnsAsStrings(H, *Graph, "bar"),
            (std::set<std::string>{"EFH", "D*H", "GH"}));
}

TEST(DefnsTest, DefnsAtIntermediateNodes) {
  Hierarchy H = makeFigure3();
  auto GraphF = SubobjectGraph::build(H, H.findClass("F"));
  ASSERT_TRUE(GraphF);
  // At F: bar is declared by E (subobject EF) and D (virtual D*F).
  EXPECT_EQ(defnsAsStrings(H, *GraphF, "bar"),
            (std::set<std::string>{"EF", "D*F"}));
  // foo reaches F only through the virtual D: two A subobjects.
  EXPECT_EQ(defnsAsStrings(H, *GraphF, "foo"),
            (std::set<std::string>{"ABD*F", "ACD*F"}));
}

TEST(DefnsTest, EmptyDefnsForUnknownMember) {
  Hierarchy H = makeFigure3();
  auto Graph = SubobjectGraph::build(H, H.findClass("H"));
  ASSERT_TRUE(Graph);
  Symbol Baz = H.internName("baz");
  EXPECT_TRUE(Graph->definingSubobjects(Baz).empty());
}

TEST(DefnsTest, MostDominantFooIsGH) {
  Hierarchy H = makeFigure3();
  auto Graph = SubobjectGraph::build(H, H.findClass("H"));
  ASSERT_TRUE(Graph);

  std::vector<SubobjectId> Defs =
      Graph->definingSubobjects(H.findName("foo"));
  SubobjectId GH = Graph->find(
      SubobjectKey{{H.findClass("G"), H.findClass("H")}, H.findClass("H")});
  ASSERT_TRUE(GH.isValid());

  // GH dominates (contains) every other defining subobject.
  for (SubobjectId Def : Defs)
    EXPECT_TRUE(Graph->contains(GH, Def))
        << formatSubobjectKey(H, Graph->subobject(Def).Key);
}

TEST(DefnsTest, NoMostDominantBarAtH) {
  Hierarchy H = makeFigure3();
  auto Graph = SubobjectGraph::build(H, H.findClass("H"));
  ASSERT_TRUE(Graph);

  std::vector<SubobjectId> Defs =
      Graph->definingSubobjects(H.findName("bar"));
  ASSERT_EQ(Defs.size(), 3u);
  for (SubobjectId Candidate : Defs) {
    bool DominatesAll = true;
    for (SubobjectId Other : Defs)
      if (!Graph->contains(Candidate, Other))
        DominatesAll = false;
    EXPECT_FALSE(DominatesAll)
        << formatSubobjectKey(H, Graph->subobject(Candidate).Key)
        << " should not dominate all definitions";
  }
}
