//===- SubobjectGraphTest.cpp - Experiments E1/E2 structure ----------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// Structural reproduction of the subobject graphs of Figures 1(c) and
/// 2(c): "an E object has two subobjects of class A in the first case,
/// but only one subobject of class A in the second case".
///
//===----------------------------------------------------------------------===//

#include "memlook/subobject/SubobjectGraph.h"

#include "memlook/workload/Generators.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace memlook;
using namespace memlook::testutil;

TEST(SubobjectGraphTest, Figure1HasTwoASubobjects) {
  Hierarchy H = makeFigure1();
  auto Graph = SubobjectGraph::build(H, H.findClass("E"));
  ASSERT_TRUE(Graph);
  // E, C, D, B-via-C, B-via-D, A-via-C, A-via-D.
  EXPECT_EQ(Graph->numSubobjects(), 7u);
  EXPECT_EQ(Graph->countWithLdc(H.findClass("A")), 2u);
  EXPECT_EQ(Graph->countWithLdc(H.findClass("B")), 2u);
  EXPECT_EQ(Graph->countWithLdc(H.findClass("E")), 1u);
}

TEST(SubobjectGraphTest, Figure2HasOneASubobject) {
  Hierarchy H = makeFigure2();
  auto Graph = SubobjectGraph::build(H, H.findClass("E"));
  ASSERT_TRUE(Graph);
  // E, C, D, shared virtual B, single A within it.
  EXPECT_EQ(Graph->numSubobjects(), 5u);
  EXPECT_EQ(Graph->countWithLdc(H.findClass("A")), 1u);
  EXPECT_EQ(Graph->countWithLdc(H.findClass("B")), 1u);
}

TEST(SubobjectGraphTest, RootIsTheCompleteObject) {
  Hierarchy H = makeFigure1();
  ClassId E = H.findClass("E");
  auto Graph = SubobjectGraph::build(H, E);
  ASSERT_TRUE(Graph);
  const SubobjectGraph::Subobject &Root = Graph->subobject(Graph->root());
  EXPECT_EQ(Root.Key.ldc(), E);
  EXPECT_EQ(Root.Key.Mdc, E);
  EXPECT_EQ(Root.Repr.length(), 1u);
}

TEST(SubobjectGraphTest, ContainmentIsReflexiveAndFollowsBases) {
  Hierarchy H = makeFigure2();
  ClassId E = H.findClass("E");
  auto Graph = SubobjectGraph::build(H, E);
  ASSERT_TRUE(Graph);

  SubobjectId Root = Graph->root();
  EXPECT_TRUE(Graph->contains(Root, Root));

  // The root contains everything.
  for (uint32_t I = 0; I != Graph->numSubobjects(); ++I)
    EXPECT_TRUE(Graph->contains(Root, SubobjectId(I)));

  // The shared B subobject contains A but not the C subobject.
  SubobjectId B = Graph->find(SubobjectKey{{H.findClass("B")}, E});
  SubobjectId A =
      Graph->find(SubobjectKey{{H.findClass("A"), H.findClass("B")}, E});
  SubobjectId C =
      Graph->find(SubobjectKey{{H.findClass("C"), E}, E});
  ASSERT_TRUE(B.isValid() && A.isValid() && C.isValid());
  EXPECT_TRUE(Graph->contains(B, A));
  EXPECT_FALSE(Graph->contains(B, C));
  EXPECT_FALSE(Graph->contains(A, B));
}

TEST(SubobjectGraphTest, ReachableFromAgreesWithContains) {
  Hierarchy H = makeFigure3();
  auto Graph = SubobjectGraph::build(H, H.findClass("H"));
  ASSERT_TRUE(Graph);
  for (uint32_t I = 0; I != Graph->numSubobjects(); ++I) {
    BitVector Reach = Graph->reachableFrom(SubobjectId(I));
    for (uint32_t J = 0; J != Graph->numSubobjects(); ++J)
      EXPECT_EQ(Reach.test(J),
                Graph->contains(SubobjectId(I), SubobjectId(J)));
  }
}

TEST(SubobjectGraphTest, VirtualSharingMergesNodes) {
  Hierarchy H = makeFigure9();
  auto Graph = SubobjectGraph::build(H, H.findClass("E"));
  ASSERT_TRUE(Graph);
  // Virtual A, B, C, S are shared: exactly one subobject each.
  for (const char *Name : {"S", "A", "B", "C"})
    EXPECT_EQ(Graph->countWithLdc(H.findClass(Name)), 1u) << Name;
}

TEST(SubobjectGraphTest, ExponentialFamilyOverflowsBudget) {
  Workload W = makeNonVirtualDiamondStack(12);
  ClassId Top = W.QueryClasses.front();
  // 2^12 apex subobjects exceed a budget of 1000.
  EXPECT_FALSE(SubobjectGraph::build(W.H, Top, /*MaxSubobjects=*/1000));
  // The virtual variant stays tiny.
  Workload V = makeVirtualDiamondStack(12);
  auto Graph = SubobjectGraph::build(V.H, V.QueryClasses.front(),
                                     /*MaxSubobjects=*/1000);
  ASSERT_TRUE(Graph);
  EXPECT_LT(Graph->numSubobjects(), 100u);
}

TEST(SubobjectGraphTest, NonVirtualDiamondStackCountsArePowersOfTwo) {
  for (uint32_t K = 1; K <= 6; ++K) {
    Workload W = makeNonVirtualDiamondStack(K);
    auto Graph = SubobjectGraph::build(W.H, W.QueryClasses.front());
    ASSERT_TRUE(Graph);
    EXPECT_EQ(Graph->countWithLdc(W.H.findClass("J0")), 1u << K)
        << "apex replication at depth " << K;
  }
}

TEST(SubobjectGraphTest, FindRejectsForeignKeys) {
  Hierarchy H = makeFigure1();
  auto Graph = SubobjectGraph::build(H, H.findClass("E"));
  ASSERT_TRUE(Graph);
  // A key whose mdc is not the complete class is never present.
  SubobjectKey Foreign{{H.findClass("A")}, H.findClass("D")};
  EXPECT_FALSE(Graph->find(Foreign).isValid());
}

TEST(SubobjectGraphTest, DotOutputListsAllSubobjects) {
  Hierarchy H = makeFigure1();
  auto Graph = SubobjectGraph::build(H, H.findClass("E"));
  ASSERT_TRUE(Graph);
  std::ostringstream OS;
  Graph->writeDot(OS, "fig1c");
  std::string Out = OS.str();
  EXPECT_NE(Out.find("digraph"), std::string::npos);
  // Two distinct A subobjects appear with distinct canonical names.
  EXPECT_NE(Out.find("ABCE"), std::string::npos);
  EXPECT_NE(Out.find("ABDE"), std::string::npos);
}

TEST(SubobjectGraphTest, DefiningSubobjectsFindsDeclaringLdcs) {
  Hierarchy H = makeFigure1();
  auto Graph = SubobjectGraph::build(H, H.findClass("E"));
  ASSERT_TRUE(Graph);
  Symbol M = H.findName("m");
  std::vector<SubobjectId> Defs = Graph->definingSubobjects(M);
  // Two A subobjects and one D subobject declare m.
  EXPECT_EQ(Defs.size(), 3u);
}
