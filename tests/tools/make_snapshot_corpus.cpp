//===- make_snapshot_corpus.cpp - Corrupted-snapshot corpus generator --------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
//
// Regenerates tests/corpus/snapshots/: one deliberately corrupted
// snapshot file per loader rejection class, each derived from a real
// serialized snapshot so the corruption sits exactly where the targeted
// validator looks. Several are *resealed* (section and header CRCs
// recomputed over the corrupted bytes) so they sail past the checksum
// gate and exercise the structural validators behind it.
//
//   $ make_snapshot_corpus <output-dir>
//
// The tool is self-checking: after writing each file it loads it back
// under the untrusted-input budget and aborts unless the loader rejects
// it with the expected ErrorCode. Regenerating the corpus therefore
// cannot silently land a file the loader accepts. SnapshotCorpusTest
// mirrors the same expectation table against the committed files.
//
//===----------------------------------------------------------------------===//

#include "memlook/chg/HierarchyBuilder.h"
#include "memlook/core/CompactColumn.h"
#include "memlook/service/SnapshotFile.h"
#include "memlook/support/Crc32.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

using namespace memlook;
using namespace memlook::service;

namespace {

/// The donor hierarchy every warm corpus file corrupts: two classes,
/// two members, two distinct columns.
///   class A { void m(); };  class B : A { void n(); };
Hierarchy makeDonor() {
  HierarchyBuilder B;
  B.addClass("A").withMember("m");
  B.addClass("B").withBase("A").withMember("n");
  return std::move(B).build();
}

std::string serializeDonor(bool Warm) {
  Hierarchy H = makeDonor();
  std::shared_ptr<const LookupTable> Table;
  if (Warm)
    Table = LookupTable::build(H);
  return serializeSnapshot(/*Epoch=*/1, H, Table.get());
}

uint64_t sectionOffset(const std::string &Bytes, size_t Index) {
  Expected<std::vector<SnapshotSectionInfo>> Sections =
      inspectSnapshotSections(Bytes);
  if (!Sections || Index >= Sections->size()) {
    std::cerr << "donor snapshot has no section " << Index << "\n";
    std::exit(1);
  }
  return (*Sections)[Index].Offset;
}

/// Walks the columns section to its member-reference array. (Sections
/// carry tail padding, so "section end minus a few words" would not
/// land on the refs.)
size_t memberRefsOffset(const std::string &Bytes) {
  size_t Off = sectionOffset(Bytes, 2);
  auto u32At = [&](size_t At) {
    uint32_t V = 0;
    std::memcpy(&V, Bytes.data() + At, sizeof(V));
    return V;
  };
  uint32_t DistinctCount = u32At(Off + 4); // skip the hierarchy binding
  size_t P = Off + 8;
  for (uint32_t D = 0; D != DistinctCount; ++D) {
    uint32_t NumRows = u32At(P), RedLen = u32At(P + 4), BlueLen = u32At(P + 8);
    P += 20 + size_t(NumRows) * sizeof(CompactEntry) +
         size_t(RedLen) * sizeof(ClassId) +
         size_t(BlueLen) * sizeof(BlueElement);
  }
  return P + 4; // skip the reference count
}

void patchU32At(std::string &Bytes, size_t At, uint32_t Value) {
  std::memcpy(Bytes.data() + At, &Value, sizeof(Value));
}

void reseal(std::string &Bytes) {
  Status S = resealSnapshotChecksums(Bytes);
  if (!S.isOk()) {
    std::cerr << "reseal failed: " << S.toString() << "\n";
    std::exit(1);
  }
}

/// Overwrites row 0 of the first distinct column (class A's entry for
/// member m) with \p E and reseals. Layout inside the columns section:
/// u32 hierarchy binding, u32 distinctCount, then the first column's
/// 20-byte header (numRows, redLen, blueLen, structuralHash) and its
/// entries.
void patchFirstEntry(std::string &Bytes, const CompactEntry &E) {
  size_t ColumnsOff = sectionOffset(Bytes, 2);
  std::memcpy(Bytes.data() + ColumnsOff + 28, &E, sizeof(E));
  reseal(Bytes);
}

struct CorpusCase {
  const char *FileName;
  ErrorCode ExpectedCode;
  std::string Bytes;
};

std::vector<CorpusCase> buildCases() {
  std::vector<CorpusCase> Cases;

  // Not even a header.
  Cases.push_back({"empty.snap", ErrorCode::SnapshotMalformed, ""});

  // Wrong magic: rejected before anything else is trusted.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    B[2] ^= 0x20;
    Cases.push_back({"bad_magic.snap", ErrorCode::SnapshotVersionMismatch,
                     std::move(B)});
  }

  // A future format version, with the header CRC recomputed by hand so
  // the version check (not the checksum) is what rejects it.
  // resealSnapshotChecksums itself refuses unknown versions, so the
  // header geometry is recovered from the section table first.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    size_t HeaderBytes = sectionOffset(B, 0) - sizeof(uint32_t);
    patchU32At(B, 8, 99); // version follows the 8-byte magic
    patchU32At(B, HeaderBytes,
               crc32c(std::string_view(B).substr(0, HeaderBytes)));
    Cases.push_back({"bad_version.snap", ErrorCode::SnapshotVersionMismatch,
                     std::move(B)});
  }

  // Crash mid-write: the file ends inside the hierarchy section, so the
  // section table describes bytes that are not there.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    B.resize(sectionOffset(B, 1) + 3);
    Cases.push_back({"truncated_mid_section.snap",
                     ErrorCode::SnapshotMalformed, std::move(B)});
  }

  // Single flipped bit in a payload, checksums left alone: the cheap
  // CRC gate must catch it before any structural validator runs.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    B[sectionOffset(B, 1) + 5] ^= 0x10;
    Cases.push_back({"flipped_payload_bit.snap",
                     ErrorCode::SnapshotChecksumMismatch, std::move(B)});
  }

  // Resealed blue entry whose pool reference points far outside the
  // blue pool: the bounds check must fire, never an over-read.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    CompactEntry E;
    E.KindAndFlags = 2; // blue
    E.PoolCount = 3;
    E.InlineOrOffset = 0xffffff00u;
    patchFirstEntry(B, E);
    Cases.push_back({"oob_pool_offset.snap", ErrorCode::SnapshotMalformed,
                     std::move(B)});
  }

  // Resealed header lying about the class count: the hierarchy
  // section's own count disagrees and the replay refuses.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    patchU32At(B, 20, 3); // numClasses field; the payload says 2
    reseal(B);
    Cases.push_back({"header_class_count_lie.snap",
                     ErrorCode::SnapshotMalformed, std::move(B)});
  }

  // Resealed base reference rewritten to the class itself (B : B): the
  // replay through the public Hierarchy API rejects the cycle exactly
  // as it would in a .mlk source. Cold snapshot, so the rejection comes
  // from the replay and not from the table's hierarchy binding.
  {
    std::string B = serializeDonor(/*Warm=*/false);
    // Hierarchy payload: u32 numClasses, class A (nameRef, numBases=0,
    // numMembers=1, one 10-byte member record), then class B's nameRef
    // and numBases followed by its base record's class reference.
    size_t HierOff = sectionOffset(B, 1);
    patchU32At(B, HierOff + 4 + 22 + 8, 1);
    reseal(B);
    Cases.push_back({"cyclic_hierarchy.snap", ErrorCode::SnapshotMalformed,
                     std::move(B)});
  }

  // Resealed header advertising a billion classes: rejected by the
  // untrusted-input ResourceBudget before any allocation scales with
  // the lie.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    patchU32At(B, 20, 1u << 30);
    reseal(B);
    Cases.push_back({"huge_counts.snap", ErrorCode::BudgetExceeded,
                     std::move(B)});
  }

  // Resealed red entry whose Via names a class that is not a direct
  // base of the row (B is derived from A, not a base of it): the
  // witness-chain validator must refuse before entryToResult could
  // ever walk it.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    CompactEntry E;
    E.KindAndFlags = 1; // red
    E.DefiningClass = ClassId(1);
    E.Via = ClassId(1);
    E.InlineOrOffset = ClassId::InvalidValue;
    patchFirstEntry(B, E);
    Cases.push_back({"via_not_base.snap", ErrorCode::SnapshotMalformed,
                     std::move(B)});
  }

  // Resealed member references swapped: each column is individually
  // well formed, but m now claims n's column and vice versa. The
  // declaration-site binding must refuse to hand a member another
  // member's answers.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    size_t Refs = memberRefsOffset(B);
    patchU32At(B, Refs, 1);
    patchU32At(B, Refs + 4, 0);
    reseal(B);
    Cases.push_back({"member_ref_swap.snap", ErrorCode::SnapshotMalformed,
                     std::move(B)});
  }

  // Resealed inheritance kind flipped to virtual: the hierarchy replays
  // fine, but the table was tabulated over the non-virtual original.
  // The hierarchy binding at the head of the columns section must
  // refuse the stale table.
  {
    std::string B = serializeDonor(/*Warm=*/true);
    // Class B's base record {u32 base, u8 kind, u8 access} starts 8
    // bytes into B's record; the kind byte follows the base reference.
    size_t HierOff = sectionOffset(B, 1);
    B[HierOff + 4 + 22 + 8 + 4] ^= 1; // NonVirtual -> Virtual
    reseal(B);
    Cases.push_back({"stale_table_after_hierarchy_edit.snap",
                     ErrorCode::SnapshotMalformed, std::move(B)});
  }

  return Cases;
}

} // namespace

int main(int ArgC, char **ArgV) {
  if (ArgC != 2) {
    std::cerr << "usage: " << ArgV[0] << " <output-dir>\n";
    return 2;
  }
  std::filesystem::path Dir(ArgV[1]);
  std::filesystem::create_directories(Dir);

  int Failures = 0;
  for (CorpusCase &Case : buildCases()) {
    std::filesystem::path Path = Dir / Case.FileName;
    {
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      Out.write(Case.Bytes.data(),
                static_cast<std::streamsize>(Case.Bytes.size()));
    }

    Expected<SnapshotPayload> Loaded =
        readSnapshotFile(Path.string(), ResourceBudget::untrustedInput());
    if (Loaded) {
      std::cerr << Case.FileName << ": ACCEPTED by the loader - the "
                << "corruption no longer reaches its validator\n";
      ++Failures;
    } else if (Loaded.status().code() != Case.ExpectedCode) {
      std::cerr << Case.FileName << ": rejected with '"
                << Loaded.status().toString() << "', expected code "
                << errorCodeLabel(Case.ExpectedCode) << "\n";
      ++Failures;
    } else {
      std::cout << Case.FileName << ": " << Loaded.status().toString()
                << "\n";
    }
  }
  return Failures == 0 ? 0 : 1;
}
