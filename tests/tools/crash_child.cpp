//===- tests/tools/crash_child.cpp - Crash-campaign victim -------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
//
// The process the crash-recovery campaign kills. Usage:
//
//   crash_child <seed> <dir>
//
// Runs a durable LookupService with its state under <dir> (state.snap,
// state.wal) through the deterministic CrashWorkload script for <seed>,
// taking a mid-run snapshot, while the parent-supplied
// MEMLOOK_CRASH_POINT environment arms a SIGKILL / torn write / failed
// op somewhere along the way. After every commit() that *returns*
// success the child appends the new epoch to <dir>/acks with a raw
// write(): those acknowledged epochs are the durability promises the
// parent holds recovery to. Injected FailOp errors are retried once
// (the injection is one-shot); anything else unexpected exits nonzero
// so the parent can tell "killed as planned" from "script broke".
//
// Exit codes: 0 script completed (the armed point never fired or was
// survivable), 2 usage, 3 a commit failed twice, 4 restore failed.
// Death by SIGKILL is the expected outcome for kill-mode armings.
//
//===----------------------------------------------------------------------===//

#include "CrashWorkload.h"

#include "memlook/service/LookupService.h"

#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <string>
#include <unistd.h>

using namespace memlook;
using namespace memlook::service;

int main(int ArgC, char **ArgV) {
  if (ArgC != 3) {
    std::fprintf(stderr, "usage: crash_child <seed> <dir>\n");
    return 2;
  }
  uint64_t Seed = std::strtoull(ArgV[1], nullptr, 10);
  std::string Dir = ArgV[2];
  std::string SnapPath = Dir + "/state.snap";

  ServiceOptions Opts;
  Opts.WalPath = Dir + "/state.wal";

  // restore() rather than the constructor: on the campaign's fresh
  // directory it lands on the rebuild rung and starts the log, and it
  // keeps this binary reusable against a directory that already crashed
  // once.
  auto Restored = LookupService::restore(SnapPath, crashwk::baseWorkload().H,
                                         Opts);
  if (!Restored.hasValue()) {
    std::fprintf(stderr, "restore: %s\n",
                 Restored.status().toString().c_str());
    return 4;
  }
  std::unique_ptr<LookupService> Svc = std::move(*Restored);

  int AckFd = ::open((Dir + "/acks").c_str(),
                     O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (AckFd < 0)
    return 2;

  // Drive the script from wherever the service currently stands: epoch
  // E means the first E - 1 script transactions are already in.
  while (Svc->currentEpoch() < 1 + crashwk::NumScriptTxns) {
    uint64_t K = Svc->currentEpoch() - 1;
    Status S;
    for (int Attempt = 0; Attempt < 2; ++Attempt) {
      Transaction Txn = Svc->beginTxn();
      crashwk::recordScriptTxn(Seed, K, *Svc->snapshot()->H, Txn);
      S = Svc->commit(Txn);
      if (S.isOk())
        break; // An injected FailOp is one-shot; one retry suffices.
    }
    if (!S.isOk()) {
      std::fprintf(stderr, "commit %llu: %s\n",
                   static_cast<unsigned long long>(K),
                   S.toString().c_str());
      return 3;
    }

    // The ack is the parent's durability bar: raw write(), because a
    // SIGKILL later must not be able to lose it (page cache survives
    // process death; only the process's own buffers die).
    char Line[32];
    int Len = std::snprintf(Line, sizeof(Line), "%llu\n",
                            static_cast<unsigned long long>(
                                Svc->currentEpoch()));
    (void)!::write(AckFd, Line, static_cast<size_t>(Len));

    // Mid-run compaction puts the snapshot/compaction crash points in
    // play with live records on both sides of the new base epoch. A
    // FailOp-injected save is survivable by design: the old log still
    // covers everything.
    if (K == crashwk::SnapshotAfterTxn)
      (void)Svc->saveSnapshot(SnapPath);
  }

  ::close(AckFd);
  return 0;
}
