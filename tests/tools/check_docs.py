#!/usr/bin/env python3
"""Docs-consistency check: headers and docs must describe the same system.

Three cross-checks, each a set equality so drift in either direction
fails:

  1. ServiceStats fields: struct ServiceStats (LookupService.h)
     <-> the metric catalog's StatField column (Observability.cpp)
     <-> the metric-catalog table in docs/OBSERVABILITY.md.
     The Prometheus series names in the doc table must also match the
     catalog's PromName strings exactly (labels included).
  2. ErrorCode enumerators (support/Status.h)
     <-> the code-index table in docs/ERRORS.md.
  3. lookup_tool exit codes (constexpr int Exit* in
     examples/lookup_tool.cpp, plus the implicit 0/1/2)
     <-> the exit-code table in docs/SERVICE.md.

Run as `python3 tests/tools/check_docs.py [repo-root]`; registered in
ctest as `docs_consistency`. Exits non-zero listing every discrepancy.
"""

import re
import sys
from pathlib import Path


def fail_list(errors):
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if errors:
        print(f"check_docs: FAILED ({len(errors)} discrepancies)",
              file=sys.stderr)
        sys.exit(1)


def block(text, start_pat, end_pat, what):
    """The text between the first start_pat match and the next end_pat."""
    m = re.search(start_pat, text)
    if not m:
        sys.exit(f"check_docs: cannot find {what} (pattern {start_pat!r})")
    rest = text[m.end():]
    e = re.search(end_pat, rest)
    return rest[: e.start()] if e else rest


def service_stats_fields(header_text):
    body = block(header_text, r"struct ServiceStats \{", r"\n\};",
                 "struct ServiceStats")
    return set(re.findall(r"uint64_t (\w+)(?:\[\d+\])? = ", body))


def catalog_entries(cpp_text):
    """(prom_name, stat_field) pairs from the Catalog[] initializer."""
    body = block(cpp_text, r"const MetricDesc Catalog\[\] = \{", r"\n\};",
                 "MetricDesc Catalog[]")
    entries = []
    for m in re.finditer(r'\b(COUNTER|GAUGE)\(\s*"([^"]*)",\s*(\w+),', body):
        entries.append((m.group(2), m.group(3)))
    for m in re.finditer(r'\bRUNG_COUNTER\(\s*"((?:[^"\\]|\\.)*)",', body):
        entries.append((m.group(1).replace('\\"', '"'), "RungAnswers"))
    return entries


def doc_catalog_rows(doc_text):
    """(prom_name, stat_field) pairs from OBSERVABILITY.md's catalog table.

    Rows look like: | `memlook_x_total` | counter | `Field` | help |
    """
    body = block(doc_text, r"## .*[Mm]etric catalog", r"\n## ",
                 "OBSERVABILITY.md metric-catalog section")
    rows = []
    for line in body.splitlines():
        m = re.match(r"\|\s*`(memlook_[^`]+)`\s*\|[^|]*\|\s*`(\w+)`", line)
        if m:
            rows.append((m.group(1), m.group(2)))
    return rows


def error_code_enumerators(status_text):
    body = block(status_text, r"enum class ErrorCode : uint8_t \{", r"\n\};",
                 "enum class ErrorCode")
    names = set()
    for line in body.splitlines():
        m = re.match(r"\s*(\w+)(?:\s*=\s*\w+)?,\s*(?://.*)?$", line)
        if m:
            names.add(m.group(1))
    return names


def doc_error_codes(errors_text):
    body = block(errors_text, r"## Code index", r"\n## ",
                 "ERRORS.md code-index table")
    return set(re.findall(r"^\|\s*`(\w+)`", body, re.MULTILINE))


def tool_exit_codes(tool_text):
    codes = {0, 1, 2}  # success / hard failure / usage, returned inline
    codes.update(int(v) for v in
                 re.findall(r"constexpr int Exit\w+ = (\d+);", tool_text))
    return codes


def doc_exit_codes(service_text):
    body = block(service_text, r"### Exit-code contract", r"\n#+ ",
                 "SERVICE.md exit-code table")
    return set(int(v) for v in re.findall(r"^\|\s*(\d+)\s*\|", body,
                                          re.MULTILINE))


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parents[2]
    read = lambda rel: (root / rel).read_text(encoding="utf-8")

    header = read("include/memlook/service/LookupService.h")
    catalog_cpp = read("src/service/Observability.cpp")
    obs_doc = read("docs/OBSERVABILITY.md")
    status_h = read("include/memlook/support/Status.h")
    errors_doc = read("docs/ERRORS.md")
    tool_cpp = read("examples/lookup_tool.cpp")
    service_doc = read("docs/SERVICE.md")

    errors = []

    def diff(what, a_name, a, b_name, b):
        for x in sorted(a - b):
            errors.append(f"{what} {x!r} is in {a_name} but not {b_name}")
        for x in sorted(b - a):
            errors.append(f"{what} {x!r} is in {b_name} but not {a_name}")

    # 1. ServiceStats <-> catalog <-> OBSERVABILITY.md.
    header_fields = service_stats_fields(header)
    cat = catalog_entries(catalog_cpp)
    cat_fields = {f for _, f in cat}
    cat_proms = [p for p, _ in cat]
    doc_rows = doc_catalog_rows(obs_doc)
    doc_fields = {f for _, f in doc_rows}
    doc_proms = [p for p, _ in doc_rows]

    if len(set(cat_proms)) != len(cat_proms):
        errors.append("duplicate PromName in the Observability.cpp catalog")
    if len(set(doc_proms)) != len(doc_proms):
        errors.append("duplicate series name in the OBSERVABILITY.md table")
    diff("ServiceStats field", "LookupService.h", header_fields,
         "the Observability.cpp catalog", cat_fields)
    diff("ServiceStats field", "LookupService.h", header_fields,
         "the OBSERVABILITY.md catalog table", doc_fields)
    diff("metric series", "the Observability.cpp catalog", set(cat_proms),
         "the OBSERVABILITY.md catalog table", set(doc_proms))

    # 2. ErrorCode <-> ERRORS.md.
    diff("ErrorCode", "Status.h", error_code_enumerators(status_h),
         "the ERRORS.md code index", doc_error_codes(errors_doc))

    # 3. lookup_tool exit codes <-> SERVICE.md.
    diff("lookup_tool exit code", "lookup_tool.cpp",
         tool_exit_codes(tool_cpp), "the SERVICE.md exit-code table",
         doc_exit_codes(service_doc))

    fail_list(errors)
    print(f"check_docs: OK ({len(header_fields)} stats fields, "
          f"{len(cat_proms)} metric series, "
          f"{len(error_code_enumerators(status_h))} error codes, "
          f"{len(tool_exit_codes(tool_cpp))} exit codes)")


if __name__ == "__main__":
    main()
