//===- make_wal_corpus.cpp - Corrupted-WAL corpus generator ------------------===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
//
// Regenerates tests/corpus/wal/: one deliberately damaged write-ahead
// log per salvage outcome class, each derived from a real three-record
// log so the damage sits exactly where the targeted check looks. Files
// whose damage must get past the CRC gate (epoch skews, a lying length,
// a bad base version) are resealed or hand-checksummed.
//
//   $ make_wal_corpus <output-dir>
//
// Self-checking like make_snapshot_corpus: after writing each file the
// tool salvages it back and aborts unless the outcome - stop code,
// salvaged-record count, torn-tail bytes - matches the expectation.
// WalCorpusTest mirrors the same table against the committed files.
//
//===----------------------------------------------------------------------===//

#include "memlook/service/WriteAheadLog.h"
#include "memlook/support/Crc32.h"
#include "memlook/workload/Generators.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace memlook;
using namespace memlook::service;

namespace {

constexpr size_t HeaderSize = 28;
constexpr size_t OffPayloadSize = 16;
constexpr size_t OffHeaderCrc = 24;

/// The donor: base record at epoch 1 over a small forest, then three
/// valid transaction records. Offsets of each record are kept so damage
/// can be aimed.
struct DonorLog {
  std::string Bytes;
  std::vector<size_t> RecordOffsets; // [0] is the base record
};

DonorLog makeDonor() {
  DonorLog Log;
  Workload W = makeModularForest(2, 2, 2, 3, 2);

  std::vector<std::string> Records;
  Records.push_back(encodeWalBaseRecord(1, hierarchyFingerprint(W.H)));
  for (uint64_t K = 0; K != 3; ++K) {
    std::vector<Transaction::Op> Ops;
    std::string Fresh = "Corpus" + std::to_string(K);
    Ops.push_back(Transaction::Op{Transaction::OpKind::AddClass, Fresh, {},
                                  {}, InheritanceKind::NonVirtual,
                                  AccessSpec::Public, false, false});
    Ops.push_back(Transaction::Op{Transaction::OpKind::AddMember, Fresh, {},
                                  "corpus_m", InheritanceKind::NonVirtual,
                                  AccessSpec::Public, false, K % 2 == 1});
    Records.push_back(encodeWalTxnRecord(K + 2, Ops));
  }
  for (const std::string &R : Records) {
    Log.RecordOffsets.push_back(Log.Bytes.size());
    Log.Bytes += R;
  }
  return Log;
}

void patchU32At(std::string &Bytes, size_t At, uint32_t Value) {
  std::memcpy(Bytes.data() + At, &Value, sizeof(Value));
}

/// Recomputes one record's header CRC by hand - for damage (a lying
/// length) that resealWalChecksums refuses to walk past.
void resealHeaderCrcAt(std::string &Bytes, size_t RecordOff) {
  patchU32At(Bytes, RecordOff + OffHeaderCrc,
             crc32c(Bytes.data() + RecordOff, OffHeaderCrc));
}

struct CorpusCase {
  const char *FileName;
  /// Expected salvage stop code (Ok for the torn-tail cases).
  ErrorCode ExpectedCode;
  /// Transaction records the clean prefix must still yield.
  uint64_t ExpectedRecords;
  /// Whether a silently dropped torn tail is expected.
  bool ExpectTornDrop;
  std::string Bytes;
};

std::vector<CorpusCase> buildCases() {
  std::vector<CorpusCase> Cases;
  DonorLog Donor = makeDonor();
  size_t R1 = Donor.RecordOffsets[1];
  size_t R2 = Donor.RecordOffsets[2];
  size_t R3 = Donor.RecordOffsets[3];

  // An empty file is a log that never got its base record written: no
  // history, nothing wrong.
  Cases.push_back({"empty.wal", ErrorCode::Ok, 0, false, ""});

  // A log that does not open with a base record cannot name the state
  // it extends; replaying it anywhere would be a guess.
  Cases.push_back({"no_base_record.wal", ErrorCode::WalCorrupt, 0, false,
                   Donor.Bytes.substr(R1)});

  // Wrong magic on the first record: not a log at all.
  {
    std::string B = Donor.Bytes;
    B[0] ^= 0x20;
    Cases.push_back({"bad_magic.wal", ErrorCode::WalCorrupt, 0, false,
                     std::move(B)});
  }

  // A future base-record version, resealed so the version check (not
  // the CRC gate) is what refuses it.
  {
    std::string B = Donor.Bytes;
    patchU32At(B, HeaderSize, 2); // base payload: u32 version, u32 fp
    resealWalChecksums(B);
    Cases.push_back({"bad_base_version.wal", ErrorCode::WalCorrupt, 0, false,
                     std::move(B)});
  }

  // One flipped byte in the middle record's payload, checksums left
  // alone: all bytes are present, so this is rot, not a torn tail. The
  // record before it must still be salvaged.
  {
    std::string B = Donor.Bytes;
    B[R2 + HeaderSize + 2] ^= 0x04;
    Cases.push_back({"flipped_payload_byte.wal", ErrorCode::WalCorrupt, 1,
                     false, std::move(B)});
  }

  // The second record spliced in twice: each copy is individually
  // pristine, but epochs must chain +1 and history cannot repeat.
  {
    std::string B = Donor.Bytes.substr(0, R3) +
                    Donor.Bytes.substr(R2, R3 - R2) + Donor.Bytes.substr(R3);
    Cases.push_back({"duplicated_epoch.wal", ErrorCode::WalEpochSkew, 2,
                     false, std::move(B)});
  }

  // The second record dropped: the chain jumps an epoch, so the records
  // after the gap describe transactions against a state the salvage
  // does not have.
  {
    std::string B = Donor.Bytes.substr(0, R2) + Donor.Bytes.substr(R3);
    Cases.push_back({"epoch_gap.wal", ErrorCode::WalEpochSkew, 1, false,
                     std::move(B)});
  }

  // The torn tail the format is designed around: the last record ends
  // mid-payload, exactly what SIGKILL mid-append leaves. Silent.
  {
    std::string B = Donor.Bytes.substr(0, R3 + HeaderSize + 5);
    Cases.push_back({"torn_tail.wal", ErrorCode::Ok, 2, true, std::move(B)});
  }

  // Torn even earlier: the file ends ten bytes into the final header.
  {
    std::string B = Donor.Bytes.substr(0, R3 + 10);
    Cases.push_back({"truncated_mid_header.wal", ErrorCode::Ok, 2, true,
                     std::move(B)});
  }

  // A header whose claimed payload exceeds the 16 MiB writer maximum,
  // header CRC recomputed by hand: no honest writer emits this, so it
  // can never be explained as a truncated suffix.
  {
    std::string B = Donor.Bytes;
    patchU32At(B, R3 + OffPayloadSize, (16u << 20) + 1);
    resealHeaderCrcAt(B, R3);
    Cases.push_back({"length_lie.wal", ErrorCode::WalCorrupt, 2, false,
                     std::move(B)});
  }

  // A full header's worth of garbage after the clean records: too long
  // to be a torn header, so it must be called out, not dropped.
  {
    std::string B = Donor.Bytes;
    for (int I = 0; I != 64; ++I)
      B.push_back(static_cast<char>(0xA5 ^ (I * 29)));
    Cases.push_back({"junk_interior.wal", ErrorCode::WalCorrupt, 3, false,
                     std::move(B)});
  }

  return Cases;
}

} // namespace

int main(int ArgC, char **ArgV) {
  if (ArgC != 2) {
    std::cerr << "usage: " << ArgV[0] << " <output-dir>\n";
    return 2;
  }
  std::filesystem::path Dir(ArgV[1]);
  std::filesystem::create_directories(Dir);

  int Failures = 0;
  for (CorpusCase &Case : buildCases()) {
    std::filesystem::path Path = Dir / Case.FileName;
    {
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      Out.write(Case.Bytes.data(),
                static_cast<std::streamsize>(Case.Bytes.size()));
    }

    WalSalvage S = WriteAheadLog::replayFile(Path.string());
    if (S.Error.code() != Case.ExpectedCode) {
      std::cerr << Case.FileName << ": salvage stopped with '"
                << S.Error.toString() << "', expected code "
                << errorCodeLabel(Case.ExpectedCode) << "\n";
      ++Failures;
    } else if (S.Records.size() != Case.ExpectedRecords) {
      std::cerr << Case.FileName << ": salvaged " << S.Records.size()
                << " records, expected " << Case.ExpectedRecords << "\n";
      ++Failures;
    } else if ((S.TornBytesDropped != 0) != Case.ExpectTornDrop) {
      std::cerr << Case.FileName << ": torn-tail bytes "
                << S.TornBytesDropped << ", expected "
                << (Case.ExpectTornDrop ? "nonzero" : "zero") << "\n";
      ++Failures;
    } else {
      std::cout << Case.FileName << ": " << S.Error.toString() << ", "
                << S.Records.size() << " records, " << S.TornBytesDropped
                << " torn bytes\n";
    }
  }
  return Failures == 0 ? 0 : 1;
}
