//===- tests/tools/CrashWorkload.h - Shared crash-campaign script -*- C++ -*-===//
//
// Part of the memlook project: a reproduction of Ramalingam & Srinivasan,
// "A Member Lookup Algorithm for C++", PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic edit workload shared by the crash-recovery
/// campaign's two sides: the crash_child binary *executes* it against a
/// durable LookupService until it is killed at an injected crash point,
/// and the CrashRecoveryTest parent *re-derives* it to build the
/// durable-prefix oracle the recovered service is compared against.
/// Everything here is a pure function of (seed, txn index), so the two
/// processes agree on what transaction K contains without any channel
/// between them beyond the seed on the command line.
///
//===----------------------------------------------------------------------===//

#ifndef MEMLOOK_TESTS_TOOLS_CRASHWORKLOAD_H
#define MEMLOOK_TESTS_TOOLS_CRASHWORKLOAD_H

#include "memlook/service/Transaction.h"
#include "memlook/support/Rng.h"
#include "memlook/workload/Generators.h"

#include <string>

namespace crashwk {

/// Transactions in the scripted run. Epochs therefore range over
/// [1, 1 + NumScriptTxns]: epoch E means the first E - 1 script
/// transactions committed.
constexpr uint64_t NumScriptTxns = 12;

/// After committing this script index the child calls saveSnapshot, so
/// kills around the snapshot/compaction window land mid-run with both
/// covered and uncovered records in play.
constexpr uint64_t SnapshotAfterTxn = 5;

/// The starting hierarchy. Deterministic: child, oracle, and recovery
/// fallback all construct the identical state (and so the identical
/// WAL base fingerprint).
inline memlook::Workload baseWorkload() {
  return memlook::makeModularForest(2, 2, 2, 3, 2);
}

/// Records script transaction \p K (0-based) into \p Txn. Valid by
/// construction against the state after the first K script
/// transactions: every name it adds is derived from K, so it collides
/// with nothing earlier.
inline void recordScriptTxn(uint64_t Seed, uint64_t K,
                            const memlook::Hierarchy &H,
                            memlook::service::Transaction &Txn) {
  memlook::Rng R(Seed * 0x9e3779b97f4a7c15ULL + K * 0x100000001b3ULL + 0xc4a5);
  std::string Fresh = "Crash" + std::to_string(K);
  Txn.addClass(Fresh);
  memlook::ClassId BaseId(
      static_cast<uint32_t>(R.nextBelow(H.numClasses())));
  Txn.addBase(Fresh, std::string(H.className(BaseId)),
              R.nextChance(1, 3) ? memlook::InheritanceKind::Virtual
                                 : memlook::InheritanceKind::NonVirtual);
  Txn.addMember(Fresh, "m" + std::to_string(R.nextBelow(6)),
                /*IsStatic=*/R.nextChance(1, 6),
                /*IsVirtual=*/R.nextChance(1, 4));
  // A second edit against an existing class: the per-K member name is
  // globally fresh, so replaying the script in order never rejects.
  memlook::ClassId Victim(
      static_cast<uint32_t>(R.nextBelow(H.numClasses())));
  Txn.addMember(std::string(H.className(Victim)), "q" + std::to_string(K));
}

} // namespace crashwk

#endif // MEMLOOK_TESTS_TOOLS_CRASHWORKLOAD_H
